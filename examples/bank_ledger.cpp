// bank_ledger — multi-location atomicity (the motivating example class from
// the paper's §2: an operation that "must modify several locations" stays
// consistent only if all or none of its effects survive).
//
// A ledger of accounts lives in a persistent std::vector; transfers move
// money between random accounts (two writes + a counter update, often in
// different cache lines and pages). Batches of transfers are committed with
// persist(). The invariant — total balance is constant — is checked after a
// simulated crash in the middle of a batch: PAX's snapshot semantics must
// either keep a whole batch or drop it entirely, never tear a transfer.
#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <vector>

#include "pax/common/rng.hpp"
#include "pax/libpax/persistent.hpp"

using pax::libpax::PaxRuntime;
using pax::libpax::PaxStlAllocator;
using pax::libpax::Persistent;

namespace {

constexpr std::uint64_t kAccounts = 4096;
constexpr std::int64_t kInitialBalance = 1000;

struct Ledger {
  using Vec = std::vector<std::int64_t, PaxStlAllocator<std::int64_t>>;
  Vec balances;
  std::uint64_t transfers_applied = 0;

  explicit Ledger(const PaxStlAllocator<std::int64_t>& alloc)
      : balances(kAccounts, kInitialBalance, alloc) {}
};

std::int64_t total(const Ledger& ledger) {
  return std::accumulate(ledger.balances.begin(), ledger.balances.end(),
                         std::int64_t{0});
}

}  // namespace

int main() {
  auto pm = pax::pmem::PmemDevice::create_in_memory(64 << 20);

  std::uint64_t committed_transfers = 0;
  {
    auto rt = PaxRuntime::attach(pm.get()).value();
    auto ledger = Persistent<Ledger>::open(*rt, [&rt](void* mem) {
      new (mem) Ledger(PaxStlAllocator<std::int64_t>(&rt->heap()));
    }).value();

    std::printf("ledger: %" PRIu64 " accounts x %" PRId64
                " = total %" PRId64 "\n",
                kAccounts, kInitialBalance, total(*ledger));

    pax::Xoshiro256 rng(11);
    auto transfer = [&](Ledger& l) {
      const std::uint64_t from = rng.next_below(kAccounts);
      const std::uint64_t to = rng.next_below(kAccounts);
      const std::int64_t amount =
          static_cast<std::int64_t>(rng.next_below(100)) + 1;
      l.balances[from] -= amount;  // may go negative; fine for the demo
      l.balances[to] += amount;
      ++l.transfers_applied;
    };

    // Commit 20 batches of 500 transfers.
    for (int batch = 0; batch < 20; ++batch) {
      for (int i = 0; i < 500; ++i) transfer(*ledger);
      if (!rt->persist().ok()) return 1;
    }
    committed_transfers = ledger->transfers_applied;
    std::printf("committed %" PRIu64 " transfers over %llu epochs, total "
                "%" PRId64 "\n",
                committed_transfers,
                static_cast<unsigned long long>(rt->committed_epoch()),
                total(*ledger));

    // A doomed batch: hundreds of half-related mutations, no persist.
    for (int i = 0; i < 700; ++i) transfer(*ledger);
    rt->sync_step();  // push some of it toward PM to make rollback earn it
    std::printf("doomed batch of 700 transfers in flight... crash!\n");
  }  // runtime destroyed mid-epoch

  pm->crash(pax::pmem::CrashConfig::torn(0.5, /*seed=*/99));

  auto rt = PaxRuntime::attach(pm.get()).value();
  auto ledger = Persistent<Ledger>::open(*rt, [&rt](void* mem) {
    new (mem) Ledger(PaxStlAllocator<std::int64_t>(&rt->heap()));
  }).value();

  const std::int64_t recovered_total = total(*ledger);
  const std::int64_t expect_total =
      static_cast<std::int64_t>(kAccounts) * kInitialBalance;
  std::printf("after recovery: %" PRIu64 " transfers applied, total "
              "%" PRId64 " (expected %" PRId64 ")\n",
              ledger->transfers_applied, recovered_total, expect_total);

  const bool ok = recovered_total == expect_total &&
                  ledger->transfers_applied == committed_transfers;
  std::printf("%s\n", ok ? "LEDGER INVARIANT HELD"
                         : "LEDGER INVARIANT VIOLATED");
  return ok ? 0 : 1;
}
