// Quickstart — the C++ rendition of the paper's Listing 1.
//
//   let mut allocator = HWSnapshotter<MyAllocator>::map_pool("./ht.pool");
//   let persistent_ht = Persistent<HashMap>::new(&allocator);
//   persistent_ht.insert(1, 100);
//   println!("Key 1 = {}", persistent_ht.get(1));
//   persistent_ht.insert(2, 200);
//   persistent_ht.persist();
//
// An *unmodified* std::unordered_map becomes a crash-consistent persistent
// structure: map a pool, open the root, mutate with ordinary code, call
// persist(). Run the program twice — the second run recovers the map.
#include <cstdio>
#include <string>
#include <unordered_map>

#include "pax/libpax/persistent.hpp"

using pax::libpax::PaxRuntime;
using pax::libpax::PaxStlAllocator;
using pax::libpax::Persistent;

// An ordinary standard hash map, parameterized only by allocator.
using HashMap =
    std::unordered_map<std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
                       std::equal_to<std::uint64_t>,
                       PaxStlAllocator<std::pair<const std::uint64_t,
                                                 std::uint64_t>>>;

int main(int argc, char** argv) {
  const std::string pool_path = argc > 1 ? argv[1] : "/tmp/pax_quickstart.pool";

  // 1. Map the pool (creating it on first run, recovering on later runs).
  auto runtime = PaxRuntime::map_pool(pool_path, /*pool_size=*/64 << 20);
  if (!runtime.ok()) {
    std::fprintf(stderr, "map_pool: %s\n",
                 runtime.status().to_string().c_str());
    return 1;
  }
  auto& rt = *runtime.value();
  std::printf("pool %s mapped, committed epoch %llu\n", pool_path.c_str(),
              static_cast<unsigned long long>(rt.committed_epoch()));

  // 2. Open the persistent hash map root (created empty on first run).
  auto map = Persistent<HashMap>::open(rt);
  if (!map.ok()) {
    std::fprintf(stderr, "open root: %s\n", map.status().to_string().c_str());
    return 1;
  }
  std::printf("map %s with %zu entries\n",
              map.value().recovered() ? "recovered" : "freshly created",
              map.value()->size());

  // 3. Mutate it like any volatile map.
  const std::uint64_t run = map.value()->size() / 2 + 1;
  map.value()->insert({run * 2 - 1, 100 * run});
  std::printf("key %llu = %llu\n",
              static_cast<unsigned long long>(run * 2 - 1),
              static_cast<unsigned long long>(map.value()->at(run * 2 - 1)));
  map.value()->insert({run * 2, 200 * run});

  // 4. Commit a crash-consistent snapshot.
  auto epoch = rt.persist();
  if (!epoch.ok()) {
    std::fprintf(stderr, "persist: %s\n", epoch.status().to_string().c_str());
    return 1;
  }
  std::printf("persisted epoch %llu; map now has %zu entries\n",
              static_cast<unsigned long long>(epoch.value()),
              map.value()->size());
  std::printf("run me again: the map comes back with these entries.\n");
  return 0;
}
