// kvstore — a durable string key/value store CLI on libpax.
//
// Shows a realistic pattern beyond fixed-width integers: variable-length
// strings inside standard containers, all allocated from the persistent
// heap; group commit (persist every N mutations) with an explicit `sync`
// command; and recovery across process restarts.
//
// Usage:
//   kvstore [pool-file] <<'EOF'
//   set lang c++
//   set paper hotstorage22
//   get lang
//   del paper
//   list
//   sync
//   EOF
//
// Mutations since the last `sync` (or auto-group-commit boundary) are
// rolled back on crash, exactly like the paper's snapshot model (§3.3).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "pax/libpax/persistent.hpp"

using pax::libpax::PaxRuntime;
using pax::libpax::PaxStlAllocator;
using pax::libpax::Persistent;

// Persistent string type: std::basic_string with the pool allocator.
using PString =
    std::basic_string<char, std::char_traits<char>, PaxStlAllocator<char>>;

// Sorted map so `list` output is deterministic; node-based, so it exercises
// scattered small allocations.
using KvMap = std::map<PString, PString, std::less<PString>,
                       PaxStlAllocator<std::pair<const PString, PString>>>;

namespace {

constexpr unsigned kGroupCommitEvery = 8;  // auto-sync every 8 mutations

PString make_pstring(pax::libpax::PaxRuntime& rt, const std::string& s) {
  return PString(s.begin(), s.end(), PaxStlAllocator<char>(&rt.heap()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string pool_path = argc > 1 ? argv[1] : "/tmp/pax_kvstore.pool";

  auto runtime = PaxRuntime::map_pool(pool_path, 64 << 20);
  if (!runtime.ok()) {
    std::fprintf(stderr, "map_pool: %s\n",
                 runtime.status().to_string().c_str());
    return 1;
  }
  auto& rt = *runtime.value();
  auto store = Persistent<KvMap>::open(rt);
  if (!store.ok()) {
    std::fprintf(stderr, "open: %s\n", store.status().to_string().c_str());
    return 1;
  }
  std::printf("# kvstore on %s — epoch %llu, %zu keys %s\n", pool_path.c_str(),
              static_cast<unsigned long long>(rt.committed_epoch()),
              store.value()->size(),
              store.value().recovered() ? "(recovered)" : "(new)");

  unsigned dirty_ops = 0;
  auto maybe_group_commit = [&] {
    if (++dirty_ops >= kGroupCommitEvery) {
      if (auto e = rt.persist(); e.ok()) {
        std::printf("# auto group-commit: epoch %llu\n",
                    static_cast<unsigned long long>(e.value()));
      }
      dirty_ops = 0;
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd, key, value;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "set" && (in >> key) && (in >> value)) {
      // insert_or_assign rather than operator[]: the latter would
      // default-construct the mapped string without the pool allocator.
      store.value()->insert_or_assign(make_pstring(rt, key),
                                      make_pstring(rt, value));
      std::printf("ok\n");
      maybe_group_commit();
    } else if (cmd == "get" && (in >> key)) {
      auto it = store.value()->find(make_pstring(rt, key));
      if (it == store.value()->end()) {
        std::printf("(nil)\n");
      } else {
        std::printf("%.*s\n", static_cast<int>(it->second.size()),
                    it->second.data());
      }
    } else if (cmd == "del" && (in >> key)) {
      std::printf("%s\n",
                  store.value()->erase(make_pstring(rt, key)) ? "ok"
                                                              : "(nil)");
      maybe_group_commit();
    } else if (cmd == "list") {
      for (const auto& [k, v] : *store.value()) {
        std::printf("%.*s = %.*s\n", static_cast<int>(k.size()), k.data(),
                    static_cast<int>(v.size()), v.data());
      }
    } else if (cmd == "sync") {
      auto e = rt.persist();
      if (!e.ok()) {
        std::fprintf(stderr, "persist: %s\n",
                     e.status().to_string().c_str());
        return 1;
      }
      dirty_ops = 0;
      std::printf("epoch %llu\n",
                  static_cast<unsigned long long>(e.value()));
    } else if (cmd == "quit") {
      break;
    } else {
      std::printf("? commands: set k v | get k | del k | list | sync | quit\n");
    }
  }
  // Note: no persist on exit — uncommitted mutations vanish, by design.
  return 0;
}
