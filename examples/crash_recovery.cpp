// crash_recovery — a *real* crash, not a simulated one.
//
// The parent forks a child that maps a file-backed pool, inserts entries,
// persists a few epochs, writes a marker of what it committed, and then
// keeps mutating WITHOUT persisting until the parent SIGKILLs it mid-epoch.
// Killing the process destroys the child's DRAM state (the vPM region and
// the simulated PM's volatile write-pending overlay) while the pool file's
// durable media survives in the page cache — exactly the persistence split
// a power failure produces on ADR hardware.
//
// The parent then reopens the pool, lets recovery run, and verifies the map
// matches the last persisted epoch exactly: every committed entry present,
// zero uncommitted entries visible (§3.3/§3.4).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "pax/libpax/persistent.hpp"

using pax::libpax::PaxRuntime;
using pax::libpax::PaxStlAllocator;
using pax::libpax::Persistent;

using HashMap =
    std::unordered_map<std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
                       std::equal_to<std::uint64_t>,
                       PaxStlAllocator<std::pair<const std::uint64_t,
                                                 std::uint64_t>>>;

namespace {

constexpr std::uint64_t kEntriesPerEpoch = 1000;
constexpr std::uint64_t kEpochs = 5;

[[noreturn]] void run_child(const std::string& pool, const std::string& mark) {
  auto rt = PaxRuntime::map_pool(pool, 64 << 20).value();
  auto map = Persistent<HashMap>::open(*rt).value();

  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    for (std::uint64_t i = 0; i < kEntriesPerEpoch; ++i) {
      (*map)[e * kEntriesPerEpoch + i + 1] = e + 1;
    }
    if (!rt->persist().ok()) std::abort();
  }
  // Record what we committed, then signal readiness via the marker file.
  FILE* f = std::fopen(mark.c_str(), "w");
  std::fprintf(f, "%llu",
               static_cast<unsigned long long>(kEpochs * kEntriesPerEpoch));
  std::fclose(f);

  // Doomed epoch: mutate forever without persisting; some of it will be
  // pushed toward PM by the background flusher, all of it must roll back.
  std::uint64_t k = 1000000;
  while (true) {
    (*map)[++k] = 0xdead;
    (*map)[k % 5000 + 1] = 0xdead;  // also clobber committed entries
    rt->sync_step();
  }
}

}  // namespace

int main() {
  const std::string pool = "/tmp/pax_crash_demo.pool";
  const std::string mark = "/tmp/pax_crash_demo.mark";
  std::remove(pool.c_str());
  std::remove(mark.c_str());

  std::printf("forking a writer child against %s ...\n", pool.c_str());
  const pid_t pid = fork();
  if (pid == 0) run_child(pool, mark);

  // Wait until the child has committed its epochs and entered the doomed
  // loop, let it thrash for a moment, then kill it mid-mutation.
  while (access(mark.c_str(), F_OK) != 0) usleep(10000);
  usleep(200000);
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);
  std::printf("child SIGKILLed mid-epoch (volatile state destroyed).\n");

  // Reopen: recovery rolls the doomed epoch back.
  auto rt = PaxRuntime::map_pool(pool, 64 << 20).value();
  auto map = Persistent<HashMap>::open(*rt).value();
  const auto& report = rt->recovery_report();
  std::printf("recovered to epoch %llu (%llu undo records applied)\n",
              static_cast<unsigned long long>(report.recovered_epoch),
              static_cast<unsigned long long>(report.records_applied));

  std::uint64_t expected = kEpochs * kEntriesPerEpoch;
  std::uint64_t bad = 0;
  for (std::uint64_t key = 1; key <= expected; ++key) {
    auto it = map->find(key);
    if (it == map->end() ||
        it->second != (key - 1) / kEntriesPerEpoch + 1) {
      ++bad;
    }
  }
  std::uint64_t doomed_visible = 0;
  for (const auto& [k, v] : *map) {
    if (v == 0xdead) ++doomed_visible;
  }

  std::printf("committed entries present: %llu/%llu (%llu wrong)\n",
              static_cast<unsigned long long>(expected - bad),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(bad));
  std::printf("uncommitted (doomed) entries visible: %llu\n",
              static_cast<unsigned long long>(doomed_visible));
  const bool ok = bad == 0 && doomed_visible == 0 &&
                  map->size() == expected &&
                  report.recovered_epoch == kEpochs;
  std::printf("%s\n", ok ? "CRASH RECOVERY OK" : "CRASH RECOVERY FAILED");
  std::remove(pool.c_str());
  std::remove(mark.c_str());
  return ok ? 0 : 1;
}
