// social_graph — a pointer-rich persistent data structure, black-box.
//
// Graphs are the classic "hard to serialize" structure: nodes reference
// nodes, updates touch scattered allocations. Here the whole graph — an
// adjacency map of std::set edge lists plus a string-keyed name index —
// lives in persistent memory through unmodified standard containers. The
// demo builds a graph, commits, applies a batch of doomed edits, crashes,
// and shows recovery restored both structure and derived queries (degree,
// two-hop neighborhood) exactly.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "pax/common/rng.hpp"
#include "pax/libpax/persistent.hpp"

using namespace pax;
using libpax::PaxRuntime;
using libpax::PaxStlAllocator;
using libpax::Persistent;

namespace {

using NodeId = std::uint64_t;
using EdgeSet = std::set<NodeId, std::less<NodeId>, PaxStlAllocator<NodeId>>;
using Adjacency =
    std::map<NodeId, EdgeSet, std::less<NodeId>,
             PaxStlAllocator<std::pair<const NodeId, EdgeSet>>>;

struct Graph {
  Adjacency out_edges;
  std::uint64_t edge_count = 0;

  explicit Graph(libpax::PaxHeap* heap)
      : out_edges(typename Adjacency::allocator_type(heap)) {}

  void add_edge(libpax::PaxHeap* heap, NodeId from, NodeId to) {
    auto [it, fresh] = out_edges.try_emplace(
        from, EdgeSet(PaxStlAllocator<NodeId>(heap)));
    if (it->second.insert(to).second) ++edge_count;
  }

  std::size_t degree(NodeId n) const {
    auto it = out_edges.find(n);
    return it == out_edges.end() ? 0 : it->second.size();
  }

  std::size_t two_hop_reach(NodeId n) const {
    std::set<NodeId> reach;
    auto it = out_edges.find(n);
    if (it == out_edges.end()) return 0;
    for (NodeId mid : it->second) {
      reach.insert(mid);
      auto mid_it = out_edges.find(mid);
      if (mid_it == out_edges.end()) continue;
      for (NodeId far : mid_it->second) reach.insert(far);
    }
    reach.erase(n);
    return reach.size();
  }
};

}  // namespace

int main() {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  libpax::RuntimeOptions opts;
  opts.log_size = 8 << 20;

  std::uint64_t committed_edges;
  std::size_t deg42, reach42;
  {
    auto rt = PaxRuntime::attach(pm.get(), opts).value();
    auto graph = Persistent<Graph>::open(*rt, [&rt](void* mem) {
      new (mem) Graph(&rt->heap());
    }).value();

    // Preferential-attachment-flavoured random graph: 2000 nodes.
    Xoshiro256 rng(8);
    for (NodeId n = 1; n <= 2000; ++n) {
      const int fanout = 1 + rng.next_below(6);
      for (int e = 0; e < fanout; ++e) {
        const NodeId target = 1 + rng.next_below(n == 1 ? 1 : n - 1);
        if (target != n) graph->add_edge(&rt->heap(), n, target);
      }
      if (n % 500 == 0) {
        if (!rt->persist().ok()) return 1;
      }
    }
    if (!rt->persist().ok()) return 1;

    committed_edges = graph->edge_count;
    deg42 = graph->degree(42);
    reach42 = graph->two_hop_reach(42);
    std::printf("graph committed: %llu edges; degree(42)=%zu, "
                "two-hop(42)=%zu, epoch %llu\n",
                static_cast<unsigned long long>(committed_edges), deg42,
                reach42,
                static_cast<unsigned long long>(rt->committed_epoch()));

    // A doomed edit batch: hub rewiring that never commits.
    for (NodeId n = 1; n <= 200; ++n) {
      graph->add_edge(&rt->heap(), 42, n);
    }
    rt->sync_step();
    std::printf("doomed batch: degree(42) inflated to %zu... crash!\n",
                graph->degree(42));
  }
  pm->crash(pmem::CrashConfig::drop_all());

  auto rt = PaxRuntime::attach(pm.get(), opts).value();
  auto graph = Persistent<Graph>::open(*rt, [&rt](void* mem) {
    new (mem) Graph(&rt->heap());
  }).value();

  std::printf("recovered: %llu edges; degree(42)=%zu, two-hop(42)=%zu\n",
              static_cast<unsigned long long>(graph->edge_count),
              graph->degree(42), graph->two_hop_reach(42));
  const bool ok = graph->edge_count == committed_edges &&
                  graph->degree(42) == deg42 &&
                  graph->two_hop_reach(42) == reach42;
  std::printf("%s\n", ok ? "GRAPH INTACT" : "GRAPH CORRUPTED");
  return ok ? 0 : 1;
}
