// consistent_analytics — snapshot-isolated reads during live ingest.
//
// A metrics array is updated continuously; an analytics pass must see a
// *consistent* snapshot (sums that balance), not a torn mix of old and new
// values. PaxRuntime::read_snapshot serves the last committed epoch while
// the writer keeps mutating — the undo log doubles as a snapshot store, so
// readers need no quiescence and writers take no locks.
//
// Invariant: the writer moves value between counters so the committed total
// is always exactly kTotal; a torn read would break the sum.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "pax/common/rng.hpp"
#include "pax/libpax/runtime.hpp"

using namespace pax;

namespace {

constexpr std::uint64_t kCounters = 4096;
constexpr std::int64_t kTotal = 1'000'000;
constexpr PoolOffset kArrayAt = 8192;  // past the heap header

std::int64_t counter_sum(const std::byte* base) {
  std::int64_t sum = 0;
  for (std::uint64_t i = 0; i < kCounters; ++i) {
    std::int64_t v;
    std::memcpy(&v, base + i * 8, 8);
    sum += v;
  }
  return sum;
}

}  // namespace

int main() {
  auto rt = libpax::PaxRuntime::create_in_memory(64 << 20).value();
  std::byte* live = rt->vpm_base() + kArrayAt;

  // Seed: all value on counter 0, then commit.
  std::int64_t seed = kTotal;
  std::memcpy(live, &seed, 8);
  if (!rt->persist().ok()) return 1;
  std::printf("seeded %" PRIu64 " counters, committed total %" PRId64 "\n",
              kCounters, counter_sum(live));

  Xoshiro256 rng(21);
  std::uint64_t consistent_reads = 0;
  for (int round = 0; round < 20; ++round) {
    // Writer: 2000 random transfers between counters (half-applied pairs
    // in flight all the time).
    for (int t = 0; t < 2000; ++t) {
      const std::uint64_t from = rng.next_below(kCounters);
      std::uint64_t to = rng.next_below(kCounters);
      if (to == from) to = (to + 1) % kCounters;  // self-transfer = no-op
      const std::int64_t amount = static_cast<std::int64_t>(
          rng.next_below(50));
      std::int64_t a, b;
      std::memcpy(&a, live + from * 8, 8);
      std::memcpy(&b, live + to * 8, 8);
      a -= amount;
      b += amount;
      std::memcpy(live + from * 8, &a, 8);

      // Analytics mid-transfer: the live view is torn RIGHT NOW (amount
      // subtracted but not yet added); the snapshot view must not be.
      if (t % 500 == 250) {
        std::array<std::byte, kCounters * 8> snap;
        rt->read_snapshot(kArrayAt, snap);
        const std::int64_t committed_total = counter_sum(snap.data());
        if (committed_total != kTotal) {
          std::printf("TORN SNAPSHOT: total %" PRId64 "\n", committed_total);
          return 1;
        }
        ++consistent_reads;
        const std::int64_t live_total = counter_sum(live);
        if (live_total == kTotal) {
          std::printf("(live view happened to balance — unexpected but "
                      "possible)\n");
        }
      }
      std::memcpy(live + to * 8, &b, 8);
    }
    if (!rt->persist().ok()) return 1;
  }

  std::printf("20 committed rounds; %" PRIu64
              " snapshot reads, every one balanced at %" PRId64 "\n",
              consistent_reads, kTotal);
  std::printf("final committed total: %" PRId64 "\n",
              counter_sum(rt->vpm_base() + kArrayAt));
  std::printf("CONSISTENT ANALYTICS OK\n");
  return 0;
}
