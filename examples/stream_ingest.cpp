// stream_ingest — non-blocking persist (§6 "Looking Forward") in action.
//
// An ingest loop appends telemetry records to a persistent structure and
// snapshots every batch. With the classic synchronous persist(), the loop
// stalls for the full commit (log flush + write-back + epoch cell) at every
// batch boundary. With persist_async(), the loop seals the batch and keeps
// ingesting while the commit completes in the background — the paper's
// "epochs overlap and threads never stall" goal.
//
// The example measures both modes on simulated PM and prints the stall the
// async mode removed from the ingest path, then crash-checks that async
// snapshots are exactly as safe as synchronous ones.
#include <chrono>
#include <thread>
#include <cstdio>
#include <unordered_map>

#include "pax/libpax/persistent.hpp"

using namespace pax;
using libpax::PaxRuntime;
using libpax::PaxStlAllocator;
using libpax::Persistent;

namespace {

using Telemetry =
    std::unordered_map<std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
                       std::equal_to<std::uint64_t>,
                       PaxStlAllocator<std::pair<const std::uint64_t,
                                                 std::uint64_t>>>;

constexpr std::uint64_t kBatches = 50;
constexpr std::uint64_t kRecordsPerBatch = 400;

struct IngestCost {
  double persist_ms = 0;            // wall time inside persist calls
  std::uint64_t flushes_on_path = 0;  // PM line flushes inside persist calls
  std::uint64_t drains_on_path = 0;   // PM fences inside persist calls
};

// Runs the ingest loop, charging only work inside the persist call to the
// ingest path (background commits don't count — that's the point).
template <typename PersistFn>
IngestCost run_ingest(PaxRuntime& rt, Persistent<Telemetry>& table,
                      PersistFn&& do_persist, std::uint64_t key_base) {
  using Clock = std::chrono::steady_clock;
  IngestCost cost;
  std::chrono::nanoseconds in_persist{0};
  for (std::uint64_t b = 0; b < kBatches; ++b) {
    for (std::uint64_t r = 0; r < kRecordsPerBatch; ++r) {
      (*table)[key_base + b * kRecordsPerBatch + r] = b;
    }
    const auto before = rt.pm().stats();
    const auto t0 = Clock::now();
    std::forward<PersistFn>(do_persist)();
    in_persist += Clock::now() - t0;
    const auto after = rt.pm().stats();
    cost.flushes_on_path += after.line_flushes - before.line_flushes;
    cost.drains_on_path += after.drains - before.drains;
    // Inter-batch application work (parsing, aggregation, networking…):
    // this is what an asynchronous commit overlaps with.
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  (void)rt.complete_persist();
  cost.persist_ms =
      std::chrono::duration<double, std::milli>(in_persist).count();
  return cost;
}

}  // namespace

int main() {
  libpax::RuntimeOptions opts;
  opts.log_size = 16 << 20;
  // A device buffer comfortably larger than one batch's write set, so the
  // seal only buffers lines instead of evicting them to PM on the spot.
  opts.device.hbm.capacity_lines = 1 << 16;

  // --- Synchronous persist ------------------------------------------------
  auto pm_sync = pmem::PmemDevice::create_in_memory(64 << 20);
  IngestCost sync_cost;
  {
    auto rt = PaxRuntime::attach(pm_sync.get(), opts).value();
    auto table = Persistent<Telemetry>::open(*rt).value();
    sync_cost = run_ingest(*rt, table, [&] {
      if (!rt->persist().ok()) std::abort();
    }, 0);
  }

  // --- Non-blocking persist -------------------------------------------------
  // The background flusher completes sealed commits between batches, so the
  // ingest path pays only the seal.
  auto pm_async = pmem::PmemDevice::create_in_memory(64 << 20);
  libpax::RuntimeOptions async_opts = opts;
  async_opts.start_flusher_thread = true;
  async_opts.flusher_interval = std::chrono::microseconds(50);
  IngestCost async_cost;
  std::uint64_t sealed_before_crash;
  {
    auto rt = PaxRuntime::attach(pm_async.get(), async_opts).value();
    auto table = Persistent<Telemetry>::open(*rt).value();
    async_cost = run_ingest(*rt, table, [&] {
      if (!rt->persist_async().ok()) std::abort();
    }, 0);
    // One more sealed-but-never-completed batch, then crash.
    for (std::uint64_t r = 0; r < kRecordsPerBatch; ++r) {
      (*table)[1 << 30 | r] = 0xdead;
    }
    sealed_before_crash = rt->committed_epoch();
    if (!rt->persist_async().ok()) std::abort();  // sealed, NOT completed
  }
  pm_async->crash(pmem::CrashConfig::drop_all());

  std::printf("ingest: %llu batches x %llu records\n",
              static_cast<unsigned long long>(kBatches),
              static_cast<unsigned long long>(kRecordsPerBatch));
  std::printf("on-ingest-path persistence work per batch (what a real PM "
              "device would stall on):\n");
  std::printf("  sync persist():        %6.1f PM line flushes, %4.1f fences, "
              "%.2f ms total\n",
              double(sync_cost.flushes_on_path) / kBatches,
              double(sync_cost.drains_on_path) / kBatches,
              sync_cost.persist_ms);
  std::printf("  async persist_async(): %6.1f PM line flushes, %4.1f fences, "
              "%.2f ms total\n",
              double(async_cost.flushes_on_path) / kBatches,
              double(async_cost.drains_on_path) / kBatches,
              async_cost.persist_ms);
  std::printf("  -> %.0f%% of on-path PM flushes moved to the background\n",
              (1.0 - double(async_cost.flushes_on_path) /
                         double(sync_cost.flushes_on_path)) *
                  100.0);

  // Crash-check: the pool recovers to the last COMPLETED epoch. The final
  // batch was sealed but its completion raced the crash against the
  // background flusher — both outcomes are legitimate, and each must be
  // all-or-nothing: either the batch is entirely absent (seal never
  // completed) or entirely present (the flusher finished the commit first).
  auto rt = PaxRuntime::attach(pm_async.get(), opts).value();
  auto table = Persistent<Telemetry>::open(*rt).value();
  const std::uint64_t expect = kBatches * kRecordsPerBatch;
  std::uint64_t last_batch_visible = 0;
  for (const auto& [k, v] : *table) {
    last_batch_visible += (v == 0xdead) ? 1 : 0;
  }
  const Epoch epoch = rt->committed_epoch();
  std::printf("after crash: epoch %llu, %zu records; racing final batch "
              "%s\n",
              static_cast<unsigned long long>(epoch), table->size(),
              last_batch_visible == 0 ? "dropped whole" : "committed whole");
  const bool dropped = epoch == sealed_before_crash &&
                       last_batch_visible == 0 && table->size() == expect;
  const bool committed_by_flusher =
      epoch == sealed_before_crash + 1 &&
      last_batch_visible == kRecordsPerBatch &&
      table->size() == expect + kRecordsPerBatch;
  const bool ok = dropped || committed_by_flusher;
  std::printf("%s\n", ok ? "ASYNC SNAPSHOTS SAFE" : "TORN BATCH");
  return ok ? 0 : 1;
}
