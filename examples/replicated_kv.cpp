// replicated_kv — primary/backup fault tolerance (§6 "providing fault
// tolerance via remote memory").
//
// A primary node runs a black-box persistent map with a synchronous
// Replicator shipping every committed epoch to a backup pool (standing in
// for a remote machine's PM). The primary then dies *completely* — not a
// power failure with surviving PM, but total loss of the machine. The
// backup pool is opened at the same vPM base and the map continues exactly
// at the last replicated snapshot, then keeps serving writes as the new
// primary.
#include <cstdio>
#include <unordered_map>

#include "pax/device/replication.hpp"
#include "pax/libpax/persistent.hpp"

using namespace pax;
using libpax::PaxRuntime;
using libpax::PaxStlAllocator;
using libpax::Persistent;

using Map =
    std::unordered_map<std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
                       std::equal_to<std::uint64_t>,
                       PaxStlAllocator<std::pair<const std::uint64_t,
                                                 std::uint64_t>>>;

int main() {
  libpax::RuntimeOptions opts;
  opts.log_size = 4 << 20;

  auto primary_pm = pmem::PmemDevice::create_in_memory(32 << 20);
  auto backup_pm = pmem::PmemDevice::create_in_memory(32 << 20);

  std::uintptr_t primary_base;
  std::uint64_t replicated_keys;
  {
    auto rt = PaxRuntime::attach(primary_pm.get(), opts).value();
    primary_base = reinterpret_cast<std::uintptr_t>(rt->vpm_base());

    auto backup_pool =
        pmem::PmemPool::create(backup_pm.get(), opts.log_size).value();
    auto repl = device::Replicator::create(&backup_pool, opts.device,
                                           /*synchronous=*/true)
                    .value();
    rt->device().set_commit_hook(repl->commit_hook());

    auto map = Persistent<Map>::open(*rt).value();
    for (int batch = 0; batch < 10; ++batch) {
      for (std::uint64_t k = 0; k < 100; ++k) {
        (*map)[batch * 100 + k] = batch;
      }
      if (!rt->persist().ok()) return 1;
    }
    replicated_keys = map->size();
    std::printf("primary: committed %llu epochs, %llu keys; backup at epoch "
                "%llu (%llu lines shipped)\n",
                static_cast<unsigned long long>(rt->committed_epoch()),
                static_cast<unsigned long long>(replicated_keys),
                static_cast<unsigned long long>(
                    repl->backup_committed_epoch()),
                static_cast<unsigned long long>(repl->stats().lines_shipped));

    // Writes the primary never gets to persist...
    for (std::uint64_t k = 0; k < 50; ++k) (*map)[999000 + k] = 0xdead;
  }
  primary_pm.reset();  // the primary machine is GONE — PM and all
  std::printf("primary machine lost entirely.\n");

  libpax::RuntimeOptions failover = opts;
  failover.vpm_base_hint = primary_base;  // cluster-wide agreed base
  auto rt = PaxRuntime::attach(backup_pm.get(), failover).value();
  auto map = Persistent<Map>::open(*rt).value();
  std::printf("failover: backup recovered at epoch %llu with %zu keys "
              "(expected %llu)\n",
              static_cast<unsigned long long>(rt->committed_epoch()),
              map->size(),
              static_cast<unsigned long long>(replicated_keys));

  std::uint64_t doomed = 0;
  for (const auto& [k, v] : *map) doomed += v == 0xdead ? 1 : 0;

  // The backup carries on as the new primary.
  (*map)[42424242] = 1;
  if (!rt->persist().ok()) return 1;

  const bool ok = map->size() == replicated_keys + 1 && doomed == 0 &&
                  map->at(505) == 5;
  std::printf("unreplicated writes visible: %llu; new primary serving "
              "writes at epoch %llu\n",
              static_cast<unsigned long long>(doomed),
              static_cast<unsigned long long>(rt->committed_epoch()));
  std::printf("%s\n", ok ? "FAILOVER OK" : "FAILOVER FAILED");
  return ok ? 0 : 1;
}
