file(REMOVE_RECURSE
  "libpax.a"
)
