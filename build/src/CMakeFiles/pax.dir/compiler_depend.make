# Empty compiler generated dependencies file for pax.
# This may be replaced when dependencies are built.
