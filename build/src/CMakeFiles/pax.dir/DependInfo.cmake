
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pax/baselines/direct/direct_hashmap.cpp" "src/CMakeFiles/pax.dir/pax/baselines/direct/direct_hashmap.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/baselines/direct/direct_hashmap.cpp.o.d"
  "/root/repo/src/pax/baselines/pagewal/pagewal.cpp" "src/CMakeFiles/pax.dir/pax/baselines/pagewal/pagewal.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/baselines/pagewal/pagewal.cpp.o.d"
  "/root/repo/src/pax/baselines/pmdk/phashmap.cpp" "src/CMakeFiles/pax.dir/pax/baselines/pmdk/phashmap.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/baselines/pmdk/phashmap.cpp.o.d"
  "/root/repo/src/pax/baselines/pmdk/pvector.cpp" "src/CMakeFiles/pax.dir/pax/baselines/pmdk/pvector.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/baselines/pmdk/pvector.cpp.o.d"
  "/root/repo/src/pax/baselines/pmdk/tx.cpp" "src/CMakeFiles/pax.dir/pax/baselines/pmdk/tx.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/baselines/pmdk/tx.cpp.o.d"
  "/root/repo/src/pax/coherence/cxl.cpp" "src/CMakeFiles/pax.dir/pax/coherence/cxl.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/coherence/cxl.cpp.o.d"
  "/root/repo/src/pax/coherence/domain.cpp" "src/CMakeFiles/pax.dir/pax/coherence/domain.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/coherence/domain.cpp.o.d"
  "/root/repo/src/pax/coherence/eci_adapter.cpp" "src/CMakeFiles/pax.dir/pax/coherence/eci_adapter.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/coherence/eci_adapter.cpp.o.d"
  "/root/repo/src/pax/coherence/host_cache.cpp" "src/CMakeFiles/pax.dir/pax/coherence/host_cache.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/coherence/host_cache.cpp.o.d"
  "/root/repo/src/pax/coherence/trace.cpp" "src/CMakeFiles/pax.dir/pax/coherence/trace.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/coherence/trace.cpp.o.d"
  "/root/repo/src/pax/common/crc.cpp" "src/CMakeFiles/pax.dir/pax/common/crc.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/common/crc.cpp.o.d"
  "/root/repo/src/pax/common/log.cpp" "src/CMakeFiles/pax.dir/pax/common/log.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/common/log.cpp.o.d"
  "/root/repo/src/pax/common/status.cpp" "src/CMakeFiles/pax.dir/pax/common/status.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/common/status.cpp.o.d"
  "/root/repo/src/pax/device/hbm_cache.cpp" "src/CMakeFiles/pax.dir/pax/device/hbm_cache.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/device/hbm_cache.cpp.o.d"
  "/root/repo/src/pax/device/pax_device.cpp" "src/CMakeFiles/pax.dir/pax/device/pax_device.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/device/pax_device.cpp.o.d"
  "/root/repo/src/pax/device/recovery.cpp" "src/CMakeFiles/pax.dir/pax/device/recovery.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/device/recovery.cpp.o.d"
  "/root/repo/src/pax/device/replication.cpp" "src/CMakeFiles/pax.dir/pax/device/replication.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/device/replication.cpp.o.d"
  "/root/repo/src/pax/device/undo_logger.cpp" "src/CMakeFiles/pax.dir/pax/device/undo_logger.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/device/undo_logger.cpp.o.d"
  "/root/repo/src/pax/libpax/heap.cpp" "src/CMakeFiles/pax.dir/pax/libpax/heap.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/libpax/heap.cpp.o.d"
  "/root/repo/src/pax/libpax/runtime.cpp" "src/CMakeFiles/pax.dir/pax/libpax/runtime.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/libpax/runtime.cpp.o.d"
  "/root/repo/src/pax/libpax/vpm_region.cpp" "src/CMakeFiles/pax.dir/pax/libpax/vpm_region.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/libpax/vpm_region.cpp.o.d"
  "/root/repo/src/pax/model/amat.cpp" "src/CMakeFiles/pax.dir/pax/model/amat.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/model/amat.cpp.o.d"
  "/root/repo/src/pax/model/sim_hash_table.cpp" "src/CMakeFiles/pax.dir/pax/model/sim_hash_table.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/model/sim_hash_table.cpp.o.d"
  "/root/repo/src/pax/model/throughput.cpp" "src/CMakeFiles/pax.dir/pax/model/throughput.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/model/throughput.cpp.o.d"
  "/root/repo/src/pax/pmem/mmap_file.cpp" "src/CMakeFiles/pax.dir/pax/pmem/mmap_file.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/pmem/mmap_file.cpp.o.d"
  "/root/repo/src/pax/pmem/pmem_device.cpp" "src/CMakeFiles/pax.dir/pax/pmem/pmem_device.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/pmem/pmem_device.cpp.o.d"
  "/root/repo/src/pax/pmem/pool.cpp" "src/CMakeFiles/pax.dir/pax/pmem/pool.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/pmem/pool.cpp.o.d"
  "/root/repo/src/pax/wal/wal.cpp" "src/CMakeFiles/pax.dir/pax/wal/wal.cpp.o" "gcc" "src/CMakeFiles/pax.dir/pax/wal/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
