# Empty dependencies file for paxctl.
# This may be replaced when dependencies are built.
