file(REMOVE_RECURSE
  "CMakeFiles/paxctl.dir/paxctl.cpp.o"
  "CMakeFiles/paxctl.dir/paxctl.cpp.o.d"
  "paxctl"
  "paxctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
