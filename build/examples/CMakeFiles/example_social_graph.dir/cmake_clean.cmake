file(REMOVE_RECURSE
  "CMakeFiles/example_social_graph.dir/social_graph.cpp.o"
  "CMakeFiles/example_social_graph.dir/social_graph.cpp.o.d"
  "example_social_graph"
  "example_social_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
