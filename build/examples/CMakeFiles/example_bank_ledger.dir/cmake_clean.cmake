file(REMOVE_RECURSE
  "CMakeFiles/example_bank_ledger.dir/bank_ledger.cpp.o"
  "CMakeFiles/example_bank_ledger.dir/bank_ledger.cpp.o.d"
  "example_bank_ledger"
  "example_bank_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bank_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
