# Empty compiler generated dependencies file for example_consistent_analytics.
# This may be replaced when dependencies are built.
