file(REMOVE_RECURSE
  "CMakeFiles/example_consistent_analytics.dir/consistent_analytics.cpp.o"
  "CMakeFiles/example_consistent_analytics.dir/consistent_analytics.cpp.o.d"
  "example_consistent_analytics"
  "example_consistent_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_consistent_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
