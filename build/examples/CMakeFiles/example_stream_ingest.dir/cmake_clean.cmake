file(REMOVE_RECURSE
  "CMakeFiles/example_stream_ingest.dir/stream_ingest.cpp.o"
  "CMakeFiles/example_stream_ingest.dir/stream_ingest.cpp.o.d"
  "example_stream_ingest"
  "example_stream_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stream_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
