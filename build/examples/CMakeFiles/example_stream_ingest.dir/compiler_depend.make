# Empty compiler generated dependencies file for example_stream_ingest.
# This may be replaced when dependencies are built.
