# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_bank_ledger "/root/repo/build/examples/example_bank_ledger")
set_tests_properties(example_bank_ledger PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crash_recovery "/root/repo/build/examples/example_crash_recovery")
set_tests_properties(example_crash_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_ingest "/root/repo/build/examples/example_stream_ingest")
set_tests_properties(example_stream_ingest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replicated_kv "/root/repo/build/examples/example_replicated_kv")
set_tests_properties(example_replicated_kv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_graph "/root/repo/build/examples/example_social_graph")
set_tests_properties(example_social_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_consistent_analytics "/root/repo/build/examples/example_consistent_analytics")
set_tests_properties(example_consistent_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
