# Empty dependencies file for libpax_std_containers_test.
# This may be replaced when dependencies are built.
