file(REMOVE_RECURSE
  "CMakeFiles/libpax_std_containers_test.dir/libpax_std_containers_test.cpp.o"
  "CMakeFiles/libpax_std_containers_test.dir/libpax_std_containers_test.cpp.o.d"
  "libpax_std_containers_test"
  "libpax_std_containers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_std_containers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
