file(REMOVE_RECURSE
  "CMakeFiles/simtime_test.dir/simtime_test.cpp.o"
  "CMakeFiles/simtime_test.dir/simtime_test.cpp.o.d"
  "simtime_test"
  "simtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
