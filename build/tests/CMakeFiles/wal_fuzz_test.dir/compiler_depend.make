# Empty compiler generated dependencies file for wal_fuzz_test.
# This may be replaced when dependencies are built.
