# Empty dependencies file for libpax_runtime_test.
# This may be replaced when dependencies are built.
