file(REMOVE_RECURSE
  "CMakeFiles/libpax_runtime_test.dir/libpax_runtime_test.cpp.o"
  "CMakeFiles/libpax_runtime_test.dir/libpax_runtime_test.cpp.o.d"
  "libpax_runtime_test"
  "libpax_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
