file(REMOVE_RECURSE
  "CMakeFiles/libpax_region_test.dir/libpax_region_test.cpp.o"
  "CMakeFiles/libpax_region_test.dir/libpax_region_test.cpp.o.d"
  "libpax_region_test"
  "libpax_region_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
