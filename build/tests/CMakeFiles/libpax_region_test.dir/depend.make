# Empty dependencies file for libpax_region_test.
# This may be replaced when dependencies are built.
