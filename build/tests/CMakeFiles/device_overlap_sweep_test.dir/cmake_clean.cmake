file(REMOVE_RECURSE
  "CMakeFiles/device_overlap_sweep_test.dir/device_overlap_sweep_test.cpp.o"
  "CMakeFiles/device_overlap_sweep_test.dir/device_overlap_sweep_test.cpp.o.d"
  "device_overlap_sweep_test"
  "device_overlap_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_overlap_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
