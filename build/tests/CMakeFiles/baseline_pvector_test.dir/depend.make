# Empty dependencies file for baseline_pvector_test.
# This may be replaced when dependencies are built.
