file(REMOVE_RECURSE
  "CMakeFiles/baseline_pvector_test.dir/baseline_pvector_test.cpp.o"
  "CMakeFiles/baseline_pvector_test.dir/baseline_pvector_test.cpp.o.d"
  "baseline_pvector_test"
  "baseline_pvector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_pvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
