file(REMOVE_RECURSE
  "CMakeFiles/coherence_trace_test.dir/coherence_trace_test.cpp.o"
  "CMakeFiles/coherence_trace_test.dir/coherence_trace_test.cpp.o.d"
  "coherence_trace_test"
  "coherence_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
