# Empty dependencies file for coherence_trace_test.
# This may be replaced when dependencies are built.
