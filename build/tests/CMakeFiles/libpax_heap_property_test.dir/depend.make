# Empty dependencies file for libpax_heap_property_test.
# This may be replaced when dependencies are built.
