file(REMOVE_RECURSE
  "CMakeFiles/baseline_crash_property_test.dir/baseline_crash_property_test.cpp.o"
  "CMakeFiles/baseline_crash_property_test.dir/baseline_crash_property_test.cpp.o.d"
  "baseline_crash_property_test"
  "baseline_crash_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_crash_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
