# Empty compiler generated dependencies file for device_overlap_test.
# This may be replaced when dependencies are built.
