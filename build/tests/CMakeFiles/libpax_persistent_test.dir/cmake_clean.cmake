file(REMOVE_RECURSE
  "CMakeFiles/libpax_persistent_test.dir/libpax_persistent_test.cpp.o"
  "CMakeFiles/libpax_persistent_test.dir/libpax_persistent_test.cpp.o.d"
  "libpax_persistent_test"
  "libpax_persistent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_persistent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
