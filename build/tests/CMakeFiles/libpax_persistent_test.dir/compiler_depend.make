# Empty compiler generated dependencies file for libpax_persistent_test.
# This may be replaced when dependencies are built.
