file(REMOVE_RECURSE
  "CMakeFiles/libpax_object_store_test.dir/libpax_object_store_test.cpp.o"
  "CMakeFiles/libpax_object_store_test.dir/libpax_object_store_test.cpp.o.d"
  "libpax_object_store_test"
  "libpax_object_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_object_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
