# Empty dependencies file for libpax_object_store_test.
# This may be replaced when dependencies are built.
