# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for libpax_async_persist_test.
