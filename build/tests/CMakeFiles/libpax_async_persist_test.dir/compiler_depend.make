# Empty compiler generated dependencies file for libpax_async_persist_test.
# This may be replaced when dependencies are built.
