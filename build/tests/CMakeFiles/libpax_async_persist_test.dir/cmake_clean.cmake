file(REMOVE_RECURSE
  "CMakeFiles/libpax_async_persist_test.dir/libpax_async_persist_test.cpp.o"
  "CMakeFiles/libpax_async_persist_test.dir/libpax_async_persist_test.cpp.o.d"
  "libpax_async_persist_test"
  "libpax_async_persist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_async_persist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
