# Empty dependencies file for snapshot_read_test.
# This may be replaced when dependencies are built.
