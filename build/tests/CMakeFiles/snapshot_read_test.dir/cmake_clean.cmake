file(REMOVE_RECURSE
  "CMakeFiles/snapshot_read_test.dir/snapshot_read_test.cpp.o"
  "CMakeFiles/snapshot_read_test.dir/snapshot_read_test.cpp.o.d"
  "snapshot_read_test"
  "snapshot_read_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
