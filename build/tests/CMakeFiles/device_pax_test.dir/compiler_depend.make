# Empty compiler generated dependencies file for device_pax_test.
# This may be replaced when dependencies are built.
