file(REMOVE_RECURSE
  "CMakeFiles/device_pax_test.dir/device_pax_test.cpp.o"
  "CMakeFiles/device_pax_test.dir/device_pax_test.cpp.o.d"
  "device_pax_test"
  "device_pax_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_pax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
