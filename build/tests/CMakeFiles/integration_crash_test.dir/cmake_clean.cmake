file(REMOVE_RECURSE
  "CMakeFiles/integration_crash_test.dir/integration_crash_test.cpp.o"
  "CMakeFiles/integration_crash_test.dir/integration_crash_test.cpp.o.d"
  "integration_crash_test"
  "integration_crash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
