# Empty dependencies file for integration_crash_test.
# This may be replaced when dependencies are built.
