# Empty compiler generated dependencies file for coherence_cxlmem_test.
# This may be replaced when dependencies are built.
