file(REMOVE_RECURSE
  "CMakeFiles/coherence_cxlmem_test.dir/coherence_cxlmem_test.cpp.o"
  "CMakeFiles/coherence_cxlmem_test.dir/coherence_cxlmem_test.cpp.o.d"
  "coherence_cxlmem_test"
  "coherence_cxlmem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_cxlmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
