# Empty compiler generated dependencies file for baseline_phashmap_test.
# This may be replaced when dependencies are built.
