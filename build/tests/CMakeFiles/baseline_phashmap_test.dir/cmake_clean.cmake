file(REMOVE_RECURSE
  "CMakeFiles/baseline_phashmap_test.dir/baseline_phashmap_test.cpp.o"
  "CMakeFiles/baseline_phashmap_test.dir/baseline_phashmap_test.cpp.o.d"
  "baseline_phashmap_test"
  "baseline_phashmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_phashmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
