# Empty dependencies file for libpax_torture_test.
# This may be replaced when dependencies are built.
