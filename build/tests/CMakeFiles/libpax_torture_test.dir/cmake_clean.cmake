file(REMOVE_RECURSE
  "CMakeFiles/libpax_torture_test.dir/libpax_torture_test.cpp.o"
  "CMakeFiles/libpax_torture_test.dir/libpax_torture_test.cpp.o.d"
  "libpax_torture_test"
  "libpax_torture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_torture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
