file(REMOVE_RECURSE
  "CMakeFiles/libpax_negative_test.dir/libpax_negative_test.cpp.o"
  "CMakeFiles/libpax_negative_test.dir/libpax_negative_test.cpp.o.d"
  "libpax_negative_test"
  "libpax_negative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_negative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
