# Empty compiler generated dependencies file for libpax_negative_test.
# This may be replaced when dependencies are built.
