# Empty dependencies file for baseline_direct_test.
# This may be replaced when dependencies are built.
