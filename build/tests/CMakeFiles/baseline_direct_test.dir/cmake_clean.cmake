file(REMOVE_RECURSE
  "CMakeFiles/baseline_direct_test.dir/baseline_direct_test.cpp.o"
  "CMakeFiles/baseline_direct_test.dir/baseline_direct_test.cpp.o.d"
  "baseline_direct_test"
  "baseline_direct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_direct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
