file(REMOVE_RECURSE
  "CMakeFiles/device_hbm_cache_test.dir/device_hbm_cache_test.cpp.o"
  "CMakeFiles/device_hbm_cache_test.dir/device_hbm_cache_test.cpp.o.d"
  "device_hbm_cache_test"
  "device_hbm_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_hbm_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
