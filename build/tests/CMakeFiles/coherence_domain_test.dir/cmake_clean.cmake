file(REMOVE_RECURSE
  "CMakeFiles/coherence_domain_test.dir/coherence_domain_test.cpp.o"
  "CMakeFiles/coherence_domain_test.dir/coherence_domain_test.cpp.o.d"
  "coherence_domain_test"
  "coherence_domain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
