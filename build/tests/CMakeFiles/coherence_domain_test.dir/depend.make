# Empty dependencies file for coherence_domain_test.
# This may be replaced when dependencies are built.
