# Empty compiler generated dependencies file for device_hbm_property_test.
# This may be replaced when dependencies are built.
