file(REMOVE_RECURSE
  "CMakeFiles/coherence_host_cache_test.dir/coherence_host_cache_test.cpp.o"
  "CMakeFiles/coherence_host_cache_test.dir/coherence_host_cache_test.cpp.o.d"
  "coherence_host_cache_test"
  "coherence_host_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_host_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
