# Empty dependencies file for coherence_host_cache_test.
# This may be replaced when dependencies are built.
