file(REMOVE_RECURSE
  "CMakeFiles/coherence_eci_adapter_test.dir/coherence_eci_adapter_test.cpp.o"
  "CMakeFiles/coherence_eci_adapter_test.dir/coherence_eci_adapter_test.cpp.o.d"
  "coherence_eci_adapter_test"
  "coherence_eci_adapter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_eci_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
