# Empty dependencies file for coherence_eci_adapter_test.
# This may be replaced when dependencies are built.
