file(REMOVE_RECURSE
  "CMakeFiles/baseline_pagewal_test.dir/baseline_pagewal_test.cpp.o"
  "CMakeFiles/baseline_pagewal_test.dir/baseline_pagewal_test.cpp.o.d"
  "baseline_pagewal_test"
  "baseline_pagewal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_pagewal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
