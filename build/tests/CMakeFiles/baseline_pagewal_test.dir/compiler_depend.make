# Empty compiler generated dependencies file for baseline_pagewal_test.
# This may be replaced when dependencies are built.
