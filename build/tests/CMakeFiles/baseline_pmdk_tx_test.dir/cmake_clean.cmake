file(REMOVE_RECURSE
  "CMakeFiles/baseline_pmdk_tx_test.dir/baseline_pmdk_tx_test.cpp.o"
  "CMakeFiles/baseline_pmdk_tx_test.dir/baseline_pmdk_tx_test.cpp.o.d"
  "baseline_pmdk_tx_test"
  "baseline_pmdk_tx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_pmdk_tx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
