# Empty compiler generated dependencies file for baseline_pmdk_tx_test.
# This may be replaced when dependencies are built.
