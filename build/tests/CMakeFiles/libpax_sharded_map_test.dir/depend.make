# Empty dependencies file for libpax_sharded_map_test.
# This may be replaced when dependencies are built.
