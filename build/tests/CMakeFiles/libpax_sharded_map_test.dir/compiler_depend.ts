# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for libpax_sharded_map_test.
