file(REMOVE_RECURSE
  "CMakeFiles/libpax_sharded_map_test.dir/libpax_sharded_map_test.cpp.o"
  "CMakeFiles/libpax_sharded_map_test.dir/libpax_sharded_map_test.cpp.o.d"
  "libpax_sharded_map_test"
  "libpax_sharded_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_sharded_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
