# Empty compiler generated dependencies file for tools_paxctl_test.
# This may be replaced when dependencies are built.
