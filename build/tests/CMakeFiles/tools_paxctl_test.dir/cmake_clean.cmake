file(REMOVE_RECURSE
  "CMakeFiles/tools_paxctl_test.dir/tools_paxctl_test.cpp.o"
  "CMakeFiles/tools_paxctl_test.dir/tools_paxctl_test.cpp.o.d"
  "tools_paxctl_test"
  "tools_paxctl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_paxctl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
