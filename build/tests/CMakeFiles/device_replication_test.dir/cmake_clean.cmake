file(REMOVE_RECURSE
  "CMakeFiles/device_replication_test.dir/device_replication_test.cpp.o"
  "CMakeFiles/device_replication_test.dir/device_replication_test.cpp.o.d"
  "device_replication_test"
  "device_replication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
