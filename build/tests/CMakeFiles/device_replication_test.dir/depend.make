# Empty dependencies file for device_replication_test.
# This may be replaced when dependencies are built.
