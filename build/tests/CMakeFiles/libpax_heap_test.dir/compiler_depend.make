# Empty compiler generated dependencies file for libpax_heap_test.
# This may be replaced when dependencies are built.
