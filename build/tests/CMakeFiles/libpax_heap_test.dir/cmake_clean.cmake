file(REMOVE_RECURSE
  "CMakeFiles/libpax_heap_test.dir/libpax_heap_test.cpp.o"
  "CMakeFiles/libpax_heap_test.dir/libpax_heap_test.cpp.o.d"
  "libpax_heap_test"
  "libpax_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libpax_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
