file(REMOVE_RECURSE
  "CMakeFiles/abl_device_latency.dir/abl_device_latency.cpp.o"
  "CMakeFiles/abl_device_latency.dir/abl_device_latency.cpp.o.d"
  "abl_device_latency"
  "abl_device_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_device_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
