# Empty compiler generated dependencies file for abl_device_latency.
# This may be replaced when dependencies are built.
