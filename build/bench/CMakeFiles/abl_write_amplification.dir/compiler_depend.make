# Empty compiler generated dependencies file for abl_write_amplification.
# This may be replaced when dependencies are built.
