file(REMOVE_RECURSE
  "CMakeFiles/abl_write_amplification.dir/abl_write_amplification.cpp.o"
  "CMakeFiles/abl_write_amplification.dir/abl_write_amplification.cpp.o.d"
  "abl_write_amplification"
  "abl_write_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_write_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
