# Empty dependencies file for abl_group_commit.
# This may be replaced when dependencies are built.
