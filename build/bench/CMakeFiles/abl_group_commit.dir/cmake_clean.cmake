file(REMOVE_RECURSE
  "CMakeFiles/abl_group_commit.dir/abl_group_commit.cpp.o"
  "CMakeFiles/abl_group_commit.dir/abl_group_commit.cpp.o.d"
  "abl_group_commit"
  "abl_group_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_group_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
