# Empty dependencies file for abl_recovery_time.
# This may be replaced when dependencies are built.
