file(REMOVE_RECURSE
  "CMakeFiles/abl_recovery_time.dir/abl_recovery_time.cpp.o"
  "CMakeFiles/abl_recovery_time.dir/abl_recovery_time.cpp.o.d"
  "abl_recovery_time"
  "abl_recovery_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_recovery_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
