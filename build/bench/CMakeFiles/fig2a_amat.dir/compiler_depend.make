# Empty compiler generated dependencies file for fig2a_amat.
# This may be replaced when dependencies are built.
