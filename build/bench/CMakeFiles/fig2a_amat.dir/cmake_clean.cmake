file(REMOVE_RECURSE
  "CMakeFiles/fig2a_amat.dir/fig2a_amat.cpp.o"
  "CMakeFiles/fig2a_amat.dir/fig2a_amat.cpp.o.d"
  "fig2a_amat"
  "fig2a_amat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_amat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
