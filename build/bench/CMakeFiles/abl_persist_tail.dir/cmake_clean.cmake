file(REMOVE_RECURSE
  "CMakeFiles/abl_persist_tail.dir/abl_persist_tail.cpp.o"
  "CMakeFiles/abl_persist_tail.dir/abl_persist_tail.cpp.o.d"
  "abl_persist_tail"
  "abl_persist_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_persist_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
