# Empty dependencies file for abl_persist_tail.
# This may be replaced when dependencies are built.
