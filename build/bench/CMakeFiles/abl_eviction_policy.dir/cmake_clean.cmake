file(REMOVE_RECURSE
  "CMakeFiles/abl_eviction_policy.dir/abl_eviction_policy.cpp.o"
  "CMakeFiles/abl_eviction_policy.dir/abl_eviction_policy.cpp.o.d"
  "abl_eviction_policy"
  "abl_eviction_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eviction_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
