# Empty dependencies file for abl_device_buffer.
# This may be replaced when dependencies are built.
