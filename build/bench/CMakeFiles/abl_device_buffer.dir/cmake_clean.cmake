file(REMOVE_RECURSE
  "CMakeFiles/abl_device_buffer.dir/abl_device_buffer.cpp.o"
  "CMakeFiles/abl_device_buffer.dir/abl_device_buffer.cpp.o.d"
  "abl_device_buffer"
  "abl_device_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_device_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
