# Empty compiler generated dependencies file for abl_workload_mix.
# This may be replaced when dependencies are built.
