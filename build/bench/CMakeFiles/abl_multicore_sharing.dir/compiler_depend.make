# Empty compiler generated dependencies file for abl_multicore_sharing.
# This may be replaced when dependencies are built.
