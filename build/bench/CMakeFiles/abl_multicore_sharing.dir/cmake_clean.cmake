file(REMOVE_RECURSE
  "CMakeFiles/abl_multicore_sharing.dir/abl_multicore_sharing.cpp.o"
  "CMakeFiles/abl_multicore_sharing.dir/abl_multicore_sharing.cpp.o.d"
  "abl_multicore_sharing"
  "abl_multicore_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multicore_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
