# Empty compiler generated dependencies file for abl_trace_replay.
# This may be replaced when dependencies are built.
