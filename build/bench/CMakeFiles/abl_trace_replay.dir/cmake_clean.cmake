file(REMOVE_RECURSE
  "CMakeFiles/abl_trace_replay.dir/abl_trace_replay.cpp.o"
  "CMakeFiles/abl_trace_replay.dir/abl_trace_replay.cpp.o.d"
  "abl_trace_replay"
  "abl_trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
