# Empty dependencies file for abl_visibility.
# This may be replaced when dependencies are built.
