file(REMOVE_RECURSE
  "CMakeFiles/abl_visibility.dir/abl_visibility.cpp.o"
  "CMakeFiles/abl_visibility.dir/abl_visibility.cpp.o.d"
  "abl_visibility"
  "abl_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
