file(REMOVE_RECURSE
  "CMakeFiles/fig2b_throughput.dir/fig2b_throughput.cpp.o"
  "CMakeFiles/fig2b_throughput.dir/fig2b_throughput.cpp.o.d"
  "fig2b_throughput"
  "fig2b_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
