# Empty dependencies file for fig2b_throughput.
# This may be replaced when dependencies are built.
