#!/usr/bin/env python3
"""CI guard for the litmus harness: correctness first, then throughput.

Reads BENCH_litmus.json (written by bench/abl_litmus) and enforces:

  * findings == 0 on every row — a finding on the unfaulted domain is a
    coherence or crash-consistency regression and blocks outright;
  * the schedule pass covered all eight classic shapes, each with every
    interleaving executed and at least one outcome observed;
  * the crash pass ran on >= 3 shapes, each with crash_points > 0 and
    recoveries > crash_points (more than one crash mode per point);
  * conservative rate floors — schedule enumeration >= 5 interleavings/s
    and crash product >= 3 crash points/s. The native figures are orders
    of magnitude higher; the floors only catch pathological slowdowns and
    still pass under ASan.

Usage: check_litmus.py [path/to/BENCH_litmus.json]
"""

import json
import sys

EXPECTED_SHAPES = {"SB", "LB", "MP", "WRC", "IRIW", "CoRR", "CoWW", "2+2W"}
MIN_INTERLEAVINGS_PER_S = 5
MIN_CRASH_POINTS_PER_S = 3
MIN_CRASH_SHAPES = 3


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_litmus.json"
    with open(path) as f:
        bench = json.load(f)

    failures = []
    rows = bench["rows"]

    for r in rows:
        if r["findings"] != 0:
            failures.append(
                f"{r['shape']} [{r['mode']}] reported {r['findings']} "
                f"finding(s) on the unfaulted domain"
            )

    schedule = {r["shape"]: r for r in rows if r["mode"] == "schedule"}
    missing = EXPECTED_SHAPES - schedule.keys()
    if missing:
        failures.append(f"schedule pass missing shapes: {sorted(missing)}")
    for name, r in schedule.items():
        if r["interleavings"] == 0 or r["outcomes"] == 0:
            failures.append(f"{name} [schedule] enumerated nothing")
        if r["interleavings_per_sec"] < MIN_INTERLEAVINGS_PER_S:
            failures.append(
                f"{name} [schedule] ran at "
                f"{r['interleavings_per_sec']:.1f} interleavings/s "
                f"(floor {MIN_INTERLEAVINGS_PER_S})"
            )

    crash = [r for r in rows if r["mode"] == "crash"]
    if len(crash) < MIN_CRASH_SHAPES:
        failures.append(
            f"crash pass covered {len(crash)} shape(s) "
            f"(need >= {MIN_CRASH_SHAPES})"
        )
    for r in crash:
        if r["crash_points"] == 0:
            failures.append(f"{r['shape']} [crash] explored no crash points")
        elif r["recoveries"] <= r["crash_points"]:
            failures.append(
                f"{r['shape']} [crash] audited {r['recoveries']} "
                f"recoveries over {r['crash_points']} points "
                f"(expected > 1 mode per point)"
            )
        if r["crash_points_per_sec"] < MIN_CRASH_POINTS_PER_S:
            failures.append(
                f"{r['shape']} [crash] ran at "
                f"{r['crash_points_per_sec']:.1f} crash points/s "
                f"(floor {MIN_CRASH_POINTS_PER_S})"
            )

    if failures:
        print(f"{path}: litmus guard FAILED")
        for f_ in failures:
            print(f"  - {f_}")
        return 1

    total_points = sum(r["crash_points"] for r in crash)
    print(
        f"{path}: litmus guard ok ({len(schedule)} shapes enumerated, "
        f"{total_points} crash points audited across {len(crash)} shapes, "
        f"0 findings)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
