#!/usr/bin/env python3
"""Acceptance guard for the PaxKV serving frontend.

Validates two inputs:

  * BENCH_paxkv.json (written by bench/abl_paxkv) — the in-process
    ablation. Enforces, per shard count >= 2, that cross-shard epoch group
    commit issues FEWER log flushes per acknowledged write op than
    per-shard independent commit, that group mode actually committed in
    waves, and that every row's percentiles are sane
    (0 < p50 <= p99 <= p999) with nonzero throughput.
  * Optionally, loadgen reports (paxkv-loadgen --json) passed as extra
    arguments — the loopback smoke against the real binary. Enforces zero
    op errors, nonzero throughput, sane percentiles, and (for group-mode
    servers) waves > 0 with multi-shard waves observed at >= 2 shards.

Usage: check_paxkv.py [BENCH_paxkv.json] [loadgen1.json loadgen2.json ...]
"""

import json
import sys


def sane_latency(p50, p99, p999, label, failures):
    if not 0 < p50 <= p99 <= p999:
        failures.append(
            f"{label}: implausible percentiles "
            f"p50={p50} p99={p99} p999={p999}"
        )


def check_bench(path, failures):
    with open(path) as f:
        bench = json.load(f)

    rows = bench["rows"]
    closed = [r for r in rows if r["loop"] == "closed"]
    by_shards = {}
    for r in closed:
        by_shards.setdefault(r["shards"], {})[r["mode"]] = r

    compared = 0
    for shards, modes in sorted(by_shards.items()):
        if shards < 2 or "group" not in modes or "independent" not in modes:
            continue
        g, ind = modes["group"], modes["independent"]
        if g["flushes_per_op"] >= ind["flushes_per_op"]:
            failures.append(
                f"{shards} shards: group commit {g['flushes_per_op']:.4f} "
                f"flushes/op >= independent {ind['flushes_per_op']:.4f}"
            )
        if g["waves"] == 0:
            failures.append(f"{shards} shards: group mode issued no waves")
        if ind["waves"] != 0:
            failures.append(
                f"{shards} shards: independent mode issued waves"
            )
        compared += 1
    if compared == 0:
        failures.append(f"{path}: no group-vs-independent pair at >=2 shards")

    for r in rows:
        label = f"{path} row {r['mode']}/{r['loop']}/{r['shards']}sh"
        if r["ops"] == 0 or r["throughput_ops_s"] <= 0:
            failures.append(f"{label}: no throughput")
        sane_latency(r["p50_ns"], r["p99_ns"], r["p999_ns"], label, failures)
        if r["acked_write_ops"] == 0:
            failures.append(f"{label}: no acknowledged writes")
    return compared


def check_loadgen(path, failures):
    with open(path) as f:
        report = json.load(f)

    label = f"{path} ({report['mode']} loop)"
    if report["errors"] != 0:
        failures.append(f"{label}: {report['errors']} op error(s)")
    if report["ops"] == 0 or report["throughput_ops_s"] <= 0:
        failures.append(f"{label}: no throughput")
    lat = report["latency_ns"]
    sane_latency(lat["p50"], lat["p99"], lat["p999"], label, failures)

    server = report.get("server", {})
    if server.get("commit_mode") == "group":
        gc = server["group_commit"]
        if gc["waves"] == 0:
            failures.append(f"{label}: group server issued no waves")
        if server["shards"] >= 2 and gc["max_wave_shards"] < 2:
            failures.append(
                f"{label}: no wave ever spanned >= 2 shards "
                f"(max {gc['max_wave_shards']})"
            )
        if server["acked_write_ops"] and server["log_flushes_per_acked_op"] >= 1.0:
            failures.append(
                f"{label}: {server['log_flushes_per_acked_op']:.3f} "
                "flushes/acked-op — group commit is not amortizing"
            )


def main() -> int:
    args = sys.argv[1:] or ["BENCH_paxkv.json"]
    failures = []
    compared = 0
    loadgens = 0
    for path in args:
        if "BENCH" in path:
            compared += check_bench(path, failures)
        else:
            check_loadgen(path, failures)
            loadgens += 1

    if failures:
        print("paxkv guard FAILED")
        for f_ in failures:
            print(f"  - {f_}")
        return 1

    print(
        f"paxkv guard ok ({compared} group-vs-independent comparison(s), "
        f"{loadgens} loadgen report(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
