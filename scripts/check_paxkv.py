#!/usr/bin/env python3
"""Acceptance guard for the PaxKV serving frontend.

Validates two inputs:

  * BENCH_paxkv.json (written by bench/abl_paxkv) — the in-process
    ablation. Enforces, per shard count >= 2, that cross-shard epoch group
    commit issues FEWER log flushes per acknowledged write op than
    per-shard independent commit (comparing only baseline rows:
    loop_threads == 1 on the epoll backend), that group mode actually
    committed in waves, that every row's percentiles are sane
    (0 < p50 <= p99 <= p999) with nonzero throughput, that N-loop
    throughput stays within tolerance of 1-loop throughput per backend
    (multi-loop plumbing must not cost real throughput; on single-core CI
    runners extra loops cannot win, so the gate is a floor, not a >=),
    and that the DES calibration's predicted-vs-measured error on the
    unseen closed-loop configuration is within band.
  * Optionally, loadgen reports (paxkv-loadgen --json) passed as extra
    arguments — the loopback smoke against the real binary. Enforces zero
    op errors, nonzero throughput, sane percentiles, and (for group-mode
    servers) waves > 0 with multi-shard waves observed at >= 2 shards.

Usage: check_paxkv.py [BENCH_paxkv.json] [loadgen1.json loadgen2.json ...]
"""

import json
import sys

# N-loop throughput must be at least this fraction of 1-loop throughput
# (same backend, same config). On a multi-core host N loops should win
# outright; on the single-core CI runner the best achievable is parity
# minus scheduling noise, hence a floor rather than a strict >=.
LOOP_SCALING_FLOOR = 0.70

# Predicted-vs-measured bands for the gated unseen closed-loop config.
# Throughput is the primary claim (the DES exists to predict capacity);
# tail percentiles on an oversubscribed 1-CPU runner carry scheduling
# noise the server model cannot see, so they get a wider band.
CALIBRATION_MAX_ERR = {"throughput": 0.35, "p50": 0.50, "p95": 0.50, "p99": 0.50}


def sane_latency(p50, p99, p999, label, failures):
    if not 0 < p50 <= p99 <= p999:
        failures.append(
            f"{label}: implausible percentiles "
            f"p50={p50} p99={p99} p999={p999}"
        )


def check_bench(path, failures):
    with open(path) as f:
        bench = json.load(f)

    rows = bench["rows"]
    # Mode comparison uses only baseline rows (1 epoll loop): loop-scaling
    # rows repeat the group config at other loop counts/backends and must
    # not shadow the ablation pair.
    closed = [
        r
        for r in rows
        if r["loop"] == "closed"
        and r.get("loop_threads", 1) == 1
        and r.get("backend", "epoll") == "epoll"
    ]
    by_shards = {}
    for r in closed:
        by_shards.setdefault(r["shards"], {}).setdefault(r["mode"], r)

    compared = 0
    for shards, modes in sorted(by_shards.items()):
        if shards < 2 or "group" not in modes or "independent" not in modes:
            continue
        g, ind = modes["group"], modes["independent"]
        if g["flushes_per_op"] >= ind["flushes_per_op"]:
            failures.append(
                f"{shards} shards: group commit {g['flushes_per_op']:.4f} "
                f"flushes/op >= independent {ind['flushes_per_op']:.4f}"
            )
        if g["waves"] == 0:
            failures.append(f"{shards} shards: group mode issued no waves")
        if ind["waves"] != 0:
            failures.append(
                f"{shards} shards: independent mode issued waves"
            )
        compared += 1
    if compared == 0:
        failures.append(f"{path}: no group-vs-independent pair at >=2 shards")

    for r in rows:
        label = (
            f"{path} row {r['mode']}/{r['loop']}/{r['shards']}sh/"
            f"{r.get('backend', 'epoll')}x{r.get('loop_threads', 1)}"
        )
        if r["ops"] == 0 or r["throughput_ops_s"] <= 0:
            failures.append(f"{label}: no throughput")
        sane_latency(r["p50_ns"], r["p99_ns"], r["p999_ns"], label, failures)
        if r["acked_write_ops"] == 0:
            failures.append(f"{label}: no acknowledged writes")

    check_loop_scaling(path, bench, failures)
    check_calibration(path, bench, failures)
    return compared


def check_loop_scaling(path, bench, failures):
    """N-loop throughput >= LOOP_SCALING_FLOOR x 1-loop, per backend."""
    best = {}  # (backend, loop_threads) -> max throughput
    for r in bench["rows"]:
        if r["loop"] != "closed" or r["mode"] != "group":
            continue
        key = (r.get("backend", "epoll"), r.get("loop_threads", 1))
        best[key] = max(best.get(key, 0.0), r["throughput_ops_s"])

    backends = {b for b, _ in best}
    if bench.get("io_uring_supported") and "io_uring" not in backends:
        failures.append(
            f"{path}: io_uring supported but no io_uring rows present"
        )

    scaled = 0
    for backend in sorted(backends):
        base = best.get((backend, 1))
        multi = [
            (n, tput) for (b, n), tput in best.items() if b == backend and n > 1
        ]
        if base is None or not multi:
            continue
        for n, tput in sorted(multi):
            if tput < LOOP_SCALING_FLOOR * base:
                failures.append(
                    f"{path}: {backend} {n}-loop throughput {tput:.0f} < "
                    f"{LOOP_SCALING_FLOOR:.2f} x 1-loop {base:.0f}"
                )
            scaled += 1
    if scaled == 0:
        failures.append(f"{path}: no loop-scaling pair (1 vs N loops) found")


def check_calibration(path, bench, failures):
    """The DES prediction for the unseen config must land in band."""
    cal = bench.get("calibration")
    if cal is None:
        failures.append(f"{path}: no calibration object")
        return
    fitted = cal["fitted"]
    if not fitted["service_us"] > 0:
        failures.append(f"{path}: calibration fitted service_us <= 0")
    if fitted["base_rtt_us"] < 0:
        failures.append(f"{path}: calibration fitted base_rtt_us < 0")
    for metric, band in CALIBRATION_MAX_ERR.items():
        err = cal["error"][metric]
        if err > band:
            failures.append(
                f"{path}: calibration {metric} error {err:.1%} exceeds "
                f"the {band:.0%} band (predicted "
                f"{cal['predicted']}, measured {cal['measured']})"
            )


def check_loadgen(path, failures):
    with open(path) as f:
        report = json.load(f)

    label = f"{path} ({report['mode']} loop)"
    if report["errors"] != 0:
        failures.append(f"{label}: {report['errors']} op error(s)")
    if report["ops"] == 0 or report["throughput_ops_s"] <= 0:
        failures.append(f"{label}: no throughput")
    lat = report["latency_ns"]
    sane_latency(lat["p50"], lat["p99"], lat["p999"], label, failures)

    server = report.get("server", {})
    if server.get("commit_mode") == "group":
        gc = server["group_commit"]
        if gc["waves"] == 0:
            failures.append(f"{label}: group server issued no waves")
        if server["shards"] >= 2 and gc["max_wave_shards"] < 2:
            failures.append(
                f"{label}: no wave ever spanned >= 2 shards "
                f"(max {gc['max_wave_shards']})"
            )
        if server["acked_write_ops"] and server["log_flushes_per_acked_op"] >= 1.0:
            failures.append(
                f"{label}: {server['log_flushes_per_acked_op']:.3f} "
                "flushes/acked-op — group commit is not amortizing"
            )


def main() -> int:
    args = sys.argv[1:] or ["BENCH_paxkv.json"]
    failures = []
    compared = 0
    loadgens = 0
    for path in args:
        if "BENCH" in path:
            compared += check_bench(path, failures)
        else:
            check_loadgen(path, failures)
            loadgens += 1

    if failures:
        print("paxkv guard FAILED")
        for f_ in failures:
            print(f"  - {f_}")
        return 1

    print(
        f"paxkv guard ok ({compared} group-vs-independent comparison(s), "
        f"{loadgens} loadgen report(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
