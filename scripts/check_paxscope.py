#!/usr/bin/env python3
"""Perf guard for PaxScope: fail CI if offline analysis gets too slow.

Reads BENCH_paxscope.json (written by bench/abl_paxscope) and enforces:

  * full-pipeline throughput >= 50k events/s — the analyzer must chew
    through CI's recorded torture traces (millions of events) in seconds,
    not minutes. The floor is ~25x below the native Release figure so the
    guard also passes under ASan.
  * findings == 0 on every row — the synthesized stream carries every
    ordering edge; a finding here is an analyzer false positive and blocks.
  * every row processed events and built HB edges (events > 0,
    hb_edges > 0) — guards against an empty trace trivially passing.

Usage: check_paxscope.py [path/to/BENCH_paxscope.json]
"""

import json
import sys

MIN_FULL_EVENTS_PER_S = 50_000


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_paxscope.json"
    with open(path) as f:
        bench = json.load(f)

    failures = []

    full_rows = [r for r in bench["rows"] if r["config"] == "full"]
    if not full_rows:
        failures.append("no 'full' row in the report")
    else:
        rate = full_rows[0]["events_per_s"]
        if rate < MIN_FULL_EVENTS_PER_S:
            failures.append(
                f"full-pipeline analysis ran at {rate:.0f} events/s "
                f"(floor {MIN_FULL_EVENTS_PER_S})"
            )

    for r in bench["rows"]:
        if r["findings"] != 0:
            failures.append(
                f"row config={r['config']} reported {r['findings']} "
                f"finding(s) on the clean stream"
            )
        if r["events"] == 0 or r["hb_edges"] == 0:
            failures.append(
                f"row config={r['config']} processed no events/edges"
            )

    if failures:
        print(f"{path}: paxscope guard FAILED")
        for f_ in failures:
            print(f"  - {f_}")
        return 1

    rate = full_rows[0]["events_per_s"]
    print(
        f"{path}: paxscope guard ok "
        f"(full pipeline {rate:.0f} events/s >= {MIN_FULL_EVENTS_PER_S}, "
        f"0 findings, {len(bench['rows'])} rows live)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
