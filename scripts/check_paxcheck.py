#!/usr/bin/env python3
"""Perf guard for PaxCheck: fail CI if the checker gets too expensive.

Reads BENCH_paxcheck.json (written by bench/abl_paxcheck) and enforces:

  * overhead_ratio_batched <= 2.0 — with the checker attached, persist()
    on the batched host-sync configuration (the default-shaped production
    path) costs at most 2x the unchecked run. The checker is meant to ride
    along in every stress test; past 2x people start turning it off.
  * violations == 0 — the checker must be silent on the correct
    implementation; a violation here is either a real ordering bug or a
    checker false positive, and both block.
  * every row processed events (events > 0) — guards against the checker
    silently detaching and the ratio trivially passing.

Usage: check_paxcheck.py [path/to/BENCH_paxcheck.json]
"""

import json
import sys

MAX_OVERHEAD_RATIO = 2.0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_paxcheck.json"
    with open(path) as f:
        bench = json.load(f)

    failures = []

    ratio = bench["overhead_ratio_batched"]
    if ratio > MAX_OVERHEAD_RATIO:
        failures.append(
            f"checker-on overhead on the batched config is {ratio:.2f}x "
            f"(limit {MAX_OVERHEAD_RATIO}x)"
        )

    if bench["violations"] != 0:
        failures.append(
            f"checker reported {bench['violations']} violation(s) on the "
            f"clean workload"
        )

    dead_rows = [r for r in bench["rows"] if r["events"] == 0]
    for r in dead_rows:
        failures.append(f"row config={r['config']} processed zero events")

    if failures:
        print(f"{path}: paxcheck guard FAILED")
        for f_ in failures:
            print(f"  - {f_}")
        return 1

    print(
        f"{path}: paxcheck guard ok "
        f"(batched overhead {ratio:.2f}x <= {MAX_OVERHEAD_RATIO}x, "
        f"0 violations, {len(bench['rows'])} rows live)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
