#!/usr/bin/env python3
"""Perf guard for the incremental diff: fail CI if line tracking regresses.

Reads BENCH_incremental_diff.json (written by bench/abl_incremental_diff)
and enforces:

  * lines_diffed_per_line_written_at_10pct <= 1.5 — with tracking on at
    ~10% dirty-line density, the diff must memcmp at most 1.5 lines per
    line actually written (a full-page scan would be ~10.7).
  * memcmp_bytes_reduction_at_12pct_density >= 4.0 — tracking must cut
    memcmp'd bytes at least 4x versus the untracked path at 8/64 density.
  * tracking_off_full_scan is true — the escape hatch still scans every
    line, so the equivalence tests keep meaning something.
  * every sweep row recovered the expected state (correct == true).

Usage: check_diff_perf.py [path/to/BENCH_incremental_diff.json]
"""

import json
import sys

MAX_DIFFED_PER_WRITTEN = 1.5
MIN_MEMCMP_REDUCTION = 4.0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_incremental_diff.json"
    with open(path) as f:
        bench = json.load(f)

    failures = []

    ratio = bench["lines_diffed_per_line_written_at_10pct"]
    if ratio > MAX_DIFFED_PER_WRITTEN:
        failures.append(
            f"lines diffed per line written at ~10% density is {ratio:.3f} "
            f"(limit {MAX_DIFFED_PER_WRITTEN})"
        )

    reduction = bench["memcmp_bytes_reduction_at_12pct_density"]
    if reduction < MIN_MEMCMP_REDUCTION:
        failures.append(
            f"memcmp bytes reduction at 12.5% density is {reduction:.2f}x "
            f"(need >= {MIN_MEMCMP_REDUCTION}x)"
        )

    if not bench["tracking_off_full_scan"]:
        failures.append("track_lines=false no longer scans every line")

    bad_rows = [r for r in bench["rows"] if not r["correct"]]
    for r in bad_rows:
        failures.append(
            f"row density={r['density_lines']} track={r['track_lines']} "
            f"tuner={r['adaptive_sync']} recovered wrong state"
        )

    if failures:
        print(f"{path}: perf guard FAILED")
        for f_ in failures:
            print(f"  - {f_}")
        return 1

    print(
        f"{path}: perf guard ok "
        f"(diffed/written {ratio:.3f} <= {MAX_DIFFED_PER_WRITTEN}, "
        f"memcmp reduction {reduction:.2f}x >= {MIN_MEMCMP_REDUCTION}x, "
        f"{len(bench['rows'])} rows correct)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
