#!/usr/bin/env python3
"""Perf guard for pipelined epochs: fail CI if the epoch pipeline regresses.

Reads BENCH_epoch_pipeline.json (written by bench/abl_epoch_pipeline)
and enforces:

  * stall_ratio_pipelined_ring_vs_blocking <= 0.5 — at 12.5% dirty-line
    density, pipelined mutation stall per persist must be at most half the
    blocking path's (>= 2x reduction).
  * ring_log_append_acquisitions == 0 — the lock-free undo-append ring must
    fully replace the log mutex on its hot path.
  * the ring rows actually staged records through the ring
    (log_ring_appends > 0), so the zero above means "ring used", not
    "nothing logged".
  * every config row recovered the expected state (correct == true).

Usage: check_epoch_pipeline.py [path/to/BENCH_epoch_pipeline.json]
"""

import json
import sys

MAX_STALL_RATIO = 0.5


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_epoch_pipeline.json"
    with open(path) as f:
        bench = json.load(f)

    failures = []

    ratio = bench["stall_ratio_pipelined_ring_vs_blocking"]
    if ratio > MAX_STALL_RATIO:
        failures.append(
            f"pipelined/blocking mutation-stall ratio is {ratio:.3f} "
            f"(limit {MAX_STALL_RATIO})"
        )

    acq = bench["ring_log_append_acquisitions"]
    if acq != 0:
        failures.append(
            f"ring path took the log-append mutex {acq} time(s) (must be 0)"
        )

    for r in bench["rows"]:
        if r["ring"] and r["log_ring_appends"] == 0:
            failures.append(f"row {r['mode']}: ring enabled but never used")
        if not r["ring"] and r["log_ring_appends"] != 0:
            failures.append(f"row {r['mode']}: ring used despite mutex mode")
        if not r["correct"]:
            failures.append(f"row {r['mode']} recovered wrong state")

    if failures:
        print(f"{path}: perf guard FAILED")
        for f_ in failures:
            print(f"  - {f_}")
        return 1

    print(
        f"{path}: perf guard ok "
        f"(stall ratio {ratio:.3f} <= {MAX_STALL_RATIO}, "
        f"ring log-mutex acquisitions 0, "
        f"{len(bench['rows'])} rows correct)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
