#include "pax/baselines/pmdk/pvector.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pax::baselines::pmdk {
namespace {

using testing::TestPool;

struct PVectorFixture : ::testing::Test {
  TestPool tp = TestPool::create(4 << 20, 256 * 1024);
};

TEST_F(PVectorFixture, PushBackAndGet) {
  TxRuntime tx(&tp.pool);
  auto vec = PVector::create(&tx).value();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(vec.push_back(i * 3).is_ok());
  }
  EXPECT_EQ(vec.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(vec.get(i), std::optional(i * 3));
  }
  EXPECT_FALSE(vec.get(100).has_value());
}

TEST_F(PVectorFixture, GrowthDoublesCapacityAndPreservesContents) {
  TxRuntime tx(&tp.pool);
  auto vec = PVector::create(&tx, /*initial_capacity=*/4).value();
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(vec.push_back(1000 + i).is_ok());
  }
  EXPECT_GE(vec.capacity(), 50u);
  EXPECT_EQ(vec.capacity(), 64u);  // 4 → 8 → 16 → 32 → 64
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_EQ(vec.get(i), std::optional(1000 + i));
  }
}

TEST_F(PVectorFixture, SetAndPopBack) {
  TxRuntime tx(&tp.pool);
  auto vec = PVector::create(&tx).value();
  ASSERT_TRUE(vec.push_back(1).is_ok());
  ASSERT_TRUE(vec.push_back(2).is_ok());
  ASSERT_TRUE(vec.set(0, 99).is_ok());
  EXPECT_EQ(vec.get(0), std::optional<std::uint64_t>(99));
  ASSERT_TRUE(vec.pop_back().is_ok());
  EXPECT_EQ(vec.size(), 1u);
  EXPECT_FALSE(vec.get(1).has_value());
  EXPECT_FALSE(vec.set(1, 5).is_ok());
  ASSERT_TRUE(vec.pop_back().is_ok());
  EXPECT_EQ(vec.pop_back().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PVectorFixture, DurableAcrossCrash) {
  {
    TxRuntime tx(&tp.pool);
    auto vec = PVector::create(&tx, 4).value();
    for (std::uint64_t i = 0; i < 200; ++i) {
      ASSERT_TRUE(vec.push_back(i).is_ok());
    }
  }
  tp.device->crash(pmem::CrashConfig::drop_all());
  {
    TxRuntime tx(&tp.pool);
    auto vec = PVector::open(&tx).value();
    ASSERT_EQ(vec.size(), 200u);
    for (std::uint64_t i = 0; i < 200; ++i) {
      ASSERT_EQ(vec.get(i), std::optional(i));
    }
  }
}

TEST_F(PVectorFixture, CrashMidGrowthKeepsOldArray) {
  // Stage a growth transaction whose header flips are durable in the log
  // but whose commit never lands: recovery restores the old array view.
  {
    TxRuntime tx(&tp.pool);
    auto vec = PVector::create(&tx, 4).value();
    for (std::uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(vec.push_back(10 + i).is_ok());
    }
    // The 5th push triggers growth; emulate a crash inside it by running
    // the same steps by hand without committing.
    ASSERT_TRUE(tx.tx_begin().is_ok());
    // (snapshot + clobber the array offset like grow_in_tx would)
    const PoolOffset base = tp.pool.data_offset();
    ASSERT_TRUE(tx.tx_snapshot(base + 24, 8).is_ok());
    const std::uint64_t bogus = base + 999 * 8;
    ASSERT_TRUE(
        tx.tx_store(base + 24, std::as_bytes(std::span(&bogus, 1))).is_ok());
    tp.device->flush_range(base + 24, 8);
    tp.device->drain();
  }
  tp.device->crash(pmem::CrashConfig::drop_all());
  {
    TxRuntime tx(&tp.pool);
    EXPECT_EQ(tx.stats().recovered_txs, 1u);
    auto vec = PVector::open(&tx).value();
    ASSERT_EQ(vec.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
      ASSERT_EQ(vec.get(i), std::optional(10 + i));
    }
    // Still usable: growth completes cleanly now.
    ASSERT_TRUE(vec.push_back(14).is_ok());
    EXPECT_EQ(vec.capacity(), 8u);
  }
}

TEST_F(PVectorFixture, OpenWithoutCreateFails) {
  TxRuntime tx(&tp.pool);
  EXPECT_FALSE(PVector::open(&tx).ok());
}

}  // namespace
}  // namespace pax::baselines::pmdk
