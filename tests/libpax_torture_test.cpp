// Generational torture: a pool lives through many crash/recover
// generations. Each generation attaches, mutates an unmodified
// std::unordered_map through a random mixture of features (sync persists,
// §6 async persists, background sync_steps, erases, overwrites), then dies
// at a random point under a random crash mode. An oracle tracks the last
// committed snapshot across generations; every recovery must reproduce it
// exactly — including the allocator state staying sound enough to keep
// absorbing mutations for dozens of generations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>

#include "pax/check/checker.hpp"
#include "pax/check/trace_file.hpp"
#include "pax/common/rng.hpp"
#include "pax/libpax/persistent.hpp"

namespace pax::libpax {
namespace {

// When PAX_TRACE_DIR is set (the CI analyze step does), every torture run
// records its full PaxCheck event stream and writes it there as a .paxevt —
// raw material for the offline PaxScope pass, which must find nothing.
const char* trace_dir() { return std::getenv("PAX_TRACE_DIR"); }

void maybe_write_trace(check::Checker& checker, const std::string& stem) {
  const char* dir = trace_dir();
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + stem + ".paxevt";
  ASSERT_TRUE(check::write_trace(path, checker.recorded_events()).is_ok())
      << path;
}

using MapAlloc =
    PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
using PMap = std::unordered_map<std::uint64_t, std::uint64_t,
                                std::hash<std::uint64_t>,
                                std::equal_to<std::uint64_t>, MapAlloc>;

class TortureTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TortureTest, GenerationsOfCrashesNeverLoseACommittedSnapshot) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  // Every generation — mutation mix, crashes, recoveries — runs under
  // PaxCheck; the report is verified once per generation below.
  check::CheckerOptions checker_opts;
  checker_opts.record_events = trace_dir() != nullptr;
  check::Checker checker(checker_opts);
  pm->set_checker(&checker);
  RuntimeOptions opts;
  opts.log_size = 4 << 20;
  opts.device.log_flush_batch_bytes = 256;
  opts.device.hbm.capacity_lines = 256;  // small buffer: eviction pressure
  opts.device.hbm.ways = 4;
  // The hundreds digit of the seed picks the sync-path flavor, so the same
  // generational grinder covers every diff configuration: 3xx = line
  // tracking with static knobs (the default), 4xx = tracking plus the
  // adaptive tuner, 5xx = tracking off (the page-granular PR 2 path).
  if (seed >= 500) {
    opts.track_lines = false;
  } else if (seed >= 400) {
    opts.adaptive_sync = true;
  }

  std::map<std::uint64_t, std::uint64_t> committed_oracle;
  Epoch committed_epoch = 0;

  constexpr int kGenerations = 25;
  for (int gen = 0; gen < kGenerations; ++gen) {
    // --- Recover and verify against the committed oracle ---------------
    auto rt = PaxRuntime::attach(pm.get(), opts).value();
    ASSERT_EQ(rt->committed_epoch(), committed_epoch) << "gen " << gen;
    auto map = Persistent<PMap>::open(*rt).value();
    ASSERT_EQ(map->size(), committed_oracle.size()) << "gen " << gen;
    for (const auto& [k, v] : committed_oracle) {
      auto it = map->find(k);
      ASSERT_NE(it, map->end()) << "gen " << gen << " key " << k;
      ASSERT_EQ(it->second, v) << "gen " << gen << " key " << k;
    }

    // --- Mutate with a random feature mixture ---------------------------
    std::map<std::uint64_t, std::uint64_t> working = committed_oracle;
    const std::uint64_t ops = 50 + rng.next_below(400);
    bool sealed_pending = false;
    std::map<std::uint64_t, std::uint64_t> sealed_oracle;
    Epoch sealed_epoch = 0;

    for (std::uint64_t i = 0; i < ops; ++i) {
      const double dice = rng.next_double();
      const std::uint64_t key = 1 + rng.next_below(300);
      if (dice < 0.55) {
        const std::uint64_t value = rng.next();
        (*map)[key] = value;
        working[key] = value;
      } else if (dice < 0.7) {
        map->erase(key);
        working.erase(key);
      } else if (dice < 0.8) {
        rt->sync_step();
        if (sealed_pending) {
          // sync_step completes a pending async commit.
          committed_oracle = sealed_oracle;
          committed_epoch = sealed_epoch;
          sealed_pending = false;
        }
      } else if (dice < 0.9) {
        auto e = rt->persist();  // completes any pending seal too
        ASSERT_TRUE(e.ok()) << e.status().to_string();
        committed_oracle = working;
        committed_epoch = e.value();
        sealed_pending = false;
      } else {
        auto e = rt->persist_async();
        ASSERT_TRUE(e.ok()) << e.status().to_string();
        if (sealed_pending) {
          // The previous seal was committed as part of this call.
          committed_oracle = sealed_oracle;
          committed_epoch = sealed_epoch;
        }
        sealed_oracle = working;
        sealed_epoch = e.value();
        sealed_pending = true;
      }
    }

    // --- Die at a random moment under a random crash mode ----------------
    rt.reset();  // volatile region + device state gone (no clean shutdown)
    const double mode = rng.next_double();
    if (mode < 0.4) {
      pm->crash(pmem::CrashConfig::drop_all());
    } else if (mode < 0.7) {
      pm->crash(pmem::CrashConfig::random(0.5, seed * 100 + gen));
    } else {
      pm->crash(pmem::CrashConfig::torn(0.6, seed * 100 + gen));
    }
    auto report = checker.report();
    ASSERT_TRUE(report.clean()) << "gen " << gen << "\n" << report.to_string();
  }
  pm->set_checker(nullptr);
  maybe_write_trace(checker, "torture_" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest,
                         ::testing::Values(301, 302, 303, 304, 401, 402, 501,
                                           502));

}  // namespace
}  // namespace pax::libpax
