// Integration test of the paxctl CLI: prepare pools/traces on disk, invoke
// the real binary, check exit codes and key output lines.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "pax/check/trace_file.hpp"
#include "pax/coherence/trace.hpp"
#include "pax/libpax/persistent.hpp"
#include "pax/model/calibrate.hpp"

#ifndef PAXCTL_PATH
#error "PAXCTL_PATH must be defined by the build"
#endif

namespace pax {
namespace {

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult run(const std::string& args) {
  const std::string cmd = std::string(PAXCTL_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 512> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    output += buf.data();
  }
  const int status = ::pclose(pipe);
  return {WEXITSTATUS(status), output};
}

const std::string kPool = "/tmp/paxctl_test.pool";

void make_pool(bool persist_something) {
  std::remove(kPool.c_str());
  auto rt = libpax::PaxRuntime::map_pool(kPool, 16 << 20).value();
  if (persist_something) {
    rt->vpm_base()[8192] = std::byte{0x7a};
    ASSERT_TRUE(rt->persist().ok());
  }
}

TEST(PaxctlTest, InfoOnValidPool) {
  make_pool(true);
  auto r = run("info " + kPool);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("committed epoch: 1"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("libpax heap:     present"), std::string::npos);
  std::remove(kPool.c_str());
}

TEST(PaxctlTest, VerifyCleanPool) {
  make_pool(true);
  auto r = run("verify " + kPool);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("OK   header"), std::string::npos);
  EXPECT_NE(r.output.find("pool is clean"), std::string::npos);
  std::remove(kPool.c_str());
}

TEST(PaxctlTest, LogDecodesRecords) {
  make_pool(true);
  auto r = run("log " + kPool);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("LINE_UNDO"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("stale"), std::string::npos);
  std::remove(kPool.c_str());
}

TEST(PaxctlTest, RecoverRunsOnPool) {
  make_pool(true);
  auto r = run("recover " + kPool);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("recovered to epoch 1"), std::string::npos)
      << r.output;
  std::remove(kPool.c_str());
}

TEST(PaxctlTest, HexdumpShowsBytes) {
  make_pool(true);
  auto r = run("hexdump " + kPool + " 0 32");
  EXPECT_EQ(r.exit_code, 0);
  // Pool magic "PAXPOOL1" appears in the ASCII column of the first line.
  EXPECT_NE(r.output.find("PAXPOOL1"), std::string::npos) << r.output;
  std::remove(kPool.c_str());
}

TEST(PaxctlTest, RejectsGarbageFile) {
  const std::string junk = "/tmp/paxctl_junk.bin";
  std::FILE* f = std::fopen(junk.c_str(), "wb");
  std::fputs("this is not a pool", f);
  std::fclose(f);
  auto r = run("info " + junk);
  EXPECT_NE(r.exit_code, 0);
  std::remove(junk.c_str());
}

TEST(PaxctlTest, TraceSummary) {
  const std::string trace_path = "/tmp/paxctl_test.trace";
  std::vector<coherence::CxlEvent> events = {
      {coherence::CxlOp::kRdShared, LineIndex{1}, false},
      {coherence::CxlOp::kRdOwn, LineIndex{2}, false},
      {coherence::CxlOp::kDirtyEvict, LineIndex{2}, true},
  };
  ASSERT_TRUE(coherence::save_trace(trace_path, events).is_ok());
  auto r = run("trace " + trace_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("3 messages"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("distinct lines touched: 2"), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(PaxctlTest, CheckRunsCleanWorkload) {
  auto r = run("check 32 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("paxcheck: clean"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("event(s)"), std::string::npos) << r.output;
}

TEST(PaxctlTest, ExploreCleanWorkloadSampled) {
  auto r = run("explore 2 2 --every 9");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean: every recovery matched"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("crash point(s)"), std::string::npos) << r.output;
}

TEST(PaxctlTest, CheckReplayRoundTrip) {
  // A .paxevt with one clean store/flush/drain sequence must replay clean.
  const std::string path = "/tmp/paxctl_test.paxevt";
  std::vector<check::Event> events;
  check::Event e;
  e.seq = 1;
  e.type = check::EventType::kStore;
  e.line = 42;
  events.push_back(e);
  e.seq = 2;
  e.type = check::EventType::kFlush;
  events.push_back(e);
  e.seq = 3;
  e.type = check::EventType::kDrain;
  e.line = check::kNoLine;
  events.push_back(e);
  ASSERT_TRUE(check::write_trace(path, events).is_ok());
  auto r = run("check --replay " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("replayed 3 event(s)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("paxcheck: clean"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(PaxctlTest, CheckReplayRejectsCorruptFile) {
  const std::string junk = "/tmp/paxctl_junk.paxevt";
  std::FILE* f = std::fopen(junk.c_str(), "wb");
  std::fputs("definitely not a paxevt trace", f);
  std::fclose(f);
  auto r = run("check --replay " + junk);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find(".paxevt"), std::string::npos) << r.output;
  std::remove(junk.c_str());
}

TEST(PaxctlTest, AnalyzeFlagsRecordedUndoFlushTrace) {
  // Record the online-silent seeded bug via `fix --record`, then feed the
  // .paxevt back through `analyze`: nonzero exit, named finding kind.
  const std::string path = "/tmp/paxctl_scope.paxevt";
  auto rec = run("fix --scenario undo-flush --record " + path);
  ASSERT_NE(rec.output.find("undo-flush-window"), std::string::npos)
      << rec.output;

  auto r = run("analyze " + path);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("undo-flush-window"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("hb edges"), std::string::npos) << r.output;

  auto j = run("analyze " + path + " --json");
  EXPECT_NE(j.exit_code, 0);
  EXPECT_NE(j.output.find("\"clean\":false"), std::string::npos) << j.output;
  EXPECT_NE(j.output.find("\"kind\":\"undo-flush-window\""),
            std::string::npos)
      << j.output;
  std::remove(path.c_str());
}

TEST(PaxctlTest, AnalyzeCleanReplayTraceExitsZero) {
  const std::string path = "/tmp/paxctl_scope_clean.paxevt";
  std::vector<check::Event> events;
  check::Event e;
  e.seq = 1;
  e.type = check::EventType::kStore;
  e.line = 42;
  events.push_back(e);
  e.seq = 2;
  e.type = check::EventType::kFlush;
  events.push_back(e);
  e.seq = 3;
  e.type = check::EventType::kDrain;
  e.line = check::kNoLine;
  events.push_back(e);
  ASSERT_TRUE(check::write_trace(path, events).is_ok());
  auto r = run("analyze " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(PaxctlTest, FixValidateFlipsUndoFlushClean) {
  auto r = run("fix --scenario undo-flush --validate");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FLIPPED CLEAN"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("hoist-log-flush"), std::string::npos) << r.output;
}

TEST(PaxctlTest, UsageOnBadInvocation) {
  auto r = run("frobnicate /tmp/x");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

// Writes a loadgen-shaped --json report whose calibration record comes from
// the serving DES itself under known ground-truth parameters.
void write_loadgen_json(const std::string& path,
                        const model::ServingParams& truth,
                        const model::ServingWorkload& wl) {
  const model::ServingPrediction sim = model::simulate_serving(truth, wl);
  const bool open = wl.open_rate_ops_s > 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(
      f,
      "{\n"
      "  \"mode\": \"%s\",\n"
      "  \"calibration\": {\"mode\": \"%s\", \"connections\": %zu, "
      "\"depth\": %zu, \"write_frac\": %.4f, \"offered_load_ops_s\": %.1f, "
      "\"throughput_ops_s\": %.1f, \"duration_s\": %.4f, "
      "\"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, "
      "\"read_floor_us\": %.2f},\n"
      "  \"server\": {\n  \"loops\": %zu\n  }\n"
      "}\n",
      open ? "open" : "closed", open ? "open" : "closed", wl.connections,
      wl.depth, wl.write_frac, wl.open_rate_ops_s, sim.throughput_ops_s,
      wl.duration_s, sim.p50_us, sim.p95_us, sim.p99_us, sim.read_floor_us,
      truth.loops);
  std::fclose(f);
}

TEST(PaxctlTest, CalibratePredictsUnseenRunWithinBand) {
  model::ServingParams truth;
  truth.loops = 2;
  truth.service_us = 9.0;
  truth.base_rtt_us = 40.0;
  truth.wave_interval_us = 200.0;

  model::ServingWorkload fit_wl;
  fit_wl.connections = 8;
  fit_wl.depth = 8;
  fit_wl.write_frac = 0.5;
  model::ServingWorkload unseen_wl;
  unseen_wl.connections = 16;
  unseen_wl.depth = 4;
  unseen_wl.write_frac = 0.5;

  const std::string fit = "/tmp/paxctl_cal_fit.json";
  const std::string check = "/tmp/paxctl_cal_check.json";
  write_loadgen_json(fit, truth, fit_wl);
  write_loadgen_json(check, truth, unseen_wl);

  // --loops intentionally omitted: it must come from the embedded server
  // document.
  auto r = run("calibrate " + fit + " " + check +
               " --wave-us 200 --tolerance 0.25");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("loops=2"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("within tolerance band"), std::string::npos)
      << r.output;
  std::remove(fit.c_str());
  std::remove(check.c_str());
}

TEST(PaxctlTest, CalibrateFlagsOutOfBandPrediction) {
  model::ServingParams truth;
  truth.loops = 1;
  truth.service_us = 10.0;
  truth.base_rtt_us = 30.0;
  truth.wave_interval_us = 200.0;
  model::ServingWorkload wl;
  wl.connections = 4;
  wl.depth = 8;

  const std::string fit = "/tmp/paxctl_cal_fit2.json";
  const std::string check = "/tmp/paxctl_cal_check2.json";
  write_loadgen_json(fit, truth, wl);
  // The "measured" second run comes from a much slower server than the fit
  // run: no honest prediction can land inside the band.
  model::ServingParams slow = truth;
  slow.service_us = 40.0;
  model::ServingWorkload wl2 = wl;
  wl2.connections = 8;
  write_loadgen_json(check, slow, wl2);

  auto r = run("calibrate " + fit + " " + check + " --tolerance 0.25");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("OUTSIDE tolerance band"), std::string::npos)
      << r.output;
  std::remove(fit.c_str());
  std::remove(check.c_str());
}

TEST(PaxctlTest, CalibrateRejectsReportWithoutRecord) {
  const std::string path = "/tmp/paxctl_cal_norec.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"mode\": \"closed\"}\n", f);
  std::fclose(f);
  auto r = run("calibrate " + path);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("calibration"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pax
