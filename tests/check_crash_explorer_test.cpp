// Seeded-bug coverage for CrashExplorer: each deleted ordering edge must be
// localized to its exact first bad crash index, and the correct twin of the
// same workload must enumerate clean at every crash point (k = 1).
#include "pax/check/crashpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "pax/pmem/pmem_device.hpp"
#include "pax/pmem/pool.hpp"
#include "pax/wal/wal.hpp"
#include "test_util.hpp"

namespace pax {
namespace {

using check::CrashExplorer;
using check::CrashExplorerOptions;
using check::CrashOracle;
using check::ExplorationResult;

constexpr std::size_t kDeviceBytes = 1 << 20;
constexpr std::size_t kLogBytes = 64 * 1024;
constexpr Epoch kEpochs = 3;
constexpr std::uint64_t kLinesPerEpoch = 2;

struct WalBugs {
  bool skip_undo_flush = false;    // Bug A: write-back before undo durable
  bool skip_commit_drain = false;  // Bug B: commit without fence
};

// The §3.3 undo-WAL protocol over a raw device, with both ordering edges
// explicit. Each bug switch deletes one edge; `vulnerable_out` captures the
// first device event index at which the deleted edge matters (set once, on
// whichever execution reaches it first — the count is identical on every
// run, which the explorer verifies).
Status wal_workload(pmem::PmemDevice& dev, CrashOracle& oracle,
                    const WalBugs& bugs, std::uint64_t* vulnerable_out) {
  auto pool = pmem::PmemPool::create(&dev, kLogBytes);
  if (!pool.ok()) return pool.status();
  auto& p = pool.value();
  PAX_RETURN_IF_ERROR(oracle.note_commit(p.committed_epoch()));
  const std::size_t half = (p.log_size() / 2) & ~(kCacheLineSize - 1);
  wal::LogWriter log(&dev, p.log_offset(), half);
  for (Epoch e = 1; e <= kEpochs; ++e) {
    for (std::uint64_t i = 0; i < kLinesPerEpoch; ++i) {
      const LineIndex line{p.data_offset() / kCacheLineSize + i};
      wal::LineUndoPayload undo;
      undo.line_index = line.value;
      undo.old_data = dev.load_line(line);
      auto end = log.append(
          e, wal::RecordType::kLineUndo,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(&undo), sizeof(undo)));
      if (!end.ok()) return end.status();
      if (!bugs.skip_undo_flush) log.flush();  // undo durable before data
      dev.store_line(line, testing::patterned_line(e * 16 + i));
      dev.flush_line(line);
      if (bugs.skip_undo_flush && vulnerable_out != nullptr &&
          *vulnerable_out == 0) {
        *vulnerable_out = dev.crash_events();  // data durable, undo is not
      }
    }
    log.flush();  // no-op edge when per-line flushes ran; catch-up when not
    // Touch a data line after the log flush so the commit genuinely depends
    // on the epoch-closing drain below.
    const LineIndex line{p.data_offset() / kCacheLineSize};
    dev.store_line(line, testing::patterned_line(e * 16));
    dev.flush_line(line);
    if (bugs.skip_commit_drain) {
      if (vulnerable_out != nullptr && *vulnerable_out == 0) {
        *vulnerable_out = dev.crash_events() + 1;  // the epoch-cell store
      }
    } else {
      dev.drain();
    }
    p.commit_epoch(e);
    PAX_RETURN_IF_ERROR(oracle.note_commit(e));
  }
  return Status::ok();
}

CrashExplorer make_explorer(const WalBugs& bugs,
                            std::uint64_t* vulnerable_out,
                            CrashExplorerOptions options) {
  return CrashExplorer(
      kDeviceBytes,
      [bugs, vulnerable_out](pmem::PmemDevice& dev, CrashOracle& oracle) {
        return wal_workload(dev, oracle, bugs, vulnerable_out);
      },
      std::move(options));
}

TEST(CrashExplorer, CleanWorkloadEnumeratesCleanExhaustively) {
  auto explorer = make_explorer(WalBugs{}, nullptr, {});
  auto result = explorer.explore();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const ExplorationResult& r = result.value();
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_EQ(r.first_bad(), check::kNoCrashPoint);
  EXPECT_EQ(r.epochs, static_cast<std::uint64_t>(kEpochs) + 1);
  EXPECT_GT(r.total_events, 0u);
  EXPECT_GT(r.crash_points, 0u);
  // Exhaustive k=1: every point after the baseline was tested, and each
  // tested point was recovered under all three default modes.
  EXPECT_EQ(r.executions, r.crash_points + 1);
  EXPECT_EQ(r.recoveries, 3 * r.crash_points);
}

TEST(CrashExplorer, WritebackBeforeUndoDurableLocalizedExactly) {
  WalBugs bugs;
  bugs.skip_undo_flush = true;
  std::uint64_t vulnerable = 0;
  CrashExplorerOptions options;
  options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
  options.max_findings = 1;  // points ascend, so the first finding is min
  auto explorer = make_explorer(bugs, &vulnerable, options);
  auto result = explorer.explore();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const ExplorationResult& r = result.value();
  ASSERT_FALSE(r.clean());
  ASSERT_NE(vulnerable, 0u);
  // First bad point: the flush that made the data line durable while its
  // undo record was still in the pending overlay.
  EXPECT_EQ(r.first_bad(), vulnerable) << r.to_string();
  EXPECT_NE(r.findings.front().detail.find("diverges"), std::string::npos)
      << r.findings.front().detail;
}

TEST(CrashExplorer, CommitWithoutFenceLocalizedExactly) {
  WalBugs bugs;
  bugs.skip_commit_drain = true;
  std::uint64_t vulnerable = 0;
  CrashExplorerOptions options;
  options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
  options.max_findings = 1;
  auto explorer = make_explorer(bugs, &vulnerable, options);
  auto result = explorer.explore();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const ExplorationResult& r = result.value();
  ASSERT_FALSE(r.clean());
  ASSERT_NE(vulnerable, 0u);
  // The device state is consistent (our simulated flush is immediately
  // durable), so only the PaxCheck audit of the truncated stream sees this
  // bug — at the first crash point whose prefix contains the unfenced
  // epoch commit, i.e. the epoch-cell store itself.
  EXPECT_EQ(r.first_bad(), vulnerable) << r.to_string();
  EXPECT_NE(r.findings.front().detail.find("commit"), std::string::npos)
      << r.findings.front().detail;
}

TEST(CrashExplorer, ApplicationInvariantFailuresBecomeFindings) {
  auto explorer = make_explorer(WalBugs{}, nullptr, {});
  explorer.set_invariant([](pmem::PmemPool&, Epoch) {
    return corruption("app invariant rejected");
  });
  auto result = explorer.explore();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_FALSE(result.value().clean());
  EXPECT_NE(
      result.value().findings.front().detail.find("app invariant rejected"),
      std::string::npos);
}

TEST(CrashExplorer, SampledPointsCoverTheTail) {
  CrashExplorerOptions options;
  options.max_crash_points = 7;
  options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
  auto explorer = make_explorer(WalBugs{}, nullptr, options);
  auto result = explorer.explore();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().clean()) << result.value().to_string();
  EXPECT_LE(result.value().crash_points, 7u);
  // Sampling keeps the last crash point (teardown-adjacent bugs).
  EXPECT_EQ(result.value().executions, result.value().crash_points + 1);
}

TEST(CrashExplorer, WorkloadWithoutSnapshotsIsRejected) {
  CrashExplorer explorer(
      kDeviceBytes,
      [](pmem::PmemDevice& dev, CrashOracle&) -> Status {
        auto pool = pmem::PmemPool::create(&dev, kLogBytes);
        return pool.ok() ? Status::ok() : pool.status();
      },
      {});
  auto result = explorer.explore();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().to_string().find("note_commit"),
            std::string::npos);
}

}  // namespace
}  // namespace pax
