#include "pax/libpax/vpm_region.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace pax::libpax {
namespace {

constexpr std::size_t kRegionSize = 64 * kPageSize;

TEST(VpmRegionTest, FreshRegionIsWritableAndClean) {
  auto region = VpmRegion::create(kRegionSize);
  ASSERT_TRUE(region.ok()) << region.status().to_string();
  auto& r = *region.value();
  std::memset(r.base(), 0x11, kPageSize);  // no protection yet: no fault
  EXPECT_EQ(r.fault_count(), 0u);
  EXPECT_TRUE(r.dirty_pages().empty());
}

TEST(VpmRegionTest, WriteAfterProtectFaultsOncePerPage) {
  auto region = VpmRegion::create(kRegionSize);
  ASSERT_TRUE(region.ok());
  auto& r = *region.value();
  ASSERT_TRUE(r.protect_all().is_ok());

  r.base()[0] = std::byte{1};
  r.base()[100] = std::byte{2};        // same page: no second fault
  r.base()[kPageSize + 5] = std::byte{3};  // second page

  EXPECT_EQ(r.fault_count(), 2u);
  auto dirty = r.dirty_pages();
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], PageIndex{0});
  EXPECT_EQ(dirty[1], PageIndex{1});
}

TEST(VpmRegionTest, ReadsNeverFault) {
  auto region = VpmRegion::create(kRegionSize);
  ASSERT_TRUE(region.ok());
  auto& r = *region.value();
  ASSERT_TRUE(r.protect_all().is_ok());

  volatile std::byte sink{};
  for (std::size_t i = 0; i < kRegionSize; i += kPageSize) sink = r.base()[i];
  (void)sink;
  EXPECT_EQ(r.fault_count(), 0u);
  EXPECT_TRUE(r.dirty_pages().empty());
}

TEST(VpmRegionTest, ReprotectRearmsTracking) {
  auto region = VpmRegion::create(kRegionSize);
  ASSERT_TRUE(region.ok());
  auto& r = *region.value();
  ASSERT_TRUE(r.protect_all().is_ok());

  r.base()[0] = std::byte{1};
  std::vector<PageIndex> pages{PageIndex{0}};
  ASSERT_TRUE(r.protect_pages(pages).is_ok());
  EXPECT_FALSE(r.is_dirty(PageIndex{0}));

  r.base()[1] = std::byte{2};
  EXPECT_EQ(r.fault_count(), 2u);
  EXPECT_TRUE(r.is_dirty(PageIndex{0}));
}

TEST(VpmRegionTest, PartialReprotectLeavesOtherPagesWritable) {
  auto region = VpmRegion::create(kRegionSize);
  ASSERT_TRUE(region.ok());
  auto& r = *region.value();
  ASSERT_TRUE(r.protect_all().is_ok());

  r.base()[0] = std::byte{1};
  r.base()[kPageSize] = std::byte{1};
  std::vector<PageIndex> only_first{PageIndex{0}};
  ASSERT_TRUE(r.protect_pages(only_first).is_ok());

  r.base()[kPageSize + 1] = std::byte{2};  // page 1 still writable: no fault
  EXPECT_EQ(r.fault_count(), 2u);
  EXPECT_TRUE(r.is_dirty(PageIndex{1}));
}

TEST(VpmRegionTest, DirtyPagesSortedAndComplete) {
  auto region = VpmRegion::create(kRegionSize);
  ASSERT_TRUE(region.ok());
  auto& r = *region.value();
  ASSERT_TRUE(r.protect_all().is_ok());

  for (std::size_t p : {7u, 3u, 11u, 0u}) {
    r.base()[p * kPageSize] = std::byte{9};
  }
  auto dirty = r.dirty_pages();
  ASSERT_EQ(dirty.size(), 4u);
  EXPECT_EQ(dirty[0].value, 0u);
  EXPECT_EQ(dirty[1].value, 3u);
  EXPECT_EQ(dirty[2].value, 7u);
  EXPECT_EQ(dirty[3].value, 11u);
}

TEST(VpmRegionTest, ConcurrentWritersAllTracked) {
  auto region = VpmRegion::create(kRegionSize);
  ASSERT_TRUE(region.ok());
  auto& r = *region.value();
  ASSERT_TRUE(r.protect_all().is_ok());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      for (std::size_t p = 0; p < 64; ++p) {
        // All threads hammer all pages: races on the same page must be safe.
        r.base()[p * kPageSize + t] = static_cast<std::byte>(t + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(r.dirty_pages().size(), 64u);
}

TEST(VpmRegionTest, TwoRegionsCoexist) {
  auto a = VpmRegion::create(kRegionSize);
  auto b = VpmRegion::create(kRegionSize);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value()->protect_all().is_ok());
  ASSERT_TRUE(b.value()->protect_all().is_ok());

  a.value()->base()[0] = std::byte{1};
  b.value()->base()[kPageSize] = std::byte{2};
  EXPECT_EQ(a.value()->dirty_pages().size(), 1u);
  EXPECT_EQ(b.value()->dirty_pages().size(), 1u);
  EXPECT_EQ(b.value()->dirty_pages()[0], PageIndex{1});
}

TEST(VpmRegionTest, RejectsUnalignedSize) {
  auto region = VpmRegion::create(kPageSize + 1);
  EXPECT_FALSE(region.ok());
}

}  // namespace
}  // namespace pax::libpax
