// pax::common::ThreadPool: the persistent worker pool behind the device's
// per-stripe persist fan-out and the runtime's parallel dirty-page diff.
#include "pax/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace pax::common {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersDegradesToInlineLoop) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<int> out(64, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);  // no handoff
    out[i] = static_cast<int>(i);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ResultsAreVisibleAfterReturn) {
  // parallel_for's return must happen-after every fn(i): plain (non-atomic)
  // writes by workers are readable by the caller without extra fences.
  ThreadPool pool(4);
  std::vector<std::uint64_t> values(4096);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(values.size(),
                      [&](std::size_t i) { values[i] = i + round; });
    const std::uint64_t sum =
        std::accumulate(values.begin(), values.end(), std::uint64_t{0});
    const std::uint64_t n = values.size();
    EXPECT_EQ(sum, n * (n - 1) / 2 + n * round);
  }
}

TEST(ThreadPoolTest, SingleIndexRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ConcurrentCallersBothComplete) {
  // Two owner threads race parallel_for on one pool; each call must drain
  // its own job even when the workers only help the newest one.
  ThreadPool pool(2);
  std::atomic<int> a{0}, b{0};
  std::thread t1([&] {
    for (int r = 0; r < 100; ++r) {
      pool.parallel_for(37, [&](std::size_t) { a.fetch_add(1); });
    }
  });
  std::thread t2([&] {
    for (int r = 0; r < 100; ++r) {
      pool.parallel_for(53, [&](std::size_t) { b.fetch_add(1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 3700);
  EXPECT_EQ(b.load(), 5300);
}

TEST(ThreadPoolTest, SkewedWorkIsDynamicallyBalanced) {
  // An atomic-cursor pool finishes a one-heavy-index job in ~heavy time,
  // not heavy + (n-1)*light; here we only assert correctness under skew.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for(256, [&](std::size_t i) {
    std::uint64_t spin = (i == 0) ? 200000 : 100;
    std::uint64_t acc = 0;
    for (std::uint64_t k = 0; k < spin; ++k) acc += k * k + i;
    total.fetch_add(acc == 0 ? 1 : 1);
  });
  EXPECT_EQ(total.load(), 256u);
}

}  // namespace
}  // namespace pax::common
