// End-to-end tests of the paging frontend: raw writes into vPM, persist(),
// simulated crashes, recovery, and the §5.1 line-granular logging claim.
#include "pax/libpax/runtime.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 16 << 20;

RuntimeOptions small_log() {
  RuntimeOptions o;
  o.log_size = 256 * 1024;
  // Flush the undo log on every tick so sync_step() really pushes epoch
  // data into PM — making the rollback tests exercise true undo, not just
  // lost volatile state.
  o.device.log_flush_batch_bytes = 0;
  return o;
}

TEST(PaxRuntimeTest, FreshPoolStartsAtEpochZero) {
  auto rt = PaxRuntime::create_in_memory(kPool);
  ASSERT_TRUE(rt.ok()) << rt.status().to_string();
  EXPECT_EQ(rt.value()->committed_epoch(), 0u);
  EXPECT_EQ(rt.value()->recovery_report().records_applied, 0u);
}

TEST(PaxRuntimeTest, PersistAdvancesEpoch) {
  auto rt = PaxRuntime::create_in_memory(kPool).value();
  rt->vpm_base()[4096] = std::byte{42};  // skip heap header page
  auto e1 = rt->persist();
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1.value(), 1u);
  rt->vpm_base()[4096] = std::byte{43};
  auto e2 = rt->persist();
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2.value(), 2u);
}

TEST(PaxRuntimeTest, PersistedBytesSurviveCrash) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
    std::memset(rt->vpm_base() + 8192, 0x5c, 100);
    ASSERT_TRUE(rt->persist().ok());
  }  // runtime destroyed without further persist = crash semantics
  pm->crash(pmem::CrashConfig::drop_all());

  auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rt->vpm_base()[8192 + i], std::byte{0x5c}) << i;
  }
}

TEST(PaxRuntimeTest, UnpersistedBytesRollBackToLastSnapshot) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
    std::memset(rt->vpm_base() + 8192, 0x11, 64);
    ASSERT_TRUE(rt->persist().ok());
    // Epoch 2 overwrites and even pushes data toward PM via sync_step, but
    // never persists.
    std::memset(rt->vpm_base() + 8192, 0x22, 64);
    rt->sync_step();
  }
  pm->crash(pmem::CrashConfig::drop_all());

  auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
  EXPECT_EQ(rt->recovery_report().recovered_epoch, 1u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rt->vpm_base()[8192 + i], std::byte{0x11}) << i;
  }
}

TEST(PaxRuntimeTest, CrashBeforeFirstPersistYieldsEmptyPool) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
    std::memset(rt->vpm_base() + 4096, 0x99, 4096);
    rt->sync_step();  // some of it may reach PM
  }
  pm->crash(pmem::CrashConfig::drop_all());

  auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
  EXPECT_EQ(rt->committed_epoch(), 0u);
  for (int i = 0; i < 4096; ++i) {
    EXPECT_EQ(rt->vpm_base()[4096 + i], std::byte{0}) << i;
  }
}

TEST(PaxRuntimeTest, LineGranularLogging) {
  // Writing 8 bytes in each of 10 *pages* must log 10 cache lines, not 10
  // pages (the §1/§5.1 write-amplification claim: 64 B vs 4 KiB per update).
  auto rt = PaxRuntime::create_in_memory(kPool).value();
  ASSERT_TRUE(rt->persist().ok());  // commit the heap-format writes first
  const auto base_logs = rt->device().stats().first_touch_logs;
  const auto base_found = rt->stats().lines_dirty_found;

  for (std::size_t p = 1; p <= 10; ++p) {
    std::memset(rt->vpm_base() + p * kPageSize + 128, 0xdd, 8);
  }
  ASSERT_TRUE(rt->persist().ok());
  EXPECT_EQ(rt->device().stats().first_touch_logs - base_logs, 10u);
  // Undo log bytes per epoch ≈ 10 × (24 B header + 72 B payload), worlds
  // below 10 pages.
  EXPECT_EQ(rt->stats().lines_dirty_found - base_found, 10u);
}

TEST(PaxRuntimeTest, UntouchedLinesInDirtyPageNotLogged) {
  auto rt = PaxRuntime::create_in_memory(kPool).value();
  ASSERT_TRUE(rt->persist().ok());
  const auto base_logs = rt->device().stats().first_touch_logs;
  const auto base_checked = rt->stats().lines_diff_checked;

  rt->vpm_base()[2 * kPageSize] = std::byte{1};          // line 0 of page 2
  rt->vpm_base()[2 * kPageSize + 3000] = std::byte{1};   // line 46
  ASSERT_TRUE(rt->persist().ok());
  EXPECT_EQ(rt->device().stats().first_touch_logs - base_logs, 2u);
  EXPECT_EQ(rt->stats().lines_diff_checked - base_checked, kLinesPerPage);
}

TEST(PaxRuntimeTest, SecondEpochRelogsSameLine) {
  auto rt = PaxRuntime::create_in_memory(kPool).value();
  ASSERT_TRUE(rt->persist().ok());
  const auto base_logs = rt->device().stats().first_touch_logs;
  const auto base_faults = rt->region().fault_count();

  rt->vpm_base()[4096] = std::byte{1};
  ASSERT_TRUE(rt->persist().ok());
  rt->vpm_base()[4096] = std::byte{2};
  ASSERT_TRUE(rt->persist().ok());
  EXPECT_EQ(rt->device().stats().first_touch_logs - base_logs, 2u);  // 1/epoch
  EXPECT_EQ(rt->region().fault_count() - base_faults, 2u);  // re-protected
}

TEST(PaxRuntimeTest, EmptyPersistIsCheap) {
  auto rt = PaxRuntime::create_in_memory(kPool).value();
  ASSERT_TRUE(rt->persist().ok());  // commits heap-format writes
  const auto base_logs = rt->device().stats().first_touch_logs;
  ASSERT_TRUE(rt->persist().ok());
  ASSERT_TRUE(rt->persist().ok());
  EXPECT_EQ(rt->committed_epoch(), 3u);
  EXPECT_EQ(rt->device().stats().first_touch_logs, base_logs);
}

TEST(PaxRuntimeTest, SyncStepMovesWorkOffPersistPath) {
  auto rt = PaxRuntime::create_in_memory(kPool).value();
  std::memset(rt->vpm_base() + 4096, 0x3f, 8 * kPageSize);
  rt->sync_step();
  const auto before = rt->device().stats();
  EXPECT_GT(before.first_touch_logs, 0u);
  EXPECT_GT(before.proactive_writebacks, 0u);
  ASSERT_TRUE(rt->persist().ok());
  // persist() found the undo records already created.
  EXPECT_EQ(rt->device().stats().first_touch_logs, before.first_touch_logs);
}

TEST(PaxRuntimeTest, LogExhaustionSurfacesFromPersist) {
  RuntimeOptions o;
  o.log_size = 2 * kPageSize;  // ~85 line records
  auto rt = PaxRuntime::create_in_memory(kPool, o).value();
  std::memset(rt->vpm_base() + 4096, 0x77, 32 * kPageSize);  // 2048 lines
  auto e = rt->persist();
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kOutOfSpace);
}

TEST(PaxRuntimeTest, MapPoolRoundTripsThroughFile) {
  const std::string path = "/tmp/pax_runtime_test.pool";
  std::remove(path.c_str());
  {
    auto rt = PaxRuntime::map_pool(path, kPool, small_log());
    ASSERT_TRUE(rt.ok()) << rt.status().to_string();
    std::memset(rt.value()->vpm_base() + 4096, 0xab, 256);
    ASSERT_TRUE(rt.value()->persist().ok());
  }
  {
    auto rt = PaxRuntime::map_pool(path, kPool, small_log());
    ASSERT_TRUE(rt.ok());
    EXPECT_EQ(rt.value()->committed_epoch(), 1u);
    for (int i = 0; i < 256; ++i) {
      EXPECT_EQ(rt.value()->vpm_base()[4096 + i], std::byte{0xab});
    }
  }
  std::remove(path.c_str());
}

TEST(PaxRuntimeTest, ReattachReusesVpmBaseAddress) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  std::byte* first_base;
  {
    auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
    first_base = rt->vpm_base();
    rt->vpm_base()[4096] = std::byte{1};
    ASSERT_TRUE(rt->persist().ok());
  }
  auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
  EXPECT_EQ(rt->vpm_base(), first_base);  // raw pointers stay valid
}

TEST(PaxRuntimeTest, BackgroundFlusherMakesProgress) {
  RuntimeOptions o = small_log();
  o.start_flusher_thread = true;
  o.flusher_interval = std::chrono::microseconds(100);
  auto rt = PaxRuntime::create_in_memory(kPool, o).value();
  std::memset(rt->vpm_base() + 4096, 0x44, 4 * kPageSize);
  for (int spin = 0; spin < 200 && rt->device().stats().first_touch_logs == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(rt->device().stats().first_touch_logs, 0u);
  ASSERT_TRUE(rt->persist().ok());
}

TEST(PaxRuntimeTest, TornLogCrashStillRecovers) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), small_log()).value();
    std::memset(rt->vpm_base() + 8192, 0x66, 64);
    ASSERT_TRUE(rt->persist().ok());
    std::memset(rt->vpm_base() + 8192, 0x67, 64);
    rt->sync_step();
  }
  // Torn crash: random lines (log and data) survive, torn at 8 B.
  pm->crash(pmem::CrashConfig::torn(0.5, /*seed=*/321));

  auto rt = PaxRuntime::attach(pm.get(), small_log());
  ASSERT_TRUE(rt.ok()) << rt.status().to_string();
  EXPECT_EQ(rt.value()->recovery_report().recovered_epoch, 1u);
}

}  // namespace
}  // namespace pax::libpax
