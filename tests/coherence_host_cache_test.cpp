// Protocol tests: the host cache simulator must emit exactly the CXL.cache
// traffic PAX depends on, and the end-of-epoch SnpData downgrade must make
// next-epoch stores visible again (the paper's §3.3 correctness linchpin).
#include "pax/coherence/host_cache.hpp"

#include <gtest/gtest.h>

#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "test_util.hpp"

namespace pax::coherence {
namespace {

using testing::TestPool;

struct CoherenceFixture : ::testing::Test {
  TestPool tp = TestPool::create(8 << 20, 1 << 20);
  device::DeviceConfig dev_config = device::DeviceConfig::defaults();
  device::PaxDevice dev{&tp.pool, dev_config};

  HostCacheConfig traced_config() {
    HostCacheConfig c;
    c.record_trace = true;
    return c;
  }

  PoolOffset addr(std::uint64_t i) const {
    return tp.pool.data_offset() + i * kCacheLineSize;
  }
};

TEST_F(CoherenceFixture, LoadMissEmitsRdSharedThenCachesLine) {
  HostCacheSim host(&dev, traced_config());
  EXPECT_EQ(host.load_u64(addr(0)), 0u);
  ASSERT_GE(host.trace().size(), 2u);
  EXPECT_EQ(host.trace()[0].op, CxlOp::kRdShared);
  EXPECT_EQ(host.trace()[1].op, CxlOp::kGo);
  EXPECT_EQ(host.line_state(LineIndex::containing(addr(0))),
            MesiState::kShared);

  host.clear_trace();
  EXPECT_EQ(host.load_u64(addr(0)), 0u);  // now a cache hit
  EXPECT_TRUE(host.trace().empty());
  EXPECT_EQ(host.stats().rd_shared, 1u);
}

TEST_F(CoherenceFixture, StoreMissEmitsRdOwnAndDeviceLogsPreImage) {
  HostCacheSim host(&dev, traced_config());
  ASSERT_TRUE(host.store_u64(addr(0), 42).is_ok());
  EXPECT_EQ(host.trace()[0].op, CxlOp::kRdOwn);
  EXPECT_EQ(host.line_state(LineIndex::containing(addr(0))),
            MesiState::kModified);
  EXPECT_EQ(dev.stats().first_touch_logs, 1u);
  EXPECT_EQ(host.load_u64(addr(0)), 42u);
}

TEST_F(CoherenceFixture, StoreUpgradeFromSharedEmitsRdOwn) {
  HostCacheSim host(&dev, traced_config());
  host.load_u64(addr(0));  // S
  host.clear_trace();
  ASSERT_TRUE(host.store_u64(addr(0), 1).is_ok());
  EXPECT_EQ(host.trace()[0].op, CxlOp::kRdOwn);
  EXPECT_EQ(host.stats().upgrades, 1u);
}

TEST_F(CoherenceFixture, RepeatStoresToModifiedLineAreSilent) {
  HostCacheSim host(&dev, traced_config());
  ASSERT_TRUE(host.store_u64(addr(0), 1).is_ok());
  host.clear_trace();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(host.store_u64(addr(0), i).is_ok());
  }
  EXPECT_TRUE(host.trace().empty());  // M-state hits: no device traffic
  EXPECT_EQ(dev.stats().write_intents, 1u);
}

TEST_F(CoherenceFixture, SnoopDowngradesModifiedToSharedAndForwardsData) {
  HostCacheSim host(&dev, traced_config());
  ASSERT_TRUE(host.store_u64(addr(0), 77).is_ok());
  auto data = host.snoop_data(LineIndex::containing(addr(0)));
  ASSERT_TRUE(data.has_value());
  std::uint64_t v;
  std::memcpy(&v, data->bytes.data(), 8);
  EXPECT_EQ(v, 77u);
  EXPECT_EQ(host.line_state(LineIndex::containing(addr(0))),
            MesiState::kShared);
  EXPECT_FALSE(host.snoop_data(LineIndex{999999}).has_value());
}

TEST_F(CoherenceFixture, CrossEpochStoreIsReobservedAfterPersistDowngrade) {
  // THE critical scenario (§3.3): a line modified in epoch 1 stays in host
  // cache; persist() downgrades it via SnpData; epoch 2's store to the same
  // line must emit a fresh RdOwn so the device logs epoch 2's pre-image.
  HostCacheSim host(&dev, traced_config());
  ASSERT_TRUE(host.store_u64(addr(0), 1).is_ok());
  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());
  EXPECT_EQ(host.line_state(LineIndex::containing(addr(0))),
            MesiState::kShared);

  host.clear_trace();
  ASSERT_TRUE(host.store_u64(addr(0), 2).is_ok());
  EXPECT_EQ(host.trace()[0].op, CxlOp::kRdOwn);
  EXPECT_EQ(dev.stats().first_touch_logs, 2u);  // once per epoch

  // And crash-recovery after the unpersisted epoch-2 store lands on epoch 1.
  host.drop_all_without_writeback();
  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  std::uint64_t v = tp.device->load_u64(addr(0));
  EXPECT_EQ(v, 1u);
}

TEST_F(CoherenceFixture, LlcEvictionOfModifiedLineWritesBackToDevice) {
  // Tiny LLC forces capacity evictions; dirty victims must reach the device.
  HostCacheConfig small;
  small.l1 = {2 * 1024, 2};
  small.l2 = {4 * 1024, 2};
  small.llc = {8 * 1024, 2};  // 128 lines
  HostCacheSim host(&dev, small);

  for (std::uint64_t i = 0; i < 1024; ++i) {
    ASSERT_TRUE(host.store_u64(addr(i), i).is_ok());
  }
  EXPECT_GT(host.stats().dirty_evicts, 0u);
  EXPECT_EQ(dev.stats().host_writebacks, host.stats().dirty_evicts);

  // Persist and verify every value, including lines long evicted.
  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());
  for (std::uint64_t i = 0; i < 1024; ++i) {
    EXPECT_EQ(tp.device->load_u64(addr(i)), i) << "line " << i;
  }
}

TEST_F(CoherenceFixture, EvictedThenReloadedLineSeesOwnStore) {
  HostCacheConfig small;
  small.l1 = {1024, 2};
  small.l2 = {2048, 2};
  small.llc = {4 * 1024, 2};
  HostCacheSim host(&dev, small);

  ASSERT_TRUE(host.store_u64(addr(0), 123).is_ok());
  // Blow the line out of the hierarchy.
  for (std::uint64_t i = 1; i < 512; ++i) host.load_u64(addr(i));
  EXPECT_EQ(host.load_u64(addr(0)), 123u);  // served back from the device
}

TEST_F(CoherenceFixture, PartialLineStoreMergesWithMemoryContents) {
  // Pre-populate PM with a pattern, then store one u64 in the middle of the
  // line: the other 56 bytes must survive.
  auto line = LineIndex::containing(addr(0));
  tp.device->store_line(line, testing::patterned_line(9));
  tp.device->flush_line(line);

  HostCacheSim host(&dev, traced_config());
  ASSERT_TRUE(host.store_u64(addr(0) + 16, 0xdeadbeef).is_ok());

  LineData expect = testing::patterned_line(9);
  std::uint64_t v = 0xdeadbeef;
  std::memcpy(expect.bytes.data() + 16, &v, 8);
  auto snooped = host.snoop_data(line);
  ASSERT_TRUE(snooped.has_value());
  EXPECT_EQ(*snooped, expect);
}

TEST_F(CoherenceFixture, StatsLevelsAreHierarchical) {
  HostCacheSim host(&dev, HostCacheConfig{});
  for (std::uint64_t i = 0; i < 1000; ++i) host.load_u64(addr(i % 100));
  const auto& s = host.stats();
  EXPECT_EQ(s.l1.accesses, 1000u);
  EXPECT_LE(s.l2.accesses, s.l1.accesses);
  EXPECT_LE(s.llc.accesses, s.l2.accesses);
  EXPECT_EQ(s.l1.accesses, s.loads);
  // 100 hot lines fit in L1: after the first pass, everything hits.
  EXPECT_GE(s.l1.hits, 900u);
}

TEST_F(CoherenceFixture, FlushAndInvalidateWritesDirtyLinesBack) {
  HostCacheSim host(&dev, HostCacheConfig{});
  ASSERT_TRUE(host.store_u64(addr(0), 5).is_ok());
  host.flush_and_invalidate_all();
  EXPECT_EQ(host.line_state(LineIndex::containing(addr(0))),
            MesiState::kInvalid);
  EXPECT_GE(dev.stats().host_writebacks, 1u);
  // The device now holds the value; a fresh host sees it.
  HostCacheSim host2(&dev, HostCacheConfig{});
  EXPECT_EQ(host2.load_u64(addr(0)), 5u);
}

}  // namespace
}  // namespace pax::coherence
