// Tests of epoch replication to a backup pool (§6 "fault tolerance via
// remote memory"): lockstep and lagging replication, failover after total
// primary loss, crash-during-replication, and end-to-end failover of a
// black-box libpax container.
#include "pax/device/replication.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "pax/device/recovery.hpp"
#include "pax/libpax/persistent.hpp"
#include "test_util.hpp"

namespace pax::device {
namespace {

using testing::patterned_line;
using testing::TestPool;

struct ReplicationFixture : ::testing::Test {
  TestPool primary = TestPool::create(4 << 20, 256 * 1024);
  TestPool backup = TestPool::create(4 << 20, 256 * 1024);

  DeviceConfig config() {
    DeviceConfig c;
    c.hbm.capacity_lines = 64;
    c.hbm.ways = 4;
    return c;
  }
};

TEST_F(ReplicationFixture, SynchronousReplicationKeepsLockstep) {
  PaxDevice dev(&primary.pool, config());
  auto repl = Replicator::create(&backup.pool, config(), /*sync=*/true).value();
  dev.set_commit_hook(repl->commit_hook());

  for (Epoch e = 0; e < 5; ++e) {
    ASSERT_TRUE(dev.write_intent(primary.data_line(e)).is_ok());
    dev.writeback_line(primary.data_line(e), patterned_line(10 + e));
    ASSERT_TRUE(dev.persist(nullptr).ok());
    EXPECT_EQ(repl->backup_committed_epoch(), e + 1);
  }
  for (Epoch e = 0; e < 5; ++e) {
    EXPECT_EQ(backup.device->durable_line(backup.data_line(e)),
              patterned_line(10 + e));
  }
  EXPECT_EQ(repl->stats().epochs_applied, 5u);
}

TEST_F(ReplicationFixture, AsynchronousReplicationLagsAndCatchesUp) {
  PaxDevice dev(&primary.pool, config());
  auto repl =
      Replicator::create(&backup.pool, config(), /*sync=*/false).value();
  dev.set_commit_hook(repl->commit_hook());

  for (Epoch e = 0; e < 3; ++e) {
    ASSERT_TRUE(dev.write_intent(primary.data_line(e)).is_ok());
    dev.writeback_line(primary.data_line(e), patterned_line(e));
    ASSERT_TRUE(dev.persist(nullptr).ok());
  }
  EXPECT_EQ(repl->pending_epochs(), 3u);
  EXPECT_EQ(repl->backup_committed_epoch(), 0u);  // lagging

  auto caught_up = repl->apply_pending();
  ASSERT_TRUE(caught_up.ok());
  EXPECT_EQ(caught_up.value(), 3u);
  EXPECT_EQ(repl->pending_epochs(), 0u);
}

TEST_F(ReplicationFixture, FailoverAfterTotalPrimaryLoss) {
  {
    PaxDevice dev(&primary.pool, config());
    auto repl =
        Replicator::create(&backup.pool, config(), /*sync=*/true).value();
    dev.set_commit_hook(repl->commit_hook());
    for (Epoch e = 0; e < 4; ++e) {
      ASSERT_TRUE(dev.write_intent(primary.data_line(e)).is_ok());
      dev.writeback_line(primary.data_line(e), patterned_line(100 + e));
      ASSERT_TRUE(dev.persist(nullptr).ok());
    }
    // Primary machine dies entirely: its PM is gone (not just volatile).
    // Nothing of `primary` is consulted from here on.
  }
  backup.device->crash(pmem::CrashConfig::drop_all());  // backup power-cycles

  auto pool = pmem::PmemPool::open(backup.device.get()).value();
  ASSERT_TRUE(recover_pool(pool).ok());
  EXPECT_EQ(pool.committed_epoch(), 4u);
  for (Epoch e = 0; e < 4; ++e) {
    EXPECT_EQ(backup.device->durable_line(backup.data_line(e)),
              patterned_line(100 + e));
  }

  // The backup now serves as the new primary.
  PaxDevice new_primary(&pool, config());
  EXPECT_EQ(new_primary.current_epoch(), 5u);
  ASSERT_TRUE(new_primary.write_intent(backup.data_line(9)).is_ok());
  new_primary.writeback_line(backup.data_line(9), patterned_line(9));
  ASSERT_TRUE(new_primary.persist(nullptr).ok());
  EXPECT_EQ(pool.committed_epoch(), 5u);
}

TEST_F(ReplicationFixture, CrashDuringReplicationLeavesBackupConsistent) {
  PaxDevice dev(&primary.pool, config());
  auto repl =
      Replicator::create(&backup.pool, config(), /*sync=*/false).value();
  dev.set_commit_hook(repl->commit_hook());

  // Epoch 1 fully replicated.
  ASSERT_TRUE(dev.write_intent(primary.data_line(0)).is_ok());
  dev.writeback_line(primary.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.persist(nullptr).ok());
  ASSERT_TRUE(repl->apply_pending().ok());

  // Epoch 2 committed on the primary; the backup crashes mid-apply (the
  // backup device staged work but its persist never ran).
  ASSERT_TRUE(dev.write_intent(primary.data_line(0)).is_ok());
  dev.writeback_line(primary.data_line(0), patterned_line(2));
  ASSERT_TRUE(dev.persist(nullptr).ok());
  // Simulate the torn apply: crash the backup PM with epoch 2 queued.
  backup.device->crash(pmem::CrashConfig::drop_all());

  auto pool = pmem::PmemPool::open(backup.device.get()).value();
  ASSERT_TRUE(recover_pool(pool).ok());
  EXPECT_EQ(pool.committed_epoch(), 1u);  // clean prefix
  EXPECT_EQ(backup.device->durable_line(backup.data_line(0)),
            patterned_line(1));
}

TEST_F(ReplicationFixture, ReplicationGapDetected) {
  auto repl =
      Replicator::create(&backup.pool, config(), /*sync=*/false).value();
  // Hand-feed an out-of-order epoch through the hook.
  auto hook = repl->commit_hook();
  hook(3, {{backup.data_line(0), patterned_line(1)}});  // backup is at 0
  auto applied = repl->apply_pending();
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationFixture, DuplicateEpochsSkippedIdempotently) {
  auto repl =
      Replicator::create(&backup.pool, config(), /*sync=*/false).value();
  auto hook = repl->commit_hook();
  hook(1, {{backup.data_line(0), patterned_line(1)}});
  ASSERT_TRUE(repl->apply_pending().ok());
  // Re-shipped after a channel hiccup: must be a no-op.
  hook(1, {{backup.data_line(0), patterned_line(1)}});
  hook(2, {{backup.data_line(0), patterned_line(2)}});
  auto applied = repl->apply_pending();
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 2u);
  EXPECT_EQ(backup.device->durable_line(backup.data_line(0)),
            patterned_line(2));
}

TEST_F(ReplicationFixture, BatchedApplyMatchesPerLineApply) {
  TestPool backup2 = TestPool::create(4 << 20, 256 * 1024);
  PaxDevice dev(&primary.pool, config());

  ReplicatorOptions per_line;
  per_line.batched = false;
  ReplicatorOptions batched;
  batched.batched = true;
  batched.batch_lines = 4;  // tiny, so every epoch spans several batches
  auto repl_a =
      Replicator::create(&backup.pool, config(), /*sync=*/false, per_line)
          .value();
  auto repl_b =
      Replicator::create(&backup2.pool, config(), /*sync=*/false, batched)
          .value();
  auto hook_a = repl_a->commit_hook();
  auto hook_b = repl_b->commit_hook();
  dev.set_commit_hook(
      [&](Epoch e,
          const std::vector<std::pair<LineIndex, LineData>>& lines) {
        hook_a(e, lines);
        hook_b(e, lines);
      });

  // Strided lines so each epoch's update set crosses many stripes.
  for (Epoch e = 0; e < 4; ++e) {
    for (std::uint64_t i = 0; i < 40; ++i) {
      const LineIndex line = primary.data_line(i * 7 + e);
      ASSERT_TRUE(dev.write_intent(line).is_ok());
      dev.writeback_line(line, patterned_line(e * 100 + i));
    }
    ASSERT_TRUE(dev.persist(nullptr).ok());
  }
  ASSERT_TRUE(repl_a->apply_pending().ok());
  ASSERT_TRUE(repl_b->apply_pending().ok());

  EXPECT_EQ(repl_a->backup_committed_epoch(), 4u);
  EXPECT_EQ(repl_b->backup_committed_epoch(), 4u);
  EXPECT_EQ(repl_a->stats().lines_shipped, repl_b->stats().lines_shipped);
  EXPECT_EQ(repl_a->stats().batches_shipped, 0u);
  EXPECT_GT(repl_b->stats().batches_shipped, 4u);  // > 1 batch per epoch

  // Bit-identical durable state: the batched frontend is a pure transport
  // change, not a semantic one.
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_EQ(backup.device->durable_line(backup.data_line(i)),
              backup2.device->durable_line(backup2.data_line(i)))
        << "line " << i;
  }
}

TEST(ReplicationEndToEnd, LibpaxMapFailsOverToBackup) {
  using MapAlloc =
      libpax::PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
  using PMap = std::unordered_map<std::uint64_t, std::uint64_t,
                                  std::hash<std::uint64_t>,
                                  std::equal_to<std::uint64_t>, MapAlloc>;

  auto primary_pm = pmem::PmemDevice::create_in_memory(32 << 20);
  auto backup_pm = pmem::PmemDevice::create_in_memory(32 << 20);

  libpax::RuntimeOptions opts;
  opts.log_size = 2 << 20;
  std::uintptr_t primary_base;
  {
    auto rt = libpax::PaxRuntime::attach(primary_pm.get(), opts).value();
    primary_base = reinterpret_cast<std::uintptr_t>(rt->vpm_base());
    // Format the backup with identical geometry and wire the replicator.
    auto backup_pool =
        pmem::PmemPool::create(backup_pm.get(), opts.log_size).value();
    auto repl = Replicator::create(&backup_pool, opts.device, /*sync=*/true)
                    .value();
    rt->device().set_commit_hook(repl->commit_hook());

    auto map = libpax::Persistent<PMap>::open(*rt).value();
    for (std::uint64_t k = 0; k < 300; ++k) (*map)[k] = k * 9;
    ASSERT_TRUE(rt->persist().ok());
    for (std::uint64_t k = 300; k < 400; ++k) (*map)[k] = 1;  // unreplicated
    // Primary dies entirely (its PM object is dropped below).
  }
  primary_pm.reset();

  // Failover: open the backup at the address the primary used, so the
  // map's internal pointers stay valid (on a real cluster both nodes share
  // the fixed mapping hint; in-process the hint must be explicit).
  libpax::RuntimeOptions failover_opts = opts;
  failover_opts.vpm_base_hint = primary_base;
  auto rt = libpax::PaxRuntime::attach(backup_pm.get(), failover_opts).value();
  auto map = libpax::Persistent<PMap>::open(*rt).value();
  EXPECT_TRUE(map.recovered());
  ASSERT_EQ(map->size(), 300u);
  for (std::uint64_t k = 0; k < 300; ++k) ASSERT_EQ(map->at(k), k * 9);
}

}  // namespace
}  // namespace pax::device
