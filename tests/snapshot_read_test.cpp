// Snapshot-isolated reads (read_committed_line / read_snapshot): the last
// committed epoch stays readable while writers mutate — across staged and
// unstaged mutations, sealed epochs, and epoch transitions.
#include <gtest/gtest.h>

#include <cstring>

#include "pax/device/pax_device.hpp"
#include "pax/libpax/runtime.hpp"
#include "test_util.hpp"

namespace pax {
namespace {

using testing::patterned_line;
using testing::TestPool;

struct SnapshotDeviceFixture : ::testing::Test {
  TestPool tp = TestPool::create(4 << 20, 256 * 1024);
  device::PaxDevice dev{&tp.pool, device::DeviceConfig::defaults()};
};

TEST_F(SnapshotDeviceFixture, UnmodifiedLineReadsThrough) {
  tp.device->store_line(tp.data_line(0), patterned_line(5));
  tp.device->flush_line(tp.data_line(0));
  EXPECT_EQ(dev.read_committed_line(tp.data_line(0)), patterned_line(5));
}

TEST_F(SnapshotDeviceFixture, ModifiedLineReturnsPreImage) {
  // Commit epoch 1 with value A.
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.persist(nullptr).ok());

  // Epoch 2 modifies to B (staged + even proactively written back).
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(2));
  dev.tick(/*force_flush=*/true);

  // The live view is B; the committed view is still A.
  EXPECT_EQ(dev.peek_line(tp.data_line(0)), patterned_line(2));
  EXPECT_EQ(dev.read_committed_line(tp.data_line(0)), patterned_line(1));

  // After commit, the committed view advances.
  ASSERT_TRUE(dev.persist(nullptr).ok());
  EXPECT_EQ(dev.read_committed_line(tp.data_line(0)), patterned_line(2));
}

TEST_F(SnapshotDeviceFixture, SealedEpochStillReadsLastCommitted) {
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.persist(nullptr).ok());  // committed: 1

  // Epoch 2 modifies and seals (uncommitted), epoch 3 modifies again.
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(2));
  ASSERT_TRUE(dev.seal_epoch(nullptr).ok());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(3));

  // Committed is still 1: the sealed record's pre-image wins over the
  // active record's (whose pre-image is the *sealed* value 2).
  EXPECT_EQ(dev.read_committed_line(tp.data_line(0)), patterned_line(1));

  ASSERT_TRUE(dev.commit_sealed().ok());  // committed: 2
  EXPECT_EQ(dev.read_committed_line(tp.data_line(0)), patterned_line(2));
  ASSERT_TRUE(dev.persist(nullptr).ok());  // committed: 3
  EXPECT_EQ(dev.read_committed_line(tp.data_line(0)), patterned_line(3));
}

TEST(SnapshotRuntimeTest, ReadersSeeOnlyCommittedState) {
  auto rt = libpax::PaxRuntime::create_in_memory(16 << 20).value();
  std::memset(rt->vpm_base() + 8192, 0x11, 256);
  ASSERT_TRUE(rt->persist().ok());

  // Mutate: half staged via sync_step, half only in the region.
  std::memset(rt->vpm_base() + 8192, 0x22, 128);
  rt->sync_step();
  std::memset(rt->vpm_base() + 8192 + 128, 0x33, 128);

  // Live view has the new bytes...
  EXPECT_EQ(rt->vpm_base()[8192], std::byte{0x22});
  EXPECT_EQ(rt->vpm_base()[8192 + 128], std::byte{0x33});

  // ...the snapshot view has the committed ones, for both halves.
  std::array<std::byte, 256> snap{};
  rt->read_snapshot(8192, snap);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(snap[i], std::byte{0x11}) << i;
  }

  // Commit and re-read: the snapshot advances.
  ASSERT_TRUE(rt->persist().ok());
  rt->read_snapshot(8192, snap);
  EXPECT_EQ(snap[0], std::byte{0x22});
  EXPECT_EQ(snap[128], std::byte{0x33});
}

TEST(SnapshotRuntimeTest, UnalignedRangesSpanLines) {
  auto rt = libpax::PaxRuntime::create_in_memory(16 << 20).value();
  for (int i = 0; i < 200; ++i) {
    rt->vpm_base()[8192 + i] = static_cast<std::byte>(i);
  }
  ASSERT_TRUE(rt->persist().ok());
  std::memset(rt->vpm_base() + 8192, 0xff, 200);  // doomed overwrite

  std::array<std::byte, 100> snap{};
  rt->read_snapshot(8192 + 50, snap);  // straddles two lines, unaligned
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(snap[i], static_cast<std::byte>(50 + i)) << i;
  }
}

}  // namespace
}  // namespace pax
