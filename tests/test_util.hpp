// Shared helpers for the pax test suites.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pax/common/types.hpp"
#include "pax/pmem/pmem_device.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::testing {

/// A line filled with a recognizable per-line pattern derived from `tag`.
inline LineData patterned_line(std::uint64_t tag) {
  LineData d;
  for (std::size_t i = 0; i < kCacheLineSize; ++i) {
    d.bytes[i] = static_cast<std::byte>((tag * 131 + i * 7 + 13) & 0xff);
  }
  return d;
}

/// In-memory device + freshly formatted pool, for unit tests.
struct TestPool {
  std::unique_ptr<pmem::PmemDevice> device;
  pmem::PmemPool pool;

  static TestPool create(std::size_t device_bytes = 1 << 20,
                         std::size_t log_bytes = 64 * 1024) {
    auto dev = pmem::PmemDevice::create_in_memory(device_bytes);
    auto pool = pmem::PmemPool::create(dev.get(), log_bytes);
    if (!pool.ok()) {
      std::abort();
    }
    return TestPool{std::move(dev), pool.value()};
  }

  /// First line index of the data extent.
  LineIndex data_line(std::uint64_t i) const {
    return LineIndex{pool.data_offset() / kCacheLineSize + i};
  }
};

}  // namespace pax::testing
