// Concurrency torture for the host sync path, designed to run under TSan:
// mutator threads hammer disjoint slabs of vPM while the background flusher
// diffs pages underneath them (the benign-by-contract race that
// capture_line keeps outside TSan's view), with §6 async persists at
// quiesced round boundaries. After a crash, recovery must reproduce the
// last persisted round exactly — and the batched and legacy sync paths must
// recover bit-identical state.
#include <gtest/gtest.h>

#include <barrier>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "pax/check/checker.hpp"
#include "pax/check/trace_file.hpp"
#include "pax/libpax/runtime.hpp"

namespace pax::libpax {
namespace {

// When PAX_TRACE_DIR is set (the CI analyze step), each crash/recover cycle
// records its PaxCheck event stream as a .paxevt for the offline PaxScope
// pass; a counter disambiguates the cycles within one process.
const char* trace_dir() { return std::getenv("PAX_TRACE_DIR"); }
int trace_counter = 0;

void maybe_write_trace(check::Checker& checker, const char* mode) {
  const char* dir = trace_dir();
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/sync_torture_" + mode + "_" +
                           std::to_string(trace_counter++) + ".paxevt";
  ASSERT_TRUE(check::write_trace(path, checker.recorded_events()).is_ok())
      << path;
}

constexpr std::size_t kPool = 32 << 20;
constexpr int kThreads = 4;
constexpr std::size_t kPagesPerThread = 8;
constexpr int kRounds = 6;

// Thread t owns pages [1 + t*kPagesPerThread, 1 + (t+1)*kPagesPerThread).
std::size_t slab_offset(int t) {
  return (1 + static_cast<std::size_t>(t) * kPagesPerThread) * kPageSize;
}
constexpr std::size_t kSlabBytes = kPagesPerThread * kPageSize;

int pattern(int t, int round) { return 0x20 + t * 37 + round * 11; }

// The mutator side of the §3.5 benign race: capture_line reads racing words
// with relaxed atomic loads, so the writers racing it must be word-sized
// relaxed atomic stores too — then TSan accepts the pair with no
// suppressions. Same codegen as memset-by-words on x86-64.
void fill_slab(std::byte* dst, int byte_pattern, std::size_t bytes) {
  const std::uint64_t word =
      0x0101010101010101ull * static_cast<std::uint8_t>(byte_pattern);
  auto* words = reinterpret_cast<std::uint64_t*>(dst);
  for (std::size_t i = 0; i < bytes / sizeof(std::uint64_t); ++i) {
    __atomic_store_n(&words[i], word, __ATOMIC_RELAXED);
  }
}

// One full crash/recover cycle under `opts`; returns the recovered image of
// all slabs. The final round is committed with a blocking persist() so the
// expected recovery point is deterministic regardless of `crash` mode: any
// post-commit garbage line that survives the crash lottery has a durable
// undo record (logged before its write-back), so recovery rolls it back.
std::vector<std::byte> run_and_recover(pmem::PmemDevice* pm,
                                       const RuntimeOptions& opts,
                                       const pmem::CrashConfig& crash,
                                       const char* mode) {
  // The whole cycle — racing mutators, flusher, async persists, crash,
  // recovery — runs under PaxCheck; any persist-order or lock-discipline
  // violation fails the test.
  check::CheckerOptions checker_opts;
  checker_opts.record_events = trace_dir() != nullptr;
  check::Checker checker(checker_opts);
  pm->set_checker(&checker);
  {
    auto rt = PaxRuntime::attach(pm, opts).value();
    std::barrier round_barrier(kThreads + 1);
    std::vector<std::thread> mutators;
    for (int t = 0; t < kThreads; ++t) {
      mutators.emplace_back([&, t] {
        for (int r = 0; r < kRounds; ++r) {
          fill_slab(rt->vpm_base() + slab_offset(t), pattern(t, r),
                    kSlabBytes);
          round_barrier.arrive_and_wait();  // quiesce for the persist
          round_barrier.arrive_and_wait();  // resume mutating
        }
      });
    }
    for (int r = 0; r < kRounds; ++r) {
      round_barrier.arrive_and_wait();
      // All mutators parked: the §3.5 quiescence contract holds.
      if (r + 1 == kRounds) {
        auto e = rt->persist();
        EXPECT_TRUE(e.ok()) << e.status().to_string();
      } else {
        auto e = rt->persist_async();
        EXPECT_TRUE(e.ok()) << e.status().to_string();
      }
      round_barrier.arrive_and_wait();
    }
    for (auto& m : mutators) m.join();
    // Dirty the slabs once more *without* persisting — racing the flusher
    // right up to the teardown; none of this may survive.
    for (int t = 0; t < kThreads; ++t) {
      fill_slab(rt->vpm_base() + slab_offset(t), 0xEE, kSlabBytes);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }  // teardown without persist: crash semantics
  pm->crash(crash);

  RuntimeOptions quiet = opts;
  quiet.start_flusher_thread = false;
  auto rt = PaxRuntime::attach(pm, quiet).value();
  std::vector<std::byte> image(kThreads * kSlabBytes);
  for (int t = 0; t < kThreads; ++t) {
    std::memcpy(image.data() + t * kSlabBytes, rt->vpm_base() + slab_offset(t),
                kSlabBytes);
  }
  auto report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  pm->set_checker(nullptr);
  maybe_write_trace(checker, mode);
  return image;
}

// The four sync-path configurations whose recoveries must be bit-identical:
// the pre-batching per-line path, the batched path, the line-tracked +
// adaptive path, and the pipelined-epoch path (snapshot drains racing the
// resumed mutators, undo appends through the lock-free ring).
RuntimeOptions legacy_config() {
  RuntimeOptions o;
  o.start_flusher_thread = true;
  o.flusher_interval = std::chrono::microseconds(50);
  o.sync_batch_lines = 1;
  o.diff_workers = 1;
  o.track_lines = false;
  return o;
}

RuntimeOptions batched_config() {
  RuntimeOptions o = legacy_config();
  o.sync_batch_lines = 32;
  o.diff_workers = 3;
  o.diff_fanout_min_pages = 1;
  return o;
}

RuntimeOptions tracked_config() {
  RuntimeOptions o = batched_config();
  o.track_lines = true;
  o.adaptive_sync = true;
  return o;
}

RuntimeOptions pipelined_config() {
  RuntimeOptions o = tracked_config();
  o.pipeline_depth = 2;
  o.log_ring_slots = 128;
  return o;
}

void run_all_configs_and_compare(const pmem::CrashConfig& crash,
                                 const char* mode) {
  auto pm_a = pmem::PmemDevice::create_in_memory(kPool);
  auto pm_b = pmem::PmemDevice::create_in_memory(kPool);
  auto pm_c = pmem::PmemDevice::create_in_memory(kPool);
  auto pm_d = pmem::PmemDevice::create_in_memory(kPool);
  const std::vector<std::byte> legacy_image =
      run_and_recover(pm_a.get(), legacy_config(), crash, mode);
  const std::vector<std::byte> batched_image =
      run_and_recover(pm_b.get(), batched_config(), crash, mode);
  const std::vector<std::byte> tracked_image =
      run_and_recover(pm_c.get(), tracked_config(), crash, mode);
  const std::vector<std::byte> pipelined_image =
      run_and_recover(pm_d.get(), pipelined_config(), crash, mode);

  // Every slab byte holds the final round's pattern; the 0xEE garbage died
  // (dropped outright, or rolled back off its undo record if it survived).
  for (int t = 0; t < kThreads; ++t) {
    const auto expected =
        static_cast<std::byte>(pattern(t, kRounds - 1) & 0xff);
    for (std::size_t i = 0; i < kSlabBytes; ++i) {
      ASSERT_EQ(legacy_image[t * kSlabBytes + i], expected)
          << mode << " legacy slab " << t << " byte " << i;
    }
  }
  // And all sync paths recovered identical state.
  EXPECT_EQ(legacy_image, batched_image) << mode;
  EXPECT_EQ(legacy_image, tracked_image) << mode;
  EXPECT_EQ(legacy_image, pipelined_image) << mode;
}

TEST(HostSyncTortureTest, RacingFlusherRecoversLastPersistedRound) {
  run_all_configs_and_compare(pmem::CrashConfig::drop_all(), "drop_all");
}

TEST(HostSyncTortureTest, RandomLineLossRecoversLastPersistedRound) {
  run_all_configs_and_compare(pmem::CrashConfig::random(0.5, 0xfeed), "random");
}

TEST(HostSyncTortureTest, TornLinesRecoverLastPersistedRound) {
  run_all_configs_and_compare(pmem::CrashConfig::torn(0.6, 0xbead), "torn");
}

}  // namespace
}  // namespace pax::libpax
