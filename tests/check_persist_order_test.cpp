// Seeded-bug coverage for the PaxCheck persist-order rules: each rule must
// fire exactly once on its injected violation and stay silent on the
// equivalent correct sequence (docs/ANALYSIS.md).
#include <gtest/gtest.h>

#include "pax/check/checker.hpp"
#include "pax/libpax/runtime.hpp"
#include "pax/pmem/pmem_device.hpp"
#include "pax/pmem/pool.hpp"
#include "test_util.hpp"

namespace pax {
namespace {

using check::Checker;
using check::Rule;

// Injected bug: a store whose flush was deleted, present at epoch commit.
TEST(PaxCheckPersistOrder, UnflushedLineAtCommitFires) {
  auto tp = testing::TestPool::create();
  Checker checker;
  tp.device->set_checker(&checker);

  const LineIndex dirty = tp.data_line(3);
  const LineIndex clean = tp.data_line(7);
  tp.device->store_line(dirty, testing::patterned_line(1));  // flush deleted
  tp.device->store_line(clean, testing::patterned_line(2));
  tp.device->flush_line(clean);
  tp.device->drain();
  tp.pool.commit_epoch(1);

  auto report = checker.report();
  EXPECT_EQ(report.count(Rule::kUnflushedLineAtCommit), 1u);
  ASSERT_FALSE(report.violations.empty());
  const auto& v = report.violations.front();
  EXPECT_EQ(v.rule, Rule::kUnflushedLineAtCommit);
  EXPECT_EQ(v.line, dirty.value);
  EXPECT_FALSE(v.backtrace.empty());  // the store is in the backtrace
  tp.device->set_checker(nullptr);
}

TEST(PaxCheckPersistOrder, FlushedCommitIsClean) {
  auto tp = testing::TestPool::create();
  Checker checker;
  tp.device->set_checker(&checker);

  const LineIndex line = tp.data_line(3);
  tp.device->store_line(line, testing::patterned_line(1));
  tp.device->flush_line(line);
  tp.device->drain();
  tp.pool.commit_epoch(1);

  EXPECT_TRUE(checker.report().clean()) << checker.report().to_string();
  tp.device->set_checker(nullptr);
}

// Injected bug: the drain (SFENCE) before the commit was deleted — the
// flushes are unordered relative to the commit record.
TEST(PaxCheckPersistOrder, CommitWithoutFenceFires) {
  auto tp = testing::TestPool::create();
  Checker checker;
  tp.device->set_checker(&checker);

  const LineIndex line = tp.data_line(5);
  tp.device->store_line(line, testing::patterned_line(9));
  tp.device->flush_line(line);  // drain deleted
  tp.pool.commit_epoch(1);

  auto report = checker.report();
  EXPECT_EQ(report.count(Rule::kCommitWithoutFence), 1u);
  EXPECT_EQ(report.count(Rule::kUnflushedLineAtCommit), 0u);
  tp.device->set_checker(nullptr);
}

// Redundant flushes (CLWB of an already-clean line) are a perf diagnostic,
// never a violation: the WAL flush path legitimately re-flushes the line
// holding the durable boundary.
TEST(PaxCheckPersistOrder, RedundantFlushIsDiagnosticOnly) {
  auto tp = testing::TestPool::create();
  Checker checker;
  tp.device->set_checker(&checker);

  const LineIndex line = tp.data_line(2);
  tp.device->store_line(line, testing::patterned_line(4));
  tp.device->flush_line(line);
  tp.device->flush_line(line);  // nothing pending: redundant
  tp.device->drain();

  auto report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.diagnostics.redundant_flushes, 1u);
  tp.device->set_checker(nullptr);
}

// Injected bug: a data line written back to PM while its undo record is
// still beyond the log's durable watermark (the §3.3 gating invariant,
// driven through the event API — the real device refuses to reach this
// state, which is exactly why the rule needs a synthetic trace).
TEST(PaxCheckPersistOrder, WritebackBeforeUndoDurableFires) {
  Checker checker;
  checker.on_log_append(/*logger=*/7, /*line=*/41, /*end=*/96);
  // Log flush deleted: the watermark never reached 96.
  checker.on_writeback(/*line=*/41, /*logger=*/7, /*end=*/96);
  checker.on_drain();

  auto report = checker.report();
  EXPECT_EQ(report.count(Rule::kWritebackBeforeUndoDurable), 1u);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front().line, 41u);
}

TEST(PaxCheckPersistOrder, DurableWritebackIsClean) {
  Checker checker;
  checker.on_log_append(7, 41, 96);
  checker.on_log_flush(7, /*durable=*/96);
  checker.on_writeback(41, 7, 96);
  checker.on_drain();
  EXPECT_TRUE(checker.report().clean()) << checker.report().to_string();
}

// Injected bug: a tracked-line digest applied before the sync_lines batch
// carrying the line resolved — a crash of the batch would leave the digest
// claiming the device holds data it never received.
TEST(PaxCheckPersistOrder, DigestBeforeBatchOutcomeFires) {
  Checker checker;
  checker.on_sync_push(/*line=*/9);
  checker.on_digest_apply(9);  // applied early: the batch is in flight
  checker.on_sync_batch_ok();

  auto report = checker.report();
  EXPECT_EQ(report.count(Rule::kDigestBeforeBatchOutcome), 1u);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front().line, 9u);
}

TEST(PaxCheckPersistOrder, DigestAfterBatchOutcomeIsClean) {
  Checker checker;
  checker.on_sync_push(9);
  checker.on_sync_batch_ok();
  checker.on_digest_apply(9);
  EXPECT_TRUE(checker.report().clean()) << checker.report().to_string();
}

// A failed batch also clears its pushed lines: the digests were never
// applied, so the retry re-pushes them without a stale-push false positive.
TEST(PaxCheckPersistOrder, FailedBatchClearsPushedLines) {
  Checker checker;
  checker.on_sync_push(9);
  checker.on_sync_batch_fail();
  checker.on_sync_push(9);
  checker.on_sync_batch_ok();
  checker.on_digest_apply(9);
  EXPECT_TRUE(checker.report().clean()) << checker.report().to_string();
}

// The full libpax stack — pool format, recovery, tracked+adaptive sync,
// sync persist, non-blocking persist, crash, re-attach — must be silent
// under an attached checker.
TEST(PaxCheckPersistOrder, FullRuntimeCycleIsClean) {
  auto pm = pmem::PmemDevice::create_in_memory(8 << 20);
  check::CheckerOptions opts;
  Checker checker(opts);
  pm->set_checker(&checker);

  libpax::RuntimeOptions ro;
  ro.log_size = 1 << 20;
  ro.track_lines = true;
  for (int round = 0; round < 2; ++round) {
    auto rt = libpax::PaxRuntime::attach(pm.get(), ro);
    ASSERT_TRUE(rt.ok()) << rt.status().to_string();
    auto& runtime = *rt.value();
    auto* base = runtime.vpm_base();
    for (std::size_t i = 0; i < 4 * kPageSize; i += 64) {
      base[i] = static_cast<std::byte>(i + round);
    }
    ASSERT_TRUE(runtime.persist().ok());
    for (std::size_t i = 0; i < kPageSize; i += 128) {
      base[i] = static_cast<std::byte>(i ^ 0x5a);
    }
    ASSERT_TRUE(runtime.persist_async().ok());
    ASSERT_TRUE(runtime.complete_persist().ok());
    runtime.sync_step();
  }
  pm->crash(pmem::CrashConfig::torn(0.5, 0x5eed));

  auto report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GT(report.diagnostics.events, 0u);
  pm->set_checker(nullptr);
}

}  // namespace
}  // namespace pax
