#include "pax/common/crc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace pax {
namespace {

std::uint32_t crc_of(const std::string& s) {
  return crc32c(s.data(), s.size());
}

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C test vectors (RFC 3720 appendix / common usage).
  EXPECT_EQ(crc_of(""), 0x00000000u);
  EXPECT_EQ(crc_of("a"), 0xc1d04330u);
  EXPECT_EQ(crc_of("abc"), 0x364b3fb7u);
  EXPECT_EQ(crc_of("123456789"), 0xe3069283u);
}

TEST(Crc32cTest, AllZeros32Bytes) {
  std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= s.size(); ++split) {
    std::uint32_t part = crc32c(s.data(), split);
    std::uint32_t full = crc32c(s.data() + split, s.size() - split, part);
    EXPECT_EQ(full, crc_of(s)) << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToEveryByte) {
  std::vector<std::byte> buf(100, std::byte{0x5a});
  const std::uint32_t base = crc32c(buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    auto copy = buf;
    copy[i] = std::byte{0x5b};
    EXPECT_NE(crc32c(copy), base) << "flip at " << i;
  }
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (std::uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_EQ(unmask_crc(mask_crc(crc)), crc);
    EXPECT_NE(mask_crc(crc), crc);  // masking must actually change the value
  }
}

TEST(Crc32cTest, UnalignedInputsAgree) {
  // The slice-by-8 fast path must agree with the byte-at-a-time tail for
  // every alignment and length.
  std::vector<std::byte> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 17 + 3);
  }
  for (std::size_t start = 0; start < 8; ++start) {
    for (std::size_t len = 0; len + start <= buf.size(); ++len) {
      std::uint32_t fast = crc32c(buf.data() + start, len);
      // Reference: chain one byte at a time.
      std::uint32_t slow = 0;
      for (std::size_t i = 0; i < len; ++i) {
        slow = crc32c(buf.data() + start + i, 1, slow);
      }
      ASSERT_EQ(fast, slow) << "start=" << start << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace pax
