// Group append (LogWriter::append_batch): the batched host sync path's
// single-framing-pass log write. Batched records must be bitwise readable
// exactly as the equivalent sequence of single appends, report the same end
// offsets, and fail all-or-nothing on exhaustion.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pax/pmem/pmem_device.hpp"
#include "pax/wal/wal.hpp"

namespace pax::wal {
namespace {

constexpr PoolOffset kExtent = 4096;
constexpr std::size_t kExtentSize = 16 * 1024;

std::vector<std::byte> payload_of(std::size_t i, std::size_t size) {
  std::vector<std::byte> p(size);
  for (std::size_t b = 0; b < size; ++b) {
    p[b] = static_cast<std::byte>((i * 37 + b * 11 + 3) & 0xff);
  }
  return p;
}

struct WalBatchFixture : ::testing::Test {
  std::unique_ptr<pmem::PmemDevice> dev =
      pmem::PmemDevice::create_in_memory(1 << 20);
  LogWriter writer{dev.get(), kExtent, kExtentSize};
};

TEST_F(WalBatchFixture, BatchMatchesEquivalentSingleAppends) {
  constexpr std::size_t kPayload = 72;  // sizeof(LineUndoPayload)
  constexpr std::size_t kCount = 9;
  std::vector<std::byte> flat;
  for (std::size_t i = 0; i < kCount; ++i) {
    auto p = payload_of(i, kPayload);
    flat.insert(flat.end(), p.begin(), p.end());
  }

  // Reference: the same records through single appends on a second writer.
  auto dev2 = pmem::PmemDevice::create_in_memory(1 << 20);
  LogWriter single{dev2.get(), kExtent, kExtentSize};
  std::vector<std::uint64_t> single_ends;
  for (std::size_t i = 0; i < kCount; ++i) {
    auto end = single.append(7, RecordType::kLineUndo,
                             std::span(flat).subspan(i * kPayload, kPayload));
    ASSERT_TRUE(end.ok());
    single_ends.push_back(end.value());
  }

  std::vector<std::uint64_t> batch_ends;
  auto end = writer.append_batch(7, RecordType::kLineUndo, flat, kPayload,
                                 &batch_ends);
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end.value(), writer.appended());
  EXPECT_EQ(writer.appended(), single.appended());
  EXPECT_EQ(batch_ends, single_ends);

  writer.flush();
  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_EQ(records.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(records[i].epoch, 7u);
    EXPECT_EQ(records[i].type, RecordType::kLineUndo);
    EXPECT_EQ(records[i].payload, payload_of(i, kPayload));
    EXPECT_EQ(records[i].end_offset, batch_ends[i]);
  }
}

TEST_F(WalBatchFixture, BatchAfterSingleAppendsContinuesTheLog) {
  ASSERT_TRUE(
      writer.append(1, RecordType::kLineUndo, payload_of(0, 40)).ok());
  std::vector<std::byte> flat;
  for (std::size_t i = 1; i <= 3; ++i) {
    auto p = payload_of(i, 40);
    flat.insert(flat.end(), p.begin(), p.end());
  }
  std::vector<std::uint64_t> ends;
  ASSERT_TRUE(
      writer.append_batch(1, RecordType::kLineUndo, flat, 40, &ends).ok());
  writer.flush();

  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].payload, payload_of(i, 40));
  }
}

TEST_F(WalBatchFixture, ExhaustionIsAllOrNothing) {
  // A batch that cannot fit must stage nothing: appended() unchanged, no
  // partial records readable, ends_out untouched.
  const std::size_t frame = record_frame_size(256);
  const std::size_t fits = kExtentSize / frame;
  std::vector<std::byte> flat((fits + 1) * 256, std::byte{0x5a});

  std::vector<std::uint64_t> ends;
  auto end = writer.append_batch(2, RecordType::kLineUndo, flat, 256, &ends);
  ASSERT_FALSE(end.ok());
  EXPECT_EQ(end.status().code(), StatusCode::kOutOfSpace);
  EXPECT_EQ(writer.appended(), 0u);
  EXPECT_TRUE(ends.empty());
  writer.flush();
  EXPECT_TRUE(LogReader::read_all(dev.get(), kExtent, kExtentSize).empty());

  // A batch that exactly fits still succeeds.
  flat.resize(fits * 256);
  ASSERT_TRUE(
      writer.append_batch(2, RecordType::kLineUndo, flat, 256, &ends).ok());
  EXPECT_EQ(ends.size(), fits);
}

TEST_F(WalBatchFixture, EmptyBatchIsANoOp) {
  std::vector<std::uint64_t> ends;
  auto end = writer.append_batch(1, RecordType::kLineUndo, {}, 64, &ends);
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(writer.appended(), 0u);
  EXPECT_TRUE(ends.empty());
}

}  // namespace
}  // namespace pax::wal
