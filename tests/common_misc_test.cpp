// Tests for Status/Result, the RNGs, and logging plumbing.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pax/common/log.hpp"
#include "pax/common/rng.hpp"
#include "pax/common/status.hpp"

namespace pax {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = corruption("bad crc");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.to_string(), "CORRUPTION: bad crc");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code : {StatusCode::kOk, StatusCode::kIoError,
                    StatusCode::kCorruption, StatusCode::kInvalidArgument,
                    StatusCode::kNotFound, StatusCode::kOutOfSpace,
                    StatusCode::kFailedPrecondition}) {
    EXPECT_NE(status_code_name(code), "UNKNOWN");
    EXPECT_FALSE(status_code_name(code).empty());
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return not_found("x"); };
  auto outer = [&]() -> Status {
    PAX_RETURN_IF_ERROR(inner());
    return Status::ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok_result(5);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 5);
  EXPECT_TRUE(ok_result.status().is_ok());

  Result<int> err_result(io_error("disk on fire"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kIoError);
  EXPECT_EQ(err_result.value_or(-1), -1);
  EXPECT_EQ(ok_result.value_or(-1), 5);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

TEST(RngTest, SplitMix64KnownSequence) {
  // Reference values for seed 0 (Vigna's splitmix64).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(RngTest, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    if (va != b.next()) all_equal = false;
    if (va != c.next()) any_diff_seed = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(RngTest, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversRangeRoughlyUniformly) {
  Xoshiro256 rng(8);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.next_below(10)];
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 10 * 0.9);
    EXPECT_LT(count, kDraws / 10 * 1.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Xoshiro256 rng(10);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.25, 0.01);
}

TEST(LogTest, LevelGatingWorks) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(internal::log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(internal::log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(internal::log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(internal::log_enabled(LogLevel::kDebug));
  set_log_level(old);
}

TEST(LogTest, FormatProducesExpectedText) {
  EXPECT_EQ(internal::format_log("x=%d s=%s", 5, "abc"), "x=5 s=abc");
}

}  // namespace
}  // namespace pax
