// PaxLitmus: litmus-driven coherence schedule enumeration × crash-point
// exploration.
//
// Three layers of assertions:
//   * harness self-checks — the shape table enumerates the expected
//     interleaving counts, and no SC outcome is forbidden (the predicates
//     only reject what sequential consistency rules out);
//   * clean runs — every shape enumerates with zero findings, exhaustively
//     (--every 1) on the core shapes and sampled on the wide ones, with
//     optional .paxevt recording under PAX_TRACE_DIR for the CI PaxScope
//     zero-findings sweep;
//   * mutation tests — each seeded coherence bug (coherence::DomainFaults)
//     must be caught by a specific shape, with findings that localize it
//     to (interleaving index, crash event index) coordinates.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "pax/check/checker.hpp"
#include "pax/check/trace_file.hpp"
#include "pax/litmus/runner.hpp"

namespace pax::litmus {
namespace {

const char* trace_dir() { return std::getenv("PAX_TRACE_DIR"); }

std::set<std::string> finding_kinds(const ShapeResult& result) {
  std::set<std::string> kinds;
  for (const LitmusFinding& f : result.findings) kinds.insert(f.kind);
  return kinds;
}

bool has_crash_indexed_finding(const ShapeResult& result) {
  for (const LitmusFinding& f : result.findings) {
    if (f.crash_after != check::kNoCrashPoint) return true;
  }
  return false;
}

TEST(LitmusShapes, TableEnumeratesTheClassicEightExactly) {
  const std::map<std::string, std::size_t> expected = {
      {"SB", 6},  {"LB", 6},    {"MP", 6},   {"WRC", 30},
      {"IRIW", 180}, {"CoRR", 3}, {"CoWW", 1}, {"2+2W", 6}};
  ASSERT_EQ(all_shapes().size(), expected.size());
  for (const Shape& shape : all_shapes()) {
    auto it = expected.find(shape.name);
    ASSERT_NE(it, expected.end()) << shape.name;
    EXPECT_EQ(enumerate_interleavings(shape).size(), it->second)
        << shape.name;
    EXPECT_EQ(find_shape(shape.name), &shape);
  }
  EXPECT_EQ(find_shape("nope"), nullptr);
}

TEST(LitmusShapes, NoSequentiallyConsistentOutcomeIsForbidden) {
  // The forbidden predicates must reject only what SC rules out: every
  // outcome of every serialized interleaving passes.
  for (const Shape& shape : all_shapes()) {
    for (const auto& order : enumerate_interleavings(shape)) {
      const Outcome outcome = simulate_sc(shape, order);
      EXPECT_FALSE(shape.forbidden(outcome))
          << shape.name << " @ " << schedule_string(order) << " -> "
          << outcome.to_string();
    }
  }
}

TEST(LitmusRunner, AllShapesEnumerateCleanScheduleOnly) {
  for (const Shape& shape : all_shapes()) {
    LitmusOptions options;
    options.crash_every = 0;  // schedule pass only
    auto result = run_shape(shape, options);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const ShapeResult& r = result.value();
    EXPECT_TRUE(r.clean()) << r.to_string();
    EXPECT_EQ(r.interleavings, r.interleavings_total) << shape.name;
    // The domain reproduced exactly the SC outcome set.
    EXPECT_EQ(r.outcomes, sc_outcome_set(shape)) << shape.name;
  }
}

TEST(LitmusRunner, ExhaustiveCrashProductCleanOnCoreShapes) {
  // The acceptance matrix: SB/MP/LB at --every 1, all three crash modes,
  // every interleaving. PAX_TRACE_DIR (set by the CI paxcheck job) makes
  // each schedule pass record its .paxevt for the PaxScope sweep.
  for (const char* name : {"SB", "MP", "LB"}) {
    const Shape* shape = find_shape(name);
    ASSERT_NE(shape, nullptr);
    LitmusOptions options;
    options.crash_every = 1;
    if (trace_dir() != nullptr) options.trace_dir = trace_dir();
    auto result = run_shape(*shape, options);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const ShapeResult& r = result.value();
    EXPECT_TRUE(r.clean()) << r.to_string();
    EXPECT_EQ(r.interleavings, r.interleavings_total);
    EXPECT_GT(r.crash_points, 0u);
    EXPECT_GT(r.recoveries, r.crash_points);  // >1 mode per point
  }
}

TEST(LitmusRunner, SampledCrashProductCleanOnWideShapes) {
  // WRC (30) and IRIW (180) are too wide for an exhaustive tier-1 cross
  // product; sample interleavings and crash points evenly instead. CoRR,
  // CoWW and 2+2W are narrow enough to keep exhaustive schedules.
  for (const char* name : {"WRC", "IRIW", "CoRR", "CoWW", "2+2W"}) {
    const Shape* shape = find_shape(name);
    ASSERT_NE(shape, nullptr);
    LitmusOptions options;
    options.crash_every = 1;
    options.max_crash_points = 4;
    options.max_interleavings = 10;
    options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
    auto result = run_shape(*shape, options);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_TRUE(result.value().clean()) << result.value().to_string();
    EXPECT_GT(result.value().crash_points, 0u) << name;
  }
}

TEST(LitmusSeededBugs, SuppressedSnoopWritebackCaughtBySB) {
  // Dropping the Modified-peer data on a snoop makes both SB loads read
  // stale zeros (the classic forbidden outcome) and leaves the durable x
  // at 0 — so the crash product must also flag post-commit divergence.
  const Shape* sb = find_shape("SB");
  ASSERT_NE(sb, nullptr);
  LitmusOptions options;
  options.faults.suppress_snoop_writeback = true;
  options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
  options.max_findings = 0;  // collect everything
  auto result = run_shape(*sb, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const ShapeResult& r = result.value();
  ASSERT_FALSE(r.clean());
  const auto kinds = finding_kinds(r);
  EXPECT_TRUE(kinds.count("forbidden-outcome")) << r.to_string();
  EXPECT_TRUE(kinds.count("sc-divergence")) << r.to_string();
  EXPECT_TRUE(has_crash_indexed_finding(r)) << r.to_string();
  // Findings localize to (interleaving, crash point) coordinates.
  for (const LitmusFinding& f : r.findings) {
    EXPECT_NE(f.to_string().find("interleaving"), std::string::npos);
  }
}

TEST(LitmusSeededBugs, SkippedPersistPullCaughtByCoWW) {
  // CoWW's single core holds x=2 Modified at persist time; skipping the
  // pull commits the device's stale 0. The registers are fine (the core
  // read its own cache), so only the post-power-loss finals and the crash
  // product's SC-finals invariant can catch it — and must.
  const Shape* coww = find_shape("CoWW");
  ASSERT_NE(coww, nullptr);
  LitmusOptions options;
  options.faults.skip_persist_pull = true;
  options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
  options.max_findings = 0;
  auto result = run_shape(*coww, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const ShapeResult& r = result.value();
  ASSERT_FALSE(r.clean());
  const auto kinds = finding_kinds(r);
  EXPECT_TRUE(kinds.count("forbidden-outcome")) << r.to_string();
  EXPECT_TRUE(kinds.count("sc-divergence")) << r.to_string();
  EXPECT_TRUE(has_crash_indexed_finding(r)) << r.to_string();
}

TEST(LitmusSeededBugs, SkippedLineSerializationCaughtBySBAnd2Plus2W) {
  // Bypassing the per-address ordering point removes all peer snooping:
  // SB observes the forbidden (0,0), and 2+2W's false-sharing line ends
  // with two Modified copies whose merge loses one core's writes — the
  // crash product's SC-finals invariant flags the durable divergence.
  LitmusOptions options;
  options.faults.skip_line_serialization = true;
  options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
  options.max_findings = 0;

  auto sb = run_shape(*find_shape("SB"), options);
  ASSERT_TRUE(sb.ok()) << sb.status().to_string();
  ASSERT_FALSE(sb.value().clean());
  EXPECT_TRUE(finding_kinds(sb.value()).count("forbidden-outcome"))
      << sb.value().to_string();

  auto ttw = run_shape(*find_shape("2+2W"), options);
  ASSERT_TRUE(ttw.ok()) << ttw.status().to_string();
  ASSERT_FALSE(ttw.value().clean());
  EXPECT_TRUE(has_crash_indexed_finding(ttw.value()))
      << ttw.value().to_string();
}

TEST(LitmusTraces, RecordedTracesAreReplayable) {
  const Shape* sb = find_shape("SB");
  ASSERT_NE(sb, nullptr);
  LitmusOptions options;
  options.crash_every = 0;
  options.trace_dir = ::testing::TempDir();
  auto result = run_shape(*sb, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().clean()) << result.value().to_string();

  // Every interleaving left a replayable trace with a clean verdict.
  for (std::uint64_t i = 0; i < result.value().interleavings; ++i) {
    const std::string path =
        options.trace_dir + "/litmus-SB-i" + std::to_string(i) + ".paxevt";
    auto events = check::read_trace(path);
    ASSERT_TRUE(events.ok()) << path << ": " << events.status().to_string();
    ASSERT_FALSE(events.value().empty()) << path;
    check::Checker checker;
    checker.replay(events.value());
    EXPECT_TRUE(checker.report().clean()) << path;
  }
}

}  // namespace
}  // namespace pax::litmus
