// Tests of the serving-plane DES and its calibration loop: fit on one
// closed-loop "measurement", then predict a second, unseen configuration
// and assert the prediction error stays inside the tolerance band that
// scripts/check_paxkv.py gates on.
#include <gtest/gtest.h>

#include "pax/model/calibrate.hpp"

namespace pax::model {
namespace {

// The band check_paxkv.py enforces for the bench calibration row. Keep in
// sync with kCalibrationTolerance there.
constexpr double kTolerance = 0.25;

ServingMeasurement measure_with(const ServingParams& truth,
                                const ServingWorkload& workload) {
  const ServingPrediction sim = simulate_serving(truth, workload);
  ServingMeasurement m;
  m.workload = workload;
  m.throughput_ops_s = sim.throughput_ops_s;
  m.p50_us = sim.p50_us;
  m.p95_us = sim.p95_us;
  m.p99_us = sim.p99_us;
  m.read_floor_us = sim.read_floor_us;
  return m;
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(5.0, 0.0), 1.0);
}

TEST(SimulateServingTest, Deterministic) {
  ServingParams params;
  params.loops = 2;
  params.service_us = 6.0;
  params.base_rtt_us = 40.0;
  ServingWorkload wl;
  wl.connections = 8;
  wl.depth = 4;
  const ServingPrediction a = simulate_serving(params, wl);
  const ServingPrediction b = simulate_serving(params, wl);
  EXPECT_DOUBLE_EQ(a.throughput_ops_s, b.throughput_ops_s);
  EXPECT_DOUBLE_EQ(a.p50_us, b.p50_us);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
  EXPECT_GT(a.throughput_ops_s, 0.0);
  EXPECT_GE(a.p99_us, a.p95_us);
  EXPECT_GE(a.p95_us, a.p50_us);
}

TEST(SimulateServingTest, MoreLoopsMoreThroughput) {
  ServingWorkload wl;
  wl.connections = 16;
  wl.depth = 8;
  ServingParams one;
  one.loops = 1;
  one.service_us = 10.0;
  one.base_rtt_us = 20.0;
  ServingParams four = one;
  four.loops = 4;
  const double t1 = simulate_serving(one, wl).throughput_ops_s;
  const double t4 = simulate_serving(four, wl).throughput_ops_s;
  // Four stations over sixteen connections: clearly more than one station,
  // even without demanding ideal 4x scaling.
  EXPECT_GT(t4, t1 * 2.0);
}

TEST(SimulateServingTest, WaveCadenceDelaysWrites) {
  ServingWorkload wl;
  wl.connections = 4;
  wl.depth = 4;
  wl.write_frac = 1.0;  // every op parks on the wave boundary
  ServingParams fast;
  fast.loops = 1;
  fast.service_us = 1.0;
  fast.base_rtt_us = 0.0;
  fast.wave_interval_us = 0.0;
  ServingParams waved = fast;
  waved.wave_interval_us = 500.0;
  const ServingPrediction free_run = simulate_serving(fast, wl);
  const ServingPrediction parked = simulate_serving(waved, wl);
  EXPECT_GT(parked.p50_us, free_run.p50_us);
}

TEST(CalibrateTest, RecoversGroundTruthParameters) {
  ServingParams truth;
  truth.loops = 2;
  truth.service_us = 8.0;
  truth.base_rtt_us = 60.0;
  truth.wave_interval_us = 200.0;
  ServingWorkload fit_wl;
  fit_wl.connections = 8;
  fit_wl.depth = 8;
  fit_wl.write_frac = 0.5;

  const ServingMeasurement m = measure_with(truth, fit_wl);
  const ServingParams fitted =
      calibrate(m, truth.loops, truth.wave_interval_us);

  EXPECT_LT(relative_error(fitted.service_us, truth.service_us), 0.10);
  // base_rtt_us absorbs quantile noise; it only needs to be in the
  // right neighbourhood for predictions to land in band.
  EXPECT_NEAR(fitted.base_rtt_us, truth.base_rtt_us, 25.0);

  // The fit must reproduce its own training run tightly.
  const ServingPrediction replay = simulate_serving(fitted, fit_wl);
  EXPECT_LT(relative_error(replay.throughput_ops_s, m.throughput_ops_s),
            0.05);
  EXPECT_LT(relative_error(replay.p50_us, m.p50_us), 0.10);
}

// The acceptance criterion: calibrate on one configuration, predict a
// second unseen one, error within the tolerance band.
TEST(CalibrateTest, PredictsUnseenClosedLoopConfiguration) {
  ServingParams truth;
  truth.loops = 2;
  truth.service_us = 7.0;
  truth.base_rtt_us = 45.0;
  truth.wave_interval_us = 200.0;

  ServingWorkload fit_wl;
  fit_wl.connections = 8;
  fit_wl.depth = 8;
  fit_wl.write_frac = 0.5;
  const ServingParams fitted = calibrate(measure_with(truth, fit_wl),
                                         truth.loops,
                                         truth.wave_interval_us);

  // Unseen: double the connections, shrink the depth.
  ServingWorkload unseen;
  unseen.connections = 16;
  unseen.depth = 4;
  unseen.write_frac = 0.5;
  const ServingMeasurement actual = measure_with(truth, unseen);
  const ServingPrediction pred = simulate_serving(fitted, unseen);

  EXPECT_LT(relative_error(pred.throughput_ops_s, actual.throughput_ops_s),
            kTolerance);
  EXPECT_LT(relative_error(pred.p50_us, actual.p50_us), kTolerance);
  EXPECT_LT(relative_error(pred.p95_us, actual.p95_us), kTolerance);
  EXPECT_LT(relative_error(pred.p99_us, actual.p99_us), kTolerance);
}

TEST(CalibrateTest, PredictsUnseenOpenLoopCurve) {
  ServingParams truth;
  truth.loops = 1;
  truth.service_us = 10.0;
  truth.base_rtt_us = 30.0;
  truth.wave_interval_us = 200.0;

  ServingWorkload fit_wl;
  fit_wl.connections = 4;
  fit_wl.depth = 16;
  fit_wl.write_frac = 0.5;
  const ServingParams fitted = calibrate(measure_with(truth, fit_wl),
                                         truth.loops,
                                         truth.wave_interval_us);

  // Open loop at half the fitted capacity: latency should sit near the
  // rtt floor + wave parking, and the prediction should track the truth.
  ServingWorkload open_wl;
  open_wl.connections = 4;
  open_wl.write_frac = 0.5;
  open_wl.open_rate_ops_s = 0.5 * 1e6 / truth.service_us;
  open_wl.duration_s = 0.5;
  const ServingMeasurement actual = measure_with(truth, open_wl);
  const ServingPrediction pred = simulate_serving(fitted, open_wl);

  EXPECT_LT(relative_error(pred.throughput_ops_s, actual.throughput_ops_s),
            kTolerance);
  EXPECT_LT(relative_error(pred.p50_us, actual.p50_us), kTolerance);
  EXPECT_LT(relative_error(pred.p99_us, actual.p99_us), kTolerance);
}

}  // namespace
}  // namespace pax::model
