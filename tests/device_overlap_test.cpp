// Tests of the §6 extension: non-blocking persist via epoch overlap
// (seal_epoch / commit_sealed, banked undo logs, two-epoch recovery).
#include <gtest/gtest.h>

#include "pax/coherence/host_cache.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "test_util.hpp"

namespace pax::device {
namespace {

using testing::patterned_line;
using testing::TestPool;

struct OverlapFixture : ::testing::Test {
  TestPool tp = TestPool::create(4 << 20, 256 * 1024);

  DeviceConfig config() {
    DeviceConfig c;
    c.hbm.capacity_lines = 64;
    c.hbm.ways = 4;
    return c;
  }
};

TEST_F(OverlapFixture, SealReturnsImmediatelyWithoutCommitting) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));

  auto sealed = dev.seal_epoch(nullptr);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed.value(), 1u);
  EXPECT_TRUE(dev.has_sealed_epoch());
  EXPECT_EQ(tp.pool.committed_epoch(), 0u);  // nothing durable yet
  EXPECT_EQ(dev.current_epoch(), 2u);        // new epoch already open
}

TEST_F(OverlapFixture, CommitSealedMakesEpochDurable) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.seal_epoch(nullptr).ok());

  auto committed = dev.commit_sealed();
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), 1u);
  EXPECT_FALSE(dev.has_sealed_epoch());
  EXPECT_EQ(tp.pool.committed_epoch(), 1u);
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(1));
}

TEST_F(OverlapFixture, CommitSealedWithNothingSealedIsANoop) {
  PaxDevice dev(&tp.pool, config());
  auto committed = dev.commit_sealed();
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), 0u);
}

TEST_F(OverlapFixture, DoubleSealRejected) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  ASSERT_TRUE(dev.seal_epoch(nullptr).ok());
  auto second = dev.seal_epoch(nullptr);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(OverlapFixture, NewEpochAccumulatesWhileSealedPending) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.seal_epoch(nullptr).ok());

  // Epoch 2 modifies a different line and the same line again.
  ASSERT_TRUE(dev.write_intent(tp.data_line(1)).is_ok());
  dev.writeback_line(tp.data_line(1), patterned_line(2));
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(3));
  EXPECT_EQ(dev.epoch_logged_lines(), 2u);

  ASSERT_TRUE(dev.commit_sealed().ok());
  EXPECT_EQ(tp.pool.committed_epoch(), 1u);

  ASSERT_TRUE(dev.persist(nullptr).ok());
  EXPECT_EQ(tp.pool.committed_epoch(), 2u);
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(3));
  EXPECT_EQ(tp.device->durable_line(tp.data_line(1)), patterned_line(2));
}

TEST_F(OverlapFixture, PersistCompletesPendingSealFirst) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.seal_epoch(nullptr).ok());

  ASSERT_TRUE(dev.write_intent(tp.data_line(1)).is_ok());
  dev.writeback_line(tp.data_line(1), patterned_line(2));

  auto committed = dev.persist(nullptr);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), 2u);  // both epochs durable, in order
  EXPECT_EQ(tp.pool.committed_epoch(), 2u);
}

TEST_F(OverlapFixture, CrashWithTwoUncommittedEpochsRollsBackBoth) {
  // Line 0: epoch-1 value v1 sealed (not committed), epoch-2 value v2
  // active. Crash → recovery must land on epoch 0 (zeros), undoing v2 then
  // v1 in that order.
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.seal_epoch(nullptr).ok());

  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(2));
  dev.tick(/*force_flush=*/true);  // push v2 toward PM (undo gated: OK)

  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  auto report = recover_pool(pool);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().recovered_epoch, 0u);
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), LineData{});
}

TEST_F(OverlapFixture, CrashAfterAsyncCommitKeepsSealedEpoch) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.seal_epoch(nullptr).ok());

  // Epoch 2 modifies the same line before the async commit completes.
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(2));

  ASSERT_TRUE(dev.commit_sealed().ok());
  tp.device->crash(pmem::CrashConfig::drop_all());

  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(recover_pool(pool).ok());
  EXPECT_EQ(pool.committed_epoch(), 1u);
  // Epoch-2's value rolled back to the *sealed* epoch's value.
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(1));
}

TEST_F(OverlapFixture, CoherenceSealDowngradesAndRelogs) {
  PaxDevice dev(&tp.pool, config());
  coherence::HostCacheSim host(&dev, coherence::HostCacheConfig{});
  const PoolOffset addr = tp.pool.data_offset();

  ASSERT_TRUE(host.store_u64(addr, 1).is_ok());
  ASSERT_TRUE(dev.seal_epoch(host.pull_fn()).ok());
  EXPECT_EQ(host.line_state(LineIndex::containing(addr)),
            coherence::MesiState::kShared);

  ASSERT_TRUE(host.store_u64(addr, 2).is_ok());  // must RdOwn again
  EXPECT_EQ(dev.stats().first_touch_logs, 2u);

  ASSERT_TRUE(dev.commit_sealed().ok());
  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());
  EXPECT_EQ(tp.device->load_u64(addr), 2u);

  // Crash after everything committed: value persists.
  host.drop_all_without_writeback();
  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(recover_pool(pool).ok());
  EXPECT_EQ(tp.device->load_u64(addr), 2u);
}

TEST_F(OverlapFixture, AlternatingSealCommitReusesBanks) {
  PaxDevice dev(&tp.pool, config());
  for (Epoch e = 0; e < 6; ++e) {
    ASSERT_TRUE(dev.write_intent(tp.data_line(e)).is_ok());
    dev.writeback_line(tp.data_line(e), patterned_line(100 + e));
    auto sealed = dev.seal_epoch(nullptr);
    ASSERT_TRUE(sealed.ok()) << "epoch " << e;
    ASSERT_TRUE(dev.commit_sealed().ok());
  }
  EXPECT_EQ(tp.pool.committed_epoch(), 6u);
  for (Epoch e = 0; e < 6; ++e) {
    EXPECT_EQ(tp.device->durable_line(tp.data_line(e)),
              patterned_line(100 + e));
  }
}

}  // namespace
}  // namespace pax::device
