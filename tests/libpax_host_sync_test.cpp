// The batched, parallel host sync path: batched configs must persist the
// exact state the legacy per-line path persists, with far fewer device
// calls; plus the vPM region's coalesced re-protection and dirty-counter
// early-out, and the prompt flusher shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "pax/libpax/runtime.hpp"
#include "pax/libpax/vpm_region.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 16 << 20;

RuntimeOptions legacy_opts() {
  RuntimeOptions o;
  o.log_size = 256 * 1024;
  o.sync_batch_lines = 1;  // per-line peek/intent/writeback
  o.diff_workers = 1;
  return o;
}

RuntimeOptions batched_opts() {
  RuntimeOptions o;
  o.log_size = 256 * 1024;
  o.sync_batch_lines = 64;
  o.diff_workers = 3;
  o.diff_fanout_min_pages = 1;  // always fan out, even tiny dirty sets
  return o;
}

// Applies the same deterministic mutation/persist schedule to a runtime.
void run_schedule(PaxRuntime& rt) {
  for (int round = 0; round < 4; ++round) {
    for (std::size_t p = 1; p <= 20; ++p) {
      // Partial-page writes: some lines per page change, some don't.
      std::memset(rt.vpm_base() + p * kPageSize + (round * 256) % kPageSize,
                  0x10 + round * 16 + static_cast<int>(p), 192);
    }
    if (round % 2 == 0) {
      ASSERT_TRUE(rt.persist().ok());
    } else {
      ASSERT_TRUE(rt.persist_async().ok());
      ASSERT_TRUE(rt.complete_persist().ok());
    }
  }
  // Leave uncommitted garbage behind; it must vanish at the crash.
  std::memset(rt.vpm_base() + 21 * kPageSize, 0xee, 2 * kPageSize);
  rt.sync_step();
}

TEST(HostSyncEquivalenceTest, BatchedRecoversExactlyWhatLegacyRecovers) {
  auto pm_a = pmem::PmemDevice::create_in_memory(kPool);
  auto pm_b = pmem::PmemDevice::create_in_memory(kPool);
  std::uint64_t dirty_legacy = 0, dirty_batched = 0;
  {
    auto rt = PaxRuntime::attach(pm_a.get(), legacy_opts()).value();
    run_schedule(*rt);
    EXPECT_EQ(rt->stats().sync_batches, 0u);
    dirty_legacy = rt->stats().lines_dirty_found;
  }
  {
    auto rt = PaxRuntime::attach(pm_b.get(), batched_opts()).value();
    run_schedule(*rt);
    EXPECT_GT(rt->stats().sync_batches, 0u);
    dirty_batched = rt->stats().lines_dirty_found;
  }
  EXPECT_EQ(dirty_legacy, dirty_batched);

  pm_a->crash(pmem::CrashConfig::drop_all());
  pm_b->crash(pmem::CrashConfig::drop_all());
  auto rt_a = PaxRuntime::attach(pm_a.get(), legacy_opts()).value();
  auto rt_b = PaxRuntime::attach(pm_b.get(), batched_opts()).value();
  ASSERT_EQ(rt_a->committed_epoch(), rt_b->committed_epoch());
  ASSERT_EQ(rt_a->vpm_size(), rt_b->vpm_size());
  EXPECT_EQ(std::memcmp(rt_a->vpm_base(), rt_b->vpm_base(), rt_a->vpm_size()),
            0);
}

TEST(HostSyncEquivalenceTest, DeviceCallAccounting) {
  // 8 fully-dirtied pages: the legacy path pays 3 device calls per dirty
  // line (peek + intent + writeback); batching pays one peek per page and
  // one sync per batch.
  auto legacy = PaxRuntime::create_in_memory(kPool, legacy_opts()).value();
  RuntimeOptions bo = batched_opts();
  bo.diff_workers = 1;  // deterministic batch count
  auto batched = PaxRuntime::create_in_memory(kPool, bo).value();

  for (auto* rt : {legacy.get(), batched.get()}) {
    ASSERT_TRUE(rt->persist().ok());  // settle heap-format writes
  }
  const RuntimeStats lb = legacy->stats();
  const RuntimeStats bb = batched->stats();

  for (auto* rt : {legacy.get(), batched.get()}) {
    for (std::size_t p = 1; p <= 8; ++p) {
      std::memset(rt->vpm_base() + p * kPageSize, 0x5a, kPageSize);
    }
    ASSERT_TRUE(rt->persist().ok());
  }
  const RuntimeStats ls = legacy->stats();
  const RuntimeStats bs = batched->stats();

  const std::uint64_t dirty = ls.lines_dirty_found - lb.lines_dirty_found;
  EXPECT_EQ(dirty, 8 * kLinesPerPage);
  EXPECT_EQ(bs.lines_dirty_found - bb.lines_dirty_found, dirty);

  // Legacy: one peek per checked line + two more calls per dirty line.
  EXPECT_EQ(ls.device_calls - lb.device_calls,
            (ls.lines_diff_checked - lb.lines_diff_checked) + 2 * dirty);
  // Batched: one peek_lines per page + one sync_lines per full batch.
  EXPECT_EQ(bs.sync_batches - bb.sync_batches,
            dirty / bo.sync_batch_lines);
  EXPECT_EQ(bs.device_calls - bb.device_calls,
            (bs.pages_diffed - bb.pages_diffed) +
                (bs.sync_batches - bb.sync_batches));
  EXPECT_LT(bs.device_calls - bb.device_calls,
            (ls.device_calls - lb.device_calls) / 10);
}

TEST(HostSyncEquivalenceTest, SnapshotReadsAnyAlignment) {
  auto rt = PaxRuntime::create_in_memory(kPool, batched_opts()).value();
  for (std::size_t i = 0; i < 3 * kPageSize; ++i) {
    rt->vpm_base()[kPageSize + i] = static_cast<std::byte>((i * 7 + 1) & 0xff);
  }
  ASSERT_TRUE(rt->persist().ok());
  // Overwrite after the commit: snapshot reads must not see this.
  std::memset(rt->vpm_base() + kPageSize, 0xff, 3 * kPageSize);

  // Unaligned offsets/sizes spanning lines, pages, and the chunk buffer.
  const std::size_t cases[][2] = {{kPageSize, 3 * kPageSize},
                                  {kPageSize + 1, 100},
                                  {kPageSize + 63, 2},
                                  {2 * kPageSize - 5, kPageSize + 11},
                                  {kPageSize + 4095, 4097}};
  for (const auto& c : cases) {
    std::vector<std::byte> out(c[1]);
    rt->read_snapshot(c[0], out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::size_t rel = c[0] + i - kPageSize;
      ASSERT_EQ(out[i], static_cast<std::byte>((rel * 7 + 1) & 0xff))
          << "offset " << c[0] << " byte " << i;
    }
  }
}

TEST(HostSyncEquivalenceTest, FlusherShutdownIsPrompt) {
  RuntimeOptions o;
  o.start_flusher_thread = true;
  o.flusher_interval = std::chrono::microseconds(5'000'000);  // 5 s sleep
  auto rt = PaxRuntime::create_in_memory(kPool, o).value();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it park
  const auto t0 = std::chrono::steady_clock::now();
  rt.reset();  // must interrupt the interval wait, not ride it out
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

TEST(VpmRegionBatchingTest, ProtectPagesCoalescesContiguousRuns) {
  auto region = VpmRegion::create(64 * kPageSize).value();
  ASSERT_TRUE(region->protect_all().is_ok());
  // Dirty three runs: {3,4,5}, {10}, {20,21}.
  for (std::size_t p : {3, 4, 5, 10, 20, 21}) {
    region->base()[p * kPageSize] = std::byte{1};
  }
  auto dirty = region->dirty_pages();
  ASSERT_EQ(dirty.size(), 6u);
  EXPECT_EQ(region->dirty_page_count(), 6u);

  const auto base_calls = region->protect_syscall_count();
  ASSERT_TRUE(region->protect_pages(dirty).is_ok());
  EXPECT_EQ(region->protect_syscall_count() - base_calls, 3u);  // one per run
  EXPECT_EQ(region->dirty_page_count(), 0u);

  // Re-protected pages fault again on the next write.
  const auto base_faults = region->fault_count();
  region->base()[4 * kPageSize] = std::byte{2};
  EXPECT_EQ(region->fault_count() - base_faults, 1u);
  EXPECT_TRUE(region->is_dirty(PageIndex{4}));
}

TEST(VpmRegionBatchingTest, CleanRegionSkipsTheScan) {
  auto region = VpmRegion::create(16 * kPageSize).value();
  ASSERT_TRUE(region->protect_all().is_ok());
  EXPECT_EQ(region->dirty_page_count(), 0u);
  EXPECT_TRUE(region->dirty_pages().empty());

  region->base()[5 * kPageSize + 9] = std::byte{1};
  region->base()[5 * kPageSize + 10] = std::byte{2};  // same page: counted once
  EXPECT_EQ(region->dirty_page_count(), 1u);
  auto dirty = region->dirty_pages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], PageIndex{5});
}

}  // namespace
}  // namespace pax::libpax
