// Black-box breadth: the paper's claim is that *existing volatile data
// structures* become persistent without code changes (§1, §3.1). This suite
// pushes well beyond unordered_map: deque, set, map, nested vectors,
// strings, user-defined structs with internal pointers — plus two pools
// coexisting in one process.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "pax/libpax/persistent.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 32 << 20;

RuntimeOptions options() {
  RuntimeOptions o;
  o.log_size = 4 << 20;
  o.device.log_flush_batch_bytes = 0;
  return o;
}

template <typename T>
using PA = PaxStlAllocator<T>;

TEST(StdContainersTest, Deque) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  using PDeque = std::deque<std::uint64_t, PA<std::uint64_t>>;
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto dq = Persistent<PDeque>::open(*rt).value();
    for (std::uint64_t i = 0; i < 1000; ++i) {
      dq->push_back(i);
      dq->push_front(1000 + i);
    }
    for (int i = 0; i < 100; ++i) dq->pop_front();
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto dq = Persistent<PDeque>::open(*rt).value();
    ASSERT_EQ(dq->size(), 1900u);
    EXPECT_EQ(dq->front(), 1899u);  // 1000+i descending, 100 popped
    EXPECT_EQ(dq->back(), 999u);
  }
}

TEST(StdContainersTest, SetOrderedIterationSurvives) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  using PSet = std::set<std::uint64_t, std::less<std::uint64_t>,
                        PA<std::uint64_t>>;
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto set = Persistent<PSet>::open(*rt).value();
    // i*7 mod 1009 (1009 prime): 1000 distinct nonzero values, inserted in
    // a scrambled order.
    for (std::uint64_t i = 1000; i > 0; --i) set->insert(i * 7 % 1009);
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto set = Persistent<PSet>::open(*rt).value();
    bool first = true;
    std::uint64_t prev = 0;
    for (std::uint64_t v : *set) {
      if (!first) {
        ASSERT_GT(v, prev);  // red-black tree order intact
      }
      first = false;
      prev = v;
    }
    EXPECT_EQ(set->size(), 1000u);
  }
}

TEST(StdContainersTest, NestedVectors) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  using Inner = std::vector<std::uint64_t, PA<std::uint64_t>>;
  using Outer = std::vector<Inner, PA<Inner>>;
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto outer = Persistent<Outer>::open(*rt).value();
    for (std::uint64_t i = 0; i < 50; ++i) {
      Inner inner(PA<std::uint64_t>(&rt->heap()));
      for (std::uint64_t j = 0; j <= i; ++j) inner.push_back(i * 100 + j);
      outer->push_back(std::move(inner));
    }
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto outer = Persistent<Outer>::open(*rt).value();
    ASSERT_EQ(outer->size(), 50u);
    for (std::uint64_t i = 0; i < 50; ++i) {
      ASSERT_EQ((*outer)[i].size(), i + 1);
      for (std::uint64_t j = 0; j <= i; ++j) {
        ASSERT_EQ((*outer)[i][j], i * 100 + j);
      }
    }
  }
}

TEST(StdContainersTest, StringsOfAllSizes) {
  // Small-string optimization (in-place) and heap-allocated strings both
  // live in vPM and must both recover.
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  using PString = std::basic_string<char, std::char_traits<char>, PA<char>>;
  using PStringVec = std::vector<PString, PA<PString>>;
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto vec = Persistent<PStringVec>::open(*rt).value();
    for (std::size_t len : {0u, 1u, 15u, 16u, 100u, 5000u}) {
      PString s(PA<char>(&rt->heap()));
      for (std::size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + i % 26));
      }
      vec->push_back(std::move(s));
    }
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto vec = Persistent<PStringVec>::open(*rt).value();
    const std::size_t lens[] = {0, 1, 15, 16, 100, 5000};
    ASSERT_EQ(vec->size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_EQ((*vec)[i].size(), lens[i]);
      for (std::size_t b = 0; b < lens[i]; ++b) {
        ASSERT_EQ((*vec)[i][b], static_cast<char>('a' + b % 26));
      }
    }
  }
}

TEST(StdContainersTest, StructWithInternalPointers) {
  // A hand-rolled linked structure with raw internal pointers: valid across
  // restarts because the region remaps at the same base.
  struct Node {
    std::uint64_t value;
    Node* next;
  };
  struct List {
    Node* head = nullptr;
    std::uint64_t count = 0;
  };
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto list = Persistent<List>::open(*rt, [](void* mem) {
      new (mem) List();
    }).value();
    for (std::uint64_t i = 0; i < 100; ++i) {
      auto* node = static_cast<Node*>(rt->heap().allocate(sizeof(Node)));
      ASSERT_NE(node, nullptr);
      node->value = i;
      node->next = list->head;
      list->head = node;
      ++list->count;
    }
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto list = Persistent<List>::open(*rt, [](void* mem) {
      new (mem) List();
    }).value();
    ASSERT_EQ(list->count, 100u);
    std::uint64_t expect = 99;
    for (Node* n = list->head; n != nullptr; n = n->next) {
      ASSERT_EQ(n->value, expect--);
    }
  }
}

TEST(StdContainersTest, TwoPoolsCoexistIndependently) {
  auto pm_a = pmem::PmemDevice::create_in_memory(kPool);
  auto pm_b = pmem::PmemDevice::create_in_memory(kPool);
  using PVec = std::vector<std::uint64_t, PA<std::uint64_t>>;

  auto rt_a = PaxRuntime::attach(pm_a.get(), options()).value();
  auto rt_b = PaxRuntime::attach(pm_b.get(), options()).value();
  ASSERT_NE(rt_a->vpm_base(), rt_b->vpm_base());

  auto vec_a = Persistent<PVec>::open(*rt_a).value();
  auto vec_b = Persistent<PVec>::open(*rt_b).value();
  for (std::uint64_t i = 0; i < 100; ++i) {
    vec_a->push_back(i);
    vec_b->push_back(1000 + i);
  }
  // Persist only pool A; crash both.
  ASSERT_TRUE(rt_a->persist().ok());
  rt_a.reset();
  rt_b.reset();
  pm_a->crash(pmem::CrashConfig::drop_all());
  pm_b->crash(pmem::CrashConfig::drop_all());

  auto rt_a2 = PaxRuntime::attach(pm_a.get(), options()).value();
  auto rt_b2 = PaxRuntime::attach(pm_b.get(), options()).value();
  auto vec_a2 = Persistent<PVec>::open(*rt_a2).value();
  auto vec_b2 = Persistent<PVec>::open(*rt_b2).value();
  EXPECT_EQ(vec_a2->size(), 100u);  // A was persisted
  EXPECT_TRUE(vec_b2->empty());     // B was not
}

}  // namespace
}  // namespace pax::libpax
