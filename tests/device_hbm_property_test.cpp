// Property tests of the HBM buffer across configurations (TEST_P sweep):
// the properties crash consistency leans on, model-checked against a
// reference map over long random op sequences.
//
//   * value coherence: lookup always returns the most recently inserted data;
//   * capacity: live entries never exceed capacity;
//   * dirty-line conservation: a dirty line is never silently dropped — it
//     is either still in the buffer (dirty or cleaned by the caller) or was
//     handed back as an eviction victim carrying its latest data. Losing a
//     dirty line would lose committed-epoch data at persist time.
#include "pax/device/hbm_cache.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "pax/common/rng.hpp"
#include "test_util.hpp"

namespace pax::device {
namespace {

using testing::patterned_line;

struct HbmParam {
  std::size_t capacity;
  unsigned ways;
  bool prefer_durable;
  std::uint64_t seed;
};

class HbmProperty : public ::testing::TestWithParam<HbmParam> {};

TEST_P(HbmProperty, RandomOpsPreserveInvariants) {
  const HbmParam param = GetParam();
  HbmConfig cfg;
  cfg.capacity_lines = param.capacity;
  cfg.ways = param.ways;
  cfg.prefer_durable_eviction = param.prefer_durable;
  HbmCache cache(cfg);

  Xoshiro256 rng(param.seed);

  // Reference state: everything the cache must still answer for.
  struct Ref {
    LineData data;
    bool dirty;
  };
  std::unordered_map<LineIndex, Ref> resident;  // mirror of cache contents
  std::uint64_t durable_watermark = 0;
  std::uint64_t next_record_end = 1;

  for (int op = 0; op < 20000; ++op) {
    const LineIndex line{rng.next_below(param.capacity * 4)};
    const double dice = rng.next_double();

    if (dice < 0.55) {
      // Insert/update, dirty or clean.
      const bool dirty = rng.next_bool(0.5);
      const LineData data = patterned_line(rng.next());
      const std::uint64_t record_end = dirty ? next_record_end++ : 0;
      auto victim =
          cache.insert(line, data, dirty, record_end, durable_watermark);
      if (victim) {
        auto it = resident.find(victim->line);
        ASSERT_NE(it, resident.end()) << "evicted a line we never inserted";
        // Dirty-line conservation: the victim carries its latest data.
        ASSERT_EQ(victim->dirty, it->second.dirty);
        if (victim->dirty) {
          ASSERT_EQ(victim->data, it->second.data)
              << "evicted dirty line lost its newest data";
        }
        resident.erase(it);
      }
      auto& ref = resident[line];
      ref.data = data;
      ref.dirty = dirty || (ref.dirty && resident.contains(line));
      // insert() ORs dirtiness on update; recompute precisely:
      if (auto found = cache.lookup(line)) {
        ref.dirty = cache.is_dirty(line);
        ASSERT_EQ(*found, data);
      } else {
        FAIL() << "line vanished immediately after insert";
      }
    } else if (dice < 0.75) {
      // Lookup must agree with the reference.
      auto found = cache.lookup(line);
      auto it = resident.find(line);
      if (it == resident.end()) {
        ASSERT_FALSE(found.has_value());
      } else {
        ASSERT_TRUE(found.has_value());
        ASSERT_EQ(*found, it->second.data);
      }
    } else if (dice < 0.85) {
      cache.mark_clean(line);
      if (auto it = resident.find(line); it != resident.end()) {
        it->second.dirty = false;
      }
      ASSERT_FALSE(cache.is_dirty(line));
    } else if (dice < 0.92) {
      // Advance the durable watermark (the log flushed).
      durable_watermark = next_record_end;
    } else {
      cache.remove(line);
      resident.erase(line);
      ASSERT_FALSE(cache.lookup(line).has_value());
    }

    ASSERT_LE(cache.size(), cache.capacity());
    ASSERT_EQ(cache.size(), resident.size());
  }

  // Final audit: every reference entry is still present with its data, and
  // the dirty sets agree exactly.
  std::size_t dirty_in_cache = 0;
  cache.for_each_dirty([&](LineIndex line, const LineData& data,
                           std::uint64_t) {
    auto it = resident.find(line);
    ASSERT_NE(it, resident.end());
    ASSERT_TRUE(it->second.dirty);
    ASSERT_EQ(data, it->second.data);
    ++dirty_in_cache;
  });
  std::size_t dirty_in_ref = 0;
  for (const auto& [line, ref] : resident) dirty_in_ref += ref.dirty ? 1 : 0;
  ASSERT_EQ(dirty_in_cache, dirty_in_ref);
}

std::vector<HbmParam> hbm_params() {
  std::vector<HbmParam> params;
  std::uint64_t seed = 1000;
  for (std::size_t capacity : {16u, 64u, 256u}) {
    for (unsigned ways : {2u, 4u, 16u}) {
      if (ways > capacity) continue;
      for (bool durable : {true, false}) {
        params.push_back({capacity, ways, durable, ++seed});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Configs, HbmProperty,
                         ::testing::ValuesIn(hbm_params()),
                         [](const auto& param_info) {
                           const HbmParam& p = param_info.param;
                           return "cap" + std::to_string(p.capacity) + "w" +
                                  std::to_string(p.ways) +
                                  (p.prefer_durable ? "_durable" : "_lru");
                         });

}  // namespace
}  // namespace pax::device
