// Corruption fuzzing of the .paxevt deserializer: truncated, bit-flipped,
// and version-skewed buffers must be rejected with a Status (never UB), and
// a clean round trip must replay to verdicts identical to the online
// checker's — the artifact a crash exploration leaves behind has to be
// trustworthy post-mortem evidence.
#include "pax/check/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "pax/check/checker.hpp"
#include "pax/common/crc.hpp"
#include "pax/common/rng.hpp"
#include "pax/pmem/pmem_device.hpp"
#include "pax/pmem/pool.hpp"
#include "test_util.hpp"

namespace pax::check {
namespace {

// A short mixed workload with one seeded persist-order bug (a line stored
// but never flushed, present at commit), recorded by the online checker.
std::vector<Event> recorded_buggy_stream(Report* online_report) {
  auto tp = testing::TestPool::create();
  CheckerOptions options;
  options.record_events = true;
  Checker checker(options);
  tp.device->set_checker(&checker);

  tp.device->store_line(tp.data_line(3), testing::patterned_line(1));
  tp.device->store_line(tp.data_line(7), testing::patterned_line(2));
  tp.device->flush_line(tp.data_line(7));
  tp.device->drain();
  tp.pool.commit_epoch(1);  // line 3 was never flushed -> violation
  tp.device->store_line(tp.data_line(9), testing::patterned_line(3));
  tp.device->flush_line(tp.data_line(9));
  tp.device->drain();
  tp.pool.commit_epoch(2);

  *online_report = checker.report();
  auto events = checker.recorded_events();
  tp.device->set_checker(nullptr);
  return events;
}

TEST(PaxevtRoundTrip, ReplayVerdictsMatchOnlineChecker) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  ASSERT_FALSE(online.clean());
  ASSERT_FALSE(events.empty());

  const std::vector<std::byte> encoded = encode_trace(events);
  auto decoded = decode_trace(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].seq, events[i].seq) << "event " << i;
    EXPECT_EQ(decoded.value()[i].type, events[i].type) << "event " << i;
    EXPECT_EQ(decoded.value()[i].line, events[i].line) << "event " << i;
  }

  Checker offline;
  const Report replayed = offline.replay(decoded.value());
  ASSERT_EQ(replayed.violations.size(), online.violations.size());
  for (std::size_t i = 0; i < online.violations.size(); ++i) {
    EXPECT_EQ(replayed.violations[i].rule, online.violations[i].rule);
    EXPECT_EQ(replayed.violations[i].line, online.violations[i].line);
  }
  EXPECT_EQ(replayed.diagnostics.redundant_flushes,
            online.diagnostics.redundant_flushes);
}

TEST(PaxevtRoundTrip, FileRoundTripThroughDisk) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  const std::string path =
      ::testing::TempDir() + "/paxevt_roundtrip.paxevt";
  ASSERT_TRUE(write_trace(path, events).is_ok());
  auto reread = read_trace(path);
  ASSERT_TRUE(reread.ok()) << reread.status().to_string();
  Checker offline;
  EXPECT_EQ(offline.replay(reread.value()).violations.size(),
            online.violations.size());
  std::remove(path.c_str());
}

TEST(PaxevtFuzz, EveryTruncationIsRejectedCleanly) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  const std::vector<std::byte> encoded = encode_trace(events);
  // Every strict prefix must fail: either the header is short, the size
  // no longer matches the count, or the payload CRC breaks.
  for (std::size_t len = 0; len < encoded.size();
       len += 1 + len / 7) {  // dense near 0, sparser later
    auto decoded =
        decode_trace(std::span<const std::byte>(encoded.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
  }
}

class PaxevtBitFlip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxevtBitFlip, FlippedBytesNeverYieldAcceptedDifferingStream) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  const std::vector<std::byte> pristine = encode_trace(events);

  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 64; ++round) {
    std::vector<std::byte> corrupt = pristine;
    const std::uint64_t flips = 1 + rng.next_below(8);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(corrupt.size());
      corrupt[at] ^= static_cast<std::byte>(1 + rng.next_below(255));
    }
    auto decoded = decode_trace(corrupt);
    if (!decoded.ok()) continue;  // rejected, as it should be
    // Accepted means the flips cancelled back to the original bytes; the
    // CRCs make silently-different accepted streams unreachable.
    ASSERT_EQ(corrupt, pristine);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxevtBitFlip,
                         ::testing::Values(1u, 2u, 3u, 0xdeadu, 0xbeefu));

TEST(PaxevtFuzz, VersionSkewIsRejectedWithClearMessage) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  std::vector<std::byte> skewed = encode_trace(events);
  // Bump the version and re-seal the header CRC so ONLY the version check
  // can reject it — a future-format file must fail parse-proof, not
  // CRC-coincidentally.
  const std::uint32_t future = kTraceVersion + 1;
  std::memcpy(skewed.data() + 8, &future, sizeof(future));
  const std::uint32_t reseal = crc32c(skewed.data(), 28);
  std::memcpy(skewed.data() + 28, &reseal, sizeof(reseal));
  auto decoded = decode_trace(skewed);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().to_string().find("version"), std::string::npos)
      << decoded.status().to_string();
}

TEST(PaxevtFuzz, UnknownEventTypeIsRejected) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  std::vector<std::byte> bad = encode_trace(events);
  // Corrupt record 0's type to an out-of-range value and re-seal the
  // payload CRC; the per-record validation must still reject it.
  bad[kTraceHeaderSize + 32] = std::byte{0xff};
  const std::uint32_t reseal = crc32c(
      bad.data() + kTraceHeaderSize, bad.size() - kTraceHeaderSize);
  std::memcpy(bad.data() + 24, &reseal, sizeof(reseal));
  const std::uint32_t hseal = crc32c(bad.data(), 28);
  std::memcpy(bad.data() + 28, &hseal, sizeof(hseal));
  auto decoded = decode_trace(bad);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().to_string().find("type"), std::string::npos);
}

TEST(PaxevtFuzz, MissingFileIsAnIoError) {
  auto missing = read_trace("/nonexistent/paxevt/path.paxevt");
  ASSERT_FALSE(missing.ok());
}

}  // namespace
}  // namespace pax::check
