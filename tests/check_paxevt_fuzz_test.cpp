// Corruption fuzzing of the .paxevt deserializer: truncated, bit-flipped,
// and version-skewed buffers must be rejected with a Status (never UB), and
// a clean round trip must replay to verdicts identical to the online
// checker's — the artifact a crash exploration leaves behind has to be
// trustworthy post-mortem evidence.
#include "pax/check/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "pax/check/checker.hpp"
#include "pax/common/crc.hpp"
#include "pax/common/rng.hpp"
#include "pax/pmem/pmem_device.hpp"
#include "pax/pmem/pool.hpp"
#include "test_util.hpp"

namespace pax::check {
namespace {

// A short mixed workload with one seeded persist-order bug (a line stored
// but never flushed, present at commit), recorded by the online checker.
std::vector<Event> recorded_buggy_stream(Report* online_report) {
  auto tp = testing::TestPool::create();
  CheckerOptions options;
  options.record_events = true;
  Checker checker(options);
  tp.device->set_checker(&checker);

  tp.device->store_line(tp.data_line(3), testing::patterned_line(1));
  tp.device->store_line(tp.data_line(7), testing::patterned_line(2));
  tp.device->flush_line(tp.data_line(7));
  tp.device->drain();
  tp.pool.commit_epoch(1);  // line 3 was never flushed -> violation
  tp.device->store_line(tp.data_line(9), testing::patterned_line(3));
  tp.device->flush_line(tp.data_line(9));
  tp.device->drain();
  tp.pool.commit_epoch(2);

  *online_report = checker.report();
  auto events = checker.recorded_events();
  tp.device->set_checker(nullptr);
  return events;
}

TEST(PaxevtRoundTrip, ReplayVerdictsMatchOnlineChecker) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  ASSERT_FALSE(online.clean());
  ASSERT_FALSE(events.empty());

  const std::vector<std::byte> encoded = encode_trace(events);
  auto decoded = decode_trace(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].seq, events[i].seq) << "event " << i;
    EXPECT_EQ(decoded.value()[i].type, events[i].type) << "event " << i;
    EXPECT_EQ(decoded.value()[i].line, events[i].line) << "event " << i;
  }

  Checker offline;
  const Report replayed = offline.replay(decoded.value());
  ASSERT_EQ(replayed.violations.size(), online.violations.size());
  for (std::size_t i = 0; i < online.violations.size(); ++i) {
    EXPECT_EQ(replayed.violations[i].rule, online.violations[i].rule);
    EXPECT_EQ(replayed.violations[i].line, online.violations[i].line);
  }
  EXPECT_EQ(replayed.diagnostics.redundant_flushes,
            online.diagnostics.redundant_flushes);
}

TEST(PaxevtRoundTrip, FileRoundTripThroughDisk) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  const std::string path =
      ::testing::TempDir() + "/paxevt_roundtrip.paxevt";
  ASSERT_TRUE(write_trace(path, events).is_ok());
  auto reread = read_trace(path);
  ASSERT_TRUE(reread.ok()) << reread.status().to_string();
  Checker offline;
  EXPECT_EQ(offline.replay(reread.value()).violations.size(),
            online.violations.size());
  std::remove(path.c_str());
}

TEST(PaxevtFuzz, EveryTruncationIsRejectedCleanly) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  const std::vector<std::byte> encoded = encode_trace(events);
  // Every strict prefix must fail: either the header is short, the size
  // no longer matches the count, or the payload CRC breaks.
  for (std::size_t len = 0; len < encoded.size();
       len += 1 + len / 7) {  // dense near 0, sparser later
    auto decoded =
        decode_trace(std::span<const std::byte>(encoded.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
  }
}

class PaxevtBitFlip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxevtBitFlip, FlippedBytesNeverYieldAcceptedDifferingStream) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  const std::vector<std::byte> pristine = encode_trace(events);

  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 64; ++round) {
    std::vector<std::byte> corrupt = pristine;
    const std::uint64_t flips = 1 + rng.next_below(8);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(corrupt.size());
      corrupt[at] ^= static_cast<std::byte>(1 + rng.next_below(255));
    }
    auto decoded = decode_trace(corrupt);
    if (!decoded.ok()) continue;  // rejected, as it should be
    // Accepted means the flips cancelled back to the original bytes; the
    // CRCs make silently-different accepted streams unreachable.
    ASSERT_EQ(corrupt, pristine);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxevtBitFlip,
                         ::testing::Values(1u, 2u, 3u, 0xdeadu, 0xbeefu));

TEST(PaxevtFuzz, VersionSkewIsRejectedWithClearMessage) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  std::vector<std::byte> skewed = encode_trace(events);
  // Bump the version and re-seal the header CRC so ONLY the version check
  // can reject it — a future-format file must fail parse-proof, not
  // CRC-coincidentally.
  const std::uint32_t future = kTraceVersion + 1;
  std::memcpy(skewed.data() + 8, &future, sizeof(future));
  const std::uint32_t reseal = crc32c(skewed.data(), 28);
  std::memcpy(skewed.data() + 28, &reseal, sizeof(reseal));
  auto decoded = decode_trace(skewed);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().to_string().find("version"), std::string::npos)
      << decoded.status().to_string();
}

TEST(PaxevtFuzz, UnknownEventTypeIsRejected) {
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  std::vector<std::byte> bad = encode_trace(events);
  // Corrupt record 0's type to an out-of-range value and re-seal the
  // payload CRC; the per-record validation must still reject it.
  bad[kTraceHeaderSize + 32] = std::byte{0xff};
  const std::uint32_t reseal = crc32c(
      bad.data() + kTraceHeaderSize, bad.size() - kTraceHeaderSize);
  std::memcpy(bad.data() + 24, &reseal, sizeof(reseal));
  const std::uint32_t hseal = crc32c(bad.data(), 28);
  std::memcpy(bad.data() + 28, &hseal, sizeof(hseal));
  auto decoded = decode_trace(bad);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().to_string().find("type"), std::string::npos);
}

TEST(PaxevtFuzz, MissingFileIsAnIoError) {
  auto missing = read_trace("/nonexistent/paxevt/path.paxevt");
  ASSERT_FALSE(missing.ok());
}

// --- v1 ↔ v2 format compatibility ---------------------------------------

// Rewrites the version field of an encoded trace and re-seals the header
// CRC, leaving the records untouched — a byte-faithful stand-in for a file
// written by the previous release.
std::vector<std::byte> with_version(std::vector<std::byte> buf,
                                    std::uint32_t version) {
  std::memcpy(buf.data() + 8, &version, sizeof(version));
  const std::uint32_t reseal = crc32c(buf.data(), 28);
  std::memcpy(buf.data() + 28, &reseal, sizeof(reseal));
  return buf;
}

// Events exercising everything v2 added: fork/join brackets and the
// gate-observed write-back flag, interleaved with v1-era types.
std::vector<Event> v2_feature_stream() {
  std::vector<Event> events;
  std::uint64_t seq = 0;
  auto push = [&](EventType type, std::uint64_t line, std::uint64_t a,
                  std::uint64_t b, std::uint8_t flags, std::uint16_t tid) {
    Event e;
    e.seq = ++seq;
    e.line = line;
    e.a = a;
    e.b = b;
    e.type = type;
    e.flags = flags;
    e.tid = tid;
    events.push_back(e);
  };
  push(EventType::kLogAppend, 5, 4096, 96, 0, 0);
  push(EventType::kLogFlush, kNoLine, 4096, 96, 0, 0);
  push(EventType::kTaskDispatch, kNoLine, 42, 0, 0, 0);
  push(EventType::kTaskBegin, kNoLine, 42, 0, 0, 1);
  push(EventType::kWriteback, 5, 4096, 96, kFlagGateObserved, 1);
  push(EventType::kTaskEnd, kNoLine, 42, 0, 0, 1);
  push(EventType::kTaskJoin, kNoLine, 42, 0, 0, 0);
  push(EventType::kEpochCommit, kNoLine, 1, 0, 0, 0);
  return events;
}

TEST(PaxevtVersioning, WriterEmitsCurrentVersion) {
  const std::vector<std::byte> buf = encode_trace(v2_feature_stream());
  auto trace = decode_trace_versioned(buf);
  ASSERT_TRUE(trace.ok()) << trace.status().to_string();
  EXPECT_EQ(trace.value().version, kTraceVersion);
  EXPECT_EQ(kTraceVersion, 2u);
}

TEST(PaxevtVersioning, V2RoundTripPreservesTaskAndGateRecords) {
  const std::vector<Event> events = v2_feature_stream();
  auto trace = decode_trace_versioned(encode_trace(events));
  ASSERT_TRUE(trace.ok()) << trace.status().to_string();
  ASSERT_EQ(trace.value().events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(trace.value().events[i].type, events[i].type) << "event " << i;
    EXPECT_EQ(trace.value().events[i].flags, events[i].flags)
        << "event " << i;
    EXPECT_EQ(trace.value().events[i].a, events[i].a) << "event " << i;
  }
}

TEST(PaxevtVersioning, V1FileDecodesByteForByte) {
  // A stream of v1-era event types only, stamped version 1: exactly what a
  // pre-v2 writer produced (the record layout never changed).
  Report online;
  const std::vector<Event> events = recorded_buggy_stream(&online);
  const std::vector<std::byte> v1 = with_version(encode_trace(events), 1);
  auto trace = decode_trace_versioned(v1);
  ASSERT_TRUE(trace.ok()) << trace.status().to_string();
  EXPECT_EQ(trace.value().version, 1u);
  ASSERT_EQ(trace.value().events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(trace.value().events[i].seq, events[i].seq);
    EXPECT_EQ(trace.value().events[i].type, events[i].type);
    EXPECT_EQ(trace.value().events[i].line, events[i].line);
  }
  // The unversioned reader accepts it too.
  EXPECT_TRUE(decode_trace(v1).ok());
}

TEST(PaxevtVersioning, V1RejectsV2EventTypes) {
  // A v1 file cannot contain fork/join records: a version-1 header over a
  // stream with kTaskDispatch must fail the per-record type check, not
  // silently misdecode.
  const std::vector<std::byte> skewed =
      with_version(encode_trace(v2_feature_stream()), 1);
  auto trace = decode_trace_versioned(skewed);
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.status().to_string().find("type"), std::string::npos)
      << trace.status().to_string();
}

TEST(PaxevtFuzz, V2TruncationsAndBitFlipsRejectedCleanly) {
  // The corruption sweeps above run on a v1-era stream; repeat both over
  // the new record material (task brackets, gate flags).
  const std::vector<std::byte> pristine = encode_trace(v2_feature_stream());
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    EXPECT_FALSE(
        decode_trace(std::span<const std::byte>(pristine.data(), len)).ok())
        << "prefix of " << len << " bytes accepted";
  }
  Xoshiro256 rng(0x5eedu);
  for (int round = 0; round < 128; ++round) {
    std::vector<std::byte> corrupt = pristine;
    const std::uint64_t flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      corrupt[rng.next_below(corrupt.size())] ^=
          static_cast<std::byte>(1 + rng.next_below(255));
    }
    auto decoded = decode_trace(corrupt);
    if (!decoded.ok()) continue;
    ASSERT_EQ(corrupt, pristine);
  }
}

}  // namespace
}  // namespace pax::check
