#include "pax/pmem/pmem_device.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>

#include "test_util.hpp"

namespace pax::pmem {
namespace {

using testing::patterned_line;

TEST(PmemDeviceTest, StoreIsVisibleToLoadBeforeFlush) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  const std::uint64_t v = 0x1122334455667788ULL;
  dev->store_u64(128, v);
  EXPECT_EQ(dev->load_u64(128), v);  // CPU sees its own stores
  EXPECT_EQ(dev->pending_line_count(), 1u);
}

TEST(PmemDeviceTest, UnflushedStoreIsLostOnCrash) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  dev->store_u64(128, 42);
  dev->crash(CrashConfig::drop_all());
  EXPECT_EQ(dev->load_u64(128), 0u);
  EXPECT_EQ(dev->pending_line_count(), 0u);
}

TEST(PmemDeviceTest, FlushedStoreSurvivesCrash) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  dev->store_u64(128, 42);
  dev->flush_line(LineIndex::containing(128));
  dev->drain();
  dev->crash(CrashConfig::drop_all());
  EXPECT_EQ(dev->load_u64(128), 42u);
}

TEST(PmemDeviceTest, AtomicDurableStoreSurvivesCrash) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  dev->atomic_durable_store_u64(64, 7);
  dev->crash(CrashConfig::drop_all());
  EXPECT_EQ(dev->load_u64(64), 7u);
}

TEST(PmemDeviceTest, StoreSpanningLinesDirtiesBothLines) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  std::array<std::byte, 16> data{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i + 1);
  }
  dev->store(kCacheLineSize - 8, data);  // straddles lines 0 and 1
  EXPECT_EQ(dev->pending_line_count(), 2u);

  std::array<std::byte, 16> out{};
  dev->load(kCacheLineSize - 8, out);
  EXPECT_EQ(out, data);
}

TEST(PmemDeviceTest, PartialFlushOfSpanningStore) {
  // Flushing only one of two dirtied lines persists only that line's half:
  // this is the torn-record hazard the log CRCs defend against.
  auto dev = PmemDevice::create_in_memory(1 << 16);
  std::array<std::byte, 16> data{};
  data.fill(std::byte{0xee});
  dev->store(kCacheLineSize - 8, data);
  dev->flush_line(LineIndex{0});
  dev->drain();
  dev->crash(CrashConfig::drop_all());

  std::array<std::byte, 16> out{};
  dev->load(kCacheLineSize - 8, out);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], std::byte{0xee});
  for (std::size_t i = 8; i < 16; ++i) EXPECT_EQ(out[i], std::byte{0});
}

TEST(PmemDeviceTest, FlushRangeCoversAllTouchedLines) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  std::vector<std::byte> big(5 * kCacheLineSize, std::byte{0xab});
  dev->store(32, big);  // not line-aligned: touches 6 lines
  EXPECT_EQ(dev->pending_line_count(), 6u);
  dev->flush_range(32, big.size());
  dev->drain();
  EXPECT_EQ(dev->pending_line_count(), 0u);
  dev->crash(CrashConfig::drop_all());
  std::vector<std::byte> out(big.size());
  dev->load(32, out);
  EXPECT_EQ(out, big);
}

TEST(PmemDeviceTest, CrashWithFullSurvivalKeepsEverything) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  dev->store_line(LineIndex{3}, patterned_line(3));
  dev->store_line(LineIndex{4}, patterned_line(4));
  dev->crash(CrashConfig::random(1.0, /*seed=*/9));
  EXPECT_EQ(dev->durable_line(LineIndex{3}), patterned_line(3));
  EXPECT_EQ(dev->durable_line(LineIndex{4}), patterned_line(4));
}

TEST(PmemDeviceTest, CrashWithPartialSurvivalIsSeedDeterministic) {
  auto make = [] {
    auto dev = PmemDevice::create_in_memory(1 << 16);
    for (std::uint64_t i = 0; i < 64; ++i) {
      dev->store_line(LineIndex{i}, patterned_line(i));
    }
    return dev;
  };
  auto a = make();
  auto b = make();
  a->crash(CrashConfig::random(0.5, 77));
  b->crash(CrashConfig::random(0.5, 77));
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a->durable_line(LineIndex{i}), b->durable_line(LineIndex{i}));
  }
}

// Regression: the crash lottery draws from a per-line RNG stream, so the
// outcome for a line depends only on (seed, line) — not on the order the
// lines entered the pending overlay or the order shards are drained in.
TEST(PmemDeviceTest, CrashLotteryIsStoreOrderIndependent) {
  for (const CrashConfig& config :
       {CrashConfig::random(0.5, 909), CrashConfig::torn(0.5, 909)}) {
    auto ascending = PmemDevice::create_in_memory(1 << 16);
    auto descending = PmemDevice::create_in_memory(1 << 16);
    for (std::uint64_t i = 0; i < 64; ++i) {
      ascending->store_line(LineIndex{i}, patterned_line(i));
      descending->store_line(LineIndex{63 - i}, patterned_line(63 - i));
    }
    ascending->crash(config);
    descending->crash(config);
    for (std::uint64_t i = 0; i < 64; ++i) {
      EXPECT_EQ(ascending->durable_line(LineIndex{i}),
                descending->durable_line(LineIndex{i}))
          << "line " << i << (config.tear_within_lines ? " torn" : " random");
    }
  }
}

// A captured crash cut resolved under a config must equal what crash()
// itself would have produced at the same instant with the same config —
// they share the lottery.
TEST(PmemDeviceTest, CrashCutResolvesIdenticallyToCrash) {
  const auto run_ops = [](PmemDevice& dev) {
    for (std::uint64_t i = 0; i < 32; ++i) {
      dev.store_line(LineIndex{i}, patterned_line(i + 100));
      if (i % 3 == 0) dev.flush_line(LineIndex{i});
    }
    dev.drain();
  };
  auto reference = PmemDevice::create_in_memory(1 << 16);
  run_ops(*reference);
  const std::uint64_t total = reference->crash_events();
  const CrashConfig config = CrashConfig::torn(0.5, 4242);
  reference->crash(config);

  auto armed = PmemDevice::create_in_memory(1 << 16);
  armed->arm_crash_point(total);
  run_ops(*armed);
  auto cut = armed->take_crash_cut();
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->after_events, total);
  auto resolved = PmemDevice::create_in_memory_from(cut->resolve(config));
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(resolved->durable_line(LineIndex{i}),
              reference->durable_line(LineIndex{i}))
        << "line " << i;
  }
}

TEST(PmemDeviceTest, ArmedCrashPointIsOneShot) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  dev->arm_crash_point(2);
  dev->store_line(LineIndex{1}, patterned_line(1));  // event 1
  EXPECT_FALSE(dev->take_crash_cut().has_value());
  dev->store_line(LineIndex{2}, patterned_line(2));  // event 2: capture
  dev->store_line(LineIndex{3}, patterned_line(3));  // past the cut
  auto cut = dev->take_crash_cut();
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->after_events, 2u);
  EXPECT_EQ(cut->pending.size(), 2u);  // lines 1 and 2 only
  EXPECT_FALSE(dev->take_crash_cut().has_value());  // taken exactly once
}

TEST(PmemDeviceTest, TornCrashTearsAtWordGranularity) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  LineData ones;
  ones.bytes.fill(std::byte{0xff});
  dev->store_line(LineIndex{5}, ones);
  dev->crash(CrashConfig::torn(1.0, /*seed=*/123));

  // Each 8-byte word is either all-0xff (persisted) or all-zero (lost).
  LineData after = dev->durable_line(LineIndex{5});
  for (std::size_t w = 0; w < kCacheLineSize; w += 8) {
    bool all_ff = true;
    bool all_zero = true;
    for (std::size_t i = 0; i < 8; ++i) {
      if (after.bytes[w + i] != std::byte{0xff}) all_ff = false;
      if (after.bytes[w + i] != std::byte{0}) all_zero = false;
    }
    EXPECT_TRUE(all_ff || all_zero) << "word " << w << " not 8B-atomic";
  }
}

TEST(PmemDeviceTest, StatsCountOperations) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  dev->store_u64(0, 1);
  dev->store_u64(8, 2);
  dev->flush_line(LineIndex{0});
  dev->flush_line(LineIndex{1});  // nothing pending there
  dev->drain();
  auto s = dev->stats();
  EXPECT_EQ(s.stores, 2u);
  EXPECT_EQ(s.bytes_stored, 16u);
  EXPECT_EQ(s.line_flushes, 1u);
  EXPECT_EQ(s.empty_flushes, 1u);
  EXPECT_EQ(s.drains, 1u);
  EXPECT_EQ(s.media_bytes_written, kCacheLineSize);
}

TEST(PmemDeviceTest, FileBackedMediaPersistsAcrossReopen) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pax_dev_test.pool").string();
  std::filesystem::remove(path);
  {
    auto dev = PmemDevice::open_file(path, 1 << 16, /*create=*/true);
    ASSERT_TRUE(dev.ok()) << dev.status().to_string();
    dev.value()->store_u64(256, 0xabcdef);
    dev.value()->flush_line(LineIndex::containing(256));
    dev.value()->drain();
  }
  {
    auto dev = PmemDevice::open_file(path, 1 << 16, /*create=*/false);
    ASSERT_TRUE(dev.ok());
    EXPECT_EQ(dev.value()->load_u64(256), 0xabcdefu);
  }
  std::filesystem::remove(path);
}

TEST(PmemDeviceTest, OpenMissingFileFails) {
  auto dev = PmemDevice::open_file("/nonexistent-dir/x.pool", 1 << 16, false);
  EXPECT_FALSE(dev.ok());
  EXPECT_EQ(dev.status().code(), StatusCode::kIoError);
}

TEST(PmemDeviceTest, XpLineSequentialFlushesCombine) {
  // Four adjacent 64 B flushes inside one drain window touch ONE 256 B
  // internal block: write amplification 1x (the sequential case of [33]).
  auto dev = PmemDevice::create_in_memory(1 << 16);
  for (std::uint64_t l = 0; l < 4; ++l) {
    dev->store_line(LineIndex{l}, patterned_line(l));
    dev->flush_line(LineIndex{l});
  }
  dev->drain();
  EXPECT_EQ(dev->stats().xpline_blocks_written, 1u);
  EXPECT_EQ(dev->stats().media_bytes_written, 4 * kCacheLineSize);
}

TEST(PmemDeviceTest, XpLineRandomFlushesAmplify) {
  // Four scattered 64 B flushes touch four 256 B blocks: 4x internal write
  // amplification.
  auto dev = PmemDevice::create_in_memory(1 << 16);
  for (std::uint64_t l : {0ull, 16ull, 32ull, 48ull}) {  // 1 KiB apart
    dev->store_line(LineIndex{l}, patterned_line(l));
    dev->flush_line(LineIndex{l});
  }
  dev->drain();
  EXPECT_EQ(dev->stats().xpline_blocks_written, 4u);
  const double amplification =
      double(dev->stats().xpline_blocks_written * 256) /
      double(dev->stats().media_bytes_written);
  EXPECT_DOUBLE_EQ(amplification, 4.0);
}

TEST(PmemDeviceTest, XpLineWindowClosesAtDrain) {
  // The same block flushed in two separate drain windows counts twice
  // (the XPBuffer does not combine across fences).
  auto dev = PmemDevice::create_in_memory(1 << 16);
  dev->store_line(LineIndex{0}, patterned_line(1));
  dev->flush_line(LineIndex{0});
  dev->drain();
  dev->store_line(LineIndex{1}, patterned_line(2));  // same 256 B block
  dev->flush_line(LineIndex{1});
  dev->drain();
  EXPECT_EQ(dev->stats().xpline_blocks_written, 2u);
}

TEST(PmemDeviceDeathTest, MisalignedU64StoreAborts) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  EXPECT_DEATH(dev->store_u64(4, 1), "8-byte aligned");
}

TEST(PmemDeviceDeathTest, OutOfBoundsStoreAborts) {
  auto dev = PmemDevice::create_in_memory(1 << 16);
  std::array<std::byte, 16> data{};
  EXPECT_DEATH(dev->store((1 << 16) - 8, data), "PAX_CHECK");
}

}  // namespace
}  // namespace pax::pmem
