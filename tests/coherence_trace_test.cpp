// Trace capture / persistence / replay tests.
#include "pax/coherence/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "pax/coherence/host_cache.hpp"
#include "pax/common/rng.hpp"
#include "test_util.hpp"

namespace pax::coherence {
namespace {

using testing::TestPool;

std::vector<CxlEvent> sample_events() {
  return {
      {CxlOp::kRdShared, LineIndex{100}, false},
      {CxlOp::kGo, LineIndex{100}, true},
      {CxlOp::kRdOwn, LineIndex{101}, false},
      {CxlOp::kGo, LineIndex{101}, true},
      {CxlOp::kDirtyEvict, LineIndex{101}, true},
      {CxlOp::kSnpData, LineIndex{101}, true},
      {CxlOp::kCleanEvict, LineIndex{100}, false},
  };
}

TEST(TraceFileTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/pax_trace_test.trace";
  auto events = sample_events();
  ASSERT_TRUE(save_trace(path, events).is_ok());

  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].op, events[i].op) << i;
    EXPECT_EQ(loaded.value()[i].line, events[i].line) << i;
    EXPECT_EQ(loaded.value()[i].carried_data, events[i].carried_data) << i;
  }
  std::remove(path.c_str());
}

TEST(TraceFileTest, EmptyTraceRoundTrips) {
  const std::string path = "/tmp/pax_trace_empty.trace";
  ASSERT_TRUE(save_trace(path, {}).is_ok());
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
  std::remove(path.c_str());
}

TEST(TraceFileTest, CorruptionDetected) {
  const std::string path = "/tmp/pax_trace_corrupt.trace";
  ASSERT_TRUE(save_trace(path, sample_events()).is_ok());
  // Flip a byte in the event area.
  FILE* f = std::fopen(path.c_str(), "r+b");
  std::fseek(f, 40, SEEK_SET);
  std::fputc(0xFF, f);
  std::fclose(f);
  auto loaded = load_trace(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceFileTest, MissingFileFails) {
  EXPECT_FALSE(load_trace("/tmp/definitely_not_a_trace_file.xyz").ok());
}

TEST(TraceSummaryTest, CountsByOpcode) {
  auto s = summarize_trace(sample_events());
  EXPECT_EQ(s.total, 7u);
  EXPECT_EQ(s.rd_shared, 1u);
  EXPECT_EQ(s.rd_own, 1u);
  EXPECT_EQ(s.dirty_evicts, 1u);
  EXPECT_EQ(s.clean_evicts, 1u);
  EXPECT_EQ(s.snoops, 1u);
  EXPECT_EQ(s.distinct_lines, 2u);
}

TEST(TraceReplayTest, RecordedWorkloadDrivesDeviceEquivalently) {
  // Record a workload live, then replay the trace against a fresh device:
  // the device-side message counts must match the live run's.
  TestPool live = TestPool::create(8 << 20, 1 << 20);
  std::vector<CxlEvent> trace;
  device::DeviceStats live_stats;
  {
    device::PaxDevice dev(&live.pool, device::DeviceConfig::defaults());
    HostCacheConfig cfg;
    cfg.record_trace = true;
    cfg.l1 = {2048, 2};
    cfg.l2 = {4096, 2};
    cfg.llc = {16 * 1024, 4};  // small: evictions appear in the trace
    HostCacheSim host(&dev, cfg);
    Xoshiro256 rng(5);
    for (int i = 0; i < 5000; ++i) {
      const PoolOffset at =
          live.pool.data_offset() + rng.next_below(1024) * kCacheLineSize;
      if (rng.next_bool(0.5)) {
        ASSERT_TRUE(host.store_u64(at, rng.next()).is_ok());
      } else {
        host.load_u64(at);
      }
    }
    host.flush_and_invalidate_all();
    ASSERT_TRUE(dev.persist(host.pull_fn()).ok());
    trace = host.trace();
    live_stats = dev.stats();
  }

  TestPool replayed = TestPool::create(8 << 20, 1 << 20);
  device::PaxDevice dev(&replayed.pool, device::DeviceConfig::defaults());
  auto report = replay_trace(trace, &dev);
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  const auto rs = dev.stats();
  // Write-side traffic replays exactly.
  EXPECT_EQ(rs.write_intents, live_stats.write_intents);
  EXPECT_EQ(rs.host_writebacks, live_stats.host_writebacks);
  // Read-side is approximate: the data an RdOwn carries back is part of its
  // GO completion, not a separate traced message, so the replay's read
  // count is a lower bound of the live run's.
  EXPECT_GT(rs.read_reqs, 0u);
  EXPECT_LE(rs.read_reqs, live_stats.read_reqs);
  EXPECT_GT(report.value().messages_skipped, 0u);  // GO/snoops skipped
}

TEST(TraceReplayTest, PersistEveryInsertsEpochs) {
  TestPool tp = TestPool::create(8 << 20, 1 << 20);
  device::PaxDevice dev(&tp.pool, device::DeviceConfig::defaults());

  std::vector<CxlEvent> trace;
  const std::uint64_t first = tp.pool.data_offset() / kCacheLineSize;
  for (std::uint64_t i = 0; i < 100; ++i) {
    trace.push_back({CxlOp::kRdOwn, LineIndex{first + i}, false});
    trace.push_back({CxlOp::kDirtyEvict, LineIndex{first + i}, true});
  }
  ReplayOptions opts;
  opts.persist_every = 50;
  auto report = replay_trace(trace, &dev, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().persists, 5u);  // 200/50 + final
  EXPECT_EQ(tp.pool.committed_epoch(), 5u);
}

}  // namespace
}  // namespace pax::coherence
