// Concurrent-dispatch equivalence torture (runs under TSan in CI): each
// litmus shape executes with *free-running* threads — one per core, racing
// through the domain's thread-safe dispatch entry points with no imposed
// schedule — and every observed outcome must lie inside the enumerated
// serialized (= sequentially consistent) outcome set. This is the
// linearizability claim of the per-address ordering point: a racy run may
// land on any SC interleaving, but never outside the set. TSan checks the
// locking that makes it true; the membership check catches protocol-level
// escapes TSan cannot see (a stale fill is not a data race).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pax/device/pax_device.hpp"
#include "pax/litmus/runner.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::litmus {
namespace {

class LitmusTortureTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LitmusTortureTest, RacingOutcomesStayInsideTheSerializedSet) {
  const Shape* shape = find_shape(GetParam());
  ASSERT_NE(shape, nullptr);
  const std::vector<std::string> allowed_sorted = sc_outcome_set(*shape);
  const std::set<std::string> allowed(allowed_sorted.begin(),
                                      allowed_sorted.end());

  constexpr int kIterations = 48;
  for (int iter = 0; iter < kIterations; ++iter) {
    auto pm = pmem::PmemDevice::create_in_memory(kLitmusDeviceBytes);
    auto pool = pmem::PmemPool::create(pm.get(), kLitmusLogBytes);
    ASSERT_TRUE(pool.ok()) << pool.status().to_string();
    device::DeviceConfig config;
    config.persist_workers = 1;
    device::PaxDevice dev(&pool.value(), config);
    coherence::CoherenceDomain domain(&dev, litmus_cache_config(),
                                      shape->core_count());
    const auto offsets = var_offsets(*shape, pool.value());

    std::vector<std::uint64_t> regs(shape->regs, 0);
    std::atomic<unsigned> start{0};
    std::vector<std::thread> threads;
    threads.reserve(shape->core_count());
    for (unsigned c = 0; c < shape->core_count(); ++c) {
      threads.emplace_back([&, c] {
        // Rendezvous so the per-core programs actually race.
        start.fetch_add(1, std::memory_order_acq_rel);
        while (start.load(std::memory_order_acquire) <
               shape->core_count()) {
        }
        for (const Op& op : shape->cores[c]) {
          if (op.kind == OpKind::kStore) {
            ASSERT_TRUE(
                domain.store_u64(c, offsets[op.var], op.value).is_ok());
          } else {
            // Each register has exactly one writer thread; joined below
            // before anyone reads.
            regs[op.reg] = domain.load_u64(c, offsets[op.var]);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    // Quiesced: commit through the all-core pull, then simulate power loss
    // and read the finals back — the same observation protocol the
    // serialized harness uses.
    ASSERT_TRUE(domain.persist(&dev).ok());
    domain.drop_all_without_writeback();
    Outcome outcome;
    outcome.regs = regs;
    outcome.finals.resize(shape->vars);
    for (unsigned v = 0; v < shape->vars; ++v) {
      outcome.finals[v] = domain.load_u64(0, offsets[v]);
    }

    EXPECT_TRUE(allowed.count(outcome.to_string()))
        << shape->name << " iteration " << iter
        << " escaped the SC outcome set: " << outcome.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LitmusTortureTest,
                         ::testing::Values("SB", "LB", "MP", "IRIW",
                                           "2+2W"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '+') ch = 'p';
                           }
                           return name;
                         });

}  // namespace
}  // namespace pax::litmus
