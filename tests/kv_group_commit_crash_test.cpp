// Crash consistency of cross-shard epoch group commit (the PaxKV store).
//
// A deterministic multi-shard workload commits W waves through
// EpochGroupCommit::commit_wave(). During the run we record, after every
// wave, each shard's full contents and the armed device's event counter.
// Then, CrashExplorer-style, a consistent cut is captured mid-run on one
// shard (arm_crash_point) and the store is re-attached on the post-crash
// image. The contract:
//
//   * Per-shard epoch cut: the recovered shard equals EXACTLY one of the
//     recorded wave snapshots — never a torn state between waves.
//   * No acked wave lost: every wave whose commit_wave() returned before
//     the cut's event count is recovered (durable acks survive).
//   * Shards crashed after the final wave recover the final wave — no
//     shard ends up ahead of or behind the group's committed cut.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pax/kv/store.hpp"
#include "pax/pmem/pmem_device.hpp"

namespace pax::kv {
namespace {

constexpr std::size_t kShards = 3;
constexpr std::size_t kWaves = 12;
constexpr std::size_t kOpsPerWave = 30;

KvStoreOptions crash_options() {
  KvStoreOptions options;
  options.shards = kShards;
  options.shard_pool_bytes = 8 << 20;
  options.map_shards = 4;
  options.runtime.log_size = 1 << 20;  // leave room for data in 8 MiB
  // Fixed per-shard vPM bases (KvStore strides this hint by shard): the
  // reincarnated post-crash device must map where the original did or the
  // recovered map's interior pointers dangle. TSan builds must stay in
  // TSan's low app range (see vpm_region.cpp), clear of the library's own
  // sequential hints at 0x0040'0000'0000.
#if defined(__SANITIZE_THREAD__)
#define PAX_KV_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PAX_KV_TEST_UNDER_TSAN 1
#endif
#endif
#ifdef PAX_KV_TEST_UNDER_TSAN
  options.runtime.vpm_base_hint = 0x0050'0000'0000ULL;
#else
  options.runtime.vpm_base_hint = 0x7d00'0000'0000ULL;
#endif
  return options;
}

using ShardContents = std::map<std::string, std::string>;

ShardContents contents(const KvStore& store, std::size_t shard) {
  ShardContents out;
  for (auto& [k, v] : store.dump_shard(shard)) out.emplace(k, v);
  return out;
}

// The deterministic workload: wave w writes keys "w<w>-k<i>" (uniform over
// all shards via the store's FNV slicing) and rewrites a rolling window of
// earlier keys, with a deletion sprinkled in, then issues one group wave.
struct WaveRecord {
  std::vector<ShardContents> shard_contents;  // [shard]
  std::uint64_t armed_device_events = 0;
};

std::string wave_key(std::size_t wave, std::size_t i) {
  return "w" + std::to_string(wave) + "-k" + std::to_string(i);
}

std::vector<WaveRecord> run_workload(KvStore& store,
                                     const pmem::PmemDevice& armed) {
  std::vector<WaveRecord> records;
  for (std::size_t w = 0; w < kWaves; ++w) {
    for (std::size_t i = 0; i < kOpsPerWave; ++i) {
      store.put(wave_key(w, i),
                "v" + std::to_string(w * 1000 + i));
      if (w > 0 && i % 5 == 0) {
        store.put(wave_key(w - 1, i), "rewritten-by-w" + std::to_string(w));
      }
      if (w > 1 && i % 11 == 0) {
        store.erase(wave_key(w - 2, i));
      }
    }
    auto wave = store.group().commit_wave();
    if (!wave.ok()) std::abort();

    WaveRecord rec;
    for (std::size_t s = 0; s < kShards; ++s) {
      rec.shard_contents.push_back(contents(store, s));
    }
    rec.armed_device_events = armed.crash_events();
    records.push_back(std::move(rec));
  }
  return records;
}

struct Fixture {
  std::vector<std::unique_ptr<pmem::PmemDevice>> devices;
  std::vector<pmem::PmemDevice*> ptrs;

  Fixture() {
    for (std::size_t s = 0; s < kShards; ++s) {
      devices.push_back(
          pmem::PmemDevice::create_in_memory(crash_options()
                                                 .shard_pool_bytes));
      ptrs.push_back(devices.back().get());
    }
  }
};

// Which recorded wave a recovered shard matches; -1 when none (empty
// pre-first-wave state maps to -1 too, reported via `empty_ok`).
int match_wave(const ShardContents& got,
               const std::vector<WaveRecord>& records, std::size_t shard) {
  for (std::size_t w = records.size(); w-- > 0;) {
    if (records[w].shard_contents[shard] == got) return static_cast<int>(w);
  }
  return -1;
}

TEST(KvGroupCommitCrash, FullCrashAfterFinalWaveRecoversFinalWave) {
  Fixture fx;
  std::vector<WaveRecord> records;
  {
    auto store = KvStore::attach(fx.ptrs, crash_options());
    ASSERT_TRUE(store.ok()) << store.status().to_string();
    records = run_workload(*store.value(), *fx.ptrs[0]);
  }
  for (auto& dev : fx.devices) dev->crash(pmem::CrashConfig::drop_all());

  auto recovered = KvStore::attach(fx.ptrs, crash_options());
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_TRUE(recovered.value()->recovered(s)) << s;
    EXPECT_EQ(contents(*recovered.value(), s),
              records.back().shard_contents[s])
        << "shard " << s << " did not recover the final wave";
  }
}

TEST(KvGroupCommitCrash, MidRunCutLandsOnAWaveBoundary) {
  // Probe run: learn the armed shard's total event count.
  std::uint64_t total_events = 0;
  {
    Fixture probe;
    auto store = KvStore::attach(probe.ptrs, crash_options());
    ASSERT_TRUE(store.ok());
    run_workload(*store.value(), *probe.ptrs[0]);
    total_events = probe.ptrs[0]->crash_events();
  }
  ASSERT_GT(total_events, 0u);

  // Sweep sampled crash points across the armed shard's event timeline.
  for (const double frac : {0.05, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    const auto point =
        static_cast<std::uint64_t>(static_cast<double>(total_events) * frac);
    Fixture fx;
    fx.ptrs[0]->arm_crash_point(point);

    std::vector<WaveRecord> records;
    {
      auto store = KvStore::attach(fx.ptrs, crash_options());
      ASSERT_TRUE(store.ok());
      records = run_workload(*store.value(), *fx.ptrs[0]);
    }
    auto cut = fx.ptrs[0]->take_crash_cut();
    if (!cut.has_value()) continue;  // point beyond this run's events

    // Shard 0 reincarnates from the mid-run cut; shards 1..N-1 crash at
    // end of run (their committed state is the final wave).
    auto shard0 = pmem::PmemDevice::create_in_memory_from(
        cut->resolve(pmem::CrashConfig::drop_all()));
    std::vector<pmem::PmemDevice*> ptrs = fx.ptrs;
    ptrs[0] = shard0.get();
    for (std::size_t s = 1; s < kShards; ++s) {
      fx.ptrs[s]->crash(pmem::CrashConfig::drop_all());
    }

    auto recovered = KvStore::attach(ptrs, crash_options());
    ASSERT_TRUE(recovered.ok())
        << "point " << point << ": " << recovered.status().to_string();

    // (1) Consistent per-shard cut: the recovered state IS some wave.
    const ShardContents got = contents(*recovered.value(), 0);
    const int wave = match_wave(got, records, 0);
    if (wave < 0) {
      // Only the pre-first-wave (empty) state is also a legal cut.
      EXPECT_TRUE(got.empty())
          << "point " << point
          << ": shard 0 recovered a state matching no committed wave";
    }

    // (2) No acked wave lost: every wave whose commit returned before the
    // cut must have survived on the armed shard.
    int last_acked_before_cut = -1;
    for (std::size_t w = 0; w < records.size(); ++w) {
      if (records[w].armed_device_events <= cut->after_events) {
        last_acked_before_cut = static_cast<int>(w);
      }
    }
    EXPECT_GE(wave, last_acked_before_cut)
        << "point " << point << ": wave " << last_acked_before_cut
        << " was acknowledged durable but shard 0 recovered wave " << wave;

    // (3) The unarmed shards recover the group's final committed wave.
    for (std::size_t s = 1; s < kShards; ++s) {
      EXPECT_EQ(contents(*recovered.value(), s),
                records.back().shard_contents[s])
          << "point " << point << ", shard " << s;
    }
  }
}

}  // namespace
}  // namespace pax::kv
