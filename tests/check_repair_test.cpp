// The detection-to-repair loop end to end: record a seeded scenario, show
// the online checker stays silent (or not), derive a RepairPlan from the
// PaxScope findings, and prove under exhaustive crash-point exploration
// that applying the plan through the device shim flips the verdict clean.
#include "pax/check/repair.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "pax/check/analyze.hpp"
#include "pax/check/checker.hpp"

namespace pax::check {
namespace {

CrashExplorerOptions fast_options() {
  // drop_all alone is the decisive mode for ordering bugs and keeps the
  // exploration deterministic and quick; every crash point is enumerated.
  CrashExplorerOptions options;
  options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
  return options;
}

AnalysisReport analyze_scenario(const RepairScenario& scenario) {
  auto events = record_scenario_trace(scenario);
  EXPECT_TRUE(events.ok()) << events.status().to_string();
  TraceAnalyzer analyzer;
  EXPECT_TRUE(analyzer.add_trace(events.value()).is_ok());
  return analyzer.finish();
}

TEST(PaxScopeRepair, UndoFlushBugIsOnlineSilentButRepairable) {
  auto scenario = seeded_repair_scenario("undo-flush");
  ASSERT_TRUE(scenario.ok()) << scenario.status().to_string();

  // 1. The online checker sees nothing wrong with the observed order.
  auto events = record_scenario_trace(scenario.value());
  ASSERT_TRUE(events.ok()) << events.status().to_string();
  Checker checker;
  EXPECT_TRUE(checker.replay(events.value()).clean());

  // 2. PaxScope predicts the window from happens-before alone.
  TraceAnalyzer analyzer;
  ASSERT_TRUE(analyzer.add_trace(events.value()).is_ok());
  const AnalysisReport report = analyzer.finish();
  ASSERT_GE(report.count(FindingKind::kUndoFlushWindow), 1u)
      << report.to_string();

  // 3. The advisor turns the findings into hoist actions only.
  const RepairPlan plan = advise_repairs(report);
  ASSERT_FALSE(plan.empty());
  for (const RepairAction& a : plan.actions) {
    EXPECT_EQ(a.kind, RepairActionKind::kHoistLogFlush) << a.to_string();
    EXPECT_GT(a.log_end, 0u);
  }

  // 4. Exhaustive exploration: broken without the shim, clean with it.
  auto validation =
      validate_repair(scenario.value(), plan, fast_options());
  ASSERT_TRUE(validation.ok()) << validation.status().to_string();
  EXPECT_FALSE(validation.value().before.clean())
      << "seeded bug must be crash-visible";
  EXPECT_TRUE(validation.value().after.clean())
      << validation.value().to_string();
  EXPECT_TRUE(validation.value().flipped_clean());
  EXPECT_GT(validation.value().activations, 0u);
}

TEST(PaxScopeRepair, MissingFlushBugRepairedByInsertedFlush) {
  auto scenario = seeded_repair_scenario("missing-flush");
  ASSERT_TRUE(scenario.ok()) << scenario.status().to_string();

  const AnalysisReport report = analyze_scenario(scenario.value());
  ASSERT_GE(report.count(FindingKind::kCommitWindow), 1u)
      << report.to_string();

  const RepairPlan plan = advise_repairs(report);
  ASSERT_FALSE(plan.empty());
  bool has_insert = false;
  for (const RepairAction& a : plan.actions) {
    has_insert |= a.kind == RepairActionKind::kInsertFlushBeforeCommit;
  }
  EXPECT_TRUE(has_insert) << plan.to_string();

  auto validation =
      validate_repair(scenario.value(), plan, fast_options());
  ASSERT_TRUE(validation.ok()) << validation.status().to_string();
  EXPECT_TRUE(validation.value().flipped_clean())
      << validation.value().to_string();
}

TEST(PaxScopeRepair, CleanTwinsExploreCleanWithoutRepair) {
  for (const char* name : {"undo-flush", "missing-flush"}) {
    auto scenario = seeded_repair_scenario(name, /*buggy=*/false);
    ASSERT_TRUE(scenario.ok()) << name;

    // Nothing to find, nothing to fix: the advisor yields an empty plan,
    // and raw exploration is already clean.
    const AnalysisReport report = analyze_scenario(scenario.value());
    EXPECT_TRUE(report.clean()) << name << ": " << report.to_string();
    EXPECT_TRUE(advise_repairs(report).empty()) << name;

    CrashExplorer explorer(scenario.value().device_bytes,
                           scenario.value().workload, fast_options());
    auto result = explorer.explore();
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().to_string();
    EXPECT_TRUE(result.value().clean())
        << name << ": " << result.value().to_string();
  }
}

TEST(PaxScopeRepair, AdvisorDeduplicatesAcrossEpochs) {
  // The undo-flush scenario repeats the same (line, log_end) pattern every
  // epoch because the log resets after each commit; the plan must collapse
  // them to one hoist per line rather than one per occurrence.
  auto scenario = seeded_repair_scenario("undo-flush");
  ASSERT_TRUE(scenario.ok());
  const AnalysisReport report = analyze_scenario(scenario.value());
  const RepairPlan plan = advise_repairs(report);
  std::vector<std::uint64_t> lines;
  for (const RepairAction& a : plan.actions) {
    EXPECT_TRUE(std::find(lines.begin(), lines.end(), a.line) == lines.end())
        << "duplicate hoist for line " << a.line;
    lines.push_back(a.line);
  }
}

TEST(PaxScopeRepair, UnknownScenarioIsNotFound) {
  auto scenario = seeded_repair_scenario("no-such-scenario");
  EXPECT_FALSE(scenario.ok());
}

TEST(PaxScopeRepair, PlanRendersToTextAndJson) {
  auto scenario = seeded_repair_scenario("undo-flush");
  ASSERT_TRUE(scenario.ok());
  const RepairPlan plan = advise_repairs(analyze_scenario(scenario.value()));
  ASSERT_FALSE(plan.empty());
  EXPECT_NE(plan.to_string().find("hoist-log-flush"), std::string::npos);
  const std::string json = plan.to_json();
  EXPECT_NE(json.find("\"kind\":\"hoist-log-flush\""), std::string::npos);
}

}  // namespace
}  // namespace pax::check
