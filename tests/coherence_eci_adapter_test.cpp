// Tests of the ECI→CXL adapter (§4): message translation, the 128 B → 64 B
// block split, filtering, the no-data RC2D upgrade, and end-to-end crash
// consistency when the device is driven entirely through ECI messages.
#include "pax/coherence/eci_adapter.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "pax/device/recovery.hpp"
#include "test_util.hpp"

namespace pax::coherence {
namespace {

using testing::TestPool;

struct EciFixture : ::testing::Test {
  TestPool tp = TestPool::create(4 << 20, 256 * 1024);
  device::PaxDevice dev{&tp.pool, device::DeviceConfig::defaults()};
  EciAdapter adapter{&dev};

  EciBlockIndex block(std::uint64_t i) const {
    // Block index within the pool; data extent start must be 128B-aligned.
    return EciBlockIndex{tp.pool.data_offset() / kEciBlockSize + i};
  }

  EciBlockData pattern(std::uint64_t tag) const {
    EciBlockData d;
    for (std::size_t i = 0; i < kEciBlockSize; ++i) {
      d.bytes[i] = static_cast<std::byte>((tag * 17 + i) & 0xff);
    }
    return d;
  }
};

TEST_F(EciFixture, RlddReadsBothLinesOfTheBlock) {
  // Seed PM with distinct line contents.
  tp.device->store_line(block(0).first_line(), testing::patterned_line(1));
  tp.device->store_line(LineIndex{block(0).first_line().value + 1},
                        testing::patterned_line(2));

  auto resp = adapter.handle({EciOp::kRldd, block(0), std::nullopt});
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp.value().data.has_value());
  EXPECT_EQ(std::memcmp(resp.value().data->bytes.data(),
                        testing::patterned_line(1).bytes.data(),
                        kCacheLineSize),
            0);
  EXPECT_EQ(std::memcmp(resp.value().data->bytes.data() + kCacheLineSize,
                        testing::patterned_line(2).bytes.data(),
                        kCacheLineSize),
            0);
  EXPECT_EQ(adapter.stats().cxl_reads, 2u);  // the 128→64 split
  EXPECT_EQ(dev.stats().first_touch_logs, 0u);  // loads log nothing
}

TEST_F(EciFixture, RldxLogsBothLines) {
  auto resp = adapter.handle({EciOp::kRldx, block(3), std::nullopt});
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().data.has_value());
  EXPECT_EQ(dev.stats().first_touch_logs, 2u);
  EXPECT_EQ(adapter.stats().cxl_write_intents, 2u);
}

TEST_F(EciFixture, Rc2dLogsWithoutTouchingData) {
  // Put a known value in the device path first (block read, remote holds
  // it shared), then upgrade: the device view must be unchanged.
  tp.device->store_line(block(1).first_line(), testing::patterned_line(7));
  ASSERT_TRUE(adapter.handle({EciOp::kRldd, block(1), std::nullopt}).ok());

  auto resp = adapter.handle({EciOp::kRc2d, block(1), std::nullopt});
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.value().data.has_value());  // no data travels
  EXPECT_EQ(dev.stats().first_touch_logs, 2u);
  EXPECT_EQ(dev.peek_line(block(1).first_line()), testing::patterned_line(7));
}

TEST_F(EciFixture, VicdSplitsWritebackAcrossLines) {
  ASSERT_TRUE(adapter.handle({EciOp::kRldx, block(2), std::nullopt}).ok());
  auto data = pattern(9);
  ASSERT_TRUE(adapter.handle({EciOp::kVicd, block(2), data}).ok());
  EXPECT_EQ(adapter.stats().cxl_writebacks, 2u);

  // Device view reflects both halves.
  const LineData first = dev.peek_line(block(2).first_line());
  EXPECT_EQ(std::memcmp(first.bytes.data(), data.bytes.data(),
                        kCacheLineSize),
            0);
}

TEST_F(EciFixture, VicdWithoutDataRejected) {
  auto resp = adapter.handle({EciOp::kVicd, block(0), std::nullopt});
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EciFixture, CleanVictimsAreFiltered) {
  auto vicc = adapter.handle({EciOp::kVicc, block(0), std::nullopt});
  auto vics = adapter.handle({EciOp::kVics, block(0), std::nullopt});
  ASSERT_TRUE(vicc.ok());
  ASSERT_TRUE(vics.ok());
  EXPECT_TRUE(vicc.value().filtered);
  EXPECT_TRUE(vics.value().filtered);
  EXPECT_EQ(adapter.stats().filtered, 2u);
  EXPECT_EQ(dev.stats().write_intents, 0u);  // nothing reached the device
}

TEST_F(EciFixture, EndToEndCrashConsistencyThroughEci) {
  // Epoch 1 through ECI messages only.
  ASSERT_TRUE(adapter.handle({EciOp::kRldx, block(0), std::nullopt}).ok());
  ASSERT_TRUE(adapter.handle({EciOp::kVicd, block(0), pattern(1)}).ok());
  ASSERT_TRUE(dev.persist(nullptr).ok());

  // Epoch 2: upgrade and re-dirty, never persisted.
  ASSERT_TRUE(adapter.handle({EciOp::kRc2d, block(0), std::nullopt}).ok());
  ASSERT_TRUE(adapter.handle({EciOp::kVicd, block(0), pattern(2)}).ok());
  dev.tick(/*force_flush=*/true);  // push epoch-2 data toward PM

  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  EXPECT_EQ(pool.committed_epoch(), 1u);

  const LineData recovered = tp.device->durable_line(block(0).first_line());
  EXPECT_EQ(std::memcmp(recovered.bytes.data(), pattern(1).bytes.data(),
                        kCacheLineSize),
            0);
}

}  // namespace
}  // namespace pax::coherence
