// Batched device frontend: sync_lines (fused write_intent + writeback_line
// with grouped undo logging), peek_lines, and read_committed_lines must be
// observationally identical to the per-line calls they amortize.
#include "pax/device/pax_device.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace pax::device {
namespace {

using testing::patterned_line;
using testing::TestPool;

struct BatchedSyncFixture : ::testing::Test {
  TestPool tp = TestPool::create();

  DeviceConfig config(unsigned stripes = 8) {
    DeviceConfig c;
    c.hbm.capacity_lines = 256;
    c.hbm.ways = 4;
    c.stripes = stripes;
    return c;
  }
};

TEST_F(BatchedSyncFixture, SyncLinesMatchesPerLineCalls) {
  // Drive the same 40-line update set through the per-line path and the
  // batched path on twin devices; stats and persisted bytes must agree.
  TestPool tp2 = TestPool::create();
  PaxDevice per_line(&tp.pool, config());
  PaxDevice batched(&tp2.pool, config());

  std::vector<LineUpdate> updates;
  for (std::uint64_t i = 0; i < 40; ++i) {
    updates.push_back({tp.data_line(i * 3), patterned_line(i)});
  }

  for (const auto& u : updates) {
    ASSERT_TRUE(per_line.write_intent(u.line).is_ok());
    per_line.writeback_line(u.line, u.data);
  }
  ASSERT_TRUE(batched.sync_lines(updates).is_ok());

  const DeviceStats a = per_line.stats();
  const DeviceStats b = batched.stats();
  EXPECT_EQ(a.write_intents, b.write_intents);
  EXPECT_EQ(a.first_touch_logs, b.first_touch_logs);
  EXPECT_EQ(a.host_writebacks, b.host_writebacks);
  EXPECT_EQ(per_line.epoch_logged_lines(), batched.epoch_logged_lines());
  EXPECT_EQ(b.batch_syncs, 1u);
  EXPECT_EQ(b.batch_synced_lines, 40u);
  // 8 stripes touched → at most 8 log-mutex holds, vs one per line before.
  EXPECT_LE(b.log_append_acquisitions, 8u);
  EXPECT_EQ(batched.log_stats().records, 40u);

  ASSERT_TRUE(per_line.persist(nullptr).ok());
  ASSERT_TRUE(batched.persist(nullptr).ok());
  for (const auto& u : updates) {
    EXPECT_EQ(tp.device->durable_line(u.line), u.data);
    EXPECT_EQ(tp2.device->durable_line(u.line), u.data);
  }
}

TEST_F(BatchedSyncFixture, SecondTouchInLaterBatchIsNotRelogged) {
  PaxDevice dev(&tp.pool, config());
  std::vector<LineUpdate> first = {{tp.data_line(0), patterned_line(1)},
                                   {tp.data_line(1), patterned_line(2)}};
  std::vector<LineUpdate> second = {{tp.data_line(0), patterned_line(3)},
                                    {tp.data_line(9), patterned_line(4)}};
  ASSERT_TRUE(dev.sync_lines(first).is_ok());
  ASSERT_TRUE(dev.sync_lines(second).is_ok());
  EXPECT_EQ(dev.stats().write_intents, 4u);
  EXPECT_EQ(dev.stats().first_touch_logs, 3u);  // line 0 logged once

  // The undo pre-image of line 0 is its epoch-boundary value, so recovery
  // semantics match the per-line path: persist, mutate, read committed.
  ASSERT_TRUE(dev.persist(nullptr).ok());
  std::vector<LineUpdate> third = {{tp.data_line(0), patterned_line(7)}};
  ASSERT_TRUE(dev.sync_lines(third).is_ok());
  EXPECT_EQ(dev.read_committed_line(tp.data_line(0)), patterned_line(3));
}

TEST_F(BatchedSyncFixture, PeekLinesMatchesPeekLine) {
  PaxDevice dev(&tp.pool, config());
  std::vector<LineUpdate> updates;
  for (std::uint64_t i = 0; i < 24; ++i) {
    updates.push_back({tp.data_line(i), patterned_line(100 + i)});
  }
  ASSERT_TRUE(dev.sync_lines(updates).is_ok());

  std::vector<LineIndex> lines;
  for (std::uint64_t i = 0; i < 32; ++i) lines.push_back(tp.data_line(i));
  std::vector<LineData> out(lines.size());
  dev.peek_lines(lines, out);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(out[i], dev.peek_line(lines[i])) << "line " << i;
  }
}

TEST_F(BatchedSyncFixture, ReadCommittedLinesMatchesPerLineReads) {
  PaxDevice dev(&tp.pool, config());
  std::vector<LineUpdate> epoch1;
  for (std::uint64_t i = 0; i < 16; ++i) {
    epoch1.push_back({tp.data_line(i), patterned_line(i)});
  }
  ASSERT_TRUE(dev.sync_lines(epoch1).is_ok());
  ASSERT_TRUE(dev.persist(nullptr).ok());

  // Mutate half the range in the new epoch; committed views must still show
  // epoch 1 everywhere.
  std::vector<LineUpdate> epoch2;
  for (std::uint64_t i = 0; i < 16; i += 2) {
    epoch2.push_back({tp.data_line(i), patterned_line(1000 + i)});
  }
  ASSERT_TRUE(dev.sync_lines(epoch2).is_ok());

  std::vector<LineData> out(16);
  dev.read_committed_lines(tp.data_line(0), out);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i], patterned_line(i)) << "line " << i;
    EXPECT_EQ(out[i], dev.read_committed_line(tp.data_line(i)));
  }
}

TEST_F(BatchedSyncFixture, LogExhaustionFailsTheBatch) {
  // A tiny log: the batch must surface kOutOfSpace, like write_intent does.
  TestPool small = TestPool::create(1 << 20, /*log_bytes=*/4096);
  PaxDevice dev(&small.pool, config(/*stripes=*/1));
  std::vector<LineUpdate> updates;
  for (std::uint64_t i = 0; i < 200; ++i) {
    updates.push_back({small.data_line(i), patterned_line(i)});
  }
  Status s = dev.sync_lines(updates);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfSpace);
}

TEST_F(BatchedSyncFixture, EmptyBatchIsANoOp) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.sync_lines({}).is_ok());
  EXPECT_EQ(dev.stats().write_intents, 0u);
  EXPECT_EQ(dev.stats().batch_synced_lines, 0u);
}

}  // namespace
}  // namespace pax::device
