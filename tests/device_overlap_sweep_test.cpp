// Exhaustive crash-point sweep of the §6 overlap protocol — the analogue of
// CrashSweepTest for seal_epoch/commit_sealed interleavings, which have the
// subtlest invariants in the codebase (two live epochs, banked logs, newer
// values reaching PM under the sealed commit).
//
// A deterministic schedule interleaves: writes to a small line set, ticks,
// seals, concurrent next-epoch writes to overlapping lines, and sealed
// commits. The schedule is replayed and crashed after EVERY step; recovery
// must always land exactly on the newest epoch whose commit-cell write
// completed, with every line holding that epoch's value.
#include <gtest/gtest.h>

#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "test_util.hpp"

namespace pax::device {
namespace {

using testing::patterned_line;
using testing::TestPool;

constexpr std::uint64_t kLines = 6;
constexpr std::uint64_t kRounds = 8;

struct Oracle {
  std::vector<std::array<std::uint64_t, kLines>> snapshots;  // per epoch
  std::uint64_t total_steps = 0;
};

// One round: write lines {r, r+1, r+2} (mod kLines) with round-tagged
// values, tick, seal, write lines {r, r+3} again in the next epoch (overlap
// on line r), tick, commit the sealed epoch.
Oracle run_schedule(TestPool& tp, std::uint64_t stop_after) {
  DeviceConfig cfg;
  cfg.hbm.capacity_lines = 4;  // pressure
  cfg.hbm.ways = 4;
  cfg.log_flush_batch_bytes = 64;
  PaxDevice dev(&tp.pool, cfg);

  Oracle oracle;
  std::array<std::uint64_t, kLines> current{};
  // Epoch e's snapshot = value of all lines when epoch e committed.
  // snapshots[0] = zeros (epoch 0).
  oracle.snapshots.push_back(current);

  // Values carried by the epoch accumulating right now and the sealed one.
  std::array<std::uint64_t, kLines> at_seal{};

  std::uint64_t steps = 0;
  auto step = [&]() { return ++steps > stop_after; };
  bool sealed = false;

  auto write = [&](std::uint64_t l, std::uint64_t tag) {
    if (!dev.write_intent(tp.data_line(l)).is_ok()) std::abort();
    dev.writeback_line(tp.data_line(l), patterned_line(tag));
    current[l] = tag;
  };

  for (std::uint64_t r = 0; r < kRounds; ++r) {
    // --- epoch A: three writes ---
    for (std::uint64_t k = 0; k < 3; ++k) {
      write((r + k) % kLines, 1000 + r * 10 + k);
      if (step()) return oracle;
    }
    dev.tick();
    if (step()) return oracle;

    // --- seal epoch A ---
    if (!dev.seal_epoch(nullptr).ok()) std::abort();
    sealed = true;
    at_seal = current;
    if (step()) return oracle;

    // --- epoch B writes while A pends (overlapping line r) ---
    write(r % kLines, 2000 + r * 10);
    if (step()) return oracle;
    write((r + 3) % kLines, 2000 + r * 10 + 3);
    if (step()) return oracle;
    dev.tick(/*force_flush=*/true);
    if (step()) return oracle;

    // --- commit the sealed epoch A ---
    if (!dev.commit_sealed().ok()) std::abort();
    sealed = false;
    oracle.snapshots.push_back(at_seal);
    if (step()) return oracle;

    // --- commit epoch B synchronously ---
    if (!dev.persist(nullptr).ok()) std::abort();
    oracle.snapshots.push_back(current);
    if (step()) return oracle;
  }
  (void)sealed;
  oracle.total_steps = steps;
  return oracle;
}

TEST(OverlapCrashSweep, EveryCrashPointRecoversACommittedSnapshot) {
  const std::uint64_t total = [] {
    auto tp = TestPool::create(1 << 20, 128 * 1024);
    return run_schedule(tp, UINT64_MAX).total_steps;
  }();
  ASSERT_GT(total, 50u);

  for (std::uint64_t crash_at = 0; crash_at <= total; ++crash_at) {
    auto tp = TestPool::create(1 << 20, 128 * 1024);
    Oracle oracle = run_schedule(tp, crash_at);

    tp.device->crash(pmem::CrashConfig::random(0.5, crash_at * 17 + 3));

    auto pool = pmem::PmemPool::open(tp.device.get());
    ASSERT_TRUE(pool.ok()) << "crash_at=" << crash_at;
    auto report = recover_pool(pool.value());
    ASSERT_TRUE(report.ok())
        << "crash_at=" << crash_at << ": " << report.status().to_string();

    const Epoch recovered = report.value().recovered_epoch;
    ASSERT_LT(recovered, oracle.snapshots.size()) << "crash_at=" << crash_at;
    // The recovered epoch must be at least the newest the oracle saw commit
    // (the schedule stops right after commit steps, so equality holds).
    ASSERT_GE(recovered + 1, oracle.snapshots.size())
        << "crash_at=" << crash_at << " lost a committed epoch";

    const auto& snapshot = oracle.snapshots[recovered];
    for (std::uint64_t l = 0; l < kLines; ++l) {
      const LineData expect =
          snapshot[l] == 0 ? LineData{} : patterned_line(snapshot[l]);
      ASSERT_EQ(tp.device->durable_line(tp.data_line(l)), expect)
          << "crash_at=" << crash_at << " line=" << l
          << " epoch=" << recovered;
    }
  }
}

}  // namespace
}  // namespace pax::device
