// Tests for the virtual-time substrate: clocks and bandwidth resources.
#include <gtest/gtest.h>

#include "pax/simtime/bandwidth.hpp"
#include "pax/simtime/clock.hpp"
#include "pax/simtime/latency.hpp"

namespace pax::simtime {
namespace {

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.advance_to(50);  // no-op: already past
  EXPECT_EQ(clock.now(), 100u);
  clock.advance_to(200);
  EXPECT_EQ(clock.now(), 200u);
}

TEST(SimClockTest, ToNanosRounds) {
  EXPECT_EQ(to_nanos(1.4), 1u);
  EXPECT_EQ(to_nanos(1.6), 2u);
  EXPECT_EQ(to_nanos(0.0), 0u);
}

TEST(BandwidthTest, ServiceTimeMatchesBandwidth) {
  BandwidthResource bw(1e9);  // 1 GB/s = 1 B/ns
  EXPECT_EQ(bw.request(0, 1000), 1000u);
  EXPECT_EQ(bw.total_bytes(), 1000u);
}

TEST(BandwidthTest, BackToBackRequestsQueue) {
  BandwidthResource bw(1e9);
  EXPECT_EQ(bw.request(0, 1000), 1000u);
  // Issued at t=500 but the channel is busy until 1000.
  EXPECT_EQ(bw.request(500, 1000), 2000u);
}

TEST(BandwidthTest, IdleGapsAreNotCarried) {
  BandwidthResource bw(1e9);
  EXPECT_EQ(bw.request(0, 100), 100u);
  // Long idle gap: next request starts at its own arrival time.
  EXPECT_EQ(bw.request(10000, 100), 10100u);
}

TEST(BandwidthTest, ChannelsDivideServiceTime) {
  BandwidthResource bw(1e9, /*channels=*/4);
  EXPECT_EQ(bw.request(0, 1000), 250u);
}

TEST(BandwidthTest, SaturationThroughputMatchesRate) {
  // Closed-loop hammering: completions must arrive at exactly the rate.
  BandwidthResource bw(10e9);  // 10 B/ns
  SimNanos t = 0;
  constexpr std::uint64_t kRequests = 10000;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    t = bw.request(t, 640);
  }
  const double achieved_bps =
      double(bw.total_bytes()) * 1e9 / double(t);
  EXPECT_NEAR(achieved_bps, 10e9, 10e9 * 0.01);
}

TEST(BandwidthTest, ResetClearsState) {
  BandwidthResource bw(1e9);
  bw.request(0, 1000);
  bw.reset();
  EXPECT_EQ(bw.next_free(), 0u);
  EXPECT_EQ(bw.total_bytes(), 0u);
  EXPECT_EQ(bw.total_requests(), 0u);
}

TEST(LatencyPresetsTest, OrderingMatchesPhysics) {
  const auto lat = MemoryLatency::c6420();
  EXPECT_LT(lat.l1_ns, lat.l2_ns);
  EXPECT_LT(lat.l2_ns, lat.llc_ns);
  EXPECT_LT(lat.llc_ns, lat.dram_ns);
  EXPECT_LT(lat.dram_ns, lat.pm_read_ns);

  // Interposition costs in paper order: none < CXL < Enzian < trap.
  EXPECT_EQ(InterconnectLatency::none().round_trip_ns, 0.0);
  EXPECT_LT(InterconnectLatency::cxl().round_trip_ns,
            InterconnectLatency::enzian().round_trip_ns);
  EXPECT_LT(InterconnectLatency::enzian().round_trip_ns,
            InterconnectLatency::page_fault_trap().round_trip_ns);
}

TEST(LatencyPresetsTest, BandwidthSpecMatchesSources) {
  const auto bw = BandwidthSpec::paper();
  // Optane per-socket asymmetry [33]: reads ~3x writes.
  EXPECT_GT(bw.pm_read_bps / bw.pm_write_bps, 2.0);
  EXPECT_GT(bw.dram_bps, bw.pm_read_bps);
}

}  // namespace
}  // namespace pax::simtime
