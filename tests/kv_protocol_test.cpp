// PaxKV wire protocol: encode/decode round trips, incremental parsing,
// framing validation, and the latency histogram's quantile accuracy.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "pax/kv/histogram.hpp"
#include "pax/kv/protocol.hpp"

namespace pax::kv {
namespace {

std::vector<std::byte> encode_request(OpCode op, std::string_view key,
                                      std::string_view value = {}) {
  std::vector<std::byte> out;
  append_request(out, op, key, value);
  return out;
}

TEST(KvProtocol, RequestRoundTrip) {
  auto bytes = encode_request(OpCode::kPut, "hello", "world");
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  auto req = parser.next_request();
  ASSERT_TRUE(req.ok()) << req.status().to_string();
  ASSERT_TRUE(req.value().has_value());
  EXPECT_EQ(req.value()->op, OpCode::kPut);
  EXPECT_EQ(req.value()->key, "hello");
  EXPECT_EQ(req.value()->value, "world");
  EXPECT_EQ(parser.buffered(), 0u);

  auto more = parser.next_request();
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value().has_value());
}

TEST(KvProtocol, ResponseRoundTrip) {
  std::vector<std::byte> bytes;
  append_response(bytes, RespStatus::kOk, "payload");
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  auto resp = parser.next_response();
  ASSERT_TRUE(resp.ok()) << resp.status().to_string();
  ASSERT_TRUE(resp.value().has_value());
  EXPECT_EQ(resp.value()->status, RespStatus::kOk);
  EXPECT_EQ(resp.value()->value, "payload");
}

TEST(KvProtocol, ByteAtATimeFeed) {
  auto bytes = encode_request(OpCode::kGet, "incremental-key");
  FrameParser parser;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto req = parser.next_request();
    ASSERT_TRUE(req.ok());
    EXPECT_FALSE(req.value().has_value()) << "frame completed early at " << i;
    parser.feed(&bytes[i], 1);
  }
  auto req = parser.next_request();
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(req.value().has_value());
  EXPECT_EQ(req.value()->op, OpCode::kGet);
  EXPECT_EQ(req.value()->key, "incremental-key");
}

TEST(KvProtocol, PipelinedFramesInOneBuffer) {
  std::vector<std::byte> bytes;
  append_request(bytes, OpCode::kPut, "k1", "v1");
  append_request(bytes, OpCode::kGet, "k2");
  append_request(bytes, OpCode::kDel, "k3");
  append_request(bytes, OpCode::kStats, {});

  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  const OpCode want_op[] = {OpCode::kPut, OpCode::kGet, OpCode::kDel,
                            OpCode::kStats};
  const std::string_view want_key[] = {"k1", "k2", "k3", ""};
  for (int i = 0; i < 4; ++i) {
    auto req = parser.next_request();
    ASSERT_TRUE(req.ok());
    ASSERT_TRUE(req.value().has_value()) << "frame " << i;
    EXPECT_EQ(req.value()->op, want_op[i]);
    EXPECT_EQ(req.value()->key, want_key[i]);
  }
  EXPECT_FALSE(parser.next_request().value().has_value());
}

TEST(KvProtocol, EmptyValuePutAndEmptyGetHit) {
  auto bytes = encode_request(OpCode::kPut, "k", "");
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  auto req = parser.next_request();
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(req.value().has_value());
  EXPECT_EQ(req.value()->value, "");

  std::vector<std::byte> resp_bytes;
  append_response(resp_bytes, RespStatus::kOk, "");
  FrameParser rparser;
  rparser.feed(resp_bytes.data(), resp_bytes.size());
  auto resp = rparser.next_response();
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp.value().has_value());
  EXPECT_EQ(resp.value()->value, "");
}

TEST(KvProtocol, MaxSizedKeyAndValue) {
  const std::string key(kMaxKeyLen, 'k');
  const std::string value(kMaxValLen, 'v');
  auto bytes = encode_request(OpCode::kPut, key, value);
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  auto req = parser.next_request();
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(req.value().has_value());
  EXPECT_EQ(req.value()->key.size(), kMaxKeyLen);
  EXPECT_EQ(req.value()->value.size(), kMaxValLen);
}

// --- Malformed input: every case must surface kCorruption, not UB ----------

std::vector<std::byte> frame_with_body(const std::vector<std::uint8_t>& body) {
  std::vector<std::byte> out;
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xff));
  }
  for (std::uint8_t b : body) out.push_back(static_cast<std::byte>(b));
  return out;
}

TEST(KvProtocol, OversizedFrameRejected) {
  std::vector<std::byte> out;
  const std::uint32_t len = kMaxBodyLen + 1;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xff));
  }
  FrameParser parser;
  parser.feed(out.data(), out.size());
  auto req = parser.next_request();
  EXPECT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kCorruption);
}

TEST(KvProtocol, UndersizedBodyRejected) {
  auto bytes = frame_with_body({1, 0, 0});  // 3-byte body < 8-byte header
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next_request().ok());
}

TEST(KvProtocol, BadOpcodeRejected) {
  // op=9, flags=0, key_len=1, val_len=0, one key byte.
  auto bytes = frame_with_body({9, 0, 1, 0, 0, 0, 0, 0, 'k'});
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next_request().ok());
}

TEST(KvProtocol, LengthMismatchRejected) {
  // Claims key_len=5 but carries only 1 byte past the header.
  auto bytes = frame_with_body({1, 0, 5, 0, 0, 0, 0, 0, 'k'});
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next_request().ok());
}

TEST(KvProtocol, ValueOnGetRejected) {
  // GET with val_len=1: only PUT carries a value.
  auto bytes = frame_with_body({1, 0, 1, 0, 1, 0, 0, 0, 'k', 'v'});
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next_request().ok());
}

TEST(KvProtocol, EmptyKeyOnPutRejected) {
  auto bytes = frame_with_body({2, 0, 0, 0, 1, 0, 0, 0, 'v'});
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next_request().ok());
}

TEST(KvProtocol, BadResponseStatusRejected) {
  auto bytes = frame_with_body({200, 0, 0, 0, 0, 0, 0, 0});
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next_response().ok());
}

// --- LatencyHistogram ------------------------------------------------------

TEST(KvHistogram, ExactBelow32) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 31u);
}

TEST(KvHistogram, QuantilesWithinRelativeError) {
  LatencyHistogram h;
  // 1..100000 ns uniformly: p50 ≈ 50000, p99 ≈ 99000, p999 ≈ 99900.
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  const double cases[][2] = {
      {0.50, 50000.0}, {0.99, 99000.0}, {0.999, 99900.0}};
  for (const auto& c : cases) {
    const double got = static_cast<double>(h.percentile(c[0]));
    EXPECT_NEAR(got, c[1], c[1] * 0.04)
        << "q=" << c[0];  // 5-bit sub-buckets bound error at ~3%
  }
  EXPECT_EQ(h.max_ns(), 100000u);
  EXPECT_NEAR(h.mean_ns(), 50000.5, 1.0);
}

TEST(KvHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    ((v % 2 == 0) ? a : b).record(v * 17);
    combined.record(v * 17);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max_ns(), combined.max_ns());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q)) << q;
  }
}

TEST(KvHistogram, OverflowBucketReportsLowerBoundNotClamp) {
  LatencyHistogram h;
  h.record(~0ull);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_ns(), ~0ull);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.overflow_min_ns(), ~0ull);
  // The lone sample overflowed: every quantile reports >= the smallest
  // overflowed value, never a clamped in-range midpoint.
  EXPECT_EQ(h.percentile(0.5), ~0ull);
}

TEST(KvHistogram, TailQuantileInOverflowIsAtLeastSmallestOverflow) {
  LatencyHistogram h;
  for (int i = 0; i < 990; ++i) h.record(1000);  // in-range bulk
  const std::uint64_t big = LatencyHistogram::kTrackableMaxNs + 12345;
  for (int i = 0; i < 10; ++i) h.record(big + i);  // top 1% overflows
  EXPECT_EQ(h.overflow_count(), 10u);
  EXPECT_EQ(h.overflow_min_ns(), big);
  // p50 is untouched by the overflow; p99.5+ lands in the overflow bucket
  // and must report the ">= big" lower bound, not ~1000.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 1000.0, 1000.0 * 0.04);
  EXPECT_EQ(h.percentile(0.997), big);
  EXPECT_EQ(h.percentile(1.0), big + 9);  // exact max
}

TEST(KvHistogram, BoundaryValuesStayInRegularBuckets) {
  LatencyHistogram h;
  h.record(LatencyHistogram::kTrackableMaxNs);      // largest trackable
  h.record(LatencyHistogram::kTrackableMaxNs + 1);  // smallest overflow
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.overflow_min_ns(), LatencyHistogram::kTrackableMaxNs + 1);
  // The trackable sample resolves within the log-linear ~3% error.
  const auto p0 = static_cast<double>(h.percentile(0.0));
  EXPECT_NEAR(p0, static_cast<double>(LatencyHistogram::kTrackableMaxNs),
              static_cast<double>(LatencyHistogram::kTrackableMaxNs) * 0.04);
}

TEST(KvHistogram, MergePropagatesOverflowState) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(500);
  b.record(LatencyHistogram::kTrackableMaxNs + 777);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.overflow_count(), 1u);
  EXPECT_EQ(a.overflow_min_ns(), LatencyHistogram::kTrackableMaxNs + 777);
  EXPECT_EQ(a.percentile(1.0), LatencyHistogram::kTrackableMaxNs + 777);
}

}  // namespace
}  // namespace pax::kv
