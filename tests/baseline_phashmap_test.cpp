#include "pax/baselines/pmdk/phashmap.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "pax/common/rng.hpp"
#include "test_util.hpp"

namespace pax::baselines::pmdk {
namespace {

using testing::TestPool;

struct PHashMapFixture : ::testing::Test {
  TestPool tp = TestPool::create(4 << 20, 256 * 1024);
};

TEST_F(PHashMapFixture, PutGetRoundTrip) {
  TxRuntime tx(&tp.pool);
  auto map = PHashMap::create(&tx, 64).value();
  for (std::uint64_t k = 1; k <= 100; ++k) {
    ASSERT_TRUE(map.put(k, k * 7).is_ok());
  }
  EXPECT_EQ(map.size(), 100u);
  for (std::uint64_t k = 1; k <= 100; ++k) {
    ASSERT_EQ(map.get(k), std::optional(k * 7));
  }
  EXPECT_FALSE(map.get(9999).has_value());
}

TEST_F(PHashMapFixture, UpdateInPlace) {
  TxRuntime tx(&tp.pool);
  auto map = PHashMap::create(&tx, 16).value();
  ASSERT_TRUE(map.put(5, 1).is_ok());
  ASSERT_TRUE(map.put(5, 2).is_ok());
  EXPECT_EQ(map.get(5), std::optional<std::uint64_t>(2));
  EXPECT_EQ(map.size(), 1u);
}

TEST_F(PHashMapFixture, EraseUnlinksAndRecycles) {
  TxRuntime tx(&tp.pool);
  auto map = PHashMap::create(&tx, 8).value();  // few buckets: long chains
  for (std::uint64_t k = 1; k <= 30; ++k) ASSERT_TRUE(map.put(k, k).is_ok());
  for (std::uint64_t k = 1; k <= 30; k += 2) {
    ASSERT_TRUE(map.erase(k).is_ok());
  }
  EXPECT_EQ(map.size(), 15u);
  for (std::uint64_t k = 1; k <= 30; ++k) {
    EXPECT_EQ(map.get(k).has_value(), k % 2 == 0) << k;
  }
  // New inserts reuse freed nodes.
  ASSERT_TRUE(map.put(100, 100).is_ok());
  EXPECT_GE(map.stats().node_recycles, 1u);
  EXPECT_EQ(map.erase(12345).code(), StatusCode::kNotFound);
}

TEST_F(PHashMapFixture, DurableAcrossCrashAndReopen) {
  {
    TxRuntime tx(&tp.pool);
    auto map = PHashMap::create(&tx, 64).value();
    for (std::uint64_t k = 1; k <= 200; ++k) {
      ASSERT_TRUE(map.put(k, k + 1000).is_ok());
    }
  }
  tp.device->crash(pmem::CrashConfig::drop_all());
  {
    TxRuntime tx(&tp.pool);
    auto map = PHashMap::open(&tx).value();
    EXPECT_EQ(map.size(), 200u);
    for (std::uint64_t k = 1; k <= 200; ++k) {
      ASSERT_EQ(map.get(k), std::optional(k + 1000));
    }
  }
}

TEST_F(PHashMapFixture, CrashMidPutLeavesMapConsistent) {
  // Stage a put whose log records are durable but whose commit never lands,
  // then crash: recovery must fully undo the half-applied insert.
  {
    TxRuntime tx(&tp.pool);
    auto map = PHashMap::create(&tx, 16).value();
    ASSERT_TRUE(map.put(1, 10).is_ok());
    // Begin a transaction by hand that mimics put(2,20) but stops after
    // mutating the bucket without committing.
    ASSERT_TRUE(tx.tx_begin().is_ok());
    ASSERT_TRUE(tx.tx_snapshot(tp.pool.data_offset() + 16, 8).is_ok());
    const std::uint64_t junk = 0xdeadbeef;
    ASSERT_TRUE(tx.tx_store(tp.pool.data_offset() + 16,
                            std::as_bytes(std::span(&junk, 1)))
                    .is_ok());
    tp.device->flush_range(tp.pool.data_offset() + 16, 8);
    tp.device->drain();
  }
  tp.device->crash(pmem::CrashConfig::drop_all());
  {
    TxRuntime tx(&tp.pool);
    EXPECT_EQ(tx.stats().recovered_txs, 1u);
    auto map = PHashMap::open(&tx).value();
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.get(1), std::optional<std::uint64_t>(10));
    // Map still fully functional.
    ASSERT_TRUE(map.put(2, 20).is_ok());
    EXPECT_EQ(map.get(2), std::optional<std::uint64_t>(20));
  }
}

TEST_F(PHashMapFixture, RandomizedOracleComparison) {
  TxRuntime tx(&tp.pool);
  auto map = PHashMap::create(&tx, 128).value();
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(2024);

  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = 1 + rng.next_below(400);
    const double dice = rng.next_double();
    if (dice < 0.55) {
      const std::uint64_t value = rng.next();
      ASSERT_TRUE(map.put(key, value).is_ok());
      oracle[key] = value;
    } else if (dice < 0.8) {
      Status s = map.erase(key);
      EXPECT_EQ(s.is_ok(), oracle.erase(key) > 0);
    } else {
      auto got = map.get(key);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        EXPECT_EQ(got, std::optional(it->second)) << key;
      }
    }
  }
  EXPECT_EQ(map.size(), oracle.size());
}

TEST_F(PHashMapFixture, OpenWithoutCreateFails) {
  TxRuntime tx(&tp.pool);
  EXPECT_FALSE(PHashMap::open(&tx).ok());
}

TEST_F(PHashMapFixture, SfenceCostScalesWithOperations) {
  // The paper's claim in §2: multiple ordered stalls per logical put().
  TxRuntime tx(&tp.pool);
  auto map = PHashMap::create(&tx, 64).value();
  const auto before = tx.stats().sfences;
  for (std::uint64_t k = 1; k <= 10; ++k) ASSERT_TRUE(map.put(k, k).is_ok());
  const auto per_put =
      static_cast<double>(tx.stats().sfences - before) / 10.0;
  EXPECT_GE(per_put, 4.0);  // ≥3 snapshots + data fence + commit fences
}

}  // namespace
}  // namespace pax::baselines::pmdk
