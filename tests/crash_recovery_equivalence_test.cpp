// Recovery-equivalence property: every enumerated crash point of the demo
// libpax workloads (persistent-heap object chain, ShardedMap) must recover
// to exactly pre-epoch or post-epoch bytes — across the legacy, batched,
// and line-tracked sync configurations. The explorer's snapshot oracle is
// the property; these tests just pick representative workloads and sweep
// the configs. Sampled (not k=1) to keep the suite quick; paxctl explore
// and the CI explore job run the exhaustive sweep.
#include <gtest/gtest.h>

#include <cstring>

#include "pax/check/crashpoint.hpp"
#include "pax/libpax/runtime.hpp"
#include "pax/libpax/sharded_map.hpp"

namespace pax::libpax {
namespace {

using check::CrashExplorer;
using check::CrashExplorerOptions;
using check::CrashOracle;

constexpr std::size_t kPoolBytes = 4 << 20;
constexpr Epoch kEpochs = 3;
// Fixed vPM base: PaxStlAllocator-backed containers store raw pointers, so
// byte-identical snapshots require identical mapping addresses on every
// execution. Away from the sequential-hint range vpm_region.cpp hands out.
constexpr std::uintptr_t kVpmBase = 0x7e00'0000'0000ULL;

enum class SyncConfig { kLegacy, kBatched, kTracked };

RuntimeOptions config_options(SyncConfig config) {
  RuntimeOptions o;
  o.log_size = 512 << 10;
  o.vpm_base_hint = kVpmBase;
  switch (config) {
    case SyncConfig::kLegacy:
      o.sync_batch_lines = 1;
      o.track_lines = false;
      break;
    case SyncConfig::kBatched:
      o.sync_batch_lines = 256;
      o.track_lines = false;
      break;
    case SyncConfig::kTracked:
      o.track_lines = true;
      break;
  }
  return RuntimeOptions::deterministic(o);
}

Status heap_workload(const RuntimeOptions& opts, pmem::PmemDevice& dev,
                     CrashOracle& oracle) {
  auto rt = PaxRuntime::attach(&dev, opts);
  if (!rt.ok()) return rt.status();
  auto& r = *rt.value();
  PAX_RETURN_IF_ERROR(oracle.note_commit(r.committed_epoch()));
  // A linked chain of heap blocks, head parked in the root offset: each
  // epoch prepends one block, so a wrong rollback breaks the chain bytes.
  for (Epoch e = 1; e <= kEpochs; ++e) {
    auto* block = static_cast<std::uint64_t*>(r.heap().allocate(256));
    if (block == nullptr) return failed_precondition("heap exhausted");
    block[0] = r.heap().root_offset();  // link to previous head
    std::memset(block + 1, static_cast<int>(e), 256 - sizeof(*block));
    r.heap().set_root_offset(r.heap().ptr_to_offset(block));
    auto committed = r.persist();
    if (!committed.ok()) return committed.status();
    PAX_RETURN_IF_ERROR(oracle.note_commit(committed.value()));
  }
  return Status::ok();
}

Status map_workload(const RuntimeOptions& opts, pmem::PmemDevice& dev,
                    CrashOracle& oracle) {
  auto rt = PaxRuntime::attach(&dev, opts);
  if (!rt.ok()) return rt.status();
  auto& r = *rt.value();
  auto map = ShardedMap<std::uint64_t, std::uint64_t>::open(r, 2);
  if (!map.ok()) return map.status();
  PAX_RETURN_IF_ERROR(oracle.note_commit(r.committed_epoch()));
  for (Epoch e = 1; e <= kEpochs; ++e) {
    for (std::uint64_t k = 0; k < 8; ++k) {
      map.value().put(e * 100 + k, e * 1000 + k);
    }
    if (e > 1) map.value().erase((e - 1) * 100);  // churn the free lists
    auto committed = r.persist();
    if (!committed.ok()) return committed.status();
    PAX_RETURN_IF_ERROR(oracle.note_commit(committed.value()));
  }
  return Status::ok();
}

class RecoveryEquivalence : public ::testing::TestWithParam<SyncConfig> {};

TEST_P(RecoveryEquivalence, HeapChainRecoversToPreOrPostEpoch) {
  const RuntimeOptions opts = config_options(GetParam());
  CrashExplorerOptions options;
  options.max_crash_points = 32;  // evenly sampled, tail included
  options.seed = 0x9e1f;
  CrashExplorer explorer(
      kPoolBytes,
      [&opts](pmem::PmemDevice& dev, CrashOracle& oracle) {
        return heap_workload(opts, dev, oracle);
      },
      options);
  auto result = explorer.explore();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().clean()) << result.value().to_string();
  EXPECT_EQ(result.value().epochs, static_cast<std::uint64_t>(kEpochs) + 1);
}

TEST_P(RecoveryEquivalence, ShardedMapRecoversToPreOrPostEpoch) {
  const RuntimeOptions opts = config_options(GetParam());
  CrashExplorerOptions options;
  options.max_crash_points = 32;
  options.seed = 0x51ab;
  CrashExplorer explorer(
      kPoolBytes,
      [&opts](pmem::PmemDevice& dev, CrashOracle& oracle) {
        return map_workload(opts, dev, oracle);
      },
      options);
  auto result = explorer.explore();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().clean()) << result.value().to_string();
}

INSTANTIATE_TEST_SUITE_P(AllSyncConfigs, RecoveryEquivalence,
                         ::testing::Values(SyncConfig::kLegacy,
                                           SyncConfig::kBatched,
                                           SyncConfig::kTracked),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case SyncConfig::kLegacy: return "legacy";
                             case SyncConfig::kBatched: return "batched";
                             default: return "tracked";
                           }
                         });

}  // namespace
}  // namespace pax::libpax
