#include "pax/wal/wal.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "pax/pmem/pmem_device.hpp"
#include "test_util.hpp"

namespace pax::wal {
namespace {

constexpr PoolOffset kExtent = 4096;
constexpr std::size_t kExtentSize = 64 * 1024;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

struct WalFixture : ::testing::Test {
  std::unique_ptr<pmem::PmemDevice> dev =
      pmem::PmemDevice::create_in_memory(1 << 20);
  LogWriter writer{dev.get(), kExtent, kExtentSize};
};

TEST_F(WalFixture, AppendReadRoundTrip) {
  auto payload = bytes_of("hello undo log");
  auto end = writer.append(3, RecordType::kLineUndo, payload);
  ASSERT_TRUE(end.ok());
  writer.flush();

  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].epoch, 3u);
  EXPECT_EQ(records[0].type, RecordType::kLineUndo);
  EXPECT_EQ(records[0].payload, payload);
  EXPECT_EQ(records[0].end_offset, end.value());
}

TEST_F(WalFixture, MultipleRecordsPreserveOrder) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        writer.append(1, RecordType::kLineUndo, bytes_of("rec" + std::to_string(i)))
            .ok());
  }
  writer.flush();
  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_EQ(records.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(records[i].payload, bytes_of("rec" + std::to_string(i)));
  }
}

TEST_F(WalFixture, DurabilityWatermarkAdvancesOnFlushOnly) {
  EXPECT_EQ(writer.durable(), 0u);
  auto end = writer.append(1, RecordType::kLineUndo, bytes_of("x"));
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(writer.durable(), 0u);
  EXPECT_EQ(writer.appended(), end.value());
  writer.flush();
  EXPECT_EQ(writer.durable(), end.value());
}

TEST_F(WalFixture, UnflushedRecordVanishesOnCrash) {
  ASSERT_TRUE(writer.append(1, RecordType::kLineUndo, bytes_of("durable")).ok());
  writer.flush();
  ASSERT_TRUE(writer.append(1, RecordType::kLineUndo, bytes_of("volatile")).ok());
  dev->crash(pmem::CrashConfig::drop_all());

  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, bytes_of("durable"));
}

TEST_F(WalFixture, TornRecordStopsScanWithoutCorruptingPriorRecords) {
  ASSERT_TRUE(writer.append(2, RecordType::kLineUndo, bytes_of("good")).ok());
  writer.flush();
  // Stage a big multi-line record, then crash with ~half the lines surviving:
  // almost surely a torn frame.
  std::vector<std::byte> big(300, std::byte{0x61});
  ASSERT_TRUE(writer.append(2, RecordType::kLineUndo, big).ok());
  dev->crash(pmem::CrashConfig::random(0.5, /*seed=*/5));

  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records[0].payload, bytes_of("good"));
  // If the torn record survived the lottery whole, it must be intact.
  if (records.size() == 2) {
    EXPECT_EQ(records[1].payload, big);
  }
}

TEST_F(WalFixture, StaleRecordsAfterResetAreReadableButEpochTagged) {
  // Epoch 1 writes two records; commit makes them stale; writer resets and
  // epoch 2 overwrites only the first slot. Scan must yield the new record
  // first, then the surviving stale one — distinguished by epoch tag.
  ASSERT_TRUE(writer.append(1, RecordType::kLineUndo,
                            bytes_of("aaaaaaaaaaaaaaaaaaaaaaaa")).ok());
  ASSERT_TRUE(writer.append(1, RecordType::kLineUndo,
                            bytes_of("bbbbbbbbbbbbbbbbbbbbbbbb")).ok());
  writer.flush();
  writer.reset();
  ASSERT_TRUE(writer.append(2, RecordType::kLineUndo,
                            bytes_of("cccccccccccccccccccccccc")).ok());
  writer.flush();

  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].epoch, 2u);
  EXPECT_EQ(records[0].payload, bytes_of("cccccccccccccccccccccccc"));
  EXPECT_EQ(records[1].epoch, 1u);  // stale survivor
}

TEST_F(WalFixture, OutOfSpaceReported) {
  LogWriter small(dev.get(), kExtent, 128);
  std::vector<std::byte> payload(64);
  ASSERT_TRUE(small.append(1, RecordType::kLineUndo, payload).ok());
  auto second = small.append(1, RecordType::kLineUndo, payload);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kOutOfSpace);
}

TEST_F(WalFixture, EmptyPayloadRecordIsValid) {
  ASSERT_TRUE(writer.append(1, RecordType::kTxCommit, {}).ok());
  writer.flush();
  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, RecordType::kTxCommit);
  EXPECT_TRUE(records[0].payload.empty());
}

TEST_F(WalFixture, FrameSizesAreAligned) {
  for (std::size_t p : {0u, 1u, 7u, 8u, 63u, 64u, 72u, 4096u}) {
    EXPECT_EQ(record_frame_size(p) % 8, 0u);
    EXPECT_GE(record_frame_size(p), sizeof(RecordHeader) + p);
  }
}

TEST_F(WalFixture, CorruptedPayloadByteDetected) {
  auto end = writer.append(4, RecordType::kLineUndo, bytes_of("sensitive"));
  ASSERT_TRUE(end.ok());
  writer.flush();
  // Durably flip one payload byte behind the CRC's back.
  const PoolOffset payload_at = kExtent + sizeof(RecordHeader);
  std::byte b{};
  dev->load(payload_at, {&b, 1});
  b ^= std::byte{0x01};
  dev->store(payload_at, {&b, 1});
  dev->flush_line(LineIndex::containing(payload_at));
  dev->drain();

  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  EXPECT_TRUE(records.empty());  // CRC mismatch → scan stops at record 0
}

}  // namespace
}  // namespace pax::wal
