// Multi-core coherence-domain tests: MESI ownership transfer between cores
// through the PAX device, value coherence, per-epoch logging invariants,
// and crash consistency under multi-core mutation.
#include "pax/coherence/domain.hpp"

#include <gtest/gtest.h>

#include <map>

#include "pax/common/rng.hpp"
#include "pax/device/recovery.hpp"
#include "test_util.hpp"

namespace pax::coherence {
namespace {

using testing::TestPool;

struct DomainFixture : ::testing::Test {
  TestPool tp = TestPool::create(16 << 20, 2 << 20);
  device::PaxDevice dev{&tp.pool, device::DeviceConfig::defaults()};
  CoherenceDomain domain{&dev, HostCacheConfig{}, 4};

  PoolOffset addr(std::uint64_t i) const {
    return tp.pool.data_offset() + i * kCacheLineSize;
  }
};

TEST_F(DomainFixture, StoreOnOneCoreVisibleToAnother) {
  ASSERT_TRUE(domain.core(0).store_u64(addr(0), 42).is_ok());
  // Core 1's load miss must see core 0's modified value (via SnpData
  // forwarding through the device).
  EXPECT_EQ(domain.core(1).load_u64(addr(0)), 42u);
  // Core 0 was downgraded to Shared by the snoop.
  EXPECT_EQ(domain.core(0).line_state(LineIndex::containing(addr(0))),
            MesiState::kShared);
}

TEST_F(DomainFixture, WriteOwnershipMigratesWithInvalidation) {
  ASSERT_TRUE(domain.core(0).store_u64(addr(0), 1).is_ok());
  ASSERT_TRUE(domain.core(1).store_u64(addr(0), 2).is_ok());
  // Core 0's copy was invalidated, not just downgraded.
  EXPECT_EQ(domain.core(0).line_state(LineIndex::containing(addr(0))),
            MesiState::kInvalid);
  EXPECT_EQ(domain.core(1).line_state(LineIndex::containing(addr(0))),
            MesiState::kModified);
  // And nothing was lost: core 2 reads the newest value.
  EXPECT_EQ(domain.core(2).load_u64(addr(0)), 2u);
}

TEST_F(DomainFixture, CrossCoreTransfersLogOncePerEpoch) {
  // The line bounces between 4 cores; the epoch-boundary pre-image must be
  // logged exactly once regardless (write_intent is per-epoch idempotent).
  for (int round = 0; round < 3; ++round) {
    for (unsigned c = 0; c < 4; ++c) {
      ASSERT_TRUE(
          domain.core(c).store_u64(addr(0), round * 4 + c).is_ok());
    }
  }
  EXPECT_EQ(dev.stats().first_touch_logs, 1u);
  EXPECT_GE(dev.stats().write_intents, 12u);
}

TEST_F(DomainFixture, PersistPullsNewestCopyAcrossCores) {
  ASSERT_TRUE(domain.core(0).store_u64(addr(0), 1).is_ok());
  ASSERT_TRUE(domain.core(3).store_u64(addr(0), 99).is_ok());  // newest at 3
  ASSERT_TRUE(domain.core(1).store_u64(addr(1), 7).is_ok());

  ASSERT_TRUE(dev.persist(domain.pull_fn()).ok());
  domain.drop_all_without_writeback();
  tp.device->crash(pmem::CrashConfig::drop_all());

  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  EXPECT_EQ(tp.device->load_u64(addr(0)), 99u);
  EXPECT_EQ(tp.device->load_u64(addr(1)), 7u);
}

TEST_F(DomainFixture, NextEpochStoresReannounceOnEveryCore) {
  ASSERT_TRUE(domain.core(0).store_u64(addr(0), 1).is_ok());
  ASSERT_TRUE(domain.core(1).load_u64(addr(0)));  // both cores now share it
  ASSERT_TRUE(dev.persist(domain.pull_fn()).ok());

  // Epoch 2: a store from EITHER core must RdOwn again.
  ASSERT_TRUE(domain.core(1).store_u64(addr(0), 2).is_ok());
  EXPECT_EQ(dev.stats().first_touch_logs, 2u);
}

TEST_F(DomainFixture, RandomizedMultiCoreOracle) {
  // Interleaved stores/loads from 4 cores over a small line set, persist
  // occasionally, crash, recover: result equals the oracle at the last
  // committed epoch.
  Xoshiro256 rng(77);
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::vector<std::map<std::uint64_t, std::uint64_t>> snapshots{oracle};

  for (int i = 0; i < 2000; ++i) {
    const unsigned core = rng.next_below(4);
    const std::uint64_t cell = rng.next_below(64);
    if (rng.next_bool(0.6)) {
      const std::uint64_t v = rng.next() | 1;
      ASSERT_TRUE(domain.core(core).store_u64(addr(cell), v).is_ok());
      oracle[cell] = v;
    } else {
      const std::uint64_t got = domain.core(core).load_u64(addr(cell));
      auto it = oracle.find(cell);
      ASSERT_EQ(got, it == oracle.end() ? 0 : it->second)
          << "core " << core << " cell " << cell;
    }
    if (rng.next_double() < 0.01) {
      ASSERT_TRUE(dev.persist(domain.pull_fn()).ok());
      snapshots.push_back(oracle);
    }
  }
  domain.drop_all_without_writeback();
  tp.device->crash(pmem::CrashConfig::random(0.5, 31));

  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  const Epoch committed = pool.committed_epoch();
  ASSERT_LT(committed, snapshots.size());
  for (const auto& [cell, v] : snapshots[committed]) {
    ASSERT_EQ(tp.device->load_u64(addr(cell)), v)
        << "cell " << cell << " epoch " << committed;
  }
}

TEST_F(DomainFixture, CoRRSameLineReadsNeverGoBackwards) {
  // CoRR through the *dispatch* entry points — the per-address ordering
  // point the header comment claims: once a reader observes a store to a
  // line, no later read of that line (same core or a fresh one) may
  // observe an older value.
  EXPECT_EQ(domain.load_u64(1, addr(0)), 0u);
  ASSERT_TRUE(domain.store_u64(0, addr(0), 1).is_ok());
  EXPECT_EQ(domain.load_u64(1, addr(0)), 1u);
  EXPECT_EQ(domain.load_u64(1, addr(0)), 1u);  // never backwards
  ASSERT_TRUE(domain.store_u64(0, addr(0), 2).is_ok());
  EXPECT_EQ(domain.load_u64(1, addr(0)), 2u);
  EXPECT_EQ(domain.load_u64(2, addr(0)), 2u);  // fresh reader agrees
  EXPECT_EQ(domain.load_u64(1, addr(0)), 2u);
}

TEST_F(DomainFixture, CoWWSameLineWritesCommitInProgramOrder) {
  // CoWW: same-line writes must commit in order — the durable value after
  // persist is the *last* write, and a crash mid-next-epoch rolls back to
  // it, never to an intermediate write.
  ASSERT_TRUE(domain.store_u64(0, addr(0), 1).is_ok());
  ASSERT_TRUE(domain.store_u64(0, addr(0), 2).is_ok());
  EXPECT_EQ(domain.load_u64(3, addr(0)), 2u);
  ASSERT_TRUE(domain.persist(&dev).ok());
  EXPECT_EQ(tp.device->load_u64(addr(0)), 2u);

  // Next epoch: the line is overwritten twice across cores, so the first
  // write (3) reaches the device via the SnpInv write-back and may hit PM
  // before the crash. Recovery must still land on 2, not 3 or 4.
  ASSERT_TRUE(domain.store_u64(1, addr(0), 3).is_ok());
  ASSERT_TRUE(domain.store_u64(2, addr(0), 4).is_ok());
  domain.drop_all_without_writeback();
  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  EXPECT_EQ(tp.device->load_u64(addr(0)), 2u);
}

TEST_F(DomainFixture, FalseSharingIsCoherent) {
  // Two cores write different u64s in the SAME line: classic false sharing.
  // Ownership ping-pongs but neither update may be lost.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(domain.core(0).store_u64(addr(0), 1000 + i).is_ok());
    ASSERT_TRUE(domain.core(1).store_u64(addr(0) + 8, 2000 + i).is_ok());
  }
  EXPECT_EQ(domain.core(2).load_u64(addr(0)), 1049u);
  EXPECT_EQ(domain.core(2).load_u64(addr(0) + 8), 2049u);
  ASSERT_TRUE(dev.persist(domain.pull_fn()).ok());
  EXPECT_EQ(tp.device->load_u64(addr(0)), 1049u);
  EXPECT_EQ(tp.device->load_u64(addr(0) + 8), 2049u);
}

}  // namespace
}  // namespace pax::coherence
