// Tests of the evaluation models: workload distributions, the SimHashTable
// measurement vehicle, the AMAT formula, and the DES throughput model's
// paper-shape properties.
#include <gtest/gtest.h>

#include <map>

#include "pax/coherence/host_cache.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/model/amat.hpp"
#include "pax/model/sim_hash_table.hpp"
#include "pax/model/throughput.hpp"
#include "pax/model/workload.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::model {
namespace {

TEST(WorkloadTest, UniformKeysCoverSpace) {
  KeyGenerator gen(KeyDist::kUniform, 100, 0, 1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[gen.next()];
  EXPECT_EQ(counts.size(), 100u);
  EXPECT_EQ(counts.begin()->first, 1u);
  EXPECT_EQ(counts.rbegin()->first, 100u);
  for (const auto& [k, c] : counts) {
    EXPECT_GT(c, 700) << k;
    EXPECT_LT(c, 1300) << k;
  }
}

TEST(WorkloadTest, ZipfianIsSkewed) {
  KeyGenerator gen(KeyDist::kZipfian, 10000, 0.99, 2);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.next()];
  // Head concentration: the single hottest key draws a few percent.
  int hottest = 0;
  for (const auto& [k, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, kDraws / 50);
  // All keys in range.
  EXPECT_GE(counts.begin()->first, 1u);
  EXPECT_LE(counts.rbegin()->first, 10000u);
}

TEST(WorkloadTest, OpMixMatchesPutFraction) {
  WorkloadGen gen(KeyGenerator(KeyDist::kUniform, 100, 0, 3), 0.3, 4);
  int puts = 0;
  auto ops = gen.batch(50000);
  for (const auto& op : ops) puts += op.type == Op::Type::kPut ? 1 : 0;
  EXPECT_NEAR(puts / 50000.0, 0.3, 0.02);
}

struct SimTableFixture : ::testing::Test {
  std::unique_ptr<pmem::PmemDevice> pm =
      pmem::PmemDevice::create_in_memory(32 << 20);
  pmem::PmemPool pool = pmem::PmemPool::create(pm.get(), 2 << 20).value();
  device::PaxDevice dev{&pool, device::DeviceConfig::defaults()};
  coherence::HostCacheSim host{&dev, coherence::HostCacheConfig{}};
  SimHashTable table{&host, pool.data_offset(), 1 << 14};
};

TEST_F(SimTableFixture, PutGetRoundTrip) {
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(table.put(k, k * 11).is_ok());
  }
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_EQ(table.get(k), std::optional(k * 11));
  }
  EXPECT_FALSE(table.get(5555).has_value());
  EXPECT_EQ(table.size(), 1000u);
}

TEST_F(SimTableFixture, SurvivesDevicePersistCycle) {
  ASSERT_TRUE(table.put(1, 10).is_ok());
  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());
  ASSERT_TRUE(table.put(2, 20).is_ok());
  EXPECT_EQ(table.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(table.get(2), std::optional<std::uint64_t>(20));
}

TEST(AmatTest, FormulaMatchesHandComputation) {
  coherence::HostCacheStats stats;
  stats.l1 = {1000, 900};  // m1 = 0.1
  stats.l2 = {100, 50};    // m2 = 0.5
  stats.llc = {50, 40};    // m3 = 0.2
  simtime::MemoryLatency lat;
  lat.l1_ns = 1;
  lat.l2_ns = 10;
  lat.llc_ns = 30;
  lat.dram_ns = 100;

  const auto amat = compute_amat(stats, lat, Media::kDram,
                                 simtime::InterconnectLatency::none());
  // 1 + 0.1*(10 + 0.5*(30 + 0.2*100)) = 1 + 0.1*(10 + 25) = 4.5
  EXPECT_NEAR(amat.amat_ns, 4.5, 1e-9);
  EXPECT_NEAR(amat.misses_per_access, 0.01, 1e-9);
}

TEST(AmatTest, InterpositionOnlyAffectsMemoryTerm) {
  coherence::HostCacheStats stats;
  stats.l1 = {1000, 500};
  stats.l2 = {500, 250};
  stats.llc = {250, 125};
  simtime::MemoryLatency lat;

  const auto base = compute_amat(stats, lat, Media::kPm,
                                 simtime::InterconnectLatency::none());
  const auto cxl = compute_amat(stats, lat, Media::kPm,
                                simtime::InterconnectLatency{80});
  EXPECT_NEAR(cxl.amat_ns - base.amat_ns,
              base.misses_per_access * 80, 1e-9);
  EXPECT_EQ(cxl.l1_ns, base.l1_ns);
  EXPECT_EQ(cxl.llc_ns, base.llc_ns);
}

TEST(AmatTest, Fig2aRowsAreOrderedLikeThePaper) {
  coherence::HostCacheStats stats;
  stats.l1 = {1000, 500};
  stats.l2 = {500, 100};
  stats.llc = {400, 300};
  auto rows = fig2a_rows(stats, simtime::MemoryLatency::c6420());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_LT(rows[0].amat.amat_ns, rows[1].amat.amat_ns);  // DRAM < PM
  EXPECT_LT(rows[1].amat.amat_ns, rows[2].amat.amat_ns);  // PM < CXL
  EXPECT_LT(rows[2].amat.amat_ns, rows[3].amat.amat_ns);  // CXL < Enzian
}

// --- DES throughput model: paper-shape properties -------------------------

struct ThroughputShape : ::testing::Test {
  ModelParams params;  // defaults
};

TEST_F(ThroughputShape, SingleThreadOrdering) {
  const double dram = simulate_mops(SystemKind::kDram, 1, params);
  const double direct = simulate_mops(SystemKind::kPmDirect, 1, params);
  const double pmdk = simulate_mops(SystemKind::kPmdk, 1, params);
  EXPECT_GT(dram, direct);
  EXPECT_GT(direct, pmdk);
}

TEST_F(ThroughputShape, PmdkGapAt32ThreadsIsRoughly2x) {
  const double direct = simulate_mops(SystemKind::kPmDirect, 32, params);
  const double pmdk = simulate_mops(SystemKind::kPmdk, 32, params);
  EXPECT_GT(direct / pmdk, 1.6);
  EXPECT_LT(direct / pmdk, 3.5);
}

TEST_F(ThroughputShape, PaxMatchesOrBeatsPmDirectAtScale) {
  const double direct = simulate_mops(SystemKind::kPmDirect, 32, params);
  const double pax = simulate_mops(SystemKind::kPaxCxl, 32, params);
  EXPECT_GE(pax, direct * 0.95);  // "match or beat" (§5)
}

TEST_F(ThroughputShape, ThroughputMonotonicInThreadsUntilSaturation) {
  double prev = 0;
  for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double mops = simulate_mops(SystemKind::kPmDirect, n, params);
    EXPECT_GE(mops, prev * 0.99) << n;
    prev = mops;
  }
}

TEST_F(ThroughputShape, PmDirectSaturatesAtWriteBandwidth) {
  const double at32 = simulate_mops(SystemKind::kPmDirect, 32, params);
  const double at64 = simulate_mops(SystemKind::kPmDirect, 64, params);
  EXPECT_NEAR(at64 / at32, 1.0, 0.1);  // flat past the knee
}

TEST_F(ThroughputShape, HigherInterpositionLowersPaxThroughput) {
  ModelParams low = params;
  low.pax_interposition_override_ns = 50;
  ModelParams high = params;
  high.pax_interposition_override_ns = 800;
  EXPECT_GT(simulate_mops(SystemKind::kPaxCxl, 8, low),
            simulate_mops(SystemKind::kPaxCxl, 8, high));
}

TEST_F(ThroughputShape, GroupCommitIntervalMatters) {
  ModelParams tight = params;
  tight.pax_persist_interval_ops = 1;
  ModelParams loose = params;
  loose.pax_persist_interval_ops = 4096;
  EXPECT_GT(simulate_mops(SystemKind::kPaxCxl, 8, loose),
            simulate_mops(SystemKind::kPaxCxl, 8, tight) * 2);
}

TEST_F(ThroughputShape, PageWalTrapsHurtSparseWorkloads) {
  ModelParams sparse = params;
  sparse.pagewal_page_touch_per_op = 1.0;  // every op touches a new page
  const double pagewal = simulate_mops(SystemKind::kPageWal, 8, sparse);
  const double pax = simulate_mops(SystemKind::kPaxCxl, 8, sparse);
  EXPECT_GT(pax / pagewal, 2.0);
}

TEST_F(ThroughputShape, PipelinedEpochsBeatBlockingPersistAt32Cores) {
  // The pipelined-epoch extrapolation the runtime cannot measure on one
  // core: at 32 threads with frequent persists, overlapping persist(N)
  // with mutation of N+1 must outperform blocking persists and come close
  // to (or beat) the §6 seal-only async mode, while staying deterministic.
  ModelParams p = params;
  p.pax_persist_interval_ops = 256;  // make the boundary cost visible
  const double blocking = simulate_mops(SystemKind::kPaxCxl, 32, p);
  ModelParams piped = p;
  piped.pax_pipelined_epochs = true;
  piped.pax_pipeline_depth = 2;
  const double pipelined = simulate_mops(SystemKind::kPaxCxl, 32, piped);
  EXPECT_GT(pipelined, blocking * 1.05);

  // Deeper queues can only help (monotone in depth, up to saturation).
  ModelParams deep = piped;
  deep.pax_pipeline_depth = 8;
  EXPECT_GE(simulate_mops(SystemKind::kPaxCxl, 32, deep),
            pipelined * 0.999);

  // Determinism (the drain queue must not introduce any).
  EXPECT_EQ(pipelined, simulate_mops(SystemKind::kPaxCxl, 32, piped));
}

TEST_F(ThroughputShape, DeterministicAcrossRuns) {
  const double a = simulate_mops(SystemKind::kPmdk, 16, params);
  const double b = simulate_mops(SystemKind::kPmdk, 16, params);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pax::model
