// Predictive power of the PaxScope offline analyzer: every seeded ordering
// bug here is INVISIBLE to the online checker (its rules judge the observed
// schedule, which happens to be safe) and must still be flagged from the
// happens-before reconstruction — while the clean twin of each trace, with
// the enforcing edge restored, must analyze quiet.
#include "pax/check/analyze.hpp"

#include <gtest/gtest.h>

#include "pax/check/checker.hpp"
#include "pax/check/repair.hpp"

namespace pax::check {
namespace {

struct TraceBuilder {
  std::vector<Event> events;
  std::uint64_t seq = 0;

  TraceBuilder& add(EventType type, std::uint16_t tid,
                    std::uint64_t line = kNoLine, std::uint64_t a = 0,
                    std::uint64_t b = 0, std::uint8_t flags = 0) {
    Event e;
    e.seq = ++seq;
    e.line = line;
    e.a = a;
    e.b = b;
    e.type = type;
    e.flags = flags;
    e.tid = tid;
    events.push_back(e);
    return *this;
  }
  TraceBuilder& lock(std::uint16_t tid, LockClass cls, std::uint64_t id) {
    return add(EventType::kLockAcquire, tid, kNoLine,
               static_cast<std::uint64_t>(cls), id);
  }
  TraceBuilder& unlock(std::uint16_t tid, LockClass cls, std::uint64_t id) {
    return add(EventType::kLockRelease, tid, kNoLine,
               static_cast<std::uint64_t>(cls), id);
  }
};

AnalysisReport analyze_one(const std::vector<Event>& events,
                           std::uint32_t version = kTraceVersion) {
  TraceAnalyzer analyzer;
  Status st = analyzer.add_trace(events, version);
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  return analyzer.finish();
}

void expect_online_silent(const std::vector<Event>& events) {
  Checker checker;
  const Report report = checker.replay(events);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// --- lockdep: same-class ABBA the online rank check can never see --------

std::vector<Event> abba_log_mutexes(bool buggy) {
  // Two log-mutex instances (same LockClass, equal rank) taken in opposite
  // orders by two threads — but never overlapping in time, so no run
  // blocks and the online checker (which compares ranks, not instances)
  // stays silent. The clean twin orders both threads identically.
  TraceBuilder t;
  t.lock(0, LockClass::kLogMu, 1)
      .lock(0, LockClass::kLogMu, 2)
      .unlock(0, LockClass::kLogMu, 2)
      .unlock(0, LockClass::kLogMu, 1);
  if (buggy) {
    t.lock(1, LockClass::kLogMu, 2)
        .lock(1, LockClass::kLogMu, 1)
        .unlock(1, LockClass::kLogMu, 1)
        .unlock(1, LockClass::kLogMu, 2);
  } else {
    t.lock(1, LockClass::kLogMu, 1)
        .lock(1, LockClass::kLogMu, 2)
        .unlock(1, LockClass::kLogMu, 2)
        .unlock(1, LockClass::kLogMu, 1);
  }
  return t.events;
}

TEST(PaxScopeLockGraph, SameClassCycleDetectedThoughOnlineSilent) {
  const std::vector<Event> bug = abba_log_mutexes(/*buggy=*/true);
  expect_online_silent(bug);

  const AnalysisReport report = analyze_one(bug);
  EXPECT_EQ(report.count(FindingKind::kLockCycle), 1u) << report.to_string();
  EXPECT_EQ(report.findings.size(), 1u) << report.to_string();
  // Both ends of the cycle are named class #instance.
  EXPECT_NE(report.findings[0].detail.find("log-mu #1"), std::string::npos);
  EXPECT_NE(report.findings[0].detail.find("log-mu #2"), std::string::npos);
}

TEST(PaxScopeLockGraph, ConsistentOrderTwinIsClean) {
  const AnalysisReport report = analyze_one(abba_log_mutexes(false));
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(PaxScopeLockGraph, CycleAggregatesAcrossTraces) {
  // Each run on its own is acyclic; only the union of the two runs' lock
  // graphs contains the inversion. No single-trace tool can see this.
  TraceBuilder a;
  a.lock(0, LockClass::kLogMu, 1)
      .lock(0, LockClass::kLogMu, 2)
      .unlock(0, LockClass::kLogMu, 2)
      .unlock(0, LockClass::kLogMu, 1);
  TraceBuilder b;
  b.lock(0, LockClass::kLogMu, 2)
      .lock(0, LockClass::kLogMu, 1)
      .unlock(0, LockClass::kLogMu, 1)
      .unlock(0, LockClass::kLogMu, 2);

  TraceAnalyzer analyzer;
  ASSERT_TRUE(analyzer.add_trace(a.events).is_ok());
  ASSERT_TRUE(analyzer.add_trace(b.events).is_ok());
  const AnalysisReport report = analyzer.finish();
  EXPECT_EQ(report.count(FindingKind::kLockCycle), 1u) << report.to_string();

  // Per-trace analysis of either half finds nothing.
  EXPECT_TRUE(analyze_one(a.events).clean());
  EXPECT_TRUE(analyze_one(b.events).clean());
}

TEST(PaxScopeLockGraph, RankViolationReportedFromAggregatedEdge) {
  // log-mu (rank 3) held while a stripe (rank 2) is acquired. The online
  // checker also fires on this order; the offline pass must agree from the
  // aggregated graph alone.
  TraceBuilder t;
  t.lock(0, LockClass::kLogMu, 1)
      .lock(0, LockClass::kStripe, 4)
      .unlock(0, LockClass::kStripe, 4)
      .unlock(0, LockClass::kLogMu, 1);
  AnalysisOptions options;
  options.online_replay = false;  // isolate the offline verdict
  TraceAnalyzer analyzer(options);
  ASSERT_TRUE(analyzer.add_trace(t.events).is_ok());
  const AnalysisReport report = analyzer.finish();
  EXPECT_EQ(report.count(FindingKind::kLockRankViolation), 1u)
      << report.to_string();
  EXPECT_NE(report.findings[0].detail.find("log-mu #1"), std::string::npos);
  EXPECT_NE(report.findings[0].detail.find("stripe #4"), std::string::npos);
}

// --- persist order: commit windows ---------------------------------------

std::vector<Event> cross_thread_commit(bool buggy) {
  // Thread 0 stores, flushes, and drains a line; thread 1 commits the
  // epoch. In the buggy variant no synchronization connects them — the
  // observed order (flush before commit) was luck, and the commit could
  // legally overtake the flush. The clean twin hands off through a mutex.
  TraceBuilder t;
  if (buggy) {
    t.add(EventType::kStore, 0, 5)
        .add(EventType::kFlush, 0, 5)
        .add(EventType::kDrain, 0)
        .add(EventType::kEpochCommit, 1, kNoLine, 1);
  } else {
    t.lock(0, LockClass::kLogMu, 9)
        .add(EventType::kStore, 0, 5)
        .add(EventType::kFlush, 0, 5)
        .add(EventType::kDrain, 0)
        .unlock(0, LockClass::kLogMu, 9)
        .lock(1, LockClass::kLogMu, 9)
        .add(EventType::kEpochCommit, 1, kNoLine, 1)
        .unlock(1, LockClass::kLogMu, 9);
  }
  return t.events;
}

TEST(PaxScopePersistOrder, UnorderedCommitWindowDetected) {
  const std::vector<Event> bug = cross_thread_commit(/*buggy=*/true);
  expect_online_silent(bug);  // flush and fence both present in seq order

  const AnalysisReport report = analyze_one(bug);
  ASSERT_EQ(report.count(FindingKind::kCommitWindow), 1u)
      << report.to_string();
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.line, 5u);
  EXPECT_EQ(f.epoch, 1u);
}

TEST(PaxScopePersistOrder, MutexHandoffTwinIsClean) {
  const AnalysisReport report = analyze_one(cross_thread_commit(false));
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(PaxScopePersistOrder, V1TraceGetsLenientInterpretation) {
  // The same unordered trace stamped v1: pre-v2 streams carry no fork/join
  // or gate material, so the strict HB requirement would flag every old
  // artifact. The lenient pass falls back to the online interpretation.
  const AnalysisReport report =
      analyze_one(cross_thread_commit(/*buggy=*/true), /*version=*/1);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(PaxScopePersistOrder, MissingDrainBetweenFlushAndCommitDetected) {
  // Flush and commit are lock-ordered, but no drain sits between them —
  // the flush may still be in flight when the commit lands. The online
  // fence rule counts flushes since the last drain globally and is
  // satisfied by the unrelated drain before the flush.
  TraceBuilder t;
  t.add(EventType::kDrain, 0)
      .lock(0, LockClass::kLogMu, 9)
      .add(EventType::kStore, 0, 5)
      .add(EventType::kFlush, 0, 5)
      .unlock(0, LockClass::kLogMu, 9)
      .lock(1, LockClass::kLogMu, 9)
      .add(EventType::kDrain, 1)
      .add(EventType::kEpochCommit, 1, kNoLine, 1)
      .unlock(1, LockClass::kLogMu, 9);
  // Thread 1's own drain IS ordered after the flush (lock edge) and before
  // the commit — covered, clean.
  EXPECT_TRUE(analyze_one(t.events).clean());

  TraceBuilder bug;
  bug.add(EventType::kDrain, 0)
      .lock(0, LockClass::kLogMu, 9)
      .add(EventType::kStore, 0, 5)
      .add(EventType::kFlush, 0, 5)
      .unlock(0, LockClass::kLogMu, 9)
      .add(EventType::kDrain, 0)  // after release: not ordered before commit
      .lock(1, LockClass::kLogMu, 9)
      .add(EventType::kEpochCommit, 1, kNoLine, 1)
      .unlock(1, LockClass::kLogMu, 9);
  const AnalysisReport report = analyze_one(bug.events);
  EXPECT_EQ(report.count(FindingKind::kCommitWindow), 1u)
      << report.to_string();
}

// --- persist order: write-back and undo-flush windows --------------------

TEST(PaxScopePersistOrder, UngatedWritebackWindowDetected) {
  // The undo record's covering log flush exists in sequence order, but the
  // write-back carries no gate observation and no HB edge reaches it: the
  // online gating rule (which compares watermarks by seq) is satisfied.
  TraceBuilder t;
  t.add(EventType::kLogAppend, 0, 5, 4096, 128)
      .add(EventType::kLogFlush, 0, kNoLine, 4096, 128)
      .add(EventType::kWriteback, 1, 5, 4096, 128);
  expect_online_silent(t.events);
  const AnalysisReport report = analyze_one(t.events);
  ASSERT_EQ(report.count(FindingKind::kWritebackWindow), 1u)
      << report.to_string();
  EXPECT_EQ(report.findings[0].logger, 4096u);
  EXPECT_EQ(report.findings[0].log_end, 128u);
}

TEST(PaxScopePersistOrder, GateObservedWritebackIsClean) {
  // Same shape, but the write-back recorded its acquire load of the
  // watermark: the analyzer joins the covering flush and stays quiet.
  TraceBuilder t;
  t.add(EventType::kLogAppend, 0, 5, 4096, 128)
      .add(EventType::kLogFlush, 0, kNoLine, 4096, 128)
      .add(EventType::kWriteback, 1, 5, 4096, 128, kFlagGateObserved);
  const AnalysisReport report = analyze_one(t.events);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.stats.gate_edges, 1u);
}

TEST(PaxScopePersistOrder, ForkJoinBracketsOrderTheWriteback) {
  // The coordinator flushes the log, then dispatches the fan-out; the
  // worker's ungated write-back is ordered through dispatch → begin.
  TraceBuilder t;
  t.add(EventType::kLogAppend, 0, 5, 4096, 128)
      .add(EventType::kLogFlush, 0, kNoLine, 4096, 128)
      .add(EventType::kTaskDispatch, 0, kNoLine, 42)
      .add(EventType::kTaskBegin, 1, kNoLine, 42)
      .add(EventType::kWriteback, 1, 5, 4096, 128)
      .add(EventType::kTaskEnd, 1, kNoLine, 42)
      .add(EventType::kTaskJoin, 0, kNoLine, 42);
  const AnalysisReport report = analyze_one(t.events);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.stats.fork_join_edges, 2u);
}

TEST(PaxScopePersistOrder, UndoFlushWindowDetected) {
  // Data line flushed while its staged undo record has no durable covering
  // log flush at all — the raw-WAL shape of the §3.3 bug. No kWriteback is
  // involved, so no online rule even applies.
  TraceBuilder t;
  t.add(EventType::kLogAppend, 0, 5, 4096, 96)
      .add(EventType::kStore, 0, 5)
      .add(EventType::kFlush, 0, 5)
      .add(EventType::kLogFlush, 0, kNoLine, 4096, 96)  // too late
      .add(EventType::kDrain, 0)
      .add(EventType::kEpochCommit, 0, kNoLine, 1);
  expect_online_silent(t.events);
  const AnalysisReport report = analyze_one(t.events);
  ASSERT_EQ(report.count(FindingKind::kUndoFlushWindow), 1u)
      << report.to_string();
  EXPECT_EQ(report.findings[0].line, 5u);
  EXPECT_EQ(report.findings[0].log_end, 96u);
}

TEST(PaxScopePersistOrder, FlushedUndoTwinIsClean) {
  TraceBuilder t;
  t.add(EventType::kLogAppend, 0, 5, 4096, 96)
      .add(EventType::kLogFlush, 0, kNoLine, 4096, 96)  // durable first
      .add(EventType::kStore, 0, 5)
      .add(EventType::kFlush, 0, 5)
      .add(EventType::kDrain, 0)
      .add(EventType::kEpochCommit, 0, kNoLine, 1);
  EXPECT_TRUE(analyze_one(t.events).clean());
}

// --- real-device traces via the seeded repair scenarios -------------------

TEST(PaxScopeScenario, UndoFlushScenarioDetectedOnlyOffline) {
  auto scenario = seeded_repair_scenario("undo-flush", /*buggy=*/true);
  ASSERT_TRUE(scenario.ok());
  auto events = record_scenario_trace(scenario.value());
  ASSERT_TRUE(events.ok()) << events.status().to_string();

  expect_online_silent(events.value());  // the whole point of the scenario

  const AnalysisReport report = analyze_one(events.value());
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.count(FindingKind::kUndoFlushWindow), 1u)
      << report.to_string();
  EXPECT_EQ(report.count(FindingKind::kOnlineViolation), 0u)
      << report.to_string();
}

TEST(PaxScopeScenario, UndoFlushCleanTwinAnalyzesQuiet) {
  auto scenario = seeded_repair_scenario("undo-flush", /*buggy=*/false);
  ASSERT_TRUE(scenario.ok());
  auto events = record_scenario_trace(scenario.value());
  ASSERT_TRUE(events.ok()) << events.status().to_string();
  const AnalysisReport report = analyze_one(events.value());
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(PaxScopeScenario, MissingFlushCleanTwinAnalyzesQuiet) {
  auto scenario = seeded_repair_scenario("missing-flush", /*buggy=*/false);
  ASSERT_TRUE(scenario.ok());
  auto events = record_scenario_trace(scenario.value());
  ASSERT_TRUE(events.ok()) << events.status().to_string();
  const AnalysisReport report = analyze_one(events.value());
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// --- report plumbing ------------------------------------------------------

TEST(PaxScopeReport, OnlineViolationsFoldIntoFindings) {
  // A plainly broken stream (store, no flush, commit): the online engine
  // fires and the analyzer surfaces it as kOnlineViolation next to its own
  // kCommitWindow (which carries the structured line + epoch for repair).
  TraceBuilder t;
  t.add(EventType::kStore, 0, 5)
      .add(EventType::kDrain, 0)
      .add(EventType::kEpochCommit, 0, kNoLine, 1);
  const AnalysisReport report = analyze_one(t.events);
  EXPECT_GE(report.count(FindingKind::kOnlineViolation), 1u)
      << report.to_string();
  EXPECT_EQ(report.count(FindingKind::kCommitWindow), 1u);
}

TEST(PaxScopeReport, JsonAndTextAreNonEmptyAndConsistent) {
  const AnalysisReport report = analyze_one(abba_log_mutexes(true));
  EXPECT_NE(report.to_string().find("lock-cycle"), std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"lock-cycle\""), std::string::npos);
  EXPECT_NE(json.find("\"hb_edges\""), std::string::npos);
}

TEST(PaxScopeReport, OutOfOrderTraceRejected) {
  TraceBuilder t;
  t.add(EventType::kStore, 0, 5).add(EventType::kFlush, 0, 5);
  std::swap(t.events[0], t.events[1]);
  TraceAnalyzer analyzer;
  EXPECT_FALSE(analyzer.add_trace(t.events).is_ok());
}

TEST(PaxScopeReport, StatsCountEdgesByKind) {
  const AnalysisReport report = analyze_one(cross_thread_commit(false));
  EXPECT_GT(report.stats.events, 0u);
  EXPECT_GT(report.stats.program_edges, 0u);
  EXPECT_GT(report.stats.lock_edges, 0u);
  EXPECT_EQ(report.stats.total_edges(),
            report.stats.program_edges + report.stats.lock_edges +
                report.stats.gate_edges + report.stats.fork_join_edges +
                report.stats.batch_edges + report.stats.pipeline_edges);
}

}  // namespace
}  // namespace pax::check
