// Seeded-bug coverage for the PaxCheck lock-discipline rules (documented
// order: sync_mu < epoch gate < stripe < log_mu, at most one stripe, no
// re-entry, no host pull while holding a stripe or the log mutex), plus a
// silence test over the real PaxDevice locking paths.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <unordered_map>

#include "pax/check/checker.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/pmem/pmem_device.hpp"
#include "test_util.hpp"

namespace pax::check {
namespace {

using pax::testing::patterned_line;
using pax::testing::TestPool;

// Injected bug: the log mutex taken before a stripe mutex — the reverse of
// the documented rank order, a latent ABBA deadlock.
TEST(PaxCheckLockDiscipline, LockOrderInversionFires) {
  Checker checker;
  checker.on_lock_acquire(LockClass::kLogMu, 0, /*shared=*/false);
  checker.on_lock_acquire(LockClass::kStripe, 3, /*shared=*/false);
  checker.on_lock_release(LockClass::kStripe, 3);
  checker.on_lock_release(LockClass::kLogMu, 0);
  checker.on_drain();

  auto report = checker.report();
  EXPECT_EQ(report.count(Rule::kLockOrderInversion), 1u);
  EXPECT_EQ(report.violations.size(), 1u);
}

// Injected bug: two stripe mutexes held at once — the striped data path
// promises at most one so stripes can't deadlock against each other.
TEST(PaxCheckLockDiscipline, DoubleStripeLockFires) {
  Checker checker;
  checker.on_lock_acquire(LockClass::kStripe, 1, false);
  checker.on_lock_acquire(LockClass::kStripe, 2, false);
  checker.on_lock_release(LockClass::kStripe, 2);
  checker.on_lock_release(LockClass::kStripe, 1);
  checker.on_drain();

  auto report = checker.report();
  EXPECT_EQ(report.count(Rule::kDoubleStripeLock), 1u);
  // The second stripe also outranks nothing: no spurious inversion.
  EXPECT_EQ(report.count(Rule::kLockOrderInversion), 0u);
}

// Injected bug: re-acquiring a non-recursive mutex on the same thread.
TEST(PaxCheckLockDiscipline, SelfDeadlockFires) {
  Checker checker;
  checker.on_lock_acquire(LockClass::kLogMu, 5, false);
  checker.on_lock_acquire(LockClass::kLogMu, 5, false);
  checker.on_lock_release(LockClass::kLogMu, 5);
  checker.on_lock_release(LockClass::kLogMu, 5);
  checker.on_drain();

  auto report = checker.report();
  EXPECT_EQ(report.count(Rule::kLockSelfDeadlock), 1u);
}

// The epoch gate is a shared_mutex: concurrent shared holders on distinct
// threads are normal and must not read as re-entry on one thread.
TEST(PaxCheckLockDiscipline, SharedEpochGateAcrossThreadsIsClean) {
  Checker checker;
  checker.on_lock_acquire(LockClass::kEpochGate, 0, /*shared=*/true);
  std::thread other([&] {
    checker.on_lock_acquire(LockClass::kEpochGate, 0, /*shared=*/true);
    checker.on_lock_release(LockClass::kEpochGate, 0);
  });
  other.join();
  checker.on_lock_release(LockClass::kEpochGate, 0);
  checker.on_drain();
  EXPECT_TRUE(checker.report().clean()) << checker.report().to_string();
}

// Injected bug: invoking the host pull callback while a stripe mutex is
// held — the pull re-enters libpax, which may persist() back into the
// device and block on that same stripe.
TEST(PaxCheckLockDiscipline, PullWhileLockedFires) {
  Checker checker;
  checker.on_lock_acquire(LockClass::kStripe, 4, false);
  checker.on_pull_invoke(17);
  checker.on_lock_release(LockClass::kStripe, 4);
  checker.on_drain();

  auto report = checker.report();
  EXPECT_EQ(report.count(Rule::kPullWhileLocked), 1u);
}

TEST(PaxCheckLockDiscipline, PullOutsideLocksIsClean) {
  Checker checker;
  checker.on_lock_acquire(LockClass::kStripe, 4, false);
  checker.on_lock_release(LockClass::kStripe, 4);
  checker.on_pull_invoke(17);
  checker.on_drain();
  EXPECT_TRUE(checker.report().clean()) << checker.report().to_string();
}

// The full documented order, one lock of every class, is silent.
TEST(PaxCheckLockDiscipline, DocumentedOrderIsClean) {
  Checker checker;
  checker.on_lock_acquire(LockClass::kSyncMu, 0, false);
  checker.on_lock_acquire(LockClass::kEpochGate, 0, /*shared=*/true);
  checker.on_lock_acquire(LockClass::kStripe, 2, false);
  checker.on_lock_release(LockClass::kStripe, 2);
  checker.on_lock_acquire(LockClass::kLogMu, 0, false);
  checker.on_lock_release(LockClass::kLogMu, 0);
  checker.on_lock_release(LockClass::kEpochGate, 0);
  checker.on_lock_release(LockClass::kSyncMu, 0);
  checker.on_drain();
  EXPECT_TRUE(checker.report().clean()) << checker.report().to_string();
}

// Two devices sharing one checker (the replication topology) each have a
// stripe 0 and a log mutex; the per-device lock ids must keep them from
// reading as double-stripe or re-entry.
TEST(PaxCheckLockDiscipline, TwoDevicesDoNotAliasLockIds) {
  auto tp = TestPool::create();
  Checker checker;
  tp.device->set_checker(&checker);

  device::DeviceConfig config;
  config.hbm.capacity_lines = 64;
  config.hbm.ways = 4;
  device::PaxDevice a(&tp.pool, config);
  device::PaxDevice b(&tp.pool, config);
  ASSERT_TRUE(a.write_intent(tp.data_line(0)).is_ok());
  a.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(b.write_intent(tp.data_line(1)).is_ok());
  b.writeback_line(tp.data_line(1), patterned_line(2));
  a.tick(/*force_flush=*/true);
  b.tick(/*force_flush=*/true);

  EXPECT_TRUE(checker.report().clean()) << checker.report().to_string();
  tp.device->set_checker(nullptr);
}

// The real device's full locking surface — write intents, write-backs,
// ticks, the two-phase seal/commit overlap, and a plain persist — must be
// silent under the discipline rules.
TEST(PaxCheckLockDiscipline, RealDevicePathsAreClean) {
  auto tp = TestPool::create();
  Checker checker;
  tp.device->set_checker(&checker);
  {
    device::DeviceConfig config;
    config.hbm.capacity_lines = 64;
    config.hbm.ways = 4;
    device::PaxDevice dev(&tp.pool, config);

    std::unordered_map<std::uint64_t, LineData> host;
    auto pull = [&](LineIndex line) -> std::optional<LineData> {
      auto it = host.find(line.value);
      if (it == host.end()) return std::nullopt;
      return it->second;
    };

    for (std::uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(dev.write_intent(tp.data_line(i)).is_ok());
      dev.writeback_line(tp.data_line(i), patterned_line(i));
      host[tp.data_line(i).value] = patterned_line(100 + i);
    }
    dev.tick();
    ASSERT_TRUE(dev.seal_epoch(pull).ok());
    for (std::uint64_t i = 0; i < 4; ++i) {  // overlap the next epoch
      ASSERT_TRUE(dev.write_intent(tp.data_line(8 + i)).is_ok());
      dev.writeback_line(tp.data_line(8 + i), patterned_line(8 + i));
    }
    ASSERT_TRUE(dev.commit_sealed().ok());
    ASSERT_TRUE(dev.persist(pull).ok());
    dev.tick(/*force_flush=*/true);
    (void)dev.stripe_stats();
    (void)dev.stats();
  }
  auto report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GT(report.diagnostics.events, 0u);
  tp.device->set_checker(nullptr);
}

}  // namespace
}  // namespace pax::check
