#include "pax/libpax/heap.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace pax::libpax {
namespace {

// Page-aligned zeroed window (the heap requires page alignment so that
// offset alignment implies pointer alignment).
struct AlignedWindow {
  explicit AlignedWindow(std::size_t n)
      : size(n),
        data(static_cast<std::byte*>(std::aligned_alloc(4096, n))) {
    std::memset(data, 0, n);
  }
  ~AlignedWindow() { std::free(data); }
  std::size_t size;
  std::byte* data;
};

struct HeapFixture : ::testing::Test {
  AlignedWindow window{1 << 20};
  PaxHeap heap{window.data, window.size};
};

TEST_F(HeapFixture, FreshWindowIsFormatted) {
  EXPECT_FALSE(heap.recovered());
  EXPECT_EQ(heap.root_offset(), 0u);
}

TEST_F(HeapFixture, AllocateReturnsAlignedDistinctBlocks) {
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = heap.allocate(24);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST_F(HeapFixture, OveralignedAllocationHonoured) {
  for (std::size_t align : {32u, 64u, 256u, 4096u}) {
    void* p = heap.allocate(100, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
  }
}

TEST_F(HeapFixture, FreeListRecyclesSameClass) {
  void* a = heap.allocate(48);  // class 64
  heap.deallocate(a);
  void* b = heap.allocate(60);  // same class
  EXPECT_EQ(a, b);
  EXPECT_EQ(heap.stats().freelist_hits, 1u);
}

TEST_F(HeapFixture, DifferentClassesDoNotCrossRecycle) {
  void* a = heap.allocate(48);  // class 64
  heap.deallocate(a);
  void* b = heap.allocate(200);  // class 256
  EXPECT_NE(a, b);
  EXPECT_EQ(heap.stats().freelist_hits, 0u);
}

TEST_F(HeapFixture, FreeListIsLifo) {
  void* a = heap.allocate(16);
  void* b = heap.allocate(16);
  heap.deallocate(a);
  heap.deallocate(b);
  EXPECT_EQ(heap.allocate(16), b);
  EXPECT_EQ(heap.allocate(16), a);
}

TEST_F(HeapFixture, WriteFullBlockDoesNotCorruptNeighbors) {
  void* a = heap.allocate(64);
  void* b = heap.allocate(64);
  std::memset(a, 0xaa, 64);
  std::memset(b, 0xbb, 64);
  heap.deallocate(a);
  heap.deallocate(b);
  // Reallocate and write again: headers must still be intact (deallocate
  // PAX_CHECKs the header).
  void* c = heap.allocate(64);
  std::memset(c, 0xcc, 64);
  heap.deallocate(c);
}

TEST_F(HeapFixture, ExhaustionReturnsNull) {
  // 1 MiB window: a few 256 KiB blocks fit, then nullptr (not a crash).
  std::size_t got = 0;
  while (heap.allocate(256 * 1024) != nullptr) ++got;
  EXPECT_GE(got, 2u);
  EXPECT_LE(got, 4u);
  // Small allocations may still fit afterwards or not; must not crash.
  (void)heap.allocate(16);
}

TEST_F(HeapFixture, LargeBlocksBumpOnlyAndDropOnFree) {
  void* p = heap.allocate((1 << 20) / 2 + 1);  // beyond kMaxClassSize? no: 512KiB+1 → class 1MiB > window/2
  // With a 1 MiB window a 1 MiB-class reservation fails: accept either
  // outcome but exercise the large path with a smaller window case below.
  if (p != nullptr) heap.deallocate(p);

  AlignedWindow big_window(8 << 20);
  PaxHeap big(big_window.data, big_window.size);
  void* large = big.allocate((2 << 20));  // > kMaxClassSize: bump-only
  ASSERT_NE(large, nullptr);
  big.deallocate(large);
  EXPECT_EQ(big.stats().large_frees_dropped, 1u);
  void* next = big.allocate(2 << 20);
  EXPECT_NE(next, large);  // not recycled
}

TEST_F(HeapFixture, RootOffsetRoundTrips) {
  void* p = heap.allocate(128);
  heap.set_root_offset(heap.ptr_to_offset(p));
  EXPECT_EQ(heap.offset_to_ptr(heap.root_offset()), p);
}

TEST_F(HeapFixture, ReattachRecoversStateIncludingFreeLists) {
  void* a = heap.allocate(32);
  void* b = heap.allocate(32);
  std::memset(b, 0x7e, 32);
  heap.deallocate(a);
  heap.set_root_offset(heap.ptr_to_offset(b));

  // Reattach over the same bytes: everything persists (header is in-window).
  PaxHeap again(window.data, window.size);
  EXPECT_TRUE(again.recovered());
  EXPECT_EQ(again.offset_to_ptr(again.root_offset()), b);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(static_cast<std::byte*>(b)[i], std::byte{0x7e});
  }
  // The free list survived: class-32 allocation reuses a's slot.
  EXPECT_EQ(again.allocate(32), a);
}

TEST_F(HeapFixture, ZeroByteAllocationIsValid) {
  void* p = heap.allocate(0);
  EXPECT_NE(p, nullptr);
  heap.deallocate(p);
}

TEST_F(HeapFixture, DeallocateNullIsNoop) {
  heap.deallocate(nullptr);
  EXPECT_EQ(heap.stats().frees, 0u);
}

TEST(HeapDeathTest, ForeignPointerFreeAborts) {
  AlignedWindow window(1 << 20);
  PaxHeap heap(window.data, window.size);
  int x = 0;
  EXPECT_DEATH(heap.deallocate(&x), "outside the heap");
}

}  // namespace
}  // namespace pax::libpax
