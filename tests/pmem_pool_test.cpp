#include "pax/pmem/pool.hpp"

#include <gtest/gtest.h>

#include "pax/common/types.hpp"
#include "test_util.hpp"

namespace pax::pmem {
namespace {

TEST(PmemPoolTest, CreateThenOpenRoundTrips) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  auto created = PmemPool::create(dev.get(), 64 * 1024);
  ASSERT_TRUE(created.ok()) << created.status().to_string();

  auto opened = PmemPool::open(dev.get());
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value().log_offset(), kPoolHeaderSize);
  EXPECT_EQ(opened.value().log_size(), 64u * 1024);
  EXPECT_EQ(opened.value().data_offset(), kPoolHeaderSize + 64 * 1024);
  EXPECT_EQ(opened.value().data_size(),
            (1 << 20) - kPoolHeaderSize - 64 * 1024);
  EXPECT_EQ(opened.value().committed_epoch(), 0u);
}

TEST(PmemPoolTest, HeaderIsDurableAtCreate) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  ASSERT_TRUE(PmemPool::create(dev.get(), 64 * 1024).ok());
  dev->crash(CrashConfig::drop_all());
  auto opened = PmemPool::open(dev.get());
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
}

TEST(PmemPoolTest, OpenUnformattedDeviceFails) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  auto opened = PmemPool::open(dev.get());
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(PmemPoolTest, CorruptedHeaderDetected) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  ASSERT_TRUE(PmemPool::create(dev.get(), 64 * 1024).ok());
  // Flip a byte inside the geometry fields (durably).
  std::uint64_t bad = dev->load_u64(24) ^ 1;
  dev->atomic_durable_store_u64(24, bad);
  auto opened = PmemPool::open(dev.get());
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(PmemPoolTest, EpochCellCommitIsDurable) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  auto pool = PmemPool::create(dev.get(), 64 * 1024).value();
  pool.commit_epoch(5);
  dev->crash(CrashConfig::drop_all());
  EXPECT_EQ(pool.committed_epoch(), 5u);
}

TEST(PmemPoolTest, RootCellIsDurable) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  auto pool = PmemPool::create(dev.get(), 64 * 1024).value();
  pool.set_root(pool.data_offset() + 4096);
  dev->crash(CrashConfig::drop_all());
  EXPECT_EQ(pool.root(), pool.data_offset() + 4096);
}

TEST(PmemPoolTest, EpochAndRootLiveInSeparateLines) {
  // Committing the epoch must never drag a half-written root along (and
  // vice versa): the cells sit in distinct cache lines.
  EXPECT_NE(LineIndex::containing(kEpochCellOffset),
            LineIndex::containing(kRootCellOffset));
  EXPECT_NE(LineIndex::containing(kEpochCellOffset), LineIndex{0});
}

TEST(PmemPoolTest, FutureVersionRejected) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  ASSERT_TRUE(PmemPool::create(dev.get(), 64 * 1024).ok());
  // Bump the version field (offset 8, u32) — CRC does not cover it the same
  // way... it does cover nothing before `pool_size`; version+crc live in
  // word 1. Rewrite version while keeping the CRC: the open must fail on
  // the version check (or CRC, either way: refuse).
  std::uint64_t word = dev->load_u64(8);
  dev->atomic_durable_store_u64(8, (word & ~0xffffffffULL) | 99);
  auto opened = PmemPool::open(dev.get());
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(PmemPoolTest, RejectsTooSmallDevice) {
  auto dev = PmemDevice::create_in_memory(8192);
  auto created = PmemPool::create(dev.get(), 64 * 1024);
  EXPECT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

TEST(PmemPoolTest, RejectsUnalignedLogSize) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  auto created = PmemPool::create(dev.get(), 1000);
  EXPECT_FALSE(created.ok());
}

TEST(PmemPoolTest, ReformattingResetsEpoch) {
  auto dev = PmemDevice::create_in_memory(1 << 20);
  auto pool = PmemPool::create(dev.get(), 64 * 1024).value();
  pool.commit_epoch(9);
  auto pool2 = PmemPool::create(dev.get(), 64 * 1024).value();
  EXPECT_EQ(pool2.committed_epoch(), 0u);
}

}  // namespace
}  // namespace pax::pmem
