// The headline black-box claim: *unmodified* standard containers become
// crash-consistent persistent structures through libpax (paper §1, §3.1,
// Listing 1). These tests put std::unordered_map / std::vector / std::list
// in vPM via PaxStlAllocator, crash the simulated PM at adversarial points,
// and verify snapshot semantics.
#include "pax/libpax/persistent.hpp"

#include <gtest/gtest.h>

#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "pax/libpax/stl_allocator.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 32 << 20;

using MapAlloc = PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
using PMap = std::unordered_map<std::uint64_t, std::uint64_t,
                                std::hash<std::uint64_t>,
                                std::equal_to<std::uint64_t>, MapAlloc>;
using PVector = std::vector<std::uint64_t, PaxStlAllocator<std::uint64_t>>;
using PList = std::list<std::uint64_t, PaxStlAllocator<std::uint64_t>>;

RuntimeOptions options() {
  RuntimeOptions o;
  o.log_size = 2 << 20;
  o.device.log_flush_batch_bytes = 0;
  return o;
}

TEST(PersistentTest, UnorderedMapInsertPersistRecover) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    EXPECT_FALSE(map.recovered());
    for (std::uint64_t k = 0; k < 500; ++k) (*map)[k] = k * 100;
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    EXPECT_TRUE(map.recovered());
    ASSERT_EQ(map->size(), 500u);
    for (std::uint64_t k = 0; k < 500; ++k) {
      ASSERT_EQ(map->at(k), k * 100) << k;
    }
  }
}

TEST(PersistentTest, UnpersistedInsertsVanishPersistedOnesRemain) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    for (std::uint64_t k = 0; k < 100; ++k) (*map)[k] = 1;
    ASSERT_TRUE(rt->persist().ok());
    for (std::uint64_t k = 100; k < 200; ++k) (*map)[k] = 2;  // doomed
    (*map)[5] = 999;                                          // doomed update
    map->erase(7);                                            // doomed erase
    rt->sync_step();  // push doomed state toward PM: rollback must undo it
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    ASSERT_EQ(map->size(), 100u);
    EXPECT_EQ(map->at(5), 1u);
    EXPECT_EQ(map->count(7), 1u);
    EXPECT_EQ(map->count(150), 0u);
  }
}

TEST(PersistentTest, CrashBeforeFirstPersistGivesFreshInstance) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    for (std::uint64_t k = 0; k < 50; ++k) (*map)[k] = k;
    rt->sync_step();
    // No persist.
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    EXPECT_FALSE(map.recovered());  // §3.4: "a new, empty instance"
    EXPECT_TRUE(map->empty());
  }
}

TEST(PersistentTest, MultipleEpochsAccumulate) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    for (Epoch e = 0; e < 10; ++e) {
      for (std::uint64_t k = 0; k < 50; ++k) (*map)[e * 50 + k] = e;
      ASSERT_TRUE(rt->persist().ok());
    }
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    EXPECT_EQ(rt->committed_epoch(), 10u);
    auto map = Persistent<PMap>::open(*rt).value();
    ASSERT_EQ(map->size(), 500u);
    for (std::uint64_t k = 0; k < 500; ++k) EXPECT_EQ(map->at(k), k / 50);
  }
}

TEST(PersistentTest, VectorGrowthAcrossReallocations) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto vec = Persistent<PVector>::open(*rt).value();
    for (std::uint64_t i = 0; i < 10000; ++i) vec->push_back(i * 3);
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto vec = Persistent<PVector>::open(*rt).value();
    ASSERT_EQ(vec->size(), 10000u);
    for (std::uint64_t i = 0; i < 10000; ++i) ASSERT_EQ((*vec)[i], i * 3);
  }
}

TEST(PersistentTest, ListNodesScatteredAcrossHeap) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto list = Persistent<PList>::open(*rt).value();
    for (std::uint64_t i = 0; i < 1000; ++i) list->push_back(i);
    // Delete every other node: exercises free lists crossing epochs.
    auto it = list->begin();
    while (it != list->end()) {
      it = list->erase(it);
      if (it != list->end()) ++it;
    }
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto list = Persistent<PList>::open(*rt).value();
    ASSERT_EQ(list->size(), 500u);
    std::uint64_t expect = 1;
    for (std::uint64_t v : *list) {
      EXPECT_EQ(v, expect);
      expect += 2;
    }
  }
}

TEST(PersistentTest, TypeMismatchDetected) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    ASSERT_TRUE(Persistent<PMap>::open(*rt).ok());
    ASSERT_TRUE(rt->persist().ok());
  }
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto wrong = Persistent<PVector>::open(*rt);
    EXPECT_FALSE(wrong.ok());
    EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(PersistentTest, HeapFreeListRollsBackWithData) {
  // An erase in a doomed epoch pushes nodes onto the heap free list; after
  // rollback those nodes must be live again — allocator metadata and data
  // roll back together because both live in vPM.
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    for (std::uint64_t k = 0; k < 100; ++k) (*map)[k] = k;
    ASSERT_TRUE(rt->persist().ok());
    for (std::uint64_t k = 0; k < 100; ++k) map->erase(k);  // doomed frees
    rt->sync_step();
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    ASSERT_EQ(map->size(), 100u);
    // And the structure stays fully usable for further mutation.
    for (std::uint64_t k = 100; k < 200; ++k) (*map)[k] = k;
    ASSERT_TRUE(rt->persist().ok());
    EXPECT_EQ(map->size(), 200u);
  }
}

TEST(PersistentTest, CustomFactorySeedsObject) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  struct Config {
    std::uint64_t a;
    double b;
  };
  auto cfg = Persistent<Config>::open(*rt, [](void* mem) {
    new (mem) Config{7, 2.5};
  }).value();
  EXPECT_EQ(cfg->a, 7u);
  EXPECT_EQ(cfg->b, 2.5);
}

}  // namespace
}  // namespace pax::libpax
