// KvServer over loopback: basic ops, pipelined ordering, commit modes, the
// STATS surface, protocol-error handling, and a concurrent torture run —
// all run parametrically over the full serving matrix
// {epoll, io_uring} × {1, 4} event loops, so both EventBackends and the
// multi-loop SO_REUSEPORT path must behave byte-identically (io_uring
// cases skip gracefully when the build or kernel lacks support).
// This test rides in the TSan CI job: the torture case at 4 loops is the
// data-race check for the loop / shard worker / coordinator handoffs.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "pax/kv/client.hpp"
#include "pax/kv/server.hpp"

namespace pax::kv {
namespace {

using ServerParam = std::tuple<KvServerOptions::Backend, std::size_t>;

class KvServerMatrix : public ::testing::TestWithParam<ServerParam> {
 protected:
  void SetUp() override {
    if (std::get<0>(GetParam()) == KvServerOptions::Backend::kIoUring &&
        !KvServer::io_uring_supported()) {
      GTEST_SKIP() << "io_uring not supported here (build or kernel)";
    }
  }

  KvServerOptions small_options(KvServerOptions::CommitMode mode) const {
    KvServerOptions options;
    options.port = 0;  // ephemeral
    options.commit_mode = mode;
    options.backend = std::get<0>(GetParam());
    options.loop_threads = std::get<1>(GetParam());
    options.store.shards = 2;
    options.store.shard_pool_bytes = 8 << 20;
    options.store.map_shards = 4;
    return options;
  }
};

Result<KvClient> connect_to(const KvServer& server) {
  return KvClient::connect("127.0.0.1", server.port());
}

TEST_P(KvServerMatrix, BasicOps) {
  auto server = KvServer::start(
      small_options(KvServerOptions::CommitMode::kGroup));
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = connect_to(*server.value());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  KvClient& c = client.value();

  auto miss = c.get("absent");
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss.value().status, RespStatus::kNotFound);

  auto put = c.put("alpha", "1");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put.value().status, RespStatus::kOk);

  auto hit = c.get("alpha");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().status, RespStatus::kOk);
  EXPECT_EQ(hit.value().value, "1");

  auto del = c.del("alpha");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().status, RespStatus::kOk);

  auto gone = c.get("alpha");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone.value().status, RespStatus::kNotFound);

  auto del_miss = c.del("alpha");
  ASSERT_TRUE(del_miss.ok());
  EXPECT_EQ(del_miss.value().status, RespStatus::kNotFound);
}

TEST_P(KvServerMatrix, OverwriteReturnsLatest) {
  auto server = KvServer::start(
      small_options(KvServerOptions::CommitMode::kGroup));
  ASSERT_TRUE(server.ok());
  auto client = connect_to(*server.value());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 16; ++i) {
    auto put = client.value().put("k", "v" + std::to_string(i));
    ASSERT_TRUE(put.ok());
    ASSERT_EQ(put.value().status, RespStatus::kOk);
  }
  auto got = client.value().get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().value, "v15");
}

TEST_P(KvServerMatrix, PipelinedResponsesArriveInRequestOrder) {
  auto server = KvServer::start(
      small_options(KvServerOptions::CommitMode::kGroup));
  ASSERT_TRUE(server.ok());
  auto client = connect_to(*server.value());
  ASSERT_TRUE(client.ok());
  KvClient& c = client.value();

  constexpr int kN = 200;  // keys spray across both shards
  for (int i = 0; i < kN; ++i) {
    c.send_put("pipe-" + std::to_string(i), "v" + std::to_string(i));
  }
  for (int i = 0; i < kN; ++i) c.send_get("pipe-" + std::to_string(i));
  ASSERT_TRUE(c.flush().is_ok());

  for (int i = 0; i < kN; ++i) {
    auto resp = c.recv_response();
    ASSERT_TRUE(resp.ok()) << i;
    EXPECT_EQ(resp.value().status, RespStatus::kOk) << i;
  }
  for (int i = 0; i < kN; ++i) {
    auto resp = c.recv_response();
    ASSERT_TRUE(resp.ok()) << i;
    ASSERT_EQ(resp.value().status, RespStatus::kOk) << i;
    EXPECT_EQ(resp.value().value, "v" + std::to_string(i)) << i;
  }
}

TEST_P(KvServerMatrix, IndependentAndVolatileModes) {
  for (auto mode : {KvServerOptions::CommitMode::kIndependent,
                    KvServerOptions::CommitMode::kVolatile}) {
    auto server = KvServer::start(small_options(mode));
    ASSERT_TRUE(server.ok());
    auto client = connect_to(*server.value());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 50; ++i) {
      auto put =
          client.value().put("m" + std::to_string(i), std::to_string(i));
      ASSERT_TRUE(put.ok());
      ASSERT_EQ(put.value().status, RespStatus::kOk);
    }
    auto got = client.value().get("m7");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().value, "7");
  }
}

TEST_P(KvServerMatrix, StatsExposesShardRuntimeAndGroupCommit) {
  auto server = KvServer::start(
      small_options(KvServerOptions::CommitMode::kGroup));
  ASSERT_TRUE(server.ok());
  auto client = connect_to(*server.value());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(client.value().put("s" + std::to_string(i), "x").ok());
  }
  auto stats = client.value().stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().status, RespStatus::kOk);
  const std::string& json = stats.value().value;
  // Spot checks of the observability surface (scripts/check_paxkv.py and
  // the loadgen parse this for real).
  for (const char* needle :
       {"\"commit_mode\": \"group\"", "\"backend\"", "\"loops\"",
        "\"log_flushes_total\"", "\"acked_write_ops\"", "\"group_commit\"",
        "\"waves\"", "\"shard_stats\"", "\"sync\"", "\"tuner_decisions\"",
        "\"last_batch_lines\"", "\"pipeline\"", "\"ring_appends\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n"
                                                    << json;
  }
  // The serving-plane shape must reflect the parametrized configuration.
  const std::string backend_line =
      std::string("\"backend\": \"") + server.value()->backend_name() + "\"";
  EXPECT_NE(json.find(backend_line), std::string::npos) << json;
  const std::string loops_line =
      "\"loops\": " + std::to_string(std::get<1>(GetParam()));
  EXPECT_NE(json.find(loops_line), std::string::npos) << json;
  // 64 acked PUTs must be visible in the group-commit accounting.
  const auto pos = json.find("\"acked_write_ops\": ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_NE(json.substr(pos, 40).find("64"), std::string::npos) << json;
}

TEST_P(KvServerMatrix, MalformedFrameClosesConnection) {
  auto server = KvServer::start(
      small_options(KvServerOptions::CommitMode::kVolatile));
  ASSERT_TRUE(server.ok());

  // Raw socket: an oversized length word is unrecoverable framing — the
  // server must close the connection (recv sees EOF), not hang or crash.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.value()->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const unsigned char garbage[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 4);
  char buf[16];
  EXPECT_EQ(recv(fd, buf, sizeof(buf), 0), 0);  // orderly EOF
  ::close(fd);

  // The server keeps serving healthy connections afterwards.
  auto client = connect_to(*server.value());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().put("ok", "1").ok());
  EXPECT_GE(server.value()->stats().protocol_errors, 1u);
}

// The TSan torture: concurrent clients hammer both shards through every
// handoff (event loops → worker → coordinator → event loops) while STATS
// reads the runtime counters. At loop_threads = 4 the clients land on
// different SO_REUSEPORT loops, exercising cross-loop completion routing.
TEST_P(KvServerMatrix, ConcurrentTorture) {
  auto options = small_options(KvServerOptions::CommitMode::kGroup);
  options.group_max_ops = 32;
  auto server = KvServer::start(options);
  ASSERT_TRUE(server.ok());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  // vector<char>, not vector<bool>: each thread owns a distinct byte.
  std::vector<char> success(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &success, &server] {
      auto client = connect_to(*server.value());
      if (!client.ok()) return;
      KvClient& c = client.value();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i % 37);
        if (i % 3 == 0) {
          auto r = c.put(key, std::to_string(i));
          if (!r.ok() || r.value().status != RespStatus::kOk) return;
        } else if (i % 3 == 1) {
          auto r = c.get(key);
          if (!r.ok()) return;
        } else if (i % 16 == 2) {
          auto r = c.del(key);
          if (!r.ok()) return;
        } else {
          auto r = c.stats();
          if (!r.ok() || r.value().status != RespStatus::kOk) return;
        }
      }
      success[t] = 1;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(success[t]) << t;

  // Every thread's last-written key must be readable afterwards.
  auto client = connect_to(*server.value());
  ASSERT_TRUE(client.ok());
  const KvServerStats stats = server.value()->stats();
  EXPECT_GE(stats.requests,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server.value()->stop();  // explicit stop before destruction: idempotent
}

std::string param_name(const ::testing::TestParamInfo<ServerParam>& info) {
  const char* backend =
      std::get<0>(info.param) == KvServerOptions::Backend::kEpoll
          ? "epoll"
          : "io_uring";
  return std::string(backend) + "_loops" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ServingMatrix, KvServerMatrix,
    ::testing::Combine(::testing::Values(KvServerOptions::Backend::kEpoll,
                                         KvServerOptions::Backend::kIoUring),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    param_name);

}  // namespace
}  // namespace pax::kv
