// Randomized property tests of the persistent heap: long alloc/free
// sequences model-checked against a reference — live blocks never overlap,
// contents survive until freed, alignment always honoured — plus
// reattach-mid-sequence (the heap's state is all in-window, so reattaching
// at any point must be transparent).
#include "pax/libpax/heap.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "pax/common/rng.hpp"

namespace pax::libpax {
namespace {

struct AlignedWindow {
  explicit AlignedWindow(std::size_t n)
      : size(n), data(static_cast<std::byte*>(std::aligned_alloc(4096, n))) {
    std::memset(data, 0, n);
  }
  ~AlignedWindow() { std::free(data); }
  std::size_t size;
  std::byte* data;
};

struct LiveBlock {
  std::size_t size;
  std::uint8_t fill;
};

class HeapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapProperty, RandomAllocFreeSequence) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  AlignedWindow window(8 << 20);
  auto heap = std::make_unique<PaxHeap>(window.data, window.size);

  // ordered by address → overlap checking is a neighbor test.
  std::map<std::byte*, LiveBlock> live;
  std::uint8_t next_fill = 1;

  auto check_no_overlap = [&](std::byte* p, std::size_t n) {
    auto next = live.lower_bound(p);
    if (next != live.end()) {
      ASSERT_LE(p + n, next->first) << "overlaps following block";
    }
    if (next != live.begin()) {
      auto prev = std::prev(next);
      ASSERT_LE(prev->first + prev->second.size, p)
          << "overlaps preceding block";
    }
  };

  for (int op = 0; op < 20000; ++op) {
    const double dice = rng.next_double();

    if (dice < 0.02) {
      // Reattach: all heap state is inside the window, so a brand-new
      // PaxHeap over the same bytes must observe everything.
      heap = std::make_unique<PaxHeap>(window.data, window.size);
      ASSERT_TRUE(heap->recovered());
    } else if (dice < 0.6 || live.empty()) {
      // Allocate: size spans the class spectrum, occasionally huge.
      std::size_t n = 1 + rng.next_below(200);
      if (rng.next_double() < 0.05) n = 1 + rng.next_below(8000);
      const std::size_t align = std::size_t{16}
                                << rng.next_below(3);  // 16/32/64
      auto* p = static_cast<std::byte*>(heap->allocate(n, align));
      if (p == nullptr) continue;  // exhaustion is legal
      ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
      ASSERT_GE(p, window.data);
      ASSERT_LE(p + n, window.data + window.size);
      check_no_overlap(p, n);
      std::memset(p, next_fill, n);
      live[p] = {n, next_fill};
      next_fill = static_cast<std::uint8_t>(next_fill % 250 + 1);
    } else {
      // Free a random live block — after verifying its bytes survived
      // every intervening allocation.
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      for (std::size_t b = 0; b < it->second.size; ++b) {
        ASSERT_EQ(it->first[b], static_cast<std::byte>(it->second.fill))
            << "byte " << b << " of a live block was clobbered";
      }
      heap->deallocate(it->first);
      live.erase(it);
    }
  }

  // Final sweep: every remaining live block is intact.
  for (const auto& [p, block] : live) {
    for (std::size_t b = 0; b < block.size; ++b) {
      ASSERT_EQ(p[b], static_cast<std::byte>(block.fill));
    }
  }
  // (Stats are volatile per-instance counters and reset on reattach, so no
  // cross-sequence stats invariant holds here.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace pax::libpax
