// Unit tests of the PaxDevice core: first-touch undo logging, asynchronous
// write-back gating, the persist() epoch-commit protocol, and recovery.
#include "pax/device/pax_device.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "pax/device/recovery.hpp"
#include "test_util.hpp"

namespace pax::device {
namespace {

using testing::patterned_line;
using testing::TestPool;

struct PaxDeviceFixture : ::testing::Test {
  TestPool tp = TestPool::create();

  DeviceConfig config() {
    DeviceConfig c;
    c.hbm.capacity_lines = 64;
    c.hbm.ways = 4;
    return c;
  }
};

TEST_F(PaxDeviceFixture, ReadLineServesPmContents) {
  tp.device->store_line(tp.data_line(0), patterned_line(7));
  tp.device->flush_line(tp.data_line(0));

  PaxDevice dev(&tp.pool, config());
  EXPECT_EQ(dev.read_line(tp.data_line(0)), patterned_line(7));
  EXPECT_EQ(dev.stats().read_pm, 1u);
  // Second read hits the HBM cache.
  EXPECT_EQ(dev.read_line(tp.data_line(0)), patterned_line(7));
  EXPECT_EQ(dev.stats().read_hbm_hits, 1u);
  EXPECT_EQ(dev.stats().read_pm, 1u);
}

TEST_F(PaxDeviceFixture, WriteIntentLogsPreImageOncePerEpoch) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(3)).is_ok());
  ASSERT_TRUE(dev.write_intent(tp.data_line(3)).is_ok());
  ASSERT_TRUE(dev.write_intent(tp.data_line(4)).is_ok());
  EXPECT_EQ(dev.stats().write_intents, 3u);
  EXPECT_EQ(dev.stats().first_touch_logs, 2u);
  EXPECT_EQ(dev.epoch_logged_lines(), 2u);
}

TEST_F(PaxDeviceFixture, EpochStartsAtCommittedPlusOne) {
  tp.pool.commit_epoch(41);
  PaxDevice dev(&tp.pool, config());
  EXPECT_EQ(dev.current_epoch(), 42u);
}

TEST_F(PaxDeviceFixture, HostWritebackWithoutWriteIntentAborts) {
  PaxDevice dev(&tp.pool, config());
  EXPECT_DEATH(dev.writeback_line(tp.data_line(0), patterned_line(1)),
               "never took write ownership");
}

TEST_F(PaxDeviceFixture, PersistCommitsEpochAndAdvances) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));

  auto committed = dev.persist(nullptr);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), 1u);
  EXPECT_EQ(tp.pool.committed_epoch(), 1u);
  EXPECT_EQ(dev.current_epoch(), 2u);
  EXPECT_EQ(dev.epoch_logged_lines(), 0u);

  // Data durable on media.
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(1));
}

TEST_F(PaxDeviceFixture, PersistPullsHostCopiesInPreferenceToBuffer) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));  // stale buffer

  // Host modified the line again after the writeback; persist's pull must win.
  auto pull = [&](LineIndex line) -> std::optional<LineData> {
    EXPECT_EQ(line, tp.data_line(0));
    return patterned_line(2);
  };
  ASSERT_TRUE(dev.persist(pull).ok());
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(2));
  // And later reads must not resurrect the stale buffered copy.
  EXPECT_EQ(dev.read_line(tp.data_line(0)), patterned_line(2));
}

TEST_F(PaxDeviceFixture, CrashBeforePersistRecoversOldSnapshot) {
  // Establish epoch 1 with known content.
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.persist(nullptr).ok());

  // Epoch 2 modifies the line; the device proactively writes it to PM
  // (tick with forced flush makes the undo record durable first).
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(99));
  dev.tick(/*force_flush=*/true);
  EXPECT_GT(dev.stats().proactive_writebacks, 0u);
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(99));

  // Crash before persist: recovery must roll the line back to epoch 1.
  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get());
  ASSERT_TRUE(pool.ok());
  auto report = recover_pool(pool.value());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().recovered_epoch, 1u);
  EXPECT_EQ(report.value().records_applied, 1u);
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(1));
}

TEST_F(PaxDeviceFixture, WritebackGatedOnUndoRecordDurability) {
  // Force evictions with a tiny buffer and proactive write-back off: every
  // eviction of a dirty line must first force the log flush (the stall path)
  // — never write data before its undo record.
  DeviceConfig c;
  c.hbm.capacity_lines = 4;
  c.hbm.ways = 4;
  c.proactive_writeback = false;
  PaxDevice dev(&tp.pool, c);

  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(dev.write_intent(tp.data_line(i)).is_ok());
    dev.writeback_line(tp.data_line(i), patterned_line(100 + i));
  }
  // The buffer (4 lines) forced ≥8 evictions; the invariant PAX_CHECK inside
  // write_line_to_pm would have aborted on any ungated write-back.
  EXPECT_GT(dev.stats().pm_writeback_lines, 0u);
  EXPECT_GT(dev.stats().forced_log_flushes, 0u);
}

TEST_F(PaxDeviceFixture, WorkingSetLargerThanBufferPersistsCorrectly) {
  // §3.3 / §1 "No Working Set Size Limits": per-epoch write set ≫ buffer.
  DeviceConfig c;
  c.hbm.capacity_lines = 8;
  c.hbm.ways = 4;
  PaxDevice dev(&tp.pool, c);

  constexpr std::uint64_t kLines = 200;
  for (std::uint64_t i = 0; i < kLines; ++i) {
    ASSERT_TRUE(dev.write_intent(tp.data_line(i)).is_ok());
    dev.writeback_line(tp.data_line(i), patterned_line(1000 + i));
  }
  ASSERT_TRUE(dev.persist(nullptr).ok());
  for (std::uint64_t i = 0; i < kLines; ++i) {
    EXPECT_EQ(tp.device->durable_line(tp.data_line(i)),
              patterned_line(1000 + i))
        << "line " << i;
  }
}

TEST_F(PaxDeviceFixture, LogExtentExhaustionSurfacesOutOfSpace) {
  auto small = TestPool::create(1 << 20, /*log_bytes=*/1024);
  PaxDevice dev(&small.pool, config());
  Status last = Status::ok();
  std::uint64_t i = 0;
  for (; i < 100; ++i) {
    last = dev.write_intent(small.data_line(i));
    if (!last.is_ok()) break;
  }
  EXPECT_FALSE(last.is_ok());
  EXPECT_EQ(last.code(), StatusCode::kOutOfSpace);
  // 1024-byte extent banked in half (§6 overlap) → 512 B per epoch bank,
  // 96-byte frames → 5 records fit.
  EXPECT_EQ(i, 5u);
}

TEST_F(PaxDeviceFixture, PersistResetsLogForReuse) {
  auto small = TestPool::create(1 << 20, /*log_bytes=*/2048);
  PaxDevice dev(&small.pool, config());
  // Two epochs of 8 lines each both fit (8 × 96 B < the 1024 B bank)
  // because persist() resets the active bank.
  for (Epoch e = 0; e < 2; ++e) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(dev.write_intent(small.data_line(i)).is_ok());
      dev.writeback_line(small.data_line(i), patterned_line(e * 100 + i));
    }
    ASSERT_TRUE(dev.persist(nullptr).ok());
  }
  EXPECT_EQ(small.pool.committed_epoch(), 2u);
}

TEST_F(PaxDeviceFixture, RecoveryIsIdempotent) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(5));
  dev.tick(/*force_flush=*/true);
  tp.device->crash(pmem::CrashConfig::drop_all());

  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(recover_pool(pool).ok());
  const LineData after_first = tp.device->durable_line(tp.data_line(0));
  // Crash during/after recovery: running it again must be harmless.
  tp.device->crash(pmem::CrashConfig::drop_all());
  ASSERT_TRUE(recover_pool(pool).ok());
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), after_first);
  EXPECT_EQ(after_first, LineData{});  // rolled back to the empty pool
}

TEST_F(PaxDeviceFixture, RecoveryOnCleanPoolAppliesNothing) {
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  dev.writeback_line(tp.data_line(0), patterned_line(1));
  ASSERT_TRUE(dev.persist(nullptr).ok());
  tp.device->crash(pmem::CrashConfig::drop_all());

  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  auto report = recover_pool(pool);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records_applied, 0u);
  EXPECT_EQ(report.value().stale_records, 1u);  // epoch-1 record now stale
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(1));
}

TEST_F(PaxDeviceFixture, MemWriteLogsPreImageBeforeApplying) {
  // CXL.mem path: the pre-image must be captured from the device view
  // BEFORE the incoming MemWr data lands.
  tp.device->store_line(tp.data_line(0), patterned_line(7));
  tp.device->flush_line(tp.data_line(0));

  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.mem_write(tp.data_line(0), patterned_line(8)).is_ok());
  EXPECT_EQ(dev.stats().mem_writes, 1u);
  EXPECT_EQ(dev.stats().first_touch_logs, 1u);
  EXPECT_EQ(dev.peek_line(tp.data_line(0)), patterned_line(8));

  // Crash without persist: the pre-image (7) must come back.
  dev.tick(/*force_flush=*/true);
  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(recover_pool(pool).ok());
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(7));
}

TEST_F(PaxDeviceFixture, MemWriteIsFirstTouchIdempotentPerEpoch) {
  PaxDevice dev(&tp.pool, config());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dev.mem_write(tp.data_line(0), patterned_line(i)).is_ok());
  }
  EXPECT_EQ(dev.stats().mem_writes, 5u);
  EXPECT_EQ(dev.stats().first_touch_logs, 1u);
  ASSERT_TRUE(dev.persist(nullptr).ok());
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(4));
}

TEST_F(PaxDeviceFixture, MemWriteAndWriteIntentInteroperate) {
  // A line can be announced via RdOwn (write_intent) and then written back
  // as a MemWr (or vice versa): one undo record either way.
  PaxDevice dev(&tp.pool, config());
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  ASSERT_TRUE(dev.mem_write(tp.data_line(0), patterned_line(3)).is_ok());
  EXPECT_EQ(dev.stats().first_touch_logs, 1u);
  ASSERT_TRUE(dev.persist(nullptr).ok());
  EXPECT_EQ(tp.device->durable_line(tp.data_line(0)), patterned_line(3));
}

TEST_F(PaxDeviceFixture, TornUndoRecordDoesNotBlockRecovery) {
  PaxDevice dev(&tp.pool, config());
  // Log two records; flush only implicitly (none): crash tears the tail.
  ASSERT_TRUE(dev.write_intent(tp.data_line(0)).is_ok());
  ASSERT_TRUE(dev.write_intent(tp.data_line(1)).is_ok());
  tp.device->crash(pmem::CrashConfig::random(0.4, /*seed=*/11));

  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  auto report = recover_pool(pool);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().recovered_epoch, 0u);
}

}  // namespace
}  // namespace pax::device
