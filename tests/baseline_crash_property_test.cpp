// Randomized crash-property tests for the baseline systems, mirroring the
// libpax oracle suites: whatever the baseline promises must hold under
// random workloads × random crash points × crash modes.
//
//   * PMDK hash map: per-operation transactions — after a crash the map
//     equals the oracle at the last *committed transaction* (no torn ops).
//   * Page-WAL runtime: epoch snapshots at page granularity — after a crash
//     the region equals the oracle at the last persisted epoch.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "pax/baselines/pagewal/pagewal.hpp"
#include "pax/baselines/pmdk/phashmap.hpp"
#include "pax/common/rng.hpp"
#include "test_util.hpp"

namespace pax::baselines {
namespace {

class PmdkCrashProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PmdkCrashProperty, MapMatchesOracleAfterCrash) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  auto tp = testing::TestPool::create(8 << 20, 512 * 1024);
  std::map<std::uint64_t, std::uint64_t> oracle;

  {
    pmdk::TxRuntime tx(&tp.pool);
    auto map = pmdk::PHashMap::create(&tx, 64).value();

    const std::uint64_t ops = 200 + rng.next_below(600);
    const std::uint64_t crash_after = rng.next_below(ops);
    for (std::uint64_t i = 0; i < crash_after; ++i) {
      const std::uint64_t key = 1 + rng.next_below(150);
      if (rng.next_double() < 0.7) {
        const std::uint64_t value = rng.next();
        ASSERT_TRUE(map.put(key, value).is_ok());
        oracle[key] = value;
      } else {
        Status s = map.erase(key);
        ASSERT_EQ(s.is_ok(), oracle.erase(key) > 0);
      }
    }
    // Crash mid-next-transaction: begin + snapshot + store, no commit.
    ASSERT_TRUE(tx.tx_begin().is_ok());
    const PoolOffset victim = tp.pool.data_offset() + 8 * rng.next_below(64);
    ASSERT_TRUE(tx.tx_snapshot(victim, 8).is_ok());
    const std::uint64_t junk = 0xbadbadbadULL;
    ASSERT_TRUE(tx.tx_store(victim, std::as_bytes(std::span(&junk, 1))).is_ok());
    tp.device->flush_range(victim, 8);
  }
  tp.device->crash(pmem::CrashConfig::random(0.5, seed * 7 + 3));

  pmdk::TxRuntime recovered(&tp.pool);
  auto map = pmdk::PHashMap::open(&recovered).value();
  ASSERT_EQ(map.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(map.get(k), std::optional(v)) << "key " << k;
  }
  // Still fully functional after recovery.
  ASSERT_TRUE(map.put(7777, 1).is_ok());
  ASSERT_EQ(map.get(7777), std::optional<std::uint64_t>(1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmdkCrashProperty,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108));

class PageWalCrashProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PageWalCrashProperty, RegionMatchesOracleAtCommittedEpoch) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  auto pm = pmem::PmemDevice::create_in_memory(32 << 20);
  constexpr std::uint64_t kCells = 2048;  // u64 cells across several pages

  std::map<std::uint64_t, std::uint64_t> oracle;
  std::vector<std::map<std::uint64_t, std::uint64_t>> snapshots{oracle};

  {
    auto rt = pagewal::PageWalRuntime::attach(pm.get(), 16 << 20).value();
    const std::uint64_t ops = 200 + rng.next_below(800);
    const std::uint64_t crash_after = rng.next_below(ops);
    for (std::uint64_t i = 0; i < crash_after; ++i) {
      const std::uint64_t cell = rng.next_below(kCells);
      const std::uint64_t value = rng.next() | 1;
      std::memcpy(rt->base() + cell * 8, &value, 8);
      oracle[cell] = value;
      if (rng.next_double() < 0.04) {
        ASSERT_TRUE(rt->persist().ok());
        snapshots.push_back(oracle);
      }
    }
  }
  pm->crash(pmem::CrashConfig::torn(0.5, seed + 11));

  auto rt = pagewal::PageWalRuntime::attach(pm.get(), 16 << 20).value();
  const Epoch committed = rt->committed_epoch();
  ASSERT_LT(committed, snapshots.size());
  const auto& expect = snapshots[committed];
  for (std::uint64_t cell = 0; cell < kCells; ++cell) {
    std::uint64_t v;
    std::memcpy(&v, rt->base() + cell * 8, 8);
    auto it = expect.find(cell);
    ASSERT_EQ(v, it == expect.end() ? 0 : it->second)
        << "cell " << cell << " epoch " << committed;
  }
  // Still functional.
  std::uint64_t marker = 0x1234;
  std::memcpy(rt->base(), &marker, 8);
  ASSERT_TRUE(rt->persist().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageWalCrashProperty,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

}  // namespace
}  // namespace pax::baselines
