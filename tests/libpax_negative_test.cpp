// Negative paths and robustness: corrupted pools, bad geometry, occupied
// mapping hints, double-open, and a flusher-thread stress — failure must be
// an error (or a clean fallback), never UB.
#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>

#include "pax/libpax/persistent.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 16 << 20;

TEST(NegativeTest, CorruptedHeaderSurfacesOnAttach) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get());
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(rt.value()->persist().ok());
  }
  // Durably flip a geometry byte behind the CRC's back.
  pm->atomic_durable_store_u64(24, pm->load_u64(24) ^ 0x10000);
  auto rt = PaxRuntime::attach(pm.get());
  EXPECT_FALSE(rt.ok());
  EXPECT_EQ(rt.status().code(), StatusCode::kCorruption);
}

TEST(NegativeTest, UnalignedLogSizeRejected) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  RuntimeOptions o;
  o.log_size = 4096 + 64;  // not page-aligned
  auto rt = PaxRuntime::attach(pm.get(), o);
  EXPECT_FALSE(rt.ok());
  EXPECT_EQ(rt.status().code(), StatusCode::kInvalidArgument);
}

TEST(NegativeTest, TinyPoolRejected) {
  auto rt = PaxRuntime::create_in_memory(8192);
  EXPECT_FALSE(rt.ok());
}

TEST(NegativeTest, OccupiedBaseHintFallsBackCleanly) {
  auto pm_a = pmem::PmemDevice::create_in_memory(kPool);
  auto pm_b = pmem::PmemDevice::create_in_memory(kPool);
  auto rt_a = PaxRuntime::attach(pm_a.get()).value();

  RuntimeOptions o;
  o.vpm_base_hint = reinterpret_cast<std::uintptr_t>(rt_a->vpm_base());
  auto rt_b = PaxRuntime::attach(pm_b.get(), o);
  ASSERT_TRUE(rt_b.ok());  // falls back to another address with a warning
  EXPECT_NE(rt_b.value()->vpm_base(), rt_a->vpm_base());
  // Both remain fully functional.
  rt_a->vpm_base()[4096] = std::byte{1};
  rt_b.value()->vpm_base()[4096] = std::byte{2};
  ASSERT_TRUE(rt_a->persist().ok());
  ASSERT_TRUE(rt_b.value()->persist().ok());
}

TEST(NegativeTest, SecondPersistentOpenReturnsSameRoot) {
  using PMap = std::unordered_map<
      std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
      std::equal_to<std::uint64_t>,
      PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>>;
  auto rt = PaxRuntime::create_in_memory(kPool).value();
  auto first = Persistent<PMap>::open(*rt).value();
  (*first)[1] = 11;
  auto second = Persistent<PMap>::open(*rt).value();
  EXPECT_TRUE(second.recovered());        // found the existing root
  EXPECT_EQ(second.get(), first.get());   // same object
  EXPECT_EQ(second->at(1), 11u);
}

TEST(NegativeTest, FlusherThreadStress) {
  // The background flusher races application mutations and explicit
  // persists for a while; everything must stay consistent and shut down
  // cleanly.
  using PMap = std::unordered_map<
      std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
      std::equal_to<std::uint64_t>,
      PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>>;

  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  RuntimeOptions o;
  o.log_size = 4 << 20;
  o.start_flusher_thread = true;
  o.flusher_interval = std::chrono::microseconds(50);
  Epoch last = 0;
  {
    auto rt = PaxRuntime::attach(pm.get(), o).value();
    auto map = Persistent<PMap>::open(*rt).value();
    for (int round = 0; round < 20; ++round) {
      for (std::uint64_t k = 0; k < 200; ++k) {
        (*map)[k] = round;  // invariant per snapshot: all values equal
      }
      auto e = rt->persist();
      ASSERT_TRUE(e.ok()) << e.status().to_string();
      last = e.value();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), o).value();
  EXPECT_GE(rt->committed_epoch(), last);
  auto map = Persistent<PMap>::open(*rt).value();
  ASSERT_EQ(map->size(), 200u);
  const std::uint64_t v0 = map->at(0);
  for (std::uint64_t k = 0; k < 200; ++k) {
    ASSERT_EQ(map->at(k), v0) << "torn snapshot at key " << k;
  }
}

TEST(NegativeTest, HeapExhaustionThrowsBadAlloc) {
  using PVec = std::vector<std::uint64_t, PaxStlAllocator<std::uint64_t>>;
  // 2 MiB data extent, 8 MiB log (4 MiB per bank ≈ 43k records): the whole
  // data extent can be dirtied and still persist in one epoch.
  RuntimeOptions o;
  o.log_size = 8 << 20;
  auto rt = PaxRuntime::create_in_memory(10 << 20, o).value();
  auto vec = Persistent<PVec>::open(*rt).value();
  EXPECT_THROW(
      {
        for (int i = 0; i < 1 << 22; ++i) vec->push_back(i);
      },
      std::bad_alloc);
  // The runtime survives; smaller work still succeeds after the throw.
  ASSERT_TRUE(rt->persist().ok());
}

}  // namespace
}  // namespace pax::libpax
