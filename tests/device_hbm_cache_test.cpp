#include "pax/device/hbm_cache.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pax::device {
namespace {

using testing::patterned_line;

HbmConfig tiny(bool prefer_durable = true) {
  HbmConfig c;
  c.capacity_lines = 4;
  c.ways = 4;  // one set: eviction choices are fully observable
  c.prefer_durable_eviction = prefer_durable;
  return c;
}

TEST(HbmCacheTest, LookupMissThenHit) {
  HbmCache cache(tiny());
  EXPECT_FALSE(cache.lookup(LineIndex{1}).has_value());
  cache.insert(LineIndex{1}, patterned_line(1), false, 0, 0);
  auto hit = cache.lookup(LineIndex{1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, patterned_line(1));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(HbmCacheTest, InsertUpdatesInPlaceWithoutEviction) {
  HbmCache cache(tiny());
  cache.insert(LineIndex{1}, patterned_line(1), false, 0, 0);
  auto evicted = cache.insert(LineIndex{1}, patterned_line(2), true, 100, 0);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.lookup(LineIndex{1}), patterned_line(2));
  EXPECT_TRUE(cache.is_dirty(LineIndex{1}));
}

TEST(HbmCacheTest, DirtyBitSticksUntilMarkedClean) {
  HbmCache cache(tiny());
  cache.insert(LineIndex{1}, patterned_line(1), true, 50, 0);
  // A clean re-insert (e.g. read refill) must not wash out dirtiness.
  cache.insert(LineIndex{1}, patterned_line(1), false, 0, 0);
  EXPECT_TRUE(cache.is_dirty(LineIndex{1}));
  cache.mark_clean(LineIndex{1});
  EXPECT_FALSE(cache.is_dirty(LineIndex{1}));
}

TEST(HbmCacheTest, EvictionPrefersCleanVictim) {
  HbmCache cache(tiny());
  // Fill: line0 clean (oldest), lines 1-3 dirty.
  cache.insert(LineIndex{10}, patterned_line(0), true, 10, 0);
  cache.insert(LineIndex{11}, patterned_line(1), false, 0, 0);
  cache.insert(LineIndex{12}, patterned_line(2), true, 20, 0);
  cache.insert(LineIndex{13}, patterned_line(3), true, 30, 0);

  auto evicted = cache.insert(LineIndex{14}, patterned_line(4), true, 40, 0);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, LineIndex{11});  // the clean one, not LRU line 10
  EXPECT_FALSE(evicted->dirty);
  EXPECT_EQ(cache.stats().clean_evictions, 1u);
}

TEST(HbmCacheTest, EvictionPrefersDurableDirtyOverNonDurable) {
  HbmCache cache(tiny());
  // All dirty. Records end at 10,20,30,40; durable watermark = 25.
  cache.insert(LineIndex{10}, patterned_line(0), true, 10, 0);
  cache.insert(LineIndex{11}, patterned_line(1), true, 20, 0);
  cache.insert(LineIndex{12}, patterned_line(2), true, 30, 0);
  cache.insert(LineIndex{13}, patterned_line(3), true, 40, 0);

  auto evicted =
      cache.insert(LineIndex{14}, patterned_line(4), true, 50, /*durable=*/25);
  ASSERT_TRUE(evicted.has_value());
  // LRU among durable-logged dirty lines (ends 10 and 20) is line 10.
  EXPECT_EQ(evicted->line, LineIndex{10});
  EXPECT_EQ(cache.stats().durable_dirty_evictions, 1u);
  EXPECT_EQ(cache.stats().stall_evictions, 0u);
}

TEST(HbmCacheTest, StallEvictionWhenNothingIsDurable) {
  HbmCache cache(tiny());
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(LineIndex{10 + i}, patterned_line(i), true, 100 + i, 0);
  }
  auto evicted =
      cache.insert(LineIndex{20}, patterned_line(9), true, 200, /*durable=*/0);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->dirty);
  EXPECT_EQ(cache.stats().stall_evictions, 1u);
}

TEST(HbmCacheTest, PureLruModeIgnoresDurability) {
  HbmCache cache(tiny(/*prefer_durable=*/false));
  cache.insert(LineIndex{10}, patterned_line(0), true, 10, 0);   // LRU, dirty
  cache.insert(LineIndex{11}, patterned_line(1), false, 0, 0);   // clean
  cache.insert(LineIndex{12}, patterned_line(2), true, 30, 0);
  cache.insert(LineIndex{13}, patterned_line(3), true, 40, 0);
  auto evicted =
      cache.insert(LineIndex{14}, patterned_line(4), true, 50, /*durable=*/99);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, LineIndex{10});  // strict LRU, despite clean 11
}

TEST(HbmCacheTest, LruRefreshedByLookup) {
  HbmCache cache(tiny(/*prefer_durable=*/false));
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(LineIndex{10 + i}, patterned_line(i), false, 0, 0);
  }
  cache.lookup(LineIndex{10});  // refresh the would-be victim
  auto evicted = cache.insert(LineIndex{20}, patterned_line(9), false, 0, 0);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, LineIndex{11});
}

TEST(HbmCacheTest, MarkAllCleanClearsEveryDirtyBit) {
  HbmCache cache(tiny());
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(LineIndex{10 + i}, patterned_line(i), true, 10 + i, 0);
  }
  cache.mark_all_clean();
  std::size_t dirty = 0;
  cache.for_each_dirty([&](LineIndex, const LineData&, std::uint64_t) {
    ++dirty;
  });
  EXPECT_EQ(dirty, 0u);
}

TEST(HbmCacheTest, UpdateIfPresentRefreshesDataAndCleans) {
  HbmCache cache(tiny());
  cache.insert(LineIndex{1}, patterned_line(1), true, 77, 0);
  cache.update_if_present(LineIndex{1}, patterned_line(2));
  EXPECT_EQ(*cache.lookup(LineIndex{1}), patterned_line(2));
  EXPECT_FALSE(cache.is_dirty(LineIndex{1}));
  // Absent line: no allocation.
  cache.update_if_present(LineIndex{99}, patterned_line(3));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(HbmCacheTest, RemoveFreesTheWay) {
  HbmCache cache(tiny());
  cache.insert(LineIndex{1}, patterned_line(1), false, 0, 0);
  cache.remove(LineIndex{1});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(LineIndex{1}).has_value());
}

HbmConfig tiny_clock(bool prefer_durable = true) {
  HbmConfig c = tiny(prefer_durable);
  c.replacement = Replacement::kClock;
  return c;
}

TEST(HbmCacheTest, ClockGivesSecondChanceToReferencedEntries) {
  HbmCache cache(tiny_clock(/*prefer_durable=*/false));
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(LineIndex{10 + i}, patterned_line(i), false, 0, 0);
  }
  // Touch 10 and 11: their ref bits protect them on the first sweep.
  cache.lookup(LineIndex{10});
  cache.lookup(LineIndex{11});
  auto evicted = cache.insert(LineIndex{20}, patterned_line(9), false, 0, 0);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->line == LineIndex{12} ||
              evicted->line == LineIndex{13})
      << "referenced entry evicted despite second chance";
  EXPECT_TRUE(cache.lookup(LineIndex{10}).has_value());
  EXPECT_TRUE(cache.lookup(LineIndex{11}).has_value());
}

TEST(HbmCacheTest, ClockEvictsWhenAllReferenced) {
  // Every entry referenced: the sweep clears all ref bits and the second
  // pass must still produce a victim (no livelock).
  HbmCache cache(tiny_clock(false));
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(LineIndex{10 + i}, patterned_line(i), false, 0, 0);
    cache.lookup(LineIndex{10 + i});
  }
  auto evicted = cache.insert(LineIndex{20}, patterned_line(9), false, 0, 0);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(cache.size(), 4u);
}

TEST(HbmCacheTest, ClockStillPrefersDurableVictims) {
  HbmCache cache(tiny_clock(/*prefer_durable=*/true));
  // All dirty, none referenced; records end at 10..40, durable through 25.
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(LineIndex{10 + i}, patterned_line(i), true, 10 * (i + 1), 0);
  }
  auto evicted =
      cache.insert(LineIndex{20}, patterned_line(9), true, 50, /*durable=*/25);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_LE(evicted->log_record_end, 25u);  // a durable-logged victim
  EXPECT_EQ(cache.stats().durable_dirty_evictions, 1u);
}

TEST(HbmCacheTest, SetAssociativityConfinesEvictionToSet) {
  // With many sets, inserting lines that map to different sets must not
  // evict each other even past nominal capacity of one set.
  HbmConfig c;
  c.capacity_lines = 64;
  c.ways = 4;
  HbmCache cache(c);
  std::size_t evictions = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    if (cache.insert(LineIndex{i}, patterned_line(i), false, 0, 0)) {
      ++evictions;
    }
  }
  // 32 lines over 16 sets × 4 ways: overflow of any single set is unlikely
  // but possible with hashing; the total must stay far below 32.
  EXPECT_LT(evictions, 8u);
}

}  // namespace
}  // namespace pax::device
