// Multi-threaded stress tests of the striped PAX device data path.
//
// The device promises that read_line / write_intent / writeback_line /
// mem_write on different lines proceed in parallel (per-stripe locking) while
// every crash-consistency invariant holds: write-back gated on undo-record
// durability, epochs commit as atomic snapshots, recovery always lands on
// the committed one. These tests hammer that promise from many threads —
// over disjoint and overlapping line ranges, with background tick()s, and
// with seal_epoch()/commit_sealed() interleaved — and are the suite the CI
// ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "test_util.hpp"

namespace pax::device {
namespace {

using pax::testing::TestPool;
using pax::testing::patterned_line;

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kLinesPerThread = 32;
constexpr int kRounds = 8;

DeviceConfig striped_config() {
  DeviceConfig cfg;
  cfg.hbm.capacity_lines = 1024;
  cfg.hbm.ways = 8;
  cfg.stripes = 16;
  cfg.persist_workers = 4;
  cfg.persist_fanout_min_lines = 1;  // always exercise the worker pool
  return cfg;
}

TEST(DeviceStripedMtTest, ReportsEffectiveStripeCount) {
  auto tp = TestPool::create(1 << 20, 256 * 1024);
  {
    PaxDevice dev(&tp.pool, striped_config());
    EXPECT_EQ(dev.stripe_count(), 16u);
  }
  {
    // Tiny buffer: the stripe count collapses so each stripe keeps >= 1 set.
    DeviceConfig cfg = striped_config();
    cfg.hbm.capacity_lines = 16;
    cfg.hbm.ways = 4;
    PaxDevice dev(&tp.pool, cfg);
    EXPECT_EQ(dev.stripe_count(), 4u);
  }
  {
    DeviceConfig cfg = striped_config();
    cfg.stripes = 1;  // the old single-lock device
    PaxDevice dev(&tp.pool, cfg);
    EXPECT_EQ(dev.stripe_count(), 1u);
  }
}

// Each thread owns a disjoint line range; all write and read concurrently,
// with persist() between rounds. Every committed value must be exact.
TEST(DeviceStripedMtTest, DisjointRangesAllWritesLand) {
  auto tp = TestPool::create(4 << 20, 512 * 1024);
  PaxDevice dev(&tp.pool, striped_config());

  std::uint64_t round_tag = 0;
  for (int round = 0; round < kRounds; ++round) {
    round_tag = 10'000 + static_cast<std::uint64_t>(round) * 1'000;
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < kLinesPerThread; ++i) {
          const LineIndex line = tp.data_line(t * kLinesPerThread + i);
          if (!dev.write_intent(line).is_ok()) {
            failed.store(true);
            return;
          }
          dev.writeback_line(line, patterned_line(round_tag + t * 100 + i));
          // Interleave reads of our own range (hits + PM fills).
          (void)dev.read_line(tp.data_line(t * kLinesPerThread +
                                           (i * 7) % kLinesPerThread));
          if (i % 8 == 7) dev.tick();
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_FALSE(failed.load());
    ASSERT_TRUE(dev.persist(nullptr).ok());
  }

  // After the final persist every line holds its last round's value — on
  // durable media, not just in the device view.
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kLinesPerThread; ++i) {
      const LineIndex line = tp.data_line(t * kLinesPerThread + i);
      const LineData expect = patterned_line(round_tag + t * 100 + i);
      EXPECT_EQ(dev.read_line(line).bytes, expect.bytes);
      EXPECT_EQ(tp.device->durable_line(line).bytes, expect.bytes);
    }
  }
  // Exactly kThreads * kLinesPerThread first-touch records per round.
  EXPECT_EQ(dev.stats().first_touch_logs,
            static_cast<std::uint64_t>(kRounds) * kThreads * kLinesPerThread);
}

// All threads fight over the SAME small set of lines. Line operations are
// atomic (per-stripe locks): every observed value must be exactly one of
// the patterns some thread wrote — never a torn mix.
TEST(DeviceStripedMtTest, OverlappingRangesNeverTearLines) {
  auto tp = TestPool::create(1 << 20, 512 * 1024);
  PaxDevice dev(&tp.pool, striped_config());
  constexpr std::uint64_t kSharedLines = 8;
  constexpr std::uint64_t kWritesPerThread = 200;

  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kWritesPerThread; ++i) {
        const LineIndex line = tp.data_line((t + i) % kSharedLines);
        if (!dev.write_intent(line).is_ok()) {
          failed.store(true);
          return;
        }
        dev.writeback_line(line, patterned_line(t));
        const LineData seen = dev.read_line(line);
        // The line must be *some* thread's pattern, whole.
        bool matches_one = false;
        for (unsigned w = 0; w < kThreads; ++w) {
          if (seen.bytes == patterned_line(w).bytes) {
            matches_one = true;
            break;
          }
        }
        if (!matches_one) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load()) << "observed a torn line";
  ASSERT_TRUE(dev.persist(nullptr).ok());
}

// Writers keep the data path busy while the main thread interleaves
// seal_epoch() and commit_sealed() (§6 epoch overlap) — the exclusive epoch
// gate must cleanly quiesce and release the striped data path every time.
TEST(DeviceStripedMtTest, SealAndCommitInterleaveWithTraffic) {
  auto tp = TestPool::create(4 << 20, 1 << 20);
  PaxDevice dev(&tp.pool, striped_config());

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const LineIndex line = tp.data_line(t * kLinesPerThread +
                                            (i % kLinesPerThread));
        // mem_write is the one-shot modify path (intent + data in a single
        // atomic device op), so a seal landing between two calls can never
        // strand a write without its undo token — the behavior a pull-less
        // (.mem-style) frontend actually has.
        Status s = dev.mem_write(line, patterned_line(t * 1'000 + i));
        if (!s.is_ok()) {
          // kOutOfSpace can legitimately surface if seals lag; any other
          // error is a bug.
          if (s.code() != StatusCode::kOutOfSpace) failed.store(true);
          std::this_thread::yield();
        }
        if (i % 16 == 0) dev.tick();
        ++i;
      }
    });
  }

  for (int cycle = 0; cycle < 20; ++cycle) {
    auto sealed = dev.seal_epoch(nullptr);
    ASSERT_TRUE(sealed.ok()) << sealed.status().to_string();
    auto committed = dev.commit_sealed();
    ASSERT_TRUE(committed.ok()) << committed.status().to_string();
    EXPECT_EQ(committed.value(), sealed.value());
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_FALSE(failed.load());
  ASSERT_TRUE(dev.persist(nullptr).ok());
}

// Concurrent phase-1 writes + persist, then concurrent doomed phase-2
// writes, then a crash: recovery must land exactly on the phase-1 snapshot.
TEST(DeviceStripedMtTest, CrashAfterConcurrentTrafficRecoversSnapshot) {
  auto tp = TestPool::create(4 << 20, 512 * 1024);
  Epoch committed = 0;
  {
    PaxDevice dev(&tp.pool, striped_config());

    auto run_phase = [&](std::uint64_t tag) {
      std::vector<std::thread> threads;
      for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (std::uint64_t i = 0; i < kLinesPerThread; ++i) {
            const LineIndex line = tp.data_line(t * kLinesPerThread + i);
            ASSERT_TRUE(dev.write_intent(line).is_ok());
            dev.writeback_line(line, patterned_line(tag + t * 100 + i));
            if (i % 4 == 3) dev.tick();
          }
        });
      }
      for (auto& th : threads) th.join();
    };

    run_phase(500);
    auto e = dev.persist(nullptr);
    ASSERT_TRUE(e.ok());
    committed = e.value();

    run_phase(900);  // doomed: never persisted
    dev.tick(/*force_flush=*/true);  // some doomed lines even reach media
  }

  tp.device->crash(pmem::CrashConfig::torn(0.5, 42));

  auto pool = pmem::PmemPool::open(tp.device.get());
  ASSERT_TRUE(pool.ok());
  auto report = recover_pool(pool.value());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().recovered_epoch, committed);

  PaxDevice dev(&pool.value(), striped_config());
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kLinesPerThread; ++i) {
      const LineIndex line = tp.data_line(t * kLinesPerThread + i);
      const LineData expect = patterned_line(500 + t * 100 + i);
      EXPECT_EQ(dev.read_line(line).bytes, expect.bytes)
          << "t=" << t << " i=" << i;
    }
  }
}

// Snapshot-isolated reads run concurrently with writers: every value they
// return must be a committed one (the base pattern), never an in-flight
// mutation.
TEST(DeviceStripedMtTest, CommittedReadsIgnoreConcurrentWriters) {
  auto tp = TestPool::create(1 << 20, 512 * 1024);
  PaxDevice dev(&tp.pool, striped_config());
  constexpr std::uint64_t kLines = 64;

  for (std::uint64_t i = 0; i < kLines; ++i) {
    ASSERT_TRUE(dev.write_intent(tp.data_line(i)).is_ok());
    dev.writeback_line(tp.data_line(i), patterned_line(7'000 + i));
  }
  ASSERT_TRUE(dev.persist(nullptr).ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const LineIndex line = tp.data_line(i % kLines);
      if (dev.write_intent(line).is_ok()) {
        dev.writeback_line(line, patterned_line(9'000 + i));
      }
      ++i;
    }
  });
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (std::uint64_t i = 0; i < 2'000; ++i) {
        const std::uint64_t idx = (i * 13) % kLines;
        const LineData seen = dev.read_committed_line(tp.data_line(idx));
        if (seen.bytes != patterned_line(7'000 + idx).bytes) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  writer.join();
  EXPECT_FALSE(failed.load()) << "committed read observed uncommitted data";
}

}  // namespace
}  // namespace pax::device
