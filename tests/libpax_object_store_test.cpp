#include "pax/libpax/object_store.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "pax/common/rng.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 32 << 20;

RuntimeOptions options() {
  RuntimeOptions o;
  o.log_size = 4 << 20;
  o.device.log_flush_batch_bytes = 0;
  return o;
}

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(ObjectStoreTest, PutGetRemoveRoundTrip) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  auto store = ObjectStore::open(*rt).value();
  EXPECT_FALSE(store.recovered());

  auto payload = bytes_of("hello persistent world");
  store.put("greeting", payload);
  ASSERT_TRUE(store.contains("greeting"));
  auto got = store.get("greeting");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), payload.size());
  EXPECT_EQ(std::memcmp(got->data(), payload.data(), payload.size()), 0);

  EXPECT_TRUE(store.remove("greeting"));
  EXPECT_FALSE(store.remove("greeting"));
  EXPECT_FALSE(store.get("greeting").has_value());
}

TEST(ObjectStoreTest, OverwriteReplacesBlob) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  auto store = ObjectStore::open(*rt).value();
  store.put("k", bytes_of("short"));
  store.put("k", bytes_of("a considerably longer replacement value"));
  auto got = store.get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 39u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ObjectStoreTest, ListWithPrefix) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  auto store = ObjectStore::open(*rt).value();
  for (const char* name : {"logs/a", "logs/b", "data/x", "logs/c", "zzz"}) {
    store.put(name, bytes_of("v"));
  }
  auto logs = store.list("logs/");
  ASSERT_EQ(logs.size(), 3u);
  EXPECT_EQ(logs[0], "logs/a");
  EXPECT_EQ(logs[2], "logs/c");
  EXPECT_EQ(store.list().size(), 5u);
  EXPECT_TRUE(store.list("none/").empty());
}

TEST(ObjectStoreTest, CommittedObjectsSurviveCrashUncommittedVanish) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto store = ObjectStore::open(*rt).value();
    store.put("stable", bytes_of("committed bytes"));
    store.put("victim", bytes_of("to be removed"));
    ASSERT_TRUE(store.commit().ok());
    store.put("doomed", bytes_of("never committed"));
    store.remove("victim");  // removal also uncommitted
    rt->sync_step();
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto store = ObjectStore::open(*rt).value();
    EXPECT_TRUE(store.recovered());
    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.contains("stable"));
    EXPECT_TRUE(store.contains("victim"));  // the remove rolled back
    EXPECT_FALSE(store.contains("doomed"));
    auto got = store.get("stable");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(std::memcmp(got->data(), "committed bytes", 15), 0);
  }
}

TEST(ObjectStoreTest, LargeBlobsAndManyObjects) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  RuntimeOptions o = options();
  o.log_size = 16 << 20;
  Xoshiro256 rng(4);
  {
    auto rt = PaxRuntime::attach(pm.get(), o).value();
    auto store = ObjectStore::open(*rt).value();
    for (int i = 0; i < 200; ++i) {
      std::vector<std::byte> blob(64 + rng.next_below(20000));
      for (auto& b : blob) b = static_cast<std::byte>(i);
      store.put("obj/" + std::to_string(i), blob);
      if (i % 50 == 49) {
        ASSERT_TRUE(store.commit().ok());
      }
    }
    ASSERT_TRUE(store.commit().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  {
    auto rt = PaxRuntime::attach(pm.get(), o).value();
    auto store = ObjectStore::open(*rt).value();
    ASSERT_EQ(store.size(), 200u);
    for (int i = 0; i < 200; i += 17) {
      auto got = store.get("obj/" + std::to_string(i));
      ASSERT_TRUE(got.has_value()) << i;
      for (std::byte b : *got) ASSERT_EQ(b, static_cast<std::byte>(i));
    }
  }
}

TEST(ObjectStoreTest, EmptyBlobIsValid) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  auto store = ObjectStore::open(*rt).value();
  store.put("empty", {});
  auto got = store.get("empty");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

}  // namespace
}  // namespace pax::libpax
