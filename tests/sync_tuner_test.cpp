// SyncTuner unit tests: the decide() contract — monotone response to each
// observed signal, clamping to the configured bounds, and pinned knobs
// returned verbatim while the other knob keeps adapting.
#include <gtest/gtest.h>

#include "pax/libpax/sync_tuner.hpp"

namespace pax::libpax {
namespace {

SyncObservation obs(std::size_t dirty_pages, double lines_per_page,
                    double contention) {
  return SyncObservation{dirty_pages, lines_per_page, contention};
}

TEST(SyncTunerTest, BatchGrowsMonotonicallyWithDirtyVolume) {
  SyncTuner tuner;
  std::size_t prev = 0;
  for (std::size_t pages : {0u, 8u, 64u, 512u, 4096u, 65536u}) {
    const SyncDecision d = tuner.decide(obs(pages, 8.0, 0.0));
    EXPECT_GE(d.batch_lines, prev) << "pages " << pages;
    EXPECT_GE(d.batch_lines, tuner.config().min_batch_lines);
    EXPECT_LE(d.batch_lines, tuner.config().max_batch_lines);
    prev = d.batch_lines;
  }
  // And in density, at a fixed dirty-set size.
  prev = 0;
  for (double density : {1.0, 4.0, 16.0, 64.0}) {
    const SyncDecision d = tuner.decide(obs(256, density, 0.0));
    EXPECT_GE(d.batch_lines, prev) << "density " << density;
    prev = d.batch_lines;
  }
}

TEST(SyncTunerTest, BatchSaturatesAtConfiguredBounds) {
  SyncTuner tuner;
  EXPECT_EQ(tuner.decide(obs(0, 0.0, 0.0)).batch_lines,
            tuner.config().min_batch_lines);
  EXPECT_EQ(tuner.decide(obs(1u << 20, 64.0, 0.0)).batch_lines,
            tuner.config().max_batch_lines);
}

TEST(SyncTunerTest, WorkersGrowWithPagesAndShedUnderContention) {
  SyncTuner tuner;
  unsigned prev = 0;
  for (std::size_t pages : {0u, 32u, 128u, 512u, 4096u}) {
    const SyncDecision d = tuner.decide(obs(pages, 8.0, 0.0));
    EXPECT_GE(d.workers, prev) << "pages " << pages;
    EXPECT_GE(d.workers, 1u);
    EXPECT_LE(d.workers, tuner.config().max_workers);
    prev = d.workers;
  }
  // Monotone non-increasing in contention, collapsing to 1 at the high
  // threshold and beyond.
  prev = tuner.config().max_workers + 1;
  for (double c : {0.0, 0.01, 0.05, 0.2, 0.5, 0.9}) {
    const SyncDecision d = tuner.decide(obs(4096, 8.0, c));
    EXPECT_LE(d.workers, prev) << "contention " << c;
    prev = d.workers;
  }
  EXPECT_EQ(tuner.decide(obs(4096, 8.0, 0.5)).workers, 1u);
  EXPECT_EQ(tuner.decide(obs(4096, 8.0, 1.0)).workers, 1u);
  // Below the low threshold nothing sheds.
  EXPECT_EQ(tuner.decide(obs(4096, 8.0, 0.0)).workers,
            tuner.config().max_workers);
}

TEST(SyncTunerTest, PinnedKnobsReturnedVerbatim) {
  SyncTunerConfig cfg;
  cfg.pinned_batch_lines = 96;  // deliberately not a power of two
  SyncTuner batch_pinned(cfg);
  for (std::size_t pages : {0u, 512u, 65536u}) {
    const SyncDecision d = batch_pinned.decide(obs(pages, 32.0, 0.0));
    EXPECT_EQ(d.batch_lines, 96u) << "pages " << pages;
  }
  // The unpinned knob still adapts.
  EXPECT_LT(batch_pinned.decide(obs(32, 8.0, 0.0)).workers,
            batch_pinned.decide(obs(4096, 8.0, 0.0)).workers);

  SyncTunerConfig wcfg;
  wcfg.pinned_workers = 3;
  SyncTuner workers_pinned(wcfg);
  for (double c : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(workers_pinned.decide(obs(4096, 8.0, c)).workers, 3u);
  }
  EXPECT_LT(workers_pinned.decide(obs(8, 1.0, 0.0)).batch_lines,
            workers_pinned.decide(obs(65536, 64.0, 0.0)).batch_lines);
}

TEST(SyncTunerTest, SmoothingStopsAlternatingDensityOscillation) {
  // A workload that alternates dense and sparse epochs at a fixed dirty-set
  // size. Raw, the tuner flaps the batch size between its extremes every
  // call; with EWMA smoothing plus hysteresis it must settle after a short
  // warm-up and never move again.
  constexpr std::size_t kPages = 512;
  constexpr int kRounds = 40;
  constexpr int kWarmup = 8;
  const auto density_at = [](int i) { return (i % 2 == 0) ? 64.0 : 1.0; };

  SyncTuner raw;  // defaults: alpha 1.0, hysteresis 0 — stateless
  std::size_t raw_changes = 0;
  std::size_t raw_prev = raw.decide(obs(kPages, density_at(0), 0.0)).batch_lines;
  for (int i = 1; i < kRounds; ++i) {
    const std::size_t b = raw.decide(obs(kPages, density_at(i), 0.0)).batch_lines;
    if (b != raw_prev) ++raw_changes;
    raw_prev = b;
  }
  EXPECT_GT(raw_changes, 30u);  // flaps essentially every epoch

  SyncTunerConfig cfg;
  cfg.ewma_alpha = 0.1;
  cfg.hysteresis = 1.0;
  SyncTuner smoothed(cfg);
  std::size_t changes = 0;
  std::size_t prev = 0;
  unsigned wprev = 0;
  for (int i = 0; i < kRounds; ++i) {
    const SyncDecision d = smoothed.decide(obs(kPages, density_at(i), 0.0));
    if (i > kWarmup && (d.batch_lines != prev || d.workers != wprev)) {
      ++changes;
    }
    prev = d.batch_lines;
    wprev = d.workers;
  }
  EXPECT_EQ(changes, 0u);
}

TEST(SyncTunerTest, DefaultConfigStaysStateless) {
  // Interleave wildly different observations through ONE default tuner and
  // check each answer matches a fresh tuner's: the feedback state must be
  // inert unless explicitly enabled.
  SyncTuner shared;
  for (int i = 0; i < 6; ++i) {
    const SyncObservation o =
        (i % 2 == 0) ? obs(1u << 18, 64.0, 0.0) : obs(4, 1.0, 0.9);
    SyncTuner fresh;
    const SyncDecision a = shared.decide(o);
    const SyncDecision b = fresh.decide(o);
    EXPECT_EQ(a.batch_lines, b.batch_lines) << "round " << i;
    EXPECT_EQ(a.workers, b.workers) << "round " << i;
  }
}

TEST(SyncTunerTest, DensityFloorsAtOneLinePerPage) {
  // A dirty page implies at least one dirty line; a zero/garbage density
  // observation must not drive the batch below what dirty_pages alone
  // implies.
  SyncTuner tuner;
  EXPECT_EQ(tuner.decide(obs(4096, 0.0, 0.0)).batch_lines,
            tuner.decide(obs(4096, 1.0, 0.0)).batch_lines);
}

}  // namespace
}  // namespace pax::libpax
