// Tests of the line-granular incremental diff (track_lines): candidate-bit
// collision fallback, digest-driven skipping, tracking state reset across
// crash/recovery, and stats equivalence with tracking off.
#include <gtest/gtest.h>

#include <cstring>

#include "pax/common/crc.hpp"
#include "pax/libpax/runtime.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 8 << 20;

RuntimeOptions tracked_opts() {
  RuntimeOptions o;
  o.log_size = 2 << 20;
  o.sync_batch_lines = 64;
  o.diff_workers = 1;
  o.track_lines = true;
  return o;
}

std::byte* page_base(PaxRuntime& rt, std::size_t page) {
  return rt.vpm_base() + page * kPageSize;
}

std::uint32_t crc_of_line(PaxRuntime& rt, std::size_t page,
                          std::size_t line) {
  return crc32c(page_base(rt, page) + line * kCacheLineSize, kCacheLineSize);
}

TEST(IncrementalDiffTest, DigestCollisionFallsBackToMemcmp) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  constexpr std::size_t kPage = 3;
  {
    auto rt = PaxRuntime::attach(pm.get(), tracked_opts()).value();
    std::memset(page_base(*rt, kPage), 0xA1, kCacheLineSize);
    ASSERT_TRUE(rt->persist().ok());  // seeds the page's digests
    ASSERT_TRUE(rt->region().line_digests_valid(PageIndex{kPage}));

    // New epoch: line 0 <- B. The store faults (the page was re-protected
    // by persist), so line 0's candidate bit is set.
    std::memset(page_base(*rt, kPage), 0xB2, kCacheLineSize);
    ASSERT_EQ(rt->region().candidate_lines(PageIndex{kPage}) & 1u, 1u);

    // Simulate a CRC collision: overwrite the stored digest with the CRC of
    // the *new* contents while the device still holds A. Digest-only
    // tracking would falsely skip the line; the candidate bit must force
    // the memcmp and push B anyway.
    rt->region().set_line_digest(PageIndex{kPage}, 0,
                                 crc_of_line(*rt, kPage, 0));

    const SyncStats before = rt->sync_stats();
    ASSERT_TRUE(rt->persist().ok());
    const SyncStats after = rt->sync_stats();
    EXPECT_GE(after.lines_synced - before.lines_synced, 1u);
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), tracked_opts()).value();
  EXPECT_EQ(page_base(*rt, kPage)[0], std::byte{0xB2});
}

TEST(IncrementalDiffTest, DigestMatchSkipsLinesWithoutTouchingShadow) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PaxRuntime::attach(pm.get(), tracked_opts()).value();
  constexpr std::size_t kPage = 5;
  std::memset(page_base(*rt, kPage), 0x11, kPageSize);
  ASSERT_TRUE(rt->persist().ok());
  // Persist re-protected the page: the candidate set restarts empty.
  EXPECT_EQ(rt->region().candidate_lines(PageIndex{kPage}), 0u);

  // Touch exactly one line. Only that line (fault bit + digest mismatch)
  // may reach the memcmp; the other 63 must be skipped outright.
  page_base(*rt, kPage)[0] = std::byte{0x22};
  const SyncStats before = rt->sync_stats();
  ASSERT_TRUE(rt->persist().ok());
  const SyncStats after = rt->sync_stats();
  EXPECT_EQ(after.pages_scanned - before.pages_scanned, 1u);
  EXPECT_EQ(after.lines_diffed - before.lines_diffed, 1u);
  EXPECT_EQ(after.lines_skipped - before.lines_skipped, kLinesPerPage - 1);
  EXPECT_EQ(after.lines_synced - before.lines_synced, 1u);
}

TEST(IncrementalDiffTest, TrackingStateResetsAcrossCrashRecovery) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  constexpr std::size_t kPage = 7;
  {
    auto rt = PaxRuntime::attach(pm.get(), tracked_opts()).value();
    std::memset(page_base(*rt, kPage), 0x33, kPageSize);
    ASSERT_TRUE(rt->persist().ok());
    ASSERT_TRUE(rt->region().line_digests_valid(PageIndex{kPage}));
    // Uncommitted garbage that must die with the crash.
    std::memset(page_base(*rt, kPage), 0xEE, kPageSize);
  }
  pm->crash(pmem::CrashConfig::torn(0.5, 99));

  auto rt = PaxRuntime::attach(pm.get(), tracked_opts()).value();
  // A fresh region: no page may carry digests or candidate bits from the
  // previous life — the first diff of each page is a full rebuild.
  EXPECT_FALSE(rt->region().line_digests_valid(PageIndex{kPage}));
  EXPECT_EQ(rt->region().candidate_lines(PageIndex{kPage}), 0u);
  for (std::size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(page_base(*rt, kPage)[i], std::byte{0x33}) << "byte " << i;
  }

  page_base(*rt, kPage)[0] = std::byte{0x44};
  const SyncStats before = rt->sync_stats();
  ASSERT_TRUE(rt->persist().ok());
  const SyncStats after = rt->sync_stats();
  EXPECT_GE(after.digest_rebuilds - before.digest_rebuilds, 1u);
  EXPECT_TRUE(rt->region().line_digests_valid(PageIndex{kPage}));
}

TEST(IncrementalDiffTest, TrackingOffReproducesLegacyStatsExactly) {
  // The same deterministic workload against tracking on and off; off must
  // behave (and count) exactly like the page-granular path, and both must
  // find the same dirty lines and recover the same state.
  auto run = [](bool track, RuntimeStats* rstats, SyncStats* sstats,
                std::vector<std::byte>* image) {
    auto pm = pmem::PmemDevice::create_in_memory(kPool);
    RuntimeOptions opts = tracked_opts();
    opts.track_lines = track;
    int last = 0;
    {
      auto rt = PaxRuntime::attach(pm.get(), opts).value();
      for (int epoch = 0; epoch < 3; ++epoch) {
        last = 0x50 + epoch;
        for (std::size_t p = 1; p <= 6; ++p) {
          for (std::size_t l = 0; l < 4; ++l) {
            page_base(*rt, p)[l * kCacheLineSize] =
                static_cast<std::byte>(last);
          }
        }
        ASSERT_TRUE(rt->persist().ok());
      }
      *rstats = rt->stats();
      *sstats = rt->sync_stats();
    }
    pm->crash(pmem::CrashConfig::drop_all());
    auto rt = PaxRuntime::attach(pm.get(), opts).value();
    image->assign(rt->vpm_base() + kPageSize, rt->vpm_base() + 7 * kPageSize);
  };

  RuntimeStats on_r{}, off_r{};
  SyncStats on_s{}, off_s{};
  std::vector<std::byte> on_image, off_image;
  run(true, &on_r, &on_s, &on_image);
  run(false, &off_r, &off_s, &off_image);

  // Tracking off: no skips, every scanned page is a full 64-line compare —
  // the PR 2 accounting, untouched.
  EXPECT_EQ(off_s.lines_skipped, 0u);
  EXPECT_EQ(off_s.digest_rebuilds, 0u);
  EXPECT_EQ(off_s.lines_diffed, off_s.pages_scanned * kLinesPerPage);
  EXPECT_EQ(off_r.lines_diff_checked,
            off_r.pages_diffed * kLinesPerPage);

  // Both modes push the same lines and recover the same bytes.
  EXPECT_EQ(on_r.lines_dirty_found, off_r.lines_dirty_found);
  EXPECT_EQ(on_r.persists, off_r.persists);
  EXPECT_EQ(on_s.lines_synced, off_s.lines_synced);
  EXPECT_LT(on_s.lines_diffed, off_s.lines_diffed);  // tracking earns skips
  EXPECT_EQ(on_image, off_image);
}

}  // namespace
}  // namespace pax::libpax
