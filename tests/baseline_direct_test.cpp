#include "pax/baselines/direct/direct_hashmap.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pax::baselines::direct {
namespace {

using testing::TestPool;

TEST(DirectHashMapTest, PutGetRoundTrip) {
  TestPool tp = TestPool::create(4 << 20, 64 * 1024);
  auto map = DirectHashMap::create(&tp.pool, 1024).value();
  for (std::uint64_t k = 1; k <= 500; ++k) {
    ASSERT_TRUE(map.put(k, k * 2).is_ok());
  }
  for (std::uint64_t k = 1; k <= 500; ++k) {
    ASSERT_EQ(map.get(k), std::optional(k * 2));
  }
  EXPECT_FALSE(map.get(99999).has_value());
  EXPECT_EQ(map.size(), 500u);
}

TEST(DirectHashMapTest, UpdateDoesNotGrow) {
  TestPool tp = TestPool::create(4 << 20, 64 * 1024);
  auto map = DirectHashMap::create(&tp.pool, 64).value();
  ASSERT_TRUE(map.put(7, 1).is_ok());
  ASSERT_TRUE(map.put(7, 2).is_ok());
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.get(7), std::optional<std::uint64_t>(2));
}

TEST(DirectHashMapTest, FullTableReportsOutOfSpace) {
  TestPool tp = TestPool::create(4 << 20, 64 * 1024);
  auto map = DirectHashMap::create(&tp.pool, 16).value();
  Status last = Status::ok();
  for (std::uint64_t k = 1; k <= 17; ++k) {
    last = map.put(k, k);
    if (!last.is_ok()) break;
  }
  EXPECT_EQ(last.code(), StatusCode::kOutOfSpace);
}

TEST(DirectHashMapTest, ZeroKeyRejected) {
  TestPool tp = TestPool::create(4 << 20, 64 * 1024);
  auto map = DirectHashMap::create(&tp.pool, 16).value();
  EXPECT_EQ(map.put(0, 1).code(), StatusCode::kInvalidArgument);
}

TEST(DirectHashMapTest, NotCrashConsistentByDesign) {
  // The defining property of this baseline (paper Fig 2b "PM Direct"):
  // a crash loses un-evicted stores, and nothing restores consistency.
  TestPool tp = TestPool::create(4 << 20, 64 * 1024);
  auto map = DirectHashMap::create(&tp.pool, 64).value();
  ASSERT_TRUE(map.put(1, 111).is_ok());
  tp.device->crash(pmem::CrashConfig::drop_all());
  EXPECT_FALSE(map.get(1).has_value());  // the insert simply evaporated
}

TEST(DirectHashMapTest, NoFencesIssued) {
  TestPool tp = TestPool::create(4 << 20, 64 * 1024);
  auto map = DirectHashMap::create(&tp.pool, 256).value();
  tp.device->reset_stats();
  for (std::uint64_t k = 1; k <= 100; ++k) ASSERT_TRUE(map.put(k, k).is_ok());
  EXPECT_EQ(tp.device->stats().drains, 0u);
  EXPECT_EQ(tp.device->stats().line_flushes, 0u);
}

}  // namespace
}  // namespace pax::baselines::direct
