#include "pax/baselines/pmdk/tx.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pax::baselines::pmdk {
namespace {

using testing::TestPool;

std::span<const std::byte> u64_bytes(const std::uint64_t& v) {
  return std::as_bytes(std::span(&v, 1));
}

struct TxFixture : ::testing::Test {
  TestPool tp = TestPool::create();
  PoolOffset at(std::uint64_t i) { return tp.pool.data_offset() + i * 8; }
};

TEST_F(TxFixture, CommittedTxIsDurable) {
  TxRuntime tx(&tp.pool);
  ASSERT_TRUE(tx.tx_begin().is_ok());
  ASSERT_TRUE(tx.tx_snapshot(at(0), 8).is_ok());
  const std::uint64_t v = 77;
  ASSERT_TRUE(tx.tx_store(at(0), u64_bytes(v)).is_ok());
  ASSERT_TRUE(tx.tx_commit().is_ok());

  tp.device->crash(pmem::CrashConfig::drop_all());
  EXPECT_EQ(tp.device->load_u64(at(0)), 77u);
}

TEST_F(TxFixture, InterruptedTxRollsBackOnRecovery) {
  {
    TxRuntime tx(&tp.pool);
    ASSERT_TRUE(tx.tx_begin().is_ok());
    ASSERT_TRUE(tx.tx_snapshot(at(0), 8).is_ok());
    const std::uint64_t v = 1;
    ASSERT_TRUE(tx.tx_store(at(0), u64_bytes(v)).is_ok());
    ASSERT_TRUE(tx.tx_commit().is_ok());

    // Second tx: snapshot durable, data overwritten, no commit.
    ASSERT_TRUE(tx.tx_begin().is_ok());
    ASSERT_TRUE(tx.tx_snapshot(at(0), 8).is_ok());
    const std::uint64_t v2 = 2;
    ASSERT_TRUE(tx.tx_store(at(0), u64_bytes(v2)).is_ok());
    tp.device->flush_range(at(0), 8);  // the partial write even reached media
    tp.device->drain();
  }
  tp.device->crash(pmem::CrashConfig::drop_all());

  TxRuntime recovered(&tp.pool);  // recovery runs in the constructor
  EXPECT_EQ(recovered.stats().recovered_txs, 1u);
  EXPECT_EQ(tp.device->load_u64(at(0)), 1u);
}

TEST_F(TxFixture, MultiRangeTxRollsBackInReverse) {
  {
    TxRuntime tx(&tp.pool);
    ASSERT_TRUE(tx.tx_begin().is_ok());
    for (std::uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(tx.tx_snapshot(at(i), 8).is_ok());
      const std::uint64_t v = 100 + i;
      ASSERT_TRUE(tx.tx_store(at(i), u64_bytes(v)).is_ok());
      tp.device->flush_range(at(i), 8);
    }
    tp.device->drain();
  }
  tp.device->crash(pmem::CrashConfig::drop_all());

  TxRuntime recovered(&tp.pool);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tp.device->load_u64(at(i)), 0u) << i;
  }
}

TEST_F(TxFixture, AbortRestoresSnapshots) {
  TxRuntime tx(&tp.pool);
  ASSERT_TRUE(tx.tx_begin().is_ok());
  ASSERT_TRUE(tx.tx_snapshot(at(3), 8).is_ok());
  const std::uint64_t v = 9;
  ASSERT_TRUE(tx.tx_store(at(3), u64_bytes(v)).is_ok());
  ASSERT_TRUE(tx.tx_abort().is_ok());
  EXPECT_EQ(tp.device->load_u64(at(3)), 0u);
  EXPECT_EQ(tx.stats().txs_aborted, 1u);
  // Runtime reusable after abort.
  ASSERT_TRUE(tx.tx_begin().is_ok());
  ASSERT_TRUE(tx.tx_commit().is_ok());
}

TEST_F(TxFixture, SfencesCountedPerSnapshotAndCommit) {
  TxRuntime tx(&tp.pool);
  const auto base = tx.stats().sfences;
  ASSERT_TRUE(tx.tx_begin().is_ok());
  ASSERT_TRUE(tx.tx_snapshot(at(0), 8).is_ok());
  ASSERT_TRUE(tx.tx_snapshot(at(1), 8).is_ok());
  const std::uint64_t v = 5;
  ASSERT_TRUE(tx.tx_store(at(0), u64_bytes(v)).is_ok());
  ASSERT_TRUE(tx.tx_commit().is_ok());
  // 2 snapshot fences + data fence + commit-record fence + log-retire fence.
  EXPECT_EQ(tx.stats().sfences - base, 5u);
}

TEST_F(TxFixture, SnapshotOutsideDataExtentRejected) {
  TxRuntime tx(&tp.pool);
  ASSERT_TRUE(tx.tx_begin().is_ok());
  EXPECT_FALSE(tx.tx_snapshot(0, 8).is_ok());  // pool header
  ASSERT_TRUE(tx.tx_abort().is_ok());
}

TEST_F(TxFixture, CrashAfterCommitRecordButBeforeLogRetire) {
  // The commit record is the point of no return: even when the crash eats
  // the log-retire step, recovery must keep the transaction's effects.
  // Construct the exact pre-retire log image by hand: a durable snapshot
  // record (old value 0) followed by a durable commit record, with the new
  // value already durable in the data extent.
  {
    wal::LogWriter writer(tp.device.get(), tp.pool.log_offset(),
                          tp.pool.log_size());
    std::vector<std::byte> payload(sizeof(wal::RangeUndoHeader) + 8);
    wal::RangeUndoHeader h{at(0), 8, 0};
    std::memcpy(payload.data(), &h, sizeof(h));  // old bytes are zero
    ASSERT_TRUE(writer.append(1, wal::RecordType::kRangeUndo, payload).ok());
    ASSERT_TRUE(writer.append(1, wal::RecordType::kTxCommit, {}).ok());
    writer.flush();
    tp.device->atomic_durable_store_u64(at(0), 42);
  }
  tp.device->crash(pmem::CrashConfig::drop_all());

  TxRuntime recovered(&tp.pool);
  EXPECT_EQ(recovered.stats().recovered_txs, 0u);  // nothing undone
  EXPECT_EQ(tp.device->load_u64(at(0)), 42u);
  // And the log was retired: a fresh scan finds nothing.
  EXPECT_TRUE(wal::LogReader::read_all(tp.device.get(), tp.pool.log_offset(),
                                       tp.pool.log_size())
                  .empty());
}

}  // namespace
}  // namespace pax::baselines::pmdk
