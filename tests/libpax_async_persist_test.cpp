// Runtime-level tests of non-blocking persist (§6 extension): snapshot
// semantics with sealed-but-uncommitted epochs, interaction with the
// background flusher, and black-box containers across async commits.
#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>

#include "pax/libpax/persistent.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 32 << 20;

RuntimeOptions options() {
  RuntimeOptions o;
  o.log_size = 4 << 20;
  o.device.log_flush_batch_bytes = 0;
  return o;
}

using MapAlloc =
    PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
using PMap = std::unordered_map<std::uint64_t, std::uint64_t,
                                std::hash<std::uint64_t>,
                                std::equal_to<std::uint64_t>, MapAlloc>;

TEST(AsyncPersistTest, SealedEpochNotDurableUntilCompleted) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    rt->vpm_base()[8192] = std::byte{0x21};
    auto sealed = rt->persist_async();
    ASSERT_TRUE(sealed.ok());
    EXPECT_EQ(sealed.value(), 1u);
    EXPECT_EQ(rt->committed_epoch(), 0u);  // not yet durable
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_EQ(rt->committed_epoch(), 0u);
  EXPECT_EQ(rt->vpm_base()[8192], std::byte{0});  // rolled back
}

TEST(AsyncPersistTest, CompletedAsyncPersistIsDurable) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    rt->vpm_base()[8192] = std::byte{0x22};
    ASSERT_TRUE(rt->persist_async().ok());
    auto committed = rt->complete_persist();
    ASSERT_TRUE(committed.ok());
    EXPECT_EQ(committed.value(), 1u);
    EXPECT_EQ(rt->committed_epoch(), 1u);
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_EQ(rt->committed_epoch(), 1u);
  EXPECT_EQ(rt->vpm_base()[8192], std::byte{0x22});
}

TEST(AsyncPersistTest, MutationsContinueWhileCommitPends) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    rt->vpm_base()[8192] = std::byte{1};
    ASSERT_TRUE(rt->persist_async().ok());

    // Epoch 2 mutates the SAME byte and a new one while epoch 1 is pending.
    rt->vpm_base()[8192] = std::byte{2};
    rt->vpm_base()[12288] = std::byte{3};

    ASSERT_TRUE(rt->complete_persist().ok());  // epoch 1 durable
    // Crash now: epoch 2's mutations must vanish, epoch 1's stay.
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_EQ(rt->committed_epoch(), 1u);
  EXPECT_EQ(rt->vpm_base()[8192], std::byte{1});
  EXPECT_EQ(rt->vpm_base()[12288], std::byte{0});
}

TEST(AsyncPersistTest, SyncStepCompletesPendingCommit) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  rt->vpm_base()[8192] = std::byte{5};
  ASSERT_TRUE(rt->persist_async().ok());
  EXPECT_EQ(rt->committed_epoch(), 0u);
  rt->sync_step();  // what the background flusher runs
  EXPECT_EQ(rt->committed_epoch(), 1u);
}

TEST(AsyncPersistTest, BackToBackAsyncPersistsCommitInOrder) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  for (int e = 1; e <= 5; ++e) {
    rt->vpm_base()[8192 + e * 64] = static_cast<std::byte>(e);
    auto sealed = rt->persist_async();  // auto-completes the previous one
    ASSERT_TRUE(sealed.ok());
    EXPECT_EQ(sealed.value(), static_cast<Epoch>(e));
  }
  ASSERT_TRUE(rt->complete_persist().ok());
  EXPECT_EQ(rt->committed_epoch(), 5u);
}

TEST(AsyncPersistTest, UnorderedMapAcrossAsyncEpochsWithCrash) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    for (std::uint64_t k = 0; k < 200; ++k) (*map)[k] = k;
    ASSERT_TRUE(rt->persist_async().ok());
    // Keep mutating during the pending commit.
    for (std::uint64_t k = 200; k < 400; ++k) (*map)[k] = k;
    ASSERT_TRUE(rt->complete_persist().ok());  // epoch 1: keys 0..199
    // Epoch 2 (keys 200..399) never commits.
    rt->sync_step();
    // sync_step committed nothing new (no seal pending), but pushed data.
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  auto map = Persistent<PMap>::open(*rt).value();
  ASSERT_EQ(rt->committed_epoch(), 1u);
  ASSERT_EQ(map->size(), 200u);
  for (std::uint64_t k = 0; k < 200; ++k) ASSERT_EQ(map->at(k), k);
}

TEST(AsyncPersistTest, MixedSyncAndAsyncPersists) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    (*map)[1] = 1;
    ASSERT_TRUE(rt->persist().ok());        // epoch 1 (sync)
    (*map)[2] = 2;
    ASSERT_TRUE(rt->persist_async().ok());  // epoch 2 sealed
    (*map)[3] = 3;
    ASSERT_TRUE(rt->persist().ok());        // completes 2, commits 3
    EXPECT_EQ(rt->committed_epoch(), 3u);
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  auto map = Persistent<PMap>::open(*rt).value();
  EXPECT_EQ(map->size(), 3u);
}

}  // namespace
}  // namespace pax::libpax
