// Corruption fuzzing of the WAL reader: after arbitrary byte flips in the
// log extent, the scan must (a) never crash, (b) only ever return records
// that were genuinely appended, and (c) return a *prefix* of the appended
// sequence (a corrupted frame ends the scan; nothing after it can be
// trusted because append order is the only order).
#include <gtest/gtest.h>

#include <cstring>

#include "pax/common/rng.hpp"
#include "pax/pmem/pmem_device.hpp"
#include "pax/wal/wal.hpp"

namespace pax::wal {
namespace {

constexpr PoolOffset kExtent = 4096;
constexpr std::size_t kExtentSize = 256 * 1024;

std::vector<std::byte> payload_for(std::uint64_t i) {
  // Deterministic, length-varying payloads.
  std::vector<std::byte> p(8 + (i % 200));
  for (std::size_t b = 0; b < p.size(); ++b) {
    p[b] = static_cast<std::byte>((i * 37 + b * 11) & 0xff);
  }
  return p;
}

class WalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalFuzz, CorruptedLogYieldsOnlyGenuinePrefix) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  auto dev = pmem::PmemDevice::create_in_memory(1 << 20);
  LogWriter writer(dev.get(), kExtent, kExtentSize);

  const std::uint64_t n_records = 50 + rng.next_below(200);
  std::vector<std::vector<std::byte>> originals;
  for (std::uint64_t i = 0; i < n_records; ++i) {
    auto p = payload_for(i);
    ASSERT_TRUE(writer.append(1 + i % 7, RecordType::kLineUndo, p).ok());
    originals.push_back(std::move(p));
  }
  writer.flush();

  // Flip 1..16 random bytes anywhere in the used part of the extent.
  const std::uint64_t flips = 1 + rng.next_below(16);
  for (std::uint64_t f = 0; f < flips; ++f) {
    const PoolOffset at = kExtent + rng.next_below(writer.appended());
    std::byte b{};
    dev->load(at, {&b, 1});
    b ^= static_cast<std::byte>(1 + rng.next_below(255));
    dev->store(at, {&b, 1});
    dev->flush_line(LineIndex::containing(at));
  }
  dev->drain();

  // Scan: must terminate, and everything returned must be a clean prefix.
  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_LE(records.size(), originals.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(records[i].type, RecordType::kLineUndo);
    ASSERT_EQ(records[i].epoch, 1 + i % 7) << "record " << i;
    ASSERT_EQ(records[i].payload, originals[i]) << "record " << i;
  }
}

TEST_P(WalFuzz, TornTailNeverYieldsPhantomRecords) {
  const std::uint64_t seed = GetParam();
  auto dev = pmem::PmemDevice::create_in_memory(1 << 20);
  LogWriter writer(dev.get(), kExtent, kExtentSize);

  Xoshiro256 rng(seed * 13 + 5);
  const std::uint64_t durable_n = 10 + rng.next_below(40);
  for (std::uint64_t i = 0; i < durable_n; ++i) {
    ASSERT_TRUE(writer.append(1, RecordType::kLineUndo, payload_for(i)).ok());
  }
  writer.flush();
  // Stage more records, then crash with torn survival.
  const std::uint64_t volatile_n = 1 + rng.next_below(30);
  for (std::uint64_t i = 0; i < volatile_n; ++i) {
    ASSERT_TRUE(writer
                    .append(1, RecordType::kLineUndo,
                            payload_for(durable_n + i))
                    .ok());
  }
  dev->crash(pmem::CrashConfig::torn(0.5, seed));

  auto records = LogReader::read_all(dev.get(), kExtent, kExtentSize);
  ASSERT_GE(records.size(), durable_n);  // durable prefix always intact
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(records[i].payload, payload_for(i)) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

}  // namespace
}  // namespace pax::wal
