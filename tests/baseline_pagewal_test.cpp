#include "pax/baselines/pagewal/pagewal.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "pax/libpax/runtime.hpp"

namespace pax::baselines::pagewal {
namespace {

constexpr std::size_t kPool = 32 << 20;

TEST(PageWalTest, PersistedPagesSurviveCrash) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PageWalRuntime::attach(pm.get()).value();
    std::memset(rt->base() + 2 * kPageSize, 0x3c, 100);
    ASSERT_TRUE(rt->persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PageWalRuntime::attach(pm.get()).value();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rt->base()[2 * kPageSize + i], std::byte{0x3c});
  }
}

TEST(PageWalTest, UnpersistedPagesRollBack) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PageWalRuntime::attach(pm.get()).value();
    std::memset(rt->base(), 0x11, 64);
    ASSERT_TRUE(rt->persist().ok());
    std::memset(rt->base(), 0x22, 64);
    // Stage epoch-2 page log + write-back by hand-invoking persist partway:
    // not possible from the API, so emulate the dangerous moment — the
    // page was logged and written back but the epoch cell never moved —
    // by crashing right after a second persist's write-back. Simplest
    // honest variant: crash with the epoch-2 mutation only in the region.
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PageWalRuntime::attach(pm.get()).value();
  EXPECT_EQ(rt->committed_epoch(), 1u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rt->base()[i], std::byte{0x11}) << i;
  }
}

TEST(PageWalTest, TrapPerPageNotPerWrite) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PageWalRuntime::attach(pm.get()).value();
  for (int i = 0; i < 1000; ++i) {
    rt->base()[i % kPageSize] = static_cast<std::byte>(i);
  }
  EXPECT_EQ(rt->fault_count(), 1u);  // amortization: 1 trap per page/epoch
  ASSERT_TRUE(rt->persist().ok());
  rt->base()[0] = std::byte{1};
  EXPECT_EQ(rt->fault_count(), 2u);  // re-armed per epoch
}

TEST(PageWalTest, WriteAmplificationIsPageGranular) {
  // One 8-byte store → a full 4 KiB page logged and a full page written
  // back. Contrast with PAX (64 B line record): the §1 claim, quantified in
  // bench/abl_write_amplification.
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PageWalRuntime::attach(pm.get()).value();
  std::uint64_t v = 42;
  std::memcpy(rt->base() + 8 * kPageSize, &v, sizeof(v));
  ASSERT_TRUE(rt->persist().ok());
  EXPECT_EQ(rt->stats().pages_logged, 1u);
  EXPECT_GE(rt->stats().log_bytes, kPageSize);
  EXPECT_EQ(rt->stats().pages_written_back, 1u);

  // Same workload through libpax: one line record, ~96 B of log.
  auto pm2 = pmem::PmemDevice::create_in_memory(kPool);
  auto lp = libpax::PaxRuntime::attach(pm2.get()).value();
  ASSERT_TRUE(lp->persist().ok());  // commit heap-format writes
  const auto base_bytes = lp->device().log_stats().bytes_staged;
  std::memcpy(lp->vpm_base() + 8 * kPageSize, &v, sizeof(v));
  ASSERT_TRUE(lp->persist().ok());
  const auto pax_bytes = lp->device().log_stats().bytes_staged - base_bytes;
  EXPECT_LT(pax_bytes, 128u);
  EXPECT_GT(rt->stats().log_bytes / pax_bytes, 30u);  // ≳40× amplification
}

TEST(PageWalTest, MultipleEpochsAccumulate) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PageWalRuntime::attach(pm.get()).value();
    for (int e = 0; e < 5; ++e) {
      std::memset(rt->base() + e * kPageSize, 0x40 + e, kPageSize);
      ASSERT_TRUE(rt->persist().ok());
    }
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PageWalRuntime::attach(pm.get()).value();
  EXPECT_EQ(rt->committed_epoch(), 5u);
  for (int e = 0; e < 5; ++e) {
    EXPECT_EQ(rt->base()[e * kPageSize], static_cast<std::byte>(0x40 + e));
  }
}

TEST(PageWalTest, LogExtentExhaustionSurfaces) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PageWalRuntime::attach(pm.get(), /*log_size=*/2 * kPageSize)
                .value();  // not even one page record fits… well, one won't:
                           // 4096 payload + header > 4096, needs 2 pages
  std::memset(rt->base(), 0x1, kPageSize);
  std::memset(rt->base() + kPageSize, 0x2, kPageSize);
  auto e = rt->persist();
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kOutOfSpace);
}

}  // namespace
}  // namespace pax::baselines::pagewal
