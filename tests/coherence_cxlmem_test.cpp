// CXL.mem visibility mode (§6): the device sees only reads and write-backs.
// Crash consistency must still hold — provided the host runs the CLWB sweep
// before persist, since the device cannot pull.
#include <gtest/gtest.h>

#include "pax/coherence/host_cache.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "test_util.hpp"

namespace pax::coherence {
namespace {

using testing::TestPool;

struct CxlMemFixture : ::testing::Test {
  TestPool tp = TestPool::create(8 << 20, 1 << 20);
  device::PaxDevice dev{&tp.pool, device::DeviceConfig::defaults()};

  HostCacheConfig mem_config() {
    HostCacheConfig c;
    c.protocol = DeviceProtocol::kCxlMem;
    c.record_trace = true;
    return c;
  }

  PoolOffset addr(std::uint64_t i) const {
    return tp.pool.data_offset() + i * kCacheLineSize;
  }
};

TEST_F(CxlMemFixture, StoresAreSilentToTheDevice) {
  HostCacheSim host(&dev, mem_config());
  ASSERT_TRUE(host.store_u64(addr(0), 42).is_ok());
  EXPECT_EQ(dev.stats().write_intents, 0u);     // no RdOwn in .mem
  EXPECT_EQ(dev.stats().first_touch_logs, 0u);  // nothing logged yet
  EXPECT_EQ(host.stats().rd_own, 0u);
  EXPECT_EQ(host.line_state(LineIndex::containing(addr(0))),
            MesiState::kModified);
}

TEST_F(CxlMemFixture, DirtyEvictionTriggersMemWrLogging) {
  HostCacheConfig small = mem_config();
  small.l1 = {1024, 2};
  small.l2 = {2048, 2};
  small.llc = {4 * 1024, 2};
  HostCacheSim host(&dev, small);

  ASSERT_TRUE(host.store_u64(addr(0), 7).is_ok());
  // Blow the line out: the eviction is the device's first notification.
  for (std::uint64_t i = 1; i < 256; ++i) host.load_u64(addr(i));
  EXPECT_GT(dev.stats().mem_writes, 0u);
  EXPECT_GT(dev.stats().first_touch_logs, 0u);
  EXPECT_EQ(host.load_u64(addr(0)), 7u);  // served back from device
}

TEST_F(CxlMemFixture, ClwbSweepMakesPersistCorrect) {
  HostCacheSim host(&dev, mem_config());
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(host.store_u64(addr(i), 100 + i).is_ok());
  }
  // .mem persist protocol: CLWB sweep, then persist with a no-op pull.
  ASSERT_TRUE(host.clwb_all_dirty().is_ok());
  EXPECT_EQ(host.stats().clwbs, 50u);
  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());

  host.drop_all_without_writeback();
  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(tp.device->load_u64(addr(i)), 100 + i) << i;
  }
}

TEST_F(CxlMemFixture, PersistWithoutClwbSweepLosesCachedData) {
  // The failure mode §6 implies: without the sweep the device cannot see
  // host-cached modifications, so they are simply not part of the snapshot
  // (they roll forward only if later evicted — or vanish on crash).
  HostCacheSim host(&dev, mem_config());
  ASSERT_TRUE(host.store_u64(addr(0), 9).is_ok());
  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());  // no sweep: sees nothing

  host.drop_all_without_writeback();
  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  EXPECT_EQ(tp.device->load_u64(addr(0)), 0u);  // the store never made it
}

TEST_F(CxlMemFixture, UnpersistedMemWritesRollBack) {
  HostCacheSim host(&dev, mem_config());
  // Epoch 1: value committed properly.
  ASSERT_TRUE(host.store_u64(addr(0), 1).is_ok());
  ASSERT_TRUE(host.clwb_all_dirty().is_ok());
  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());

  // Epoch 2: modified, swept to the device (logged + possibly written
  // back), never persisted.
  ASSERT_TRUE(host.store_u64(addr(0), 2).is_ok());
  ASSERT_TRUE(host.clwb_all_dirty().is_ok());
  dev.tick(/*force_flush=*/true);  // proactive write-back to PM

  host.drop_all_without_writeback();
  tp.device->crash(pmem::CrashConfig::drop_all());
  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  EXPECT_EQ(pool.committed_epoch(), 1u);
  EXPECT_EQ(tp.device->load_u64(addr(0)), 1u);
}

TEST_F(CxlMemFixture, FirstTouchLoggingOncePerEpochAcrossRepeatedClwbs) {
  HostCacheSim host(&dev, mem_config());
  ASSERT_TRUE(host.store_u64(addr(0), 1).is_ok());
  ASSERT_TRUE(host.clwb_all_dirty().is_ok());
  ASSERT_TRUE(host.store_u64(addr(0), 2).is_ok());  // re-dirty (silent)
  ASSERT_TRUE(host.clwb_all_dirty().is_ok());
  EXPECT_EQ(dev.stats().first_touch_logs, 1u);  // one pre-image per epoch
  EXPECT_EQ(dev.stats().mem_writes, 2u);

  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());
  EXPECT_EQ(tp.device->load_u64(addr(0)), 2u);
}

TEST_F(CxlMemFixture, CacheModeStillUsesSnoops) {
  // Contrast check: the same sequence in .cache mode needs no CLWBs.
  HostCacheConfig cache_cfg;
  cache_cfg.protocol = DeviceProtocol::kCxlCache;
  HostCacheSim host(&dev, cache_cfg);
  ASSERT_TRUE(host.store_u64(addr(5), 55).is_ok());
  ASSERT_TRUE(dev.persist(host.pull_fn()).ok());
  EXPECT_EQ(host.stats().clwbs, 0u);
  EXPECT_EQ(host.stats().snoops_served, 1u);
  EXPECT_EQ(tp.device->load_u64(addr(5)), 55u);
}

}  // namespace
}  // namespace pax::coherence
