// Multi-threaded tests of ShardedMap: the §3.5 contract (thread-safe
// structure + quiesced persist) made safe by construction, under real
// concurrent mutation and simulated crashes.
#include "pax/libpax/sharded_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "pax/common/rng.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 64 << 20;

RuntimeOptions options() {
  RuntimeOptions o;
  o.log_size = 8 << 20;
  o.device.log_flush_batch_bytes = 0;
  return o;
}

using Map = ShardedMap<std::uint64_t, std::uint64_t>;

TEST(ShardedMapTest, BasicPutGetErase) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  auto map = Map::open(*rt, 8).value();
  EXPECT_FALSE(map.recovered());
  map.put(1, 10);
  map.put(2, 20);
  EXPECT_EQ(map.get(1), std::optional<std::uint64_t>(10));
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_FALSE(map.get(1).has_value());
  EXPECT_EQ(map.size(), 1u);
}

TEST(ShardedMapTest, ForEachVisitsEverything) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  auto map = Map::open(*rt, 4).value();
  for (std::uint64_t k = 1; k <= 100; ++k) map.put(k, k * 2);
  std::uint64_t sum = 0, count = 0;
  map.for_each([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_EQ(v, k * 2);
    sum += v;
    ++count;
  });
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(sum, 100ull * 101);
}

TEST(ShardedMapTest, RejectsBadShardCounts) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  EXPECT_FALSE(Map::open(*rt, 0).ok());
  EXPECT_FALSE(Map::open(*rt, 1000).ok());
}

TEST(ShardedMapTest, ConcurrentWritersAllLand) {
  auto rt = PaxRuntime::create_in_memory(kPool, options()).value();
  auto map = Map::open(*rt, 16).value();

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        map.put(static_cast<std::uint64_t>(t) * kPerThread + i, i);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(map.size(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; i += 97) {
      ASSERT_EQ(map.get(t * kPerThread + i), std::optional(i));
    }
  }
}

TEST(ShardedMapTest, PersistWhileWritersRunYieldsConsistentSnapshots) {
  // Writers hammer the map while another thread persists repeatedly:
  // persist() quiesces via the shard locks, so each snapshot must contain
  // only whole operations (every key k has value k — never a torn state).
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  Epoch last_epoch = 0;
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Map::open(*rt, 16).value();

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
      writers.emplace_back([&map, &stop, t] {
        Xoshiro256 rng(100 + t);
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t k = rng.next_below(5000);
          map.put(k, k);  // invariant: value == key
        }
      });
    }
    // Under load the persist loop could otherwise finish before any writer
    // is scheduled, committing only empty snapshots.
    while (map.size() == 0) std::this_thread::yield();
    for (int p = 0; p < 10; ++p) {
      auto e = map.persist();
      ASSERT_TRUE(e.ok()) << e.status().to_string();
      last_epoch = e.value();
    }
    stop.store(true);
    for (auto& th : writers) th.join();
  }
  pm->crash(pmem::CrashConfig::drop_all());

  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_GE(rt->committed_epoch(), last_epoch);
  auto map = Map::open(*rt, 16).value();
  EXPECT_TRUE(map.recovered());
  std::size_t checked = 0;
  map.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_EQ(v, k);  // no torn operation in any snapshot
    ++checked;
  });
  EXPECT_GT(checked, 0u);
}

TEST(ShardedMapTest, RecoversAcrossCrash) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Map::open(*rt, 8).value();
    for (std::uint64_t k = 0; k < 500; ++k) map.put(k, k + 7);
    ASSERT_TRUE(map.persist().ok());
    for (std::uint64_t k = 500; k < 600; ++k) map.put(k, 1);  // doomed
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  auto map = Map::open(*rt, 8).value();
  EXPECT_EQ(map.size(), 500u);
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(map.get(k), std::optional(k + 7));
  }
}

TEST(ShardedMapTest, ShardCountMismatchDetected) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    ASSERT_TRUE(Map::open(*rt, 8).ok());
    ASSERT_TRUE(rt->persist().ok());
  }
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  auto wrong = Map::open(*rt, 16);
  EXPECT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardedMapTest, AsyncPersistUnderQuiescence) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Map::open(*rt, 8).value();
    map.put(1, 11);
    ASSERT_TRUE(map.persist_async().ok());
    map.put(2, 22);  // next epoch, while commit pends
    ASSERT_TRUE(rt->complete_persist().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  auto map = Map::open(*rt, 8).value();
  EXPECT_EQ(map.get(1), std::optional<std::uint64_t>(11));
  EXPECT_FALSE(map.get(2).has_value());  // epoch 2 never completed
}

TEST(ShardedMapTest, ConcurrentGetsDuringPipelinedDrain) {
  // persist_async()'s quiescence covers only the dirty-set swap: with a
  // pipelined runtime the drain of the sealed snapshot runs while readers
  // (and writers) are back inside the map. TSan (this test runs in the CI
  // TSan job) proves the drain worker touches only its private snapshot,
  // never the live shards.
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  Epoch last_epoch = 0;
  {
    RuntimeOptions o = options();
    o.pipeline_depth = 2;
    o.log_ring_slots = 256;
    auto rt = PaxRuntime::attach(pm.get(), o).value();
    auto map = Map::open(*rt, 16).value();
    for (std::uint64_t k = 0; k < 4000; ++k) map.put(k, k * 5);

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&map, &stop, t] {
        Xoshiro256 rng(300 + t);
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t k = rng.next_below(4000);
          const auto v = map.get(k);
          if (v.has_value()) {
            ASSERT_EQ(*v, k * 5);
          }
        }
      });
    }
    // Keep sealing epochs while the readers run: each persist_async
    // returns with the drain still in flight, so gets overlap it.
    for (int e = 0; e < 8; ++e) {
      map.put(4000 + static_cast<std::uint64_t>(e),
              (4000 + static_cast<std::uint64_t>(e)) * 5);
      auto sealed = map.persist_async();
      ASSERT_TRUE(sealed.ok()) << sealed.status().to_string();
      last_epoch = sealed.value();
    }
    while (rt->committed_epoch() < last_epoch) {
      ASSERT_TRUE(rt->complete_persist().ok());
    }
    stop.store(true);
    for (auto& th : readers) th.join();
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_GE(rt->committed_epoch(), last_epoch);
  auto map = Map::open(*rt, 16).value();
  EXPECT_EQ(map.size(), 4008u);
  for (std::uint64_t k = 0; k < 4008; k += 89) {
    ASSERT_EQ(map.get(k), std::optional(k * 5));
  }
}

}  // namespace
}  // namespace pax::libpax
