// Integration & property tests of the crash-consistency contract
// (DESIGN.md §3) across the whole stack.
//
//   * Exhaustive sweep: a deterministic device-level schedule is replayed
//     from scratch and crashed after EVERY primitive step; recovery must
//     always restore exactly the snapshot of the recovered epoch.
//   * Randomized libpax property test (parameterized over seeds × crash
//     modes): random operations on an unmodified std::unordered_map with
//     persists at random intervals, crash at a random point, compare the
//     recovered map against the oracle snapshot of the committed epoch.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "pax/coherence/host_cache.hpp"
#include "pax/common/rng.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "pax/libpax/persistent.hpp"
#include "test_util.hpp"

namespace pax {
namespace {

using testing::patterned_line;

// ---------------------------------------------------------------------------
// Exhaustive device-level crash-point sweep.
// ---------------------------------------------------------------------------

// The schedule: for op i in [0, kOps): write line (i % kLines) with value
// tagged by i; tick every 3rd op; persist every kPersistEvery ops. Steps are
// numbered so a crash can be injected after any of them.
constexpr std::uint64_t kLines = 8;
constexpr std::uint64_t kOps = 50;
constexpr std::uint64_t kPersistEvery = 7;

struct ScheduleResult {
  // Snapshot of all line values at each committed epoch.
  std::vector<std::array<std::uint64_t, kLines>> snapshots;
  Epoch last_committed = 0;
  std::uint64_t total_steps = 0;
};

// Runs the schedule on `tp`, stopping (simulating the crash point) after
// `stop_after` steps (UINT64_MAX = run to completion). Returns the oracle.
ScheduleResult run_schedule(testing::TestPool& tp,
                            const device::DeviceConfig& cfg,
                            std::uint64_t stop_after) {
  device::PaxDevice dev(&tp.pool, cfg);

  ScheduleResult result;
  std::array<std::uint64_t, kLines> current{};
  result.snapshots.push_back(current);  // epoch 0: all zeros

  std::uint64_t steps = 0;
  auto step = [&]() -> bool { return ++steps > stop_after; };

  for (std::uint64_t i = 0; i < kOps; ++i) {
    const LineIndex line = tp.data_line(i % kLines);
    if (!dev.write_intent(line).is_ok()) std::abort();
    if (step()) return result;

    LineData d = patterned_line(1000 + i);
    dev.writeback_line(line, d);
    current[i % kLines] = 1000 + i;
    if (step()) return result;

    if (i % 3 == 2) {
      dev.tick();
      if (step()) return result;
    }
    if ((i + 1) % kPersistEvery == 0) {
      auto e = dev.persist(nullptr);
      if (!e.ok()) std::abort();
      result.snapshots.push_back(current);
      result.last_committed = e.value();
      if (step()) return result;
    }
  }
  result.total_steps = steps;
  return result;
}

// The sweep runs under several device shapes: tiny buffer under constant
// eviction pressure, eager flushing, lazy flushing with a large buffer,
// and pure-LRU eviction.
struct SweepConfig {
  const char* name;
  std::size_t hbm_lines;
  bool prefer_durable;
  std::size_t flush_batch;
  bool proactive;
};

class CrashSweepTest : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(CrashSweepTest, EveryCrashPointRecoversACommittedSnapshot) {
  const SweepConfig sweep = GetParam();
  device::DeviceConfig cfg;
  cfg.hbm.capacity_lines = sweep.hbm_lines;
  cfg.hbm.ways = 4;
  cfg.hbm.prefer_durable_eviction = sweep.prefer_durable;
  cfg.log_flush_batch_bytes = sweep.flush_batch;
  cfg.proactive_writeback = sweep.proactive;

  // Discover the step count with a full run.
  const std::uint64_t total = [&] {
    auto tp = testing::TestPool::create(1 << 20, 64 * 1024);
    return run_schedule(tp, cfg, UINT64_MAX).total_steps;
  }();
  ASSERT_GT(total, 100u);

  for (std::uint64_t crash_at = 0; crash_at <= total; ++crash_at) {
    auto tp = testing::TestPool::create(1 << 20, 64 * 1024);
    ScheduleResult oracle = run_schedule(tp, cfg, crash_at);

    // Crash with a seed-varied lottery (some pending lines survive).
    tp.device->crash(pmem::CrashConfig::random(0.5, crash_at * 31 + 7));

    auto pool = pmem::PmemPool::open(tp.device.get());
    ASSERT_TRUE(pool.ok()) << "crash_at=" << crash_at;
    auto report = device::recover_pool(pool.value());
    ASSERT_TRUE(report.ok()) << "crash_at=" << crash_at;

    const Epoch recovered = report.value().recovered_epoch;
    ASSERT_EQ(recovered, pool.value().committed_epoch());
    ASSERT_LE(recovered, oracle.snapshots.size() - 1)
        << "crash_at=" << crash_at;
    // Must be the *latest* epoch whose commit step completed.
    ASSERT_GE(recovered, oracle.last_committed) << "crash_at=" << crash_at;

    const auto& snapshot = oracle.snapshots[recovered];
    for (std::uint64_t l = 0; l < kLines; ++l) {
      const LineData expect = snapshot[l] == 0
                                  ? LineData{}
                                  : patterned_line(snapshot[l]);
      ASSERT_EQ(tp.device->durable_line(tp.data_line(l)), expect)
          << "crash_at=" << crash_at << " line=" << l << " epoch="
          << recovered;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeviceShapes, CrashSweepTest,
    ::testing::Values(
        SweepConfig{"tiny_buffer", 4, true, 128, true},
        SweepConfig{"tiny_lru_lazy", 4, false, 1 << 20, true},
        SweepConfig{"big_buffer_eager", 256, true, 0, true},
        SweepConfig{"no_proactive", 8, true, 128, false}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// ---------------------------------------------------------------------------
// Randomized libpax property test: seeds × crash modes.
// ---------------------------------------------------------------------------

struct CrashParam {
  std::uint64_t seed;
  double survival;
  bool torn;
};

class LibpaxCrashProperty : public ::testing::TestWithParam<CrashParam> {};

using MapAlloc =
    libpax::PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
using PMap = std::unordered_map<std::uint64_t, std::uint64_t,
                                std::hash<std::uint64_t>,
                                std::equal_to<std::uint64_t>, MapAlloc>;

TEST_P(LibpaxCrashProperty, RecoveredMapEqualsCommittedOracle) {
  const CrashParam param = GetParam();
  auto pm = pmem::PmemDevice::create_in_memory(32 << 20);

  libpax::RuntimeOptions opts;
  opts.log_size = 4 << 20;
  opts.device.log_flush_batch_bytes = 256;  // eager flushing: real rollback

  std::map<std::uint64_t, std::uint64_t> oracle;
  std::vector<std::map<std::uint64_t, std::uint64_t>> oracle_snapshots;
  oracle_snapshots.push_back(oracle);  // epoch 0

  Xoshiro256 rng(param.seed);
  {
    auto rt = libpax::PaxRuntime::attach(pm.get(), opts).value();
    auto map = libpax::Persistent<PMap>::open(*rt).value();

    const std::uint64_t total_ops = 500 + rng.next_below(1500);
    const std::uint64_t crash_after = rng.next_below(total_ops);
    for (std::uint64_t i = 0; i < crash_after; ++i) {
      const std::uint64_t key = 1 + rng.next_below(200);
      const double dice = rng.next_double();
      if (dice < 0.6) {
        const std::uint64_t value = rng.next();
        (*map)[key] = value;
        oracle[key] = value;
      } else if (dice < 0.8) {
        map->erase(key);
        oracle.erase(key);
      } else if (dice < 0.9) {
        rt->sync_step();  // push uncommitted state toward PM
      }
      if (rng.next_double() < 0.03) {
        ASSERT_TRUE(rt->persist().ok());
        oracle_snapshots.push_back(oracle);
      }
    }
  }  // destroyed mid-epoch

  pm->crash(param.torn
                ? pmem::CrashConfig::torn(param.survival, param.seed * 3 + 1)
                : pmem::CrashConfig::random(param.survival,
                                            param.seed * 3 + 1));

  auto rt = libpax::PaxRuntime::attach(pm.get(), opts).value();
  const Epoch committed = rt->committed_epoch();
  ASSERT_LT(committed, oracle_snapshots.size());
  const auto& expect = oracle_snapshots[committed];

  auto map = libpax::Persistent<PMap>::open(*rt).value();
  ASSERT_EQ(map->size(), expect.size()) << "epoch " << committed;
  for (const auto& [k, v] : expect) {
    auto it = map->find(k);
    ASSERT_NE(it, map->end()) << "missing key " << k;
    ASSERT_EQ(it->second, v) << "key " << k;
  }

  // The recovered pool must remain fully usable.
  (*map)[999999] = 1;
  ASSERT_TRUE(rt->persist().ok());
}

std::vector<CrashParam> crash_params() {
  std::vector<CrashParam> params;
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull, 66ull}) {
    params.push_back({seed, 0.0, false});   // clean power cut
    params.push_back({seed, 0.5, false});   // random line survival
    params.push_back({seed, 0.7, true});    // torn 8-byte words
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(SeedsAndCrashModes, LibpaxCrashProperty,
                         ::testing::ValuesIn(crash_params()),
                         [](const auto& param_info) {
                           const CrashParam& p = param_info.param;
                           return "seed" + std::to_string(p.seed) +
                                  (p.torn ? "_torn" : "_drop") +
                                  std::to_string(int(p.survival * 100));
                         });

// ---------------------------------------------------------------------------
// Coherence-path crash property: the protocol frontend gives the same
// guarantee as the paging frontend.
// ---------------------------------------------------------------------------

class CoherenceCrashProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CoherenceCrashProperty, SimTableRecoversToCommittedEpoch) {
  const std::uint64_t seed = GetParam();
  auto tp = testing::TestPool::create(16 << 20, 2 << 20);

  std::map<std::uint64_t, std::uint64_t> oracle;
  std::vector<std::map<std::uint64_t, std::uint64_t>> snapshots{oracle};

  Xoshiro256 rng(seed);
  {
    device::DeviceConfig cfg;
    cfg.hbm.capacity_lines = 64;
    cfg.hbm.ways = 8;
    cfg.log_flush_batch_bytes = 512;
    device::PaxDevice dev(&tp.pool, cfg);
    coherence::HostCacheConfig small;
    small.l1 = {4 * 1024, 4};
    small.l2 = {16 * 1024, 4};
    small.llc = {64 * 1024, 8};  // small: frequent evictions to the device
    coherence::HostCacheSim host(&dev, small);

    // Key-indexed u64 cells: cell k at data_offset + k*8.
    const std::uint64_t ops = 300 + rng.next_below(700);
    const std::uint64_t crash_after = rng.next_below(ops);
    for (std::uint64_t i = 0; i < crash_after; ++i) {
      const std::uint64_t key = rng.next_below(512);
      const std::uint64_t value = rng.next() | 1;
      ASSERT_TRUE(
          host.store_u64(tp.pool.data_offset() + key * 8, value).is_ok());
      oracle[key] = value;
      if ((i & 0xf) == 0xf) dev.tick();
      if (rng.next_double() < 0.05) {
        ASSERT_TRUE(dev.persist(host.pull_fn()).ok());
        snapshots.push_back(oracle);
      }
    }
    // Host caches vanish with the crash (no write-back).
    host.drop_all_without_writeback();
  }
  tp.device->crash(pmem::CrashConfig::random(0.5, seed + 99));

  auto pool = pmem::PmemPool::open(tp.device.get()).value();
  ASSERT_TRUE(device::recover_pool(pool).ok());
  const Epoch committed = pool.committed_epoch();
  ASSERT_LT(committed, snapshots.size());

  for (const auto& [key, value] : snapshots[committed]) {
    ASSERT_EQ(tp.device->load_u64(tp.pool.data_offset() + key * 8), value)
        << "key " << key << " epoch " << committed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceCrashProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pax
