// Pipelined-epoch tests: persist_async() with pipeline_depth > 0 swaps the
// dirty set into a sealed-epoch snapshot and returns while a background
// drain worker runs diff → sync → seal → commit. These tests cover snapshot
// isolation (epoch N+1 mutations must never leak into epoch N's image),
// in-order commits, back-pressure, the lock-free log ring, and crash
// behavior with snapshots still queued.
#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>

#include "pax/libpax/persistent.hpp"

namespace pax::libpax {
namespace {

constexpr std::size_t kPool = 32 << 20;

RuntimeOptions options(std::size_t depth = 2, std::size_t ring = 0) {
  RuntimeOptions o;
  o.log_size = 4 << 20;
  o.device.log_flush_batch_bytes = 0;
  o.track_lines = true;
  o.pipeline_depth = depth;
  o.log_ring_slots = ring;
  return o;
}

using MapAlloc =
    PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
using PMap = std::unordered_map<std::uint64_t, std::uint64_t,
                                std::hash<std::uint64_t>,
                                std::equal_to<std::uint64_t>, MapAlloc>;

TEST(EpochPipelineTest, PipelinedPersistIsDurable) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    rt->vpm_base()[8192] = std::byte{0x41};
    ASSERT_TRUE(rt->persist().ok());  // async swap + wait
    EXPECT_EQ(rt->committed_epoch(), 1u);
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_EQ(rt->committed_epoch(), 1u);
  EXPECT_EQ(rt->vpm_base()[8192], std::byte{0x41});
}

TEST(EpochPipelineTest, SnapshotIsolatesEpochFromLaterMutations) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    rt->vpm_base()[8192] = std::byte{1};
    auto sealed = rt->persist_async();
    ASSERT_TRUE(sealed.ok());
    // Epoch 2 overwrites the SAME byte while epoch 1's drain may still be
    // in flight. The drain must push epoch 1's snapshot, not this value.
    rt->vpm_base()[8192] = std::byte{2};
    rt->vpm_base()[12288] = std::byte{3};
    auto committed = rt->complete_persist();
    ASSERT_TRUE(committed.ok());
    EXPECT_EQ(committed.value(), 1u);
    // Epoch 2 never persists; crash below must roll it back.
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_EQ(rt->committed_epoch(), 1u);
  EXPECT_EQ(rt->vpm_base()[8192], std::byte{1});
  EXPECT_EQ(rt->vpm_base()[12288], std::byte{0});
}

TEST(EpochPipelineTest, RevertedLineStillReachesTheDevice) {
  // ABA regression: a line changes in epoch 1 and reverts to its original
  // contents in epoch 2. If snapshot-time digests were applied lazily, the
  // epoch-2 diff would wrongly skip the line and the device would keep
  // epoch 1's value forever.
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    rt->vpm_base()[8192] = std::byte{0x55};
    ASSERT_TRUE(rt->persist().ok());  // epoch 1
    rt->vpm_base()[8192] = std::byte{0x00};  // revert to pre-epoch-1 value
    ASSERT_TRUE(rt->persist().ok());  // epoch 2
    EXPECT_EQ(rt->committed_epoch(), 2u);
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_EQ(rt->committed_epoch(), 2u);
  EXPECT_EQ(rt->vpm_base()[8192], std::byte{0x00});
}

TEST(EpochPipelineTest, QueuedSnapshotsCommitInOrder) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PaxRuntime::attach(pm.get(), options(/*depth=*/3)).value();
  for (int e = 1; e <= 6; ++e) {
    rt->vpm_base()[8192 + e * 64] = static_cast<std::byte>(e);
    auto sealed = rt->persist_async();
    ASSERT_TRUE(sealed.ok());
    EXPECT_EQ(sealed.value(), static_cast<Epoch>(e));
  }
  auto committed = rt->complete_persist();
  ASSERT_TRUE(committed.ok());
  // complete_persist waits for the oldest in-flight epoch only; wait for
  // the rest the same way applications would.
  while (rt->committed_epoch() < 6u) {
    ASSERT_TRUE(rt->complete_persist().ok());
  }
  EXPECT_EQ(rt->committed_epoch(), 6u);
  const PipelineStats ps = rt->pipeline_stats();
  EXPECT_EQ(ps.async_persists, 6u);
  EXPECT_EQ(ps.jobs_drained, 6u);
  EXPECT_GE(ps.pages_snapshotted, 6u);
}

TEST(EpochPipelineTest, BackPressureBoundsTheQueue) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PaxRuntime::attach(pm.get(), options(/*depth=*/1)).value();
  // Large dirty footprint per epoch so drains take long enough for the
  // producer to catch the queue full at least once across many rounds.
  for (int e = 1; e <= 12; ++e) {
    std::memset(rt->vpm_base() + 4096, e, 1 << 20);
    ASSERT_TRUE(rt->persist_async().ok());
  }
  while (rt->committed_epoch() < 12u) {
    ASSERT_TRUE(rt->complete_persist().ok());
  }
  const PipelineStats ps = rt->pipeline_stats();
  EXPECT_EQ(ps.jobs_drained, 12u);
  EXPECT_LE(ps.queue_occupancy_max, 1u);
}

TEST(EpochPipelineTest, AbandonedSnapshotsBehaveLikeACrash) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options(/*depth=*/4)).value();
    rt->vpm_base()[8192] = std::byte{7};
    ASSERT_TRUE(rt->persist().ok());  // epoch 1 durable
    // Queue more epochs and tear down without waiting: whatever the drain
    // worker did not commit is lost, exactly like a crash.
    rt->vpm_base()[12288] = std::byte{8};
    ASSERT_TRUE(rt->persist_async().ok());
    rt->vpm_base()[16384] = std::byte{9};
    ASSERT_TRUE(rt->persist_async().ok());
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_GE(rt->committed_epoch(), 1u);
  EXPECT_EQ(rt->vpm_base()[8192], std::byte{7});
  // Later epochs either committed wholly before teardown or rolled back
  // wholly — byte 12288 may be 8 (epoch 2 drained in time) or 0, but epoch
  // 3 cannot be durable without epoch 2.
  if (rt->committed_epoch() >= 3u) {
    EXPECT_EQ(rt->vpm_base()[12288], std::byte{8});
    EXPECT_EQ(rt->vpm_base()[16384], std::byte{9});
  } else if (rt->committed_epoch() == 2u) {
    EXPECT_EQ(rt->vpm_base()[12288], std::byte{8});
    EXPECT_EQ(rt->vpm_base()[16384], std::byte{0});
  } else {
    EXPECT_EQ(rt->vpm_base()[12288], std::byte{0});
    EXPECT_EQ(rt->vpm_base()[16384], std::byte{0});
  }
}

TEST(EpochPipelineTest, LogRingEliminatesAppendMutexAcquisitions) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(),
                                 options(/*depth=*/2, /*ring=*/256))
                  .value();
    for (int e = 1; e <= 4; ++e) {
      std::memset(rt->vpm_base() + 4096, 0x30 + e, 64 << 10);
      ASSERT_TRUE(rt->persist().ok());
    }
    const auto ds = rt->device().stats();
    EXPECT_GT(ds.log_ring_appends, 0u);
    EXPECT_EQ(ds.log_append_acquisitions, 0u);
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  EXPECT_EQ(rt->committed_epoch(), 4u);
  for (std::size_t i = 0; i < (64 << 10); i += 4097) {
    ASSERT_EQ(rt->vpm_base()[4096 + i], std::byte{0x34});
  }
}

TEST(EpochPipelineTest, ContainersSurvivePipelinedEpochs) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  {
    auto rt = PaxRuntime::attach(pm.get(), options()).value();
    auto map = Persistent<PMap>::open(*rt).value();
    for (std::uint64_t k = 0; k < 300; ++k) (*map)[k] = k * 3;
    ASSERT_TRUE(rt->persist_async().ok());
    for (std::uint64_t k = 300; k < 600; ++k) (*map)[k] = k * 3;
    ASSERT_TRUE(rt->persist().ok());  // commits 1 and 2 (in order)
    while (rt->committed_epoch() < 2u) {
      ASSERT_TRUE(rt->complete_persist().ok());
    }
  }
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  auto map = Persistent<PMap>::open(*rt).value();
  ASSERT_EQ(map->size(), 600u);
  for (std::uint64_t k = 0; k < 600; ++k) ASSERT_EQ(map->at(k), k * 3);
}

TEST(EpochPipelineTest, CompletePersistWithEmptyPipelineReportsCommitted) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  auto committed = rt->complete_persist();  // nothing in flight
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), 0u);
}

TEST(EpochPipelineTest, StatsFoldDrainWorkerContribution) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  auto rt = PaxRuntime::attach(pm.get(), options()).value();
  std::memset(rt->vpm_base() + 4096, 0x11, 256 << 10);
  ASSERT_TRUE(rt->persist().ok());
  const RuntimeStats rs = rt->stats();
  const SyncStats ss = rt->sync_stats();
  EXPECT_GT(rs.pages_diffed, 0u);
  EXPECT_GT(rs.lines_dirty_found, 0u);
  EXPECT_GT(ss.lines_synced, 0u);
}

}  // namespace
}  // namespace pax::libpax
