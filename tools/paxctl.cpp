// paxctl — inspect and repair PAX pool files.
//
//   paxctl info <pool>        pool geometry, committed epoch, root, heap
//   paxctl log <pool>         decode the undo-log banks (epoch tags, lines)
//   paxctl verify <pool>      validate header + every log record; dry-run
//                             recovery and report what it would roll back
//   paxctl recover <pool>     run recovery in place (what map_pool does)
//   paxctl hexdump <pool> <offset> [len]   dump pool bytes
//   paxctl trace <trace-file> summarize a recorded coherence trace
//   paxctl synctest [pages] [lines-per-page]   exercise the line-tracked,
//                             adaptive host sync path on a scratch in-memory
//                             pool and report SyncStats + stripe telemetry
//   paxctl check [pages] [epochs]   run a persist/crash/recover workload on
//                             a scratch in-memory pool under PaxCheck (the
//                             persist-order + lock-discipline checker) and
//                             report the findings; exit 1 on any violation
//   paxctl check --replay <file.paxevt>   re-run the PaxCheck rule engines
//                             over a recorded event stream (e.g. a crash-
//                             exploration artifact); exit 1 on any violation
//   paxctl explore [pages] [epochs] [--every N] [--max-points N] [--seed S]
//                  [--artifacts DIR] [--pipelined]   enumerate crash points
//                             of a deterministic libpax workload: crash
//                             after every N-th device event under drop_all /
//                             random / torn, recover, and audit each
//                             recovery (PaxCheck + snapshot equivalence);
//                             --pipelined runs the workload with the epoch
//                             pipeline + undo-append ring active; exit 1 on
//                             any finding
//   paxctl calibrate <fit.json> [<check.json>] [--loops N] [--wave-us W]
//                  [--tolerance T]   fit the serving DES (pax::model::
//                             calibrate) to a closed-loop paxkv-loadgen
//                             --json report; with a second report, predict
//                             it from the fit and exit 1 if any of
//                             throughput/p50/p95/p99 misses the tolerance
//                             band (default 0.35)
//   paxctl analyze <file.paxevt>... [--json]   PaxScope offline predictive
//                             analysis: rebuild the happens-before relation
//                             of each recorded trace, aggregate the lock
//                             graph across all of them, and report
//                             deadlock cycles, rank violations, and
//                             persist-order windows the online checker
//                             could not see; exit 1 on any finding
//   paxctl fix [<file.paxevt>] [--scenario NAME] [--record FILE]
//                  [--validate] [--json]   derive a flush/fence RepairPlan
//                             from a trace's PaxScope findings (default:
//                             record the named seeded scenario, undo-flush);
//                             --record saves that trace; --validate replays
//                             the scenario under full crash-point
//                             enumeration without and with the plan applied
//                             and exits 1 unless the verdict flips clean
//
// Works on any pool produced by libpax, the pagewal baseline, or the
// device-level API (they share the pool format).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>

#include "pax/check/analyze.hpp"
#include "pax/check/checker.hpp"
#include "pax/check/crashpoint.hpp"
#include "pax/check/repair.hpp"
#include "pax/check/trace_file.hpp"
#include "pax/coherence/trace.hpp"
#include "pax/device/recovery.hpp"
#include "pax/libpax/heap.hpp"
#include "pax/libpax/runtime.hpp"
#include "pax/litmus/runner.hpp"
#include "pax/model/calibrate.hpp"
#include "pax/pmem/pool.hpp"
#include "pax/wal/wal.hpp"

namespace {

using namespace pax;

int usage() {
  std::fprintf(stderr,
               "usage: paxctl <info|log|verify|recover> <pool-file>\n"
               "       paxctl hexdump <pool-file> <offset> [len]\n"
               "       paxctl trace <trace-file>\n"
               "       paxctl synctest [pages] [lines-per-page]\n"
               "       paxctl check [pages] [epochs]\n"
               "       paxctl check --replay <file.paxevt>\n"
               "       paxctl explore [pages] [epochs] [--every N] "
               "[--max-points N] [--seed S] [--artifacts DIR] "
               "[--pipelined]\n"
               "       paxctl litmus [--shape S] [--every N] "
               "[--max-points N] [--max-interleavings N] [--seed S] "
               "[--seeded-bug snoop-writeback|persist-pull|"
               "line-serialization] [--trace-dir DIR] [--no-crash]\n"
               "       paxctl calibrate <fit.json> [<check.json>] "
               "[--loops N] [--wave-us W] [--tolerance T]\n"
               "       paxctl analyze <file.paxevt>... [--json]\n"
               "       paxctl fix [<file.paxevt>] [--scenario NAME] "
               "[--record FILE] [--validate] [--json]\n");
  return 2;
}

Result<std::unique_ptr<pmem::PmemDevice>> open_device(
    const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    return io_error("cannot stat " + path);
  }
  return pmem::PmemDevice::open_file(path, static_cast<std::size_t>(st.st_size),
                                     /*create=*/false);
}

void print_record(std::uint64_t bank, std::uint64_t index,
                  const wal::LogRecord& rec, Epoch committed) {
  const char* type = "?";
  std::string detail;
  switch (rec.type) {
    case wal::RecordType::kLineUndo: {
      type = "LINE_UNDO";
      if (rec.payload.size() == sizeof(wal::LineUndoPayload)) {
        wal::LineUndoPayload p;
        std::memcpy(&p, rec.payload.data(), sizeof(p));
        detail = "line " + std::to_string(p.line_index) + " (offset 0x" +
                 [](std::uint64_t v) {
                   char buf[32];
                   std::snprintf(buf, sizeof(buf), "%" PRIx64, v * 64);
                   return std::string(buf);
                 }(p.line_index) +
                 ")";
      }
      break;
    }
    case wal::RecordType::kPageUndo:
      type = "PAGE_UNDO";
      if (rec.payload.size() >= sizeof(wal::PageUndoHeader)) {
        wal::PageUndoHeader p;
        std::memcpy(&p, rec.payload.data(), sizeof(p));
        detail = "page " + std::to_string(p.page_index);
      }
      break;
    case wal::RecordType::kRangeUndo:
      type = "RANGE_UNDO";
      if (rec.payload.size() >= sizeof(wal::RangeUndoHeader)) {
        wal::RangeUndoHeader p;
        std::memcpy(&p, rec.payload.data(), sizeof(p));
        detail = "offset " + std::to_string(p.pool_offset) + " len " +
                 std::to_string(p.length);
      }
      break;
    case wal::RecordType::kTxBegin:
      type = "TX_BEGIN";
      break;
    case wal::RecordType::kTxCommit:
      type = "TX_COMMIT";
      break;
    case wal::RecordType::kAllocMeta:
      type = "ALLOC_META";
      break;
    case wal::RecordType::kInvalid:
      type = "INVALID";
      break;
  }
  std::printf("  bank%" PRIu64 "[%4" PRIu64 "] epoch %-6" PRIu64
              " %-10s %-40s %s\n",
              bank, index, rec.epoch, type, detail.c_str(),
              rec.epoch > committed ? "<- UNCOMMITTED (rollback target)"
                                    : "stale");
}

int cmd_info(pmem::PmemDevice* dev) {
  auto pool = pmem::PmemPool::open(dev);
  if (!pool.ok()) {
    std::fprintf(stderr, "not a PAX pool: %s\n",
                 pool.status().to_string().c_str());
    return 1;
  }
  auto& p = pool.value();
  std::printf("pool size:       %zu bytes\n", dev->size());
  std::printf("log extent:      offset %" PRIu64 ", %zu bytes (2 banks of "
              "%zu)\n",
              p.log_offset(), p.log_size(), p.log_size() / 2);
  std::printf("data extent:     offset %" PRIu64 ", %zu bytes (%zu lines, "
              "%zu pages)\n",
              p.data_offset(), p.data_size(), p.data_size() / kCacheLineSize,
              p.data_size() / kPageSize);
  std::printf("committed epoch: %" PRIu64 "\n", p.committed_epoch());
  std::printf("root cell:       %" PRIu64 "\n", p.root());

  // Peek at the libpax heap header if present.
  std::uint64_t magic = dev->load_u64(p.data_offset());
  if (magic == libpax::kHeapMagic) {
    const std::uint64_t bump = dev->load_u64(p.data_offset() + 8);
    const std::uint64_t root = dev->load_u64(p.data_offset() + 16);
    std::printf("libpax heap:     present — %" PRIu64
                " bytes used, root offset %" PRIu64 "\n",
                bump, root);
  } else {
    std::printf("libpax heap:     not present (raw / baseline pool)\n");
  }
  return 0;
}

int cmd_log(pmem::PmemDevice* dev) {
  auto pool = pmem::PmemPool::open(dev);
  if (!pool.ok()) {
    std::fprintf(stderr, "not a PAX pool: %s\n",
                 pool.status().to_string().c_str());
    return 1;
  }
  auto& p = pool.value();
  const Epoch committed = p.committed_epoch();
  const std::size_t half = (p.log_size() / 2) & ~(kCacheLineSize - 1);
  const std::pair<PoolOffset, std::size_t> banks[2] = {
      {p.log_offset(), half}, {p.log_offset() + half, p.log_size() - half}};

  std::printf("committed epoch %" PRIu64 "\n", committed);
  for (std::uint64_t b = 0; b < 2; ++b) {
    auto records =
        wal::LogReader::read_all(dev, banks[b].first, banks[b].second);
    std::printf("bank %" PRIu64 ": %zu well-formed records\n", b,
                records.size());
    for (std::uint64_t i = 0; i < records.size(); ++i) {
      print_record(b, i, records[i], committed);
    }
  }
  return 0;
}

int cmd_verify(pmem::PmemDevice* dev) {
  auto pool = pmem::PmemPool::open(dev);
  if (!pool.ok()) {
    std::printf("FAIL header: %s\n", pool.status().to_string().c_str());
    return 1;
  }
  std::printf("OK   header (magic, version, CRC, geometry)\n");
  auto& p = pool.value();

  const std::size_t half = (p.log_size() / 2) & ~(kCacheLineSize - 1);
  std::uint64_t uncommitted = 0, stale = 0;
  for (auto [off, size] : {std::pair<PoolOffset, std::size_t>{p.log_offset(),
                                                              half},
                           {p.log_offset() + half, p.log_size() - half}}) {
    for (const auto& rec : wal::LogReader::read_all(dev, off, size)) {
      (rec.epoch > p.committed_epoch() ? uncommitted : stale) += 1;
    }
  }
  std::printf("OK   log scan: %" PRIu64 " uncommitted record(s), %" PRIu64
              " stale\n",
              uncommitted, stale);
  if (uncommitted > 0) {
    std::printf("NOTE recovery would roll back %" PRIu64
                " line(s) to epoch %" PRIu64 "\n",
                uncommitted, p.committed_epoch());
  } else {
    std::printf("OK   pool is clean (no rollback needed)\n");
  }
  return 0;
}

int cmd_recover(pmem::PmemDevice* dev) {
  auto pool = pmem::PmemPool::open(dev);
  if (!pool.ok()) {
    std::fprintf(stderr, "not a PAX pool: %s\n",
                 pool.status().to_string().c_str());
    return 1;
  }
  auto report = device::recover_pool(pool.value());
  if (!report.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("recovered to epoch %" PRIu64 ": %" PRIu64
              " records scanned, %" PRIu64 " applied, %" PRIu64 " stale\n",
              report.value().recovered_epoch, report.value().records_scanned,
              report.value().records_applied, report.value().stale_records);
  return 0;
}

int cmd_hexdump(pmem::PmemDevice* dev, PoolOffset offset, std::size_t len) {
  if (offset >= dev->size()) {
    std::fprintf(stderr, "offset beyond pool end (%zu)\n", dev->size());
    return 1;
  }
  len = std::min(len, dev->size() - offset);
  std::vector<std::byte> buf(len);
  dev->load(offset, buf);
  for (std::size_t row = 0; row < len; row += 16) {
    std::printf("%#10" PRIx64 "  ", offset + row);
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < len) {
        std::printf("%02x ", static_cast<unsigned>(buf[row + i]));
      } else {
        std::printf("   ");
      }
      if (i == 7) std::printf(" ");
    }
    std::printf(" |");
    for (std::size_t i = 0; i < 16 && row + i < len; ++i) {
      const char c = static_cast<char>(buf[row + i]);
      std::printf("%c", c >= 0x20 && c < 0x7f ? c : '.');
    }
    std::printf("|\n");
  }
  return 0;
}

int cmd_synctest(std::size_t pages, std::size_t lines_per_page) {
  if (lines_per_page == 0 || lines_per_page > kLinesPerPage) {
    std::fprintf(stderr, "lines-per-page must be in [1, %zu]\n",
                 kLinesPerPage);
    return 2;
  }
  libpax::RuntimeOptions opts;
  opts.track_lines = true;
  opts.adaptive_sync = true;
  const std::size_t pool_size = 16 << 20;
  auto rt = libpax::PaxRuntime::create_in_memory(pool_size, opts);
  if (!rt.ok()) {
    std::fprintf(stderr, "%s\n", rt.status().to_string().c_str());
    return 1;
  }
  auto& r = *rt.value();
  const std::size_t usable = r.vpm_size() / kPageSize;
  pages = std::min(pages, usable);

  // Epoch 0 seeds the digests (every page's first diff is a full rebuild);
  // epochs 1..3 run the tracked fast path at the requested density.
  constexpr int kEpochs = 4;
  for (int e = 0; e < kEpochs; ++e) {
    for (std::size_t p = 0; p < pages; ++p) {
      std::byte* page = r.vpm_base() + p * kPageSize;
      for (std::size_t l = 0; l < lines_per_page; ++l) {
        page[l * kCacheLineSize] = static_cast<std::byte>(e + 1);
      }
    }
    auto committed = r.persist();
    if (!committed.ok()) {
      std::fprintf(stderr, "persist: %s\n",
                   committed.status().to_string().c_str());
      return 1;
    }
  }

  const libpax::SyncStats ss = r.sync_stats();
  std::printf("synctest: %zu page(s) x %zu line(s), %d epoch(s)\n", pages,
              lines_per_page, kEpochs);
  std::printf("  pages scanned:   %" PRIu64 "\n", ss.pages_scanned);
  std::printf("  lines diffed:    %" PRIu64 "\n", ss.lines_diffed);
  std::printf("  lines skipped:   %" PRIu64 "\n", ss.lines_skipped);
  std::printf("  lines synced:    %" PRIu64 "\n", ss.lines_synced);
  std::printf("  digest rebuilds: %" PRIu64 "\n", ss.digest_rebuilds);
  std::printf("  tuner decisions: %" PRIu64 " (last: batch %zu, workers %u)\n",
              ss.tuner_decisions, ss.last_batch_lines, ss.last_diff_workers);

  std::uint64_t acq = 0, con = 0;
  r.device().stripe_lock_totals(&acq, &con);
  std::printf("  stripe locks:    %" PRIu64 " acquisition(s), %" PRIu64
              " contended\n",
              acq, con);
  std::uint64_t busiest = 0, busiest_intents = 0;
  for (const auto& st : r.device().stripe_stats()) {
    if (st.write_intents >= busiest_intents) {
      busiest_intents = st.write_intents;
      busiest = st.stripe;
    }
  }
  std::printf("  busiest stripe:  #%" PRIu64 " (%" PRIu64
              " write intent(s))\n",
              busiest, busiest_intents);
  return 0;
}

int cmd_check(std::size_t pages, int epochs) {
  // A representative workload under PaxCheck: tracked + adaptive sync,
  // blocking and §6 async persists, background sync steps, a crash, and
  // recovery. A correct build reports clean; any persist-order or
  // lock-discipline violation prints with its event backtrace and fails.
  auto pm = pmem::PmemDevice::create_in_memory(32 << 20);
  check::Checker checker;
  pm->set_checker(&checker);

  libpax::RuntimeOptions opts;
  opts.log_size = 4 << 20;
  opts.track_lines = true;
  opts.adaptive_sync = true;
  {
    auto rt = libpax::PaxRuntime::attach(pm.get(), opts);
    if (!rt.ok()) {
      std::fprintf(stderr, "%s\n", rt.status().to_string().c_str());
      return 1;
    }
    auto& r = *rt.value();
    pages = std::min(pages, r.vpm_size() / kPageSize);
    for (int e = 0; e < epochs; ++e) {
      for (std::size_t p = 0; p < pages; ++p) {
        std::byte* page = r.vpm_base() + p * kPageSize;
        for (std::size_t l = 0; l < kLinesPerPage; l += 2) {
          page[l * kCacheLineSize] = static_cast<std::byte>(e + p + 1);
        }
      }
      const bool async = e % 2 == 1;
      auto committed = async ? r.persist_async() : r.persist();
      if (!committed.ok()) {
        std::fprintf(stderr, "persist: %s\n",
                     committed.status().to_string().c_str());
        return 1;
      }
      r.sync_step();  // completes the async seal, drives the tuner
    }
  }  // teardown without a final persist: crash semantics
  pm->crash(pmem::CrashConfig::torn(0.5, 0xc43c));
  {
    auto rt = libpax::PaxRuntime::attach(pm.get(), opts);
    if (!rt.ok()) {
      std::fprintf(stderr, "recovery: %s\n", rt.status().to_string().c_str());
      return 1;
    }
  }
  pm->set_checker(nullptr);

  auto report = checker.report();
  std::printf("%s\n", report.to_string().c_str());
  return report.clean() ? 0 : 1;
}

int cmd_replay(const std::string& path) {
  auto events = check::read_trace(path);
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().to_string().c_str());
    return 1;
  }
  check::Checker checker;
  const check::Report report = checker.replay(events.value());
  std::printf("replayed %zu event(s) from %s\n%s\n", events.value().size(),
              path.c_str(), report.to_string().c_str());
  return report.clean() ? 0 : 1;
}

int cmd_explore(std::size_t pages, int epochs, std::uint64_t every,
                std::uint64_t max_points, std::uint64_t seed,
                const std::string& artifact_dir, bool pipelined) {
  // The demo workload crash exploration enumerates: a full libpax stack
  // (attach, page mutation, blocking persists, crash-semantics teardown)
  // pinned deterministic so every re-execution counts the same events.
  // --pipelined runs it with the epoch pipeline (and the undo-append ring)
  // active: persist() still waits for its own epoch, so the workload thread
  // quiesces while the drain worker runs alone — the event sequence stays
  // deterministic with the drain thread live at every crash point.
  const auto workload = [pages, epochs, pipelined](
                            pmem::PmemDevice& dev,
                            check::CrashOracle& oracle) -> Status {
    libpax::RuntimeOptions opts;
    opts.log_size = 256 << 10;
    opts.track_lines = true;
    opts.vpm_base_hint = 0x7d00'0000'0000ULL;  // byte-identical snapshots
    if (pipelined) {
      opts.pipeline_depth = 1;
      opts.log_ring_slots = 64;
    }
    opts = libpax::RuntimeOptions::deterministic(opts);
    auto rt = libpax::PaxRuntime::attach(&dev, opts);
    if (!rt.ok()) return rt.status();
    auto& r = *rt.value();
    PAX_RETURN_IF_ERROR(oracle.note_commit(r.committed_epoch()));
    const std::size_t usable = std::min(pages, r.vpm_size() / kPageSize);
    for (int e = 0; e < epochs; ++e) {
      for (std::size_t p = 0; p < usable; ++p) {
        std::byte* page = r.vpm_base() + p * kPageSize;
        for (std::size_t l = 0; l < kLinesPerPage; l += 2) {
          page[l * kCacheLineSize] = static_cast<std::byte>(e + p + 1);
        }
      }
      auto committed = r.persist();
      if (!committed.ok()) return committed.status();
      PAX_RETURN_IF_ERROR(oracle.note_commit(committed.value()));
    }
    return Status::ok();  // teardown without persist: crash semantics
  };

  check::CrashExplorerOptions opts;
  opts.every = every;
  opts.max_crash_points = max_points;
  opts.seed = seed;
  opts.artifact_dir = artifact_dir;
  check::CrashExplorer explorer(2 << 20, workload, opts);
  auto result = explorer.explore();
  if (!result.ok()) {
    std::fprintf(stderr, "explore harness failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", result.value().to_string().c_str());
  return result.value().clean() ? 0 : 1;
}

int cmd_litmus(const std::string& shape_name, std::uint64_t every,
               std::uint64_t max_points, std::uint64_t max_interleavings,
               std::uint64_t seed, const std::string& seeded_bug,
               const std::string& trace_dir, bool no_crash) {
  litmus::LitmusOptions options;
  options.crash_every = no_crash ? 0 : every;
  options.max_crash_points = max_points;
  options.max_interleavings = max_interleavings;
  options.seed = seed;
  options.trace_dir = trace_dir;
  if (!seeded_bug.empty()) {
    if (seeded_bug == "snoop-writeback") {
      options.faults.suppress_snoop_writeback = true;
    } else if (seeded_bug == "persist-pull") {
      options.faults.skip_persist_pull = true;
    } else if (seeded_bug == "line-serialization") {
      options.faults.skip_line_serialization = true;
    } else {
      std::fprintf(stderr, "unknown --seeded-bug %s\n", seeded_bug.c_str());
      return usage();
    }
  }

  std::vector<const litmus::Shape*> shapes;
  if (shape_name.empty() || shape_name == "all") {
    for (const litmus::Shape& shape : litmus::all_shapes()) {
      shapes.push_back(&shape);
    }
  } else {
    const litmus::Shape* shape = litmus::find_shape(shape_name);
    if (shape == nullptr) {
      std::fprintf(stderr, "unknown --shape %s (try SB, LB, MP, WRC, IRIW, "
                           "CoRR, CoWW, 2+2W or all)\n",
                   shape_name.c_str());
      return usage();
    }
    shapes.push_back(shape);
  }

  bool clean = true;
  for (const litmus::Shape* shape : shapes) {
    auto result = litmus::run_shape(*shape, options);
    if (!result.ok()) {
      std::fprintf(stderr, "litmus harness failed on %s: %s\n",
                   shape->name.c_str(),
                   result.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", result.value().to_string().c_str());
    clean = clean && result.value().clean();
  }
  return clean ? 0 : 1;
}

int cmd_analyze(const std::vector<std::string>& paths, bool json) {
  auto report = check::analyze_trace_files(paths);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().to_string().c_str());
    return 1;
  }
  if (json) {
    std::printf("%s\n", report.value().to_json().c_str());
  } else {
    for (const std::string& p : paths) {
      std::printf("analyzed %s\n", p.c_str());
    }
    std::printf("%s", report.value().to_string().c_str());
  }
  return report.value().clean() ? 0 : 1;
}

int cmd_fix(const std::string& trace_path, const std::string& scenario_name,
            const std::string& record_path, bool validate, bool json) {
  // The scenario backs two things: the default trace source (when no
  // .paxevt is given) and the --validate re-execution target.
  auto scenario = check::seeded_repair_scenario(scenario_name);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().to_string().c_str());
    return 1;
  }

  check::TraceAnalyzer analyzer;
  if (!trace_path.empty()) {
    auto trace = check::read_trace_versioned(trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().to_string().c_str());
      return 1;
    }
    Status st =
        analyzer.add_trace(trace.value().events, trace.value().version);
    if (!st.is_ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
  } else {
    auto events = check::record_scenario_trace(scenario.value());
    if (!events.ok()) {
      std::fprintf(stderr, "%s\n", events.status().to_string().c_str());
      return 1;
    }
    if (!record_path.empty()) {
      Status st = check::write_trace(record_path, events.value());
      if (!st.is_ok()) {
        std::fprintf(stderr, "%s\n", st.to_string().c_str());
        return 1;
      }
      if (!json) std::printf("recorded trace -> %s\n", record_path.c_str());
    }
    Status st = analyzer.add_trace(events.value());
    if (!st.is_ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
  }

  const check::AnalysisReport report = analyzer.finish();
  const check::RepairPlan plan = check::advise_repairs(report);
  if (!json) {
    std::printf("%s%s", report.to_string().c_str(), plan.to_string().c_str());
  }

  if (!validate) {
    if (json) std::printf("%s\n", plan.to_json().c_str());
    return 0;
  }
  check::CrashExplorerOptions options;
  options.modes = {{"drop_all", pmem::CrashConfig::drop_all()}};
  auto validation = check::validate_repair(scenario.value(), plan, options);
  if (!validation.ok()) {
    std::fprintf(stderr, "validate harness failed: %s\n",
                 validation.status().to_string().c_str());
    return 1;
  }
  const check::RepairValidation& v = validation.value();
  if (json) {
    std::printf("{\"plan\":%s,\"before_findings\":%zu,"
                "\"after_findings\":%zu,\"activations\":%" PRIu64
                ",\"flipped_clean\":%s}\n",
                plan.to_json().c_str(), v.before.findings.size(),
                v.after.findings.size(), v.activations,
                v.flipped_clean() ? "true" : "false");
  } else {
    std::printf("validated scenario \"%s\" under crash enumeration\n%s",
                scenario.value().name.c_str(), v.to_string().c_str());
  }
  return v.flipped_clean() ? 0 : 1;
}

// --- calibrate: fit the serving DES to a loadgen run, predict another ---

// Minimal field scanner for the flat loadgen JSON this repo emits (keys are
// unique inside the object we point at; no escapes in numeric fields).
double json_number(const std::string& text, std::size_t from,
                   const char* key, double fallback) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return fallback;
  return std::atof(text.c_str() + at + needle.size());
}

std::string json_string(const std::string& text, std::size_t from,
                        const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = text.find('"', begin);
  return end == std::string::npos ? "" : text.substr(begin, end - begin);
}

struct LoadgenRun {
  model::ServingMeasurement m;
  bool open = false;
  std::size_t server_loops = 0;  // from the embedded server STATS document
};

Result<LoadgenRun> load_calibration(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return io_error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  const std::size_t cal = text.find("\"calibration\":");
  if (cal == std::string::npos) {
    return invalid_argument(path + ": no \"calibration\" record (re-run "
                            "paxkv-loadgen with --json)");
  }
  LoadgenRun run;
  run.open = json_string(text, cal, "mode") == "open";
  run.m.workload.connections = static_cast<std::size_t>(
      json_number(text, cal, "connections", 1));
  run.m.workload.depth =
      static_cast<std::size_t>(json_number(text, cal, "depth", 1));
  run.m.workload.write_frac = json_number(text, cal, "write_frac", 0.5);
  run.m.workload.open_rate_ops_s =
      run.open ? json_number(text, cal, "offered_load_ops_s", 0) : 0.0;
  run.m.workload.duration_s = json_number(text, cal, "duration_s", 1.0);
  run.m.throughput_ops_s = json_number(text, cal, "throughput_ops_s", 0);
  run.m.p50_us = json_number(text, cal, "p50_us", 0);
  run.m.p95_us = json_number(text, cal, "p95_us", 0);
  run.m.p99_us = json_number(text, cal, "p99_us", 0);
  run.m.read_floor_us = json_number(text, cal, "read_floor_us", 0);
  const std::size_t server = text.find("\"server\": {", cal);
  if (server != std::string::npos) {
    run.server_loops =
        static_cast<std::size_t>(json_number(text, server, "loops", 0));
  }
  return run;
}

int cmd_calibrate(const std::string& fit_path, const std::string& check_path,
                  std::size_t loops, double wave_us, double tolerance) {
  auto fit_run = load_calibration(fit_path);
  if (!fit_run.ok()) {
    std::fprintf(stderr, "%s\n", fit_run.status().to_string().c_str());
    return 1;
  }
  if (fit_run.value().open) {
    std::fprintf(stderr,
                 "calibrate: fit run must be closed-loop (got open)\n");
    return 1;
  }
  if (loops == 0) loops = fit_run.value().server_loops;
  if (loops == 0) loops = 1;

  const model::ServingParams fitted =
      model::calibrate(fit_run.value().m, loops, wave_us);
  std::printf(
      "calibrate: fit on %s (closed, conns=%zu depth=%zu tput=%.0f ops/s)\n"
      "  loops=%zu service_us=%.2f base_rtt_us=%.2f wave_interval_us=%.1f\n",
      fit_path.c_str(), fit_run.value().m.workload.connections,
      fit_run.value().m.workload.depth,
      fit_run.value().m.throughput_ops_s, fitted.loops, fitted.service_us,
      fitted.base_rtt_us, fitted.wave_interval_us);

  if (check_path.empty()) return 0;
  auto check_run = load_calibration(check_path);
  if (!check_run.ok()) {
    std::fprintf(stderr, "%s\n", check_run.status().to_string().c_str());
    return 1;
  }
  const model::ServingMeasurement& actual = check_run.value().m;
  const model::ServingPrediction pred =
      model::simulate_serving(fitted, actual.workload);
  struct Line {
    const char* name;
    double predicted;
    double measured;
  } lines[] = {
      {"throughput_ops_s", pred.throughput_ops_s, actual.throughput_ops_s},
      {"p50_us", pred.p50_us, actual.p50_us},
      {"p95_us", pred.p95_us, actual.p95_us},
      {"p99_us", pred.p99_us, actual.p99_us},
  };
  std::printf("calibrate: predict %s (%s)\n", check_path.c_str(),
              check_run.value().open ? "open" : "closed");
  bool in_band = true;
  for (const Line& l : lines) {
    const double err = model::relative_error(l.predicted, l.measured);
    std::printf("  %-17s predicted=%12.1f measured=%12.1f err=%5.1f%%\n",
                l.name, l.predicted, l.measured, err * 100.0);
    if (err > tolerance) in_band = false;
  }
  std::printf("calibrate: prediction %s tolerance band (%.0f%%)\n",
              in_band ? "within" : "OUTSIDE", tolerance * 100.0);
  return in_band ? 0 : 1;
}

int cmd_trace(const std::string& path) {
  auto events = coherence::load_trace(path);
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().to_string().c_str());
    return 1;
  }
  const auto s = coherence::summarize_trace(events.value());
  std::printf("trace %s: %" PRIu64 " messages\n", path.c_str(), s.total);
  std::printf("  RdShared   %" PRIu64 "\n", s.rd_shared);
  std::printf("  RdOwn      %" PRIu64 "\n", s.rd_own);
  std::printf("  DirtyEvict %" PRIu64 "\n", s.dirty_evicts);
  std::printf("  CleanEvict %" PRIu64 "\n", s.clean_evicts);
  std::printf("  Snoops     %" PRIu64 "\n", s.snoops);
  std::printf("  distinct lines touched: %" PRIu64 "\n", s.distinct_lines);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "synctest") {
    const std::size_t pages =
        argc >= 3 ? std::strtoull(argv[2], nullptr, 0) : 256;
    const std::size_t lines =
        argc >= 4 ? std::strtoull(argv[3], nullptr, 0) : 8;
    return cmd_synctest(pages, lines);
  }
  if (cmd == "check") {
    if (argc >= 3 && std::strcmp(argv[2], "--replay") == 0) {
      if (argc < 4) return usage();
      return cmd_replay(argv[3]);
    }
    const std::size_t pages =
        argc >= 3 ? std::strtoull(argv[2], nullptr, 0) : 128;
    const int epochs =
        argc >= 4 ? static_cast<int>(std::strtoul(argv[3], nullptr, 0)) : 6;
    return cmd_check(pages, epochs);
  }
  if (cmd == "explore") {
    std::size_t pages = 2;
    int epochs = 3;
    std::uint64_t every = 1, max_points = 0, seed = 1;
    std::string artifacts;
    bool pipelined = false;
    int positional = 0;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--every" && i + 1 < argc) {
        every = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--pipelined") {
        pipelined = true;
      } else if (arg == "--max-points" && i + 1 < argc) {
        max_points = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--seed" && i + 1 < argc) {
        seed = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--artifacts" && i + 1 < argc) {
        artifacts = argv[++i];
      } else if (positional == 0) {
        pages = std::strtoull(argv[i], nullptr, 0);
        ++positional;
      } else if (positional == 1) {
        epochs = static_cast<int>(std::strtoul(argv[i], nullptr, 0));
        ++positional;
      } else {
        return usage();
      }
    }
    return cmd_explore(pages, epochs, every, max_points, seed, artifacts,
                       pipelined);
  }
  if (cmd == "litmus") {
    std::string shape = "all";
    std::uint64_t every = 1, max_points = 0, max_interleavings = 0, seed = 1;
    std::string seeded_bug, trace_dir;
    bool no_crash = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--shape" && i + 1 < argc) {
        shape = argv[++i];
      } else if (arg == "--every" && i + 1 < argc) {
        every = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--max-points" && i + 1 < argc) {
        max_points = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--max-interleavings" && i + 1 < argc) {
        max_interleavings = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--seed" && i + 1 < argc) {
        seed = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--seeded-bug" && i + 1 < argc) {
        seeded_bug = argv[++i];
      } else if (arg == "--trace-dir" && i + 1 < argc) {
        trace_dir = argv[++i];
      } else if (arg == "--no-crash") {
        no_crash = true;
      } else {
        return usage();
      }
    }
    return cmd_litmus(shape, every, max_points, max_interleavings, seed,
                      seeded_bug, trace_dir, no_crash);
  }
  if (cmd == "analyze") {
    std::vector<std::string> paths;
    bool json = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        json = true;
      } else {
        paths.push_back(arg);
      }
    }
    if (paths.empty()) return usage();
    return cmd_analyze(paths, json);
  }
  if (cmd == "fix") {
    std::string trace_path;
    std::string scenario = "undo-flush";
    std::string record_path;
    bool validate = false;
    bool json = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--scenario" && i + 1 < argc) {
        scenario = argv[++i];
      } else if (arg == "--record" && i + 1 < argc) {
        record_path = argv[++i];
      } else if (arg == "--validate") {
        validate = true;
      } else if (arg == "--json") {
        json = true;
      } else if (trace_path.empty()) {
        trace_path = arg;
      } else {
        return usage();
      }
    }
    return cmd_fix(trace_path, scenario, record_path, validate, json);
  }
  if (cmd == "calibrate") {
    std::string fit_path;
    std::string check_path;
    std::size_t loops = 0;  // 0: take from the fit report's server document
    double wave_us = 200.0;
    double tolerance = 0.35;
    int positional = 0;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--loops" && i + 1 < argc) {
        loops = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--wave-us" && i + 1 < argc) {
        wave_us = std::atof(argv[++i]);
      } else if (arg == "--tolerance" && i + 1 < argc) {
        tolerance = std::atof(argv[++i]);
      } else if (positional == 0) {
        fit_path = arg;
        ++positional;
      } else if (positional == 1) {
        check_path = arg;
        ++positional;
      } else {
        return usage();
      }
    }
    if (fit_path.empty()) return usage();
    return cmd_calibrate(fit_path, check_path, loops, wave_us, tolerance);
  }
  if (argc < 3) return usage();

  if (cmd == "trace") return cmd_trace(argv[2]);
  if (cmd != "info" && cmd != "log" && cmd != "verify" && cmd != "recover" &&
      cmd != "hexdump") {
    return usage();
  }

  auto dev = open_device(argv[2]);
  if (!dev.ok()) {
    std::fprintf(stderr, "%s\n", dev.status().to_string().c_str());
    return 1;
  }
  if (cmd == "info") return cmd_info(dev.value().get());
  if (cmd == "log") return cmd_log(dev.value().get());
  if (cmd == "verify") return cmd_verify(dev.value().get());
  if (cmd == "recover") return cmd_recover(dev.value().get());
  if (cmd == "hexdump" && argc >= 4) {
    const PoolOffset offset = std::strtoull(argv[3], nullptr, 0);
    const std::size_t len =
        argc >= 5 ? std::strtoull(argv[4], nullptr, 0) : 256;
    return cmd_hexdump(dev.value().get(), offset, len);
  }
  return usage();
}
