// paxkv — the PaxKV network server.
//
//   paxkv [--port P] [--bind ADDR] [--shards N] [--pool-mb MB]
//         [--commit group|independent|volatile]
//         [--group-max-ops N] [--group-interval-us U]
//         [--loops N] [--backend epoll|io_uring] [--pin]
//
// Serves the PaxKV binary protocol (GET/PUT/DEL/STATS) over TCP on top of
// N shard runtimes backed by in-memory simulated PM. Writes are made
// durable per the commit mode before they are acknowledged (see
// src/pax/kv/server.hpp). --loops runs that many SO_REUSEPORT event-loop
// threads; --backend selects the per-loop I/O engine (io_uring fails
// cleanly when unsupported); --pin pins loops and shard workers to CPUs.
// SIGINT/SIGTERM shut down gracefully. With --port 0 the kernel picks a
// port; it is printed either way as
//   paxkv: listening on <port>
// so scripts can scrape it.
#include <semaphore.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pax/kv/server.hpp"

namespace {

sem_t g_stop_sem;

void handle_signal(int) { sem_post(&g_stop_sem); }

int usage() {
  std::fprintf(
      stderr,
      "usage: paxkv [--port P] [--bind ADDR] [--shards N] [--pool-mb MB]\n"
      "             [--commit group|independent|volatile]\n"
      "             [--group-max-ops N] [--group-interval-us U]\n"
      "             [--loops N] [--backend epoll|io_uring] [--pin]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pax::kv::KvServerOptions options;
  options.port = 7433;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--bind" && i + 1 < argc) {
      options.bind_address = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      options.store.shards = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--pool-mb" && i + 1 < argc) {
      options.store.shard_pool_bytes =
          std::strtoull(argv[++i], nullptr, 0) << 20;
    } else if (arg == "--commit" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "group") {
        options.commit_mode = pax::kv::KvServerOptions::CommitMode::kGroup;
      } else if (mode == "independent") {
        options.commit_mode =
            pax::kv::KvServerOptions::CommitMode::kIndependent;
      } else if (mode == "volatile") {
        options.commit_mode =
            pax::kv::KvServerOptions::CommitMode::kVolatile;
      } else {
        return usage();
      }
    } else if (arg == "--group-max-ops" && i + 1 < argc) {
      options.group_max_ops = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--group-interval-us" && i + 1 < argc) {
      options.group_interval =
          std::chrono::microseconds(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--loops" && i + 1 < argc) {
      options.loop_threads = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--backend" && i + 1 < argc) {
      const std::string backend = argv[++i];
      if (backend == "epoll") {
        options.backend = pax::kv::KvServerOptions::Backend::kEpoll;
      } else if (backend == "io_uring") {
        options.backend = pax::kv::KvServerOptions::Backend::kIoUring;
      } else {
        return usage();
      }
    } else if (arg == "--pin") {
      options.pin_loops = true;
    } else {
      return usage();
    }
  }

  auto server = pax::kv::KvServer::start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "paxkv: %s\n",
                 server.status().message().c_str());
    return 1;
  }
  std::printf("paxkv: listening on %u\n", server.value()->port());
  std::fflush(stdout);

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (sem_wait(&g_stop_sem) != 0 && errno == EINTR) {
  }

  server.value()->stop();
  std::fputs(server.value()->stats_json().c_str(), stderr);
  return 0;
}
