// paxkv-loadgen — load generator for the PaxKV server.
//
//   paxkv-loadgen [--host H] [--port P] [--clients N] [--depth D]
//                 [--connections-per-thread C]
//                 [--ops N | --duration-s S] [--rate OPS_PER_SEC]
//                 [--keys K] [--value-bytes B] [--get-frac F] [--seed S]
//                 [--json FILE]
//
// Two modes:
//
//   * Closed loop (default): N client threads, each driving C connections
//     with a pipeline of D outstanding requests per connection; --ops
//     total operations. Latency is measured send→response per request.
//   * Open loop (--rate R): requests are scheduled on a fixed timeline at
//     R ops/s aggregate and latency is measured from the *scheduled* send
//     time, so queueing delay when the server falls behind is charged to
//     the server, not silently absorbed (no coordinated omission). Runs
//     for --duration-s seconds.
//
// --connections-per-thread lets one loadgen saturate a multi-loop server:
// N threads × C connections spread across the server's SO_REUSEPORT
// loops, without paying a full OS thread per connection.
//
// Workload: uniform keys "key-<n>" over --keys, --get-frac GETs, the rest
// PUTs of --value-bytes (a small fraction of DELs rides along: every 64th
// write). Reports throughput and p50/p95/p99/p999 to stdout; --json writes
// a machine-readable report including the server's own STATS document and
// a "calibration" record (offered load, achieved throughput, percentiles)
// that `paxctl calibrate` / pax::model::calibrate() consume to fit the
// serving DES against reality.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "pax/kv/client.hpp"
#include "pax/kv/histogram.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pax::kv::KvClient;
using pax::kv::LatencyHistogram;
using pax::kv::RespStatus;

struct Config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7433;
  std::size_t clients = 4;
  std::size_t depth = 16;
  std::size_t conns_per_thread = 1;
  std::uint64_t ops = 100000;     // closed loop
  double duration_s = 5.0;        // open loop
  double rate = 0.0;              // aggregate ops/s; > 0 selects open loop
  std::uint64_t keys = 10000;
  std::size_t value_bytes = 128;
  double get_frac = 0.5;
  std::uint64_t seed = 42;
  std::string json_path;
};

struct ThreadResult {
  LatencyHistogram hist;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  // Minimum GET latency: GET never parks on a group-commit wave, so this
  // is the service + wire floor pax::model::calibrate() splits on.
  std::uint64_t read_floor_ns = 0;
  bool connect_failed = false;

  void record(std::uint64_t ns, bool read) {
    hist.record(ns);
    if (read && (read_floor_ns == 0 || ns < read_floor_ns)) {
      read_floor_ns = ns;
    }
  }
};

std::string make_key(std::uint64_t n) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key-%08llu",
                static_cast<unsigned long long>(n));
  return buf;
}

// One op: GET with probability get_frac, else PUT (every 64th write a DEL).
// Returns true when the op was a GET.
bool send_op(KvClient& client, std::mt19937_64& rng, const Config& cfg,
             const std::string& value, std::uint64_t op_index) {
  std::uniform_int_distribution<std::uint64_t> key_dist(0, cfg.keys - 1);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  const std::string key = make_key(key_dist(rng));
  if (frac(rng) < cfg.get_frac) {
    client.send_get(key);
    return true;
  }
  if (op_index % 64 == 63) {
    client.send_del(key);
  } else {
    client.send_put(key, value);
  }
  return false;
}

// An in-flight op: its send (or scheduled-send) time and whether it was a
// GET (reads feed the calibration floor).
struct Inflight {
  Clock::time_point at;
  bool read;
};

// A connection plus its in-flight window.
struct Pipe {
  KvClient client;
  std::deque<Inflight> pending;
  explicit Pipe(KvClient c) : client(std::move(c)) {}
};

bool connect_pipes(const Config& cfg, std::vector<Pipe>& pipes) {
  pipes.reserve(cfg.conns_per_thread);
  for (std::size_t i = 0; i < cfg.conns_per_thread; ++i) {
    auto client = KvClient::connect(cfg.host, cfg.port);
    if (!client.ok()) return false;
    pipes.emplace_back(std::move(client).value());
  }
  return true;
}

ThreadResult run_closed(const Config& cfg, std::uint64_t thread_ops,
                        std::uint64_t seed) {
  ThreadResult result;
  std::vector<Pipe> pipes;
  if (!connect_pipes(cfg, pipes)) {
    result.connect_failed = true;
    return result;
  }
  std::mt19937_64 rng(seed);
  const std::string value(cfg.value_bytes, 'v');

  std::uint64_t sent = 0;
  std::uint64_t done = 0;
  while (done < thread_ops) {
    // Refill every connection's window, then drain one response from each
    // connection that has something outstanding — all pipes stay busy.
    for (Pipe& pipe : pipes) {
      while (sent < thread_ops && pipe.pending.size() < cfg.depth) {
        const bool read = send_op(pipe.client, rng, cfg, value, sent);
        pipe.pending.push_back({Clock::now(), read});
        ++sent;
      }
      if (!pipe.pending.empty() && !pipe.client.flush().is_ok()) {
        result.errors += thread_ops - done;
        result.ops = done;
        return result;
      }
    }
    for (Pipe& pipe : pipes) {
      if (pipe.pending.empty()) continue;
      auto resp = pipe.client.recv_response();
      if (!resp.ok()) {
        result.errors += thread_ops - done;
        result.ops = done;
        return result;
      }
      result.record(static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now() - pipe.pending.front().at)
                            .count()),
                    pipe.pending.front().read);
      pipe.pending.pop_front();
      ++done;
      if (resp.value().status == RespStatus::kError ||
          resp.value().status == RespStatus::kBadRequest) {
        ++result.errors;
      }
    }
  }
  result.ops = done;
  return result;
}

ThreadResult run_open(const Config& cfg, double thread_rate,
                      std::uint64_t seed) {
  ThreadResult result;
  std::vector<Pipe> pipes;
  if (!connect_pipes(cfg, pipes)) {
    result.connect_failed = true;
    return result;
  }
  std::mt19937_64 rng(seed);
  const std::string value(cfg.value_bytes, 'v');
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(1e9 / thread_rate));
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::nanoseconds(
                  static_cast<std::uint64_t>(cfg.duration_s * 1e9));

  // Scheduled send times — latency is measured from these, not from the
  // actual send, so a lagging server accrues queueing delay in the tail.
  // Ops round-robin across the thread's connections.
  auto next_send = start;
  std::uint64_t sent = 0;
  std::size_t outstanding = 0;

  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline && outstanding == 0) break;

    // Send every op whose scheduled time has arrived (bounded burst).
    std::size_t burst = 0;
    while (next_send <= Clock::now() && next_send < deadline &&
           burst < 1024) {
      Pipe& pipe = pipes[sent % pipes.size()];
      const bool read = send_op(pipe.client, rng, cfg, value, sent);
      pipe.pending.push_back({next_send, read});
      next_send += interval;
      ++sent;
      ++burst;
      ++outstanding;
    }
    if (burst > 0) {
      for (Pipe& pipe : pipes) {
        if (!pipe.pending.empty() && !pipe.client.flush().is_ok()) {
          result.errors += outstanding;
          return result;
        }
      }
    }
    if (outstanding == 0) {
      std::this_thread::sleep_until(std::min(next_send, deadline));
      continue;
    }
    // Drain in global scheduled order: each connection's responses are
    // FIFO, so the globally-oldest op is at the front of some pipe.
    Pipe* oldest = nullptr;
    for (Pipe& pipe : pipes) {
      if (pipe.pending.empty()) continue;
      if (oldest == nullptr ||
          pipe.pending.front().at < oldest->pending.front().at) {
        oldest = &pipe;
      }
    }
    auto resp = oldest->client.recv_response();
    if (!resp.ok()) {
      result.errors += outstanding;
      return result;
    }
    result.record(static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - oldest->pending.front().at)
                          .count()),
                  oldest->pending.front().read);
    oldest->pending.pop_front();
    --outstanding;
    ++result.ops;
  }
  return result;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: paxkv-loadgen [--host H] [--port P] [--clients N] "
      "[--depth D]\n"
      "                     [--connections-per-thread C]\n"
      "                     [--ops N | --duration-s S] [--rate OPS_S]\n"
      "                     [--keys K] [--value-bytes B] [--get-frac F]\n"
      "                     [--seed S] [--json FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      cfg.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      cfg.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--clients" && i + 1 < argc) {
      cfg.clients = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--depth" && i + 1 < argc) {
      cfg.depth = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--connections-per-thread" && i + 1 < argc) {
      cfg.conns_per_thread = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--ops" && i + 1 < argc) {
      cfg.ops = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--duration-s" && i + 1 < argc) {
      cfg.duration_s = std::atof(argv[++i]);
    } else if (arg == "--rate" && i + 1 < argc) {
      cfg.rate = std::atof(argv[++i]);
    } else if (arg == "--keys" && i + 1 < argc) {
      cfg.keys = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--value-bytes" && i + 1 < argc) {
      cfg.value_bytes = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--get-frac" && i + 1 < argc) {
      cfg.get_frac = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--json" && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (cfg.clients == 0 || cfg.depth == 0 || cfg.keys == 0 ||
      cfg.conns_per_thread == 0) {
    return usage();
  }

  const bool open_loop = cfg.rate > 0.0;
  const auto start = Clock::now();
  std::vector<ThreadResult> results(cfg.clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(cfg.clients);
    for (std::size_t i = 0; i < cfg.clients; ++i) {
      threads.emplace_back([&, i] {
        if (open_loop) {
          results[i] = run_open(cfg, cfg.rate / cfg.clients,
                                cfg.seed * 1000003 + i);
        } else {
          const std::uint64_t per = cfg.ops / cfg.clients +
                                    (i < cfg.ops % cfg.clients ? 1 : 0);
          results[i] = run_closed(cfg, per, cfg.seed * 1000003 + i);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LatencyHistogram hist;
  std::uint64_t total_ops = 0;
  std::uint64_t errors = 0;
  std::uint64_t read_floor_ns = 0;
  for (const ThreadResult& r : results) {
    if (r.connect_failed) {
      std::fprintf(stderr, "paxkv-loadgen: connect failed (%s:%u)\n",
                   cfg.host.c_str(), cfg.port);
      return 1;
    }
    hist.merge(r.hist);
    total_ops += r.ops;
    errors += r.errors;
    if (r.read_floor_ns != 0 &&
        (read_floor_ns == 0 || r.read_floor_ns < read_floor_ns)) {
      read_floor_ns = r.read_floor_ns;
    }
  }
  const double throughput = elapsed_s > 0 ? total_ops / elapsed_s : 0.0;
  const std::size_t connections = cfg.clients * cfg.conns_per_thread;

  std::printf(
      "paxkv-loadgen: mode=%s conns=%zu ops=%llu elapsed=%.2fs "
      "throughput=%.0f ops/s\n"
      "  latency p50=%.1fus p95=%.1fus p99=%.1fus p999=%.1fus mean=%.1fus "
      "max=%.1fus errors=%llu\n",
      open_loop ? "open" : "closed", connections,
      static_cast<unsigned long long>(total_ops), elapsed_s, throughput,
      hist.percentile(0.50) / 1e3, hist.percentile(0.95) / 1e3,
      hist.percentile(0.99) / 1e3, hist.percentile(0.999) / 1e3,
      hist.mean_ns() / 1e3, hist.max_ns() / 1e3,
      static_cast<unsigned long long>(errors));

  // Scrape the server's own stats (per-shard runtime + group-commit view).
  std::string server_stats = "{}";
  if (auto c = KvClient::connect(cfg.host, cfg.port); c.ok()) {
    if (auto s = c.value().stats();
        s.ok() && s.value().status == RespStatus::kOk) {
      server_stats = s.value().value;
    }
  }

  if (!cfg.json_path.empty()) {
    FILE* f = std::fopen(cfg.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "paxkv-loadgen: cannot write %s\n",
                   cfg.json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"mode\": \"%s\",\n"
        "  \"clients\": %zu,\n"
        "  \"depth\": %zu,\n"
        "  \"connections_per_thread\": %zu,\n"
        "  \"target_rate\": %.1f,\n"
        "  \"ops\": %llu,\n"
        "  \"errors\": %llu,\n"
        "  \"elapsed_s\": %.4f,\n"
        "  \"throughput_ops_s\": %.1f,\n"
        "  \"latency_ns\": {\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, "
        "\"p999\": %llu, \"mean\": %.1f, \"max\": %llu},\n",
        open_loop ? "open" : "closed", cfg.clients, cfg.depth,
        cfg.conns_per_thread, cfg.rate,
        static_cast<unsigned long long>(total_ops),
        static_cast<unsigned long long>(errors), elapsed_s, throughput,
        static_cast<unsigned long long>(hist.percentile(0.50)),
        static_cast<unsigned long long>(hist.percentile(0.95)),
        static_cast<unsigned long long>(hist.percentile(0.99)),
        static_cast<unsigned long long>(hist.percentile(0.999)),
        hist.mean_ns(), static_cast<unsigned long long>(hist.max_ns()));
    // The calibration record: everything pax::model::calibrate() needs to
    // fit the serving DES to this run (and to check a prediction against
    // it). Open-loop latencies are from scheduled send time.
    std::fprintf(
        f,
        "  \"calibration\": {\"mode\": \"%s\", \"connections\": %zu, "
        "\"depth\": %zu, \"write_frac\": %.4f, "
        "\"offered_load_ops_s\": %.1f, \"throughput_ops_s\": %.1f, "
        "\"duration_s\": %.4f, \"p50_us\": %.2f, \"p95_us\": %.2f, "
        "\"p99_us\": %.2f, \"read_floor_us\": %.2f},\n",
        open_loop ? "open" : "closed", connections, cfg.depth,
        1.0 - cfg.get_frac, cfg.rate, throughput, elapsed_s,
        hist.percentile(0.50) / 1e3, hist.percentile(0.95) / 1e3,
        hist.percentile(0.99) / 1e3, read_floor_ns / 1e3);
    std::fprintf(f, "  \"server\": %s\n}\n", server_stats.c_str());
    std::fclose(f);
  }
  return errors == 0 ? 0 : 1;
}
