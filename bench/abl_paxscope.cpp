// Ablation — PaxScope offline analysis throughput.
//
// PaxScope (src/pax/check/analyze.hpp) is meant to run over every trace CI
// records — dozens of .paxevt files, millions of events — so the
// happens-before reconstruction must stay comfortably faster than trace
// production. This bench synthesizes a large clean multi-threaded epoch
// trace (locks, undo appends/flushes, stores/flushes, gathered drain,
// commit), runs the analyzer over it, and reports events/s and HB edges/s
// for two configurations: the HB passes alone, and the full pipeline with
// the online rule replay folded in (what `paxctl analyze` runs).
//
// Acceptance (scripts/check_paxscope.py): zero findings on the clean
// stream, and full-pipeline throughput at or above a floor generous enough
// to pass under ASan.
//
// Results land in BENCH_paxscope.json (cwd) for the driver.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pax/check/analyze.hpp"
#include "pax/check/event.hpp"

namespace {

using namespace pax;
using namespace pax::check;
using Clock = std::chrono::steady_clock;

constexpr int kEpochs = 8000;
constexpr int kThreads = 4;
constexpr std::uint64_t kLogger = 4096;

// One clean epoch: each thread stages an undo record, makes it durable,
// then stores and flushes its line under a stripe lock; the committer
// gathers every stripe release through lock edges, drains, and commits
// under the log mutex. Every ordering edge the analyzer checks for is
// present, so the stream must analyze clean under both engines.
std::vector<Event> synthesize() {
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(kEpochs) * (kThreads * 8 + 4));
  std::uint64_t seq = 0;
  std::uint64_t log_end = 0;
  auto emit = [&](EventType type, std::uint16_t tid, std::uint64_t line,
                  std::uint64_t a = 0, std::uint64_t b = 0) {
    Event e;
    e.seq = ++seq;
    e.line = line;
    e.a = a;
    e.b = b;
    e.type = type;
    e.tid = tid;
    events.push_back(e);
  };
  const auto kStripeCls = static_cast<std::uint64_t>(LockClass::kStripe);
  const auto kLogMuCls = static_cast<std::uint64_t>(LockClass::kLogMu);
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    for (int t = 0; t < kThreads; ++t) {
      const auto tid = static_cast<std::uint16_t>(t);
      const std::uint64_t line =
          static_cast<std::uint64_t>(t) * 1024 + (epoch & 63);
      emit(EventType::kLockAcquire, tid, kNoLine, kStripeCls, tid);
      log_end += 64;
      emit(EventType::kLogAppend, tid, line, kLogger, log_end);
      emit(EventType::kLogFlush, tid, kNoLine, kLogger, log_end);
      emit(EventType::kStore, tid, line);
      emit(EventType::kFlush, tid, line);
      emit(EventType::kLockRelease, tid, kNoLine, kStripeCls, tid);
    }
    // The committer collects every stripe release, so its drain and commit
    // are HB-after all of this epoch's flushes.
    for (int t = 0; t < kThreads; ++t) {
      emit(EventType::kLockAcquire, 0, kNoLine, kStripeCls, t);
      emit(EventType::kLockRelease, 0, kNoLine, kStripeCls, t);
    }
    emit(EventType::kDrain, 0, kNoLine);
    emit(EventType::kLockAcquire, 0, kNoLine, kLogMuCls, 9);
    emit(EventType::kEpochCommit, 0, kNoLine, static_cast<std::uint64_t>(epoch));
    emit(EventType::kLockRelease, 0, kNoLine, kLogMuCls, 9);
  }
  return events;
}

struct Row {
  const char* config;
  double analyze_ms;
  std::uint64_t events;
  std::uint64_t hb_edges;
  double events_per_s;
  double edges_per_s;
  std::uint64_t findings;
};

constexpr int kRepeats = 3;

Row run(const char* config, const std::vector<Event>& events,
        bool online_replay) {
  AnalysisOptions options;
  options.online_replay = online_replay;
  double best_ms = 0;
  AnalysisReport report;
  for (int rep = 0; rep < kRepeats; ++rep) {
    TraceAnalyzer analyzer(options);
    const auto t0 = Clock::now();
    if (!analyzer.add_trace(events).is_ok()) std::abort();
    report = analyzer.finish();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    best_ms = rep == 0 ? ms : std::min(best_ms, ms);
  }
  const double secs = best_ms / 1000.0;
  return Row{config,
             best_ms,
             report.stats.events,
             report.stats.total_edges(),
             secs > 0 ? static_cast<double>(report.stats.events) / secs : 0,
             secs > 0 ? static_cast<double>(report.stats.total_edges()) / secs
                      : 0,
             report.findings.size()};
}

}  // namespace

int main() {
  const std::vector<Event> events = synthesize();
  std::printf("=== PaxScope offline analysis throughput ===\n");
  std::printf("synthetic clean trace: %zu events (%d epochs x %d threads)\n",
              events.size(), kEpochs, kThreads);
  std::printf("%10s %12s %10s %10s %12s %12s %9s\n", "config", "analyze[ms]",
              "events", "hb edges", "events/s", "edges/s", "findings");

  std::vector<Row> rows;
  rows.push_back(run("hb-only", events, /*online_replay=*/false));
  rows.push_back(run("full", events, /*online_replay=*/true));
  for (const Row& r : rows) {
    std::printf("%10s %12.1f %10" PRIu64 " %10" PRIu64 " %12.0f %12.0f %9"
                PRIu64 "\n",
                r.config, r.analyze_ms, r.events, r.hb_edges, r.events_per_s,
                r.edges_per_s, r.findings);
    std::fflush(stdout);
  }

  std::FILE* out = std::fopen("BENCH_paxscope.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_paxscope.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"paxscope\",\n");
  std::fprintf(out, "  \"trace_events\": %zu,\n", events.size());
  std::fprintf(out, "  \"epochs\": %d,\n  \"threads\": %d,\n", kEpochs,
               kThreads);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"config\": \"%s\", \"analyze_ms\": %.2f, "
                 "\"events\": %" PRIu64 ", \"hb_edges\": %" PRIu64 ", "
                 "\"events_per_s\": %.0f, \"hb_edges_per_s\": %.0f, "
                 "\"findings\": %" PRIu64 "}%s\n",
                 r.config, r.analyze_ms, r.events, r.hb_edges, r.events_per_s,
                 r.edges_per_s, r.findings,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_paxscope.json\n");
  return 0;
}
