// Figure 2a — AMAT estimates (paper §5).
//
// Reproduces the experiment behind the left panel of Figure 2: run a
// standard hash-table get() benchmark (single thread, 8 B keys/values,
// uniform random keys) through the simulated cache hierarchy, measure
// L1/L2/LLC miss rates, and combine them with media + interconnect
// latencies for four configurations:
//
//   DRAM            (volatile, host-attached)
//   PM              (Optane, host-attached, not crash consistent)
//   PM via CXL      (PAX on a CXL accelerator — crash consistent)
//   PM via Enzian   (PAX on the Enzian prototype — crash consistent)
//
// Paper takeaways the output re-checks:
//   * crash consistency via CXL-PAX adds ≈25% to AMAT over raw PM;
//   * the Enzian prototype's interposition overhead is ≈2× the CXL one.
#include <cinttypes>
#include <cstdio>

#include "pax/coherence/host_cache.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/model/amat.hpp"
#include "pax/model/sim_hash_table.hpp"
#include "pax/model/workload.hpp"
#include "pax/pmem/pool.hpp"

namespace {

using namespace pax;

constexpr std::uint64_t kSlots = 1ull << 21;    // 32 MiB table > 22 MiB LLC
constexpr std::uint64_t kKeys = kSlots / 2;     // 50% load factor
constexpr std::uint64_t kOps = 2'000'000;

}  // namespace

int main() {
  std::printf("=== Figure 2a: AMAT estimates ===\n");
  std::printf(
      "workload: single-thread get(), 8 B keys/values, uniform keys,\n"
      "          %" PRIu64 "-slot open-addressing table (32 MiB > LLC), "
      "%.1fM ops\n\n",
      kSlots, kOps / 1e6);

  // Build the stack: PM pool, PAX device, host cache hierarchy.
  auto pm = pmem::PmemDevice::create_in_memory(96ull << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 4 << 20).value();
  device::PaxDevice dev(&pool, device::DeviceConfig::defaults());
  coherence::HostCacheSim host(&dev, coherence::HostCacheConfig{});

  // Populate, then measure a pure-get phase (as the paper does). Population
  // group-commits every 16k inserts to bound the undo log (§3.2).
  model::SimHashTable table(&host, pool.data_offset(), kSlots);
  model::KeyGenerator load_keys(model::KeyDist::kUniform, kKeys, 0, 42);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    if (!table.put(load_keys.next(), i).is_ok()) break;
    if ((i & 0x3fff) == 0x3fff) {
      if (!dev.persist(host.pull_fn()).ok()) break;
    }
  }
  (void)dev.persist(host.pull_fn());
  std::printf("table populated: %" PRIu64 " live keys\n", table.size());

  host.reset_stats();
  model::KeyGenerator get_keys(model::KeyDist::kUniform, kKeys, 0, 43);
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    hits += table.get(get_keys.next()).has_value() ? 1 : 0;
  }

  const auto& stats = host.stats();
  std::printf("probe hit ratio: %.3f\n", double(hits) / double(kOps));
  std::printf(
      "measured miss rates: L1 %.3f   L2 %.3f   LLC %.3f   "
      "(LLC misses/access %.3f)\n\n",
      stats.l1.miss_rate(), stats.l2.miss_rate(), stats.llc.miss_rate(),
      stats.l1.miss_rate() * stats.l2.miss_rate() * stats.llc.miss_rate());

  const auto lat = simtime::MemoryLatency::c6420();
  auto rows = model::fig2a_rows(stats, lat);

  std::printf("%-16s %10s %28s\n", "configuration", "AMAT [ns]",
              "breakdown L1+L2+LLC+mem [ns]");
  for (const auto& row : rows) {
    std::printf("%-16s %10.1f %10.1f + %.1f + %.1f + %.1f\n", row.label,
                row.amat.amat_ns, row.amat.l1_ns, row.amat.l2_ns,
                row.amat.llc_ns, row.amat.memory_ns);
  }

  const double pm_amat = rows[1].amat.amat_ns;
  const double cxl_amat = rows[2].amat.amat_ns;
  const double enzian_amat = rows[3].amat.amat_ns;
  std::printf(
      "\nshape checks vs paper:\n"
      "  CXL-PAX overhead over raw PM:       +%.0f%%   (paper: ~+25%%)\n"
      "  Enzian overhead / CXL overhead:     %.2fx   (paper: ~2x)\n",
      (cxl_amat / pm_amat - 1.0) * 100.0,
      (enzian_amat - pm_amat) / (cxl_amat - pm_amat));

  return 0;
}
