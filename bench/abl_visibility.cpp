// Ablation 6 — protocol visibility: CXL.cache vs CXL.mem (§6).
//
// "CXL.mem can support basic functionality, but it does not have as much
// visibility into coherence as CXL.cache" — this bench quantifies what the
// visibility buys. Same write-heavy workload, same device, two attachments:
//
//   .cache  stores announce themselves (RdOwn) → the device logs early and
//           writes back proactively through the epoch; persist() pulls the
//           few still-cached lines with snoops.
//   .mem    stores are silent; the device learns at eviction time, and
//           persist() needs a host CLWB sweep over every dirty line — a
//           serialized storm on the application's critical path (§4 calls
//           out exactly this cost), plus the logging burst it triggers.
#include <cinttypes>
#include <cstdio>

#include "pax/common/rng.hpp"
#include "pax/coherence/host_cache.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/pmem/pool.hpp"
#include "pax/simtime/latency.hpp"

namespace {

using namespace pax;

constexpr std::uint64_t kOpsPerEpoch = 20000;
constexpr std::uint64_t kEpochs = 5;
constexpr std::uint64_t kLineSpace = 16384;

struct Row {
  const char* mode;
  double device_msgs_per_op;     // mid-epoch messages to the device
  double clwbs_per_epoch;        // persist-path CLWB sweep size
  double async_log_fraction;     // undo records created before the boundary
  double persist_path_ns;        // modelled persist-path cost per epoch
};

Row run(coherence::DeviceProtocol protocol) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 16 << 20).value();
  device::DeviceConfig cfg;
  cfg.hbm.capacity_lines = 8192;
  cfg.hbm.ways = 8;
  device::PaxDevice dev(&pool, cfg);

  coherence::HostCacheConfig host_cfg;
  host_cfg.protocol = protocol;
  coherence::HostCacheSim host(&dev, host_cfg);

  Xoshiro256 rng(3);
  std::uint64_t total_clwbs = 0;
  std::uint64_t logs_before_boundary = 0;
  std::uint64_t logs_total = 0;
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    for (std::uint64_t i = 0; i < kOpsPerEpoch; ++i) {
      const PoolOffset at =
          pool.data_offset() + rng.next_below(kLineSpace) * kCacheLineSize;
      if (!host.store_u64(at, rng.next()).is_ok()) std::abort();
      if ((i & 0xff) == 0xff) dev.tick();
    }
    // How much undo logging already happened asynchronously, before the
    // epoch boundary work begins?
    const std::uint64_t logs_at_boundary = dev.stats().first_touch_logs;
    const std::uint64_t clwb_before = host.stats().clwbs;
    if (protocol == coherence::DeviceProtocol::kCxlMem) {
      if (!host.clwb_all_dirty().is_ok()) std::abort();
    }
    total_clwbs += host.stats().clwbs - clwb_before;
    if (!dev.persist(host.pull_fn()).ok()) std::abort();
    const std::uint64_t logs_after = dev.stats().first_touch_logs;
    logs_before_boundary += logs_at_boundary - (logs_total);
    logs_total = logs_after;
  }

  const auto& hs = host.stats();
  const double ops = double(kOpsPerEpoch * kEpochs);

  // Mid-epoch device messages: reads + (mode-dependent) intents/writes.
  const double msgs =
      double(hs.rd_shared + hs.rd_own + hs.dirty_evicts + hs.mem_writes);

  // Modelled application-visible persist-path cost per epoch. The paper's
  // §4 contrast: device-issued RdShared pulls are pipelined *by the device*
  // (one per pipeline slot, ~300 MHz, plus one link round trip), while
  // CLWBs "are serialized [and] consume cycles" on the CPU.
  const auto lat = simtime::MemoryLatency::c6420();
  const auto cxl = simtime::InterconnectLatency::cxl();
  const double device_slot_ns = 1e9 / simtime::BandwidthSpec::paper().device_pipeline_hz;
  double persist_ns;
  if (protocol == coherence::DeviceProtocol::kCxlMem) {
    persist_ns = double(total_clwbs) / kEpochs * lat.clwb_ns +
                 lat.sfence_drain_ns;
  } else {
    persist_ns = double(hs.snoops_served) / kEpochs * device_slot_ns +
                 cxl.round_trip_ns + lat.sfence_drain_ns;
  }

  return Row{
      protocol == coherence::DeviceProtocol::kCxlMem ? "CXL.mem" : "CXL.cache",
      msgs / ops,
      double(total_clwbs) / kEpochs,
      logs_total == 0 ? 0.0
                      : double(logs_before_boundary) / double(logs_total),
      persist_ns};
}

}  // namespace

int main() {
  std::printf("=== Ablation 6: CXL.cache vs CXL.mem visibility (§6) ===\n");
  std::printf("%" PRIu64 " epochs x %" PRIu64
              " random u64 stores over %" PRIu64 " lines\n\n",
              kEpochs, kOpsPerEpoch, kLineSpace);
  std::printf("%10s %16s %16s %18s %18s\n", "mode", "dev msgs/op",
              "CLWBs/epoch", "async log frac", "persist path [ns]");
  for (auto protocol : {coherence::DeviceProtocol::kCxlCache,
                        coherence::DeviceProtocol::kCxlMem}) {
    Row r = run(protocol);
    std::printf("%10s %16.3f %16.0f %18.2f %18.0f\n", r.mode,
                r.device_msgs_per_op, r.clwbs_per_epoch,
                r.async_log_fraction, r.persist_path_ns);
  }
  std::printf(
      "\nreading: .cache's ownership visibility lets the device log early\n"
      "and write back through the epoch, leaving persist() a handful of\n"
      "snoops; .mem defers everything to a serialized per-epoch CLWB sweep\n"
      "on the application's critical path (§4's argument against CLWB-based\n"
      "flushing, quantified).\n");
  return 0;
}
