// Ablation 8 — persist() and tail latency: synchronous group commit vs the
// §6 non-blocking persist.
//
// Group commit batches the snapshot cost onto one op per batch: the mean
// stays low but the batch-boundary op eats the whole commit — a classic
// tail-latency spike. §6's overlapped epochs replace that spike with a
// cheap seal. This bench runs the DES with per-op latency collection and
// reports the distribution for both modes across batch sizes, plus PMDK
// (whose cost sits on *every* op) for contrast.
#include <cstdio>

#include "pax/model/throughput.hpp"

namespace {

using namespace pax;

void print_profile(const char* label, double mops,
                   const model::LatencyProfile& p) {
  std::printf("%-22s %8.1f %9.0f %9.0f %9.0f %9.0f %9.0f %9.0f\n", label,
              mops, p.mean_ns, p.p50_ns, p.p90_ns, p.p99_ns, p.p999_ns,
              p.max_ns);
}

}  // namespace

int main() {
  std::printf("=== Ablation 8: persist mode vs op latency tail (8 threads) "
              "===\n\n");
  std::printf("%-22s %8s %9s %9s %9s %9s %9s %9s\n", "mode", "Mops", "mean",
              "p50", "p90", "p99", "p99.9", "max [ns]");

  model::ModelParams base;
  base.ops_per_thread = 400000;

  {
    model::LatencyProfile prof;
    const double mops =
        model::simulate_mops(model::SystemKind::kPmdk, 8, base, &prof);
    print_profile("PMDK (per-op sync)", mops, prof);
  }

  for (double interval : {256.0, 1024.0, 4096.0}) {
    model::ModelParams sync = base;
    sync.pax_persist_interval_ops = interval;
    sync.pax_async_persist = false;
    model::LatencyProfile sp;
    const double sm =
        model::simulate_mops(model::SystemKind::kPaxCxl, 8, sync, &sp);
    char label[64];
    std::snprintf(label, sizeof(label), "PAX sync, batch %d",
                  static_cast<int>(interval));
    print_profile(label, sm, sp);

    model::ModelParams async_params = sync;
    async_params.pax_async_persist = true;
    model::LatencyProfile ap;
    const double am = model::simulate_mops(model::SystemKind::kPaxCxl, 8,
                                           async_params, &ap);
    std::snprintf(label, sizeof(label), "PAX async, batch %d",
                  static_cast<int>(interval));
    print_profile(label, am, ap);
  }

  std::printf(
      "\nreading: sync group commit concentrates the snapshot cost in the\n"
      "boundary op (the p99.9/max spike grows with nothing else changing);\n"
      "the §6 non-blocking persist replaces it with a seal, flattening the\n"
      "tail while throughput holds. PMDK spreads its cost over every op —\n"
      "flat tail, but a mean several times worse.\n");
  return 0;
}
