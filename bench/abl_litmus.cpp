// Litmus harness throughput: schedule-enumeration rate over all eight
// shapes, and the full crash product (every=1, all three modes) on the
// core shapes. Writes BENCH_litmus.json, gated by scripts/check_litmus.py:
// zero findings everywhere, all shapes covered, and interleavings/s +
// crash points/s above conservative floors (the CI litmus job runs this
// under ASan).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "pax/litmus/runner.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pax::litmus::LitmusOptions;
using pax::litmus::Shape;
using pax::litmus::ShapeResult;

struct Row {
  std::string shape;
  std::string mode;  // "schedule" | "crash"
  std::uint64_t interleavings = 0;
  std::uint64_t outcomes = 0;
  std::uint64_t crash_points = 0;
  std::uint64_t executions = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t findings = 0;
  double wall_ms = 0;
  double interleavings_per_sec = 0;
  double crash_points_per_sec = 0;
};

bool run_one(const Shape& shape, const LitmusOptions& options,
             const std::string& mode, std::vector<Row>& rows) {
  const auto t0 = Clock::now();
  auto result = pax::litmus::run_shape(shape, options);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (!result.ok()) {
    std::fprintf(stderr, "litmus %s failed: %s\n", shape.name.c_str(),
                 result.status().to_string().c_str());
    return false;
  }
  const ShapeResult& r = result.value();
  Row row;
  row.shape = shape.name;
  row.mode = mode;
  row.interleavings = r.interleavings;
  row.outcomes = r.outcomes.size();
  row.crash_points = r.crash_points;
  row.executions = r.executions;
  row.recoveries = r.recoveries;
  row.findings = r.findings.size();
  row.wall_ms = ms;
  row.interleavings_per_sec = r.interleavings / (ms / 1000.0);
  row.crash_points_per_sec =
      r.crash_points == 0 ? 0.0 : r.crash_points / (ms / 1000.0);
  rows.push_back(row);
  std::printf("%-8s %-8s: %4" PRIu64 " interleaving(s), %5" PRIu64
              " crash point(s), %2" PRIu64 " finding(s) in %8.1f ms "
              "(%.0f interleavings/s)\n",
              shape.name.c_str(), mode.c_str(), row.interleavings,
              row.crash_points, row.findings, ms,
              row.interleavings_per_sec);
  return true;
}

}  // namespace

int main() {
  std::vector<Row> rows;

  // Schedule enumeration only, every shape, every interleaving.
  for (const Shape& shape : pax::litmus::all_shapes()) {
    LitmusOptions options;
    options.crash_every = 0;
    if (!run_one(shape, options, "schedule", rows)) return 1;
  }

  // Full crash product (exhaustive points, all three modes) on the
  // acceptance-matrix shapes.
  for (const char* name : {"SB", "MP", "LB"}) {
    const Shape* shape = pax::litmus::find_shape(name);
    LitmusOptions options;
    options.crash_every = 1;
    if (!run_one(*shape, options, "crash", rows)) return 1;
  }

  std::FILE* out = std::fopen("BENCH_litmus.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_litmus.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"litmus\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"shape\": \"%s\", \"mode\": \"%s\", \"interleavings\": "
        "%" PRIu64 ", \"outcomes\": %" PRIu64 ", \"crash_points\": %" PRIu64
        ", \"executions\": %" PRIu64 ", \"recoveries\": %" PRIu64
        ", \"findings\": %" PRIu64
        ", \"wall_ms\": %.1f, \"interleavings_per_sec\": %.1f, "
        "\"crash_points_per_sec\": %.1f}%s\n",
        r.shape.c_str(), r.mode.c_str(), r.interleavings, r.outcomes,
        r.crash_points, r.executions, r.recoveries, r.findings, r.wall_ms,
        r.interleavings_per_sec, r.crash_points_per_sec,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_litmus.json\n");
  return 0;
}
