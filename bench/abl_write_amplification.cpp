// Ablation 2 — write amplification: line-granular (PAX) vs page-granular
// (page-fault WAL) logging (§1, §5.1).
//
// The paper's core complaint about paging-based crash consistency is 4 KiB
// logging granularity vs the "specific size of the field being mutated".
// Its §5.1 nuance: paging amortizes for workloads with spatial locality
// (one trap covers a whole page). This bench sweeps locality — number of
// 8 B updates per touched page — and reports, for both functional systems,
// log bytes and PM media bytes per logical update.
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "pax/baselines/pagewal/pagewal.hpp"
#include "pax/common/rng.hpp"
#include "pax/libpax/runtime.hpp"

namespace {

using namespace pax;

constexpr std::size_t kPoolBytes = 128 << 20;
constexpr std::uint64_t kPagesTouched = 512;

struct Row {
  double updates_per_page;
  double pax_log_per_update;
  double pax_media_per_update;
  double pagewal_log_per_update;
  double pagewal_media_per_update;
};

// Writes `updates_per_page` random 8 B fields in each of kPagesTouched
// pages, then persists once.
template <typename WriteFn>
void run_workload(std::byte* base, double updates_per_page, WriteFn&& write) {
  Xoshiro256 rng(7);
  for (std::uint64_t p = 1; p <= kPagesTouched; ++p) {
    const std::uint64_t n = static_cast<std::uint64_t>(updates_per_page);
    for (std::uint64_t u = 0; u < n; ++u) {
      const std::uint64_t slot = rng.next_below(kPageSize / 8);
      write(base + p * kPageSize + slot * 8, rng.next());
    }
  }
}

Row run(double updates_per_page) {
  Row row{updates_per_page, 0, 0, 0, 0};
  const double total_updates = updates_per_page * kPagesTouched;

  {
    libpax::RuntimeOptions opts;
    opts.log_size = 32 << 20;
    auto rt = libpax::PaxRuntime::create_in_memory(kPoolBytes, opts).value();
    (void)rt->persist();
    const auto log0 = rt->device().log_stats().bytes_staged;
    rt->pm().reset_stats();
    run_workload(rt->vpm_base(), updates_per_page,
                 [](std::byte* at, std::uint64_t v) {
                   std::memcpy(at, &v, 8);
                 });
    if (!rt->persist().ok()) std::abort();
    row.pax_log_per_update =
        double(rt->device().log_stats().bytes_staged - log0) / total_updates;
    row.pax_media_per_update =
        double(rt->pm().stats().media_bytes_written) / total_updates;
  }
  {
    auto pm = pmem::PmemDevice::create_in_memory(kPoolBytes);
    auto rt = baselines::pagewal::PageWalRuntime::attach(pm.get(), 64 << 20)
                  .value();
    pm->reset_stats();
    run_workload(rt->base(), updates_per_page,
                 [](std::byte* at, std::uint64_t v) {
                   std::memcpy(at, &v, 8);
                 });
    if (!rt->persist().ok()) std::abort();
    row.pagewal_log_per_update =
        double(rt->stats().log_bytes) / total_updates;
    row.pagewal_media_per_update =
        double(pm->stats().media_bytes_written) / total_updates;
  }
  return row;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation 2: write amplification, line vs page logging ===\n");
  std::printf(
      "workload: k random 8 B updates in each of %" PRIu64
      " pages, one epoch\n\n",
      kPagesTouched);
  std::printf("%14s | %14s %14s | %14s %14s | %10s\n", "updates/page",
              "PAX log B/upd", "PAX media B", "pgWAL log B/upd",
              "pgWAL media B", "log ratio");
  for (double k : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    Row r = run(k);
    std::printf("%14.0f | %14.1f %14.1f | %14.1f %14.1f | %9.1fx\n",
                r.updates_per_page, r.pax_log_per_update,
                r.pax_media_per_update, r.pagewal_log_per_update,
                r.pagewal_media_per_update,
                r.pagewal_log_per_update / r.pax_log_per_update);
  }
  std::printf(
      "\nreading: at sparse updates the page log amplifies writes by tens of\n"
      "times (§1); as locality rises (≥64 updates/page ≈ one per line) the\n"
      "gap closes — the §5.1 argument for a combined approach.\n");
  return 0;
}
