// Ablation 12 — the §5.1 combined approach and its locality crossover.
//
// "Paging may capture spatial locality well for some workloads. PAX must
// interpose on every last-level cache miss, but paging-based approaches
// only incur overhead on the first access to a page per epoch … We may find
// that a combination of the approaches works best."
//
// The DES compares, across spatial locality (page first-touches per op):
//   PAX (CXL)   no traps; every LLC miss pays the device round trip
//   Page-WAL    traps + synchronous 4 KiB page logs
//   Hybrid      traps, then PAX line logging; reads unmediated (§5.1)
#include <cstdio>

#include "pax/model/throughput.hpp"

int main() {
  using namespace pax::model;
  std::printf("=== Ablation 12: locality crossover — PAX vs paging vs "
              "hybrid (8 threads, Mops) ===\n\n");
  std::printf("%18s", "page touches/op");
  for (double touches : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    std::printf("%9.2f", touches);
  }
  std::printf("\n");

  for (auto kind :
       {SystemKind::kPaxCxl, SystemKind::kPageWal, SystemKind::kHybrid}) {
    std::printf("%18s", system_name(kind));
    for (double touches : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
      ModelParams params;
      params.pagewal_page_touch_per_op = touches;
      std::printf("%9.1f", simulate_mops(kind, 8, params));
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: with high spatial locality (few page touches/op) the\n"
      "hybrid beats pure PAX — reads skip the device round trip and the\n"
      "rare trap is amortized; as locality disappears the trap cost blows\n"
      "up paging-based designs and pure PAX wins. The combination dominates\n"
      "page-WAL everywhere (it never writes 4 KiB log records).\n");
  return 0;
}
