// Ablation — batched, parallel libpax host sync path.
//
// PR "feed the striped device": persist()'s host half used to walk dirty
// pages one line at a time — peek_line + write_intent + writeback_line, 3
// device calls (and up to 4 lock acquisitions) per dirty line. The batched
// path diffs pages across a worker pool and pushes dirty lines through
// PaxDevice::sync_lines, which fuses intent + writeback and appends each
// stripe group's undo records under one log-mutex hold. This bench sweeps
// diff_workers x sync_batch_lines over a dirty-page-heavy workload and
// reports persist wall time, device calls per dirty line (legacy = 3.0
// exactly when every checked line is dirty), and log-mutex acquisitions per
// epoch. workers=1 x batch=1 is the pre-PR baseline.
//
// Results land in BENCH_host_sync.json (cwd) for the driver.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "pax/libpax/runtime.hpp"

namespace {

using namespace pax;
using namespace pax::libpax;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kPool = 64 << 20;
constexpr std::size_t kDirtyPages = 512;  // 2 MiB rewritten per epoch
constexpr int kEpochs = 4;

struct Row {
  unsigned workers;
  std::size_t batch;
  double persist_ms_mean;
  double device_calls_per_dirty_line;
  double log_acquisitions_per_epoch;
  std::uint64_t dirty_lines;
  bool correct;
};

Row run(unsigned workers, std::size_t batch) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);

  RuntimeOptions opts;
  opts.log_size = 8 << 20;
  opts.device.stripes = 16;
  opts.device.persist_workers = 4;
  opts.sync_batch_lines = batch;
  opts.diff_workers = workers;
  opts.diff_fanout_min_pages = 1;

  double persist_ms = 0;
  std::uint64_t dirty_lines = 0;
  double calls_per_line = 0;
  double log_acq_per_epoch = 0;
  int last_epoch_byte = 0;
  {
    auto rt = PaxRuntime::attach(pm.get(), opts).value();
    if (!rt->persist().ok()) std::abort();  // settle heap-format writes

    const RuntimeStats rt_base = rt->stats();
    const auto dev_base = rt->device().stats();

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      last_epoch_byte = 0x30 + epoch;
      for (std::size_t p = 1; p <= kDirtyPages; ++p) {
        std::memset(rt->vpm_base() + p * kPageSize, last_epoch_byte,
                    kPageSize);
      }
      const auto t0 = Clock::now();
      if (!rt->persist().ok()) std::abort();
      persist_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
    }

    const RuntimeStats rs = rt->stats();
    const auto ds = rt->device().stats();
    dirty_lines = rs.lines_dirty_found - rt_base.lines_dirty_found;
    calls_per_line = dirty_lines == 0
                         ? 0
                         : static_cast<double>(rs.device_calls -
                                               rt_base.device_calls) /
                               static_cast<double>(dirty_lines);
    log_acq_per_epoch = static_cast<double>(ds.log_append_acquisitions -
                                            dev_base.log_append_acquisitions) /
                        kEpochs;
  }  // teardown without persist: crash semantics

  // Crash and recover: the last persisted epoch must come back intact.
  pm->crash(pmem::CrashConfig::drop_all());
  RuntimeOptions quiet = opts;
  auto rt = PaxRuntime::attach(pm.get(), quiet).value();
  bool correct = true;
  for (std::size_t p = 1; p <= kDirtyPages && correct; p += 37) {
    for (std::size_t b = 0; b < kPageSize; b += 509) {
      if (rt->vpm_base()[p * kPageSize + b] !=
          static_cast<std::byte>(last_epoch_byte)) {
        correct = false;
        break;
      }
    }
  }

  return Row{workers,
             batch,
             persist_ms / kEpochs,
             calls_per_line,
             log_acq_per_epoch,
             dirty_lines,
             correct};
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("=== Batched parallel host sync: persist() cost sweep ===\n");
  std::printf("host cpus: %u, dirty pages/epoch: %zu (%zu lines)\n", cpus,
              kDirtyPages, kDirtyPages * kLinesPerPage);
  if (cpus <= 1) {
    std::printf(
        "NOTE: single-CPU host — diff workers are time-sliced, so the\n"
        "multi-worker speedup cannot show; batching gains still apply.\n");
  }
  std::printf("%8s %6s %13s %17s %15s %8s\n", "workers", "batch",
              "persist[ms]", "dev calls/line", "log acq/epoch", "correct");

  std::vector<Row> rows;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{64},
                              std::size_t{256}, std::size_t{1024}}) {
      Row r = run(workers, batch);
      rows.push_back(r);
      std::printf("%8u %6zu %13.3f %17.3f %15.1f %8s\n", r.workers, r.batch,
                  r.persist_ms_mean, r.device_calls_per_dirty_line,
                  r.log_acquisitions_per_epoch, r.correct ? "yes" : "NO");
      std::fflush(stdout);
    }
  }

  // Headlines the acceptance criteria read off directly.
  double legacy_calls = 0, batched_calls = 0;
  double serial_ms = 0, parallel_ms = 0;
  for (const Row& r : rows) {
    if (r.workers == 1 && r.batch == 1) legacy_calls = r.device_calls_per_dirty_line;
    if (r.workers == 4 && r.batch == 256) {
      batched_calls = r.device_calls_per_dirty_line;
      parallel_ms = r.persist_ms_mean;
    }
    if (r.workers == 1 && r.batch == 256) serial_ms = r.persist_ms_mean;
  }
  std::printf("\ndevice calls per dirty line: %.3f (legacy) -> %.3f "
              "(batch=256)\n", legacy_calls, batched_calls);
  if (parallel_ms > 0) {
    std::printf("diff_workers=4 vs 1 persist speedup at batch=256: %.2fx\n",
                serial_ms / parallel_ms);
  }

  std::FILE* out = std::fopen("BENCH_host_sync.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_host_sync.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"host_sync\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", cpus);
  std::fprintf(out, "  \"dirty_pages_per_epoch\": %zu,\n", kDirtyPages);
  std::fprintf(out, "  \"epochs\": %d,\n", kEpochs);
  std::fprintf(out, "  \"device_calls_per_dirty_line_legacy\": %.3f,\n",
               legacy_calls);
  std::fprintf(out, "  \"device_calls_per_dirty_line_batched\": %.3f,\n",
               batched_calls);
  std::fprintf(out, "  \"speedup_4w_vs_1w_batch256\": %.3f,\n",
               parallel_ms > 0 ? serial_ms / parallel_ms : 0.0);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"diff_workers\": %u, \"sync_batch_lines\": %zu, "
                 "\"persist_ms_mean\": %.3f, "
                 "\"device_calls_per_dirty_line\": %.3f, "
                 "\"log_append_acquisitions_per_epoch\": %.1f, "
                 "\"dirty_lines\": %" PRIu64 ", \"correct\": %s}%s\n",
                 r.workers, r.batch, r.persist_ms_mean,
                 r.device_calls_per_dirty_line,
                 r.log_acquisitions_per_epoch, r.dirty_lines,
                 r.correct ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_host_sync.json\n");
  return 0;
}
