// Ablation 1 — group-commit interval (§3.2).
//
// The paper: "the application issues persist() after a batch of operations,
// which works as a form of group commit … libpax can issue persist()
// periodically to limit undo log growth." This bench quantifies both sides
// of that trade-off on the *functional* libpax stack:
//
//   * cost amortization: faults, undo records, and PM write-backs per
//     operation drop as the interval grows (first-touch costs amortize);
//   * log footprint: the peak undo-log size grows with the interval.
//
// Plus the modelled throughput effect from the Fig 2b DES.
#include <cinttypes>
#include <cstdio>

#include "pax/common/rng.hpp"
#include "pax/libpax/persistent.hpp"
#include "pax/libpax/runtime.hpp"
#include "pax/model/throughput.hpp"

namespace {

using namespace pax;

using MapAlloc =
    libpax::PaxStlAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
using PMap = std::unordered_map<std::uint64_t, std::uint64_t,
                                std::hash<std::uint64_t>,
                                std::equal_to<std::uint64_t>, MapAlloc>;

struct Row {
  std::uint64_t interval;
  double faults_per_op;
  double undo_records_per_op;
  double log_bytes_per_op;
  double peak_log_bytes;
  double pm_writeback_lines_per_op;
  double modelled_mops32;
};

Row run(std::uint64_t interval) {
  constexpr std::uint64_t kOps = 40000;
  constexpr std::uint64_t kKeySpace = 20000;

  libpax::RuntimeOptions opts;
  opts.log_size = 32 << 20;
  auto rt = libpax::PaxRuntime::create_in_memory(256 << 20, opts).value();
  auto map = libpax::Persistent<PMap>::open(*rt).value();
  (void)rt->persist();  // commit heap formatting

  const auto base = rt->device().stats();
  const auto base_log = rt->device().log_stats();
  const auto base_faults = rt->region().fault_count();

  Xoshiro256 rng(99);
  double peak_log = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    (*map)[1 + rng.next_below(kKeySpace)] = rng.next();
    if ((i + 1) % interval == 0) {
      rt->sync_step();  // stage undo records like the background flusher
      peak_log =
          std::max(peak_log, double(rt->device().log_bytes_in_use()));
      if (!rt->persist().ok()) std::abort();
    }
  }
  (void)rt->persist();

  const auto dev = rt->device().stats();
  const auto log = rt->device().log_stats();

  model::ModelParams params;
  params.pax_persist_interval_ops = double(interval);
  const double mops = model::simulate_mops(model::SystemKind::kPaxCxl, 32,
                                           params);

  return Row{interval,
             double(rt->region().fault_count() - base_faults) / kOps,
             double(dev.first_touch_logs - base.first_touch_logs) / kOps,
             double(log.bytes_staged - base_log.bytes_staged) / kOps,
             peak_log,
             double(dev.pm_writeback_lines - base.pm_writeback_lines) / kOps,
             mops};
}

}  // namespace

int main() {
  std::printf("=== Ablation 1: group-commit interval (persist every k ops) ===\n");
  std::printf(
      "workload: 40k random u64 upserts over 20k keys through libpax "
      "std::unordered_map\n\n");
  std::printf("%10s %12s %12s %12s %12s %12s %14s\n", "interval",
              "faults/op", "undo rec/op", "log B/op", "peak log B",
              "PM wb/op", "model Mops@32");
  for (std::uint64_t k : {1ull, 8ull, 64ull, 256ull, 1024ull, 4096ull}) {
    Row r = run(k);
    std::printf("%10" PRIu64 " %12.3f %12.3f %12.1f %12.0f %12.3f %14.1f\n",
                r.interval, r.faults_per_op, r.undo_records_per_op,
                r.log_bytes_per_op, r.peak_log_bytes,
                r.pm_writeback_lines_per_op, r.modelled_mops32);
  }
  std::printf(
      "\nreading: larger batches amortize first-touch logging and faults\n"
      "(paper §3.2), at the cost of a larger undo log to roll back on "
      "crash.\n");
  return 0;
}
