// Ablation 9 — multi-core sharing (§3.5 / §6 "highly concurrent workloads").
//
// With several cores behind one PAX device, coherence traffic — and hence
// the device's message load, the §5.1 pipeline bottleneck — depends on how
// much the cores *share*. This bench sweeps the fraction of stores that
// target a common hot region (the rest go to per-core private regions) on a
// 4-core coherence domain and reports device messages, cross-core snoops,
// and undo records per operation. PAX's per-epoch logging is insensitive to
// ownership migration: a line bouncing between cores is still logged once.
#include <cinttypes>
#include <cstdio>

#include "pax/coherence/domain.hpp"
#include "pax/common/rng.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/pmem/pool.hpp"

namespace {

using namespace pax;

constexpr unsigned kCores = 4;
constexpr std::uint64_t kOps = 100000;
constexpr std::uint64_t kSharedLines = 512;
constexpr std::uint64_t kPrivateLinesPerCore = 2048;

struct Row {
  double shared_fraction;
  double dev_msgs_per_op;
  double snoops_per_op;
  double undo_records_per_op;
  double invalidations_per_op;
};

Row run(double shared_fraction) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 16 << 20).value();
  device::PaxDevice dev(&pool, device::DeviceConfig::defaults());
  coherence::CoherenceDomain domain(&dev, coherence::HostCacheConfig{},
                                    kCores);

  const PoolOffset shared_base = pool.data_offset();
  const PoolOffset private_base =
      shared_base + kSharedLines * kCacheLineSize;

  Xoshiro256 rng(13);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const unsigned core = rng.next_below(kCores);
    PoolOffset at;
    if (rng.next_bool(shared_fraction)) {
      at = shared_base + rng.next_below(kSharedLines) * kCacheLineSize;
    } else {
      at = private_base +
           (core * kPrivateLinesPerCore + rng.next_below(kPrivateLinesPerCore)) *
               kCacheLineSize;
    }
    if (!domain.core(core).store_u64(at, rng.next()).is_ok()) std::abort();
    if ((i + 1) % 16384 == 0) {
      if (!dev.persist(domain.pull_fn()).ok()) std::abort();
    }
  }
  if (!dev.persist(domain.pull_fn()).ok()) std::abort();

  std::uint64_t snoops = 0, invalidations = 0, msgs = 0;
  for (unsigned c = 0; c < kCores; ++c) {
    const auto& s = domain.core(c).stats();
    snoops += s.snoops_served;
    msgs += s.rd_shared + s.rd_own + s.dirty_evicts;
    invalidations += s.dirty_evicts;  // includes snoop-invalidation flushes
  }
  const auto ds = dev.stats();
  return Row{shared_fraction, double(msgs) / kOps, double(snoops) / kOps,
             double(ds.first_touch_logs) / kOps,
             double(invalidations) / kOps};
}

}  // namespace

int main() {
  std::printf("=== Ablation 9: multi-core sharing degree (4 cores) ===\n");
  std::printf("%" PRIu64 " stores, %" PRIu64 " shared lines vs %" PRIu64
              " private lines/core, persist every 16k\n\n",
              kOps, kSharedLines, kPrivateLinesPerCore);
  std::printf("%14s %14s %12s %14s %16s\n", "shared frac", "dev msgs/op",
              "snoops/op", "undo rec/op", "dirty evicts/op");
  for (double f : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    Row r = run(f);
    std::printf("%14.2f %14.3f %12.3f %14.3f %16.3f\n", r.shared_fraction,
                r.dev_msgs_per_op, r.snoops_per_op, r.undo_records_per_op,
                r.invalidations_per_op);
  }
  std::printf(
      "\nreading: sharing multiplies coherence traffic (snoops, ownership\n"
      "transfers) — the device pipeline's §5.1 concern — but undo records\n"
      "per op FALL with sharing (a hot line is logged once per epoch no\n"
      "matter how many cores fight over it): PAX's logging cost is bounded\n"
      "by the write set, not by contention.\n");
  return 0;
}
