// Ablation 7 — workload sensitivity (YCSB-style mixes, key skew).
//
// The paper's AMAT argument (§5) rests on CPU caches absorbing most
// accesses; how much they absorb depends on the op mix and key skew. This
// bench runs YCSB-like mixes through the full coherence stack and reports
// what PAX actually pays per operation in each regime: device messages,
// undo records, and the resulting AMAT under the Fig 2a latency model.
//
//   A  50% read / 50% update, zipfian      (update-heavy, skewed)
//   B  95% read /  5% update, zipfian      (read-mostly, skewed)
//   C 100% read,              zipfian      (read-only)
//   W 100% update,            uniform      (the Fig 2b write-only workload)
#include <cinttypes>
#include <cstdio>

#include "pax/coherence/host_cache.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/model/amat.hpp"
#include "pax/model/sim_hash_table.hpp"
#include "pax/model/workload.hpp"
#include "pax/pmem/pool.hpp"

namespace {

using namespace pax;

struct MixSpec {
  const char* name;
  double put_fraction;
  model::KeyDist dist;
  double theta;
};

struct Row {
  const char* name;
  double llc_miss_rate;
  double dev_msgs_per_op;
  double undo_records_per_op;
  double pax_amat_ns;
  double pm_amat_ns;
};

Row run(const MixSpec& mix) {
  auto pm = pmem::PmemDevice::create_in_memory(96ull << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 16 << 20).value();
  device::PaxDevice dev(&pool, device::DeviceConfig::defaults());
  coherence::HostCacheSim host(&dev, coherence::HostCacheConfig{});

  constexpr std::uint64_t kSlots = 1ull << 21;
  constexpr std::uint64_t kKeys = kSlots / 2;
  model::SimHashTable table(&host, pool.data_offset(), kSlots);

  // Load phase.
  model::KeyGenerator load_keys(model::KeyDist::kUniform, kKeys, 0, 42);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    if (!table.put(load_keys.next(), i).is_ok()) break;
    if ((i & 0x3fff) == 0x3fff) (void)dev.persist(host.pull_fn());
  }
  (void)dev.persist(host.pull_fn());

  // Measured phase.
  host.reset_stats();
  const auto dev_before = dev.stats();
  model::WorkloadGen gen(
      model::KeyGenerator(mix.dist, kKeys, mix.theta, 77), mix.put_fraction,
      78);
  constexpr std::uint64_t kOps = 1'000'000;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const model::Op op = gen.next();
    if (op.type == model::Op::Type::kPut) {
      if (!table.put(op.key, op.value).is_ok()) std::abort();
    } else {
      (void)table.get(op.key);
    }
    if ((i & 0x3fff) == 0x3fff) (void)dev.persist(host.pull_fn());
  }

  const auto& hs = host.stats();
  const auto ds = dev.stats();
  const auto lat = simtime::MemoryLatency::c6420();
  const auto pax_amat = model::compute_amat(
      hs, lat, model::Media::kPm, simtime::InterconnectLatency::cxl());
  const auto pm_amat = model::compute_amat(
      hs, lat, model::Media::kPm, simtime::InterconnectLatency::none());

  return Row{mix.name,
             hs.l1.miss_rate() * hs.l2.miss_rate() * hs.llc.miss_rate(),
             double(hs.rd_shared + hs.rd_own + hs.dirty_evicts) / kOps,
             double(ds.first_touch_logs - dev_before.first_touch_logs) / kOps,
             pax_amat.amat_ns, pm_amat.amat_ns};
}

}  // namespace

int main() {
  std::printf("=== Ablation 7: YCSB-style workload mixes through PAX ===\n");
  std::printf("1M ops on a 32 MiB table, persist every 16k ops\n\n");
  std::printf("%4s %10s | %14s %14s %14s | %12s %12s %8s\n", "mix",
              "put/dist", "LLC miss/acc", "dev msgs/op", "undo rec/op",
              "PM AMAT", "PAX AMAT", "ovhd");
  const MixSpec mixes[] = {
      {"A", 0.5, model::KeyDist::kZipfian, 0.99},
      {"B", 0.05, model::KeyDist::kZipfian, 0.99},
      {"C", 0.0, model::KeyDist::kZipfian, 0.99},
      {"W", 1.0, model::KeyDist::kUniform, 0},
  };
  for (const auto& mix : mixes) {
    Row r = run(mix);
    std::printf("%4s %6.0f%%/%s | %14.4f %14.4f %14.4f | %10.1fns %10.1fns "
                "%+6.0f%%\n",
                r.name, mix.put_fraction * 100,
                mix.dist == model::KeyDist::kZipfian ? "zipf" : "unif",
                r.llc_miss_rate, r.dev_msgs_per_op, r.undo_records_per_op,
                r.pm_amat_ns, r.pax_amat_ns,
                (r.pax_amat_ns / r.pm_amat_ns - 1.0) * 100.0);
  }
  std::printf(
      "\nreading: skewed mixes (A-C) live in CPU caches — the device sees\n"
      "a small fraction of accesses and PAX's AMAT overhead shrinks toward\n"
      "zero; the uniform write-only sweep (W) is the paper's worst case.\n");
  return 0;
}
