// Ablation — line-granular incremental diffing + adaptive sync tuning.
//
// PR "incremental diff": the batched host sync path used to memcmp all 64
// lines of every dirty page against a fetched device shadow, so persist()
// paid for pages touched, not lines written. With track_lines, the region
// keeps per-page candidate bitmaps and per-line digests of the last-synced
// contents; the diff skips digest-clean lines without touching the shadow
// and fetches only the candidates. This bench sweeps dirty-line density x
// tracking on/off x tuner on/off over a fixed dirty-page set and reports
// bytes memcmp'd per epoch (the quantity tracking is meant to crush),
// persist wall time, and the tuner's final knob choices.
//
// Expectations encoded in the headline fields:
//   * at <= 12.5% density (8/64 lines) tracking cuts bytes memcmp'd by
//     >= 4x (it actually approaches 64/density);
//   * with tracking off the diff degenerates to the full-page scan
//     (lines_diffed == 64 * pages), i.e. the PR 2 behavior;
//   * lines diffed per line written stays near 1.0 at ~10% density with
//     tracking on (the perf-guard ratio).
//
// Results land in BENCH_incremental_diff.json (cwd) for the driver.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "pax/libpax/runtime.hpp"

namespace {

using namespace pax;
using namespace pax::libpax;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kPool = 64 << 20;
constexpr std::size_t kDirtyPages = 512;
constexpr int kEpochs = 4;  // measured; one extra seed epoch runs first

struct Row {
  std::size_t density;  // dirty lines per page, out of kLinesPerPage
  bool tracked;
  bool tuner;
  double persist_ms_mean;
  double bytes_memcmp_per_epoch;
  double lines_diffed_per_epoch;
  double lines_skipped_per_epoch;
  double lines_synced_per_epoch;
  std::size_t last_batch_lines;
  unsigned last_diff_workers;
  bool correct;
};

Row run(std::size_t density, bool tracked, bool tuner) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);

  RuntimeOptions opts;
  opts.log_size = 8 << 20;
  opts.device.stripes = 16;
  opts.device.persist_workers = 4;
  opts.sync_batch_lines = 256;
  opts.diff_workers = 4;
  opts.diff_fanout_min_pages = 1;
  opts.track_lines = tracked;
  opts.adaptive_sync = tuner;

  double persist_ms = 0;
  SyncStats base{}, after{};
  int last_epoch_byte = 0;
  {
    auto rt = PaxRuntime::attach(pm.get(), opts).value();

    // Seed epoch: touch the full dirty set once so every page's digests are
    // rebuilt before measurement (the steady state a long-running workload
    // lives in). Not counted.
    for (std::size_t p = 1; p <= kDirtyPages; ++p) {
      std::byte* page = rt->vpm_base() + p * kPageSize;
      for (std::size_t l = 0; l < density; ++l) {
        page[l * kCacheLineSize] = static_cast<std::byte>(0x2f);
      }
    }
    if (!rt->persist().ok()) std::abort();
    base = rt->sync_stats();

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      last_epoch_byte = 0x30 + epoch;
      for (std::size_t p = 1; p <= kDirtyPages; ++p) {
        std::byte* page = rt->vpm_base() + p * kPageSize;
        for (std::size_t l = 0; l < density; ++l) {
          page[l * kCacheLineSize] = static_cast<std::byte>(last_epoch_byte);
        }
      }
      const auto t0 = Clock::now();
      if (!rt->persist().ok()) std::abort();
      persist_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
    }
    after = rt->sync_stats();
  }  // teardown without persist: crash semantics

  // Crash and recover: the last persisted epoch must come back intact
  // whether or not the diff was taking the tracked shortcut.
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), opts).value();
  bool correct = true;
  for (std::size_t p = 1; p <= kDirtyPages && correct; ++p) {
    for (std::size_t l = 0; l < density; ++l) {
      if (rt->vpm_base()[p * kPageSize + l * kCacheLineSize] !=
          static_cast<std::byte>(last_epoch_byte)) {
        correct = false;
        break;
      }
    }
  }

  const double diffed =
      static_cast<double>(after.lines_diffed - base.lines_diffed) / kEpochs;
  const double skipped =
      static_cast<double>(after.lines_skipped - base.lines_skipped) / kEpochs;
  const double synced =
      static_cast<double>(after.lines_synced - base.lines_synced) / kEpochs;
  return Row{density,
             tracked,
             tuner,
             persist_ms / kEpochs,
             diffed * kCacheLineSize,
             diffed,
             skipped,
             synced,
             after.last_batch_lines,
             after.last_diff_workers,
             correct};
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("=== Incremental diff: bytes memcmp'd vs dirty density ===\n");
  std::printf("host cpus: %u, dirty pages/epoch: %zu, lines/page: %zu\n",
              cpus, kDirtyPages, kLinesPerPage);
  std::printf("%8s %8s %6s %13s %15s %13s %11s %6s %3s %8s\n", "density",
              "tracked", "tuner", "persist[ms]", "memcmp B/ep",
              "diffed/ep", "synced/ep", "batch", "w", "correct");

  std::vector<Row> rows;
  for (std::size_t density : {std::size_t{1}, std::size_t{4}, std::size_t{6},
                              std::size_t{8}, std::size_t{16},
                              std::size_t{64}}) {
    for (bool tracked : {false, true}) {
      for (bool tuner : {false, true}) {
        Row r = run(density, tracked, tuner);
        rows.push_back(r);
        std::printf("%5zu/64 %8s %6s %13.3f %15.0f %13.0f %11.0f %6zu %3u "
                    "%8s\n",
                    r.density, r.tracked ? "yes" : "no",
                    r.tuner ? "yes" : "no", r.persist_ms_mean,
                    r.bytes_memcmp_per_epoch, r.lines_diffed_per_epoch,
                    r.lines_synced_per_epoch, r.last_batch_lines,
                    r.last_diff_workers, r.correct ? "yes" : "NO");
        std::fflush(stdout);
      }
    }
  }

  // Headlines the acceptance criteria read off directly.
  auto find = [&](std::size_t density, bool tracked, bool tuner) -> const Row* {
    for (const Row& r : rows) {
      if (r.density == density && r.tracked == tracked && r.tuner == tuner) {
        return &r;
      }
    }
    return nullptr;
  };
  const Row* untracked8 = find(8, false, false);
  const Row* tracked8 = find(8, true, false);
  const double memcmp_ratio_12pct =
      (tracked8 != nullptr && untracked8 != nullptr &&
       tracked8->bytes_memcmp_per_epoch > 0)
          ? untracked8->bytes_memcmp_per_epoch /
                tracked8->bytes_memcmp_per_epoch
          : 0.0;
  const Row* guard = find(6, true, false);  // 6/64 ~= 9.4%, the ~10% point
  const double diffed_per_written_10pct =
      (guard != nullptr && guard->lines_synced_per_epoch > 0)
          ? guard->lines_diffed_per_epoch / guard->lines_synced_per_epoch
          : 0.0;
  const Row* untracked_full = find(64, false, false);
  const bool tracking_off_full_scan =
      untracked_full != nullptr &&
      untracked_full->lines_diffed_per_epoch >=
          static_cast<double>(kDirtyPages * kLinesPerPage);

  std::printf("\nbytes memcmp'd per epoch at 8/64 density: %.0f (tracked) vs "
              "%.0f (untracked) — %.1fx reduction\n",
              tracked8 != nullptr ? tracked8->bytes_memcmp_per_epoch : 0.0,
              untracked8 != nullptr ? untracked8->bytes_memcmp_per_epoch : 0.0,
              memcmp_ratio_12pct);
  std::printf("lines diffed per line written at ~10%% density (tracked): "
              "%.3f\n",
              diffed_per_written_10pct);

  std::FILE* out = std::fopen("BENCH_incremental_diff.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_incremental_diff.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"incremental_diff\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", cpus);
  std::fprintf(out, "  \"dirty_pages_per_epoch\": %zu,\n", kDirtyPages);
  std::fprintf(out, "  \"epochs\": %d,\n", kEpochs);
  std::fprintf(out, "  \"memcmp_bytes_reduction_at_12pct_density\": %.3f,\n",
               memcmp_ratio_12pct);
  std::fprintf(out, "  \"lines_diffed_per_line_written_at_10pct\": %.3f,\n",
               diffed_per_written_10pct);
  std::fprintf(out, "  \"tracking_off_full_scan\": %s,\n",
               tracking_off_full_scan ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"density_lines\": %zu, \"track_lines\": %s, "
        "\"adaptive_sync\": %s, \"persist_ms_mean\": %.3f, "
        "\"bytes_memcmp_per_epoch\": %.0f, \"lines_diffed_per_epoch\": %.0f, "
        "\"lines_skipped_per_epoch\": %.0f, \"lines_synced_per_epoch\": %.0f, "
        "\"last_batch_lines\": %zu, \"last_diff_workers\": %u, "
        "\"correct\": %s}%s\n",
        r.density, r.tracked ? "true" : "false", r.tuner ? "true" : "false",
        r.persist_ms_mean, r.bytes_memcmp_per_epoch, r.lines_diffed_per_epoch,
        r.lines_skipped_per_epoch, r.lines_synced_per_epoch,
        r.last_batch_lines, r.last_diff_workers, r.correct ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_incremental_diff.json\n");
  return 0;
}
