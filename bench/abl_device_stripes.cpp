// Ablation — striped device data path: throughput scaling vs stripe count.
//
// PR "kill the global device lock": the PaxDevice partitions its state into
// per-LineIndex stripes, each with its own lock, so data-path operations on
// different stripes proceed in parallel, and persist() fans per-stripe
// write-back across a small worker pool. This bench sweeps
// stripes x threads, with each thread hammering a disjoint hot line range
// (write_intent + writeback_line + reads, the CXL.cache op mix), and
// reports aggregate ops/s plus persist() latency. stripes=1 reproduces the
// old single-mutex device, so the 1-stripe column is the baseline the
// speedup is measured against.
//
// Results land in BENCH_device_stripes.json (cwd) for the driver.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "pax/device/pax_device.hpp"
#include "pax/pmem/pool.hpp"

namespace {

using namespace pax;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kLinesPerThread = 1024;  // hot set, fits the buffer
constexpr std::uint64_t kOpsPerThread = 24'000;
constexpr int kEpochs = 3;

struct Row {
  unsigned stripes;
  unsigned effective_stripes;
  unsigned threads;
  double ops_per_sec;
  double persist_ms_mean;
  bool correct;
};

LineData line_value(std::uint64_t tag) {
  LineData d;
  for (std::size_t b = 0; b < kCacheLineSize; ++b) {
    d.bytes[b] = static_cast<std::byte>((tag * 31 + b * 7) & 0xff);
  }
  return d;
}

Row run(unsigned stripes, unsigned threads) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 8 << 20).value();

  device::DeviceConfig cfg;
  cfg.hbm.capacity_lines = 16384;
  cfg.hbm.ways = 8;
  cfg.stripes = stripes;
  cfg.persist_workers = 4;
  device::PaxDevice dev(&pool, cfg);

  const std::uint64_t first = pool.data_offset() / kCacheLineSize;
  auto thread_line = [&](unsigned t, std::uint64_t i) {
    return LineIndex{first + t * kLinesPerThread + (i % kLinesPerThread)};
  };

  double total_op_seconds = 0;
  double total_persist_ms = 0;
  std::uint64_t last_tag = 0;

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    last_tag = 1'000'000 + static_cast<std::uint64_t>(epoch);
    const auto ops_begin = Clock::now();
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
          const LineIndex line = thread_line(t, i);
          if ((i & 3) == 3) {
            // 1-in-4 ops is a read of our own hot range.
            (void)dev.read_line(line);
            continue;
          }
          if (!dev.write_intent(line).is_ok()) std::abort();
          dev.writeback_line(line, line_value(last_tag + t * 131 + i));
          if ((i & 0x3ff) == 0x3ff) dev.tick();
        }
      });
    }
    for (auto& w : workers) w.join();
    total_op_seconds +=
        std::chrono::duration<double>(Clock::now() - ops_begin).count();

    const auto persist_begin = Clock::now();
    if (!dev.persist(nullptr).ok()) std::abort();
    total_persist_ms +=
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  persist_begin)
            .count();
  }

  // Each thread's last write to line slot s in the final epoch was at the
  // largest write-op index i with i % kLinesPerThread == s.
  bool correct = true;
  for (unsigned t = 0; t < threads && correct; ++t) {
    for (std::uint64_t s = 0; s < kLinesPerThread; ++s) {
      std::uint64_t last_i = 0;
      bool wrote = false;
      for (std::uint64_t i = s; i < kOpsPerThread; i += kLinesPerThread) {
        if ((i & 3) != 3) {
          last_i = i;
          wrote = true;
        }
      }
      if (!wrote) continue;
      const LineData want = line_value(last_tag + t * 131 + last_i);
      if (!(pm->durable_line(thread_line(t, s)) == want)) {
        correct = false;
        break;
      }
    }
  }

  const double total_ops =
      static_cast<double>(kOpsPerThread) * threads * kEpochs;
  return Row{stripes,
             dev.stripe_count(),
             threads,
             total_ops / total_op_seconds,
             total_persist_ms / kEpochs,
             correct};
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("=== Striped device data path: ops/s vs stripes x threads ===\n");
  std::printf("host cpus: %u\n", cpus);
  if (cpus <= 1) {
    std::printf(
        "NOTE: single-CPU host — threads are time-sliced, so stripe\n"
        "scaling cannot show; run on a multi-core machine for the real\n"
        "sweep. Numbers below still validate correctness under the\n"
        "concurrent schedule.\n");
  }
  std::printf("%8s %6s %8s %14s %14s %9s\n", "stripes", "(eff)", "threads",
              "ops/s", "persist[ms]", "correct");

  std::vector<Row> rows;
  for (unsigned stripes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      Row r = run(stripes, threads);
      rows.push_back(r);
      std::printf("%8u %6u %8u %14.0f %14.3f %9s\n", r.stripes,
                  r.effective_stripes, r.threads, r.ops_per_sec,
                  r.persist_ms_mean, r.correct ? "yes" : "NO");
      std::fflush(stdout);
    }
  }

  // Headline: contended multi-thread traffic vs the single-lock device.
  double base_4t = 0, striped_4t = 0;
  for (const Row& r : rows) {
    if (r.threads == 4 && r.stripes == 1) base_4t = r.ops_per_sec;
    if (r.threads == 4 && r.stripes == 16) striped_4t = r.ops_per_sec;
  }
  if (base_4t > 0) {
    std::printf("\n4-thread speedup, 16 stripes vs 1 stripe: %.2fx\n",
                striped_4t / base_4t);
  }

  std::FILE* out = std::fopen("BENCH_device_stripes.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_device_stripes.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"device_stripes\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", cpus);
  std::fprintf(out, "  \"ops_per_thread\": %" PRIu64
                    ",\n  \"lines_per_thread\": %" PRIu64
                    ",\n  \"epochs\": %d,\n",
              kOpsPerThread, kLinesPerThread, kEpochs);
  std::fprintf(out, "  \"speedup_4t_16s_vs_1s\": %.3f,\n",
               base_4t > 0 ? striped_4t / base_4t : 0.0);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"stripes\": %u, \"effective_stripes\": %u, "
                 "\"threads\": %u, \"ops_per_sec\": %.0f, "
                 "\"persist_ms_mean\": %.3f, \"correct\": %s}%s\n",
                 r.stripes, r.effective_stripes, r.threads, r.ops_per_sec,
                 r.persist_ms_mean, r.correct ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_device_stripes.json\n");
  return 0;
}
