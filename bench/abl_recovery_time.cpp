// Ablation 10 — recovery cost (§3.4).
//
// Recovery work is proportional to the uncommitted epoch's undo log, not to
// the pool size — a direct consequence of epoch-tagged logging. This bench
// stages crashed pools with increasingly large in-flight epochs and times
// the recovery routine itself (pool open + log scan + undo application) for
// PAX's 64 B line records and for the page-WAL baseline's 4 KiB page
// records (the Abl 2 amplification, showing up again at recovery time).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "pax/baselines/pagewal/pagewal.hpp"
#include "pax/common/rng.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "pax/wal/wal.hpp"

namespace {

using namespace pax;

constexpr std::size_t kPmBytes = 768ull << 20;
constexpr std::size_t kLogBytes = 512ull << 20;

// Stages a pool whose log holds `lines` uncommitted line-undo records (what
// a crash mid-epoch leaves), returns the recovery routine's wall time.
double pax_recovery_ms(std::uint64_t lines, std::uint64_t* applied) {
  auto pm = pmem::PmemDevice::create_in_memory(kPmBytes);
  auto pool = pmem::PmemPool::create(pm.get(), kLogBytes).value();
  {
    device::DeviceConfig cfg;
    cfg.log_flush_batch_bytes = 0;
    device::PaxDevice dev(&pool, cfg);
    const std::uint64_t first = pool.data_offset() / kCacheLineSize;
    LineData d;
    for (std::uint64_t i = 0; i < lines; ++i) {
      const LineIndex line{first + i * (kPageSize / kCacheLineSize)};
      if (!dev.write_intent(line).is_ok()) std::abort();
      d.bytes[0] = static_cast<std::byte>(i);
      dev.writeback_line(line, d);
    }
    dev.tick(/*force_flush=*/true);  // records durable + data written back
  }
  pm->crash(pmem::CrashConfig::drop_all());

  const auto t0 = std::chrono::steady_clock::now();
  auto opened = pmem::PmemPool::open(pm.get()).value();
  auto report = device::recover_pool(opened);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (!report.ok()) std::abort();
  *applied = report.value().records_applied;
  return ms;
}

double pagewal_recovery_ms(std::uint64_t pages) {
  auto pm = pmem::PmemDevice::create_in_memory(kPmBytes);
  auto pool = pmem::PmemPool::create(pm.get(), kLogBytes).value();

  // Stage the uncommitted epoch's page-undo records (what a crash inside
  // PageWalRuntime::persist() after the log flush leaves behind).
  wal::LogWriter writer(pm.get(), pool.log_offset(), pool.log_size());
  std::vector<std::byte> payload(sizeof(wal::PageUndoHeader) + kPageSize);
  for (std::uint64_t p = 0; p < pages; ++p) {
    wal::PageUndoHeader h{p};
    std::memcpy(payload.data(), &h, sizeof(h));
    if (!writer.append(1, wal::RecordType::kPageUndo, payload).ok()) {
      std::abort();
    }
  }
  writer.flush();
  pm->crash(pmem::CrashConfig::drop_all());

  const auto t0 = std::chrono::steady_clock::now();
  auto opened = pmem::PmemPool::open(pm.get()).value();
  if (!baselines::pagewal::PageWalRuntime::recover(opened).is_ok()) {
    std::abort();
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("=== Ablation 10: recovery cost vs in-flight epoch size ===\n");
  std::printf(
      "crash with an uncommitted epoch of N sparse updates (1 line/page);\n"
      "timing the recovery routine only (pool open + scan + undo)\n\n");
  std::printf("%16s %16s %14s %18s %10s\n", "in-flight lines",
              "records undone", "PAX rec [ms]", "pageWAL rec [ms]", "ratio");
  for (std::uint64_t lines : {100ull, 1000ull, 10000ull, 50000ull}) {
    std::uint64_t applied = 0;
    const double pax_ms = pax_recovery_ms(lines, &applied);
    const double pw_ms = pagewal_recovery_ms(lines);
    std::printf("%16" PRIu64 " %16" PRIu64 " %14.2f %18.2f %9.1fx\n", lines,
                applied, pax_ms, pw_ms, pw_ms / pax_ms);
  }
  std::printf(
      "\nreading: recovery scales with the uncommitted write set, not the\n"
      "pool (§3.4); the page-granular baseline pays its ~64x record-size\n"
      "amplification again at recovery time.\n");
  return 0;
}
