// Component microbenchmarks (google-benchmark): the building blocks whose
// costs feed the analytical models — CRC framing, undo-log append/flush,
// simulated PM data path, HBM buffer operations, host-cache simulation
// overhead, persistent heap allocation, and recovery scan rate.
#include <benchmark/benchmark.h>

#include <cstring>

#include "pax/baselines/pmdk/tx.hpp"
#include "pax/common/crc.hpp"
#include "pax/common/rng.hpp"
#include "pax/coherence/eci_adapter.hpp"
#include "pax/coherence/host_cache.hpp"
#include "pax/coherence/trace.hpp"
#include "pax/libpax/sharded_map.hpp"
#include "pax/device/hbm_cache.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "pax/libpax/heap.hpp"
#include "pax/pmem/pool.hpp"
#include "pax/wal/wal.hpp"

namespace {

using namespace pax;

void BM_Crc32c(benchmark::State& state) {
  std::vector<std::byte> buf(state.range(0));
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(buf));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PmemStoreLine(benchmark::State& state) {
  auto pm = pmem::PmemDevice::create_in_memory(16 << 20);
  LineData d;
  std::uint64_t i = 0;
  for (auto _ : state) {
    pm->store_line(LineIndex{i++ & 0xffff}, d);
  }
}
BENCHMARK(BM_PmemStoreLine);

void BM_PmemStoreFlushDrain(benchmark::State& state) {
  auto pm = pmem::PmemDevice::create_in_memory(16 << 20);
  LineData d;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const LineIndex line{i++ & 0xffff};
    pm->store_line(line, d);
    pm->flush_line(line);
    pm->drain();
  }
}
BENCHMARK(BM_PmemStoreFlushDrain);

void BM_UndoLogAppend(benchmark::State& state) {
  auto pm = pmem::PmemDevice::create_in_memory(256 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 128 << 20).value();
  device::UndoLogger logger(pm.get(), pool.log_offset(), pool.log_size());
  LineData d;
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (!logger.log_line(1, LineIndex{i++}, d).ok()) {
      logger.reset_after_commit();
      i = 0;
    }
  }
  state.SetBytesProcessed(state.iterations() * kCacheLineSize);
}
BENCHMARK(BM_UndoLogAppend);

void BM_UndoLogAppendFlushEvery(benchmark::State& state) {
  auto pm = pmem::PmemDevice::create_in_memory(256 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 128 << 20).value();
  device::UndoLogger logger(pm.get(), pool.log_offset(), pool.log_size());
  LineData d;
  std::uint64_t i = 0;
  const std::uint64_t batch = state.range(0);
  for (auto _ : state) {
    if (!logger.log_line(1, LineIndex{i++}, d).ok()) {
      logger.reset_after_commit();
      i = 0;
    }
    if (i % batch == 0) logger.flush();
  }
}
BENCHMARK(BM_UndoLogAppendFlushEvery)->Arg(1)->Arg(16)->Arg(256);

void BM_HbmCacheInsertEvict(benchmark::State& state) {
  device::HbmConfig cfg;
  cfg.capacity_lines = 4096;
  cfg.ways = 8;
  device::HbmCache cache(cfg);
  LineData d;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.insert(LineIndex{i++}, d, false, 0, 0));
  }
}
BENCHMARK(BM_HbmCacheInsertEvict);

void BM_DeviceWriteIntentFirstTouch(benchmark::State& state) {
  auto pm = pmem::PmemDevice::create_in_memory(512 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 256 << 20).value();
  device::PaxDevice dev(&pool, device::DeviceConfig::defaults());
  const std::uint64_t first = pool.data_offset() / kCacheLineSize;
  std::uint64_t i = 0;
  const std::uint64_t span = (pool.data_size() / kCacheLineSize) - 1;
  for (auto _ : state) {
    if (!dev.write_intent(LineIndex{first + (i++ % span)}).is_ok()) {
      state.PauseTiming();
      (void)dev.persist(nullptr);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_DeviceWriteIntentFirstTouch);

void BM_HostCacheLoadHit(benchmark::State& state) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 4 << 20).value();
  device::PaxDevice dev(&pool, device::DeviceConfig::defaults());
  coherence::HostCacheSim host(&dev, coherence::HostCacheConfig{});
  host.load_u64(pool.data_offset());
  for (auto _ : state) {
    benchmark::DoNotOptimize(host.load_u64(pool.data_offset()));
  }
}
BENCHMARK(BM_HostCacheLoadHit);

void BM_HeapAllocFree(benchmark::State& state) {
  std::vector<std::byte>* backing =
      new std::vector<std::byte>(64 << 20);
  // PaxHeap needs page alignment; vectors aren't guaranteed: use aligned.
  void* mem = std::aligned_alloc(4096, 64 << 20);
  std::memset(mem, 0, 64 << 20);
  libpax::PaxHeap heap(static_cast<std::byte*>(mem), 64 << 20);
  const std::size_t size = state.range(0);
  for (auto _ : state) {
    void* p = heap.allocate(size);
    benchmark::DoNotOptimize(p);
    heap.deallocate(p);
  }
  std::free(mem);
  delete backing;
}
BENCHMARK(BM_HeapAllocFree)->Arg(16)->Arg(64)->Arg(1024);

void BM_RecoveryScan(benchmark::State& state) {
  // Recovery rate over a log with `range` undo records.
  const std::uint64_t records = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    auto pm = pmem::PmemDevice::create_in_memory(256 << 20);
    auto pool = pmem::PmemPool::create(pm.get(), 128 << 20).value();
    device::UndoLogger logger(pm.get(), pool.log_offset(), pool.log_size());
    LineData d;
    const std::uint64_t first = pool.data_offset() / kCacheLineSize;
    for (std::uint64_t i = 0; i < records; ++i) {
      (void)logger.log_line(1, LineIndex{first + i}, d);
    }
    logger.flush();
    state.ResumeTiming();

    auto report = device::recover_pool(pool);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_RecoveryScan)->Arg(1000)->Arg(100000);

void BM_EciAdapterVicd(benchmark::State& state) {
  auto pm = pmem::PmemDevice::create_in_memory(512 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 256 << 20).value();
  device::PaxDevice dev(&pool, device::DeviceConfig::defaults());
  coherence::EciAdapter adapter(&dev);
  const std::uint64_t first = pool.data_offset() / coherence::kEciBlockSize;
  coherence::EciBlockData data;
  std::uint64_t i = 0;
  const std::uint64_t span = pool.data_size() / coherence::kEciBlockSize - 1;
  for (auto _ : state) {
    const coherence::EciBlockIndex block{first + (i++ % span)};
    if (!adapter.handle({coherence::EciOp::kRldx, block, std::nullopt})
             .ok()) {
      state.PauseTiming();
      (void)dev.persist(nullptr);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        adapter.handle({coherence::EciOp::kVicd, block, data}));
  }
}
BENCHMARK(BM_EciAdapterVicd);

void BM_TraceReplayRate(benchmark::State& state) {
  // Build a synthetic 10k-message trace once; measure replay rate.
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 16 << 20).value();
  const std::uint64_t first = pool.data_offset() / kCacheLineSize;
  std::vector<coherence::CxlEvent> trace;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    trace.push_back({coherence::CxlOp::kRdOwn, LineIndex{first + i}, false});
    trace.push_back(
        {coherence::CxlOp::kDirtyEvict, LineIndex{first + i}, true});
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto pm2 = pmem::PmemDevice::create_in_memory(64 << 20);
    auto pool2 = pmem::PmemPool::create(pm2.get(), 16 << 20).value();
    device::PaxDevice dev(&pool2, device::DeviceConfig::defaults());
    state.ResumeTiming();
    benchmark::DoNotOptimize(coherence::replay_trace(trace, &dev));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_TraceReplayRate);

void BM_ShardedMapPut(benchmark::State& state) {
  auto rt = libpax::PaxRuntime::create_in_memory(256 << 20).value();
  auto map =
      libpax::ShardedMap<std::uint64_t, std::uint64_t>::open(*rt, 16).value();
  std::uint64_t i = 0;
  for (auto _ : state) {
    map.put(i % 100000, i);
    ++i;
    if (i % 65536 == 0) {
      state.PauseTiming();
      (void)map.persist();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ShardedMapPut);

void BM_PmdkTxPut(benchmark::State& state) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 8 << 20).value();
  baselines::pmdk::TxRuntime tx(&pool);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)tx.tx_begin();
    (void)tx.tx_snapshot(pool.data_offset() + (i % 1024) * 8, 8);
    const std::uint64_t v = i++;
    (void)tx.tx_store(pool.data_offset() + (i % 1024) * 8,
                      std::as_bytes(std::span(&v, 1)));
    (void)tx.tx_commit();
  }
}
BENCHMARK(BM_PmdkTxPut);

}  // namespace

BENCHMARK_MAIN();
