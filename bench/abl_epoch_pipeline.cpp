// Ablation — pipelined epochs + lock-free undo-append ring.
//
// PR "pipelined epochs": persist() used to block the mutator for the whole
// diff → sync_lines → undo-durable → seal → commit chain. With
// pipeline_depth > 0, persist_async() swaps the dirty set into an
// O(dirty-pages) snapshot, re-arms write protection, and returns; a
// background drain worker runs the chain while the mutator builds epoch
// N+1. log_ring_slots > 0 additionally moves the hot-path undo appends off
// the log mutex onto a pre-framed MPMC ring.
//
// The workload dirties kDirtyPages pages at 12.5% line density (8 of 64
// lines per page — the regime where line tracking pays and the drain has
// real work), then spends think time before the next epoch, like any
// closed-loop client. Mutation stall = wall time the mutator spends inside
// persist calls: the swap plus any back-pressure for pipelined mode, the
// full diff → sync → seal → commit chain for blocking mode. The think time
// is a sleep rather than compute so that on this single-core container the
// drain worker actually gets the CPU during it — the same overlap real
// application work gives it on a multi-core host. The final wait for
// still-queued drains is reported separately (tail_wait_us): it is a
// shutdown barrier, not a per-epoch mutation stall. Four configs cross
// {blocking, pipelined} x {log mutex, log ring}.
//
// Results land in BENCH_epoch_pipeline.json (cwd) for the driver;
// scripts/check_epoch_pipeline.py asserts the acceptance thresholds.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "pax/libpax/runtime.hpp"

namespace {

using namespace pax;
using namespace pax::libpax;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kPool = 64 << 20;
constexpr std::size_t kDirtyPages = 512;        // 2 MiB footprint per epoch
constexpr std::size_t kLinesPerDirtyPage = 8;   // 12.5% density
constexpr int kEpochs = 8;
constexpr auto kThinkTime = std::chrono::milliseconds(15);

struct Row {
  bool pipelined;
  bool ring;
  double stall_us_per_persist;
  double tail_wait_us;
  double queue_occupancy_mean;  // 0 for blocking rows
  std::uint64_t queue_occupancy_max;
  std::uint64_t log_append_acquisitions;
  std::uint64_t log_ring_appends;
  bool correct;
};

const char* mode_name(const Row& r) {
  if (r.pipelined) return r.ring ? "pipelined+ring" : "pipelined+mutex";
  return r.ring ? "blocking+ring" : "blocking+mutex";
}

void dirty_epoch(std::byte* base, int epoch_byte) {
  for (std::size_t p = 1; p <= kDirtyPages; ++p) {
    std::byte* page = base + p * kPageSize;
    for (std::size_t l = 0; l < kLinesPerPage; l += kLinesPerPage /
                                                   kLinesPerDirtyPage) {
      std::memset(page + l * kCacheLineSize, epoch_byte, kCacheLineSize);
    }
  }
}

Row run(bool pipelined, bool ring) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);

  RuntimeOptions opts;
  opts.log_size = 8 << 20;
  opts.device.stripes = 16;
  opts.device.persist_workers = 4;
  opts.sync_batch_lines = 256;
  opts.track_lines = true;
  opts.pipeline_depth = pipelined ? 2 : 0;
  opts.log_ring_slots = ring ? 512 : 0;

  double stall_us = 0, tail_us = 0;
  int last_epoch_byte = 0;
  Epoch last_sealed = 0;
  PipelineStats ps{};
  std::uint64_t log_acq = 0, ring_appends = 0;
  {
    auto rt = PaxRuntime::attach(pm.get(), opts).value();
    if (!rt->persist().ok()) std::abort();  // settle heap-format writes

    // Warm-up epoch: seeds the per-line digests of the workload pages so
    // the measured epochs run the 8-line tracked diff, not a full rebuild.
    dirty_epoch(rt->vpm_base(), 0x2f);
    if (!rt->persist().ok()) std::abort();

    const auto dev_base = rt->device().stats();
    const PipelineStats ps_base = rt->pipeline_stats();

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      last_epoch_byte = 0x40 + epoch;
      dirty_epoch(rt->vpm_base(), last_epoch_byte);
      const auto t0 = Clock::now();
      if (pipelined) {
        auto sealed = rt->persist_async();
        if (!sealed.ok()) std::abort();
        last_sealed = sealed.value();
      } else {
        auto committed = rt->persist();
        if (!committed.ok()) std::abort();
        last_sealed = committed.value();
      }
      stall_us += std::chrono::duration<double, std::micro>(Clock::now() -
                                                            t0)
                      .count();
      std::this_thread::sleep_for(kThinkTime);  // app work; drain overlaps
    }
    // Tail: the shutdown barrier for drains still in flight.
    const auto t0 = Clock::now();
    while (rt->committed_epoch() < last_sealed) {
      if (!rt->complete_persist().ok()) std::abort();
    }
    tail_us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();

    const auto ds = rt->device().stats();
    const PipelineStats p = rt->pipeline_stats();
    log_acq = ds.log_append_acquisitions - dev_base.log_append_acquisitions;
    ring_appends = ds.log_ring_appends - dev_base.log_ring_appends;
    ps.async_persists = p.async_persists - ps_base.async_persists;
    ps.queue_occupancy_sum =
        p.queue_occupancy_sum - ps_base.queue_occupancy_sum;
    ps.queue_occupancy_max = p.queue_occupancy_max;
  }  // teardown without a final persist: crash semantics

  // Crash and recover: the last committed epoch must come back intact.
  pm->crash(pmem::CrashConfig::drop_all());
  auto rt = PaxRuntime::attach(pm.get(), opts).value();
  bool correct = true;
  for (std::size_t p = 1; p <= kDirtyPages && correct; p += 37) {
    for (std::size_t l = 0; l < kLinesPerPage;
         l += kLinesPerPage / kLinesPerDirtyPage) {
      if (rt->vpm_base()[p * kPageSize + l * kCacheLineSize] !=
          static_cast<std::byte>(last_epoch_byte)) {
        correct = false;
        break;
      }
    }
  }

  Row r;
  r.pipelined = pipelined;
  r.ring = ring;
  r.stall_us_per_persist = stall_us / kEpochs;
  r.tail_wait_us = tail_us;
  r.queue_occupancy_mean =
      ps.async_persists == 0
          ? 0.0
          : static_cast<double>(ps.queue_occupancy_sum) /
                static_cast<double>(ps.async_persists);
  r.queue_occupancy_max = ps.queue_occupancy_max;
  r.log_append_acquisitions = log_acq;
  r.log_ring_appends = ring_appends;
  r.correct = correct;
  return r;
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("=== Pipelined epochs: mutation stall per persist ===\n");
  std::printf(
      "host cpus: %u, dirty pages/epoch: %zu at %zu/%zu lines (12.5%%)\n",
      cpus, kDirtyPages, kLinesPerDirtyPage, kLinesPerPage);
  std::printf("%16s %14s %10s %10s %9s %12s %12s %8s\n", "mode",
              "stall[us]", "tail[us]", "occ mean", "occ max", "log acq",
              "ring appends", "correct");

  std::vector<Row> rows;
  for (bool pipelined : {false, true}) {
    for (bool ring : {false, true}) {
      Row r = run(pipelined, ring);
      rows.push_back(r);
      std::printf("%16s %14.1f %10.1f %10.2f %9" PRIu64 " %12" PRIu64
                  " %12" PRIu64 " %8s\n",
                  mode_name(r), r.stall_us_per_persist, r.tail_wait_us,
                  r.queue_occupancy_mean, r.queue_occupancy_max,
                  r.log_append_acquisitions, r.log_ring_appends,
                  r.correct ? "yes" : "NO");
      std::fflush(stdout);
    }
  }

  // Headlines the acceptance criteria read off directly: the full PR
  // (pipelined + ring) against the pre-PR baseline (blocking + mutex).
  const Row& base = rows[0];      // blocking+mutex
  const Row& full = rows[3];      // pipelined+ring
  const double ratio = base.stall_us_per_persist > 0
                           ? full.stall_us_per_persist /
                                 base.stall_us_per_persist
                           : 1.0;
  std::printf("\nmutation stall: %.1f us (blocking+mutex) -> %.1f us "
              "(pipelined+ring), ratio %.3f\n",
              base.stall_us_per_persist, full.stall_us_per_persist, ratio);
  std::printf("log-mutex acquisitions on the ring path: %" PRIu64 "\n",
              full.log_append_acquisitions);

  std::FILE* out = std::fopen("BENCH_epoch_pipeline.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_epoch_pipeline.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"epoch_pipeline\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", cpus);
  std::fprintf(out, "  \"dirty_pages_per_epoch\": %zu,\n", kDirtyPages);
  std::fprintf(out, "  \"lines_per_dirty_page\": %zu,\n",
               kLinesPerDirtyPage);
  std::fprintf(out, "  \"epochs\": %d,\n", kEpochs);
  std::fprintf(out, "  \"stall_ratio_pipelined_ring_vs_blocking\": %.4f,\n",
               ratio);
  std::fprintf(out, "  \"ring_log_append_acquisitions\": %" PRIu64 ",\n",
               full.log_append_acquisitions);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"pipelined\": %s, \"ring\": %s, "
                 "\"stall_us_per_persist\": %.2f, "
                 "\"tail_wait_us\": %.2f, "
                 "\"queue_occupancy_mean\": %.3f, "
                 "\"queue_occupancy_max\": %" PRIu64 ", "
                 "\"log_append_acquisitions\": %" PRIu64 ", "
                 "\"log_ring_appends\": %" PRIu64 ", \"correct\": %s}%s\n",
                 mode_name(r), r.pipelined ? "true" : "false",
                 r.ring ? "true" : "false", r.stall_us_per_persist,
                 r.tail_wait_us,
                 r.queue_occupancy_mean, r.queue_occupancy_max,
                 r.log_append_acquisitions, r.log_ring_appends,
                 r.correct ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_epoch_pipeline.json\n");
  return 0;
}
