// Ablation — cost of systematic crash-point exploration.
//
// PR "crash exploration": CrashExplorer re-executes a deterministic
// workload once per crash point and audits one recovery per crash mode, so
// the total cost is (points x re-execution) + (points x modes x recovery +
// audit). This bench sweeps the sampling stride `every` over the libpax
// demo workload and reports wall time, crash points per second, and audited
// recoveries per second — the numbers that size how much exploration a CI
// budget buys (k=1 exhaustive vs sampled smoke).
//
// Results land in BENCH_crash_explore.json (cwd) for the driver.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "pax/check/crashpoint.hpp"
#include "pax/libpax/runtime.hpp"

namespace {

using namespace pax;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kDeviceBytes = 2 << 20;
constexpr std::size_t kPages = 2;
constexpr int kEpochs = 3;

Status demo_workload(pmem::PmemDevice& dev, check::CrashOracle& oracle) {
  libpax::RuntimeOptions opts;
  opts.log_size = 256 << 10;
  opts.track_lines = true;
  opts.vpm_base_hint = 0x7c00'0000'0000ULL;
  opts = libpax::RuntimeOptions::deterministic(opts);
  auto rt = libpax::PaxRuntime::attach(&dev, opts);
  if (!rt.ok()) return rt.status();
  auto& r = *rt.value();
  PAX_RETURN_IF_ERROR(oracle.note_commit(r.committed_epoch()));
  const std::size_t pages = std::min(kPages, r.vpm_size() / kPageSize);
  for (int e = 0; e < kEpochs; ++e) {
    for (std::size_t p = 0; p < pages; ++p) {
      std::byte* page = r.vpm_base() + p * kPageSize;
      for (std::size_t l = 0; l < kLinesPerPage; l += 2) {
        page[l * kCacheLineSize] = static_cast<std::byte>(e + p + 1);
      }
    }
    auto committed = r.persist();
    if (!committed.ok()) return committed.status();
    PAX_RETURN_IF_ERROR(oracle.note_commit(committed.value()));
  }
  return Status::ok();
}

struct Row {
  std::uint64_t every;
  std::uint64_t total_events;
  std::uint64_t crash_points;
  std::uint64_t executions;
  std::uint64_t recoveries;
  double wall_ms;
  double points_per_sec;
  double recoveries_per_sec;
};

}  // namespace

int main() {
  std::vector<Row> rows;
  for (const std::uint64_t every : {32ull, 8ull, 1ull}) {
    check::CrashExplorerOptions options;
    options.every = every;
    check::CrashExplorer explorer(kDeviceBytes, demo_workload, options);
    const auto t0 = Clock::now();
    auto result = explorer.explore();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (!result.ok()) {
      std::fprintf(stderr, "explore failed: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    const auto& r = result.value();
    if (!r.clean()) {
      std::fprintf(stderr, "unexpected findings:\n%s\n",
                   r.to_string().c_str());
      return 1;
    }
    Row row;
    row.every = every;
    row.total_events = r.total_events;
    row.crash_points = r.crash_points;
    row.executions = r.executions;
    row.recoveries = r.recoveries;
    row.wall_ms = ms;
    row.points_per_sec = r.crash_points / (ms / 1000.0);
    row.recoveries_per_sec = r.recoveries / (ms / 1000.0);
    rows.push_back(row);
    std::printf("every=%2" PRIu64 ": %5" PRIu64 " point(s), %5" PRIu64
                " recovery/ies in %8.1f ms (%.0f points/s)\n",
                every, row.crash_points, row.recoveries, ms,
                row.points_per_sec);
  }

  std::FILE* out = std::fopen("BENCH_crash_explore.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_crash_explore.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"crash_explore\",\n");
  std::fprintf(out, "  \"pages\": %zu,\n", kPages);
  std::fprintf(out, "  \"epochs\": %d,\n", kEpochs);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"every\": %" PRIu64 ", \"total_events\": %" PRIu64
                 ", \"crash_points\": %" PRIu64 ", \"executions\": %" PRIu64
                 ", \"recoveries\": %" PRIu64
                 ", \"wall_ms\": %.1f, \"points_per_sec\": %.1f, "
                 "\"recoveries_per_sec\": %.1f}%s\n",
                 r.every, r.total_events, r.crash_points, r.executions,
                 r.recoveries, r.wall_ms, r.points_per_sec,
                 r.recoveries_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_crash_explore.json\n");
  return 0;
}
