// Ablation 3 — device buffer capacity independence (§3.3, §1 "No Working
// Set Size Limits").
//
// The paper's argument against HTM-style buffering: a PAX epoch's write set
// is NOT limited by device buffer capacity, because any dirty line whose
// undo record is durable can be evicted to PM mid-epoch. This bench drives
// a fixed 16k-line per-epoch write set through PaxDevice configured with
// buffers from 256 lines (64× smaller than the write set) up to 32k lines,
// and shows (a) correctness holds everywhere and (b) what the squeeze costs:
// stall evictions (log-flush-blocked) and early write-backs.
#include <cinttypes>
#include <cstdio>

#include "pax/device/pax_device.hpp"
#include "pax/pmem/pool.hpp"

namespace {

using namespace pax;

constexpr std::uint64_t kWriteSetLines = 16384;

struct Row {
  std::size_t buffer_lines;
  std::uint64_t stall_evictions;
  std::uint64_t durable_evictions;
  std::uint64_t forced_log_flushes;
  std::uint64_t proactive_writebacks;
  bool correct;
};

LineData line_value(std::uint64_t i) {
  LineData d;
  for (std::size_t b = 0; b < kCacheLineSize; ++b) {
    d.bytes[b] = static_cast<std::byte>((i * 31 + b) & 0xff);
  }
  return d;
}

Row run(std::size_t buffer_lines) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 8 << 20).value();

  device::DeviceConfig cfg;
  cfg.hbm.capacity_lines = buffer_lines;
  cfg.hbm.ways = 8;
  device::PaxDevice dev(&pool, cfg);

  const std::uint64_t first = pool.data_offset() / kCacheLineSize;
  for (std::uint64_t i = 0; i < kWriteSetLines; ++i) {
    const LineIndex line{first + i};
    if (!dev.write_intent(line).is_ok()) std::abort();
    dev.writeback_line(line, line_value(i));
    if ((i & 0xff) == 0xff) dev.tick();  // background coordinator runs
  }
  if (!dev.persist(nullptr).ok()) std::abort();

  bool correct = true;
  for (std::uint64_t i = 0; i < kWriteSetLines; ++i) {
    if (!(pm->durable_line(LineIndex{first + i}) == line_value(i))) {
      correct = false;
      break;
    }
  }

  const auto& hbm = dev.hbm_stats();
  const auto stats = dev.stats();
  return Row{buffer_lines,          hbm.stall_evictions,
             hbm.durable_dirty_evictions, stats.forced_log_flushes,
             stats.proactive_writebacks,  correct};
}

}  // namespace

int main() {
  std::printf("=== Ablation 3: per-epoch write set vs device buffer size ===\n");
  std::printf("write set: %" PRIu64 " lines (1 MiB) per epoch\n\n",
              kWriteSetLines);
  std::printf("%12s %10s %12s %14s %12s %12s %9s\n", "buffer[lines]",
              "vs WS", "stall evict", "durable evict", "forced flush",
              "proactive wb", "correct");
  for (std::size_t lines : {256u, 1024u, 4096u, 16384u, 32768u}) {
    Row r = run(lines);
    std::printf("%12zu %9.2fx %12" PRIu64 " %14" PRIu64 " %12" PRIu64
                " %12" PRIu64 " %9s\n",
                r.buffer_lines, double(r.buffer_lines) / kWriteSetLines,
                r.stall_evictions, r.durable_evictions, r.forced_log_flushes,
                r.proactive_writebacks, r.correct ? "yes" : "NO");
  }
  std::printf(
      "\nreading: even a buffer 64x smaller than the epoch write set commits\n"
      "correctly — evictions fall back on durable undo records (§3.3),\n"
      "unlike HTM-style designs whose capacity aborts the paper cites "
      "[8,19].\n");
  return 0;
}
