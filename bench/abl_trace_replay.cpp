// Ablation 11 — trace-driven device design-space exploration.
//
// The standard methodology for sizing a device: record a workload's
// coherence trace once, then replay it against candidate device
// configurations. Here: a mixed read/write workload is captured from the
// host-cache simulator, then replayed across HBM buffer sizes × eviction
// policies × log-flush batching, reporting the device-side metrics that
// drive cost (stall evictions, forced log flushes, PM write traffic,
// HBM hit rate for reads).
#include <cinttypes>
#include <cstdio>

#include "pax/coherence/host_cache.hpp"
#include "pax/coherence/trace.hpp"
#include "pax/common/rng.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/pmem/pool.hpp"

namespace {

using namespace pax;

// Zipf-ish hot/cold mix over 32k lines: 80% of ops on 10% of lines.
void run_workload(pmem::PmemPool& pool, coherence::HostCacheSim& host,
                  Xoshiro256& rng) {
  constexpr std::uint64_t kLines = 32768;
  for (std::uint64_t i = 0; i < 200000; ++i) {
    std::uint64_t line = rng.next_bool(0.8)
                             ? rng.next_below(kLines / 10)
                             : rng.next_below(kLines);
    const PoolOffset at = pool.data_offset() + line * kCacheLineSize;
    if (rng.next_bool(0.5)) {
      if (!host.store_u64(at, rng.next()).is_ok()) std::abort();
    } else {
      (void)host.load_u64(at);
    }
  }
}

std::vector<coherence::CxlEvent> record_workload() {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 16 << 20).value();
  device::DeviceConfig dev_cfg;
  dev_cfg.hbm.capacity_lines = 65536;  // generous: recording must not hit
  device::PaxDevice dev(&pool, dev_cfg);  // the recorder's own log limits

  coherence::HostCacheConfig cfg;
  cfg.record_trace = true;
  cfg.l1 = {8 * 1024, 4};
  cfg.l2 = {32 * 1024, 4};
  cfg.llc = {256 * 1024, 8};  // small host cache: rich device traffic
  coherence::HostCacheSim host(&dev, cfg);

  Xoshiro256 rng(17);
  run_workload(pool, host, rng);
  return host.trace();
}

struct Row {
  std::size_t hbm_lines;
  bool prefer_durable;
  std::size_t flush_batch;
  double read_hbm_hit_rate;
  std::uint64_t stall_evictions;
  std::uint64_t forced_flushes;
  std::uint64_t pm_writebacks;
};

Row replay(const std::vector<coherence::CxlEvent>& trace,
           std::size_t hbm_lines, bool prefer_durable,
           std::size_t flush_batch) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 16 << 20).value();
  device::DeviceConfig cfg;
  cfg.hbm.capacity_lines = hbm_lines;
  cfg.hbm.ways = 8;
  cfg.hbm.prefer_durable_eviction = prefer_durable;
  cfg.log_flush_batch_bytes = flush_batch;
  device::PaxDevice dev(&pool, cfg);

  coherence::ReplayOptions opts;
  opts.persist_every = 50000;
  auto report = coherence::replay_trace(trace, &dev, opts);
  if (!report.ok()) std::abort();

  const auto ds = dev.stats();
  const auto& hs = dev.hbm_stats();
  return Row{hbm_lines,
             prefer_durable,
             flush_batch,
             ds.read_reqs == 0
                 ? 0.0
                 : double(ds.read_hbm_hits) / double(ds.read_reqs),
             hs.stall_evictions,
             ds.forced_log_flushes,
             ds.pm_writeback_lines};
}

}  // namespace

int main() {
  std::printf("=== Ablation 11: trace-driven device design sweep ===\n");
  auto trace = record_workload();
  const auto summary = coherence::summarize_trace(trace);
  std::printf("trace: %" PRIu64 " messages (%" PRIu64 " RdShared, %" PRIu64
              " RdOwn, %" PRIu64 " DirtyEvict) over %" PRIu64
              " distinct lines\n\n",
              summary.total, summary.rd_shared, summary.rd_own,
              summary.dirty_evicts, summary.distinct_lines);

  std::printf("%10s %10s %12s | %14s %12s %14s %12s\n", "HBM lines",
              "policy", "flush batch", "read hit rate", "stall evict",
              "forced flush", "PM wb lines");
  for (std::size_t hbm : {512u, 4096u, 32768u}) {
    for (bool durable : {true, false}) {
      const std::size_t batch = 16384;
      Row r = replay(trace, hbm, durable, batch);
      std::printf("%10zu %10s %12zu | %14.3f %12" PRIu64 " %14" PRIu64
                  " %12" PRIu64 "\n",
                  r.hbm_lines, r.prefer_durable ? "durable" : "LRU",
                  r.flush_batch, r.read_hbm_hit_rate, r.stall_evictions,
                  r.forced_flushes, r.pm_writebacks);
    }
  }
  std::printf(
      "\nreading: one recorded trace prices every candidate device — bigger\n"
      "HBM lifts the read hit rate (the paper's 'often from an on-device\n"
      "HBM cache' claim), and under pressure the durability-aware policy\n"
      "cuts stall evictions vs pure LRU.\n");
  return 0;
}
