// Ablation — PaxKV serving frontend: cross-shard epoch group commit vs
// per-shard independent commit, event-loop scaling, and DES calibration.
//
// PR "PaxKV": the serving layer batches durability. In independent mode
// every shard worker commits its own shard after each drained batch — at N
// shards a write burst costs up to N log-flush rounds. In group mode the
// commit coordinator accumulates dirty shards and issues ONE wave
// (persist_async per dirty shard, drains overlapped on each shard's epoch
// pipeline), so concurrent writes across all shards share a single
// log-flush round and durable acks release together.
//
// PR "data-plane scale-out" adds two more axes:
//   * loop scaling — the same group-commit config at 1 vs N SO_REUSEPORT
//     event loops, under both the epoll and (when the kernel supports it)
//     io_uring backends; every row carries "backend"/"loop_threads".
//   * calibration — pax::model::calibrate() fits the serving DES to the
//     closed-loop group row (2 conns, depth 16), predicts an *unseen*
//     closed-loop configuration (4 conns driven by the same 2 client
//     threads, depth 8), and the predicted-vs-measured p50/p95/p99 +
//     throughput land in a "calibration" object, gated by
//     scripts/check_paxkv.py. The open-loop row's prediction is reported
//     informationally (scheduled-send-time latency on an oversubscribed
//     runner is dominated by client scheduling noise).
//
// The harness runs a real KvServer on loopback (the production path, not a
// mock) and drives it with in-process pipelined clients. Closed-loop rows
// sweep {2, 4} shards x {independent, group}; an open-loop row at 4 shards
// paces requests at half the measured closed-loop group throughput and
// measures from the scheduled send time (queueing delay included). The
// headline metric is log flushes per acknowledged write op, read from the
// shard devices' UndoLoggerStats — plus p50/p95/p99/p999 latency.
//
// Results land in BENCH_paxkv.json (cwd); scripts/check_paxkv.py asserts
// the acceptance thresholds (group < independent flushes/op at >= 2
// shards, N-loop throughput within tolerance of 1-loop, calibration error
// in band, sane percentiles).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "pax/kv/client.hpp"
#include "pax/kv/histogram.hpp"
#include "pax/kv/server.hpp"
#include "pax/model/calibrate.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pax::kv::KvClient;
using pax::kv::KvServer;
using pax::kv::KvServerOptions;
using pax::kv::LatencyHistogram;
using pax::kv::RespStatus;

constexpr std::size_t kClients = 2;
constexpr std::size_t kDepth = 16;
constexpr std::uint64_t kOpsPerClient = 6000;
constexpr std::uint64_t kKeys = 2000;
constexpr std::size_t kValueBytes = 128;
constexpr double kGetFrac = 0.3;  // write-heavy: the group-commit regime
constexpr double kWaveIntervalUs = 200.0;  // KvServerOptions default

const char* backend_label(KvServerOptions::Backend b) {
  return b == KvServerOptions::Backend::kIoUring ? "io_uring" : "epoll";
}

struct Row {
  std::string mode;
  std::string loop;
  std::string backend;
  std::size_t loop_threads = 1;
  std::size_t shards = 0;
  std::uint64_t ops = 0;
  double elapsed_s = 0;
  double throughput = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t read_floor_ns = 0;
  std::uint64_t log_flushes = 0;
  std::uint64_t acked_writes = 0;
  double flushes_per_op = 0;
  std::uint64_t waves = 0;
  std::size_t clients = kClients;
  std::size_t depth = kDepth;

  // The serving-DES view of this run, for pax::model::calibrate().
  pax::model::ServingMeasurement measurement(double open_rate) const {
    pax::model::ServingMeasurement m;
    m.workload.connections = clients;
    m.workload.depth = depth;
    m.workload.write_frac = 1.0 - kGetFrac;
    m.workload.open_rate_ops_s = open_rate;
    m.workload.duration_s = elapsed_s;
    m.throughput_ops_s = throughput;
    m.p50_us = p50_ns / 1e3;
    m.p95_us = p95_ns / 1e3;
    m.p99_us = p99_ns / 1e3;
    m.read_floor_us = read_floor_ns / 1e3;
    return m;
  }
};

// Returns true when the op was a GET (reads feed the calibration floor).
bool send_one(KvClient& c, std::mt19937_64& rng, const std::string& value) {
  std::uniform_int_distribution<std::uint64_t> key_dist(0, kKeys - 1);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  char key[24];
  std::snprintf(key, sizeof(key), "key-%06" PRIu64, key_dist(rng));
  if (frac(rng) < kGetFrac) {
    c.send_get(key);
    return true;
  }
  c.send_put(key, value);
  return false;
}

struct ClientResult {
  LatencyHistogram hist;
  std::uint64_t read_floor_ns = 0;

  void record(std::uint64_t ns, bool read) {
    hist.record(ns);
    if (read && (read_floor_ns == 0 || ns < read_floor_ns)) {
      read_floor_ns = ns;
    }
  }
};

struct Sent {
  Clock::time_point at;
  bool read;
};

// One thread drives `conns` pipelined connections (like paxkv-loadgen's
// --connections-per-thread), so the bench can vary the server-visible
// connection count without changing its own CPU footprint — essential for
// a fair calibration comparison on a small runner.
ClientResult closed_client(std::uint16_t port, std::uint64_t ops,
                           std::size_t depth, std::size_t conns,
                           std::uint64_t seed) {
  ClientResult result;
  struct Pipe {
    KvClient client;
    std::deque<Sent> pending;
    explicit Pipe(KvClient c) : client(std::move(c)) {}
  };
  std::vector<Pipe> pipes;
  pipes.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    auto client = KvClient::connect("127.0.0.1", port);
    if (!client.ok()) return result;
    pipes.emplace_back(std::move(client).value());
  }
  std::mt19937_64 rng(seed);
  const std::string value(kValueBytes, 'v');
  std::uint64_t sent = 0;
  std::uint64_t done = 0;
  while (done < ops) {
    for (Pipe& pipe : pipes) {
      while (sent < ops && pipe.pending.size() < depth) {
        const bool read = send_one(pipe.client, rng, value);
        pipe.pending.push_back({Clock::now(), read});
        ++sent;
      }
      if (!pipe.pending.empty() && !pipe.client.flush().is_ok()) {
        return result;
      }
    }
    for (Pipe& pipe : pipes) {
      if (pipe.pending.empty()) continue;
      auto resp = pipe.client.recv_response();
      if (!resp.ok()) return result;
      result.record(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - pipe.pending.front().at)
                  .count()),
          pipe.pending.front().read);
      pipe.pending.pop_front();
      ++done;
    }
  }
  return result;
}

ClientResult open_client(std::uint16_t port, double rate_per_client,
                         double duration_s, std::uint64_t seed) {
  ClientResult result;
  auto client = KvClient::connect("127.0.0.1", port);
  if (!client.ok()) return result;
  KvClient& c = client.value();
  std::mt19937_64 rng(seed);
  const std::string value(kValueBytes, 'v');
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(1e9 / rate_per_client));
  const auto start = Clock::now();
  const auto deadline =
      start +
      std::chrono::nanoseconds(static_cast<std::uint64_t>(duration_s * 1e9));
  std::deque<Sent> scheduled;
  auto next_send = start;
  for (;;) {
    if (Clock::now() >= deadline && scheduled.empty()) break;
    std::size_t burst = 0;
    while (next_send <= Clock::now() && next_send < deadline &&
           burst < 1024) {
      const bool read = send_one(c, rng, value);
      scheduled.push_back({next_send, read});
      next_send += interval;
      ++burst;
    }
    if (burst > 0 && !c.flush().is_ok()) break;
    if (scheduled.empty()) {
      std::this_thread::sleep_until(std::min(next_send, deadline));
      continue;
    }
    auto resp = c.recv_response();
    if (!resp.ok()) break;
    result.record(static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - scheduled.front().at)
                          .count()),
                  scheduled.front().read);
    scheduled.pop_front();
  }
  return result;
}

Row run_config(std::size_t shards, KvServerOptions::CommitMode mode,
               const char* mode_name, double open_rate,
               KvServerOptions::Backend backend =
                   KvServerOptions::Backend::kEpoll,
               std::size_t loop_threads = 1, std::size_t clients = kClients,
               std::size_t depth = kDepth,
               std::size_t conns_per_thread = 1) {
  KvServerOptions options;
  options.port = 0;
  options.commit_mode = mode;
  options.backend = backend;
  options.loop_threads = loop_threads;
  options.store.shards = shards;
  options.store.shard_pool_bytes = 16 << 20;
  auto server = KvServer::start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().to_string().c_str());
    std::exit(1);
  }
  const std::uint16_t port = server.value()->port();

  const bool open_loop = open_rate > 0;
  const auto start = Clock::now();
  std::vector<ClientResult> results(clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      threads.emplace_back([&results, i, port, open_loop, open_rate, clients,
                            depth, conns_per_thread] {
        results[i] =
            open_loop
                ? open_client(port, open_rate / clients, 2.0,
                              1000003 * (i + 1))
                : closed_client(port, kOpsPerClient * conns_per_thread,
                                depth, conns_per_thread, 1000003 * (i + 1));
      });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  LatencyHistogram hist;
  std::uint64_t read_floor_ns = 0;
  for (const auto& r : results) {
    hist.merge(r.hist);
    if (r.read_floor_ns != 0 &&
        (read_floor_ns == 0 || r.read_floor_ns < read_floor_ns)) {
      read_floor_ns = r.read_floor_ns;
    }
  }

  const auto gstats = server.value()->store().group().stats();
  Row row;
  row.mode = mode_name;
  row.loop = open_loop ? "open" : "closed";
  row.backend = backend_label(backend);
  row.loop_threads = loop_threads;
  row.shards = shards;
  row.ops = hist.count();
  row.elapsed_s = elapsed;
  row.throughput = elapsed > 0 ? static_cast<double>(hist.count()) / elapsed
                               : 0.0;
  row.p50_ns = hist.percentile(0.50);
  row.p95_ns = hist.percentile(0.95);
  row.p99_ns = hist.percentile(0.99);
  row.p999_ns = hist.percentile(0.999);
  row.read_floor_ns = read_floor_ns;
  row.log_flushes = server.value()->store().total_log_flushes();
  row.acked_writes = gstats.wave_ops + gstats.independent_ops;
  row.flushes_per_op =
      row.acked_writes > 0 ? static_cast<double>(row.log_flushes) /
                                 static_cast<double>(row.acked_writes)
                           : 0.0;
  row.waves = gstats.waves;
  row.clients = clients * conns_per_thread;  // server-visible connections
  row.depth = depth;
  server.value()->stop();

  std::printf(
      "%-12s %-6s %-8s loops=%zu shards=%zu ops=%" PRIu64
      " thru=%.0f/s p50=%.0fus p99=%.0fus flushes/op=%.4f waves=%" PRIu64
      "\n",
      row.mode.c_str(), row.loop.c_str(), row.backend.c_str(),
      row.loop_threads, row.shards, row.ops, row.throughput,
      row.p50_ns / 1e3, row.p99_ns / 1e3, row.flushes_per_op, row.waves);
  return row;
}

void emit_row(std::FILE* out, const Row& r, bool last) {
  std::fprintf(
      out,
      "    {\"mode\": \"%s\", \"loop\": \"%s\", \"backend\": \"%s\", "
      "\"loop_threads\": %zu, \"shards\": %zu, "
      "\"ops\": %" PRIu64 ", \"elapsed_s\": %.4f, "
      "\"throughput_ops_s\": %.1f, \"p50_ns\": %" PRIu64
      ", \"p95_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
      ", \"p999_ns\": %" PRIu64 ", \"read_floor_ns\": %" PRIu64
      ", \"log_flushes\": %" PRIu64 ", \"acked_write_ops\": %" PRIu64
      ", \"flushes_per_op\": %.6f, \"waves\": %" PRIu64 "}%s\n",
      r.mode.c_str(), r.loop.c_str(), r.backend.c_str(), r.loop_threads,
      r.shards, r.ops, r.elapsed_s, r.throughput, r.p50_ns, r.p95_ns,
      r.p99_ns, r.p999_ns, r.read_floor_ns, r.log_flushes, r.acked_writes,
      r.flushes_per_op, r.waves, last ? "" : ",");
}

}  // namespace

int main() {
  std::vector<Row> rows;

  double group4_throughput = 0;
  Row fit_row;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    rows.push_back(run_config(
        shards, KvServerOptions::CommitMode::kIndependent, "independent",
        0));
    rows.push_back(run_config(shards, KvServerOptions::CommitMode::kGroup,
                              "group", 0));
    if (shards == 4) {
      fit_row = rows.back();
      group4_throughput = fit_row.throughput;
    }
  }
  // Open-loop row: pace at half the measured closed-loop group throughput
  // so the server is loaded but not saturated — tail latency is then the
  // commit cadence, not a queueing explosion.
  rows.push_back(run_config(4, KvServerOptions::CommitMode::kGroup, "group",
                            group4_throughput / 2));
  const Row open_row = rows.back();
  const double open_rate = group4_throughput / 2;

  // Loop scaling: the same group config at 1 vs 2 event loops, per
  // available backend. (On a single-core runner 2 loops mostly measures
  // that the multi-loop plumbing costs nothing; the guard uses a
  // tolerance, not a strict >=.)
  std::vector<KvServerOptions::Backend> backends = {
      KvServerOptions::Backend::kEpoll};
  if (KvServer::io_uring_supported()) {
    backends.push_back(KvServerOptions::Backend::kIoUring);
  } else {
    std::printf("io_uring unsupported here: epoll-only loop scaling\n");
  }
  for (const auto backend : backends) {
    for (const std::size_t loops : {std::size_t{1}, std::size_t{2}}) {
      rows.push_back(run_config(2, KvServerOptions::CommitMode::kGroup,
                                "group", 0, backend, loops));
    }
  }

  // Calibration: fit the serving DES to the closed-loop 4-shard group row
  // (2 connections, depth 16), then predict an *unseen* closed-loop
  // configuration — 4 connections (2 threads x 2 conns each) at depth 8 —
  // plus, informationally, the open-loop row. The unseen run keeps the SAME
  // number of client threads as the fit run so client-side CPU contention
  // on a small runner stays comparable; only the server-visible shape
  // (connections, pipeline depth) changes, which is exactly what the DES
  // models. The closed prediction is the gated one: open-loop latency
  // measured from scheduled send time on an oversubscribed runner is
  // dominated by client scheduling noise the server model cannot (and
  // should not) absorb.
  const pax::model::ServingMeasurement fit_m = fit_row.measurement(0);
  const pax::model::ServingParams fitted =
      pax::model::calibrate(fit_m, /*loops=*/1, kWaveIntervalUs);

  const Row unseen_row =
      run_config(4, KvServerOptions::CommitMode::kGroup, "group", 0,
                 KvServerOptions::Backend::kEpoll, 1, /*clients=*/2,
                 /*depth=*/8, /*conns_per_thread=*/2);
  const pax::model::ServingMeasurement unseen_m = unseen_row.measurement(0);
  const pax::model::ServingPrediction pred =
      pax::model::simulate_serving(fitted, unseen_m.workload);

  const pax::model::ServingMeasurement open_m =
      open_row.measurement(open_rate);
  const pax::model::ServingPrediction open_pred =
      pax::model::simulate_serving(fitted, open_m.workload);
  std::printf(
      "calibration: service_us=%.2f base_rtt_us=%.2f | unseen closed "
      "tput %.0f vs %.0f (err %.1f%%), p50 %.0fus vs %.0fus (err %.1f%%), "
      "p99 %.0fus vs %.0fus (err %.1f%%)\n",
      fitted.service_us, fitted.base_rtt_us, pred.throughput_ops_s,
      unseen_m.throughput_ops_s,
      100 * pax::model::relative_error(pred.throughput_ops_s,
                                       unseen_m.throughput_ops_s),
      pred.p50_us, unseen_m.p50_us,
      100 * pax::model::relative_error(pred.p50_us, unseen_m.p50_us),
      pred.p99_us, unseen_m.p99_us,
      100 * pax::model::relative_error(pred.p99_us, unseen_m.p99_us));

  std::FILE* out = std::fopen("BENCH_paxkv.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_paxkv.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"paxkv\",\n");
  std::fprintf(out, "  \"clients\": %zu,\n  \"depth\": %zu,\n", kClients,
               kDepth);
  std::fprintf(out, "  \"value_bytes\": %zu,\n  \"get_frac\": %.2f,\n",
               kValueBytes, kGetFrac);
  std::fprintf(out, "  \"io_uring_supported\": %s,\n",
               KvServer::io_uring_supported() ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    emit_row(out, rows[i], i + 1 == rows.size());
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(
      out,
      "  \"calibration\": {\n"
      "    \"fit\": {\"mode\": \"closed\", \"shards\": %zu, "
      "\"connections\": %zu, \"depth\": %zu, \"write_frac\": %.2f, "
      "\"throughput_ops_s\": %.1f, \"p50_us\": %.2f, \"p95_us\": %.2f, "
      "\"p99_us\": %.2f, \"read_floor_us\": %.2f},\n"
      "    \"fitted\": {\"loops\": %zu, \"service_us\": %.3f, "
      "\"base_rtt_us\": %.3f, \"wave_interval_us\": %.1f},\n"
      "    \"unseen\": {\"mode\": \"closed\", \"connections\": %zu, "
      "\"depth\": %zu},\n"
      "    \"predicted\": {\"throughput_ops_s\": %.1f, \"p50_us\": %.2f, "
      "\"p95_us\": %.2f, \"p99_us\": %.2f},\n"
      "    \"measured\": {\"throughput_ops_s\": %.1f, \"p50_us\": %.2f, "
      "\"p95_us\": %.2f, \"p99_us\": %.2f},\n"
      "    \"error\": {\"throughput\": %.4f, \"p50\": %.4f, "
      "\"p95\": %.4f, \"p99\": %.4f},\n"
      "    \"open_loop_informational\": {\"offered_load_ops_s\": %.1f, "
      "\"predicted\": {\"throughput_ops_s\": %.1f, \"p50_us\": %.2f, "
      "\"p99_us\": %.2f}, \"measured\": {\"throughput_ops_s\": %.1f, "
      "\"p50_us\": %.2f, \"p99_us\": %.2f}}\n"
      "  }\n",
      fit_row.shards, fit_m.workload.connections, fit_m.workload.depth,
      fit_m.workload.write_frac, fit_m.throughput_ops_s, fit_m.p50_us,
      fit_m.p95_us, fit_m.p99_us, fit_m.read_floor_us, fitted.loops,
      fitted.service_us, fitted.base_rtt_us, fitted.wave_interval_us,
      unseen_m.workload.connections, unseen_m.workload.depth,
      pred.throughput_ops_s, pred.p50_us, pred.p95_us, pred.p99_us,
      unseen_m.throughput_ops_s, unseen_m.p50_us, unseen_m.p95_us,
      unseen_m.p99_us,
      pax::model::relative_error(pred.throughput_ops_s,
                                 unseen_m.throughput_ops_s),
      pax::model::relative_error(pred.p50_us, unseen_m.p50_us),
      pax::model::relative_error(pred.p95_us, unseen_m.p95_us),
      pax::model::relative_error(pred.p99_us, unseen_m.p99_us), open_rate,
      open_pred.throughput_ops_s, open_pred.p50_us, open_pred.p99_us,
      open_m.throughput_ops_s, open_m.p50_us, open_m.p99_us);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_paxkv.json\n");
  return 0;
}
