// Ablation — PaxKV serving frontend: cross-shard epoch group commit vs
// per-shard independent commit.
//
// PR "PaxKV": the serving layer batches durability. In independent mode
// every shard worker commits its own shard after each drained batch — at N
// shards a write burst costs up to N log-flush rounds. In group mode the
// commit coordinator accumulates dirty shards and issues ONE wave
// (persist_async per dirty shard, drains overlapped on each shard's epoch
// pipeline), so concurrent writes across all shards share a single
// log-flush round and durable acks release together.
//
// The harness runs a real KvServer on loopback (epoll event loop, shard
// workers, coordinator — the production path, not a mock) and drives it
// with in-process pipelined clients. Closed-loop rows sweep
// {2, 4} shards x {independent, group}; an open-loop row at 4 shards
// paces requests at half the measured closed-loop group throughput and
// measures from the scheduled send time (queueing delay included). The
// headline metric is log flushes per acknowledged write op, read from the
// shard devices' UndoLoggerStats — plus p50/p99/p999 latency.
//
// Results land in BENCH_paxkv.json (cwd); scripts/check_paxkv.py asserts
// the acceptance thresholds (group < independent flushes/op at >= 2
// shards, sane percentiles).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "pax/kv/client.hpp"
#include "pax/kv/histogram.hpp"
#include "pax/kv/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pax::kv::KvClient;
using pax::kv::KvServer;
using pax::kv::KvServerOptions;
using pax::kv::LatencyHistogram;
using pax::kv::RespStatus;

constexpr std::size_t kClients = 2;
constexpr std::size_t kDepth = 16;
constexpr std::uint64_t kOpsPerClient = 6000;
constexpr std::uint64_t kKeys = 2000;
constexpr std::size_t kValueBytes = 128;
constexpr double kGetFrac = 0.3;  // write-heavy: the group-commit regime

struct Row {
  std::string mode;
  std::string loop;
  std::size_t shards = 0;
  std::uint64_t ops = 0;
  double elapsed_s = 0;
  double throughput = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t log_flushes = 0;
  std::uint64_t acked_writes = 0;
  double flushes_per_op = 0;
  std::uint64_t waves = 0;
};

void send_one(KvClient& c, std::mt19937_64& rng, const std::string& value) {
  std::uniform_int_distribution<std::uint64_t> key_dist(0, kKeys - 1);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  char key[24];
  std::snprintf(key, sizeof(key), "key-%06" PRIu64, key_dist(rng));
  if (frac(rng) < kGetFrac) {
    c.send_get(key);
  } else {
    c.send_put(key, value);
  }
}

LatencyHistogram closed_client(std::uint16_t port, std::uint64_t ops,
                               std::uint64_t seed) {
  LatencyHistogram hist;
  auto client = KvClient::connect("127.0.0.1", port);
  if (!client.ok()) return hist;
  KvClient& c = client.value();
  std::mt19937_64 rng(seed);
  const std::string value(kValueBytes, 'v');
  std::deque<Clock::time_point> sent_at;
  std::uint64_t sent = 0;
  std::uint64_t done = 0;
  while (done < ops) {
    while (sent < ops && sent_at.size() < kDepth) {
      send_one(c, rng, value);
      sent_at.push_back(Clock::now());
      ++sent;
    }
    if (!c.flush().is_ok()) break;
    auto resp = c.recv_response();
    if (!resp.ok()) break;
    hist.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - sent_at.front())
            .count()));
    sent_at.pop_front();
    ++done;
  }
  return hist;
}

LatencyHistogram open_client(std::uint16_t port, double rate_per_client,
                             double duration_s, std::uint64_t seed) {
  LatencyHistogram hist;
  auto client = KvClient::connect("127.0.0.1", port);
  if (!client.ok()) return hist;
  KvClient& c = client.value();
  std::mt19937_64 rng(seed);
  const std::string value(kValueBytes, 'v');
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(1e9 / rate_per_client));
  const auto start = Clock::now();
  const auto deadline =
      start +
      std::chrono::nanoseconds(static_cast<std::uint64_t>(duration_s * 1e9));
  std::deque<Clock::time_point> scheduled;
  auto next_send = start;
  for (;;) {
    if (Clock::now() >= deadline && scheduled.empty()) break;
    std::size_t burst = 0;
    while (next_send <= Clock::now() && next_send < deadline &&
           burst < 1024) {
      send_one(c, rng, value);
      scheduled.push_back(next_send);
      next_send += interval;
      ++burst;
    }
    if (burst > 0 && !c.flush().is_ok()) break;
    if (scheduled.empty()) {
      std::this_thread::sleep_until(std::min(next_send, deadline));
      continue;
    }
    auto resp = c.recv_response();
    if (!resp.ok()) break;
    hist.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - scheduled.front())
            .count()));
    scheduled.pop_front();
  }
  return hist;
}

Row run_config(std::size_t shards, KvServerOptions::CommitMode mode,
               const char* mode_name, double open_rate) {
  KvServerOptions options;
  options.port = 0;
  options.commit_mode = mode;
  options.store.shards = shards;
  options.store.shard_pool_bytes = 16 << 20;
  auto server = KvServer::start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().to_string().c_str());
    std::exit(1);
  }
  const std::uint16_t port = server.value()->port();

  const bool open_loop = open_rate > 0;
  const auto start = Clock::now();
  std::vector<LatencyHistogram> hists(kClients);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      threads.emplace_back([&hists, i, port, open_loop, open_rate] {
        hists[i] = open_loop
                       ? open_client(port, open_rate / kClients, 2.0,
                                     1000003 * (i + 1))
                       : closed_client(port, kOpsPerClient,
                                       1000003 * (i + 1));
      });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  LatencyHistogram hist;
  for (const auto& h : hists) hist.merge(h);

  const auto gstats = server.value()->store().group().stats();
  Row row;
  row.mode = mode_name;
  row.loop = open_loop ? "open" : "closed";
  row.shards = shards;
  row.ops = hist.count();
  row.elapsed_s = elapsed;
  row.throughput = elapsed > 0 ? static_cast<double>(hist.count()) / elapsed
                               : 0.0;
  row.p50_ns = hist.percentile(0.50);
  row.p99_ns = hist.percentile(0.99);
  row.p999_ns = hist.percentile(0.999);
  row.log_flushes = server.value()->store().total_log_flushes();
  row.acked_writes = gstats.wave_ops + gstats.independent_ops;
  row.flushes_per_op =
      row.acked_writes > 0 ? static_cast<double>(row.log_flushes) /
                                 static_cast<double>(row.acked_writes)
                           : 0.0;
  row.waves = gstats.waves;
  server.value()->stop();

  std::printf(
      "%-12s %-6s shards=%zu ops=%" PRIu64 " thru=%.0f/s p50=%.0fus "
      "p99=%.0fus flushes/op=%.4f waves=%" PRIu64 "\n",
      row.mode.c_str(), row.loop.c_str(), row.shards, row.ops,
      row.throughput, row.p50_ns / 1e3, row.p99_ns / 1e3,
      row.flushes_per_op, row.waves);
  return row;
}

}  // namespace

int main() {
  std::vector<Row> rows;

  double group4_throughput = 0;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    rows.push_back(run_config(
        shards, KvServerOptions::CommitMode::kIndependent, "independent",
        0));
    rows.push_back(run_config(shards, KvServerOptions::CommitMode::kGroup,
                              "group", 0));
    if (shards == 4) group4_throughput = rows.back().throughput;
  }
  // Open-loop row: pace at half the measured closed-loop group throughput
  // so the server is loaded but not saturated — tail latency is then the
  // commit cadence, not a queueing explosion.
  rows.push_back(run_config(4, KvServerOptions::CommitMode::kGroup, "group",
                            group4_throughput / 2));

  std::FILE* out = std::fopen("BENCH_paxkv.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_paxkv.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"paxkv\",\n");
  std::fprintf(out, "  \"clients\": %zu,\n  \"depth\": %zu,\n", kClients,
               kDepth);
  std::fprintf(out, "  \"value_bytes\": %zu,\n  \"get_frac\": %.2f,\n",
               kValueBytes, kGetFrac);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"mode\": \"%s\", \"loop\": \"%s\", \"shards\": %zu, "
        "\"ops\": %" PRIu64 ", \"elapsed_s\": %.4f, "
        "\"throughput_ops_s\": %.1f, \"p50_ns\": %" PRIu64
        ", \"p99_ns\": %" PRIu64 ", \"p999_ns\": %" PRIu64
        ", \"log_flushes\": %" PRIu64 ", \"acked_write_ops\": %" PRIu64
        ", \"flushes_per_op\": %.6f, \"waves\": %" PRIu64 "}%s\n",
        r.mode.c_str(), r.loop.c_str(), r.shards, r.ops, r.elapsed_s,
        r.throughput, r.p50_ns, r.p99_ns, r.p999_ns, r.log_flushes,
        r.acked_writes, r.flushes_per_op, r.waves,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_paxkv.json\n");
  return 0;
}
