// Ablation 4 — sensitivity to accelerator interposition latency (§4, §5).
//
// The paper: "Enzian's CPU-to-FPGA coherence message latencies are higher
// than what are expected for a CXL-attached device; we explore the impact of
// accelerator latency on expected performance." This bench sweeps the
// interposition round trip from 0 (host-attached PM) through CXL (85 ns),
// Enzian (180 ns), up past the page-fault trap cost (1.5 µs), reporting the
// Fig 2a AMAT and the modelled 32-thread throughput at each point.
#include <cstdio>

#include "pax/coherence/host_cache.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/model/amat.hpp"
#include "pax/model/sim_hash_table.hpp"
#include "pax/model/throughput.hpp"
#include "pax/model/workload.hpp"
#include "pax/pmem/pool.hpp"

namespace {

using namespace pax;

// Measures the Fig 2a get() workload's cache stats once; the sweep then
// reuses them (the workload doesn't change with device latency).
coherence::HostCacheStats measure_get_stats() {
  auto pm = pmem::PmemDevice::create_in_memory(96ull << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 4 << 20).value();
  device::PaxDevice dev(&pool, device::DeviceConfig::defaults());
  coherence::HostCacheSim host(&dev, coherence::HostCacheConfig{});

  constexpr std::uint64_t kSlots = 1ull << 21;
  model::SimHashTable table(&host, pool.data_offset(), kSlots);
  model::KeyGenerator keys(model::KeyDist::kUniform, kSlots / 2, 0, 42);
  for (std::uint64_t i = 0; i < kSlots / 2; ++i) {
    if (!table.put(keys.next(), i).is_ok()) break;
    if ((i & 0x3fff) == 0x3fff) (void)dev.persist(host.pull_fn());
  }
  host.reset_stats();
  model::KeyGenerator get_keys(model::KeyDist::kUniform, kSlots / 2, 0, 43);
  for (std::uint64_t i = 0; i < 1'000'000; ++i) {
    (void)table.get(get_keys.next());
  }
  return host.stats();
}

}  // namespace

int main() {
  std::printf("=== Ablation 4: interposition latency sensitivity ===\n\n");
  const auto stats = measure_get_stats();
  const auto lat = simtime::MemoryLatency::c6420();

  std::printf("%16s %12s %14s %16s\n", "round trip [ns]", "AMAT [ns]",
              "AMAT vs PM", "model Mops@32");
  const double pm_amat =
      model::compute_amat(stats, lat, model::Media::kPm,
                          simtime::InterconnectLatency::none())
          .amat_ns;

  for (double rt_ns : {0.0, 40.0, 85.0, 180.0, 375.0, 750.0, 1500.0}) {
    const auto amat = model::compute_amat(
        stats, lat, model::Media::kPm, simtime::InterconnectLatency{rt_ns});

    // Throughput model: PAX with this interposition round trip.
    model::ModelParams params;
    params.pax_interposition_override_ns = rt_ns;
    const double mops =
        model::simulate_mops(model::SystemKind::kPaxCxl, 32, params);

    const char* tag = rt_ns == 85.0    ? "  <- CXL"
                      : rt_ns == 180.0 ? "  <- Enzian"
                      : rt_ns == 1500.0 ? "  <- page-fault trap"
                                        : "";
    std::printf("%16.0f %12.1f %13.2fx %16.1f%s\n", rt_ns, amat.amat_ns,
                amat.amat_ns / pm_amat, mops, tag);
  }
  std::printf(
      "\nreading: AMAT degrades linearly with interposition latency at the\n"
      "LLC-miss rate; a trap-based interposer (1.5 us) is ~an order of\n"
      "magnitude worse than CXL, the paper's case for coherence-based\n"
      "interposition (§1).\n");
  return 0;
}
