// Ablation 5 — device buffer eviction policy (§3.3).
//
// The paper: "the device buffer's eviction policy can try to minimize stalls
// by preferring to evict cache lines whose undo log entries are already
// durable." This bench compares that durability-aware policy against pure
// LRU on a buffer under pressure, with the asynchronous log flusher lagging
// behind (realistic batch flushing): the interesting metric is *stall
// evictions* — evictions forced to wait for a synchronous log flush.
#include <cinttypes>
#include <cstdio>

#include "pax/common/rng.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/pmem/pool.hpp"

namespace {

using namespace pax;

struct Row {
  const char* policy;
  std::size_t flush_batch;
  std::uint64_t stall_evictions;
  std::uint64_t durable_evictions;
  std::uint64_t clean_evictions;
  std::uint64_t forced_flushes;
};

const char* policy_name(bool prefer_durable, device::Replacement repl) {
  if (prefer_durable) {
    return repl == device::Replacement::kClock ? "durable+CLOCK"
                                               : "durable+LRU";
  }
  return repl == device::Replacement::kClock ? "pure CLOCK" : "pure LRU";
}

Row run(bool prefer_durable, device::Replacement repl,
        std::size_t flush_batch) {
  auto pm = pmem::PmemDevice::create_in_memory(64 << 20);
  auto pool = pmem::PmemPool::create(pm.get(), 16 << 20).value();

  device::DeviceConfig cfg;
  cfg.hbm.capacity_lines = 512;
  cfg.hbm.ways = 8;
  cfg.hbm.prefer_durable_eviction = prefer_durable;
  cfg.hbm.replacement = repl;
  cfg.log_flush_batch_bytes = flush_batch;
  // Isolate the eviction policy: lines leave the buffer only by eviction,
  // not by background write-back.
  cfg.proactive_writeback = false;
  device::PaxDevice dev(&pool, cfg);

  const std::uint64_t first = pool.data_offset() / kCacheLineSize;
  Xoshiro256 rng(5);
  constexpr std::uint64_t kOps = 60000;
  constexpr std::uint64_t kLineSpace = 8192;

  LineData d;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const LineIndex line{first + rng.next_below(kLineSpace)};
    if (!dev.write_intent(line).is_ok()) {
      if (!dev.persist(nullptr).ok()) std::abort();
      continue;
    }
    d.bytes[0] = static_cast<std::byte>(i);
    dev.writeback_line(line, d);
    if ((i & 0x3f) == 0x3f) dev.tick();  // flusher runs every 64 ops
  }
  (void)dev.persist(nullptr);

  const auto& hbm = dev.hbm_stats();
  return Row{policy_name(prefer_durable, repl),
             flush_batch,
             hbm.stall_evictions,
             hbm.durable_dirty_evictions,
             hbm.clean_evictions,
             dev.stats().forced_log_flushes};
}

}  // namespace

int main() {
  std::printf("=== Ablation 5: buffer eviction policy under pressure ===\n");
  std::printf(
      "512-line buffer, 8k-line working set, 60k writes, flusher every 64 "
      "ops\n\n");
  std::printf("%16s %12s %12s %14s %12s %14s\n", "policy", "flush batch",
              "stall evict", "durable evict", "clean evict", "forced flush");
  for (std::size_t batch : {4096u, 65536u, 1u << 20}) {
    for (auto repl : {device::Replacement::kLru, device::Replacement::kClock}) {
      for (bool durable : {true, false}) {
        Row r = run(durable, repl, batch);
        std::printf("%16s %12zu %12" PRIu64 " %14" PRIu64 " %12" PRIu64
                    " %14" PRIu64 "\n",
                    r.policy, r.flush_batch, r.stall_evictions,
                    r.durable_evictions, r.clean_evictions, r.forced_flushes);
      }
    }
  }
  std::printf(
      "\nreading: with a lazy flusher (large batches), pure LRU keeps "
      "evicting\nlines whose undo records are still volatile, forcing "
      "synchronous log\nflushes; the paper's durability-aware policy (§3.3) "
      "avoids most of them.\n");
  return 0;
}
