// Ablation — PaxCheck runtime overhead.
//
// PaxCheck is opt-in instrumentation: every PM store/flush/drain, undo-log
// append/flush, write-back, lock acquisition, and sync push emits one event
// into a per-thread ring, and the engine replays them at ordering points.
// That must stay cheap enough to leave on in every stress test, so this
// bench runs the abl_host_sync dirty-page persist workload twice per
// configuration — checker detached vs attached — and reports the wall-time
// ratio. Acceptance: overhead_ratio <= 2.0 on the batched configuration,
// and the checker stays silent throughout.
//
// Results land in BENCH_paxcheck.json (cwd) for the driver.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "pax/check/checker.hpp"
#include "pax/libpax/runtime.hpp"

namespace {

using namespace pax;
using namespace pax::libpax;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kPool = 64 << 20;
constexpr std::size_t kDirtyPages = 512;  // 2 MiB rewritten per epoch
constexpr int kEpochs = 4;

struct Row {
  const char* config;
  unsigned workers;
  std::size_t batch;
  double persist_ms_off;
  double persist_ms_on;
  double overhead_ratio;
  std::uint64_t events;
  std::uint64_t violations;
};

// One timed pass of the dirty-page persist workload; `checker` may be null
// (the baseline). Returns mean persist wall ms per epoch.
double run_pass(unsigned workers, std::size_t batch, bool track,
                check::Checker* checker) {
  auto pm = pmem::PmemDevice::create_in_memory(kPool);
  if (checker != nullptr) pm->set_checker(checker);

  RuntimeOptions opts;
  opts.log_size = 8 << 20;
  opts.device.stripes = 16;
  opts.device.persist_workers = 4;
  opts.sync_batch_lines = batch;
  opts.diff_workers = workers;
  opts.diff_fanout_min_pages = 1;
  opts.track_lines = track;

  double persist_ms = 0;
  {
    auto rt = PaxRuntime::attach(pm.get(), opts).value();
    if (!rt->persist().ok()) std::abort();  // settle heap-format writes
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (std::size_t p = 1; p <= kDirtyPages; ++p) {
        std::memset(rt->vpm_base() + p * kPageSize, 0x30 + epoch, kPageSize);
      }
      const auto t0 = Clock::now();
      if (!rt->persist().ok()) std::abort();
      persist_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
    }
  }
  if (checker != nullptr) pm->set_checker(nullptr);
  return persist_ms / kEpochs;
}

constexpr int kRepeats = 3;

Row run(const char* config, unsigned workers, std::size_t batch, bool track) {
  // Alternate off/on passes and keep the per-mode minimum: scheduler noise
  // on a shared host only ever inflates a pass, so min-of-N is the honest
  // estimate of each mode's cost.
  double off_ms = 0, on_ms = 0;
  std::uint64_t events = 0, violations = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const double off = run_pass(workers, batch, track, nullptr);
    check::Checker checker;
    const double on = run_pass(workers, batch, track, &checker);
    auto report = checker.report();
    events = report.diagnostics.events;
    violations += report.violations.size();
    off_ms = rep == 0 ? off : std::min(off_ms, off);
    on_ms = rep == 0 ? on : std::min(on_ms, on);
  }
  return Row{config,
             workers,
             batch,
             off_ms,
             on_ms,
             off_ms > 0 ? on_ms / off_ms : 0.0,
             events,
             violations};
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("=== PaxCheck overhead: persist() with checker off vs on ===\n");
  std::printf("host cpus: %u, dirty pages/epoch: %zu (%zu lines)\n", cpus,
              kDirtyPages, kDirtyPages * kLinesPerPage);
  std::printf("%10s %8s %6s %12s %11s %9s %10s %6s\n", "config", "workers",
              "batch", "off[ms]", "on[ms]", "ratio", "events", "viol");

  std::vector<Row> rows;
  rows.push_back(run("legacy", 1, 1, false));
  rows.push_back(run("batched", 4, 256, false));
  rows.push_back(run("tracked", 4, 256, true));
  for (const Row& r : rows) {
    std::printf("%10s %8u %6zu %12.3f %11.3f %8.2fx %10" PRIu64 " %6" PRIu64
                "\n",
                r.config, r.workers, r.batch, r.persist_ms_off,
                r.persist_ms_on, r.overhead_ratio, r.events, r.violations);
    std::fflush(stdout);
  }

  // The acceptance headline: overhead on the batched configuration (the
  // default-shaped production path).
  double headline = 0;
  std::uint64_t total_violations = 0;
  for (const Row& r : rows) {
    if (std::strcmp(r.config, "batched") == 0) headline = r.overhead_ratio;
    total_violations += r.violations;
  }
  std::printf("\nchecker-on overhead (batched config): %.2fx, violations: %"
              PRIu64 "\n",
              headline, total_violations);

  std::FILE* out = std::fopen("BENCH_paxcheck.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_paxcheck.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"paxcheck\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", cpus);
  std::fprintf(out, "  \"dirty_pages_per_epoch\": %zu,\n", kDirtyPages);
  std::fprintf(out, "  \"epochs\": %d,\n", kEpochs);
  std::fprintf(out, "  \"overhead_ratio_batched\": %.3f,\n", headline);
  std::fprintf(out, "  \"violations\": %" PRIu64 ",\n", total_violations);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"config\": \"%s\", \"diff_workers\": %u, "
                 "\"sync_batch_lines\": %zu, \"persist_ms_off\": %.3f, "
                 "\"persist_ms_on\": %.3f, \"overhead_ratio\": %.3f, "
                 "\"events\": %" PRIu64 ", \"violations\": %" PRIu64 "}%s\n",
                 r.config, r.workers, r.batch, r.persist_ms_off,
                 r.persist_ms_on, r.overhead_ratio, r.events, r.violations,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_paxcheck.json\n");
  return 0;
}
