#include "pax/wal/wal.hpp"

#include <cstring>

#include "pax/common/check.hpp"
#include "pax/common/crc.hpp"

namespace pax::wal {
namespace {

// CRC over the epoch/type header fields and the payload; excludes the crc
// and payload_size fields themselves (size is validated by bounds + CRC of
// the covered region).
std::uint32_t record_crc(const RecordHeader& h,
                         std::span<const std::byte> payload) {
  std::uint32_t crc = crc32c(&h.epoch, sizeof(h.epoch));
  crc = crc32c(&h.type, sizeof(h.type), crc);
  crc = crc32c(payload.data(), payload.size(), crc);
  return mask_crc(crc);
}

}  // namespace

LogWriter::LogWriter(pmem::PmemDevice* device, PoolOffset extent_offset,
                     std::size_t extent_size)
    : device_(device),
      extent_offset_(extent_offset),
      extent_size_(extent_size) {
  PAX_CHECK(device != nullptr);
  PAX_CHECK(extent_offset % kCacheLineSize == 0);
}

Result<std::uint64_t> LogWriter::append(Epoch epoch, RecordType type,
                                        std::span<const std::byte> payload) {
  const std::size_t frame = record_frame_size(payload.size());
  if (appended_ + frame > extent_size_) {
    return out_of_space("undo log extent full");
  }

  RecordHeader h{};
  h.payload_size = static_cast<std::uint32_t>(payload.size());
  h.epoch = epoch;
  h.type = static_cast<std::uint16_t>(type);
  h.masked_crc = record_crc(h, payload);

  const PoolOffset at = extent_offset_ + appended_;
  device_->store(at, std::as_bytes(std::span(&h, 1)));
  device_->store(at + sizeof(RecordHeader), payload);
  // Zero the alignment padding so a future reader of a torn tail sees a
  // deterministic (invalid) frame rather than stale bytes.
  const std::size_t pad = frame - sizeof(RecordHeader) - payload.size();
  if (pad > 0) {
    const std::byte zeros[8] = {};
    device_->store(at + sizeof(RecordHeader) + payload.size(),
                   std::span(zeros, pad));
  }

  appended_ += frame;
  return appended_;
}

Result<std::uint64_t> LogWriter::append_batch(
    Epoch epoch, RecordType type, std::span<const std::byte> payloads,
    std::size_t payload_size, std::vector<std::uint64_t>* ends_out) {
  PAX_CHECK(payload_size > 0 && payloads.size() % payload_size == 0);
  const std::size_t count = payloads.size() / payload_size;
  if (count == 0) return appended_;
  const std::size_t frame = record_frame_size(payload_size);
  const std::size_t total = frame * count;
  if (appended_ + total > extent_size_) {
    return out_of_space("undo log extent full");
  }

  batch_scratch_.assign(total, std::byte{0});  // zeroed alignment padding
  if (ends_out != nullptr) ends_out->reserve(ends_out->size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::span<const std::byte> payload =
        payloads.subspan(i * payload_size, payload_size);
    RecordHeader h{};
    h.payload_size = static_cast<std::uint32_t>(payload_size);
    h.epoch = epoch;
    h.type = static_cast<std::uint16_t>(type);
    h.masked_crc = record_crc(h, payload);
    std::byte* frame_at = batch_scratch_.data() + i * frame;
    std::memcpy(frame_at, &h, sizeof(h));
    std::memcpy(frame_at + sizeof(RecordHeader), payload.data(),
                payload_size);
    if (ends_out != nullptr) {
      ends_out->push_back(appended_ + (i + 1) * frame);
    }
  }
  device_->store(extent_offset_ + appended_, batch_scratch_);
  appended_ += total;
  return appended_;
}

void LogWriter::flush() {
  if (durable_ >= appended_) {
    // Nothing staged; still a fence for callers relying on ordering.
    device_->drain();
    return;
  }
  device_->flush_range(extent_offset_ + durable_, appended_ - durable_);
  device_->drain();
  durable_ = appended_;
}

void LogWriter::reset() {
  appended_ = 0;
  durable_ = 0;
}

LogReader::LogReader(const pmem::PmemDevice* device, PoolOffset extent_offset,
                     std::size_t extent_size)
    : device_(device),
      extent_offset_(extent_offset),
      extent_size_(extent_size) {
  PAX_CHECK(device != nullptr);
}

std::optional<LogRecord> LogReader::next() {
  if (cursor_ + sizeof(RecordHeader) > extent_size_) return std::nullopt;

  RecordHeader h{};
  device_->load(extent_offset_ + cursor_,
                std::as_writable_bytes(std::span(&h, 1)));

  if (h.type == static_cast<std::uint16_t>(RecordType::kInvalid)) {
    return std::nullopt;
  }
  const std::size_t frame = record_frame_size(h.payload_size);
  if (cursor_ + frame > extent_size_) return std::nullopt;

  LogRecord rec;
  rec.payload.resize(h.payload_size);
  device_->load(extent_offset_ + cursor_ + sizeof(RecordHeader),
                std::span(rec.payload));

  if (h.masked_crc != record_crc(h, rec.payload)) return std::nullopt;

  rec.epoch = h.epoch;
  rec.type = static_cast<RecordType>(h.type);
  cursor_ += frame;
  rec.end_offset = cursor_;
  return rec;
}

std::vector<LogRecord> LogReader::read_all(const pmem::PmemDevice* device,
                                           PoolOffset extent_offset,
                                           std::size_t extent_size) {
  LogReader reader(device, extent_offset, extent_size);
  std::vector<LogRecord> records;
  while (auto rec = reader.next()) {
    records.push_back(std::move(*rec));
  }
  return records;
}

}  // namespace pax::wal
