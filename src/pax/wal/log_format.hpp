// On-media record framing for all write-ahead logs in the repository (the
// PAX device undo log, the PMDK-baseline transaction log, the page-WAL
// baseline log).
//
// Every record is framed with a masked CRC32C so recovery can tell a torn
// (partially persisted) record from a complete one and stop scanning there.
// Records carry the snapshot epoch that produced them; recovery applies only
// records tagged with epochs newer than the pool's committed epoch cell,
// which is what makes log-extent reuse across epochs safe (stale records
// from older epochs fail the epoch test, not the CRC test).
#pragma once

#include <cstdint>

#include "pax/common/types.hpp"

namespace pax::wal {

enum class RecordType : std::uint16_t {
  kInvalid = 0,
  kLineUndo = 1,   // payload: LineUndoPayload (old 64 B image of one line)
  kPageUndo = 2,   // payload: u64 page index + 4096 B old page image
  kTxBegin = 3,    // PMDK baseline: transaction open marker
  kTxCommit = 4,   // PMDK baseline: transaction commit marker
  kRangeUndo = 5,  // PMDK baseline: u64 offset + u32 len + old bytes
  kAllocMeta = 6,  // allocator metadata change
};

/// Fixed header preceding every record payload.
struct RecordHeader {
  std::uint32_t masked_crc;   // masked CRC32C over [epoch..payload end)
  std::uint32_t payload_size;
  std::uint64_t epoch;
  std::uint16_t type;         // RecordType
  std::uint16_t reserved0 = 0;
  std::uint32_t reserved1 = 0;
};
static_assert(sizeof(RecordHeader) == 24);

/// Payload of a kLineUndo record: the pre-image of one cache line.
struct LineUndoPayload {
  std::uint64_t line_index;
  LineData old_data;
};
static_assert(sizeof(LineUndoPayload) == 8 + kCacheLineSize);

/// Payload header of a kRangeUndo record (old bytes follow).
struct RangeUndoHeader {
  std::uint64_t pool_offset;
  std::uint32_t length;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(RangeUndoHeader) == 16);

/// Payload header of a kPageUndo record (4096 B old image follows).
struct PageUndoHeader {
  std::uint64_t page_index;
};

/// Records are padded to 8-byte boundaries so headers stay aligned.
constexpr std::size_t record_frame_size(std::size_t payload_size) {
  const std::size_t raw = sizeof(RecordHeader) + payload_size;
  return (raw + 7) & ~std::size_t{7};
}

}  // namespace pax::wal
