// Append-only write-ahead log over a PM extent, with explicit durability
// tracking.
//
// append() stages a record (it lands in the PM device's pending overlay, i.e.
// CPU caches); flush() makes everything appended so far durable and advances
// the durable offset. The gap between appended() and durable() is what the
// PAX device exploits for asynchronous logging: records accumulate cheaply
// and are flushed off the application's critical path, and write-back of a
// data line is gated on its undo record's end offset being ≤ durable().
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/pmem/pmem_device.hpp"
#include "pax/wal/log_format.hpp"

namespace pax::wal {

class LogWriter {
 public:
  /// Writes records into [extent_offset, extent_offset + extent_size) of
  /// `device`. The extent is not cleared; epoch tags make stale data safe.
  LogWriter(pmem::PmemDevice* device, PoolOffset extent_offset,
            std::size_t extent_size);

  /// Stages one record. Returns the record's *end offset* relative to the
  /// extent start — the durability watermark a consumer must wait for —
  /// or kOutOfSpace if the extent cannot hold it.
  Result<std::uint64_t> append(Epoch epoch, RecordType type,
                               std::span<const std::byte> payload);

  /// Group append: stages `payloads.size() / payload_size` equally-sized
  /// records of the same type in one framing pass. All frames (headers,
  /// payloads, padding) are built into one contiguous staging buffer and
  /// handed to the PM device as a single store, so the per-record framing
  /// and store overhead is amortized across the batch. All-or-nothing:
  /// returns kOutOfSpace (staging nothing) if the extent cannot hold the
  /// whole batch. Per-record end offsets are appended to `ends_out`; the
  /// returned value is the batch's final end offset (== appended()).
  Result<std::uint64_t> append_batch(Epoch epoch, RecordType type,
                                     std::span<const std::byte> payloads,
                                     std::size_t payload_size,
                                     std::vector<std::uint64_t>* ends_out);

  /// Makes all appended records durable (flush lines + drain).
  void flush();

  /// Bytes appended so far (relative to extent start).
  std::uint64_t appended() const { return appended_; }

  /// Bytes known durable (≤ appended()).
  std::uint64_t durable() const { return durable_; }

  /// Restarts the log from the extent start. Callers must first commit an
  /// epoch cell that makes every live record stale (see log_format.hpp).
  void reset();

  std::size_t extent_size() const { return extent_size_; }

 private:
  pmem::PmemDevice* device_;
  PoolOffset extent_offset_;
  std::size_t extent_size_;
  std::uint64_t appended_ = 0;
  std::uint64_t durable_ = 0;
  std::vector<std::byte> batch_scratch_;  // reused by append_batch
};

/// One decoded record.
struct LogRecord {
  Epoch epoch = 0;
  RecordType type = RecordType::kInvalid;
  std::vector<std::byte> payload;
  std::uint64_t end_offset = 0;  // relative to extent start
};

class LogReader {
 public:
  LogReader(const pmem::PmemDevice* device, PoolOffset extent_offset,
            std::size_t extent_size);

  /// Returns the next well-formed record, or nullopt at the first torn /
  /// invalid / out-of-bounds frame (which is where the durable log ends).
  std::optional<LogRecord> next();

  /// Reads every well-formed record from the extent start.
  static std::vector<LogRecord> read_all(const pmem::PmemDevice* device,
                                         PoolOffset extent_offset,
                                         std::size_t extent_size);

 private:
  const pmem::PmemDevice* device_;
  PoolOffset extent_offset_;
  std::size_t extent_size_;
  std::uint64_t cursor_ = 0;
};

}  // namespace pax::wal
