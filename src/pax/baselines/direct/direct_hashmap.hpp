// "PM Direct": a hash table placed in PM with no crash consistency at all —
// the upper-bound baseline in the paper's Figure 2b ("PM directly (not crash
// consistent)"). Stores go straight to the (simulated) PM with no logging,
// no snapshots, no fences; what survives a crash is whatever happened to be
// evicted, which is exactly why applications cannot use this mode and why
// PMDK/PAX exist.
//
// Open-addressing with linear probing over u64 key/value slots (key 0 is
// reserved as the empty marker).
#pragma once

#include <cstdint>
#include <optional>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::baselines::direct {

class DirectHashMap {
 public:
  /// Formats `nslots` slots (power of two) at the start of `pool`'s data
  /// extent.
  static Result<DirectHashMap> create(pmem::PmemPool* pool,
                                      std::uint64_t nslots);

  /// Inserts or updates; kOutOfSpace when the table is full. Keys must be
  /// nonzero.
  Status put(std::uint64_t key, std::uint64_t value);

  std::optional<std::uint64_t> get(std::uint64_t key) const;

  std::uint64_t size() const { return count_; }
  std::uint64_t nslots() const { return nslots_; }

 private:
  DirectHashMap(pmem::PmemPool* pool, std::uint64_t nslots)
      : pool_(pool), pm_(pool->device()), nslots_(nslots) {}

  PoolOffset slot_at(std::uint64_t s) const {
    return pool_->data_offset() + s * 16;
  }

  pmem::PmemPool* pool_;
  pmem::PmemDevice* pm_;
  std::uint64_t nslots_;
  std::uint64_t count_ = 0;  // volatile: this structure makes no durability promises
};

}  // namespace pax::baselines::direct
