#include "pax/baselines/direct/direct_hashmap.hpp"

#include <bit>

#include "pax/common/check.hpp"

namespace pax::baselines::direct {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Result<DirectHashMap> DirectHashMap::create(pmem::PmemPool* pool,
                                            std::uint64_t nslots) {
  PAX_CHECK(pool != nullptr);
  if (!std::has_single_bit(nslots)) {
    return invalid_argument("nslots must be a power of two");
  }
  if (pool->data_size() < nslots * 16) {
    return out_of_space("data extent too small for slot array");
  }
  DirectHashMap map(pool, nslots);
  // Zero the slot array (no fences — this structure never promises
  // durability).
  auto* pm = pool->device();
  const std::uint64_t zero[2] = {0, 0};
  for (std::uint64_t s = 0; s < nslots; ++s) {
    pm->store(map.slot_at(s), std::as_bytes(std::span(zero, 2)));
  }
  return map;
}

Status DirectHashMap::put(std::uint64_t key, std::uint64_t value) {
  if (key == 0) return invalid_argument("key 0 is reserved");
  const std::uint64_t mask = nslots_ - 1;
  for (std::uint64_t probe = 0; probe < nslots_; ++probe) {
    const std::uint64_t s = (mix(key) + probe) & mask;
    const std::uint64_t existing = pm_->load_u64(slot_at(s));
    if (existing == key) {
      pm_->store_u64(slot_at(s) + 8, value);
      return Status::ok();
    }
    if (existing == 0) {
      pm_->store_u64(slot_at(s), key);
      pm_->store_u64(slot_at(s) + 8, value);
      ++count_;
      return Status::ok();
    }
  }
  return out_of_space("table full");
}

std::optional<std::uint64_t> DirectHashMap::get(std::uint64_t key) const {
  const std::uint64_t mask = nslots_ - 1;
  for (std::uint64_t probe = 0; probe < nslots_; ++probe) {
    const std::uint64_t s = (mix(key) + probe) & mask;
    const std::uint64_t existing = pm_->load_u64(slot_at(s));
    if (existing == key) return pm_->load_u64(slot_at(s) + 8);
    if (existing == 0) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace pax::baselines::direct
