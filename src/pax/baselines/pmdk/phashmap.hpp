// Hand-crafted persistent hash map in the PMDK style: the "rewrite your
// data structure around the logging discipline" approach the paper contrasts
// with PAX's black-box reuse (§1, §2). Every mutation runs inside an undo-log
// transaction; every in-place modification of live bytes is preceded by a
// durable snapshot (flush + SFENCE) — giving this structure the multiple
// ordered stalls per operation that Figure 2b's PMDK curve pays for.
//
// Layout inside the pool's data extent (all links are absolute pool
// offsets; 0 means null):
//
//   MapHeader  { magic, nbuckets, count, bump, free_head }
//   buckets[]  u64 chain heads
//   nodes      { key, value, next } — bump-allocated, recycled via free list
//
// Keys and values are u64 (the paper's benchmark uses small 8 B keys and
// values, §5).
#pragma once

#include <cstdint>
#include <optional>

#include "pax/baselines/pmdk/tx.hpp"

namespace pax::baselines::pmdk {

struct PHashMapStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t node_recycles = 0;
};

class PHashMap {
 public:
  /// Formats a fresh map with `nbuckets` chains in `tx`'s pool data extent.
  static Result<PHashMap> create(TxRuntime* tx, std::uint64_t nbuckets);

  /// Opens an existing map (after TxRuntime recovery has run).
  static Result<PHashMap> open(TxRuntime* tx);

  /// Inserts or updates. Runs as one transaction.
  Status put(std::uint64_t key, std::uint64_t value);

  /// Plain reads; no transaction, no logging (§2: reads are not the
  /// problem).
  std::optional<std::uint64_t> get(std::uint64_t key) const;

  /// Removes `key`; the node is recycled through the free list. Returns
  /// kNotFound if absent.
  Status erase(std::uint64_t key);

  std::uint64_t size() const;
  std::uint64_t nbuckets() const { return nbuckets_; }
  const PHashMapStats& stats() const { return stats_; }

 private:
  struct Node {
    std::uint64_t key;
    std::uint64_t value;
    std::uint64_t next;
  };

  PHashMap(TxRuntime* tx, std::uint64_t nbuckets)
      : tx_(tx), pm_(tx->pool()->device()), nbuckets_(nbuckets) {}

  PoolOffset header_at() const { return tx_->pool()->data_offset(); }
  PoolOffset bucket_at(std::uint64_t b) const;
  std::uint64_t bucket_of(std::uint64_t key) const;

  Node load_node(PoolOffset off) const;

  /// Allocates node storage inside the active transaction (free list first,
  /// then bump). Returns 0 when the data extent is exhausted.
  Result<PoolOffset> alloc_node_in_tx();

  TxRuntime* tx_;
  pmem::PmemDevice* pm_;
  std::uint64_t nbuckets_;
  mutable PHashMapStats stats_;
};

}  // namespace pax::baselines::pmdk
