// PMDK-style undo-log transactions — the baseline the paper's Figure 2b
// compares against ("PMDK writes to an undo log before updating the table").
//
// The cost structure the paper attributes to this approach is reproduced
// exactly (§2): before each in-place modification the transaction *snapshots*
// the target range into a persistent undo log, and each snapshot must be
// durable (flush + SFENCE) before the corresponding store may proceed —
// "log the allocation of a new key and value, SFENCE, write the new key and
// value, SFENCE, log the update of an internal pointer, SFENCE, ...". The
// TxStats sfence counter is what the throughput model (Fig 2b) keys off.
//
// Commit protocol: flush all data stores, SFENCE, append a commit record,
// flush + SFENCE, then zero the log head (making any stale records
// unreachable). Recovery: if the log holds records without a trailing
// commit record, the transaction was interrupted — apply its range
// snapshots in reverse and zero the log.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/pmem/pool.hpp"
#include "pax/wal/wal.hpp"

namespace pax::baselines::pmdk {

struct TxStats {
  std::uint64_t txs_committed = 0;
  std::uint64_t txs_aborted = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t sfences = 0;
  std::uint64_t flushes = 0;
  std::uint64_t recovered_txs = 0;  // interrupted txs undone at startup
};

class TxRuntime {
 public:
  /// Uses `pool`'s log extent for the transaction log. Runs recovery
  /// immediately: an interrupted transaction is rolled back before the
  /// constructor returns.
  explicit TxRuntime(pmem::PmemPool* pool);

  /// Starts a transaction. Transactions are serialized (one at a time);
  /// callers model concurrency at a higher level.
  Status tx_begin();

  /// Undo-logs the current contents of [off, off+len) and makes the record
  /// durable before returning (flush + SFENCE): the caller may then modify
  /// the range in place.
  Status tx_snapshot(PoolOffset off, std::size_t len);

  /// In-place store inside the active transaction. The caller must have
  /// snapshotted any previously-live bytes it overwrites. Ranges are
  /// remembered and flushed at commit.
  Status tx_store(PoolOffset off, std::span<const std::byte> data);

  /// Durably applies the transaction.
  Status tx_commit();

  /// Rolls the active transaction back immediately (also what recovery does
  /// for an interrupted one).
  Status tx_abort();

  bool in_tx() const { return in_tx_; }
  const TxStats& stats() const { return stats_; }
  pmem::PmemPool* pool() const { return pool_; }

 private:
  Status recover();
  void zero_log_head();
  void apply_undo_records_reverse(const std::vector<wal::LogRecord>& records);

  pmem::PmemPool* pool_;
  pmem::PmemDevice* pm_;
  wal::LogWriter writer_;
  std::mutex mu_;
  bool in_tx_ = false;
  std::uint64_t tx_id_ = 0;
  std::vector<std::pair<PoolOffset, std::size_t>> dirty_ranges_;
  TxStats stats_;
};

}  // namespace pax::baselines::pmdk
