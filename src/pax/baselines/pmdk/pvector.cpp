#include "pax/baselines/pmdk/pvector.hpp"

#include <cstring>

#include "pax/common/check.hpp"

namespace pax::baselines::pmdk {
namespace {

constexpr std::uint64_t kVecMagic = 0x524f544345565850ULL;  // "PXVECTOR"

// Header field offsets relative to the data extent start.
constexpr PoolOffset kMagicOff = 0;
constexpr PoolOffset kSizeOff = 8;
constexpr PoolOffset kCapacityOff = 16;
constexpr PoolOffset kArrayOff = 24;   // absolute pool offset of the array
constexpr PoolOffset kBumpOff = 32;    // next free offset for growth
constexpr PoolOffset kHeaderSize = 64;

}  // namespace

PoolOffset PVector::cell_at(std::uint64_t index) const {
  return pm_->load_u64(header_at() + kArrayOff) + index * 8;
}

Result<PVector> PVector::create(TxRuntime* tx,
                                std::uint64_t initial_capacity) {
  PAX_CHECK(tx != nullptr);
  if (initial_capacity == 0) {
    return invalid_argument("capacity must be positive");
  }
  auto* pool = tx->pool();
  if (pool->data_size() < kHeaderSize + initial_capacity * 8) {
    return out_of_space("data extent too small");
  }

  PVector vec(tx);
  const PoolOffset base = vec.header_at();
  auto* pm = pool->device();

  pm->store_u64(base + kSizeOff, 0);
  pm->store_u64(base + kCapacityOff, initial_capacity);
  pm->store_u64(base + kArrayOff, base + kHeaderSize);
  pm->store_u64(base + kBumpOff, kHeaderSize + initial_capacity * 8);
  pm->flush_range(base, kHeaderSize);
  pm->drain();
  pm->atomic_durable_store_u64(base + kMagicOff, kVecMagic);
  return vec;
}

Result<PVector> PVector::open(TxRuntime* tx) {
  PAX_CHECK(tx != nullptr);
  auto* pm = tx->pool()->device();
  const PoolOffset base = tx->pool()->data_offset();
  if (pm->load_u64(base + kMagicOff) != kVecMagic) {
    return not_found("no PVector in pool");
  }
  return PVector(tx);
}

Status PVector::grow_in_tx() {
  const PoolOffset base = header_at();
  const std::uint64_t size = pm_->load_u64(base + kSizeOff);
  const std::uint64_t capacity = pm_->load_u64(base + kCapacityOff);
  const std::uint64_t old_array = pm_->load_u64(base + kArrayOff);
  const std::uint64_t bump = pm_->load_u64(base + kBumpOff);
  const std::uint64_t new_capacity = capacity * 2;

  if (bump + new_capacity * 8 > tx_->pool()->data_size()) {
    return out_of_space("vector growth exceeds data extent");
  }
  const PoolOffset new_array = base + bump;

  // Copy payload into fresh (never-live) memory: no undo records needed for
  // the copied bytes, exactly pmemobj's fresh-allocation rule.
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint64_t v = pm_->load_u64(old_array + i * 8);
    PAX_RETURN_IF_ERROR(
        tx_->tx_store(new_array + i * 8, std::as_bytes(std::span(&v, 1))));
  }

  // Flip the header fields under snapshots.
  PAX_RETURN_IF_ERROR(tx_->tx_snapshot(base + kArrayOff, 8));
  PAX_RETURN_IF_ERROR(
      tx_->tx_store(base + kArrayOff, std::as_bytes(std::span(&new_array, 1))));
  PAX_RETURN_IF_ERROR(tx_->tx_snapshot(base + kCapacityOff, 8));
  PAX_RETURN_IF_ERROR(tx_->tx_store(base + kCapacityOff,
                                    std::as_bytes(std::span(&new_capacity, 1))));
  PAX_RETURN_IF_ERROR(tx_->tx_snapshot(base + kBumpOff, 8));
  const std::uint64_t new_bump = bump + new_capacity * 8;
  PAX_RETURN_IF_ERROR(
      tx_->tx_store(base + kBumpOff, std::as_bytes(std::span(&new_bump, 1))));
  return Status::ok();
}

Status PVector::push_back(std::uint64_t value) {
  PAX_RETURN_IF_ERROR(tx_->tx_begin());
  auto run = [&]() -> Status {
    const PoolOffset base = header_at();
    const std::uint64_t size = pm_->load_u64(base + kSizeOff);
    if (size == pm_->load_u64(base + kCapacityOff)) {
      PAX_RETURN_IF_ERROR(grow_in_tx());
    }
    // The target cell is beyond `size`: not live, no snapshot required.
    PAX_RETURN_IF_ERROR(
        tx_->tx_store(cell_at(size), std::as_bytes(std::span(&value, 1))));
    PAX_RETURN_IF_ERROR(tx_->tx_snapshot(base + kSizeOff, 8));
    const std::uint64_t new_size = size + 1;
    PAX_RETURN_IF_ERROR(tx_->tx_store(base + kSizeOff,
                                      std::as_bytes(std::span(&new_size, 1))));
    return Status::ok();
  };
  Status s = run();
  if (!s.is_ok()) {
    (void)tx_->tx_abort();
    return s;
  }
  return tx_->tx_commit();
}

Status PVector::pop_back() {
  PAX_RETURN_IF_ERROR(tx_->tx_begin());
  auto run = [&]() -> Status {
    const PoolOffset base = header_at();
    const std::uint64_t size = pm_->load_u64(base + kSizeOff);
    if (size == 0) return failed_precondition("pop_back on empty vector");
    PAX_RETURN_IF_ERROR(tx_->tx_snapshot(base + kSizeOff, 8));
    const std::uint64_t new_size = size - 1;
    PAX_RETURN_IF_ERROR(tx_->tx_store(base + kSizeOff,
                                      std::as_bytes(std::span(&new_size, 1))));
    return Status::ok();
  };
  Status s = run();
  if (!s.is_ok()) {
    (void)tx_->tx_abort();
    return s;
  }
  return tx_->tx_commit();
}

Status PVector::set(std::uint64_t index, std::uint64_t value) {
  PAX_RETURN_IF_ERROR(tx_->tx_begin());
  auto run = [&]() -> Status {
    if (index >= pm_->load_u64(header_at() + kSizeOff)) {
      return invalid_argument("index out of range");
    }
    PAX_RETURN_IF_ERROR(tx_->tx_snapshot(cell_at(index), 8));
    PAX_RETURN_IF_ERROR(
        tx_->tx_store(cell_at(index), std::as_bytes(std::span(&value, 1))));
    return Status::ok();
  };
  Status s = run();
  if (!s.is_ok()) {
    (void)tx_->tx_abort();
    return s;
  }
  return tx_->tx_commit();
}

std::optional<std::uint64_t> PVector::get(std::uint64_t index) const {
  if (index >= size()) return std::nullopt;
  return pm_->load_u64(cell_at(index));
}

std::uint64_t PVector::size() const {
  return pm_->load_u64(header_at() + kSizeOff);
}

std::uint64_t PVector::capacity() const {
  return pm_->load_u64(header_at() + kCapacityOff);
}

}  // namespace pax::baselines::pmdk
