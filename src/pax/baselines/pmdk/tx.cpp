#include "pax/baselines/pmdk/tx.hpp"

#include <cstring>

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"

namespace pax::baselines::pmdk {

TxRuntime::TxRuntime(pmem::PmemPool* pool)
    : pool_(pool),
      pm_(pool->device()),
      writer_(pm_, pool->log_offset(), pool->log_size()) {
  Status s = recover();
  PAX_CHECK_MSG(s.is_ok(), "PMDK-baseline recovery failed");
}

Status TxRuntime::recover() {
  auto records =
      wal::LogReader::read_all(pm_, pool_->log_offset(), pool_->log_size());
  if (records.empty()) return Status::ok();

  if (records.back().type == wal::RecordType::kTxCommit) {
    // Crash landed after the commit record but before the log was zeroed:
    // the transaction is durable; just clean up.
    zero_log_head();
    return Status::ok();
  }
  // Interrupted transaction: undo in reverse order.
  apply_undo_records_reverse(records);
  ++stats_.recovered_txs;
  zero_log_head();
  return Status::ok();
}

void TxRuntime::apply_undo_records_reverse(
    const std::vector<wal::LogRecord>& records) {
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->type != wal::RecordType::kRangeUndo) continue;
    PAX_CHECK(it->payload.size() >= sizeof(wal::RangeUndoHeader));
    wal::RangeUndoHeader h{};
    std::memcpy(&h, it->payload.data(), sizeof(h));
    PAX_CHECK(it->payload.size() == sizeof(h) + h.length);
    pm_->store(h.pool_offset,
               {it->payload.data() + sizeof(h), h.length});
    pm_->flush_range(h.pool_offset, h.length);
  }
  pm_->drain();
  ++stats_.sfences;
}

void TxRuntime::zero_log_head() {
  // Zeroing the first frame makes every stale record unreachable to the
  // sequential scan (RecordType::kInvalid stops it).
  const LineData zero{};
  pm_->store_line(LineIndex::containing(pool_->log_offset()), zero);
  pm_->flush_line(LineIndex::containing(pool_->log_offset()));
  pm_->drain();
  ++stats_.sfences;
  ++stats_.flushes;
  writer_.reset();
}

Status TxRuntime::tx_begin() {
  mu_.lock();  // held until commit/abort: transactions are serialized
  PAX_CHECK(!in_tx_);
  in_tx_ = true;
  ++tx_id_;
  dirty_ranges_.clear();
  return Status::ok();
}

Status TxRuntime::tx_snapshot(PoolOffset off, std::size_t len) {
  PAX_CHECK(in_tx_);
  if (off < pool_->data_offset() ||
      off + len > pool_->data_offset() + pool_->data_size()) {
    return invalid_argument("snapshot range outside pool data extent");
  }

  std::vector<std::byte> payload(sizeof(wal::RangeUndoHeader) + len);
  wal::RangeUndoHeader h{off, static_cast<std::uint32_t>(len), 0};
  std::memcpy(payload.data(), &h, sizeof(h));
  pm_->load(off, {payload.data() + sizeof(h), len});

  auto end = writer_.append(tx_id_, wal::RecordType::kRangeUndo, payload);
  if (!end.ok()) return end.status();

  // The snapshot must be durable before the caller's store: flush + SFENCE.
  // This is the stall PAX eliminates (§2).
  writer_.flush();
  ++stats_.snapshots;
  stats_.snapshot_bytes += len;
  stats_.log_bytes += wal::record_frame_size(payload.size());
  ++stats_.sfences;
  ++stats_.flushes;
  return Status::ok();
}

Status TxRuntime::tx_store(PoolOffset off, std::span<const std::byte> data) {
  PAX_CHECK(in_tx_);
  if (off < pool_->data_offset() ||
      off + data.size() > pool_->data_offset() + pool_->data_size()) {
    return invalid_argument("store outside pool data extent");
  }
  pm_->store(off, data);
  dirty_ranges_.emplace_back(off, data.size());
  return Status::ok();
}

Status TxRuntime::tx_commit() {
  PAX_CHECK(in_tx_);

  // 1. All data stores durable.
  for (const auto& [off, len] : dirty_ranges_) {
    pm_->flush_range(off, len);
    ++stats_.flushes;
  }
  pm_->drain();
  ++stats_.sfences;

  // 2. Commit record durable: the transaction's point of no return.
  auto end = writer_.append(tx_id_, wal::RecordType::kTxCommit, {});
  if (!end.ok()) {
    // Log full at commit: roll back instead.
    Status abort_status = tx_abort();
    (void)abort_status;
    return end.status();
  }
  writer_.flush();
  ++stats_.sfences;
  ++stats_.flushes;

  // 3. Retire the log.
  zero_log_head();

  ++stats_.txs_committed;
  in_tx_ = false;
  mu_.unlock();
  return Status::ok();
}

Status TxRuntime::tx_abort() {
  PAX_CHECK(in_tx_);
  auto records =
      wal::LogReader::read_all(pm_, pool_->log_offset(), pool_->log_size());
  apply_undo_records_reverse(records);
  zero_log_head();
  ++stats_.txs_aborted;
  in_tx_ = false;
  mu_.unlock();
  return Status::ok();
}

}  // namespace pax::baselines::pmdk
