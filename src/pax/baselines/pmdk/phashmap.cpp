#include "pax/baselines/pmdk/phashmap.hpp"

#include <cstring>

#include "pax/common/check.hpp"

namespace pax::baselines::pmdk {
namespace {

constexpr std::uint64_t kMapMagic = 0x50414d48'53414850ULL;  // "PHASHMAP"

// Header field offsets relative to the data extent start.
constexpr PoolOffset kMagicOff = 0;
constexpr PoolOffset kNBucketsOff = 8;
constexpr PoolOffset kCountOff = 16;
constexpr PoolOffset kBumpOff = 24;
constexpr PoolOffset kFreeHeadOff = 32;
constexpr PoolOffset kHeaderSize = 64;  // one line

constexpr std::size_t kNodeSize = 32;  // 24 B payload padded to 32

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

PoolOffset PHashMap::bucket_at(std::uint64_t b) const {
  return header_at() + kHeaderSize + b * 8;
}

std::uint64_t PHashMap::bucket_of(std::uint64_t key) const {
  return mix(key) % nbuckets_;
}

PHashMap::Node PHashMap::load_node(PoolOffset off) const {
  Node n{};
  pm_->load(off, std::as_writable_bytes(std::span(&n, 1)));
  return n;
}

Result<PHashMap> PHashMap::create(TxRuntime* tx, std::uint64_t nbuckets) {
  PAX_CHECK(tx != nullptr);
  if (nbuckets == 0) return invalid_argument("nbuckets must be positive");
  auto* pool = tx->pool();
  const std::size_t need = kHeaderSize + nbuckets * 8 + kNodeSize;
  if (pool->data_size() < need) {
    return out_of_space("data extent too small for bucket array");
  }

  PHashMap map(tx, nbuckets);
  const PoolOffset base = map.header_at();
  auto* pm = pool->device();

  // Format transactionally so a crash mid-create leaves either nothing or a
  // valid empty map. Freshly formatted space holds no live data, so only
  // the magic (the "is formatted" flag) needs snapshot ordering: we write
  // everything, flush, and only then persist the magic.
  pm->store_u64(base + kNBucketsOff, nbuckets);
  pm->store_u64(base + kCountOff, 0);
  pm->store_u64(base + kBumpOff, kHeaderSize + nbuckets * 8);
  pm->store_u64(base + kFreeHeadOff, 0);
  const std::uint64_t zero = 0;
  for (std::uint64_t b = 0; b < nbuckets; ++b) {
    pm->store(map.bucket_at(b), std::as_bytes(std::span(&zero, 1)));
  }
  pm->flush_range(base, kHeaderSize + nbuckets * 8);
  pm->drain();
  pm->atomic_durable_store_u64(base + kMagicOff, kMapMagic);
  return map;
}

Result<PHashMap> PHashMap::open(TxRuntime* tx) {
  PAX_CHECK(tx != nullptr);
  auto* pm = tx->pool()->device();
  const PoolOffset base = tx->pool()->data_offset();
  if (pm->load_u64(base + kMagicOff) != kMapMagic) {
    return not_found("no PHashMap in pool");
  }
  const std::uint64_t nbuckets = pm->load_u64(base + kNBucketsOff);
  if (nbuckets == 0 ||
      kHeaderSize + nbuckets * 8 > tx->pool()->data_size()) {
    return corruption("PHashMap header implausible");
  }
  return PHashMap(tx, nbuckets);
}

Result<PoolOffset> PHashMap::alloc_node_in_tx() {
  const PoolOffset base = header_at();
  const std::uint64_t free_head = pm_->load_u64(base + kFreeHeadOff);
  if (free_head != 0) {
    // Pop the free list. The recycled node's bytes are live (they may need
    // rollback), so snapshot them before reuse.
    PAX_RETURN_IF_ERROR(tx_->tx_snapshot(base + kFreeHeadOff, 8));
    PAX_RETURN_IF_ERROR(tx_->tx_snapshot(free_head, kNodeSize));
    const std::uint64_t next_free = pm_->load_u64(free_head);
    const std::uint64_t v = next_free;
    PAX_RETURN_IF_ERROR(
        tx_->tx_store(base + kFreeHeadOff, std::as_bytes(std::span(&v, 1))));
    ++stats_.node_recycles;
    return free_head;
  }

  const std::uint64_t bump = pm_->load_u64(base + kBumpOff);
  if (base + bump + kNodeSize > header_at() + tx_->pool()->data_size()) {
    return out_of_space("PHashMap node space exhausted");
  }
  PAX_RETURN_IF_ERROR(tx_->tx_snapshot(base + kBumpOff, 8));
  const std::uint64_t new_bump = bump + kNodeSize;
  PAX_RETURN_IF_ERROR(
      tx_->tx_store(base + kBumpOff, std::as_bytes(std::span(&new_bump, 1))));
  // Bump-fresh memory holds no live data: no snapshot needed (the classic
  // PMDK new-object optimization).
  return base + bump;
}

Status PHashMap::put(std::uint64_t key, std::uint64_t value) {
  ++stats_.puts;
  PAX_RETURN_IF_ERROR(tx_->tx_begin());

  const PoolOffset bucket = bucket_at(bucket_of(key));
  const std::uint64_t head = pm_->load_u64(bucket);

  // Update in place if present.
  for (PoolOffset off = head; off != 0;) {
    Node n = load_node(off);
    if (n.key == key) {
      Status s = tx_->tx_snapshot(off + 8, 8);  // old value
      if (!s.is_ok()) {
        (void)tx_->tx_abort();
        return s;
      }
      s = tx_->tx_store(off + 8, std::as_bytes(std::span(&value, 1)));
      if (!s.is_ok()) {
        (void)tx_->tx_abort();
        return s;
      }
      return tx_->tx_commit();
    }
    off = n.next;
  }

  // Insert at chain head.
  auto run = [&]() -> Status {
    auto node_off = alloc_node_in_tx();
    if (!node_off.ok()) return node_off.status();
    Node n{key, value, head};
    PAX_RETURN_IF_ERROR(
        tx_->tx_store(node_off.value(), std::as_bytes(std::span(&n, 1))));

    PAX_RETURN_IF_ERROR(tx_->tx_snapshot(bucket, 8));
    const std::uint64_t off = node_off.value();
    PAX_RETURN_IF_ERROR(
        tx_->tx_store(bucket, std::as_bytes(std::span(&off, 1))));

    PAX_RETURN_IF_ERROR(tx_->tx_snapshot(header_at() + kCountOff, 8));
    const std::uint64_t count = pm_->load_u64(header_at() + kCountOff) + 1;
    PAX_RETURN_IF_ERROR(tx_->tx_store(header_at() + kCountOff,
                                      std::as_bytes(std::span(&count, 1))));
    return Status::ok();
  };
  Status s = run();
  if (!s.is_ok()) {
    (void)tx_->tx_abort();
    return s;
  }
  return tx_->tx_commit();
}

std::optional<std::uint64_t> PHashMap::get(std::uint64_t key) const {
  ++stats_.gets;
  for (PoolOffset off = pm_->load_u64(bucket_at(bucket_of(key))); off != 0;) {
    Node n = load_node(off);
    if (n.key == key) return n.value;
    off = n.next;
  }
  return std::nullopt;
}

Status PHashMap::erase(std::uint64_t key) {
  ++stats_.erases;
  PAX_RETURN_IF_ERROR(tx_->tx_begin());

  auto run = [&]() -> Status {
    const PoolOffset bucket = bucket_at(bucket_of(key));
    PoolOffset link = bucket;  // the pointer slot referring to `off`
    for (PoolOffset off = pm_->load_u64(bucket); off != 0;) {
      Node n = load_node(off);
      if (n.key != key) {
        link = off + 16;  // &node.next
        off = n.next;
        continue;
      }
      // Unlink.
      PAX_RETURN_IF_ERROR(tx_->tx_snapshot(link, 8));
      PAX_RETURN_IF_ERROR(
          tx_->tx_store(link, std::as_bytes(std::span(&n.next, 1))));
      // Push the node onto the free list (its bytes are live → snapshot).
      PAX_RETURN_IF_ERROR(tx_->tx_snapshot(off, kNodeSize));
      const std::uint64_t free_head =
          pm_->load_u64(header_at() + kFreeHeadOff);
      PAX_RETURN_IF_ERROR(
          tx_->tx_store(off, std::as_bytes(std::span(&free_head, 1))));
      PAX_RETURN_IF_ERROR(tx_->tx_snapshot(header_at() + kFreeHeadOff, 8));
      PAX_RETURN_IF_ERROR(tx_->tx_store(
          header_at() + kFreeHeadOff, std::as_bytes(std::span(&off, 1))));
      // Count.
      PAX_RETURN_IF_ERROR(tx_->tx_snapshot(header_at() + kCountOff, 8));
      const std::uint64_t count = pm_->load_u64(header_at() + kCountOff) - 1;
      PAX_RETURN_IF_ERROR(tx_->tx_store(header_at() + kCountOff,
                                        std::as_bytes(std::span(&count, 1))));
      return Status::ok();
    }
    return not_found("key not in map");
  };

  Status s = run();
  if (!s.is_ok()) {
    (void)tx_->tx_abort();
    return s;
  }
  return tx_->tx_commit();
}

std::uint64_t PHashMap::size() const {
  return pm_->load_u64(header_at() + kCountOff);
}

}  // namespace pax::baselines::pmdk
