// Hand-crafted persistent vector (PMDK style), the second structure of the
// baseline family. Complements PHashMap with the other classic layout:
// a contiguous array with capacity doubling, where growth must move the
// whole payload — the pattern that makes hand-written PM code so easy to
// get wrong and motivates the paper's black-box approach (§1, §2).
//
// Transactional discipline (like pmemobj):
//   * push_back into existing capacity: snapshot only the size field; the
//     target cell is beyond `size`, i.e. not live, so it needs no undo.
//   * growth: the new array comes from bump allocation (fresh memory — no
//     undo needed for the copy), then array_off/capacity/size flip under
//     snapshots, so a crash either sees the old array or the new one.
//   * set(): snapshot the cell, then write.
//
// Elements are u64. The old array is leaked on growth (pmemobj would free
// it; a free list adds nothing to what this baseline measures).
#pragma once

#include <cstdint>
#include <optional>

#include "pax/baselines/pmdk/tx.hpp"

namespace pax::baselines::pmdk {

class PVector {
 public:
  /// Formats an empty vector at the start of `tx`'s pool data extent.
  static Result<PVector> create(TxRuntime* tx,
                                std::uint64_t initial_capacity = 8);

  /// Opens an existing vector (after TxRuntime recovery).
  static Result<PVector> open(TxRuntime* tx);

  Status push_back(std::uint64_t value);
  Status pop_back();
  Status set(std::uint64_t index, std::uint64_t value);
  std::optional<std::uint64_t> get(std::uint64_t index) const;

  std::uint64_t size() const;
  std::uint64_t capacity() const;

 private:
  explicit PVector(TxRuntime* tx)
      : tx_(tx), pm_(tx->pool()->device()) {}

  PoolOffset header_at() const { return tx_->pool()->data_offset(); }
  PoolOffset cell_at(std::uint64_t index) const;

  /// Doubles capacity inside the active transaction.
  Status grow_in_tx();

  TxRuntime* tx_;
  pmem::PmemDevice* pm_;
};

}  // namespace pax::baselines::pmdk
