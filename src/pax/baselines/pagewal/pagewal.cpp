#include "pax/baselines/pagewal/pagewal.hpp"

#include <cstring>
#include <vector>

#include "pax/common/check.hpp"

namespace pax::baselines::pagewal {

Result<std::unique_ptr<PageWalRuntime>> PageWalRuntime::attach(
    pmem::PmemDevice* pm, std::size_t log_size) {
  PAX_CHECK(pm != nullptr);
  if (log_size % kPageSize != 0) {
    return invalid_argument("log size must be page-aligned");
  }

  auto rt = std::unique_ptr<PageWalRuntime>(new PageWalRuntime());
  rt->pm_ = pm;

  if (pm->load_u64(0) == 0) {
    auto created = pmem::PmemPool::create(pm, log_size);
    if (!created.ok()) return created.status();
    rt->pool_ = created.value();
  } else {
    auto opened = pmem::PmemPool::open(pm);
    if (!opened.ok()) return opened.status();
    rt->pool_ = opened.value();
  }

  PAX_RETURN_IF_ERROR(recover(*rt->pool_));
  rt->epoch_ = rt->pool_->committed_epoch() + 1;

  const std::size_t region_size = rt->pool_->data_size() & ~(kPageSize - 1);
  auto region = libpax::VpmRegion::create(region_size);
  if (!region.ok()) return region.status();
  rt->region_ = std::move(region).value();

  pm->load(rt->pool_->data_offset(),
           {rt->region_->base(), rt->region_->size()});
  PAX_RETURN_IF_ERROR(rt->region_->protect_all());

  rt->writer_ = std::make_unique<wal::LogWriter>(
      pm, rt->pool_->log_offset(), rt->pool_->log_size());
  return rt;
}

Status PageWalRuntime::recover(pmem::PmemPool& pool) {
  auto* pm = pool.device();
  const Epoch committed = pool.committed_epoch();
  auto records =
      wal::LogReader::read_all(pm, pool.log_offset(), pool.log_size());

  // Collect the uncommitted epoch's page pre-images, apply in reverse.
  std::vector<const wal::LogRecord*> to_undo;
  for (const auto& rec : records) {
    if (rec.epoch <= committed) continue;
    if (rec.type != wal::RecordType::kPageUndo) {
      return corruption("unexpected record type in page-WAL log");
    }
    if (rec.payload.size() != sizeof(wal::PageUndoHeader) + kPageSize) {
      return corruption("page undo record has wrong size");
    }
    to_undo.push_back(&rec);
  }
  for (auto it = to_undo.rbegin(); it != to_undo.rend(); ++it) {
    wal::PageUndoHeader h{};
    std::memcpy(&h, (*it)->payload.data(), sizeof(h));
    const PoolOffset at = pool.data_offset() + h.page_index * kPageSize;
    if (at + kPageSize > pool.data_offset() + pool.data_size()) {
      return corruption("page undo record out of range");
    }
    pm->store(at, {(*it)->payload.data() + sizeof(h), kPageSize});
    pm->flush_range(at, kPageSize);
  }
  pm->drain();
  return Status::ok();
}

Result<Epoch> PageWalRuntime::persist() {
  ++stats_.persists;
  const std::vector<PageIndex> dirty = region_->dirty_pages();

  // 1. Log the PM pre-image of every dirty page; all records durable before
  //    any write-back.
  std::vector<std::byte> payload(sizeof(wal::PageUndoHeader) + kPageSize);
  for (PageIndex page : dirty) {
    wal::PageUndoHeader h{page.value};
    std::memcpy(payload.data(), &h, sizeof(h));
    pm_->load(pool_->data_offset() + page.byte_offset(),
              {payload.data() + sizeof(h), kPageSize});
    auto end = writer_->append(epoch_, wal::RecordType::kPageUndo, payload);
    if (!end.ok()) return end.status();
    ++stats_.pages_logged;
    stats_.log_bytes += wal::record_frame_size(payload.size());
  }
  writer_->flush();

  // 2. Write the new page contents back, whole pages.
  for (PageIndex page : dirty) {
    pm_->store(pool_->data_offset() + page.byte_offset(),
               region_->page_span(page));
    pm_->flush_range(pool_->data_offset() + page.byte_offset(), kPageSize);
    ++stats_.pages_written_back;
  }
  pm_->drain();

  // 3. Commit.
  const Epoch committed = epoch_;
  pool_->commit_epoch(committed);
  writer_->reset();
  epoch_ = committed + 1;

  PAX_RETURN_IF_ERROR(region_->protect_pages(dirty));
  return committed;
}

}  // namespace pax::baselines::pagewal
