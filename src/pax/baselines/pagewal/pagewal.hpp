// Page-granularity write-ahead logging — the mprotect/page-fault family of
// black-box crash-consistency systems the paper positions against (§1:
// NVthreads [12], Kelly [15], LibPM [20]). Same black-box property as PAX,
// but two structural costs PAX avoids:
//
//   * every first store to a page pays a write-protection trap (>1 µs on
//     modern x86 — modelled in simtime::InterconnectLatency::page_fault_trap)
//   * undo logging and write-back happen at 4 KiB page granularity, giving
//     up to 64× the write amplification of PAX's 64 B line records (§1, the
//     Abl 2 bench quantifies this).
//
// The implementation reuses the same substrates as libpax (VpmRegion for
// fault tracking, PmemPool's epoch cell, the wal record format) so the two
// systems differ only in the property under study: logging granularity.
#pragma once

#include <memory>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/libpax/vpm_region.hpp"
#include "pax/pmem/pool.hpp"
#include "pax/wal/wal.hpp"

namespace pax::baselines::pagewal {

struct PageWalStats {
  std::uint64_t persists = 0;
  std::uint64_t pages_logged = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t pages_written_back = 0;
};

class PageWalRuntime {
 public:
  /// Attaches to a (possibly fresh, possibly crashed) device: formats or
  /// opens the pool, rolls back any uncommitted epoch at page granularity,
  /// maps and protects the region.
  static Result<std::unique_ptr<PageWalRuntime>> attach(
      pmem::PmemDevice* pm, std::size_t log_size = 8 << 20);

  std::byte* base() const { return region_->base(); }
  std::size_t size() const { return region_->size(); }

  /// Snapshot commit: logs the pre-image of every dirty *page*, writes the
  /// pages back, commits the epoch cell, re-protects.
  Result<Epoch> persist();

  Epoch committed_epoch() const { return pool_->committed_epoch(); }
  std::uint64_t fault_count() const { return region_->fault_count(); }
  const PageWalStats& stats() const { return stats_; }
  pmem::PmemPool& pool() { return *pool_; }

  /// Rolls an opened pool back to its committed epoch at page granularity
  /// (attach() runs this automatically; public for recovery benchmarks).
  static Status recover(pmem::PmemPool& pool);

 private:
  PageWalRuntime() = default;

  pmem::PmemDevice* pm_ = nullptr;
  std::optional<pmem::PmemPool> pool_;
  std::unique_ptr<libpax::VpmRegion> region_;
  std::unique_ptr<wal::LogWriter> writer_;
  Epoch epoch_ = 0;  // accumulating epoch
  PageWalStats stats_;
};

}  // namespace pax::baselines::pagewal
