// Bandwidth-limited shared resources for the discrete-event throughput model.
//
// A BandwidthResource approximates a shared channel (PM write bandwidth, the
// CXL link, the device pipeline) as a single server whose service time per
// request is bytes / bandwidth. Requests are serialized in arrival order:
// request(now, bytes) returns the completion time and remembers when the
// resource frees up, which is how contention between simulated threads
// emerges (the knee in Figure 2b where PM write bandwidth saturates).
#pragma once

#include <cstdint>

#include "pax/common/check.hpp"
#include "pax/simtime/clock.hpp"

namespace pax::simtime {

class BandwidthResource {
 public:
  /// `bytes_per_second` — sustained bandwidth of the channel.
  /// `channels` — number of independent lanes; a request occupies one lane,
  /// approximated by dividing service time by the channel count.
  explicit BandwidthResource(double bytes_per_second, unsigned channels = 1)
      : bytes_per_second_(bytes_per_second), channels_(channels) {
    PAX_CHECK(bytes_per_second > 0);
    PAX_CHECK(channels >= 1);
  }

  /// Requests `bytes` of transfer starting no earlier than `now`.
  /// Returns the simulated completion time.
  SimNanos request(SimNanos now, std::uint64_t bytes) {
    const double service_ns =
        static_cast<double>(bytes) * 1e9 / (bytes_per_second_ * channels_);
    const SimNanos start = now > next_free_ ? now : next_free_;
    next_free_ = start + to_nanos(service_ns);
    total_bytes_ += bytes;
    ++total_requests_;
    return next_free_;
  }

  /// Time at which the resource next becomes idle.
  SimNanos next_free() const { return next_free_; }

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_requests() const { return total_requests_; }

  void reset() {
    next_free_ = 0;
    total_bytes_ = 0;
    total_requests_ = 0;
  }

 private:
  double bytes_per_second_;
  unsigned channels_;
  SimNanos next_free_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_requests_ = 0;
};

}  // namespace pax::simtime
