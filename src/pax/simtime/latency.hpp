// Latency and bandwidth presets for every medium and interconnect the paper's
// evaluation touches. Sources (the same ones the paper cites):
//   - Cache/DRAM: empirical numbers typical of the Cloudlab c6420
//     (2×16-core Skylake Xeon Gold 6142, 2.6 GHz) used in §5.
//   - Optane DC PMM: Yang et al., "An Empirical Guide to the Behavior and
//     Use of Scalable Persistent Memory", FAST'20 [33] — 305 ns random read,
//     ~14 GB/s/socket write BW, ~40 GB/s read BW.
//   - CXL device round-trip: the ~2× DRAM-access expectation publicised for
//     CXL.cache-attached devices (paper [6], §5 "expected CXL latency").
//   - Enzian: ThunderX-1 ↔ FPGA coherence round-trip measured by the Enzian
//     paper [5]; several hundred ns, ≈5× the CXL expectation, which is what
//     makes the paper's Enzian-PAX AMAT overhead ≈2× the CXL-PAX one.
//   - Page-fault trap: >1 µs per write-protection trap on modern x86 (§1).
#pragma once

#include "pax/simtime/clock.hpp"

namespace pax::simtime {

/// Latencies of the CPU cache hierarchy and memory media, in nanoseconds.
struct MemoryLatency {
  double l1_ns = 1.5;      // ~4 cycles @ 2.6 GHz
  double l2_ns = 5.4;      // ~14 cycles
  double llc_ns = 19.0;    // ~50 cycles
  double dram_ns = 81.0;   // loaded random-access DRAM latency
  double pm_read_ns = 305.0;   // Optane random 64 B read [33]
  double pm_write_ns = 94.0;   // store reaching the Optane WPQ (ADR domain)
  double sfence_drain_ns = 120.0;  // SFENCE + pending CLWB drain, amortized
  double clwb_ns = 25.0;           // issue cost of one CLWB instruction

  static MemoryLatency c6420() { return MemoryLatency{}; }
};

/// One-way + return interposition cost of the accelerator path, i.e. the
/// extra nanoseconds an LLC miss pays because the line is homed at the
/// device rather than at the host memory controller.
struct InterconnectLatency {
  double round_trip_ns = 0.0;

  /// No interposition: host memory controller serves the miss directly.
  static InterconnectLatency none() { return {0.0}; }

  /// Expected CXL.cache-attached device round trip (paper §5, [6]): the
  /// commonly projected "roughly one extra DRAM access" for a CXL hop.
  static InterconnectLatency cxl() { return {85.0}; }

  /// Enzian ThunderX-1 ↔ FPGA coherence round trip (paper [5]). The paper's
  /// §5 estimate is that the Enzian prototype's interposition overhead is
  /// about 2× the eventual CXL implementation's; ECI remote-line round
  /// trips are a couple hundred nanoseconds.
  static InterconnectLatency enzian() { return {180.0}; }

  /// Page-fault interposition: a write-protection trap, for the paging
  /// baselines (§1: "more than 1 µs per trap").
  static InterconnectLatency page_fault_trap() { return {1500.0}; }
};

/// Bandwidth constants used by the DES throughput model (§5.1).
struct BandwidthSpec {
  double pm_write_bps = 14e9;   // Optane per-socket write bandwidth [33]
  double pm_read_bps = 40e9;    // Optane per-socket read bandwidth [33]
  double dram_bps = 100e9;      // DRAM per-socket bandwidth
  double cxl_link_bps = 63e9;   // PCIe 5.0 x16 full-duplex per direction [6]
  double enzian_link_bps = 30e9;  // 24×10 Gb/s lanes ≈ 30 GB/s
  double device_pipeline_hz = 300e6;  // CVU9P FPGA clock: msgs/s ceiling (§5.1)

  static BandwidthSpec paper() { return BandwidthSpec{}; }
};

}  // namespace pax::simtime
