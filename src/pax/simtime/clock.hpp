// Virtual time. All performance evaluation in this repository runs in
// simulated nanoseconds: benches never sleep and never depend on the host
// machine (the paper's testbed had 32 cores; this container has one).
#pragma once

#include <cstdint>

#include "pax/common/check.hpp"

namespace pax::simtime {

/// Simulated nanoseconds.
using SimNanos = std::uint64_t;

/// A monotonically advancing virtual clock. One clock per simulated actor
/// (thread, device pipeline); actors synchronize through resources.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimNanos start) : now_(start) {}

  SimNanos now() const { return now_; }

  /// Advance by a duration.
  void advance(SimNanos delta) { now_ += delta; }

  /// Advance to an absolute time; no-op if already past it.
  void advance_to(SimNanos t) {
    if (t > now_) now_ = t;
  }

 private:
  SimNanos now_ = 0;
};

/// Converts a double nanosecond quantity to SimNanos, rounding.
inline SimNanos to_nanos(double ns) {
  PAX_CHECK(ns >= 0);
  return static_cast<SimNanos>(ns + 0.5);
}

}  // namespace pax::simtime
