// Classic memory-model litmus shapes over vPM lines.
//
// Each Shape is a tiny multi-core program — per-core sequences of u64
// loads/stores on one or two shared variables — plus a *forbidden-outcome*
// predicate: the register/final-state combination that sequential
// consistency rules out (SB's r0==0 && r1==0, MP's stale read, CoRR's
// backwards read, ...). Since the harness (runner.hpp) drives the
// CoherenceDomain one op at a time, every enumerated interleaving is a
// sequentially consistent schedule by construction, and a MESI-correct
// domain must reproduce exactly the SC outcome of that schedule —
// simulate_sc() computes it. The forbidden predicates are therefore
// redundant on a correct build (a self-check asserts no SC outcome is
// forbidden) but give the seeded-bug findings their memory-model names.
//
// The shapes follow the usual litmus literature (and the CXLMemUring suite
// referenced in SNIPPETS.md): SB, LB, MP, WRC, IRIW, CoRR, CoWW, 2+2W.
// Variables live on distinct cache lines except where a shape is *about*
// same-line ordering (CoRR, CoWW) or deliberately exercises false sharing
// (2+2W packs both variables into one line, so per-line undo logging and
// the persist pull see concurrent writers of one line).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pax::litmus {

enum class OpKind : std::uint8_t { kLoad, kStore };

struct Op {
  OpKind kind = OpKind::kLoad;
  unsigned var = 0;          // variable index
  std::uint64_t value = 0;   // stored value (kStore)
  unsigned reg = 0;          // destination register (kLoad)
};

/// What one execution observed: per-register loaded values plus the final
/// (post-persist, post-power-loss) value of every variable.
struct Outcome {
  std::vector<std::uint64_t> regs;
  std::vector<std::uint64_t> finals;

  bool operator==(const Outcome&) const = default;
  /// Canonical form, e.g. "r0=0 r1=1 | x=1 y=1".
  std::string to_string() const;
};

struct Shape {
  std::string name;
  unsigned vars = 0;
  unsigned regs = 0;
  /// Pack all variables into one cache line (false-sharing variant).
  bool same_line = false;
  std::vector<std::vector<Op>> cores;
  std::string forbidden_desc;
  bool (*forbidden)(const Outcome&) = nullptr;

  unsigned core_count() const {
    return static_cast<unsigned>(cores.size());
  }
  std::size_t op_count() const;
};

/// Display name for variable `v`: "x", "y", then "v2", "v3", ...
std::string var_name(unsigned v);

/// The eight shapes, in a stable order.
const std::vector<Shape>& all_shapes();

/// Lookup by name (case-sensitive, e.g. "SB", "2+2W"); nullptr if unknown.
const Shape* find_shape(std::string_view name);

/// Every interleaving of the per-core programs, as sequences of core ids
/// (one entry per op), in lexicographic order — the index into this vector
/// is the stable "interleaving index" findings are named by.
std::vector<std::vector<unsigned>> enumerate_interleavings(const Shape&);

/// Human form of one interleaving, e.g. "P0 P1 P0 P1".
std::string schedule_string(std::span<const unsigned> order);

/// The outcome an ideal sequentially consistent memory produces for this
/// exact interleaving — what a MESI-correct CoherenceDomain must match.
Outcome simulate_sc(const Shape&, std::span<const unsigned> order);

/// Sorted, de-duplicated canonical outcomes over all interleavings: the
/// complete SC-allowed set (the torture test's membership oracle).
std::vector<std::string> sc_outcome_set(const Shape&);

}  // namespace pax::litmus
