#include "pax/litmus/litmus.hpp"

#include <algorithm>
#include <set>

#include "pax/common/check.hpp"

namespace pax::litmus {
namespace {

Op St(unsigned var, std::uint64_t value) {
  Op op;
  op.kind = OpKind::kStore;
  op.var = var;
  op.value = value;
  return op;
}

Op Ld(unsigned reg, unsigned var) {
  Op op;
  op.kind = OpKind::kLoad;
  op.var = var;
  op.reg = reg;
  return op;
}

// --- Forbidden-outcome predicates ----------------------------------------
//
// Every predicate also rejects final states no interleaving can produce
// (e.g. a store that never became durable), so a lost write is "forbidden"
// even when the registers happen to look plausible.

bool finals_are(const Outcome& o, std::initializer_list<std::uint64_t> want) {
  return std::equal(o.finals.begin(), o.finals.end(), want.begin(),
                    want.end());
}

bool sb_forbidden(const Outcome& o) {
  return (o.regs[0] == 0 && o.regs[1] == 0) || !finals_are(o, {1, 1});
}

bool lb_forbidden(const Outcome& o) {
  return (o.regs[0] == 1 && o.regs[1] == 1) || !finals_are(o, {1, 1});
}

bool mp_forbidden(const Outcome& o) {
  return (o.regs[0] == 1 && o.regs[1] == 0) || !finals_are(o, {1, 1});
}

bool wrc_forbidden(const Outcome& o) {
  return (o.regs[0] == 1 && o.regs[1] == 1 && o.regs[2] == 0) ||
         !finals_are(o, {1, 1});
}

bool iriw_forbidden(const Outcome& o) {
  return (o.regs[0] == 1 && o.regs[1] == 0 && o.regs[2] == 1 &&
          o.regs[3] == 0) ||
         !finals_are(o, {1, 1});
}

bool corr_forbidden(const Outcome& o) {
  // Same-location reads must not go backwards in time.
  return (o.regs[0] == 1 && o.regs[1] == 0) || !finals_are(o, {1});
}

bool coww_forbidden(const Outcome& o) {
  // Same-location writes from one core must commit in program order.
  return o.regs[0] != 2 || !finals_are(o, {2});
}

bool two_plus_two_w_forbidden(const Outcome& o) {
  const std::uint64_t x = o.finals[0];
  const std::uint64_t y = o.finals[1];
  // Both "first" writes surviving is the classic 2+2W violation; a value
  // neither core ever wrote (e.g. a dropped update leaving 0) is worse.
  return (x == 1 && y == 1) || (x != 1 && x != 2) || (y != 1 && y != 2);
}

constexpr unsigned kX = 0;
constexpr unsigned kY = 1;

std::vector<Shape> make_shapes() {
  std::vector<Shape> shapes;

  Shape sb;
  sb.name = "SB";
  sb.vars = 2;
  sb.regs = 2;
  sb.cores = {{St(kX, 1), Ld(0, kY)}, {St(kY, 1), Ld(1, kX)}};
  sb.forbidden_desc = "r0==0 && r1==0 (both stores invisible)";
  sb.forbidden = &sb_forbidden;
  shapes.push_back(std::move(sb));

  Shape lb;
  lb.name = "LB";
  lb.vars = 2;
  lb.regs = 2;
  lb.cores = {{Ld(0, kX), St(kY, 1)}, {Ld(1, kY), St(kX, 1)}};
  lb.forbidden_desc = "r0==1 && r1==1 (loads observe later stores)";
  lb.forbidden = &lb_forbidden;
  shapes.push_back(std::move(lb));

  Shape mp;
  mp.name = "MP";
  mp.vars = 2;
  mp.regs = 2;
  mp.cores = {{St(kX, 1), St(kY, 1)}, {Ld(0, kY), Ld(1, kX)}};
  mp.forbidden_desc = "r0==1 && r1==0 (flag seen, payload stale)";
  mp.forbidden = &mp_forbidden;
  shapes.push_back(std::move(mp));

  Shape wrc;
  wrc.name = "WRC";
  wrc.vars = 2;
  wrc.regs = 3;
  wrc.cores = {{St(kX, 1)},
               {Ld(0, kX), St(kY, 1)},
               {Ld(1, kY), Ld(2, kX)}};
  wrc.forbidden_desc = "r0==1 && r1==1 && r2==0 (write not yet propagated)";
  wrc.forbidden = &wrc_forbidden;
  shapes.push_back(std::move(wrc));

  Shape iriw;
  iriw.name = "IRIW";
  iriw.vars = 2;
  iriw.regs = 4;
  iriw.cores = {{St(kX, 1)},
                {St(kY, 1)},
                {Ld(0, kX), Ld(1, kY)},
                {Ld(2, kY), Ld(3, kX)}};
  iriw.forbidden_desc =
      "r0==1 && r1==0 && r2==1 && r3==0 (readers disagree on write order)";
  iriw.forbidden = &iriw_forbidden;
  shapes.push_back(std::move(iriw));

  Shape corr;
  corr.name = "CoRR";
  corr.vars = 1;
  corr.regs = 2;
  corr.cores = {{St(kX, 1)}, {Ld(0, kX), Ld(1, kX)}};
  corr.forbidden_desc = "r0==1 && r1==0 (same-line read goes backwards)";
  corr.forbidden = &corr_forbidden;
  shapes.push_back(std::move(corr));

  Shape coww;
  coww.name = "CoWW";
  coww.vars = 1;
  coww.regs = 1;
  coww.cores = {{St(kX, 1), St(kX, 2), Ld(0, kX)}};
  coww.forbidden_desc = "r0!=2 or final x!=2 (same-line writes reordered)";
  coww.forbidden = &coww_forbidden;
  shapes.push_back(std::move(coww));

  Shape ttw;
  ttw.name = "2+2W";
  ttw.vars = 2;
  ttw.regs = 0;
  ttw.same_line = true;  // false sharing: both vars in one undo-logged line
  ttw.cores = {{St(kX, 1), St(kY, 2)}, {St(kY, 1), St(kX, 2)}};
  ttw.forbidden_desc = "final x==1 && y==1 (both second writes lost)";
  ttw.forbidden = &two_plus_two_w_forbidden;
  shapes.push_back(std::move(ttw));

  return shapes;
}

}  // namespace

std::size_t Shape::op_count() const {
  std::size_t n = 0;
  for (const auto& ops : cores) n += ops.size();
  return n;
}

std::string var_name(unsigned v) {
  if (v == 0) return "x";
  if (v == 1) return "y";
  return "v" + std::to_string(v);
}

std::string Outcome::to_string() const {
  std::string out;
  for (std::size_t r = 0; r < regs.size(); ++r) {
    if (!out.empty()) out += " ";
    out += "r" + std::to_string(r) + "=" + std::to_string(regs[r]);
  }
  if (!regs.empty() && !finals.empty()) out += " | ";
  for (std::size_t v = 0; v < finals.size(); ++v) {
    if (v > 0) out += " ";
    out += var_name(static_cast<unsigned>(v)) + "=" +
           std::to_string(finals[v]);
  }
  return out;
}

const std::vector<Shape>& all_shapes() {
  static const std::vector<Shape> shapes = make_shapes();
  return shapes;
}

const Shape* find_shape(std::string_view name) {
  for (const Shape& shape : all_shapes()) {
    if (shape.name == name) return &shape;
  }
  return nullptr;
}

std::vector<std::vector<unsigned>> enumerate_interleavings(
    const Shape& shape) {
  std::vector<unsigned> order;
  for (unsigned c = 0; c < shape.core_count(); ++c) {
    order.insert(order.end(), shape.cores[c].size(), c);
  }
  std::vector<std::vector<unsigned>> all;
  do {
    all.push_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return all;
}

std::string schedule_string(std::span<const unsigned> order) {
  std::string out;
  for (unsigned c : order) {
    if (!out.empty()) out += " ";
    out += "P" + std::to_string(c);
  }
  return out;
}

Outcome simulate_sc(const Shape& shape, std::span<const unsigned> order) {
  PAX_CHECK(order.size() == shape.op_count());
  std::vector<std::uint64_t> mem(shape.vars, 0);
  Outcome outcome;
  outcome.regs.assign(shape.regs, 0);
  std::vector<std::size_t> cursor(shape.cores.size(), 0);
  for (unsigned core : order) {
    PAX_CHECK(core < shape.core_count());
    PAX_CHECK(cursor[core] < shape.cores[core].size());
    const Op& op = shape.cores[core][cursor[core]++];
    if (op.kind == OpKind::kStore) {
      mem[op.var] = op.value;
    } else {
      outcome.regs[op.reg] = mem[op.var];
    }
  }
  outcome.finals = std::move(mem);
  return outcome;
}

std::vector<std::string> sc_outcome_set(const Shape& shape) {
  std::set<std::string> outcomes;
  for (const auto& order : enumerate_interleavings(shape)) {
    outcomes.insert(simulate_sc(shape, order).to_string());
  }
  return {outcomes.begin(), outcomes.end()};
}

}  // namespace pax::litmus
