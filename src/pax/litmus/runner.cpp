#include "pax/litmus/runner.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "pax/check/trace_file.hpp"
#include "pax/common/check.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::litmus {
namespace {

// Evenly sampled indices [0, n) of size <= cap (cap 0 = all), always
// keeping the first and last — the tail is where teardown-adjacent
// schedules live, mirroring the explorer's crash-point sampling.
std::vector<std::size_t> sample_indices(std::size_t n, std::size_t cap) {
  std::vector<std::size_t> picks;
  if (cap == 0 || n <= cap) {
    picks.resize(n);
    for (std::size_t i = 0; i < n; ++i) picks[i] = i;
    return picks;
  }
  picks.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    picks.push_back(i * (n - 1) / (cap > 1 ? cap - 1 : 1));
  }
  picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
  return picks;
}

}  // namespace

coherence::HostCacheConfig litmus_cache_config() {
  coherence::HostCacheConfig config;
  config.l1 = {1024, 2};
  config.l2 = {4 * 1024, 4};
  config.llc = {16 * 1024, 8};
  return config;
}

std::string LitmusFinding::to_string() const {
  std::string out = "[" + kind + "] " + shape + " interleaving " +
                    std::to_string(interleaving) + " (" + schedule + ")";
  if (crash_after != check::kNoCrashPoint) {
    out += ", crash after event " + std::to_string(crash_after) + " [" +
           mode + "]";
  } else {
    out += ", no crash (schedule pass)";
  }
  out += ": " + detail;
  return out;
}

std::string ShapeResult::to_string() const {
  std::string out =
      "litmus " + shape + ": " + std::to_string(interleavings) + "/" +
      std::to_string(interleavings_total) + " interleaving(s), " +
      std::to_string(outcomes.size()) + " distinct outcome(s), " +
      std::to_string(crash_points) + " crash point(s), " +
      std::to_string(executions) + " execution(s), " +
      std::to_string(recoveries) + " audited recovery/ies";
  if (findings.empty()) {
    out += "\n  clean: no forbidden outcome, every execution matched its SC "
           "schedule, all crash audits passed";
  } else {
    out += "\n  " + std::to_string(findings.size()) + " finding(s)";
    for (const LitmusFinding& f : findings) {
      out += "\n  " + f.to_string();
    }
  }
  return out;
}

std::vector<PoolOffset> var_offsets(const Shape& shape,
                                    const pmem::PmemPool& pool) {
  std::vector<PoolOffset> offsets(shape.vars, 0);
  for (unsigned v = 0; v < shape.vars; ++v) {
    const std::size_t stride =
        shape.same_line ? sizeof(std::uint64_t) : kCacheLineSize;
    offsets[v] = pool.data_offset() + v * stride;
    PAX_CHECK(offsets[v] + sizeof(std::uint64_t) <=
              pool.data_offset() + pool.data_size());
  }
  return offsets;
}

Status execute_interleaving(pmem::PmemDevice& device,
                            check::CrashOracle& oracle, const Shape& shape,
                            std::span<const unsigned> order,
                            const coherence::DomainFaults& faults,
                            Outcome* out) {
  auto pool = pmem::PmemPool::create(&device, kLitmusLogBytes);
  if (!pool.ok()) return pool.status();

  device::DeviceConfig config;
  config.persist_workers = 1;  // inline fan-out: one deterministic order
  device::PaxDevice pax(&pool.value(), config);
  PAX_RETURN_IF_ERROR(oracle.note_commit(pool.value().committed_epoch()));

  coherence::CoherenceDomain domain(&pax, litmus_cache_config(),
                                    shape.core_count());
  domain.set_faults(faults);

  const auto offsets = var_offsets(shape, pool.value());
  std::vector<std::uint64_t> regs(shape.regs, 0);
  std::vector<std::size_t> cursor(shape.cores.size(), 0);
  PAX_CHECK(order.size() == shape.op_count());
  for (unsigned core : order) {
    const Op& op = shape.cores.at(core).at(cursor[core]++);
    if (op.kind == OpKind::kStore) {
      PAX_RETURN_IF_ERROR(domain.store_u64(core, offsets[op.var], op.value));
    } else {
      regs[op.reg] = domain.load_u64(core, offsets[op.var]);
    }
  }

  auto committed = domain.persist(&pax);
  if (!committed.ok()) return committed.status();
  PAX_RETURN_IF_ERROR(oracle.note_commit(committed.value()));

  // Power loss: every core's volatile state vanishes. The finals are what
  // a fresh core then observes — exactly the durable post-recovery values,
  // so a persist that lost a host-cached update shows up right here.
  domain.drop_all_without_writeback();
  std::vector<std::uint64_t> finals(shape.vars, 0);
  for (unsigned v = 0; v < shape.vars; ++v) {
    finals[v] = domain.load_u64(0, offsets[v]);
  }

  if (out != nullptr) {
    out->regs = std::move(regs);
    out->finals = std::move(finals);
  }
  return Status::ok();
}

Result<ShapeResult> run_shape(const Shape& shape,
                              const LitmusOptions& options) {
  ShapeResult result;
  result.shape = shape.name;

  const auto orders = enumerate_interleavings(shape);
  result.interleavings_total = orders.size();
  const auto picks =
      sample_indices(orders.size(), options.max_interleavings);

  std::set<std::string> outcomes;
  for (std::size_t index : picks) {
    const std::vector<unsigned>& order = orders[index];
    const std::string schedule = schedule_string(order);
    const Outcome expected = simulate_sc(shape, order);

    const auto add_finding = [&](std::string kind, std::string detail,
                                 std::uint64_t crash_after,
                                 std::string mode) {
      LitmusFinding finding;
      finding.shape = shape.name;
      finding.interleaving = index;
      finding.schedule = schedule;
      finding.crash_after = crash_after;
      finding.mode = std::move(mode);
      finding.kind = std::move(kind);
      finding.detail = std::move(detail);
      result.findings.push_back(std::move(finding));
    };

    // --- Schedule pass ---------------------------------------------------
    {
      auto device = pmem::PmemDevice::create_in_memory(kLitmusDeviceBytes);
      check::CheckerOptions checker_options;
      checker_options.record_events = !options.trace_dir.empty();
      check::Checker checker(checker_options);
      device->set_checker(&checker);
      check::CrashOracle oracle(device.get(), /*collect=*/false);
      Outcome got;
      const Status executed = execute_interleaving(
          *device, oracle, shape, order, options.faults, &got);
      device->set_checker(nullptr);
      PAX_RETURN_IF_ERROR(executed);
      ++result.executions;
      outcomes.insert(got.to_string());

      if (shape.forbidden(got)) {
        add_finding("forbidden-outcome",
                    "outcome \"" + got.to_string() +
                        "\" matches forbidden predicate [" +
                        shape.forbidden_desc + "]",
                    check::kNoCrashPoint, "");
      }
      if (!(got == expected)) {
        add_finding("sc-divergence",
                    "observed \"" + got.to_string() +
                        "\" but this schedule's SC outcome is \"" +
                        expected.to_string() + "\"",
                    check::kNoCrashPoint, "");
      }
      const check::Report report = checker.report();
      if (!report.clean()) {
        add_finding("paxcheck",
                    "online rules fired: " +
                        report.violations.front().to_string(),
                    check::kNoCrashPoint, "");
      }
      if (!options.trace_dir.empty()) {
        const std::string path = options.trace_dir + "/litmus-" +
                                 shape.name + "-i" + std::to_string(index) +
                                 ".paxevt";
        PAX_RETURN_IF_ERROR(
            check::write_trace(path, checker.recorded_events()));
      }
    }

    // --- Crash product ---------------------------------------------------
    if (options.crash_every > 0 &&
        (options.max_findings == 0 ||
         result.findings.size() < options.max_findings)) {
      check::CrashExplorerOptions explorer_options;
      explorer_options.every = options.crash_every;
      explorer_options.max_crash_points = options.max_crash_points;
      explorer_options.seed = options.seed;
      explorer_options.paxcheck_audit = options.paxcheck_audit;
      explorer_options.modes = options.modes;
      explorer_options.max_findings =
          options.max_findings == 0
              ? 0
              : options.max_findings - result.findings.size();

      const coherence::DomainFaults faults = options.faults;
      check::CrashExplorer explorer(
          kLitmusDeviceBytes,
          [&shape, &order, faults](pmem::PmemDevice& device,
                                   check::CrashOracle& oracle) -> Status {
            return execute_interleaving(device, oracle, shape, order, faults,
                                        nullptr);
          },
          explorer_options);
      // Once the final epoch is the recovered one, the durable variables
      // must be the SC finals — this is what catches a persist that never
      // pulled (or a snoop that dropped) a host-Modified line, which the
      // explorer's own snapshot audit cannot see (its reference snapshots
      // come from the same buggy execution).
      explorer.set_invariant(
          [&shape, expected](pmem::PmemPool& pool,
                             Epoch recovered) -> Status {
            if (recovered < 1) return Status::ok();
            const auto offsets = var_offsets(shape, pool);
            for (unsigned v = 0; v < shape.vars; ++v) {
              std::uint64_t durable = 0;
              pool.device()->read_durable(
                  offsets[v],
                  std::as_writable_bytes(std::span(&durable, 1)));
              if (durable != expected.finals[v]) {
                return corruption(
                    "durable " + var_name(v) + " = " +
                    std::to_string(durable) +
                    " diverges from this schedule's SC final " +
                    std::to_string(expected.finals[v]));
              }
            }
            return Status::ok();
          });

      auto explored = explorer.explore();
      if (!explored.ok()) return explored.status();
      const check::ExplorationResult& r = explored.value();
      result.crash_points += r.crash_points;
      result.executions += r.executions;
      result.recoveries += r.recoveries;
      for (const check::CrashFinding& f : r.findings) {
        add_finding("crash-audit", f.detail, f.crash_after, f.mode);
      }
    }

    ++result.interleavings;
    if (options.max_findings > 0 &&
        result.findings.size() >= options.max_findings) {
      break;
    }
  }

  result.outcomes.assign(outcomes.begin(), outcomes.end());
  return result;
}

}  // namespace pax::litmus
