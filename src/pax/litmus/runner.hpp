// Litmus harness: enumerated coherence schedules × enumerated crash points.
//
// run_shape() drives one litmus Shape through every interleaving of its
// per-core programs on a fresh pool + PaxDevice + CoherenceDomain each
// time, with serialized dispatch (one op at a time through the domain's
// thread-safe entry points — a sequentially consistent schedule by
// construction, which is also what makes the CrashExplorer determinism
// contract hold). Each interleaving is audited at two depths:
//
//   1. *Schedule pass*: execute once, record the PaxCheck stream
//      (optionally written as a .paxevt trace), and check the outcome —
//      registers read through the protocol, finals read after persist() +
//      a simulated power loss — against both the shape's forbidden-outcome
//      predicate and the exact SC simulation of that interleaving.
//   2. *Crash product*: hand the same interleaving to CrashExplorer as a
//      deterministic workload, enumerating every k-th device persistence
//      event as a crash point and auditing each recovery three ways
//      (recovery succeeds, PaxCheck silent, durable bytes equal a
//      committed snapshot) plus a litmus invariant: once the final epoch
//      is the recovered epoch, the durable variables must equal the SC
//      finals of the interleaving.
//
// Findings carry the interleaving index, the schedule string, and — for
// crash-product findings — the crash event index and mode, so a seeded
// bug (coherence::DomainFaults) is localized to "shape, interleaving,
// crash point" coordinates.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pax/check/crashpoint.hpp"
#include "pax/coherence/domain.hpp"
#include "pax/litmus/litmus.hpp"

namespace pax::litmus {

/// Device geometry for harness pools: small, so the thousands of
/// executions behind one shape stay cheap.
inline constexpr std::size_t kLitmusDeviceBytes = 256 << 10;
inline constexpr std::size_t kLitmusLogBytes = 32 << 10;

/// Small (but still 3-level inclusive) cache geometry for harness cores:
/// litmus programs touch one or two lines, and domain construction cost is
/// what dominates an exhaustive run with Skylake-sized tables.
coherence::HostCacheConfig litmus_cache_config();

struct LitmusOptions {
  /// Crash-product stride: test every k-th device persistence event per
  /// interleaving. 0 disables the crash product (schedule pass only).
  std::uint64_t crash_every = 1;
  /// Cap on crash points per interleaving (0 = unlimited), sampled evenly.
  std::uint64_t max_crash_points = 0;
  /// Cap on interleavings per shape (0 = all), sampled evenly across the
  /// lexicographic enumeration — wide shapes (IRIW: 180) stay affordable.
  std::uint64_t max_interleavings = 0;
  /// Seed for the random/torn crash lotteries.
  std::uint64_t seed = 1;
  /// Run the PaxCheck rule audit at every crash point.
  bool paxcheck_audit = true;
  /// Crash modes; empty = explorer defaults (drop_all, random, torn).
  std::vector<check::CrashMode> modes;
  /// Seeded protocol bugs (mutation-testing the harness).
  coherence::DomainFaults faults;
  /// Directory for per-interleaving .paxevt traces ("" = don't record).
  std::string trace_dir;
  /// Stop a shape after this many findings (0 = collect every one).
  std::size_t max_findings = 32;
};

struct LitmusFinding {
  std::string shape;
  std::uint64_t interleaving = 0;  // index into enumerate_interleavings()
  std::string schedule;            // "P0 P1 P0 P1"
  /// Crash event index for crash-product findings; kNoCrashPoint for
  /// schedule-pass findings (no crash involved).
  std::uint64_t crash_after = check::kNoCrashPoint;
  std::string mode;  // crash mode name ("" for schedule-pass findings)
  /// "forbidden-outcome" | "sc-divergence" | "paxcheck" | "crash-audit".
  std::string kind;
  std::string detail;

  std::string to_string() const;
};

struct ShapeResult {
  std::string shape;
  std::uint64_t interleavings_total = 0;  // enumerated
  std::uint64_t interleavings = 0;        // actually executed
  std::uint64_t crash_points = 0;
  std::uint64_t executions = 0;
  std::uint64_t recoveries = 0;
  /// Sorted distinct canonical outcomes observed across interleavings.
  std::vector<std::string> outcomes;
  std::vector<LitmusFinding> findings;

  bool clean() const { return findings.empty(); }
  std::string to_string() const;
};

/// Pool offsets of the shape's variables (distinct lines, or packed into
/// one line for same_line shapes), relative to the pool's data extent.
std::vector<PoolOffset> var_offsets(const Shape&, const pmem::PmemPool&);

/// Executes one interleaving end to end on `device`: create pool, build
/// PaxDevice + CoherenceDomain (with `faults`), run the ops serialized in
/// `order`, persist through the domain pull, then simulate power loss and
/// read the finals back through a fresh core. Reports the baseline and the
/// committed epoch to `oracle` — i.e. a CrashExplorer-compatible workload.
/// `out` (optional) receives the observed Outcome.
Status execute_interleaving(pmem::PmemDevice& device,
                            check::CrashOracle& oracle, const Shape& shape,
                            std::span<const unsigned> order,
                            const coherence::DomainFaults& faults,
                            Outcome* out);

/// The full harness for one shape. An error Status means the harness
/// itself failed (workload error, nondeterminism); litmus/crash problems
/// are findings in the result.
Result<ShapeResult> run_shape(const Shape& shape,
                              const LitmusOptions& options = {});

}  // namespace pax::litmus
