#include "pax/model/amat.hpp"

namespace pax::model {

AmatBreakdown compute_amat(const coherence::HostCacheStats& stats,
                           const simtime::MemoryLatency& lat, Media media,
                           const simtime::InterconnectLatency& interposition) {
  AmatBreakdown out;
  out.m1 = stats.l1.miss_rate();
  out.m2 = stats.l2.miss_rate();
  out.m3 = stats.llc.miss_rate();
  out.misses_per_access = out.m1 * out.m2 * out.m3;

  const double media_ns =
      (media == Media::kDram ? lat.dram_ns : lat.pm_read_ns) +
      interposition.round_trip_ns;

  out.l1_ns = lat.l1_ns;
  out.l2_ns = out.m1 * lat.l2_ns;
  out.llc_ns = out.m1 * out.m2 * lat.llc_ns;
  out.memory_ns = out.m1 * out.m2 * out.m3 * media_ns;
  out.amat_ns = out.l1_ns + out.l2_ns + out.llc_ns + out.memory_ns;
  return out;
}

std::vector<Fig2aRow> fig2a_rows(const coherence::HostCacheStats& stats,
                                 const simtime::MemoryLatency& lat) {
  using simtime::InterconnectLatency;
  return {
      {"DRAM", compute_amat(stats, lat, Media::kDram,
                            InterconnectLatency::none())},
      {"PM", compute_amat(stats, lat, Media::kPm,
                          InterconnectLatency::none())},
      {"PM via CXL", compute_amat(stats, lat, Media::kPm,
                                  InterconnectLatency::cxl())},
      {"PM via Enzian", compute_amat(stats, lat, Media::kPm,
                                     InterconnectLatency::enzian())},
  };
}

}  // namespace pax::model
