// Discrete-event throughput model for Figure 2b (and the throughput side of
// the ablations).
//
// The paper's Figure 2b runs a write-only workload on a concurrent hash
// table across 1–32 threads on a dual-socket Skylake with Optane DIMMs.
// This container has one core, so the experiment is reproduced as a
// discrete-event simulation in virtual time: each simulated thread executes
// a closed loop of insert operations whose cost is assembled from the same
// component latencies the AMAT model uses, plus bandwidth-limited shared
// resources that produce the contention knees.
//
// Cost model per operation (parameters in ModelParams, defaults from the
// paper's sources [33], [6], [5]):
//
//   DRAM       cpu + misses·t_dram; write-back bytes against DRAM BW.
//   PM Direct  cpu + misses·t_pm; write-back bytes against PM write BW at
//              Optane's 256 B internal granularity (random CPU evictions
//              cannot coalesce — the 4× internal write amplification of
//              [33] §4.1 is what caps this curve).
//   PMDK       PM Direct + per-op synchronous undo logging: n_snapshots ×
//              (log write + SFENCE drain) + data-flush fence + commit
//              record fence (§2's "multiple stalls per put()"), log bytes
//              against PM write BW (sequential, no internal amplification).
//   PAX        cpu + misses·(t_pm + device round trip), a fraction of
//              misses served from device HBM instead; undo-log bytes are
//              asynchronous (consume BW, never stall the thread; §3.2);
//              the device's write-back coordinator coalesces write-backs
//              into Optane-friendly 256 B units (§3.3 gives it that
//              freedom), sidestepping the internal write amplification.
//              Every LLC miss is one coherence message through the device
//              pipeline (§5.1 "Accelerator Bottlenecks": 300 MHz on the
//              Enzian FPGA — binding for PAX-Enzian, assumed ASIC-class
//              for PAX-CXL).
#pragma once

#include <cstdint>
#include <vector>

#include "pax/simtime/bandwidth.hpp"
#include "pax/simtime/latency.hpp"

namespace pax::model {

enum class SystemKind {
  kDram,
  kPmDirect,
  kPmdk,
  kPaxCxl,
  kPaxEnzian,
  kPageWal,  // page-fault tracking baseline (trap cost per page touch)
  kHybrid,   // §5.1's proposed combination: pages map read-only over
             // host-attached PM (no per-miss interposition), the first
             // write fault per page per epoch remaps it through vPM, and
             // PAX then logs the page's changes at line granularity
             // asynchronously
};

const char* system_name(SystemKind kind);

struct ModelParams {
  simtime::MemoryLatency lat = simtime::MemoryLatency::c6420();
  simtime::BandwidthSpec bw = simtime::BandwidthSpec::paper();

  // Workload / structure characteristics (measure with the cache sim or
  // override).
  double cpu_ns_per_op = 150.0;    // TBB-style concurrent insert: hashing,
                                   // per-bucket locking, node allocation
  double misses_per_op = 0.7;      // LLC misses per insert
  double dirty_lines_per_op = 0.7; // lines eventually written back

  // PMDK transaction shape (matches baselines/pmdk measured counts).
  unsigned pmdk_snapshots_per_op = 3;
  double pmdk_log_bytes_per_op = 288;  // 3 × 96 B records
  unsigned pmdk_extra_fences = 2;      // data-flush + commit-record fences

  // PAX device behaviour.
  double pax_interposition_override_ns = -1;  // >=0: replace the kind's
                                              // round-trip (latency sweeps)
  double pax_hbm_hit_fraction = 0.3;   // device-cache hits among LLC misses
  double pax_hbm_hit_ns = 100.0;       // HBM access at the device
  double pax_log_bytes_per_op = 96;    // one line undo record (async)
  double pax_persist_interval_ops = 1024;  // group-commit batch (§3.2)
  double pax_persist_cost_ns = 20000;      // pull+write-back+commit per batch
  /// §6 non-blocking persist: the boundary op pays only the seal; the
  /// commit overlaps with subsequent ops (consuming PM bandwidth async).
  bool pax_async_persist = false;
  double pax_seal_cost_ns = 2000;          // seal: pulls + bank switch
  /// Pipelined epochs (takes precedence over pax_async_persist): the
  /// boundary op pays only the O(dirty-pages) dirty-set swap; a single
  /// background drain worker serializes the full persists, and the boundary
  /// op stalls only when the bounded drain queue is full (back-pressure).
  /// Mirrors RuntimeOptions::pipeline_depth in the host runtime.
  bool pax_pipelined_epochs = false;
  unsigned pax_pipeline_depth = 1;    // snapshots queued or in flight
  double pax_swap_cost_ns = 400;      // dirty-set swap + page re-protection

  // Page-WAL baseline.
  double pagewal_trap_ns = 1500.0;       // write-protection fault (§1)
  double pagewal_page_touch_per_op = 0.05;  // first-touches per op (locality)
  double pagewal_log_bytes_per_page = 4096.0 + 32;

  // Optane internal write granularity [33]: random 64 B writes occupy a
  // full 256 B internal line of write bandwidth.
  double optane_internal_write_bytes = 256.0;

  std::uint64_t ops_per_thread = 200000;
};

struct ThroughputPoint {
  unsigned threads;
  double mops;  // million operations per second (virtual time)
};

/// Per-op latency distribution of one simulated thread — the snapshot
/// boundary shows up as the tail (see bench/abl_persist_tail).
struct LatencyProfile {
  double mean_ns = 0;
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
  double max_ns = 0;
};

/// Runs the closed-loop DES for `kind` at each thread count.
std::vector<ThroughputPoint> simulate_throughput(
    SystemKind kind, const std::vector<unsigned>& thread_counts,
    const ModelParams& params);

/// Single-point variant. If `profile` is non-null, fills it with thread 0's
/// per-op latency distribution.
double simulate_mops(SystemKind kind, unsigned threads,
                     const ModelParams& params,
                     LatencyProfile* profile = nullptr);

}  // namespace pax::model
