// Workload generation for the evaluation benches.
//
// The paper's Figure 2a workload is "a standard hash table benchmark that
// performs get() operations on a single thread with small 8 B keys and
// values and a uniform random key access distribution" (§5); Figure 2b uses
// a write-only workload. Zipfian is provided for the locality ablations
// (skew controls how much the CPU caches absorb, which is the knob the
// paper's AMAT argument turns on).
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "pax/common/check.hpp"
#include "pax/common/rng.hpp"

namespace pax::model {

enum class KeyDist { kUniform, kZipfian };

/// Draws keys in [1, n_keys] (0 is reserved as the empty marker in the
/// table layouts). Zipfian uses the standard YCSB/Gray generator.
class KeyGenerator {
 public:
  KeyGenerator(KeyDist dist, std::uint64_t n_keys, double theta,
               std::uint64_t seed)
      : dist_(dist), n_keys_(n_keys), theta_(theta), rng_(seed) {
    PAX_CHECK(n_keys >= 1);
    if (dist == KeyDist::kZipfian) {
      PAX_CHECK(theta > 0 && theta < 1);
      zetan_ = zeta(n_keys, theta);
      zeta2_ = zeta(2, theta);
      alpha_ = 1.0 / (1.0 - theta);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_keys), 1.0 - theta)) /
             (1.0 - zeta2_ / zetan_);
    }
  }

  std::uint64_t next() {
    if (dist_ == KeyDist::kUniform) return 1 + rng_.next_below(n_keys_);
    // Gray et al. Zipfian.
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 1;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
    return 1 + static_cast<std::uint64_t>(
                   static_cast<double>(n_keys_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  KeyDist dist_;
  std::uint64_t n_keys_;
  double theta_;
  Xoshiro256 rng_;
  double zetan_ = 0, zeta2_ = 0, alpha_ = 0, eta_ = 0;
};

struct Op {
  enum class Type { kGet, kPut };
  Type type;
  std::uint64_t key;
  std::uint64_t value;
};

/// Mixes gets and puts over a key generator.
class WorkloadGen {
 public:
  WorkloadGen(KeyGenerator keys, double put_fraction, std::uint64_t seed)
      : keys_(std::move(keys)), put_fraction_(put_fraction), rng_(seed) {}

  Op next() {
    const std::uint64_t key = keys_.next();
    if (rng_.next_bool(put_fraction_)) {
      return {Op::Type::kPut, key, rng_.next()};
    }
    return {Op::Type::kGet, key, 0};
  }

  std::vector<Op> batch(std::size_t n) {
    std::vector<Op> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i) ops.push_back(next());
    return ops;
  }

 private:
  KeyGenerator keys_;
  double put_fraction_;
  Xoshiro256 rng_;
};

}  // namespace pax::model
