#include "pax/model/sim_hash_table.hpp"

#include <bit>

#include "pax/common/check.hpp"

namespace pax::model {

SimHashTable::SimHashTable(coherence::HostCacheSim* host, PoolOffset base,
                           std::uint64_t nslots)
    : host_(host), base_(base), nslots_(nslots) {
  PAX_CHECK(host != nullptr);
  PAX_CHECK(std::has_single_bit(nslots));
}

Status SimHashTable::put(std::uint64_t key, std::uint64_t value) {
  if (key == 0) return invalid_argument("key 0 reserved");
  const std::uint64_t mask = nslots_ - 1;
  for (std::uint64_t probe = 0; probe < nslots_; ++probe) {
    const std::uint64_t s = (mix(key) + probe) & mask;
    const std::uint64_t existing = host_->load_u64(slot_at(s));
    if (existing == key) {
      return host_->store_u64(slot_at(s) + 8, value);
    }
    if (existing == 0) {
      PAX_RETURN_IF_ERROR(host_->store_u64(slot_at(s), key));
      PAX_RETURN_IF_ERROR(host_->store_u64(slot_at(s) + 8, value));
      ++count_;
      return Status::ok();
    }
  }
  return out_of_space("table full");
}

std::optional<std::uint64_t> SimHashTable::get(std::uint64_t key) {
  const std::uint64_t mask = nslots_ - 1;
  for (std::uint64_t probe = 0; probe < nslots_; ++probe) {
    const std::uint64_t s = (mix(key) + probe) & mask;
    const std::uint64_t existing = host_->load_u64(slot_at(s));
    if (existing == key) return host_->load_u64(slot_at(s) + 8);
    if (existing == 0) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace pax::model
