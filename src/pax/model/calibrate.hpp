// Serving-plane DES calibration: close the model-vs-reality loop.
//
// pax/model/throughput.hpp models the *device* path (paper Fig 2b). This
// module models the *serving* plane above it — the PaxKV event loops,
// pipelined connections, and the group-commit wave cadence — as a small
// deterministic discrete-event simulation, and fits its two free
// parameters to ONE measured closed-loop run from paxkv-loadgen:
//
//   service_us   effective per-op service time at an event loop (covers
//                syscall + parse + shard execution as seen end-to-end)
//   base_rtt_us  fixed client<->server round-trip floor (loopback / NIC)
//
// The fit: bisect service_us until simulated closed-loop throughput
// matches the measurement (throughput is monotone decreasing in
// service_us), then recover base_rtt_us from the measured *read floor* —
// the minimum GET latency across the run. In a saturated closed loop the
// percentiles are invariant to the round-trip floor (a later token return
// delays the next arrival by exactly the extra latency, cancelling it),
// so the floor is the only observable in a single closed-loop run that
// separates wire time from service time: an idle-server GET costs exactly
// service + rtt and never parks on a group-commit wave. Without a floor
// the p50 residual is used as a best-effort fallback.
//
// A calibrated model then *predicts* an unseen configuration — different
// connection count, depth, or an open-loop arrival rate — and
// `paxctl calibrate` (plus bench/abl_paxkv.cpp and scripts/check_paxkv.py)
// asserts the prediction error against a second real run. This mirrors
// the evaluation methodology of validating an analytical serving model
// against the real loop rather than trusting either alone.
//
// The DES is deterministic (no RNG): writes are thinned from write_frac by
// integer-crossing, open-loop arrivals sit on a fixed timeline, ties
// resolve by index — so calibrate() and the tests are bit-reproducible.
#pragma once

#include <cstddef>

namespace pax::model {

/// What the clients do — mirrors paxkv-loadgen's knobs.
struct ServingWorkload {
  std::size_t connections = 4;  // total concurrent connections
  std::size_t depth = 16;       // pipeline depth per connection (closed)
  double write_frac = 0.5;      // PUT/DEL fraction (parks on wave cadence)
  double open_rate_ops_s = 0;   // > 0: open loop at this aggregate rate
  double duration_s = 1.0;      // simulated horizon
};

/// The serving plane's shape and fitted parameters.
struct ServingParams {
  std::size_t loops = 1;          // event-loop threads (service stations)
  double service_us = 5.0;        // fitted: per-op service time at a loop
  double base_rtt_us = 50.0;      // fitted: fixed round-trip floor
  double wave_interval_us = 200;  // group-commit cadence (from config)
};

struct ServingPrediction {
  double throughput_ops_s = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  // Minimum read (non-parking) latency, warmup included: service + rtt
  // plus whatever queueing the luckiest op still saw.
  double read_floor_us = 0;
};

/// One measured loadgen run (the "calibration" record in --json output).
struct ServingMeasurement {
  ServingWorkload workload;
  double throughput_ops_s = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double read_floor_us = 0;  // min GET latency; 0 = not recorded
};

/// Runs the serving DES: closed loop when workload.open_rate_ops_s == 0,
/// open loop (latency from scheduled send time) otherwise.
ServingPrediction simulate_serving(const ServingParams& params,
                                   const ServingWorkload& workload);

/// Fits service_us and base_rtt_us so the DES reproduces `measured` (a
/// closed-loop run). `loops` and `wave_interval_us` come from the server
/// configuration, not the fit.
ServingParams calibrate(const ServingMeasurement& measured,
                        std::size_t loops, double wave_interval_us);

/// Relative error |predicted - measured| / measured (0 when measured
/// is 0): the quantity scripts/check_paxkv.py gates on.
double relative_error(double predicted, double measured);

}  // namespace pax::model
