#include "pax/model/throughput.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "pax/common/check.hpp"
#include "pax/common/types.hpp"

namespace pax::model {
namespace {

using simtime::BandwidthResource;
using simtime::SimNanos;
using simtime::to_nanos;

struct Thread {
  SimNanos clock = 0;
  std::uint64_t ops_done = 0;
  double miss_accum = 0;   // fractional LLC misses carried between ops
  double touch_accum = 0;  // fractional page first-touches (page-WAL)
  // Pipelined-epoch drain pipeline. The model treats each thread as a
  // closed-loop client with its own persist stream (blocking mode charges
  // each thread's persists independently), so the pipelined analogue
  // overlaps a thread's drain with ITS next epoch's ops: completion times
  // of queued drains plus the drain worker's next-free time.
  std::deque<SimNanos> drain_queue;
  SimNanos drain_free = 0;
};

struct HeapEntry {
  SimNanos clock;
  unsigned idx;
  bool operator>(const HeapEntry& o) const { return clock > o.clock; }
};

}  // namespace

const char* system_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kDram:
      return "DRAM";
    case SystemKind::kPmDirect:
      return "PM Direct";
    case SystemKind::kPmdk:
      return "PMDK";
    case SystemKind::kPaxCxl:
      return "PAX (CXL)";
    case SystemKind::kPaxEnzian:
      return "PAX (Enzian)";
    case SystemKind::kPageWal:
      return "Page-WAL";
    case SystemKind::kHybrid:
      return "Hybrid (§5.1)";
  }
  return "?";
}

double simulate_mops(SystemKind kind, unsigned threads,
                     const ModelParams& p, LatencyProfile* profile) {
  PAX_CHECK(threads >= 1);
  std::vector<double> thread0_latencies;
  if (profile != nullptr) thread0_latencies.reserve(p.ops_per_thread);

  // Shared resources. Read bandwidth uses Optane's 256 B internal
  // granularity for random reads on every PM-resident system.
  const bool is_dram = kind == SystemKind::kDram;
  BandwidthResource read_bw(is_dram ? p.bw.dram_bps : p.bw.pm_read_bps);
  BandwidthResource write_bw(is_dram ? p.bw.dram_bps : p.bw.pm_write_bps);
  BandwidthResource device_pipeline(
      // Messages/second modelled as bytes/second with 1 B per message.
      kind == SystemKind::kPaxEnzian ? p.bw.device_pipeline_hz : 100e18);

  const bool is_pax =
      kind == SystemKind::kPaxCxl || kind == SystemKind::kPaxEnzian;
  double interposition_ns =
      kind == SystemKind::kPaxCxl
          ? simtime::InterconnectLatency::cxl().round_trip_ns
          : (kind == SystemKind::kPaxEnzian
                 ? simtime::InterconnectLatency::enzian().round_trip_ns
                 : 0.0);
  if (is_pax && p.pax_interposition_override_ns >= 0) {
    interposition_ns = p.pax_interposition_override_ns;
  }
  const double media_ns = is_dram ? p.lat.dram_ns : p.lat.pm_read_ns;

  std::vector<Thread> state(threads);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> pq;
  for (unsigned i = 0; i < threads; ++i) pq.push({0, i});

  SimNanos end_time = 0;

  // Asynchronous writes (evictions, PAX device logging) don't stall the
  // thread — until the write queue backs up. A bounded backlog window
  // models the memory controller's write-pending-queue depth: once the
  // resource is more than this far behind, producers stall (this is what
  // bends every PM curve at its bandwidth ceiling).
  constexpr SimNanos kWriteBacklogWindowNs = 3000;

  while (!pq.empty()) {
    auto [clock, idx] = pq.top();
    pq.pop();
    Thread& th = state[idx];
    SimNanos t = th.clock;
    // All resource requests are issued at the op's start time: the priority
    // queue pops ops in nondecreasing clock order, so arrivals at each
    // single-server BandwidthResource are time-ordered (required for its
    // next-free bookkeeping to model a FIFO queue rather than inflating
    // waits with out-of-order arrivals).
    const SimNanos t0 = t;

    // --- compute ---
    t += to_nanos(p.cpu_ns_per_op);

    // --- memory misses ---
    th.miss_accum += p.misses_per_op;
    while (th.miss_accum >= 1.0) {
      th.miss_accum -= 1.0;
      const double read_charge =
          is_dram ? static_cast<double>(kCacheLineSize)
                  : p.optane_internal_write_bytes;  // 256 B internal read too
      const SimNanos bw_done =
          read_bw.request(t0, static_cast<std::uint64_t>(read_charge));
      double lat = media_ns + interposition_ns;
      if (is_pax) {
        // A fraction of misses hit the device HBM cache instead of PM.
        // Expected-value blend keeps the model deterministic.
        lat = p.pax_hbm_hit_fraction *
                  (interposition_ns + p.pax_hbm_hit_ns) +
              (1.0 - p.pax_hbm_hit_fraction) * lat;
        const SimNanos pipe_done = device_pipeline.request(t0, 1);
        t = std::max(t, pipe_done);
      }
      t = std::max(t + to_nanos(lat), bw_done);

      // Eventual write-back of the dirtied line. PAX and the §5.1 hybrid
      // route write-backs through the device, which coalesces them into
      // Optane-friendly units; host-direct random evictions cannot.
      const bool device_managed_wb =
          is_pax || kind == SystemKind::kHybrid;
      const double wb_charge =
          is_dram ? static_cast<double>(kCacheLineSize)
                  : (device_managed_wb
                         ? static_cast<double>(kCacheLineSize)  // coalesced
                         : p.optane_internal_write_bytes);      // random
      const SimNanos wb_done = write_bw.request(
          t0, static_cast<std::uint64_t>(wb_charge * p.dirty_lines_per_op /
                                         std::max(p.misses_per_op, 1e-9)));
      if (wb_done > t0 + kWriteBacklogWindowNs) {
        t = std::max(t, wb_done - kWriteBacklogWindowNs);
      }
    }

    // --- system-specific per-op work ---
    switch (kind) {
      case SystemKind::kDram:
      case SystemKind::kPmDirect:
        break;

      case SystemKind::kPmdk: {
        // Synchronous snapshots: log write + drain, serialized per snapshot.
        for (unsigned s = 0; s < p.pmdk_snapshots_per_op; ++s) {
          const SimNanos log_done = write_bw.request(
              t0, static_cast<std::uint64_t>(p.pmdk_log_bytes_per_op /
                                            p.pmdk_snapshots_per_op));
          t = std::max(t + to_nanos(p.lat.pm_write_ns +
                                    p.lat.sfence_drain_ns),
                       log_done);
        }
        // Data-flush fence + commit-record fence.
        t += to_nanos(p.pmdk_extra_fences *
                      (p.lat.clwb_ns + p.lat.sfence_drain_ns));
        break;
      }

      case SystemKind::kPaxCxl:
      case SystemKind::kPaxEnzian: {
        // Undo logging is asynchronous: consumes PM write bandwidth but the
        // thread never waits for it (§3.2).
        const SimNanos log_done = write_bw.request(
            t0, static_cast<std::uint64_t>(p.pax_log_bytes_per_op));
        if (log_done > t0 + kWriteBacklogWindowNs) {
          t = std::max(t, log_done - kWriteBacklogWindowNs);
        }
        // Group commit (§3.2): the batch-boundary op pays the snapshot.
        // Synchronous persist = the full commit; §6 async = just the seal
        // (the commit's bandwidth is consumed off the critical path).
        if ((th.ops_done + 1) % static_cast<std::uint64_t>(
                                    p.pax_persist_interval_ops) ==
            0) {
          if (p.pax_pipelined_epochs) {
            // The boundary op pays only the dirty-set swap; the full
            // persist runs on the shared drain worker. Back-pressure: with
            // the queue at depth, the op waits for the oldest drain.
            while (!th.drain_queue.empty() && th.drain_queue.front() <= t) {
              th.drain_queue.pop_front();
            }
            t += to_nanos(p.pax_swap_cost_ns);
            if (th.drain_queue.size() >=
                std::max(1u, p.pax_pipeline_depth)) {
              t = std::max(t, th.drain_queue.front());
              while (!th.drain_queue.empty() &&
                     th.drain_queue.front() <= t) {
                th.drain_queue.pop_front();
              }
            }
            const SimNanos start = std::max(t, th.drain_free);
            const SimNanos done =
                start + to_nanos(p.pax_persist_cost_ns);
            th.drain_free = done;
            th.drain_queue.push_back(done);
            // The drain's write-back traffic still consumes PM bandwidth.
            write_bw.request(t0, static_cast<std::uint64_t>(
                                     p.pax_persist_cost_ns / 10.0));
          } else if (p.pax_async_persist) {
            t += to_nanos(p.pax_seal_cost_ns);
            write_bw.request(t0, static_cast<std::uint64_t>(
                                     p.pax_persist_cost_ns / 10.0));
          } else {
            t += to_nanos(p.pax_persist_cost_ns);
          }
        }
        break;
      }

      case SystemKind::kPageWal: {
        // First store to each page per epoch pays a protection trap and a
        // whole-page log write.
        th.touch_accum += p.pagewal_page_touch_per_op;
        while (th.touch_accum >= 1.0) {
          th.touch_accum -= 1.0;
          const SimNanos log_done = write_bw.request(
              t0,
              static_cast<std::uint64_t>(p.pagewal_log_bytes_per_page));
          t = std::max(t + to_nanos(p.pagewal_trap_ns), log_done);
        }
        break;
      }

      case SystemKind::kHybrid: {
        // §5.1 combination: the trap is paid per first page touch per
        // epoch, but what follows is PAX — asynchronous line-granular
        // logging (bandwidth only), no synchronous page image.
        th.touch_accum += p.pagewal_page_touch_per_op;
        while (th.touch_accum >= 1.0) {
          th.touch_accum -= 1.0;
          t += to_nanos(p.pagewal_trap_ns);
        }
        const SimNanos log_done = write_bw.request(
            t0, static_cast<std::uint64_t>(p.pax_log_bytes_per_op));
        if (log_done > t0 + kWriteBacklogWindowNs) {
          t = std::max(t, log_done - kWriteBacklogWindowNs);
        }
        break;
      }
    }

    th.clock = t;
    ++th.ops_done;
    if (profile != nullptr && idx == 0) {
      thread0_latencies.push_back(static_cast<double>(t - t0));
    }
    end_time = std::max(end_time, t);
    if (th.ops_done < p.ops_per_thread) pq.push({t, idx});
  }

  if (profile != nullptr && !thread0_latencies.empty()) {
    std::sort(thread0_latencies.begin(), thread0_latencies.end());
    auto pct = [&](double q) {
      const std::size_t i = static_cast<std::size_t>(
          q * static_cast<double>(thread0_latencies.size() - 1));
      return thread0_latencies[i];
    };
    double sum = 0;
    for (double v : thread0_latencies) sum += v;
    profile->mean_ns = sum / static_cast<double>(thread0_latencies.size());
    profile->p50_ns = pct(0.50);
    profile->p90_ns = pct(0.90);
    profile->p99_ns = pct(0.99);
    profile->p999_ns = pct(0.999);
    profile->max_ns = thread0_latencies.back();
  }

  const double total_ops =
      static_cast<double>(p.ops_per_thread) * threads;
  return total_ops * 1e3 / static_cast<double>(end_time);  // Mops
}

std::vector<ThroughputPoint> simulate_throughput(
    SystemKind kind, const std::vector<unsigned>& thread_counts,
    const ModelParams& params) {
  std::vector<ThroughputPoint> out;
  out.reserve(thread_counts.size());
  for (unsigned n : thread_counts) {
    out.push_back({n, simulate_mops(kind, n, params)});
  }
  return out;
}

}  // namespace pax::model
