// A hash table whose every memory access goes through the HostCacheSim —
// the measurement vehicle for Figure 2a.
//
// The paper measures L1/L2/LLC miss rates of "a standard hash table
// benchmark … with small 8 B keys and values" and combines them with media
// latencies. This table reproduces the access pattern: open addressing with
// linear probing over 16-byte {key, value} slots, so a get() touches one
// cache line in the common case and a short probe chain under load — the
// same granular-access pattern that makes PM's direct access attractive.
#pragma once

#include <cstdint>
#include <optional>

#include "pax/coherence/host_cache.hpp"

namespace pax::model {

class SimHashTable {
 public:
  /// Lays out `nslots` (power of two) 16 B slots starting at pool offset
  /// `base` and drives all accesses through `host`.
  SimHashTable(coherence::HostCacheSim* host, PoolOffset base,
               std::uint64_t nslots);

  /// Insert or update. Keys must be nonzero. Returns kOutOfSpace if full.
  Status put(std::uint64_t key, std::uint64_t value);

  std::optional<std::uint64_t> get(std::uint64_t key);

  std::uint64_t size() const { return count_; }

 private:
  PoolOffset slot_at(std::uint64_t s) const { return base_ + s * 16; }

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }

  coherence::HostCacheSim* host_;
  PoolOffset base_;
  std::uint64_t nslots_;
  std::uint64_t count_ = 0;
};

}  // namespace pax::model
