#include "pax/model/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

namespace pax::model {

namespace {

// Bounds the DES cost: enough ops for stable p99 at every workload size,
// small enough that a bisection fit stays well under a second.
constexpr std::size_t kMaxSimOps = 120000;
constexpr double kWarmupFrac = 0.1;  // ramp-up excluded from measurement

// Deterministic write thinning: op i is a write iff the cumulative write
// budget crosses an integer at i — reproduces write_frac exactly with no
// RNG.
bool is_write(std::uint64_t i, double write_frac) {
  const double before = static_cast<double>(i) * write_frac;
  const double after = static_cast<double>(i + 1) * write_frac;
  return std::floor(after) > std::floor(before);
}

// Deterministic service-time dispersion: real per-op service times are
// heavy-tailed (syscall batching, allocator hiccups, shard contention), and
// a constant-service DES would predict p99 ~ p50. Each op's service time is
// scaled by a fixed mean-1 profile — midpoint quantiles of a lognormal
// (sigma = 0.8) visited in a bit-reversed order so consecutive ops don't
// ramp monotonically. No RNG: the same op index always gets the same
// multiplier, keeping calibrate() and the tests bit-reproducible.
constexpr double kServiceProfile[16] = {
    0.1690, 0.2613, 0.3343, 0.4030, 0.4719, 0.5437, 0.6204, 0.7044,
    0.7986, 0.9068, 1.0347, 1.1920, 1.3958, 1.6826, 2.1528, 3.3286};

double service_jitter(std::uint64_t i) {
  // Bit-reverse the low 4 bits: 0,8,4,12,... interleaves short and long ops.
  const std::uint64_t r = ((i & 1) << 3) | ((i & 2) << 1) |
                          ((i & 4) >> 1) | ((i & 8) >> 3);
  return kServiceProfile[r];
}

// Ops deep in a pipelined window queue behind ~depth others, so iid per-op
// jitter averages out and would predict p99 ~ p50. Real tails are driven by
// *correlated* slowdowns (scheduler preemption, a wave of dirty-page diffs)
// that hit a stretch of consecutive ops. Blend per-op jitter with a
// block-level multiplier shared by kJitterBlock consecutive ops; 32 was
// fitted once against loopback loadgen runs and is not workload-tuned.
constexpr std::uint64_t kJitterBlock = 32;

double op_service_scale(std::uint64_t i) {
  return 0.5 * service_jitter(i) + 0.5 * service_jitter(i / kJitterBlock);
}

// Writes park until the next group-commit wave boundary (k * interval).
double ack_time(double finish_us, bool write, double wave_interval_us) {
  if (!write || wave_interval_us <= 0.0) return finish_us;
  const double waves = std::ceil(finish_us / wave_interval_us);
  return std::max(finish_us, waves * wave_interval_us);
}

struct Event {
  double time_us = 0;   // arrival at the serving plane
  double sched_us = 0;  // scheduled send time (open-loop latency origin)
  std::uint32_t conn = 0;
  std::uint64_t index = 0;  // tiebreak: deterministic ordering
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.index > b.index;  // FIFO per timestamp
  }
};

ServingPrediction summarize(std::vector<double>& latencies, double span_us,
                            double read_floor_us) {
  ServingPrediction out;
  out.read_floor_us = read_floor_us;
  if (latencies.empty() || span_us <= 0.0) return out;
  out.throughput_ops_s =
      static_cast<double>(latencies.size()) / (span_us * 1e-6);
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&latencies](double q) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(rank, latencies.size() - 1)];
  };
  out.p50_us = at(0.50);
  out.p95_us = at(0.95);
  out.p99_us = at(0.99);
  return out;
}

}  // namespace

ServingPrediction simulate_serving(const ServingParams& params,
                                   const ServingWorkload& workload) {
  const std::size_t loops = std::max<std::size_t>(1, params.loops);
  const std::size_t conns = std::max<std::size_t>(1, workload.connections);
  const double service = std::max(1e-3, params.service_us);
  const double rtt = std::max(0.0, params.base_rtt_us);
  const double horizon_us = std::max(1e3, workload.duration_s * 1e6);
  const bool open = workload.open_rate_ops_s > 0.0;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::uint64_t issued = 0;

  if (open) {
    // Fixed arrival timeline, round-robin over connections; latency is
    // measured from the scheduled time (no coordinated omission), exactly
    // like paxkv-loadgen's open mode.
    const double interval_us = 1e6 / workload.open_rate_ops_s;
    const std::uint64_t total = std::min<std::uint64_t>(
        kMaxSimOps, static_cast<std::uint64_t>(horizon_us / interval_us));
    for (std::uint64_t i = 0; i < total; ++i) {
      const double at = static_cast<double>(i) * interval_us;
      queue.push({at, at, static_cast<std::uint32_t>(i % conns), issued++});
    }
  } else {
    // Closed loop: connections * depth tokens, staggered by a fraction of
    // the service time so the start isn't one artificial mega-burst.
    const std::size_t tokens = conns * std::max<std::size_t>(1, workload.depth);
    for (std::size_t i = 0; i < tokens; ++i) {
      const double at = static_cast<double>(i % conns) * (service * 0.01);
      queue.push({at, at, static_cast<std::uint32_t>(i % conns), issued++});
    }
  }

  // Each event loop is a FIFO station; connection -> loop is static, like
  // the SO_REUSEPORT hash pinning a connection to one loop for life.
  std::vector<double> busy_until(loops, 0.0);
  std::vector<double> latencies;
  latencies.reserve(kMaxSimOps);
  const std::uint64_t cap = open ? kMaxSimOps : kMaxSimOps;
  const std::uint64_t warmup =
      open ? 0 : static_cast<std::uint64_t>(kWarmupFrac * kMaxSimOps);
  std::uint64_t completed = 0;
  double measure_start_us = -1.0;
  double last_done_us = 0.0;
  double read_floor_us = 0.0;
  bool saw_read = false;

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    const std::size_t loop = ev.conn % loops;
    const double start = std::max(ev.time_us, busy_until[loop]);
    const double finish = start + service * op_service_scale(completed);
    busy_until[loop] = finish;
    const bool write = is_write(completed, workload.write_frac);
    const double acked = ack_time(finish, write, params.wave_interval_us);
    const double done = acked + rtt;
    ++completed;
    if (!write) {
      // Reads never park: their minimum is the service + rtt floor the
      // calibration fit uses to split wire time from service time.
      const double lat = done - (open ? ev.sched_us : ev.time_us);
      if (!saw_read || lat < read_floor_us) read_floor_us = lat;
      saw_read = true;
    }

    if (open) {
      latencies.push_back(done - ev.sched_us);
      last_done_us = std::max(last_done_us, done);
    } else {
      if (completed == warmup) measure_start_us = done;
      if (completed > warmup) {
        latencies.push_back(done - ev.time_us);
        last_done_us = std::max(last_done_us, done);
      }
      // Token returns: the client immediately issues the next request.
      if (completed + queue.size() < cap && done < horizon_us) {
        queue.push({done, done, ev.conn, issued++});
      }
    }
  }

  double span_us = 0.0;
  if (open) {
    // Open-loop throughput is measured over the span the ops actually
    // took; a saturated server stretches it beyond the offered timeline.
    span_us = last_done_us;
  } else {
    span_us = last_done_us - std::max(0.0, measure_start_us);
  }
  return summarize(latencies, span_us, read_floor_us);
}

double relative_error(double predicted, double measured) {
  if (measured == 0.0) return predicted == 0.0 ? 0.0 : 1.0;
  return std::fabs(predicted - measured) / std::fabs(measured);
}

ServingParams calibrate(const ServingMeasurement& measured,
                        std::size_t loops, double wave_interval_us) {
  ServingParams params;
  params.loops = std::max<std::size_t>(1, loops);
  params.wave_interval_us = wave_interval_us;
  params.base_rtt_us = 0.0;

  // Initial guess: the serving plane is `loops`-wide, so aggregate
  // capacity ~ loops / service_us.
  const double measured_tput = std::max(1.0, measured.throughput_ops_s);
  params.service_us =
      static_cast<double>(params.loops) * 1e6 / measured_tput;

  for (int round = 0; round < 3; ++round) {
    // Bisect service_us: closed-loop throughput is strictly decreasing in
    // it, so the root is bracketed by [tiny, huge].
    double lo = 1e-3;
    double hi = std::max(1.0, params.service_us * 64.0);
    for (int it = 0; it < 40; ++it) {
      params.service_us = 0.5 * (lo + hi);
      const ServingPrediction sim =
          simulate_serving(params, measured.workload);
      if (sim.throughput_ops_s > measured.throughput_ops_s) {
        lo = params.service_us;  // too fast: slow the stations down
      } else {
        hi = params.service_us;
      }
    }
    params.service_us = 0.5 * (lo + hi);

    if (measured.read_floor_us > 0.0) {
      // The idle-path read floor is service + rtt (saturated-closed-loop
      // percentiles are rtt-invariant, so this is the only split signal).
      params.base_rtt_us =
          std::max(0.0, measured.read_floor_us - params.service_us);
    } else {
      // Fallback: every simulated latency contains base_rtt_us
      // additively, so the p50 residual shifts toward the measurement.
      const ServingPrediction sim =
          simulate_serving(params, measured.workload);
      const double residual = measured.p50_us - sim.p50_us;
      params.base_rtt_us = std::max(0.0, params.base_rtt_us + residual);
    }
  }
  return params;
}

}  // namespace pax::model
