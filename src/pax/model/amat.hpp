// Average Memory Access Time model (Figure 2a).
//
// The paper's §5 "AMAT estimates" combine measured per-level miss rates with
// per-medium access latencies:
//
//   AMAT = t_L1 + m1·( t_L2 + m2·( t_LLC + m3·( t_media + t_interposition )))
//
// where m_i are local miss rates of each level and t_interposition is the
// extra round trip an LLC miss pays when the line is homed at an accelerator
// (0 for host-attached DRAM/PM, ~70 ns for a CXL device, several hundred ns
// for the Enzian prototype, >1 µs for a page-fault trap — simtime/latency.hpp
// collects the sources).
#pragma once

#include "pax/coherence/host_cache.hpp"
#include "pax/simtime/latency.hpp"

namespace pax::model {

struct AmatBreakdown {
  double amat_ns = 0;
  double l1_ns = 0;     // contribution of the L1 hit time
  double l2_ns = 0;     // contribution of L2 accesses
  double llc_ns = 0;    // contribution of LLC accesses
  double memory_ns = 0; // contribution of misses to media (+ interposition)
  double m1 = 0, m2 = 0, m3 = 0;        // local miss rates
  double misses_per_access = 0;         // global LLC-miss rate
};

/// Media selection for the memory term.
enum class Media { kDram, kPm };

/// Computes the AMAT breakdown for measured cache statistics under a given
/// media latency and interposition cost.
AmatBreakdown compute_amat(const coherence::HostCacheStats& stats,
                           const simtime::MemoryLatency& lat, Media media,
                           const simtime::InterconnectLatency& interposition);

/// The four bars of Figure 2a, in paper order.
struct Fig2aRow {
  const char* label;
  AmatBreakdown amat;
};
std::vector<Fig2aRow> fig2a_rows(const coherence::HostCacheStats& stats,
                                 const simtime::MemoryLatency& lat);

}  // namespace pax::model
