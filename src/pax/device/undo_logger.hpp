// The device's asynchronous undo logger (Figure 1, "Undo Logger").
//
// Whenever the host signals intent to modify a cache line (the first time in
// an epoch), the logger captures the line's epoch-boundary pre-image into an
// epoch-tagged undo record. Records are *staged* immediately but become
// durable lazily: the write-back coordinator flushes the log in batches off
// the application's critical path (§3.2), and data-line write-back is gated
// on each record's end offset falling below the durable watermark (§3.3).
//
// Threading (striped device): all mutating entry points (log_line, flush,
// reset_after_commit) must be serialized by the caller — the PaxDevice holds
// its log mutex around them. The watermarks (staged(), durable(),
// is_durable()) are published through atomics so the striped data path can
// gate write-backs without touching the log mutex.
//
// ── Lock-free append ring (optional) ───────────────────────────────────────
//
// With enable_ring(), the hot-path append entry points (ring_append /
// ring_append_batch) bypass the log mutex entirely: producers reserve a
// ticket with one fetch_add, wait for their pre-framed slot to free, fill
// it, and publish it with a per-slot release store (a Vyukov-style bounded
// MPMC ring). Because every ring record is a fixed-size LineUndoPayload
// frame and all appends in ring mode flow through the ring, ticket t's
// record *end offset* is known at reservation time: (t + 1) × frame — so
// producers get back the same durability watermark the mutex path returns,
// without serializing. A single consumer (drain_ring, serialized by an
// internal leaf mutex) later replays published slots into the LogWriter in
// ticket order, checking that each precomputed end matches the real append
// cursor. flush() drains before flushing, so the durable watermark still
// only ever covers records that are physically in the extent.
//
// Out-of-space: a reservation whose end exceeds the extent publishes its
// slot as *aborted* (the consumer skips it) and returns kOutOfSpace.
// Capacity is monotone in the ticket, so aborted slots always form a suffix
// until reset_after_commit() — no live record's precomputed end can drift.
//
// Memory ordering: the producer's release store of slot.seq = ticket + 1
// publishes the filled payload; the consumer's acquire load of seq pairs
// with it; the consumer's release store of seq = ticket + slots frees the
// slot for the next generation, paired with the next producer's acquire
// wait. A producer that finds the ring full (consumer lagging) self-drains
// under the leaf mutex instead of spinning unboundedly.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/wal/wal.hpp"

namespace pax::device {

struct UndoLoggerStats {
  std::uint64_t records = 0;
  std::uint64_t bytes_staged = 0;
  std::uint64_t flushes = 0;
  std::uint64_t group_appends = 0;   // batched log_lines() calls
  std::uint64_t ring_appends = 0;    // records staged via the lock-free ring
  std::uint64_t ring_full_stalls = 0;  // producer waits for a free slot
  std::uint64_t ring_aborts = 0;     // reservations past extent capacity
};

class UndoLogger {
 public:
  UndoLogger(pmem::PmemDevice* device, PoolOffset extent_offset,
             std::size_t extent_size)
      : writer_(device, extent_offset, extent_size),
        pm_(device),
        id_(extent_offset) {}

  /// Stable identifier for PaxCheck events (the extent offset — unique per
  /// bank within a pool).
  std::uint64_t id() const { return id_; }

  /// Stages an undo record holding `old_data`, the pre-image of `line` at
  /// the current epoch boundary. Returns the record end offset (the
  /// watermark write-back of the new data must wait for). Caller must hold
  /// the device's log mutex.
  Result<std::uint64_t> log_line(Epoch epoch, LineIndex line,
                                 const LineData& old_data);

  /// Batched variant: stages one undo record per (line, pre-image) pair in
  /// a single framing pass with one backing store (wal append_batch), so a
  /// whole stripe group costs one log-mutex hold instead of one per line.
  /// All-or-nothing on kOutOfSpace. Per-record end offsets are appended to
  /// `ends_out` in input order. Caller must hold the device's log mutex.
  Status log_lines(Epoch epoch,
                   std::span<const std::pair<LineIndex, LineData>> items,
                   std::vector<std::uint64_t>* ends_out);

  /// Makes all staged records durable. Caller must hold the log mutex.
  /// In ring mode this first drains every published ring slot into the
  /// writer, so the durable watermark covers them too.
  void flush();

  // --- Lock-free append ring ----------------------------------------------

  /// Switches the append hot path to the MPMC ring (`slots` is rounded up
  /// to a power of two, minimum 2). Must be called before any append and at
  /// most once. While the ring is enabled, ALL line-undo appends must go
  /// through ring_append/ring_append_batch — mixing in log_line/log_lines
  /// would corrupt the precomputed end offsets.
  void enable_ring(std::size_t slots);
  bool ring_enabled() const { return ring_ != nullptr; }

  /// Lock-free equivalent of log_line: reserves a ticket, publishes the
  /// pre-framed record into the ring, and returns its (precomputed) end
  /// offset. Callers need NOT hold the log mutex. kOutOfSpace when the
  /// reservation exceeds the extent.
  Result<std::uint64_t> ring_append(Epoch epoch, LineIndex line,
                                    const LineData& old_data);

  /// Lock-free equivalent of log_lines: one ticket reservation covers the
  /// whole batch; per-record end offsets are appended to `ends_out` in
  /// input order. All-or-nothing on kOutOfSpace (the whole batch's slots
  /// are published aborted). Callers need NOT hold the log mutex.
  Status ring_append_batch(Epoch epoch,
                           std::span<const std::pair<LineIndex, LineData>> items,
                           std::vector<std::uint64_t>* ends_out);

  /// Replays every published ring slot into the LogWriter in ticket order
  /// (serialized on an internal leaf mutex — safe from any thread).
  void drain_ring();

  /// Lock-free ring counter reads (safe concurrently with producers).
  std::uint64_t ring_appends() const {
    return ring_append_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t ring_full_stalls() const {
    return ring_stall_count_.load(std::memory_order_relaxed);
  }

  /// Lock-free watermark reads (safe concurrently with log_line/flush).
  /// In ring mode, staged() reports reserved ring bytes (records may still
  /// be in slots, not yet replayed into the writer).
  std::uint64_t staged() const {
    if (ring_enabled()) {
      const std::uint64_t reserved =
          ring_tickets_.load(std::memory_order_acquire) * kRingFrame;
      return std::min<std::uint64_t>(reserved, writer_.extent_size());
    }
    return staged_.load(std::memory_order_acquire);
  }
  std::uint64_t durable() const {
    return durable_.load(std::memory_order_acquire);
  }

  /// True if `record_end` (a value returned by log_line) is durable.
  bool is_durable(std::uint64_t record_end) const {
    return record_end <= durable();
  }

  /// Restarts the log after an epoch commit made all records stale. Caller
  /// must hold the log mutex AND have quiesced the data path (no write-back
  /// may be gating on a record of this bank).
  void reset_after_commit();

  /// Caller must hold the log mutex (the non-atomic fields are mutated by
  /// appends and the ring drain); the ring counters are folded in from
  /// atomics.
  UndoLoggerStats stats() const {
    UndoLoggerStats s = stats_;
    s.ring_appends = ring_append_count_.load(std::memory_order_relaxed);
    s.ring_full_stalls = ring_stall_count_.load(std::memory_order_relaxed);
    s.ring_aborts = ring_abort_count_.load(std::memory_order_relaxed);
    return s;
  }
  std::size_t extent_size() const { return writer_.extent_size(); }

 private:
  // Every ring record is a line-undo frame of this fixed size — the basis
  // for precomputing end offsets at reservation time.
  static constexpr std::uint64_t kRingFrame =
      wal::record_frame_size(sizeof(wal::LineUndoPayload));

  // One pre-framed record slot. seq drives the Vyukov protocol: == ticket
  // means free for that ticket's producer; == ticket + 1 means published;
  // == ticket + ring_slots_ means consumed (free for the next generation).
  struct alignas(64) RingSlot {
    std::atomic<std::uint64_t> seq{0};
    Epoch epoch = 0;
    std::uint64_t line = 0;
    std::uint64_t end = 0;
    bool aborted = false;
    LineData old_data{};
  };

  // Waits for ticket's slot, fills it, and publishes it.
  void fill_and_publish(std::uint64_t ticket, Epoch epoch, LineIndex line,
                        const LineData& old_data, std::uint64_t end,
                        bool aborted);
  // Caller holds ring_drain_mu_.
  void drain_ring_locked();

  wal::LogWriter writer_;
  pmem::PmemDevice* pm_;
  std::uint64_t id_;
  std::atomic<std::uint64_t> staged_{0};
  std::atomic<std::uint64_t> durable_{0};
  UndoLoggerStats stats_;

  // Ring state. ring_ is null until enable_ring(). The drain mutex is a
  // LEAF: it is taken with the device's log mutex and/or a stripe mutex
  // held (producer self-drain), and nothing is acquired under it.
  std::unique_ptr<RingSlot[]> ring_;
  std::uint64_t ring_slots_ = 0;
  std::uint64_t ring_mask_ = 0;
  std::atomic<std::uint64_t> ring_tickets_{0};  // next ticket to hand out
  std::mutex ring_drain_mu_;
  std::uint64_t ring_consumed_ = 0;  // next ticket to consume; under drain mu
  std::atomic<std::uint64_t> ring_append_count_{0};
  std::atomic<std::uint64_t> ring_stall_count_{0};
  std::atomic<std::uint64_t> ring_abort_count_{0};
};

}  // namespace pax::device
