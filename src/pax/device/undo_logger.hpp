// The device's asynchronous undo logger (Figure 1, "Undo Logger").
//
// Whenever the host signals intent to modify a cache line (the first time in
// an epoch), the logger captures the line's epoch-boundary pre-image into an
// epoch-tagged undo record. Records are *staged* immediately but become
// durable lazily: the write-back coordinator flushes the log in batches off
// the application's critical path (§3.2), and data-line write-back is gated
// on each record's end offset falling below the durable watermark (§3.3).
//
// Threading (striped device): all mutating entry points (log_line, flush,
// reset_after_commit) must be serialized by the caller — the PaxDevice holds
// its log mutex around them. The watermarks (staged(), durable(),
// is_durable()) are published through atomics so the striped data path can
// gate write-backs without touching the log mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/wal/wal.hpp"

namespace pax::device {

struct UndoLoggerStats {
  std::uint64_t records = 0;
  std::uint64_t bytes_staged = 0;
  std::uint64_t flushes = 0;
  std::uint64_t group_appends = 0;  // batched log_lines() calls
};

class UndoLogger {
 public:
  UndoLogger(pmem::PmemDevice* device, PoolOffset extent_offset,
             std::size_t extent_size)
      : writer_(device, extent_offset, extent_size),
        pm_(device),
        id_(extent_offset) {}

  /// Stable identifier for PaxCheck events (the extent offset — unique per
  /// bank within a pool).
  std::uint64_t id() const { return id_; }

  /// Stages an undo record holding `old_data`, the pre-image of `line` at
  /// the current epoch boundary. Returns the record end offset (the
  /// watermark write-back of the new data must wait for). Caller must hold
  /// the device's log mutex.
  Result<std::uint64_t> log_line(Epoch epoch, LineIndex line,
                                 const LineData& old_data);

  /// Batched variant: stages one undo record per (line, pre-image) pair in
  /// a single framing pass with one backing store (wal append_batch), so a
  /// whole stripe group costs one log-mutex hold instead of one per line.
  /// All-or-nothing on kOutOfSpace. Per-record end offsets are appended to
  /// `ends_out` in input order. Caller must hold the device's log mutex.
  Status log_lines(Epoch epoch,
                   std::span<const std::pair<LineIndex, LineData>> items,
                   std::vector<std::uint64_t>* ends_out);

  /// Makes all staged records durable. Caller must hold the log mutex.
  void flush();

  /// Lock-free watermark reads (safe concurrently with log_line/flush).
  std::uint64_t staged() const {
    return staged_.load(std::memory_order_acquire);
  }
  std::uint64_t durable() const {
    return durable_.load(std::memory_order_acquire);
  }

  /// True if `record_end` (a value returned by log_line) is durable.
  bool is_durable(std::uint64_t record_end) const {
    return record_end <= durable();
  }

  /// Restarts the log after an epoch commit made all records stale. Caller
  /// must hold the log mutex AND have quiesced the data path (no write-back
  /// may be gating on a record of this bank).
  void reset_after_commit();

  const UndoLoggerStats& stats() const { return stats_; }
  std::size_t extent_size() const { return writer_.extent_size(); }

 private:
  wal::LogWriter writer_;
  pmem::PmemDevice* pm_;
  std::uint64_t id_;
  std::atomic<std::uint64_t> staged_{0};
  std::atomic<std::uint64_t> durable_{0};
  UndoLoggerStats stats_;
};

}  // namespace pax::device
