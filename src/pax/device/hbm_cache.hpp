// The PAX device's on-board HBM buffer (Figure 1, "HBM Cache").
//
// It plays both roles the paper gives it: a read cache of PM lines, and the
// buffer of host-modified lines awaiting write-back. Entries are organized
// set-associatively with per-set LRU. The eviction policy is the one §3.3
// describes: prefer clean victims, then dirty victims whose undo-log record
// is already durable (they can be written back without waiting), and only
// as a last resort a dirty victim whose record still needs a log flush —
// the "stall" case the device tries to minimize. A pure-LRU mode exists for
// the eviction-policy ablation (Abl 5 in DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "pax/common/types.hpp"

namespace pax::device {

/// How the victim is ordered within a set. Orthogonal to the §3.3
/// durability preference (which picks the *class* of victim).
enum class Replacement {
  kLru,    // exact recency order (timestamp per entry)
  kClock,  // second-chance: one ref bit per entry, cheaper in hardware —
           // what an FPGA implementation would actually build
};

struct HbmConfig {
  std::size_t capacity_lines = 4096;
  unsigned ways = 8;
  /// §3.3 durability-aware policy on; false = ignore durability (ablation).
  bool prefer_durable_eviction = true;
  Replacement replacement = Replacement::kLru;
};

struct HbmStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t clean_evictions = 0;
  std::uint64_t durable_dirty_evictions = 0;  // record already durable
  std::uint64_t stall_evictions = 0;          // record needed a forced flush
};

/// Aggregation across the striped device's per-stripe caches.
inline HbmStats& operator+=(HbmStats& a, const HbmStats& b) {
  a.hits += b.hits;
  a.misses += b.misses;
  a.insertions += b.insertions;
  a.evictions += b.evictions;
  a.clean_evictions += b.clean_evictions;
  a.durable_dirty_evictions += b.durable_dirty_evictions;
  a.stall_evictions += b.stall_evictions;
  return a;
}

/// A line leaving the buffer; the device decides what to do with it.
struct EvictedLine {
  LineIndex line;
  LineData data;
  bool dirty = false;
  std::uint64_t log_record_end = 0;  // durability watermark of its undo record
};

class HbmCache {
 public:
  explicit HbmCache(const HbmConfig& config);

  /// Looks a line up; refreshes LRU on hit.
  std::optional<LineData> lookup(LineIndex line);

  /// True if the line is present and dirty.
  bool is_dirty(LineIndex line) const;

  /// Inserts or updates a line. `durable_log_offset` is the log's current
  /// durability watermark, used by victim selection. Returns the evicted
  /// line if the target set was full with other lines.
  std::optional<EvictedLine> insert(LineIndex line, const LineData& data,
                                    bool dirty, std::uint64_t log_record_end,
                                    std::uint64_t durable_log_offset);

  /// Marks a buffered line clean (after the device wrote it back to PM).
  void mark_clean(LineIndex line);

  /// If the line is buffered, replaces its contents with `data` and marks it
  /// clean (used when a persist() pull observed a newer host copy). No-op if
  /// absent — never allocates a way.
  void update_if_present(LineIndex line, const LineData& data);

  /// Marks every buffered line clean (epoch boundary: persist() wrote
  /// everything back).
  void mark_all_clean();

  void remove(LineIndex line);

  /// Invokes `fn` on each dirty entry (used by proactive write-back and by
  /// persist()).
  void for_each_dirty(
      const std::function<void(LineIndex, const LineData&, std::uint64_t)>&
          fn) const;

  std::size_t size() const { return live_; }
  std::size_t capacity() const { return sets_.size() * ways_; }
  const HbmStats& stats() const { return stats_; }

 private:
  struct Entry {
    bool valid = false;
    LineIndex line;
    LineData data;
    bool dirty = false;
    std::uint64_t log_record_end = 0;
    std::uint64_t lru_tick = 0;
    bool ref = false;  // CLOCK second-chance bit
  };
  struct Set {
    std::vector<Entry> ways;
    unsigned hand = 0;  // CLOCK hand
  };

  // Victim selection for each replacement scheme; returns the way index.
  unsigned pick_victim_lru(Set& set, std::uint64_t durable_log_offset) const;
  unsigned pick_victim_clock(Set& set, std::uint64_t durable_log_offset) const;

  Set& set_for(LineIndex line);
  const Set& set_for(LineIndex line) const;
  Entry* find(LineIndex line);
  const Entry* find(LineIndex line) const;

  unsigned ways_;
  bool prefer_durable_;
  Replacement replacement_;
  std::vector<Set> sets_;
  std::uint64_t tick_ = 0;
  std::size_t live_ = 0;
  mutable HbmStats stats_;
};

}  // namespace pax::device
