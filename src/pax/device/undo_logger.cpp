#include "pax/device/undo_logger.hpp"

#include <span>

namespace pax::device {

Result<std::uint64_t> UndoLogger::log_line(Epoch epoch, LineIndex line,
                                           const LineData& old_data) {
  wal::LineUndoPayload payload{};
  payload.line_index = line.value;
  payload.old_data = old_data;

  auto end = writer_.append(epoch, wal::RecordType::kLineUndo,
                            std::as_bytes(std::span(&payload, 1)));
  if (end.ok()) {
    ++stats_.records;
    stats_.bytes_staged += wal::record_frame_size(sizeof(payload));
    staged_.store(writer_.appended(), std::memory_order_release);
  }
  return end;
}

}  // namespace pax::device
