#include "pax/device/undo_logger.hpp"

#include <span>

#include "pax/check/checker.hpp"
#include "pax/pmem/pmem_device.hpp"

namespace pax::device {

Result<std::uint64_t> UndoLogger::log_line(Epoch epoch, LineIndex line,
                                           const LineData& old_data) {
  wal::LineUndoPayload payload{};
  payload.line_index = line.value;
  payload.old_data = old_data;

  auto end = writer_.append(epoch, wal::RecordType::kLineUndo,
                            std::as_bytes(std::span(&payload, 1)));
  if (end.ok()) {
    ++stats_.records;
    stats_.bytes_staged += wal::record_frame_size(sizeof(payload));
    staged_.store(writer_.appended(), std::memory_order_release);
    if (auto* chk = pm_->checker()) {
      chk->on_log_append(id_, line.value, end.value());
    }
  }
  return end;
}

Status UndoLogger::log_lines(
    Epoch epoch, std::span<const std::pair<LineIndex, LineData>> items,
    std::vector<std::uint64_t>* ends_out) {
  if (items.empty()) return Status::ok();

  std::vector<wal::LineUndoPayload> payloads(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    payloads[i].line_index = items[i].first.value;
    payloads[i].old_data = items[i].second;
  }
  auto end = writer_.append_batch(
      epoch, wal::RecordType::kLineUndo,
      std::as_bytes(std::span(payloads.data(), payloads.size())),
      sizeof(wal::LineUndoPayload), ends_out);
  if (!end.ok()) return end.status();

  stats_.records += items.size();
  stats_.bytes_staged +=
      items.size() * wal::record_frame_size(sizeof(wal::LineUndoPayload));
  ++stats_.group_appends;
  staged_.store(writer_.appended(), std::memory_order_release);
  if (auto* chk = pm_->checker()) {
    // append_batch appended our ends at the tail of ends_out (callers may
    // pass a partially-filled vector).
    const std::size_t base = ends_out->size() - items.size();
    for (std::size_t i = 0; i < items.size(); ++i) {
      chk->on_log_append(id_, items[i].first.value, (*ends_out)[base + i]);
    }
  }
  return Status::ok();
}

void UndoLogger::flush() {
  ++stats_.flushes;
  writer_.flush();
  // The checker sees the new watermark *before* it is published to the
  // write-back gate: any data-path thread whose gate check (acquire-load of
  // durable_) observes this flush emits its write-back with a larger seq.
  if (auto* chk = pm_->checker()) {
    chk->on_log_flush(id_, writer_.durable());
  }
  durable_.store(writer_.durable(), std::memory_order_release);
}

void UndoLogger::reset_after_commit() {
  writer_.reset();
  if (auto* chk = pm_->checker()) chk->on_log_reset(id_);
  staged_.store(0, std::memory_order_release);
  durable_.store(0, std::memory_order_release);
}

}  // namespace pax::device
