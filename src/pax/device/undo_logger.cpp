#include "pax/device/undo_logger.hpp"

#include <span>

namespace pax::device {

Result<std::uint64_t> UndoLogger::log_line(Epoch epoch, LineIndex line,
                                           const LineData& old_data) {
  wal::LineUndoPayload payload{};
  payload.line_index = line.value;
  payload.old_data = old_data;

  auto end = writer_.append(epoch, wal::RecordType::kLineUndo,
                            std::as_bytes(std::span(&payload, 1)));
  if (end.ok()) {
    ++stats_.records;
    stats_.bytes_staged += wal::record_frame_size(sizeof(payload));
    staged_.store(writer_.appended(), std::memory_order_release);
  }
  return end;
}

Status UndoLogger::log_lines(
    Epoch epoch, std::span<const std::pair<LineIndex, LineData>> items,
    std::vector<std::uint64_t>* ends_out) {
  if (items.empty()) return Status::ok();

  std::vector<wal::LineUndoPayload> payloads(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    payloads[i].line_index = items[i].first.value;
    payloads[i].old_data = items[i].second;
  }
  auto end = writer_.append_batch(
      epoch, wal::RecordType::kLineUndo,
      std::as_bytes(std::span(payloads.data(), payloads.size())),
      sizeof(wal::LineUndoPayload), ends_out);
  if (!end.ok()) return end.status();

  stats_.records += items.size();
  stats_.bytes_staged +=
      items.size() * wal::record_frame_size(sizeof(wal::LineUndoPayload));
  ++stats_.group_appends;
  staged_.store(writer_.appended(), std::memory_order_release);
  return Status::ok();
}

}  // namespace pax::device
