#include "pax/device/undo_logger.hpp"

#include <span>
#include <thread>

#include "pax/check/checker.hpp"
#include "pax/common/check.hpp"
#include "pax/pmem/pmem_device.hpp"

namespace pax::device {

Result<std::uint64_t> UndoLogger::log_line(Epoch epoch, LineIndex line,
                                           const LineData& old_data) {
  wal::LineUndoPayload payload{};
  payload.line_index = line.value;
  payload.old_data = old_data;

  auto end = writer_.append(epoch, wal::RecordType::kLineUndo,
                            std::as_bytes(std::span(&payload, 1)));
  if (end.ok()) {
    ++stats_.records;
    stats_.bytes_staged += wal::record_frame_size(sizeof(payload));
    staged_.store(writer_.appended(), std::memory_order_release);
    if (auto* chk = pm_->checker()) {
      chk->on_log_append(id_, line.value, end.value());
    }
  }
  return end;
}

Status UndoLogger::log_lines(
    Epoch epoch, std::span<const std::pair<LineIndex, LineData>> items,
    std::vector<std::uint64_t>* ends_out) {
  if (items.empty()) return Status::ok();

  std::vector<wal::LineUndoPayload> payloads(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    payloads[i].line_index = items[i].first.value;
    payloads[i].old_data = items[i].second;
  }
  auto end = writer_.append_batch(
      epoch, wal::RecordType::kLineUndo,
      std::as_bytes(std::span(payloads.data(), payloads.size())),
      sizeof(wal::LineUndoPayload), ends_out);
  if (!end.ok()) return end.status();

  stats_.records += items.size();
  stats_.bytes_staged +=
      items.size() * wal::record_frame_size(sizeof(wal::LineUndoPayload));
  ++stats_.group_appends;
  staged_.store(writer_.appended(), std::memory_order_release);
  if (auto* chk = pm_->checker()) {
    // append_batch appended our ends at the tail of ends_out (callers may
    // pass a partially-filled vector).
    const std::size_t base = ends_out->size() - items.size();
    for (std::size_t i = 0; i < items.size(); ++i) {
      chk->on_log_append(id_, items[i].first.value, (*ends_out)[base + i]);
    }
  }
  return Status::ok();
}

void UndoLogger::enable_ring(std::size_t slots) {
  PAX_CHECK_MSG(!ring_enabled(), "ring already enabled");
  PAX_CHECK_MSG(writer_.appended() == 0 && staged() == 0,
                "enable_ring must precede the first append");
  std::uint64_t n = 2;
  while (n < slots) n *= 2;
  ring_slots_ = n;
  ring_mask_ = n - 1;
  ring_ = std::make_unique<RingSlot[]>(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
}

void UndoLogger::fill_and_publish(std::uint64_t ticket, Epoch epoch,
                                  LineIndex line, const LineData& old_data,
                                  std::uint64_t end, bool aborted) {
  RingSlot& slot = ring_[ticket & ring_mask_];
  std::uint64_t spins = 0;
  while (slot.seq.load(std::memory_order_acquire) != ticket) {
    // Ring full: the consumer lags. Self-drain (the drain mutex is a leaf,
    // legal under a stripe mutex), then yield to whoever holds an earlier
    // unpublished ticket.
    if (spins++ == 0) {
      ring_stall_count_.fetch_add(1, std::memory_order_relaxed);
    }
    drain_ring();
    std::this_thread::yield();
  }
  slot.epoch = epoch;
  slot.line = line.value;
  slot.end = end;
  slot.aborted = aborted;
  if (!aborted) slot.old_data = old_data;
  slot.seq.store(ticket + 1, std::memory_order_release);
}

Result<std::uint64_t> UndoLogger::ring_append(Epoch epoch, LineIndex line,
                                              const LineData& old_data) {
  const std::uint64_t t =
      ring_tickets_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t end = (t + 1) * kRingFrame;
  if (end > writer_.extent_size()) {
    // Aborted slots must still publish so the consumer's contiguous scan
    // advances past them; capacity is monotone in the ticket, so every
    // later reservation aborts too (aborts form a suffix until reset).
    ring_abort_count_.fetch_add(1, std::memory_order_relaxed);
    fill_and_publish(t, epoch, line, old_data, end, /*aborted=*/true);
    return out_of_space("undo log extent full");
  }
  fill_and_publish(t, epoch, line, old_data, end, /*aborted=*/false);
  ring_append_count_.fetch_add(1, std::memory_order_relaxed);
  return end;
}

Status UndoLogger::ring_append_batch(
    Epoch epoch, std::span<const std::pair<LineIndex, LineData>> items,
    std::vector<std::uint64_t>* ends_out) {
  if (items.empty()) return Status::ok();
  const std::uint64_t t0 =
      ring_tickets_.fetch_add(items.size(), std::memory_order_relaxed);
  // All-or-nothing: if the last record of the batch doesn't fit, publish
  // the whole batch aborted (nothing reaches the writer).
  const bool fits = (t0 + items.size()) * kRingFrame <= writer_.extent_size();
  for (std::size_t i = 0; i < items.size(); ++i) {
    fill_and_publish(t0 + i, epoch, items[i].first, items[i].second,
                     (t0 + i + 1) * kRingFrame, /*aborted=*/!fits);
  }
  if (!fits) {
    ring_abort_count_.fetch_add(items.size(), std::memory_order_relaxed);
    return out_of_space("undo log extent full");
  }
  ring_append_count_.fetch_add(items.size(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < items.size(); ++i) {
    ends_out->push_back((t0 + i + 1) * kRingFrame);
  }
  return Status::ok();
}

void UndoLogger::drain_ring() {
  std::lock_guard<std::mutex> guard(ring_drain_mu_);
  drain_ring_locked();
}

void UndoLogger::drain_ring_locked() {
  for (;;) {
    RingSlot& slot = ring_[ring_consumed_ & ring_mask_];
    if (slot.seq.load(std::memory_order_acquire) != ring_consumed_ + 1) {
      return;  // next slot not yet published — stop at the contiguous edge
    }
    if (!slot.aborted) {
      wal::LineUndoPayload payload{};
      payload.line_index = slot.line;
      payload.old_data = slot.old_data;
      auto end = writer_.append(slot.epoch, wal::RecordType::kLineUndo,
                                std::as_bytes(std::span(&payload, 1)));
      PAX_CHECK_MSG(end.ok() && end.value() == slot.end,
                    "ring reservation diverged from the append cursor");
      ++stats_.records;
      stats_.bytes_staged += kRingFrame;
      staged_.store(writer_.appended(), std::memory_order_release);
      if (auto* chk = pm_->checker()) {
        chk->on_log_append(id_, slot.line, slot.end);
      }
    }
    slot.seq.store(ring_consumed_ + ring_slots_, std::memory_order_release);
    ++ring_consumed_;
  }
}

void UndoLogger::flush() {
  std::unique_lock<std::mutex> drain_guard(ring_drain_mu_, std::defer_lock);
  if (ring_enabled()) {
    // Drain-then-flush under the drain mutex: the durable watermark may
    // only cover records physically replayed into the extent, and the
    // checker must see their appends before this flush.
    drain_guard.lock();
    drain_ring_locked();
  }
  ++stats_.flushes;
  writer_.flush();
  // The checker sees the new watermark *before* it is published to the
  // write-back gate: any data-path thread whose gate check (acquire-load of
  // durable_) observes this flush emits its write-back with a larger seq.
  if (auto* chk = pm_->checker()) {
    chk->on_log_flush(id_, writer_.durable());
  }
  durable_.store(writer_.durable(), std::memory_order_release);
}

void UndoLogger::reset_after_commit() {
  if (ring_enabled()) {
    // Caller quiesced the data path (exclusive epoch lock): no producer
    // holds an unpublished ticket. Replay any published leftovers (stale
    // under the just-committed epoch cell, but keeps the cursors honest),
    // then rewind the ring with the writer.
    std::lock_guard<std::mutex> guard(ring_drain_mu_);
    drain_ring_locked();
    ring_tickets_.store(0, std::memory_order_relaxed);
    ring_consumed_ = 0;
    for (std::uint64_t i = 0; i < ring_slots_; ++i) {
      ring_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
  writer_.reset();
  if (auto* chk = pm_->checker()) chk->on_log_reset(id_);
  staged_.store(0, std::memory_order_release);
  durable_.store(0, std::memory_order_release);
}

}  // namespace pax::device
