// The PAX device model: the paper's core contribution (§3, Figure 1).
//
// The device is the coherence home of the vPM region. Frontends (the
// CXL.cache host-cache simulator in pax/coherence, or the paging frontend in
// pax/libpax — the paper's §5.1 hybrid) translate host activity into three
// data-path entry points:
//
//   read_line()       RdShared  — serve a host load miss (HBM cache, then PM)
//   write_intent()    RdOwn     — host will modify the line; the device
//                                 captures the epoch-boundary pre-image into
//                                 the asynchronous undo log (§3.2)
//   writeback_line()  DirtyEvict — host evicted a modified line; the device
//                                 buffers it, writing it back to PM as soon
//                                 as (and only once) its undo record is
//                                 durable (§3.3)
//
// Batch-oriented frontends (the libpax paging frontend's host sync path)
// use the fused equivalents instead: peek_lines() reads device views with
// one stripe-mutex hold per stripe per call, and sync_lines() performs
// write_intent + writeback_line for a whole batch — grouped by stripe, the
// group's undo records appended under a single log-mutex acquisition.
//
// tick() runs the write-back coordinator: batch log flushes plus proactive
// write-back of buffered dirty lines, which is what keeps the per-epoch
// working set unbounded by buffer capacity.
//
// persist() executes the paper's epoch-commit protocol: flush the undo log,
// pull the current value of every line modified this epoch from the host
// (the CXL RdShared downgrade — the pull callback must also strip the host
// of exclusive ownership so next-epoch stores are observed again), write
// everything back to PM, fence, then atomically commit the epoch cell.
//
// Non-blocking persist (§6 "we believe it may be possible to make persist()
// fully non-blocking, so that epochs overlap"): the undo-log extent is split
// into two *banks*. seal_epoch() pulls the host's current values for the
// epoch's lines (revoking ownership), freezes the epoch's undo set, and
// switches new mutations onto the other bank — the application continues
// immediately. commit_sealed() later completes the durable work (log flush,
// write-back, epoch-cell commit) off the critical path. Correctness under
// overlap rests on the same gating invariant as everything else: a line's
// newer (active-epoch) value may reach PM during the sealed commit, but only
// after the active epoch's undo record for it is durable, so recovery always
// lands exactly on a committed snapshot. Recovery scans both banks and
// applies uncommitted records newest-epoch-first.
//
// ── Threading model (the striped data path) ────────────────────────────────
//
// Device state is partitioned into `DeviceConfig::stripes` stripes by
// LineIndex (stripe = line & (stripes - 1)). Each stripe owns its slice of
// the HBM buffer, its epoch-modified and sealed-modified sets, and its
// data-path statistics, all behind its own mutex — read_line / write_intent /
// writeback_line / mem_write on lines of different stripes proceed fully in
// parallel. Three device-wide pieces remain shared:
//
//   * epoch_mu_ (a shared_mutex): the data path holds it shared; persist /
//     seal_epoch / commit_sealed hold it exclusive. Epoch number, active log
//     bank, and the sealed flag only change under the exclusive side, so the
//     data path reads them without further synchronization.
//   * log_mu_: the two undo-log banks are inherently ordered append-only
//     structures; records from all stripes are appended under this short
//     log-only mutex. Durability gating never takes it — the loggers publish
//     their staged/durable watermarks through atomics.
//   * the PM device itself, which is internally line-sharded.
//
// LOCK ORDER (never acquire in the reverse direction):
//   epoch_mu_ (shared or exclusive)  →  stripe mutex  →  log_mu_
// At most one stripe mutex is held at a time.
//
// persist()/seal_epoch()/commit_sealed() run a two-phase protocol: phase one
// fans the per-stripe work (host pulls, PM write-back of the stripe's logged
// lines) across a pool of `persist_workers` threads, one stripe per worker
// at a time; phase two — log flush, fence, epoch-cell commit — is a single
// serialized tail. The pull callback is invoked under an internal mutex
// (pull_mu_), one call at a time, so frontends need not be thread-safe to be
// pulled from the fan-out.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "pax/check/checker.hpp"
#include "pax/common/status.hpp"
#include "pax/common/thread_pool.hpp"
#include "pax/common/types.hpp"
#include "pax/device/hbm_cache.hpp"
#include "pax/device/undo_logger.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::device {

/// One host-modified line handed to the batched sync path: the host's
/// current value of `line`, to be undo-logged (first touch this epoch) and
/// buffered for write-back — write_intent + writeback_line fused.
struct LineUpdate {
  LineIndex line;
  LineData data;
};

struct DeviceConfig {
  HbmConfig hbm;
  /// Write buffered dirty lines back to PM during tick() once their undo
  /// records are durable (§3.3). Off = write-back only at persist().
  bool proactive_writeback = true;
  /// tick() flushes the log when this many staged-but-volatile bytes
  /// accumulate (group flushing keeps "async" cheap).
  std::size_t log_flush_batch_bytes = 4096;
  /// Number of data-path stripes (power of two; rounded down otherwise).
  /// The effective count is additionally capped so every stripe keeps at
  /// least one full HBM set (capacity_lines / ways); stripes = 1 reproduces
  /// the old single-lock device.
  unsigned stripes = 16;
  /// Worker threads for the fan-out phase of persist()/seal_epoch()/
  /// commit_sealed(). 1 = run the fan-out inline (no extra threads).
  unsigned persist_workers = 4;
  /// Fan out only when the epoch modified at least this many lines; tiny
  /// epochs aren't worth the thread hand-off.
  std::size_t persist_fanout_min_lines = 64;
  /// > 0 enables the lock-free undo-append ring (that many slots per log
  /// bank, rounded up to a power of two): hot-path appends reserve
  /// pre-framed ring slots with a fetch_add ticket instead of taking the
  /// log mutex; the flusher drains the ring. 0 = mutex append path.
  std::size_t log_ring_slots = 0;

  static DeviceConfig defaults() { return DeviceConfig{}; }
};

/// Per-stripe snapshot for contention-aware frontends (the libpax
/// SyncTuner) and operator tooling. Lock counters are sampled lock-free
/// from atomics; the rest is read under the stripe mutex.
struct StripeStats {
  unsigned stripe = 0;
  std::uint64_t write_intents = 0;
  std::uint64_t host_writebacks = 0;
  std::uint64_t pm_writeback_lines = 0;
  /// Distinct lines undo-logged on this stripe in the current epoch.
  std::uint64_t epoch_logged_lines = 0;
  /// Stripe-mutex acquisitions by the data path, and how many of those
  /// found the mutex already held (try_lock failed first). contended /
  /// acquisitions is the contention ratio the SyncTuner sheds workers on.
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contended = 0;
};

struct DeviceStats {
  std::uint64_t read_reqs = 0;
  std::uint64_t read_hbm_hits = 0;
  std::uint64_t read_pm = 0;
  std::uint64_t write_intents = 0;        // RdOwn messages observed
  std::uint64_t first_touch_logs = 0;     // undo records actually created
  std::uint64_t host_writebacks = 0;      // DirtyEvict messages observed
  std::uint64_t mem_writes = 0;           // CXL.mem MemWr messages observed
  std::uint64_t pm_writeback_lines = 0;   // lines written to PM media path
  std::uint64_t proactive_writebacks = 0; // ... of which before persist()
  std::uint64_t forced_log_flushes = 0;   // stalls: eviction beat the flusher
  std::uint64_t persists = 0;
  std::uint64_t persist_pulls = 0;        // RdShared pulls issued at persist
  std::uint64_t epoch_seals = 0;          // §6 non-blocking persist: seals
  std::uint64_t async_commits = 0;        // ... and their completions
  std::uint64_t batch_syncs = 0;          // sync_lines() invocations
  std::uint64_t batch_synced_lines = 0;   // lines carried by those batches
  std::uint64_t log_append_acquisitions = 0;  // log-mutex holds for appends
  std::uint64_t log_ring_appends = 0;     // records staged via the ring
  std::uint64_t log_ring_stalls = 0;      // ring-full producer waits
  std::uint64_t sync_deferred_groups = 0; // sync_lines try-lock misses that
                                          // went to the overflow ring
};

class PaxDevice {
 public:
  /// The device homes the pool's data extent and logs into its log extent.
  /// The epoch resumes from the pool's committed epoch cell (callers run
  /// recovery first; see device/recovery.hpp).
  PaxDevice(pmem::PmemPool* pool, const DeviceConfig& config);

  // --- Data path (called by frontends; thread-safe) ----------------------

  /// Serves a host load miss. `line` is an absolute pool line index inside
  /// the data extent.
  LineData read_line(LineIndex line);

  /// Notes host intent to modify `line`; performs first-touch-per-epoch
  /// undo logging. Fails with kOutOfSpace when the log extent is full (the
  /// application must persist() more often or size the extent larger).
  Status write_intent(LineIndex line);

  /// Accepts a modified line evicted from host caches. The host must have
  /// announced the modification via write_intent() first.
  void writeback_line(LineIndex line, const LineData& data);

  /// Device-internal view of a line (buffer over PM) without stats or cache
  /// fill. The paging frontend uses this to diff dirty pages at cache-line
  /// granularity (§5.1 hybrid).
  LineData peek_line(LineIndex line);

  /// Batched peek: fills out[i] with the device view of lines[i]. Groups
  /// the lines by stripe and acquires each stripe mutex once per call
  /// instead of once per line — the cheap half of the batched host sync
  /// path (the paging frontend peeks a whole page per call when diffing).
  void peek_lines(std::span<const LineIndex> lines,
                  std::span<LineData> out);

  /// Batched host sync: write_intent + writeback_line fused, amortized
  /// across a batch. Updates are grouped by stripe; groups are served
  /// try-lock-first (a contended stripe is deferred to a per-call overflow
  /// ring and retried after every free stripe has been served, so workers
  /// don't park behind a peer mid-batch). Each group takes its stripe
  /// mutex once, undo-logs all of its first-touch lines under a single
  /// log-mutex acquisition (one framing pass, one backing store —
  /// UndoLogger::log_lines) — or, with log_ring_slots > 0, via the
  /// lock-free append ring with no log-mutex acquisition at all — then
  /// buffers every update's data for write-back. Equivalent, line for
  /// line, to calling write_intent(line)
  /// followed by writeback_line(line, data) for each update, including all
  /// stats except the per-call counters. kOutOfSpace fails a whole stripe
  /// group atomically (no partial group is logged or buffered); groups
  /// already applied stay applied, exactly like the per-line path failing
  /// midway. Updates in one batch should name distinct lines — a duplicate
  /// costs a redundant (harmless) undo record.
  Status sync_lines(std::span<const LineUpdate> updates);

  /// Reads `line` as of the most recently *committed* snapshot, even while
  /// the current (and a sealed) epoch are mutating it — a consistent
  /// time-travel read, free because the undo log already holds every
  /// modified line's committed pre-image:
  ///   * line logged in the sealed epoch → that record's pre-image is the
  ///     last committed value;
  ///   * else logged in the active epoch → its pre-image was captured at
  ///     the last boundary (seal or commit), which equals the committed
  ///     value when the line wasn't also sealed;
  ///   * else unmodified since the last commit → the device view is it.
  /// Readers get snapshot isolation without quiescing writers (§6's "new
  /// lens" on coherence-visible state).
  LineData read_committed_line(LineIndex line);

  /// Ranged batch of read_committed_line: fills out[i] with the committed
  /// view of line `first + i`, acquiring each stripe mutex once for the
  /// whole range instead of once per line (read_snapshot's fast path).
  void read_committed_lines(LineIndex first, std::span<LineData> out);

  /// CXL.mem write path (§6: ".mem can support basic functionality, but it
  /// does not have as much visibility into coherence as .cache"). A memory
  /// expander sees no ownership requests and cannot snoop: the device
  /// learns of a modification only when the dirty line arrives (MemWr).
  /// The pre-image is captured then — the incoming data has not yet been
  /// applied, so the device view still holds the epoch-boundary value.
  /// persist() in .mem mode needs the *host* to have flushed every dirty
  /// line first (a CLWB sweep), because the device cannot pull.
  Status mem_write(LineIndex line, const LineData& data);

  // --- Write-back coordinator -------------------------------------------

  /// One unit of background work: flush the log if the staged batch is big
  /// enough (or `force_flush`), then proactively write back durable-logged
  /// dirty lines, visiting the stripes round-robin (concurrent tick()s
  /// start at different stripes and interleave with the data path
  /// stripe-by-stripe).
  void tick(bool force_flush = false);

  // --- Epoch commit ------------------------------------------------------

  /// Fetches the host's current copy of a line and revokes host exclusive
  /// ownership (CXL RdShared). Returns nullopt if the host no longer caches
  /// the line. Invoked one call at a time (under the device's pull mutex)
  /// even when the commit fan-out runs on several workers, so it need not
  /// be thread-safe — but it must NOT block on locks held by threads that
  /// are executing device data-path calls, or persist deadlocks.
  using PullFn = std::function<std::optional<LineData>(LineIndex)>;

  /// Commits the current epoch as a crash-consistent snapshot and starts
  /// the next one. Returns the committed epoch number. If an epoch is
  /// sealed but not yet committed, it is committed first.
  Result<Epoch> persist(const PullFn& pull);

  // --- Non-blocking persist (§6 extension) --------------------------------

  /// Freezes the current epoch for asynchronous commit: pulls the host's
  /// current copies of its modified lines (revoking exclusivity), moves new
  /// mutations onto the other log bank, and returns the sealed epoch
  /// number. The caller regains control without waiting for any
  /// persistence work. At most one epoch may be sealed at a time: callers
  /// must commit_sealed() (or persist()) before sealing again.
  Result<Epoch> seal_epoch(const PullFn& pull);

  /// Completes the sealed epoch's durable work: flushes the logs, writes
  /// the sealed lines back to PM, fences, and commits the epoch cell.
  /// No-op returning the last committed epoch if nothing is sealed.
  Result<Epoch> commit_sealed();

  bool has_sealed_epoch() const;

  // --- Commit hook (replication, §6) --------------------------------------

  /// Called after every epoch commit (sync or sealed) with the committed
  /// epoch number and the final values of every line that epoch modified.
  /// Used by the replication extension (device/replication.hpp) to ship
  /// epochs to a backup. Invoked with the epoch lock held exclusively (the
  /// whole data path is quiesced): keep it short or enqueue.
  using CommitHook = std::function<void(
      Epoch, const std::vector<std::pair<LineIndex, LineData>>&)>;
  void set_commit_hook(CommitHook hook);

  /// Epoch currently accumulating modifications ( = last committed + 1).
  Epoch current_epoch() const;

  /// Number of distinct lines undo-logged in the current epoch.
  std::size_t epoch_logged_lines() const;

  /// Bytes currently occupied in the undo-log extent (resets at each epoch
  /// commit) — the live footprint a crash would have to roll back.
  std::uint64_t log_bytes_in_use() const;

  /// Effective stripe count (after power-of-two rounding and the HBM
  /// geometry cap).
  unsigned stripe_count() const {
    return static_cast<unsigned>(stripes_.size());
  }

  /// Which stripe a line lands on. Frontends that pre-bucket batched work
  /// per stripe (so concurrent workers' sync_lines batches land on disjoint
  /// stripe mutexes) use this to build their buckets.
  unsigned stripe_index(LineIndex line) const {
    return static_cast<unsigned>(line.value & stripe_mask_);
  }

  DeviceStats stats() const;
  HbmStats hbm_stats() const;
  UndoLoggerStats log_stats() const;

  /// Per-stripe counter snapshot, one entry per stripe in index order.
  std::vector<StripeStats> stripe_stats() const;

  /// Device-wide stripe-mutex acquisition/contention totals, sampled
  /// lock-free — cheap enough for per-epoch tuner polling.
  void stripe_lock_totals(std::uint64_t* acquisitions,
                          std::uint64_t* contended) const;

 private:
  // One data-path partition. Padded to its own cache lines so stripe
  // mutexes don't false-share.
  struct alignas(64) Stripe {
    explicit Stripe(const HbmConfig& hbm_config) : hbm(hbm_config) {}
    mutable std::mutex mu;
    unsigned index = 0;  // position in stripes_; PaxCheck lock identity
    HbmCache hbm;
    // line -> packed undo-record token, for every line logged this epoch.
    std::unordered_map<LineIndex, std::uint64_t> epoch_logged;
    // Sealed-but-uncommitted epoch (§6): this stripe's slice of its set.
    std::unordered_map<LineIndex, std::uint64_t> sealed_logged;
    DeviceStats stats;  // data-path counters only; aggregated by stats()
    // Lock-contention telemetry, updated before the mutex is held (atomics)
    // so stripe_lock_totals() can sample without taking any lock.
    mutable std::atomic<std::uint64_t> lock_acquisitions{0};
    mutable std::atomic<std::uint64_t> lock_contended{0};
  };

  // RAII pair of a real lock and its PaxCheck lock-discipline events: the
  // token emits its acquire right after the lock is taken and its release
  // (member destruction order) right before the lock is dropped.
  template <typename LockT>
  struct Guarded {
    LockT lock;
    check::LockToken token;
  };

  // Distinguishes this device's locks from another device's in the checker
  // (e.g. a replication backup driven from the primary's commit hook).
  std::uint32_t stripe_lock_id(const Stripe& s) const {
    return (device_id_ << 16) | s.index;
  }

  // Locks s.mu, counting the acquisition and whether it contended. All
  // data-path entry points route through this so the contention ratio the
  // SyncTuner consumes reflects real fights over the stripe. The
  // coordinator/stats passes pass count = false: they held raw guards
  // before and must not perturb that ratio.
  Guarded<std::unique_lock<std::mutex>> lock_stripe(const Stripe& s,
                                                    bool count = true) const {
    std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      if (count) s.lock_contended.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    if (count) s.lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
    return {std::move(lock),
            check::LockToken(pm_->checker(), check::LockClass::kStripe,
                             stripe_lock_id(s), /*shared=*/false)};
  }

  Guarded<std::shared_lock<std::shared_mutex>> epoch_shared() const {
    std::shared_lock<std::shared_mutex> lock(epoch_mu_);
    return {std::move(lock),
            check::LockToken(pm_->checker(), check::LockClass::kEpochGate,
                             device_id_, /*shared=*/true)};
  }

  Guarded<std::unique_lock<std::shared_mutex>> epoch_exclusive() const {
    std::unique_lock<std::shared_mutex> lock(epoch_mu_);
    return {std::move(lock),
            check::LockToken(pm_->checker(), check::LockClass::kEpochGate,
                             device_id_, /*shared=*/false)};
  }

  Guarded<std::unique_lock<std::mutex>> lock_log() const {
    std::unique_lock<std::mutex> lock(log_mu_);
    return {std::move(lock),
            check::LockToken(pm_->checker(), check::LockClass::kLogMu,
                             device_id_, /*shared=*/false)};
  }

  // Undo records are addressed as (bank, end-offset) packed into one u64:
  // the bank index occupies the top bit. HbmCache carries these packed
  // tokens opaquely.
  static constexpr std::uint64_t kBankBit = 1ull << 63;
  static std::uint64_t pack_record(unsigned bank, std::uint64_t end) {
    return end | (bank ? kBankBit : 0);
  }
  bool record_is_durable(std::uint64_t packed) const {
    const unsigned bank = (packed & kBankBit) ? 1 : 0;
    return (packed & ~kBankBit) <= loggers_[bank]->durable();
  }

  Stripe& stripe_for(LineIndex line) {
    return *stripes_[line.value & stripe_mask_];
  }
  const Stripe& stripe_for(LineIndex line) const {
    return *stripes_[line.value & stripe_mask_];
  }

  // Writes a data line to PM media and marks it clean in `s`'s buffer. The
  // caller holds s.mu and must have ensured the line's undo record (if any
  // this epoch) is durable; checked here.
  void write_line_to_pm(Stripe& s, LineIndex line, const LineData& data,
                        std::uint64_t packed_record);

  // Emits the PaxCheck write-back event for `line` gated on the undo record
  // addressed by `packed` (no-op without an attached checker).
  // `gate_observed`: the caller checked record_is_durable on this thread.
  void note_writeback(LineIndex line, std::uint64_t packed,
                      bool gate_observed = false) const;

  // Handles the victim of an HbmCache::insert under s.mu: forces a log
  // flush if the victim's record isn't durable yet, then writes it back.
  void evict_victim(Stripe& s, const std::optional<EvictedLine>& victim);

  // Flushes both log banks (all staged records become durable). Takes
  // log_mu_; safe under any single stripe mutex.
  void flush_all_logs();

  // Runs `fn(stripe)` for every stripe on up to persist_workers threads of
  // the persistent commit pool (inline when the work is small). Caller
  // holds epoch_mu_ exclusively; fn must not touch epoch_mu_.
  void fan_out(std::size_t total_lines,
               const std::function<void(Stripe&)>& fn);

  // Invokes the pull callback under pull_mu_ (fan-out workers race here).
  std::optional<LineData> pull_one(const PullFn& pull, LineIndex line);

  // Commits the sealed epoch. Caller holds epoch_mu_ exclusively.
  Result<Epoch> commit_sealed_locked();

  // Current device-side view of a line (buffer over PM), no stats. Caller
  // holds s.mu (or owns the stripe via the exclusive epoch lock).
  LineData device_view(Stripe& s, LineIndex line);

  // Reads the pre-image held by the undo record addressed by `packed`
  // (validating it belongs to `line`).
  LineData undo_preimage(LineIndex line, std::uint64_t packed) const;

  // Last-committed-snapshot view of a line (read_committed_line without the
  // locking). Caller holds epoch_mu_ (shared suffices) and s.mu.
  LineData committed_view(Stripe& s, LineIndex line);

  void check_line_in_data_extent(LineIndex line) const;

  pmem::PmemPool* pool_;
  pmem::PmemDevice* pm_;
  DeviceConfig config_;
  std::uint32_t device_id_ = 0;  // process-unique; PaxCheck lock identity

  // Striped data-path state. The vector is immutable after construction.
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::uint64_t stripe_mask_ = 0;

  // Epoch gate: data path shared, epoch transitions exclusive. The fields
  // below it only change under the exclusive side.
  mutable std::shared_mutex epoch_mu_;
  Epoch epoch_;            // epoch being accumulated (not yet committed)
  unsigned active_bank_ = 0;
  Epoch sealed_epoch_ = 0;
  bool has_sealed_ = false;
  CommitHook commit_hook_;

  // Two log banks over the two halves of the pool's log extent (§6
  // overlap); synchronous-only use stays on bank 0. Appends/flushes/resets
  // are serialized by log_mu_; watermark reads are lock-free.
  mutable std::mutex log_mu_;
  std::unique_ptr<UndoLogger> loggers_[2];

  // Serializes PullFn invocations from the commit fan-out.
  std::mutex pull_mu_;

  // Round-robin start cursor for tick()'s proactive write-back.
  std::atomic<std::uint64_t> tick_cursor_{0};

  // Fork-token counter for fan_out's kTaskDispatch/..Join bracketing.
  std::atomic<std::uint64_t> task_token_{0};

  // Persistent worker pool for the commit fan-out (persist_workers - 1
  // parked threads; the committing thread participates). Created lazily on
  // the first fan-out large enough to want workers — always under the
  // exclusive epoch lock, so no further synchronization is needed.
  std::unique_ptr<common::ThreadPool> persist_pool_;

  // Device-wide counters that live outside any stripe.
  std::atomic<std::uint64_t> persists_{0};
  std::atomic<std::uint64_t> persist_pulls_{0};
  std::atomic<std::uint64_t> epoch_seals_{0};
  std::atomic<std::uint64_t> async_commits_{0};
  std::atomic<std::uint64_t> batch_syncs_{0};
  std::atomic<std::uint64_t> batch_synced_lines_{0};
  std::atomic<std::uint64_t> log_append_acquisitions_{0};
  std::atomic<std::uint64_t> sync_deferred_groups_{0};
};

}  // namespace pax::device
