#include "pax/device/hbm_cache.hpp"

#include "pax/common/check.hpp"

namespace pax::device {
namespace {

std::size_t pick_set_count(std::size_t capacity_lines, unsigned ways) {
  std::size_t sets = capacity_lines / ways;
  if (sets == 0) sets = 1;
  // Round down to a power of two so set indexing is a mask of mixed bits.
  std::size_t pow2 = 1;
  while (pow2 * 2 <= sets) pow2 *= 2;
  return pow2;
}

}  // namespace

HbmCache::HbmCache(const HbmConfig& config)
    : ways_(config.ways),
      prefer_durable_(config.prefer_durable_eviction),
      replacement_(config.replacement) {
  PAX_CHECK(config.ways >= 1);
  PAX_CHECK(config.capacity_lines >= config.ways);
  sets_.resize(pick_set_count(config.capacity_lines, config.ways));
  for (auto& s : sets_) s.ways.resize(ways_);
}

HbmCache::Set& HbmCache::set_for(LineIndex line) {
  return sets_[std::hash<LineIndex>{}(line) & (sets_.size() - 1)];
}
const HbmCache::Set& HbmCache::set_for(LineIndex line) const {
  return sets_[std::hash<LineIndex>{}(line) & (sets_.size() - 1)];
}

HbmCache::Entry* HbmCache::find(LineIndex line) {
  for (auto& e : set_for(line).ways) {
    if (e.valid && e.line == line) return &e;
  }
  return nullptr;
}
const HbmCache::Entry* HbmCache::find(LineIndex line) const {
  for (const auto& e : set_for(line).ways) {
    if (e.valid && e.line == line) return &e;
  }
  return nullptr;
}

std::optional<LineData> HbmCache::lookup(LineIndex line) {
  if (Entry* e = find(line)) {
    ++stats_.hits;
    e->lru_tick = ++tick_;
    e->ref = true;
    return e->data;
  }
  ++stats_.misses;
  return std::nullopt;
}

bool HbmCache::is_dirty(LineIndex line) const {
  const Entry* e = find(line);
  return e != nullptr && e->dirty;
}

std::optional<EvictedLine> HbmCache::insert(LineIndex line,
                                            const LineData& data, bool dirty,
                                            std::uint64_t log_record_end,
                                            std::uint64_t durable_log_offset) {
  Set& set = set_for(line);

  // Update in place if present.
  if (Entry* e = find(line)) {
    e->data = data;
    e->dirty = e->dirty || dirty;
    if (dirty) e->log_record_end = log_record_end;
    e->lru_tick = ++tick_;
    e->ref = true;
    return std::nullopt;
  }

  ++stats_.insertions;

  // Free way?
  for (auto& e : set.ways) {
    if (!e.valid) {
      e = Entry{true, line, data, dirty, log_record_end, ++tick_};
      ++live_;
      return std::nullopt;
    }
  }

  const unsigned victim_way =
      replacement_ == Replacement::kClock
          ? pick_victim_clock(set, durable_log_offset)
          : pick_victim_lru(set, durable_log_offset);
  Entry* victim = &set.ways[victim_way];
  if (replacement_ == Replacement::kClock) {
    set.hand = (victim_way + 1) % ways_;
  }

  ++stats_.evictions;
  if (!victim->dirty) {
    ++stats_.clean_evictions;
  } else if (victim->log_record_end <= durable_log_offset) {
    ++stats_.durable_dirty_evictions;
  } else {
    ++stats_.stall_evictions;
  }

  EvictedLine out{victim->line, victim->data, victim->dirty,
                  victim->log_record_end};
  *victim = Entry{true, line, data, dirty, log_record_end, ++tick_, false};
  return out;
}

unsigned HbmCache::pick_victim_lru(Set& set,
                                   std::uint64_t durable_log_offset) const {
  // Scan the set once, remembering the LRU entry of each preference class:
  // clean, dirty-with-durable-record, any.
  int any = -1, clean = -1, durable_dirty = -1;
  for (unsigned w = 0; w < ways_; ++w) {
    const Entry& e = set.ways[w];
    if (any < 0 || e.lru_tick < set.ways[any].lru_tick) any = w;
    if (!e.dirty && (clean < 0 || e.lru_tick < set.ways[clean].lru_tick)) {
      clean = w;
    }
    if (e.dirty && e.log_record_end <= durable_log_offset &&
        (durable_dirty < 0 ||
         e.lru_tick < set.ways[durable_dirty].lru_tick)) {
      durable_dirty = w;
    }
  }
  if (prefer_durable_) {
    if (clean >= 0) return clean;
    if (durable_dirty >= 0) return durable_dirty;
  }
  PAX_CHECK(any >= 0);
  return any;
}

unsigned HbmCache::pick_victim_clock(Set& set,
                                     std::uint64_t durable_log_offset) const {
  // Second-chance: from the hand, entries with the ref bit get it cleared
  // and are skipped (once). Among no-ref entries (in hand order), prefer
  // clean, then durable-dirty, then the first seen. If everything had its
  // ref bit set, the full sweep cleared them, so the fallback rescan finds
  // victims in plain hand order.
  for (int pass = 0; pass < 2; ++pass) {
    int first = -1, clean = -1, durable_dirty = -1;
    for (unsigned i = 0; i < ways_; ++i) {
      const unsigned w = (set.hand + i) % ways_;
      Entry& e = set.ways[w];
      if (e.ref) {
        e.ref = false;  // second chance
        continue;
      }
      if (first < 0) first = w;
      if (!e.dirty && clean < 0) clean = w;
      if (e.dirty && e.log_record_end <= durable_log_offset &&
          durable_dirty < 0) {
        durable_dirty = w;
      }
    }
    if (prefer_durable_) {
      if (clean >= 0) return clean;
      if (durable_dirty >= 0) return durable_dirty;
    }
    if (first >= 0) return first;
  }
  return set.hand;  // unreachable: pass 2 always finds a no-ref entry
}

void HbmCache::mark_clean(LineIndex line) {
  if (Entry* e = find(line)) {
    e->dirty = false;
    e->log_record_end = 0;
  }
}

void HbmCache::update_if_present(LineIndex line, const LineData& data) {
  if (Entry* e = find(line)) {
    e->data = data;
    e->dirty = false;
    e->log_record_end = 0;
  }
}

void HbmCache::mark_all_clean() {
  for (auto& set : sets_) {
    for (auto& e : set.ways) {
      if (e.valid) {
        e.dirty = false;
        e.log_record_end = 0;
      }
    }
  }
}

void HbmCache::remove(LineIndex line) {
  if (Entry* e = find(line)) {
    e->valid = false;
    --live_;
  }
}

void HbmCache::for_each_dirty(
    const std::function<void(LineIndex, const LineData&, std::uint64_t)>& fn)
    const {
  for (const auto& set : sets_) {
    for (const auto& e : set.ways) {
      if (e.valid && e.dirty) fn(e.line, e.data, e.log_record_end);
    }
  }
}

}  // namespace pax::device
