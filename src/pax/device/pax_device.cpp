#include "pax/device/pax_device.hpp"

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"

namespace pax::device {

PaxDevice::PaxDevice(pmem::PmemPool* pool, const DeviceConfig& config)
    : pool_(pool),
      pm_(pool->device()),
      config_(config),
      hbm_(config.hbm),
      epoch_(pool->committed_epoch() + 1) {
  PAX_CHECK(pool != nullptr);
  // Split the log extent into two banks (§6 epoch overlap). Synchronous-only
  // workloads never leave bank 0.
  const std::size_t half =
      (pool->log_size() / 2) & ~(kCacheLineSize - 1);
  PAX_CHECK_MSG(half >= kCacheLineSize, "log extent too small to bank");
  loggers_[0] =
      std::make_unique<UndoLogger>(pm_, pool->log_offset(), half);
  loggers_[1] = std::make_unique<UndoLogger>(
      pm_, pool->log_offset() + half, pool->log_size() - half);
}

void PaxDevice::check_line_in_data_extent(LineIndex line) const {
  const PoolOffset off = line.byte_offset();
  PAX_CHECK_MSG(off >= pool_->data_offset() &&
                    off + kCacheLineSize <= pool_->data_offset() +
                                                pool_->data_size(),
                "line outside the pool data extent");
}

LineData PaxDevice::device_view(LineIndex line) {
  if (auto cached = hbm_.lookup(line)) return *cached;
  return pm_->load_line(line);
}

LineData PaxDevice::read_line(LineIndex line) {
  check_line_in_data_extent(line);
  std::lock_guard lock(mu_);
  ++stats_.read_reqs;

  if (auto cached = hbm_.lookup(line)) {
    ++stats_.read_hbm_hits;
    return *cached;
  }
  ++stats_.read_pm;
  LineData data = pm_->load_line(line);

  // Fill the HBM cache with the clean copy; handle any dirty victim.
  auto victim = hbm_.insert(line, data, /*dirty=*/false, 0,
                            loggers_[active_bank_]->durable());
  if (victim && victim->dirty) {
    if (!record_is_durable(victim->log_record_end)) {
      ++stats_.forced_log_flushes;
      flush_all_logs();
    }
    write_line_to_pm(victim->line, victim->data, victim->log_record_end);
  }
  return data;
}

LineData PaxDevice::peek_line(LineIndex line) {
  check_line_in_data_extent(line);
  std::lock_guard lock(mu_);
  return device_view(line);
}

Status PaxDevice::write_intent(LineIndex line) {
  check_line_in_data_extent(line);
  std::lock_guard lock(mu_);
  ++stats_.write_intents;

  if (epoch_logged_.contains(line)) return Status::ok();  // already captured

  // First touch this epoch: the device's current view of the line *is* the
  // epoch-boundary value — everything from prior epochs was either written
  // back and committed, or (with an epoch sealed for async commit) captured
  // into the device at seal time.
  const LineData old_data = device_view(line);
  auto end = loggers_[active_bank_]->log_line(epoch_, line, old_data);
  if (!end.ok()) return end.status();

  ++stats_.first_touch_logs;
  epoch_logged_.emplace(line, pack_record(active_bank_, end.value()));
  return Status::ok();
}

LineData PaxDevice::read_committed_line(LineIndex line) {
  check_line_in_data_extent(line);
  std::lock_guard lock(mu_);

  // The pre-image lives in the log at [end - frame, end); frames for line
  // undo records have a fixed size.
  constexpr std::size_t kFrame =
      wal::record_frame_size(sizeof(wal::LineUndoPayload));
  auto preimage_from = [&](std::uint64_t packed) {
    const unsigned bank = (packed & kBankBit) ? 1 : 0;
    const std::uint64_t end = packed & ~kBankBit;
    PAX_CHECK(end >= kFrame);
    const PoolOffset extent_base =
        bank == 0 ? pool_->log_offset()
                  : pool_->log_offset() +
                        ((pool_->log_size() / 2) & ~(kCacheLineSize - 1));
    wal::LineUndoPayload payload{};
    pm_->load(extent_base + end - kFrame + sizeof(wal::RecordHeader),
              std::as_writable_bytes(std::span(&payload, 1)));
    PAX_CHECK_MSG(payload.line_index == line.value,
                  "undo record offset bookkeeping corrupted");
    return payload.old_data;
  };

  if (has_sealed_) {
    if (auto it = sealed_logged_.find(line); it != sealed_logged_.end()) {
      return preimage_from(it->second);
    }
  }
  if (auto it = epoch_logged_.find(line); it != epoch_logged_.end()) {
    return preimage_from(it->second);
  }
  return device_view(line);  // unmodified since the last commit
}

Status PaxDevice::mem_write(LineIndex line, const LineData& data) {
  check_line_in_data_extent(line);
  std::lock_guard lock(mu_);
  ++stats_.mem_writes;

  auto it = epoch_logged_.find(line);
  if (it == epoch_logged_.end()) {
    // First MemWr for this line this epoch: the device view still holds the
    // epoch-boundary value (the incoming data is not yet applied).
    const LineData old_data = device_view(line);
    auto end = loggers_[active_bank_]->log_line(epoch_, line, old_data);
    if (!end.ok()) return end.status();
    ++stats_.first_touch_logs;
    it = epoch_logged_
             .emplace(line, pack_record(active_bank_, end.value()))
             .first;
  }

  auto victim = hbm_.insert(line, data, /*dirty=*/true, it->second,
                            loggers_[active_bank_]->durable());
  if (victim && victim->dirty) {
    if (!record_is_durable(victim->log_record_end)) {
      ++stats_.forced_log_flushes;
      flush_all_logs();
    }
    write_line_to_pm(victim->line, victim->data, victim->log_record_end);
  }
  return Status::ok();
}

void PaxDevice::writeback_line(LineIndex line, const LineData& data) {
  check_line_in_data_extent(line);
  std::lock_guard lock(mu_);
  ++stats_.host_writebacks;

  auto it = epoch_logged_.find(line);
  // Under epoch overlap the host may also evict a line it modified only in
  // the sealed epoch (seal downgraded it to shared; a shared eviction
  // carries no data, but a dirty eviction can still race the seal). Accept
  // a sealed-epoch record as ownership proof too.
  std::uint64_t packed;
  if (it != epoch_logged_.end()) {
    packed = it->second;
  } else {
    auto sealed_it = sealed_logged_.find(line);
    PAX_CHECK_MSG(sealed_it != sealed_logged_.end(),
                  "host wrote back a line it never took write ownership of");
    packed = sealed_it->second;
  }

  auto victim = hbm_.insert(line, data, /*dirty=*/true, packed,
                            loggers_[active_bank_]->durable());
  if (victim && victim->dirty) {
    if (!record_is_durable(victim->log_record_end)) {
      ++stats_.forced_log_flushes;
      flush_all_logs();
    }
    write_line_to_pm(victim->line, victim->data, victim->log_record_end);
  }
}

void PaxDevice::write_line_to_pm(LineIndex line, const LineData& data,
                                 std::uint64_t packed_record) {
  // Core crash-consistency invariant: no new data reaches PM media before
  // the undo record that can roll it back is durable.
  PAX_CHECK_MSG(record_is_durable(packed_record),
                "write-back attempted before undo record was durable");
  pm_->store_line(line, data);
  pm_->flush_line(line);
  ++stats_.pm_writeback_lines;
  hbm_.mark_clean(line);
}

void PaxDevice::flush_all_logs() {
  for (auto& logger : loggers_) {
    if (logger->staged() > logger->durable()) logger->flush();
  }
  pm_->drain();
}

void PaxDevice::tick(bool force_flush) {
  std::lock_guard lock(mu_);

  std::uint64_t staged_volatile = 0;
  for (const auto& logger : loggers_) {
    staged_volatile += logger->staged() - logger->durable();
  }
  if ((force_flush && staged_volatile > 0) ||
      staged_volatile >= config_.log_flush_batch_bytes) {
    flush_all_logs();
  }

  if (!config_.proactive_writeback) return;

  // Proactively write back buffered dirty lines whose records are durable
  // (§3.3: frees buffer space and shrinks the work left for persist()).
  std::vector<std::tuple<LineIndex, LineData, std::uint64_t>> ready;
  hbm_.for_each_dirty(
      [&](LineIndex line, const LineData& data, std::uint64_t packed) {
        if (record_is_durable(packed)) ready.emplace_back(line, data, packed);
      });
  for (const auto& [line, data, packed] : ready) {
    write_line_to_pm(line, data, packed);
    ++stats_.proactive_writebacks;
  }
}

Result<Epoch> PaxDevice::persist(const PullFn& pull) {
  std::lock_guard lock(mu_);
  ++stats_.persists;

  // Complete any outstanding async epoch first: epochs commit in order.
  if (has_sealed_) {
    auto committed = commit_sealed_locked();
    if (!committed.ok()) return committed;
  }

  // 1. Every undo record of this epoch becomes durable.
  flush_all_logs();

  // 2. For every line modified this epoch, obtain its authoritative current
  //    value — from the host if it still caches it (RdShared: also revokes
  //    exclusivity so next-epoch stores re-announce themselves), else from
  //    the device buffer, else PM already has it — and write it to PM.
  std::vector<std::pair<LineIndex, LineData>> committed_lines;
  if (commit_hook_) committed_lines.reserve(epoch_logged_.size());
  for (const auto& [line, packed] : epoch_logged_) {
    ++stats_.persist_pulls;
    std::optional<LineData> host_copy = pull ? pull(line) : std::nullopt;
    LineData value;
    if (host_copy) {
      value = *host_copy;
      // The pulled copy supersedes any (possibly stale) buffered copy.
      hbm_.update_if_present(line, value);
    } else if (auto buffered = hbm_.lookup(line)) {
      value = *buffered;
    } else {
      // Neither host nor buffer holds it: the proactive path already wrote
      // it back; re-reading PM keeps the store below idempotent.
      value = pm_->load_line(line);
    }
    pm_->store_line(line, value);
    pm_->flush_line(line);
    ++stats_.pm_writeback_lines;
    hbm_.mark_clean(line);
    if (commit_hook_) committed_lines.emplace_back(line, value);
  }

  // 3. Fence: all data write-back durable before the commit record.
  pm_->drain();

  // 4. Atomically transition the pool to the new snapshot (§3.3).
  const Epoch committed = epoch_;
  pool_->commit_epoch(committed);
  if (commit_hook_) commit_hook_(committed, committed_lines);

  // 5. New epoch: the active log bank is reusable (every record inside is
  //    now stale under the committed epoch cell).
  loggers_[active_bank_]->reset_after_commit();
  epoch_logged_.clear();
  hbm_.mark_all_clean();
  epoch_ = committed + 1;

  PAX_LOG_DEBUG("persist: committed epoch %llu",
                static_cast<unsigned long long>(committed));
  return committed;
}

Result<Epoch> PaxDevice::seal_epoch(const PullFn& pull) {
  std::lock_guard lock(mu_);
  if (has_sealed_) {
    return failed_precondition(
        "an epoch is already sealed; commit it before sealing another");
  }
  ++stats_.epoch_seals;

  // Capture the host's current values for every modified line, revoking
  // exclusivity (next-epoch stores must re-announce). The values land in
  // the HBM buffer as dirty lines gated on their (sealed-bank) records.
  for (const auto& [line, packed] : epoch_logged_) {
    ++stats_.persist_pulls;
    if (std::optional<LineData> host_copy = pull ? pull(line) : std::nullopt) {
      auto victim = hbm_.insert(line, *host_copy, /*dirty=*/true, packed,
                                loggers_[active_bank_]->durable());
      if (victim && victim->dirty) {
        if (!record_is_durable(victim->log_record_end)) {
          ++stats_.forced_log_flushes;
          flush_all_logs();
        }
        write_line_to_pm(victim->line, victim->data, victim->log_record_end);
      }
    }
  }

  // Freeze the epoch and switch new work to the other bank.
  sealed_logged_ = std::move(epoch_logged_);
  epoch_logged_.clear();
  sealed_epoch_ = epoch_;
  has_sealed_ = true;
  active_bank_ ^= 1;
  PAX_CHECK_MSG(loggers_[active_bank_]->staged() == 0,
                "switching to a log bank that still holds live records");
  epoch_ = sealed_epoch_ + 1;
  return sealed_epoch_;
}

Result<Epoch> PaxDevice::commit_sealed() {
  std::lock_guard lock(mu_);
  return commit_sealed_locked();
}

Result<Epoch> PaxDevice::commit_sealed_locked() {
  if (!has_sealed_) return pool_->committed_epoch();
  ++stats_.async_commits;

  // 1. All records durable — both banks: a sealed line may have been
  //    re-modified in the active epoch, and the value written below could
  //    be that newer one; its active-bank undo record must be durable
  //    before the value reaches PM (the gating invariant under overlap).
  flush_all_logs();

  // 2. Write back every sealed line from the device's view (the seal pulled
  //    the host copies; any concurrent newer value is safe per the flushed
  //    active-bank record — recovery rolls it back to this epoch's value).
  std::vector<std::pair<LineIndex, LineData>> committed_lines;
  if (commit_hook_) committed_lines.reserve(sealed_logged_.size());
  for (const auto& [line, packed] : sealed_logged_) {
    const LineData value = device_view(line);
    pm_->store_line(line, value);
    pm_->flush_line(line);
    ++stats_.pm_writeback_lines;
    // Only mark clean if the active epoch hasn't re-dirtied it.
    if (!epoch_logged_.contains(line)) hbm_.mark_clean(line);
    if (commit_hook_) committed_lines.emplace_back(line, value);
  }

  // 3. Fence, then the atomic epoch-cell commit.
  pm_->drain();
  pool_->commit_epoch(sealed_epoch_);
  if (commit_hook_) commit_hook_(sealed_epoch_, committed_lines);

  // 4. The sealed bank's records are stale now; reclaim it.
  const unsigned sealed_bank = active_bank_ ^ 1;
  loggers_[sealed_bank]->reset_after_commit();
  sealed_logged_.clear();
  const Epoch committed = sealed_epoch_;
  has_sealed_ = false;

  PAX_LOG_DEBUG("commit_sealed: committed epoch %llu",
                static_cast<unsigned long long>(committed));
  return committed;
}

bool PaxDevice::has_sealed_epoch() const {
  std::lock_guard lock(mu_);
  return has_sealed_;
}

void PaxDevice::set_commit_hook(CommitHook hook) {
  std::lock_guard lock(mu_);
  commit_hook_ = std::move(hook);
}

Epoch PaxDevice::current_epoch() const {
  std::lock_guard lock(mu_);
  return epoch_;
}

std::size_t PaxDevice::epoch_logged_lines() const {
  std::lock_guard lock(mu_);
  return epoch_logged_.size();
}

std::uint64_t PaxDevice::log_bytes_in_use() const {
  std::lock_guard lock(mu_);
  return loggers_[0]->staged() + loggers_[1]->staged();
}

UndoLoggerStats PaxDevice::log_stats() const {
  std::lock_guard lock(mu_);
  UndoLoggerStats total = loggers_[0]->stats();
  const UndoLoggerStats& other = loggers_[1]->stats();
  total.records += other.records;
  total.bytes_staged += other.bytes_staged;
  total.flushes += other.flushes;
  return total;
}

DeviceStats PaxDevice::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace pax::device
