#include "pax/device/pax_device.hpp"

#include <algorithm>
#include <thread>

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"

namespace pax::device {
namespace {

unsigned floor_pow2(unsigned v) {
  unsigned p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

std::atomic<std::uint32_t> g_device_id{0};

}  // namespace

PaxDevice::PaxDevice(pmem::PmemPool* pool, const DeviceConfig& config)
    : pool_(pool),
      pm_(pool->device()),
      config_(config),
      device_id_(g_device_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(pool->committed_epoch() + 1) {
  PAX_CHECK(pool != nullptr);

  // Effective stripe count: a power of two, capped so every stripe keeps at
  // least one full HBM set (otherwise small-buffer configs would silently
  // grow their aggregate capacity).
  PAX_CHECK_MSG(config.stripes >= 1, "stripes must be >= 1");
  const unsigned hbm_sets = static_cast<unsigned>(std::max<std::size_t>(
      1, config.hbm.capacity_lines / config.hbm.ways));
  const unsigned n = floor_pow2(std::min(config.stripes, hbm_sets));
  stripe_mask_ = n - 1;

  HbmConfig per_stripe = config.hbm;
  per_stripe.capacity_lines =
      std::max<std::size_t>(config.hbm.ways, config.hbm.capacity_lines / n);
  stripes_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(per_stripe));
    stripes_.back()->index = i;
  }

  // Split the log extent into two banks (§6 epoch overlap). Synchronous-only
  // workloads never leave bank 0.
  const std::size_t half =
      (pool->log_size() / 2) & ~(kCacheLineSize - 1);
  PAX_CHECK_MSG(half >= kCacheLineSize, "log extent too small to bank");
  loggers_[0] =
      std::make_unique<UndoLogger>(pm_, pool->log_offset(), half);
  loggers_[1] = std::make_unique<UndoLogger>(
      pm_, pool->log_offset() + half, pool->log_size() - half);
  if (config.log_ring_slots > 0) {
    loggers_[0]->enable_ring(config.log_ring_slots);
    loggers_[1]->enable_ring(config.log_ring_slots);
  }
}

void PaxDevice::check_line_in_data_extent(LineIndex line) const {
  const PoolOffset off = line.byte_offset();
  PAX_CHECK_MSG(off >= pool_->data_offset() &&
                    off + kCacheLineSize <= pool_->data_offset() +
                                                pool_->data_size(),
                "line outside the pool data extent");
}

LineData PaxDevice::device_view(Stripe& s, LineIndex line) {
  if (auto cached = s.hbm.lookup(line)) return *cached;
  return pm_->load_line(line);
}

void PaxDevice::evict_victim(Stripe& s,
                             const std::optional<EvictedLine>& victim) {
  if (!victim || !victim->dirty) return;
  if (!record_is_durable(victim->log_record_end)) {
    ++s.stats.forced_log_flushes;
    flush_all_logs();
  }
  write_line_to_pm(s, victim->line, victim->data, victim->log_record_end);
}

LineData PaxDevice::read_line(LineIndex line) {
  check_line_in_data_extent(line);
  auto epoch_lock = epoch_shared();
  Stripe& s = stripe_for(line);
  auto lock = lock_stripe(s);
  ++s.stats.read_reqs;

  if (auto cached = s.hbm.lookup(line)) {
    ++s.stats.read_hbm_hits;
    return *cached;
  }
  ++s.stats.read_pm;
  LineData data = pm_->load_line(line);

  // Fill the HBM cache with the clean copy; handle any dirty victim.
  auto victim = s.hbm.insert(line, data, /*dirty=*/false, 0,
                             loggers_[active_bank_]->durable());
  evict_victim(s, victim);
  return data;
}

LineData PaxDevice::peek_line(LineIndex line) {
  check_line_in_data_extent(line);
  auto epoch_lock = epoch_shared();
  Stripe& s = stripe_for(line);
  auto lock = lock_stripe(s);
  return device_view(s, line);
}

void PaxDevice::peek_lines(std::span<const LineIndex> lines,
                           std::span<LineData> out) {
  PAX_CHECK(lines.size() == out.size());
  if (lines.empty()) return;
  for (LineIndex line : lines) check_line_in_data_extent(line);
  auto epoch_lock = epoch_shared();

  // One pass per stripe, taking each stripe mutex once. Input batches are
  // small (a page's worth of lines), so the stripes × lines scan is cheap
  // and avoids allocating per-stripe index buckets.
  std::vector<bool> served(stripes_.size(), false);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t stripe = lines[i].value & stripe_mask_;
    if (served[stripe]) continue;
    served[stripe] = true;
    Stripe& s = *stripes_[stripe];
    auto lock = lock_stripe(s);
    for (std::size_t j = i; j < lines.size(); ++j) {
      if ((lines[j].value & stripe_mask_) == stripe) {
        out[j] = device_view(s, lines[j]);
      }
    }
  }
}

Status PaxDevice::sync_lines(std::span<const LineUpdate> updates) {
  if (updates.empty()) return Status::ok();
  for (const LineUpdate& u : updates) check_line_in_data_extent(u.line);
  auto epoch_lock = epoch_shared();
  batch_syncs_.fetch_add(1, std::memory_order_relaxed);
  batch_synced_lines_.fetch_add(updates.size(), std::memory_order_relaxed);

  // Scratch reused across stripe groups.
  std::vector<std::size_t> group;                          // update indices
  std::vector<std::pair<LineIndex, LineData>> first_touch;  // pre-images
  std::vector<std::uint64_t> record_ends;

  // Serves one stripe group; caller holds s.mu.
  const auto sync_group = [&](Stripe& s, std::size_t stripe,
                              std::size_t first) -> Status {
    group.clear();
    for (std::size_t j = first; j < updates.size(); ++j) {
      if ((updates[j].line.value & stripe_mask_) == stripe) group.push_back(j);
    }
    s.stats.write_intents += group.size();
    s.stats.host_writebacks += group.size();

    // Collect the group's first-touch lines and their epoch-boundary
    // pre-images (the device view before the new data is applied).
    first_touch.clear();
    for (std::size_t j : group) {
      const LineIndex line = updates[j].line;
      if (!s.epoch_logged.contains(line)) {
        first_touch.emplace_back(line, device_view(s, line));
      }
    }

    if (!first_touch.empty()) {
      record_ends.clear();
      if (loggers_[active_bank_]->ring_enabled()) {
        // Lock-free hot path: one fetch_add reservation covers the group;
        // the log mutex is never taken on the append path.
        PAX_RETURN_IF_ERROR(loggers_[active_bank_]->ring_append_batch(
            epoch_, first_touch, &record_ends));
      } else {
        // One log-mutex acquisition covers the whole group's undo records.
        auto log_lock = lock_log();
        log_append_acquisitions_.fetch_add(1, std::memory_order_relaxed);
        PAX_RETURN_IF_ERROR(
            loggers_[active_bank_]->log_lines(epoch_, first_touch,
                                              &record_ends));
      }
      for (std::size_t k = 0; k < first_touch.size(); ++k) {
        s.epoch_logged.emplace(first_touch[k].first,
                               pack_record(active_bank_, record_ends[k]));
      }
      s.stats.first_touch_logs += first_touch.size();
    }

    // Buffer every update's new data, gated on its (now recorded) token.
    for (std::size_t j : group) {
      const LineUpdate& u = updates[j];
      auto victim = s.hbm.insert(u.line, u.data, /*dirty=*/true,
                                 s.epoch_logged.at(u.line),
                                 loggers_[active_bank_]->durable());
      evict_victim(s, victim);
    }
    return Status::ok();
  };

  // Pass 1: try-lock-first. A stripe whose mutex is free is served now; a
  // contended stripe's group is pushed onto this worker's overflow ring
  // and retried after every free stripe has been served, so a worker never
  // parks behind a peer while it still has uncontended work.
  std::vector<std::size_t> overflow;  // SPSC: pass 1 produces, pass 2 drains
  std::vector<bool> served(stripes_.size(), false);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const std::size_t stripe = updates[i].line.value & stripe_mask_;
    if (served[stripe]) continue;
    served[stripe] = true;

    Stripe& s = *stripes_[stripe];
    std::unique_lock<std::mutex> lk(s.mu, std::try_to_lock);
    if (!lk.owns_lock()) {
      s.lock_contended.fetch_add(1, std::memory_order_relaxed);
      sync_deferred_groups_.fetch_add(1, std::memory_order_relaxed);
      overflow.push_back(i);  // the group's first update index
      continue;
    }
    s.lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
    check::LockToken token(pm_->checker(), check::LockClass::kStripe,
                           stripe_lock_id(s), /*shared=*/false);
    PAX_RETURN_IF_ERROR(sync_group(s, stripe, i));
  }

  // Pass 2: drain the overflow ring with blocking acquires (the contention
  // was already counted at defer time).
  for (std::size_t head = 0; head < overflow.size(); ++head) {
    const std::size_t i = overflow[head];
    const std::size_t stripe = updates[i].line.value & stripe_mask_;
    Stripe& s = *stripes_[stripe];
    std::unique_lock<std::mutex> lk(s.mu);
    s.lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
    check::LockToken token(pm_->checker(), check::LockClass::kStripe,
                           stripe_lock_id(s), /*shared=*/false);
    PAX_RETURN_IF_ERROR(sync_group(s, stripe, i));
  }
  return Status::ok();
}

Status PaxDevice::write_intent(LineIndex line) {
  check_line_in_data_extent(line);
  auto epoch_lock = epoch_shared();
  Stripe& s = stripe_for(line);
  auto lock = lock_stripe(s);
  ++s.stats.write_intents;

  if (s.epoch_logged.contains(line)) return Status::ok();  // already captured

  // First touch this epoch: the device's current view of the line *is* the
  // epoch-boundary value — everything from prior epochs was either written
  // back and committed, or (with an epoch sealed for async commit) captured
  // into the device at seal time.
  const LineData old_data = device_view(s, line);
  std::uint64_t end;
  if (loggers_[active_bank_]->ring_enabled()) {
    auto appended = loggers_[active_bank_]->ring_append(epoch_, line, old_data);
    if (!appended.ok()) return appended.status();
    end = appended.value();
  } else {
    auto log_lock = lock_log();
    log_append_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    auto appended = loggers_[active_bank_]->log_line(epoch_, line, old_data);
    if (!appended.ok()) return appended.status();
    end = appended.value();
  }

  ++s.stats.first_touch_logs;
  s.epoch_logged.emplace(line, pack_record(active_bank_, end));
  return Status::ok();
}

LineData PaxDevice::undo_preimage(LineIndex line,
                                  std::uint64_t packed) const {
  // The pre-image lives in the log at [end - frame, end); frames for line
  // undo records have a fixed size.
  constexpr std::size_t kFrame =
      wal::record_frame_size(sizeof(wal::LineUndoPayload));
  const unsigned bank = (packed & kBankBit) ? 1 : 0;
  const std::uint64_t end = packed & ~kBankBit;
  PAX_CHECK(end >= kFrame);
  const PoolOffset extent_base =
      bank == 0 ? pool_->log_offset()
                : pool_->log_offset() +
                      ((pool_->log_size() / 2) & ~(kCacheLineSize - 1));
  wal::LineUndoPayload payload{};
  pm_->load(extent_base + end - kFrame + sizeof(wal::RecordHeader),
            std::as_writable_bytes(std::span(&payload, 1)));
  PAX_CHECK_MSG(payload.line_index == line.value,
                "undo record offset bookkeeping corrupted");
  return payload.old_data;
}

LineData PaxDevice::committed_view(Stripe& s, LineIndex line) {
  if (has_sealed_) {
    if (auto it = s.sealed_logged.find(line); it != s.sealed_logged.end()) {
      return undo_preimage(line, it->second);
    }
  }
  if (auto it = s.epoch_logged.find(line); it != s.epoch_logged.end()) {
    return undo_preimage(line, it->second);
  }
  return device_view(s, line);  // unmodified since the last commit
}

LineData PaxDevice::read_committed_line(LineIndex line) {
  check_line_in_data_extent(line);
  auto epoch_lock = epoch_shared();
  Stripe& s = stripe_for(line);
  auto lock = lock_stripe(s);
  return committed_view(s, line);
}

void PaxDevice::read_committed_lines(LineIndex first,
                                     std::span<LineData> out) {
  if (out.empty()) return;
  check_line_in_data_extent(first);
  check_line_in_data_extent(LineIndex{first.value + out.size() - 1});
  auto epoch_lock = epoch_shared();

  // A contiguous line range visits the stripes round-robin: serve all of a
  // stripe's lines under one mutex hold.
  const std::size_t n = stripes_.size();
  for (std::size_t stripe = 0; stripe < n; ++stripe) {
    // First out index whose line lands on this stripe.
    const std::size_t start =
        (stripe + n - (first.value & stripe_mask_)) & stripe_mask_;
    if (start >= out.size()) continue;
    Stripe& s = *stripes_[stripe];
    auto lock = lock_stripe(s);
    for (std::size_t i = start; i < out.size(); i += n) {
      out[i] = committed_view(s, LineIndex{first.value + i});
    }
  }
}

Status PaxDevice::mem_write(LineIndex line, const LineData& data) {
  check_line_in_data_extent(line);
  auto epoch_lock = epoch_shared();
  Stripe& s = stripe_for(line);
  auto lock = lock_stripe(s);
  ++s.stats.mem_writes;

  auto it = s.epoch_logged.find(line);
  if (it == s.epoch_logged.end()) {
    // First MemWr for this line this epoch: the device view still holds the
    // epoch-boundary value (the incoming data is not yet applied).
    const LineData old_data = device_view(s, line);
    std::uint64_t end;
    if (loggers_[active_bank_]->ring_enabled()) {
      auto appended =
          loggers_[active_bank_]->ring_append(epoch_, line, old_data);
      if (!appended.ok()) return appended.status();
      end = appended.value();
    } else {
      auto log_lock = lock_log();
      log_append_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      auto appended =
          loggers_[active_bank_]->log_line(epoch_, line, old_data);
      if (!appended.ok()) return appended.status();
      end = appended.value();
    }
    ++s.stats.first_touch_logs;
    it = s.epoch_logged.emplace(line, pack_record(active_bank_, end)).first;
  }

  auto victim = s.hbm.insert(line, data, /*dirty=*/true, it->second,
                             loggers_[active_bank_]->durable());
  evict_victim(s, victim);
  return Status::ok();
}

void PaxDevice::writeback_line(LineIndex line, const LineData& data) {
  check_line_in_data_extent(line);
  auto epoch_lock = epoch_shared();
  Stripe& s = stripe_for(line);
  auto lock = lock_stripe(s);
  ++s.stats.host_writebacks;

  auto it = s.epoch_logged.find(line);
  // Under epoch overlap the host may also evict a line it modified only in
  // the sealed epoch (seal downgraded it to shared; a shared eviction
  // carries no data, but a dirty eviction can still race the seal). Accept
  // a sealed-epoch record as ownership proof too.
  std::uint64_t packed;
  if (it != s.epoch_logged.end()) {
    packed = it->second;
  } else {
    auto sealed_it = s.sealed_logged.find(line);
    PAX_CHECK_MSG(sealed_it != s.sealed_logged.end(),
                  "host wrote back a line it never took write ownership of");
    packed = sealed_it->second;
  }

  auto victim = s.hbm.insert(line, data, /*dirty=*/true, packed,
                             loggers_[active_bank_]->durable());
  evict_victim(s, victim);
}

void PaxDevice::write_line_to_pm(Stripe& s, LineIndex line,
                                 const LineData& data,
                                 std::uint64_t packed_record) {
  // Core crash-consistency invariant: no new data reaches PM media before
  // the undo record that can roll it back is durable.
  PAX_CHECK_MSG(record_is_durable(packed_record),
                "write-back attempted before undo record was durable");
  // This path reached the media only because record_is_durable observed the
  // logger's watermark on this thread — record that gate for the offline
  // happens-before analysis.
  note_writeback(line, packed_record, /*gate_observed=*/true);
  pm_->store_line(line, data);
  pm_->flush_line(line);
  ++s.stats.pm_writeback_lines;
  s.hbm.mark_clean(line);
}

void PaxDevice::note_writeback(LineIndex line, std::uint64_t packed,
                               bool gate_observed) const {
  if (auto* chk = pm_->checker()) {
    const unsigned bank = (packed & kBankBit) ? 1 : 0;
    chk->on_writeback(line.value, loggers_[bank]->id(), packed & ~kBankBit,
                      gate_observed);
  }
}

void PaxDevice::flush_all_logs() {
  auto log_lock = lock_log();
  for (auto& logger : loggers_) {
    if (logger->staged() > logger->durable()) logger->flush();
  }
  pm_->drain();
}

void PaxDevice::tick(bool force_flush) {
  auto epoch_lock = epoch_shared();

  std::uint64_t staged_volatile = 0;
  for (const auto& logger : loggers_) {
    staged_volatile += logger->staged() - logger->durable();
  }
  if ((force_flush && staged_volatile > 0) ||
      staged_volatile >= config_.log_flush_batch_bytes) {
    flush_all_logs();
  }

  if (!config_.proactive_writeback) return;

  // Proactively write back buffered dirty lines whose records are durable
  // (§3.3: frees buffer space and shrinks the work left for persist()).
  // Stripes are visited round-robin from a rotating start so concurrent
  // tick()s fan across the device instead of convoying on stripe 0.
  const std::size_t n = stripes_.size();
  const std::size_t start =
      static_cast<std::size_t>(tick_cursor_.fetch_add(1)) % n;
  std::vector<std::tuple<LineIndex, LineData, std::uint64_t>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    Stripe& s = *stripes_[(start + i) % n];
    auto lock = lock_stripe(s, /*count=*/false);
    ready.clear();
    s.hbm.for_each_dirty(
        [&](LineIndex line, const LineData& data, std::uint64_t packed) {
          if (record_is_durable(packed)) {
            ready.emplace_back(line, data, packed);
          }
        });
    for (const auto& [line, data, packed] : ready) {
      write_line_to_pm(s, line, data, packed);
      ++s.stats.proactive_writebacks;
    }
  }
}

void PaxDevice::fan_out(std::size_t total_lines,
                        const std::function<void(Stripe&)>& fn) {
  const std::size_t n = stripes_.size();
  const unsigned workers = std::min<unsigned>(
      std::max(1u, config_.persist_workers), static_cast<unsigned>(n));
  if (workers <= 1 || total_lines < config_.persist_fanout_min_lines) {
    for (auto& s : stripes_) fn(*s);
    return;
  }

  // The committing thread participates, so the pool parks workers - 1
  // threads. Lazy creation happens under the exclusive epoch lock.
  if (!persist_pool_) {
    persist_pool_ = std::make_unique<common::ThreadPool>(workers - 1);
  }
  // Fork-join bracketing for the offline happens-before analysis: the pool
  // itself is real synchronization (dispatch precedes every slice, every
  // slice precedes the return from parallel_for), and these events make
  // that ordering visible in the trace. Token is process-unique so
  // overlapping sections on different devices never alias.
  check::Checker* chk = pm_->checker();
  std::uint64_t token = 0;
  if (chk != nullptr) {
    token = (static_cast<std::uint64_t>(device_id_) + 1) << 32 |
            (task_token_.fetch_add(1, std::memory_order_relaxed) + 1);
    chk->on_task_dispatch(token);
  }
  persist_pool_->parallel_for(n, [&](std::size_t i) {
    if (chk != nullptr) chk->on_task_begin(token);
    fn(*stripes_[i]);
    if (chk != nullptr) chk->on_task_end(token);
  });
  if (chk != nullptr) chk->on_task_join(token);
}

std::optional<LineData> PaxDevice::pull_one(const PullFn& pull,
                                            LineIndex line) {
  persist_pulls_.fetch_add(1, std::memory_order_relaxed);
  if (!pull) return std::nullopt;
  if (auto* chk = pm_->checker()) chk->on_pull_invoke(line.value);
  std::lock_guard lock(pull_mu_);
  return pull(line);
}

Result<Epoch> PaxDevice::persist(const PullFn& pull) {
  auto epoch_lock = epoch_exclusive();
  persists_.fetch_add(1, std::memory_order_relaxed);

  // Complete any outstanding async epoch first: epochs commit in order.
  if (has_sealed_) {
    auto committed = commit_sealed_locked();
    if (!committed.ok()) return committed;
  }

  // Phase 1a. Every undo record of this epoch becomes durable.
  flush_all_logs();

  // Phase 1b (fan-out). For every line modified this epoch, obtain its
  // authoritative current value — from the host if it still caches it
  // (RdShared: also revokes exclusivity so next-epoch stores re-announce
  // themselves), else from the device buffer, else PM already has it — and
  // write it to PM. Each stripe's slice is independent; workers own one
  // stripe at a time (the exclusive epoch lock quiesces the data path, so
  // no stripe mutex is needed).
  std::size_t total_lines = 0;
  for (const auto& s : stripes_) total_lines += s->epoch_logged.size();

  const bool want_hook = static_cast<bool>(commit_hook_);
  std::mutex hook_mu;
  std::vector<std::pair<LineIndex, LineData>> committed_lines;
  if (want_hook) committed_lines.reserve(total_lines);

  fan_out(total_lines, [&](Stripe& s) {
    std::vector<std::pair<LineIndex, LineData>> local;
    if (want_hook) local.reserve(s.epoch_logged.size());
    for (const auto& [line, packed] : s.epoch_logged) {
      std::optional<LineData> host_copy = pull_one(pull, line);
      LineData value;
      if (host_copy) {
        value = *host_copy;
        // The pulled copy supersedes any (possibly stale) buffered copy.
        s.hbm.update_if_present(line, value);
      } else if (auto buffered = s.hbm.lookup(line)) {
        value = *buffered;
      } else {
        // Neither host nor buffer holds it: the proactive path already
        // wrote it back; re-reading PM keeps the store below idempotent.
        value = pm_->load_line(line);
      }
      note_writeback(line, packed);
      pm_->store_line(line, value);
      pm_->flush_line(line);
      ++s.stats.pm_writeback_lines;
      s.hbm.mark_clean(line);
      if (want_hook) local.emplace_back(line, value);
    }
    if (want_hook && !local.empty()) {
      std::lock_guard hl(hook_mu);
      committed_lines.insert(committed_lines.end(), local.begin(),
                             local.end());
    }
  });

  // Phase 2 (serialized tail). Fence: all data write-back durable before
  // the commit record; then atomically transition the pool to the new
  // snapshot (§3.3).
  pm_->drain();
  const Epoch committed = epoch_;
  pool_->commit_epoch(committed);
  if (commit_hook_) commit_hook_(committed, committed_lines);

  // New epoch: the active log bank is reusable (every record inside is now
  // stale under the committed epoch cell).
  {
    auto log_lock = lock_log();
    loggers_[active_bank_]->reset_after_commit();
  }
  for (auto& s : stripes_) {
    s->epoch_logged.clear();
    s->hbm.mark_all_clean();
  }
  epoch_ = committed + 1;

  PAX_LOG_DEBUG("persist: committed epoch %llu",
                static_cast<unsigned long long>(committed));
  return committed;
}

Result<Epoch> PaxDevice::seal_epoch(const PullFn& pull) {
  auto epoch_lock = epoch_exclusive();
  if (has_sealed_) {
    return failed_precondition(
        "an epoch is already sealed; commit it before sealing another");
  }
  epoch_seals_.fetch_add(1, std::memory_order_relaxed);

  // Phase 1 (fan-out). Capture the host's current values for every modified
  // line, revoking exclusivity (next-epoch stores must re-announce). The
  // values land in each stripe's HBM buffer as dirty lines gated on their
  // (sealed-bank) records.
  std::size_t total_lines = 0;
  for (const auto& s : stripes_) total_lines += s->epoch_logged.size();

  fan_out(total_lines, [&](Stripe& s) {
    for (const auto& [line, packed] : s.epoch_logged) {
      if (std::optional<LineData> host_copy = pull_one(pull, line)) {
        auto victim = s.hbm.insert(line, *host_copy, /*dirty=*/true, packed,
                                   loggers_[active_bank_]->durable());
        evict_victim(s, victim);
      }
    }
  });

  // Phase 2 (serialized tail). Freeze the epoch and switch new work to the
  // other bank.
  for (auto& s : stripes_) {
    s->sealed_logged = std::move(s->epoch_logged);
    s->epoch_logged.clear();
  }
  sealed_epoch_ = epoch_;
  has_sealed_ = true;
  active_bank_ ^= 1;
  PAX_CHECK_MSG(loggers_[active_bank_]->staged() == 0,
                "switching to a log bank that still holds live records");
  epoch_ = sealed_epoch_ + 1;
  if (auto* chk = pm_->checker()) chk->on_epoch_seal(sealed_epoch_);
  return sealed_epoch_;
}

Result<Epoch> PaxDevice::commit_sealed() {
  auto epoch_lock = epoch_exclusive();
  return commit_sealed_locked();
}

Result<Epoch> PaxDevice::commit_sealed_locked() {
  if (!has_sealed_) return pool_->committed_epoch();
  async_commits_.fetch_add(1, std::memory_order_relaxed);

  // Phase 1a. All records durable — both banks: a sealed line may have been
  // re-modified in the active epoch, and the value written below could be
  // that newer one; its active-bank undo record must be durable before the
  // value reaches PM (the gating invariant under overlap).
  flush_all_logs();

  // Phase 1b (fan-out). Write back every sealed line from the device's view
  // (the seal pulled the host copies; any concurrent newer value is safe
  // per the flushed active-bank record — recovery rolls it back to this
  // epoch's value).
  std::size_t total_lines = 0;
  for (const auto& s : stripes_) total_lines += s->sealed_logged.size();

  const bool want_hook = static_cast<bool>(commit_hook_);
  std::mutex hook_mu;
  std::vector<std::pair<LineIndex, LineData>> committed_lines;
  if (want_hook) committed_lines.reserve(total_lines);

  fan_out(total_lines, [&](Stripe& s) {
    std::vector<std::pair<LineIndex, LineData>> local;
    if (want_hook) local.reserve(s.sealed_logged.size());
    for (const auto& [line, packed] : s.sealed_logged) {
      note_writeback(line, packed);
      const LineData value = device_view(s, line);
      pm_->store_line(line, value);
      pm_->flush_line(line);
      ++s.stats.pm_writeback_lines;
      // Only mark clean if the active epoch hasn't re-dirtied it.
      if (!s.epoch_logged.contains(line)) s.hbm.mark_clean(line);
      if (want_hook) local.emplace_back(line, value);
    }
    if (want_hook && !local.empty()) {
      std::lock_guard hl(hook_mu);
      committed_lines.insert(committed_lines.end(), local.begin(),
                             local.end());
    }
  });

  // Phase 2 (serialized tail). Fence, then the atomic epoch-cell commit.
  pm_->drain();
  pool_->commit_epoch(sealed_epoch_);
  if (commit_hook_) commit_hook_(sealed_epoch_, committed_lines);

  // The sealed bank's records are stale now; reclaim it.
  const unsigned sealed_bank = active_bank_ ^ 1;
  {
    auto log_lock = lock_log();
    loggers_[sealed_bank]->reset_after_commit();
  }
  for (auto& s : stripes_) s->sealed_logged.clear();
  const Epoch committed = sealed_epoch_;
  has_sealed_ = false;

  PAX_LOG_DEBUG("commit_sealed: committed epoch %llu",
                static_cast<unsigned long long>(committed));
  return committed;
}

bool PaxDevice::has_sealed_epoch() const {
  auto epoch_lock = epoch_shared();
  return has_sealed_;
}

void PaxDevice::set_commit_hook(CommitHook hook) {
  auto epoch_lock = epoch_exclusive();
  commit_hook_ = std::move(hook);
}

Epoch PaxDevice::current_epoch() const {
  auto epoch_lock = epoch_shared();
  return epoch_;
}

std::size_t PaxDevice::epoch_logged_lines() const {
  auto epoch_lock = epoch_shared();
  std::size_t total = 0;
  for (const auto& s : stripes_) {
    auto lock = lock_stripe(*s, /*count=*/false);
    total += s->epoch_logged.size();
  }
  return total;
}

std::uint64_t PaxDevice::log_bytes_in_use() const {
  return loggers_[0]->staged() + loggers_[1]->staged();
}

UndoLoggerStats PaxDevice::log_stats() const {
  auto log_lock = lock_log();
  UndoLoggerStats total = loggers_[0]->stats();
  const UndoLoggerStats other = loggers_[1]->stats();
  total.records += other.records;
  total.bytes_staged += other.bytes_staged;
  total.flushes += other.flushes;
  total.group_appends += other.group_appends;
  total.ring_appends += other.ring_appends;
  total.ring_full_stalls += other.ring_full_stalls;
  total.ring_aborts += other.ring_aborts;
  return total;
}

DeviceStats PaxDevice::stats() const {
  auto epoch_lock = epoch_shared();
  DeviceStats total;
  for (const auto& s : stripes_) {
    auto lock = lock_stripe(*s, /*count=*/false);
    const DeviceStats& st = s->stats;
    total.read_reqs += st.read_reqs;
    total.read_hbm_hits += st.read_hbm_hits;
    total.read_pm += st.read_pm;
    total.write_intents += st.write_intents;
    total.first_touch_logs += st.first_touch_logs;
    total.host_writebacks += st.host_writebacks;
    total.mem_writes += st.mem_writes;
    total.pm_writeback_lines += st.pm_writeback_lines;
    total.proactive_writebacks += st.proactive_writebacks;
    total.forced_log_flushes += st.forced_log_flushes;
  }
  total.persists = persists_.load(std::memory_order_relaxed);
  total.persist_pulls = persist_pulls_.load(std::memory_order_relaxed);
  total.epoch_seals = epoch_seals_.load(std::memory_order_relaxed);
  total.async_commits = async_commits_.load(std::memory_order_relaxed);
  total.batch_syncs = batch_syncs_.load(std::memory_order_relaxed);
  total.batch_synced_lines =
      batch_synced_lines_.load(std::memory_order_relaxed);
  total.log_append_acquisitions =
      log_append_acquisitions_.load(std::memory_order_relaxed);
  total.log_ring_appends =
      loggers_[0]->ring_appends() + loggers_[1]->ring_appends();
  total.log_ring_stalls =
      loggers_[0]->ring_full_stalls() + loggers_[1]->ring_full_stalls();
  total.sync_deferred_groups =
      sync_deferred_groups_.load(std::memory_order_relaxed);
  return total;
}

std::vector<StripeStats> PaxDevice::stripe_stats() const {
  auto epoch_lock = epoch_shared();
  std::vector<StripeStats> out;
  out.reserve(stripes_.size());
  for (unsigned i = 0; i < stripes_.size(); ++i) {
    const Stripe& s = *stripes_[i];
    StripeStats st;
    st.stripe = i;
    st.lock_acquisitions =
        s.lock_acquisitions.load(std::memory_order_relaxed);
    st.lock_contended = s.lock_contended.load(std::memory_order_relaxed);
    {
      auto lock = lock_stripe(s, /*count=*/false);
      st.write_intents = s.stats.write_intents;
      st.host_writebacks = s.stats.host_writebacks;
      st.pm_writeback_lines = s.stats.pm_writeback_lines;
      st.epoch_logged_lines = s.epoch_logged.size();
    }
    out.push_back(st);
  }
  return out;
}

void PaxDevice::stripe_lock_totals(std::uint64_t* acquisitions,
                                   std::uint64_t* contended) const {
  std::uint64_t acq = 0, con = 0;
  for (const auto& s : stripes_) {
    acq += s->lock_acquisitions.load(std::memory_order_relaxed);
    con += s->lock_contended.load(std::memory_order_relaxed);
  }
  if (acquisitions != nullptr) *acquisitions = acq;
  if (contended != nullptr) *contended = con;
}

HbmStats PaxDevice::hbm_stats() const {
  auto epoch_lock = epoch_shared();
  HbmStats total;
  for (const auto& s : stripes_) {
    auto lock = lock_stripe(*s, /*count=*/false);
    total += s->hbm.stats();
  }
  return total;
}

}  // namespace pax::device
