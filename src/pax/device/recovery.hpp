// Crash recovery (§3.4).
//
// After a crash the pool's epoch cell names the newest durable snapshot.
// Any undo record in the log extent tagged with a *later* epoch describes a
// modification of the crashed, uncommitted epoch whose data line may have
// reached PM (the device writes back freely during an epoch — §3.3); those
// records are replayed, restoring each line's epoch-boundary pre-image.
// Records of the committed epoch or older are stale leftovers from log-extent
// reuse and are skipped. A torn record ends the scan: everything after it in
// append order is guaranteed younger, and its data line cannot have been
// written back (write-back is gated on record durability), so stopping is
// safe. Recovery is idempotent — a crash during recovery just reruns it.
#pragma once

#include <cstdint>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::device {

struct RecoveryReport {
  Epoch recovered_epoch = 0;       // snapshot the pool was restored to
  std::uint64_t records_scanned = 0;
  std::uint64_t records_applied = 0;  // undo records rolled back
  std::uint64_t stale_records = 0;    // valid records from committed epochs
  std::uint64_t lines_restored = 0;
};

/// Rolls the pool's data extent back to its most recent committed snapshot.
/// Call before constructing a PaxDevice over a reopened pool.
Result<RecoveryReport> recover_pool(pmem::PmemPool& pool);

}  // namespace pax::device
