#include "pax/device/recovery.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"
#include "pax/wal/wal.hpp"

namespace pax::device {

Result<RecoveryReport> recover_pool(pmem::PmemPool& pool) {
  pmem::PmemDevice* pm = pool.device();
  RecoveryReport report;
  report.recovered_epoch = pool.committed_epoch();

  // The log extent is split into two banks (PaxDevice: §6 epoch overlap).
  // With overlap, a crash can leave uncommitted records of TWO epochs (the
  // sealed epoch e in one bank, the active e+1 in the other). Undo must be
  // applied newest-epoch-first, reverse append order within an epoch, so a
  // line modified in both epochs ends at its epoch-(e-1) pre-image.
  struct PendingUndo {
    Epoch epoch;
    std::uint64_t seq;  // append order within its bank
    wal::LineUndoPayload payload;
  };
  std::vector<PendingUndo> to_undo;

  const std::size_t half = (pool.log_size() / 2) & ~(kCacheLineSize - 1);
  const std::pair<PoolOffset, std::size_t> banks[2] = {
      {pool.log_offset(), half},
      {pool.log_offset() + half, pool.log_size() - half},
  };

  for (const auto& [bank_off, bank_size] : banks) {
    wal::LogReader reader(pm, bank_off, bank_size);
    std::uint64_t seq = 0;
    while (auto rec = reader.next()) {
      ++report.records_scanned;
      if (rec->epoch <= report.recovered_epoch) {
        ++report.stale_records;
        continue;
      }
      if (rec->type != wal::RecordType::kLineUndo) {
        return corruption("unexpected record type in device undo log");
      }
      if (rec->payload.size() != sizeof(wal::LineUndoPayload)) {
        return corruption("undo record payload size mismatch");
      }
      wal::LineUndoPayload payload;
      std::memcpy(&payload, rec->payload.data(), sizeof(payload));

      const PoolOffset off = payload.line_index * kCacheLineSize;
      if (off < pool.data_offset() ||
          off + kCacheLineSize > pool.data_offset() + pool.data_size()) {
        return corruption(
            "undo record references a line outside data extent");
      }
      to_undo.push_back({rec->epoch, seq++, payload});
    }
  }

  // Newest epoch first; within an epoch, reverse append order.
  std::sort(to_undo.begin(), to_undo.end(),
            [](const PendingUndo& a, const PendingUndo& b) {
              if (a.epoch != b.epoch) return a.epoch > b.epoch;
              return a.seq > b.seq;
            });

  for (const auto& undo : to_undo) {
    const LineIndex line{undo.payload.line_index};
    pm->store_line(line, undo.payload.old_data);
    pm->flush_line(line);
    ++report.records_applied;
    ++report.lines_restored;
  }
  pm->drain();

  PAX_LOG_INFO(
      "recovery: epoch %llu restored (%llu records scanned, %llu applied)",
      static_cast<unsigned long long>(report.recovered_epoch),
      static_cast<unsigned long long>(report.records_scanned),
      static_cast<unsigned long long>(report.records_applied));
  return report;
}

}  // namespace pax::device
