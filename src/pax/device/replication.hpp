// Epoch replication to a backup pool — the "fault tolerance via remote
// memory" direction from §6 ("different applications can use our techniques
// e.g. … providing fault tolerance via remote memory [24, 29]").
//
// The Replicator subscribes to the primary PaxDevice's commit hook and
// ships each committed epoch (its number + the final values of its modified
// lines) to a backup pool. The backup is driven through its *own* PaxDevice,
// so every replicated epoch is applied with the full crash-consistency
// machinery: undo-logged, written back, and committed with the backup's
// epoch cell. Consequently the backup is always a valid PAX pool holding
// some committed prefix of the primary's history — a crash of the primary,
// the backup, or the replication channel at any instant leaves the backup
// recoverable to its latest applied epoch. Failover is just: open the
// backup pool with ordinary recovery and keep going.
//
// What the paper would use — FPGAs shipping coherence traffic over a fast
// network — is modelled by the in-process queue between the hook and
// apply_pending(): `synchronous` mode applies in the hook (zero lag, the
// primary's persist waits for the backup), asynchronous mode lets the
// backup trail by a bounded number of epochs, which the failover tests
// exercise.
#pragma once

#include <deque>
#include <mutex>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/device/pax_device.hpp"

namespace pax::device {

struct ReplicatorStats {
  std::uint64_t epochs_enqueued = 0;
  std::uint64_t epochs_applied = 0;
  std::uint64_t lines_shipped = 0;
  /// sync_lines batches issued by the batched apply path (0 when per-line).
  std::uint64_t batches_shipped = 0;
};

struct ReplicatorOptions {
  /// Apply epochs through the backup device's batched frontend: lines are
  /// bucketed by stripe and shipped as LineUpdate batches via sync_lines,
  /// so each batch takes its stripe mutex once and its undo records append
  /// under a single log-mutex hold. false keeps the original per-line
  /// write_intent + writeback_line calls (the reference the equivalence
  /// test compares against).
  bool batched = true;
  /// Max LineUpdates per sync_lines call in batched mode.
  std::size_t batch_lines = 256;
};

class Replicator {
 public:
  /// `backup` must be a formatted pool with a data extent at least as large
  /// as the primary's and the same data offset (same pool geometry).
  /// If `synchronous`, epochs are applied inside the commit hook (the
  /// primary's persist includes the backup's); otherwise they queue until
  /// apply_pending().
  static Result<std::unique_ptr<Replicator>> create(
      pmem::PmemPool* backup, const DeviceConfig& backup_device_config,
      bool synchronous, const ReplicatorOptions& options = {});

  /// The hook to install on the primary: primary.set_commit_hook(
  /// replicator->commit_hook()).
  PaxDevice::CommitHook commit_hook();

  /// Applies every queued epoch to the backup, in order. Returns the
  /// backup's committed epoch afterwards.
  Result<Epoch> apply_pending();

  /// Epochs sitting in the queue (asynchronous mode lag).
  std::size_t pending_epochs() const;

  Epoch backup_committed_epoch() const {
    return backup_pool_->committed_epoch();
  }

  const ReplicatorStats& stats() const { return stats_; }

 private:
  struct PendingEpoch {
    Epoch epoch;
    std::vector<std::pair<LineIndex, LineData>> lines;
  };

  Replicator(pmem::PmemPool* backup, const DeviceConfig& config,
             bool synchronous, const ReplicatorOptions& options)
      : backup_pool_(backup),
        backup_device_(backup, config),
        synchronous_(synchronous),
        options_(options) {}

  Status apply_one(const PendingEpoch& pending);

  pmem::PmemPool* backup_pool_;
  PaxDevice backup_device_;
  bool synchronous_;
  ReplicatorOptions options_;
  mutable std::mutex mu_;
  std::deque<PendingEpoch> queue_;
  ReplicatorStats stats_;
};

}  // namespace pax::device
