#include "pax/device/replication.hpp"

#include <algorithm>

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"

namespace pax::device {

Result<std::unique_ptr<Replicator>> Replicator::create(
    pmem::PmemPool* backup, const DeviceConfig& backup_device_config,
    bool synchronous, const ReplicatorOptions& options) {
  PAX_CHECK(backup != nullptr);
  if (options.batched && options.batch_lines == 0) {
    return invalid_argument("batch_lines must be >= 1");
  }
  return std::unique_ptr<Replicator>(
      new Replicator(backup, backup_device_config, synchronous, options));
}

PaxDevice::CommitHook Replicator::commit_hook() {
  return [this](Epoch epoch,
                const std::vector<std::pair<LineIndex, LineData>>& lines) {
    {
      std::lock_guard lock(mu_);
      queue_.push_back({epoch, lines});
      ++stats_.epochs_enqueued;
    }
    if (synchronous_) {
      auto applied = apply_pending();
      if (!applied.ok()) {
        PAX_LOG_ERROR("synchronous replication failed: %s",
                      applied.status().to_string().c_str());
      }
    }
  };
}

Status Replicator::apply_one(const PendingEpoch& pending) {
  // Epochs must apply in order; duplicates (e.g. after a failover replay)
  // are skipped idempotently.
  const Epoch backup_epoch = backup_pool_->committed_epoch();
  if (pending.epoch <= backup_epoch) return Status::ok();
  if (pending.epoch != backup_epoch + 1) {
    return failed_precondition("replication gap: backup at epoch " +
                               std::to_string(backup_epoch) + ", got " +
                               std::to_string(pending.epoch));
  }

  // Drive the backup through the full device pipeline: undo-log the
  // pre-images, buffer the new values, then persist — so a crash anywhere
  // leaves the backup recoverable.
  if (options_.batched) {
    // Bucket the epoch's lines by backup stripe so each sync_lines batch is
    // stripe-homogeneous: one stripe-mutex hold and one log-mutex append
    // per batch instead of per line. Equivalent to the per-line path by
    // sync_lines' contract (same undo records, same buffered values).
    std::vector<std::vector<LineUpdate>> buckets(
        backup_device_.stripe_count());
    for (const auto& [line, data] : pending.lines) {
      buckets[backup_device_.stripe_index(line)].push_back({line, data});
    }
    for (const auto& bucket : buckets) {
      for (std::size_t i = 0; i < bucket.size();
           i += options_.batch_lines) {
        const std::size_t n =
            std::min(options_.batch_lines, bucket.size() - i);
        PAX_RETURN_IF_ERROR(
            backup_device_.sync_lines({bucket.data() + i, n}));
        ++stats_.batches_shipped;
        stats_.lines_shipped += n;
      }
    }
  } else {
    for (const auto& [line, data] : pending.lines) {
      PAX_RETURN_IF_ERROR(backup_device_.write_intent(line));
      backup_device_.writeback_line(line, data);
      ++stats_.lines_shipped;
    }
  }
  auto committed = backup_device_.persist(nullptr);
  if (!committed.ok()) return committed.status();
  PAX_CHECK_MSG(committed.value() == pending.epoch,
                "backup epoch diverged from primary");
  ++stats_.epochs_applied;
  return Status::ok();
}

Result<Epoch> Replicator::apply_pending() {
  std::lock_guard lock(mu_);
  while (!queue_.empty()) {
    PAX_RETURN_IF_ERROR(apply_one(queue_.front()));
    queue_.pop_front();
  }
  return backup_pool_->committed_epoch();
}

std::size_t Replicator::pending_epochs() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

}  // namespace pax::device
