#include "pax/coherence/host_cache.hpp"

#include <algorithm>
#include <cstring>

#include "pax/common/check.hpp"

namespace pax::coherence {

CacheLevel::CacheLevel(const CacheLevelConfig& config) : ways_(config.ways) {
  PAX_CHECK(config.ways >= 1);
  std::size_t lines = config.capacity_bytes / kCacheLineSize;
  std::size_t sets = std::max<std::size_t>(1, lines / config.ways);
  std::size_t pow2 = 1;
  while (pow2 * 2 <= sets) pow2 *= 2;
  sets_.resize(pow2);
  for (auto& s : sets_) s.resize(ways_);
}

std::vector<CacheLevel::Entry>& CacheLevel::set_for(LineIndex line) {
  return sets_[std::hash<LineIndex>{}(line) & (sets_.size() - 1)];
}
const std::vector<CacheLevel::Entry>& CacheLevel::set_for(
    LineIndex line) const {
  return sets_[std::hash<LineIndex>{}(line) & (sets_.size() - 1)];
}

bool CacheLevel::access(LineIndex line, std::optional<LineIndex>& evicted) {
  evicted.reset();
  auto& set = set_for(line);
  for (auto& e : set) {
    if (e.valid && e.line == line) {
      e.lru_tick = ++tick_;
      return true;
    }
  }
  // Miss: insert, evicting LRU if the set is full.
  Entry* victim = nullptr;
  for (auto& e : set) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (victim == nullptr || e.lru_tick < victim->lru_tick) victim = &e;
  }
  PAX_CHECK(victim != nullptr);
  if (victim->valid) {
    evicted = victim->line;
  } else {
    ++live_;
  }
  *victim = Entry{true, line, ++tick_};
  return false;
}

bool CacheLevel::contains(LineIndex line) const {
  for (const auto& e : set_for(line)) {
    if (e.valid && e.line == line) return true;
  }
  return false;
}

void CacheLevel::remove(LineIndex line) {
  for (auto& e : set_for(line)) {
    if (e.valid && e.line == line) {
      e.valid = false;
      --live_;
      return;
    }
  }
}

HostCacheSim::HostCacheSim(device::PaxDevice* device,
                           const HostCacheConfig& config)
    : device_(device),
      config_(config),
      record_trace_(config.record_trace),
      l1_(config.l1),
      l2_(config.l2),
      llc_(config.llc) {
  PAX_CHECK(device != nullptr);
}

void HostCacheSim::record(CxlOp op, LineIndex line, bool carried_data) {
  if (record_trace_) trace_.push_back({op, line, carried_data});
}

void HostCacheSim::evict_from_llc(LineIndex line) {
  // Inclusive hierarchy: leaving the LLC means leaving L1/L2 too.
  l1_.remove(line);
  l2_.remove(line);

  auto state_it = state_.find(line);
  PAX_CHECK(state_it != state_.end());
  if (state_it->second == MesiState::kModified) {
    ++stats_.dirty_evicts;
    record(CxlOp::kDirtyEvict, line, /*carried_data=*/true);
    if (config_.protocol == DeviceProtocol::kCxlMem) {
      ++stats_.mem_writes;
      // .mem: the eviction is a plain MemWr; the device first learns of the
      // modification here and must capture the pre-image now.
      Status s = device_->mem_write(line, data_.at(line));
      PAX_CHECK_MSG(s.is_ok(), "undo log exhausted during .mem eviction");
    } else {
      device_->writeback_line(line, data_.at(line));
    }
  } else {
    ++stats_.clean_evicts;
    record(CxlOp::kCleanEvict, line, /*carried_data=*/false);
  }
  state_.erase(state_it);
  data_.erase(line);
}

bool HostCacheSim::touch(LineIndex line) {
  std::optional<LineIndex> evicted;

  ++stats_.l1.accesses;
  if (l1_.access(line, evicted)) {
    ++stats_.l1.hits;
    return true;  // L1 hit implies residency everywhere (inclusive).
  }
  // L1 insertion may push a tag out of L1; that line stays in L2/LLC.

  ++stats_.l2.accesses;
  std::optional<LineIndex> l2_victim;
  if (l2_.access(line, l2_victim)) {
    ++stats_.l2.hits;
    // Inclusive: an L2 hit is an LLC resident; refresh LLC LRU silently.
    std::optional<LineIndex> none;
    llc_.access(line, none);
    PAX_CHECK_MSG(!none, "inclusive hierarchy violated: L2 hit missed LLC");
    return true;
  }
  if (l2_victim) l1_.remove(*l2_victim);  // back-invalidate L2 victims

  ++stats_.llc.accesses;
  std::optional<LineIndex> llc_victim;
  const bool llc_hit = llc_.access(line, llc_victim);
  if (llc_victim) evict_from_llc(*llc_victim);
  if (llc_hit) ++stats_.llc.hits;
  return llc_hit;
}

void HostCacheSim::load(PoolOffset offset, std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const PoolOffset cur = offset + done;
    const LineIndex line = LineIndex::containing(cur);
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t n =
        std::min(kCacheLineSize - in_line, out.size() - done);

    ++stats_.loads;
    const bool resident = touch(line);
    if (!resident) {
      // Multi-core: a peer may hold the line Modified — it must reach the
      // home (device) before we read it there.
      if (peer_snooper_) peer_snooper_(line, /*exclusive=*/false);
      // LLC miss on a device-homed line: RdShared to the PAX device.
      ++stats_.rd_shared;
      record(CxlOp::kRdShared, line, false);
      data_[line] = device_->read_line(line);
      record(CxlOp::kGo, line, true);
      state_[line] = MesiState::kShared;
    }
    std::memcpy(out.data() + done, data_.at(line).bytes.data() + in_line, n);
    done += n;
  }
}

Status HostCacheSim::store(PoolOffset offset,
                           std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const PoolOffset cur = offset + done;
    const LineIndex line = LineIndex::containing(cur);
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t n =
        std::min(kCacheLineSize - in_line, data.size() - done);

    ++stats_.stores;
    const bool resident = touch(line);

    auto state_it = state_.find(line);
    const MesiState st =
        resident && state_it != state_.end() ? state_it->second
                                             : MesiState::kInvalid;

    if (st != MesiState::kModified && st != MesiState::kExclusive) {
      // Multi-core: strip every peer of the line before taking ownership.
      if (peer_snooper_) peer_snooper_(line, /*exclusive=*/true);
      if (config_.protocol == DeviceProtocol::kCxlCache) {
        // Need write ownership: RdOwn. The device undo-logs the pre-image.
        ++stats_.rd_own;
        if (st == MesiState::kShared) ++stats_.upgrades;
        record(CxlOp::kRdOwn, line, false);
        PAX_RETURN_IF_ERROR(device_->write_intent(line));
        if (!resident || !data_.contains(line)) {
          // RdOwn carries the current data back (needed to merge a partial
          // line store).
          data_[line] = device_->read_line(line);
        }
        record(CxlOp::kGo, line, true);
      } else {
        // .mem: no ownership traffic — the store is silent to the device
        // (its first notification is the eventual MemWr). Fetch the line if
        // absent so partial stores merge correctly.
        if (!resident || !data_.contains(line)) {
          data_[line] = device_->read_line(line);
        }
      }
    }
    state_[line] = MesiState::kModified;
    std::memcpy(data_.at(line).bytes.data() + in_line, data.data() + done, n);
    done += n;
  }
  return Status::ok();
}

std::uint64_t HostCacheSim::load_u64(PoolOffset offset) {
  std::uint64_t v = 0;
  load(offset, std::as_writable_bytes(std::span(&v, 1)));
  return v;
}

Status HostCacheSim::store_u64(PoolOffset offset, std::uint64_t value) {
  return store(offset, std::as_bytes(std::span(&value, 1)));
}

std::optional<LineData> HostCacheSim::snoop_data(LineIndex line) {
  auto it = state_.find(line);
  if (it == state_.end()) return std::nullopt;
  ++stats_.snoops_served;
  record(CxlOp::kSnpData, line, true);
  it->second = MesiState::kShared;  // downgrade: next store must RdOwn again
  return data_.at(line);
}

device::PaxDevice::PullFn HostCacheSim::pull_fn() {
  if (config_.protocol == DeviceProtocol::kCxlMem) {
    // A .mem device cannot snoop: persist relies on a prior CLWB sweep.
    return [](LineIndex) { return std::nullopt; };
  }
  return [this](LineIndex line) { return snoop_data(line); };
}

Status HostCacheSim::clwb_all_dirty() {
  std::vector<LineIndex> dirty;
  for (const auto& [line, st] : state_) {
    if (st == MesiState::kModified) dirty.push_back(line);
  }
  for (LineIndex line : dirty) {
    ++stats_.clwbs;
    if (config_.protocol == DeviceProtocol::kCxlMem) {
      ++stats_.mem_writes;
      PAX_RETURN_IF_ERROR(device_->mem_write(line, data_.at(line)));
    } else {
      device_->writeback_line(line, data_.at(line));
    }
    // CLWB on current CPUs downgrades (future ones keep the line Shared —
    // §4 note); we model the friendlier downgrade-to-Shared.
    state_[line] = MesiState::kShared;
  }
  return Status::ok();
}

void HostCacheSim::snoop_invalidate(LineIndex line) {
  auto it = state_.find(line);
  if (it == state_.end()) return;
  ++stats_.snoops_served;
  record(CxlOp::kSnpInv, line, it->second == MesiState::kModified);
  if (it->second == MesiState::kModified) {
    // The modified data must reach the home before the peer takes over.
    device_->writeback_line(line, data_.at(line));
    ++stats_.dirty_evicts;
  }
  l1_.remove(line);
  l2_.remove(line);
  llc_.remove(line);
  state_.erase(it);
  data_.erase(line);
}

void HostCacheSim::drop_line_without_writeback(LineIndex line) {
  auto it = state_.find(line);
  if (it == state_.end()) return;
  ++stats_.snoops_served;
  // Deliberately no carried data and no device write-back: a Modified copy
  // dies here. See the header comment — seeded-bug use only.
  record(CxlOp::kSnpInv, line, /*carried_data=*/false);
  l1_.remove(line);
  l2_.remove(line);
  llc_.remove(line);
  state_.erase(it);
  data_.erase(line);
}

void HostCacheSim::drop_all_without_writeback() {
  state_.clear();
  data_.clear();
  l1_ = CacheLevel(config_.l1);
  l2_ = CacheLevel(config_.l2);
  llc_ = CacheLevel(config_.llc);
}

void HostCacheSim::flush_and_invalidate_all() {
  std::vector<LineIndex> lines;
  lines.reserve(state_.size());
  for (const auto& [line, st] : state_) lines.push_back(line);
  for (LineIndex line : lines) {
    if (llc_.contains(line)) llc_.remove(line);
    l1_.remove(line);
    l2_.remove(line);
    auto st = state_.at(line);
    if (st == MesiState::kModified) {
      ++stats_.dirty_evicts;
      record(CxlOp::kDirtyEvict, line, /*carried_data=*/true);
      device_->writeback_line(line, data_.at(line));
    } else {
      record(CxlOp::kCleanEvict, line, /*carried_data=*/false);
    }
    state_.erase(line);
    data_.erase(line);
  }
}

MesiState HostCacheSim::line_state(LineIndex line) const {
  auto it = state_.find(line);
  return it == state_.end() ? MesiState::kInvalid : it->second;
}

}  // namespace pax::coherence
