// Multi-core coherence domain: several host caches sharing one PAX device.
//
// The single-core HostCacheSim models the paper's Figure 2a measurement
// setup; real deployments (§3.5, §6 "highly concurrent workloads") have many
// cores whose caches keep each other coherent *through the home agent* —
// which for vPM addresses is the PAX device. The domain wires the cores
// together MESI-style:
//
//   * before a core takes exclusive ownership (store), every peer holding
//     the line is snooped with SnpInv — a Modified peer writes its data
//     back to the device first, so no update can be lost;
//   * before a core fills a load miss from the device, a Modified peer is
//     downgraded with SnpData and its data forwarded through the device;
//   * persist() pulls from all cores (any of them may hold the newest copy)
//     and downgrades everywhere, preserving the §3.3 re-announcement
//     invariant across every core.
//
// Important PAX property this preserves: *cross-core* ownership transfers
// of a line within one epoch do not create new undo records — the first
// RdOwn of the epoch logged the epoch-boundary value, and every subsequent
// transfer routes current data through the device, never touching the log
// (write_intent is per-epoch idempotent).
//
// ── Concurrent dispatch ────────────────────────────────────────────────────
//
// The per-core load()/store() entry points below are thread-safe: one
// application thread per core may drive its core concurrently (the striped
// device then runs their misses in parallel). Internals:
//
//   * a small array of *line-stripe* mutexes serializes conflicting traffic
//     on the same line across cores (the fabric's per-address ordering
//     point);
//   * one mutex per core guards that core's simulator (HostCacheSim itself
//     is single-threaded by design);
//   * the domain *pre-snoops* the peers — under their own locks, one at a
//     time — before invoking the core op with a thread-local flag set that
//     suppresses the in-op peer snooper. Pre-snooping unconditionally is
//     MESI-equivalent to the lazy in-op snoop: whenever the in-op snoop
//     would have been skipped (core already owns the line M/E, or the load
//     hits), the peers can hold nothing that the snoop would touch, so the
//     pre-snoop is a no-op. The suppression is what keeps two cores from
//     locking each other's mutexes in opposite orders (at most one core
//     lock is ever held per thread).
//
// LOCK ORDER: domain gate → line-stripe mutex → (one) core mutex → device
// locks.
//
// The domain gate is what makes persist() safe against live dispatch:
// every dispatch op holds it shared for its whole duration (acquired
// before any other lock), and persist() takes it exclusive before
// entering the device — the stop-the-world epoch boundary the paper's
// runtime imposes (§3.5). The exclusive gate quiesces all dispatch, so
// the persist-time pull touches the core simulators without core mutexes
// (cross-worker pulls are already serialized by the device's pull mutex);
// without the gate, a dispatch thread blocked on the device's epoch gate
// while holding its core mutex would deadlock against the commit thread
// pulling under the exclusive epoch lock. The raw pull_fn() keeps the
// core-locking behavior for direct single-threaded core() use.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "pax/coherence/host_cache.hpp"

namespace pax::coherence {

/// Seeded coherence-protocol faults for the litmus harness (pax::litmus).
/// Each knob deletes one edge the MESI wiring below depends on; the litmus
/// shapes must then observe a forbidden outcome, an SC divergence, or a
/// durable-state divergence at some crash point — mutation-testing the
/// harness itself. All off by default; never enable outside tests.
struct DomainFaults {
  /// A snoop that hits a Modified peer drops the dirty data instead of
  /// routing it back through the device (lost update / stale fill).
  bool suppress_snoop_writeback = false;
  /// pull_fn() reports "host holds nothing" without snooping any core, so
  /// persist() commits the device's stale copies of host-Modified lines.
  bool skip_persist_pull = false;
  /// Dispatch bypasses the per-address ordering point entirely: no
  /// line-stripe mutex and no peer snoop before the access (the in-op
  /// snooper stays suppressed exactly as on the normal dispatch path).
  bool skip_line_serialization = false;

  bool any() const {
    return suppress_snoop_writeback || skip_persist_pull ||
           skip_line_serialization;
  }
};

class CoherenceDomain {
 public:
  CoherenceDomain(device::PaxDevice* device, const HostCacheConfig& core_config,
                  unsigned core_count);

  unsigned core_count() const { return static_cast<unsigned>(cores_.size()); }

  /// Direct core access — single-threaded use only (tests, measurement
  /// loops owning the whole domain). For multi-threaded traffic use the
  /// dispatch entry points below.
  HostCacheSim& core(unsigned i) { return *cores_.at(i); }

  // --- Thread-safe dispatch (one thread per core) -------------------------

  /// load()/store() through core `core_id`'s hierarchy. Safe to call
  /// concurrently from different threads (also for the same core). Accesses
  /// spanning several lines are line-atomic, not op-atomic — exactly the
  /// hardware guarantee.
  void load(unsigned core_id, PoolOffset offset, std::span<std::byte> out);
  Status store(unsigned core_id, PoolOffset offset,
               std::span<const std::byte> data);

  std::uint64_t load_u64(unsigned core_id, PoolOffset offset);
  Status store_u64(unsigned core_id, PoolOffset offset, std::uint64_t value);

  // --- Epoch plumbing -----------------------------------------------------

  /// Commit an epoch against live dispatch: takes the domain gate
  /// exclusive (quiescing every dispatch entry point), then runs
  /// `device->persist()` with a pull covering every core. This is the safe
  /// way to persist a domain driven through the dispatch entry points —
  /// see the LOCK ORDER note in the header comment.
  Result<Epoch> persist(device::PaxDevice* device);

  /// persist() pull covering every core: returns the Modified copy if any
  /// core holds one (downgrading it), else downgrades any Shared holders
  /// and reports nothing (the device's own copy is current). Takes the core
  /// mutexes — for direct single-threaded core() use only; domains driven
  /// through dispatch must use persist() above instead.
  device::PaxDevice::PullFn pull_fn();

  /// Crash: every core's volatile state vanishes.
  void drop_all_without_writeback();

  /// Seeded-bug knobs (litmus harness only). Set before driving traffic;
  /// not synchronized against in-flight dispatch.
  void set_faults(const DomainFaults& faults) { faults_ = faults; }
  const DomainFaults& faults() const { return faults_; }

 private:
  // Serializes same-line traffic across cores. Sized like a snoop filter
  // bank count — contention here means *actual* same-line contention.
  static constexpr std::size_t kLineLockStripes = 64;

  std::mutex& line_mutex(LineIndex line) {
    return line_mu_[line.value % kLineLockStripes];
  }

  // Snoops every peer of `core_id` for `line` under the peers' own locks
  // (one at a time). `exclusive` selects SnpInv vs SnpData semantics,
  // mirroring the wired in-op snooper exactly.
  void presnoop_peers(unsigned core_id, LineIndex line, bool exclusive);

  // One peer snoop — the single protocol step both the wired in-op snooper
  // and presnoop_peers() share (and where DomainFaults bite). Caller holds
  // the peer's core mutex (or owns the whole domain single-threaded).
  void snoop_peer(unsigned peer, LineIndex line, bool exclusive);

  void load_one_line(unsigned core_id, PoolOffset offset,
                     std::span<std::byte> out);
  Status store_one_line(unsigned core_id, PoolOffset offset,
                        std::span<const std::byte> data);

  // The persist-time pull under the exclusive gate: no core mutexes — the
  // gate has quiesced dispatch, and the device's pull mutex serializes the
  // fan-out workers.
  std::optional<LineData> pull_newest_quiesced(LineIndex line);

  std::vector<std::unique_ptr<HostCacheSim>> cores_;
  std::vector<std::unique_ptr<std::mutex>> core_mu_;
  std::array<std::mutex, kLineLockStripes> line_mu_;
  std::shared_mutex gate_;
  DomainFaults faults_;
};

}  // namespace pax::coherence
