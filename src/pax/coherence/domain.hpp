// Multi-core coherence domain: several host caches sharing one PAX device.
//
// The single-core HostCacheSim models the paper's Figure 2a measurement
// setup; real deployments (§3.5, §6 "highly concurrent workloads") have many
// cores whose caches keep each other coherent *through the home agent* —
// which for vPM addresses is the PAX device. The domain wires the cores
// together MESI-style:
//
//   * before a core takes exclusive ownership (store), every peer holding
//     the line is snooped with SnpInv — a Modified peer writes its data
//     back to the device first, so no update can be lost;
//   * before a core fills a load miss from the device, a Modified peer is
//     downgraded with SnpData and its data forwarded through the device;
//   * persist() pulls from all cores (any of them may hold the newest copy)
//     and downgrades everywhere, preserving the §3.3 re-announcement
//     invariant across every core.
//
// Important PAX property this preserves: *cross-core* ownership transfers
// of a line within one epoch do not create new undo records — the first
// RdOwn of the epoch logged the epoch-boundary value, and every subsequent
// transfer routes current data through the device, never touching the log
// (write_intent is per-epoch idempotent).
#pragma once

#include <memory>
#include <vector>

#include "pax/coherence/host_cache.hpp"

namespace pax::coherence {

class CoherenceDomain {
 public:
  CoherenceDomain(device::PaxDevice* device, const HostCacheConfig& core_config,
                  unsigned core_count);

  unsigned core_count() const { return static_cast<unsigned>(cores_.size()); }
  HostCacheSim& core(unsigned i) { return *cores_.at(i); }

  /// persist() pull covering every core: returns the Modified copy if any
  /// core holds one (downgrading it), else downgrades any Shared holders
  /// and reports nothing (the device's own copy is current).
  device::PaxDevice::PullFn pull_fn();

  /// Crash: every core's volatile state vanishes.
  void drop_all_without_writeback();

 private:
  std::vector<std::unique_ptr<HostCacheSim>> cores_;
};

}  // namespace pax::coherence
