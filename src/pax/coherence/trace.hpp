// Coherence-trace capture and replay.
//
// The host-cache simulator can record the CXL message stream a workload
// generates (HostCacheConfig::record_trace). This module persists such
// traces to CRC-protected files and replays them against a PaxDevice —
// letting device-side design points (buffer sizes, eviction policies, log
// batching) be evaluated against *recorded* workloads without rerunning
// the workload, the standard methodology for trace-driven cache studies.
//
// Replay semantics: host-originated messages drive the device the same way
// the live frontend did (RdShared → read_line, RdOwn → write_intent,
// DirtyEvict → writeback_line with deterministic synthetic payloads — the
// trace records addresses, not data, which device-side metrics don't need).
// Device-originated messages (SnpData, GO) are skipped. An optional epoch
// interval inserts persist() calls, since persists are runtime decisions
// rather than coherence traffic.
#pragma once

#include <string>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/coherence/cxl.hpp"
#include "pax/device/pax_device.hpp"

namespace pax::coherence {

/// Writes `events` to `path` (CRC-protected binary format).
Status save_trace(const std::string& path, const std::vector<CxlEvent>& events);

/// Loads a trace; fails with kCorruption on bad magic/CRC/truncation.
Result<std::vector<CxlEvent>> load_trace(const std::string& path);

struct TraceSummary {
  std::uint64_t total = 0;
  std::uint64_t rd_shared = 0;
  std::uint64_t rd_own = 0;
  std::uint64_t dirty_evicts = 0;
  std::uint64_t clean_evicts = 0;
  std::uint64_t snoops = 0;
  std::uint64_t distinct_lines = 0;
};
TraceSummary summarize_trace(const std::vector<CxlEvent>& events);

struct ReplayOptions {
  /// Call persist() after this many host-originated messages (0 = never,
  /// one persist at the end).
  std::uint64_t persist_every = 0;
};

struct ReplayReport {
  std::uint64_t messages_replayed = 0;
  std::uint64_t messages_skipped = 0;  // device-originated
  std::uint64_t persists = 0;
};

/// Replays `events` against `device`. Returns kOutOfSpace etc. if the
/// device rejects an operation.
Result<ReplayReport> replay_trace(const std::vector<CxlEvent>& events,
                                  device::PaxDevice* device,
                                  const ReplayOptions& options = {});

}  // namespace pax::coherence
