// CXL.cache message vocabulary (the subset PAX interposes on, CXL 2.0
// §3.2.4.3) plus the MESI line states the host cache model tracks.
//
// The host-cache simulator translates its own activity into these messages —
// the same "adapter layer" idea the paper's prototypes use (§4): whatever
// the underlying mechanism (Enzian ThunderX coherence, Pin-rewritten
// loads/stores, or our simulated hierarchy), the device sees CXL-shaped
// traffic. Tests assert on the message trace to pin down protocol behaviour.
#pragma once

#include <cstdint>
#include <optional>

#include "pax/common/types.hpp"

namespace pax::coherence {

/// Host cache line states (MESI).
enum class MesiState : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kModified,
};

/// Device-to-host / host-to-device opcodes, named after their CXL.cache
/// equivalents. "D2H" and "H2D" follow the CXL convention where the *device*
/// is the subject — but note in PAX the accelerator is the home agent for
/// vPM, so host requests travel H2D and snoops travel D2H.
enum class CxlOp : std::uint8_t {
  // Host cache → device (requests on LLC miss / upgrade):
  kRdShared,    // load miss: fetch line, host caches it shared
  kRdOwn,       // store miss / upgrade: host will modify the line
  kDirtyEvict,  // host evicts a Modified line; data travels with it
  kCleanEvict,  // host evicts a Shared/Exclusive line (no data)
  // Device → host (snoops issued during persist()):
  kSnpData,     // downgrade to Shared and forward current data
  kSnpInv,      // invalidate (unused by the base design; kept for fidelity)
  // Completion the device returns for host requests:
  kGo,          // "global observation": request granted
};

const char* cxl_op_name(CxlOp op);

/// One message on the simulated link, for traces and protocol tests.
struct CxlEvent {
  CxlOp op;
  LineIndex line;
  bool carried_data = false;  // DirtyEvict / SnpData responses carry 64 B
};

}  // namespace pax::coherence
